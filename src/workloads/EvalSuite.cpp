//===- EvalSuite.cpp - The 28-program eval-elimination suite ---------------==//
///
/// Synthetic counterpart of the Jensen et al. benchmark suite the paper
/// evaluates on (Section 5.2), with one program per counted case:
///
///  * #1–#8   handled by both the syntactic unevalizer baseline and our
///            determinacy-based elimination;
///  * #9–#14  handled by ours but *not* by the baseline (cross-statement /
///            parameter-dependent concatenation, for-in iteration order);
///  * #15     genuinely indeterminate argument (both fail, always);
///  * #16–#19 eval sites inside unexercised event handlers ("not covered");
///            #16/#17's registration is guarded by a DOM condition, so the
///            determinate-DOM assumption proves them unreachable;
///  * #20     heap flush from incomplete DOM modeling makes the (aliased)
///            eval callee indeterminate; recovered by DetDOM;
///  * #21–#23 eval inside loops with DOM-dependent bounds (no determinate
///            trip count → no unrolling → no specialization); recovered by
///            DetDOM;
///  * #24     loop with a genuinely indeterminate bound (never recovered);
///  * #25–#27 missing required code (cannot run; paper drops 3);
///  * #28     not runnable in the harness (paper drops 1).
///
/// Expected totals: unevalizer 19/28; Spec 14/24 runnable (including 6 the
/// baseline cannot handle); Spec+DetDOM 20/24 — the paper's exact counts.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace dda;
using workloads::EvalBenchmark;

namespace {

std::vector<EvalBenchmark> buildSuite() {
  std::vector<EvalBenchmark> S;
  auto Add = [&](const char *Name, std::string Source, bool Runnable,
                 bool MissingCode, bool Unevalizer, bool Spec, bool DetDom) {
    S.push_back({Name, std::move(Source), Runnable, MissingCode, Unevalizer,
                 Spec, DetDom});
  };

  // ----- #1..#8: handled by both -----------------------------------------
  Add("const_literal", R"JS(
var x = eval("1 + 2");
print(x);
)JS",
      true, false, true, true, true);

  Add("concat_of_literals", R"JS(
var x = eval("2 * " + "3");
print(x);
)JS",
      true, false, true, true, true);

  Add("single_assign_local", R"JS(
var code = "10 - 4";
var x = eval(code);
print(x);
)JS",
      true, false, true, true, true);

  Add("object_literal_eval", R"JS(
var obj = eval("({a: 1, b: 2})");
print(obj.a + obj.b);
)JS",
      true, false, true, true, true);

  Add("function_definition", R"JS(
eval("function evaled() { return 7; }");
print(evaled());
)JS",
      true, false, true, true, true);

  Add("assignment_effect", R"JS(
var t = 0;
eval("t = 5;");
print(t);
)JS",
      true, false, true, true, true);

  Add("multi_statement", R"JS(
eval("var a = 1; var b = 2; print(a + b);");
)JS",
      true, false, true, true, true);

  Add("nested_concat", R"JS(
var x = eval("1 + " + ("2 + " + "3"));
print(x);
)JS",
      true, false, true, true, true);

  // ----- #9..#14: ours only ------------------------------------------------
  Add("ivymap_figure4", std::string(workloads::figure4()), true, false, false,
      true, true);

  Add("param_concat_lookup", R"JS(
var lookup = {north: function() { print("N"); },
              south: function() { print("S"); }};
function fire(id) {
  var f = eval("lookup['" + id + "']");
  if (f != undefined) { f(); }
}
fire("north");
fire("south");
)JS",
      true, false, false, true, true);

  Add("param_concat_call", R"JS(
function fa() { print("a"); }
function fb() { print("b"); }
function run(name) { eval(name + "();"); }
run("fa");
run("fb");
)JS",
      true, false, false, true, true);

  Add("forin_code_builder", R"JS(
var obj = {a: 1, b: 2, c: 3};
var sum = 0;
var code = "";
for (var k in obj) { code += "sum += obj." + k + ";"; }
eval(code);
print(sum);
)JS",
      true, false, false, true, true);

  Add("forin_dispatch", R"JS(
var handlers = {alpha: function() { print("A"); },
                beta: function() { print("B"); }};
var code = "";
for (var k in handlers) { code += "handlers." + k + "();"; }
eval(code);
)JS",
      true, false, false, true, true);

  Add("forin_first_key", R"JS(
var fields = {x: 10, y: 20, z: 30};
var first = "";
for (var f in fields) { if (first === "") { first = f; } }
print(eval("fields." + first));
)JS",
      true, false, false, true, true);

  // ----- #15: genuinely indeterminate -------------------------------------
  Add("random_argument", R"JS(
var x = eval("1 + " + Math.floor(Math.random() * 10));
print(typeof x);
)JS",
      true, false, false, false, false);

  // ----- #16..#19: not covered (unexercised handlers) ----------------------
  Add("dom_guarded_legacy", R"JS(
function legacyInit() { print("legacy"); }
var el16 = document.getElementById("widget");
if (el16.getAttribute("legacy") === "on") {
  el16.addEventListener("click", function() { eval("legacyInit();"); });
}
print("loaded16");
)JS",
      true, false, true, false, true); // DetDOM proves the branch dead.

  Add("dom_guarded_compat", R"JS(
function compatShim() { print("compat"); }
var cfg17 = document.getElementById("cfg");
if (cfg17.getAttribute("mode") === "compat") {
  cfg17.addEventListener("click", function() { eval("compatShim();"); });
}
print("loaded17");
)JS",
      true, false, true, false, true);

  Add("click_handler_eval", R"JS(
function onClickAction() { print("clicked"); }
var el18 = document.getElementById("button");
el18.addEventListener("click", function() { eval("onClickAction();"); });
print("loaded18");
)JS",
      true, false, true, false, false);

  Add("menu_handler_eval", R"JS(
function menuOpen() { print("menu"); }
var el19 = document.getElementById("menu");
el19.addEventListener("click", function() {
  eval("menuOpen();");
});
print("loaded19");
)JS",
      true, false, true, false, false);

  // ----- #20: DOM flush makes the aliased eval callee indeterminate --------
  Add("aliased_eval_after_flush", R"JS(
var lib = {doEval: eval};
function helperA(el) { el.setAttribute("a", "1"); }
function helperB(el) { el.setAttribute("b", "1"); }
var el20 = document.getElementById("root");
(document.title ? helperA : helperB)(el20);
lib.doEval("var z20 = 1; print(z20);");
)JS",
      true, false, true, false, true);

  // ----- #21..#23: DOM-dependent loop bounds --------------------------------
  Add("dom_bounded_loop_1", R"JS(
function tick() { print("t21"); }
var el21 = document.getElementById("list");
var n21 = el21.getAttribute("count").length % 3 + 2;
for (var i21 = 0; i21 < n21; i21++) {
  eval("tick();");
}
)JS",
      true, false, true, false, true);

  Add("dom_bounded_loop_2", R"JS(
function ping() { print("t22"); }
var n22 = document.title.length % 2 + 2;
for (var i22 = 0; i22 < n22; i22++) {
  eval("ping();");
}
)JS",
      true, false, true, false, true);

  Add("dom_bounded_loop_3", R"JS(
function pulse() { print("t23"); }
var el23 = document.getElementById("grid");
var n23 = el23.getAttribute("rows").length % 2 + 2;
for (var i23 = 0; i23 < n23; i23++) {
  eval("pulse();");
}
)JS",
      true, false, true, false, true);

  // ----- #24: genuinely indeterminate loop bound ----------------------------
  Add("random_bounded_loop", R"JS(
function cb0() { print("c0"); }
function cb1() { print("c1"); }
function cb2() { print("c2"); }
function cb3() { print("c3"); }
var n24 = Math.floor(Math.random() * 2) + 2;
for (var i24 = 0; i24 < n24; i24++) {
  eval("cb" + i24 + "();");
}
)JS",
      true, false, false, false, false);

  // ----- #25..#27: missing required code -----------------------------------
  Add("missing_tracker", R"JS(
trackerLib.init();
eval("print('track');");
)JS",
      true, true, true, false, false);

  Add("missing_widget_kit", R"JS(
var kit = widgetKit.create("panel");
eval("print('panel');");
kit.show();
)JS",
      true, true, true, false, false);

  Add("missing_ivy_variant", R"JS(
admap = externalAdConfig.map;
function showAd(slot) {
  var f = eval("admap['" + slot + "']");
  if (f != undefined) { f(); }
}
showAd("top");
)JS",
      true, true, false, false, false);

  // ----- #28: not runnable in the harness -----------------------------------
  Add("xhr_loader", R"JS(
var req = new XMLHttpRequest();
req.open("GET", "/data");
eval("print('loaded');");
)JS",
      false, false, true, false, false);

  return S;
}

} // namespace

const std::vector<EvalBenchmark> &workloads::evalSuite() {
  static const std::vector<EvalBenchmark> Suite = buildSuite();
  return Suite;
}
