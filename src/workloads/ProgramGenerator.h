//===- ProgramGenerator.h - Random MiniJS program generation -----*- C++ -*-==//
///
/// \file
/// Seeded random generation of well-formed, terminating MiniJS programs, in
/// the spirit of the paper's future-work plan to use automated test
/// generation [Artzi et al.] to improve coverage of the dynamic analysis.
/// Used by the fuzz suites: parser round-trips, interpreter determinism,
/// the Theorem 1 soundness harness, and specializer semantics preservation.
///
/// Generated programs are correct by construction:
///  * every referenced variable is previously declared, typed pools keep
///    calls landing on functions and property accesses on objects;
///  * loops are counted with small constant bounds, functions never recurse,
///    so every program terminates;
///  * throws only occur inside try/catch.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_WORKLOADS_PROGRAMGENERATOR_H
#define DDA_WORKLOADS_PROGRAMGENERATOR_H

#include <cstdint>
#include <string>

namespace dda {
namespace workloads {

/// Knobs for the generator.
struct GeneratorOptions {
  unsigned TopLevelStmts = 14;
  unsigned MaxBlockDepth = 3;
  unsigned MaxFunctions = 4;
  /// Include Math.random / DOM reads (the indeterminate sources).
  bool UseIndeterminacy = true;
  /// Include eval of constant strings.
  bool UseEval = true;
  /// Include for-in loops and computed property accesses.
  bool UseDynamicProperties = true;
};

/// Generates a program; the same (Seed, Options) always yields the same
/// source text.
std::string generateProgram(uint64_t Seed,
                            const GeneratorOptions &Opts = {});

} // namespace workloads
} // namespace dda

#endif // DDA_WORKLOADS_PROGRAMGENERATOR_H
