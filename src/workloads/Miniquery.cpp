//===- Miniquery.cpp - Synthetic jQuery-version stand-ins ------------------==//
///
/// Four versions of a small selector/effects library. Each version is
/// engineered to exhibit the structural property the paper reports for the
/// corresponding jQuery version in Table 1:
///
///  * 1.0 — accessor generation through computed property names in a
///    21-iteration loop, plus extend()-style plugin copying and a widget
///    registry; makes the baseline pointer analysis smear catastrophically
///    while the determinacy facts enable full specialization.
///  * 1.1 — the same machinery, but method names are derived from a DOM
///    attribute, so determinacy facts exist only under the determinate-DOM
///    assumption.
///  * 1.2 — the heavy machinery moved into a lazy initializer nobody calls;
///    startup performs >1000 DOM-conditional dispatches (heap flushes) that
///    are irrelevant to the static analysis.
///  * 1.3 — the heavy machinery runs inside event handlers registered during
///    startup; the per-handler heap flush destroys the facts, and
///    handler-reachable code defeats the static analysis in every
///    configuration.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace dda;

namespace {

/// Shared preamble: constructor, cap(), extend(), dispatcher, invoke().
const char *corePrelude() {
  return R"JS(
function cap(s) { return s[0].toUpperCase() + s.substr(1); }

function MiniQuery(selector) {
  this.selector = selector;
  this.size = 0;
}
MiniQuery.prototype.toString = function() {
  return "[mq " + this.selector + "]";
};

function extend(dst, src) {
  for (var k in src) {
    dst[k] = src[k];
  }
  return dst;
}

var readyHandlers = [];
function $(selector) {
  if (typeof selector === "string") {
    return new MiniQuery(selector);
  } else if (typeof selector === "function") {
    readyHandlers.push(selector);
    return null;
  } else {
    return selector;
  }
}

function invoke(obj, name) { return obj[name](); }
)JS";
}

/// The 21-name accessor table and the generation loop (the paper: "one loop
/// had to be unrolled 21 times to enable specialization of two critical
/// property writes").
const char *accessorGeneration() {
  return R"JS(
var attrNames = ["css", "attr", "html", "text", "val", "width", "height",
                 "top", "left", "opacity", "color", "margin", "padding",
                 "border", "font", "size", "weight", "display", "position",
                 "zindex", "overflow"];
function defAccessor(name) {
  MiniQuery.prototype["get" + cap(name)] =
    function() { return this["_" + name]; };
  MiniQuery.prototype["set" + cap(name)] =
    function(v) { this["_" + name] = v; return this; };
}
for (var ai = 0; ai < attrNames.length; ai++) {
  defAccessor(attrNames[ai]);
}
)JS";
}

/// Plugin tables copied onto the prototype with extend() (for-in + computed
/// store: lethal for the baseline, specialized via for-in unrolling).
const char *pluginTables() {
  return R"JS(
var fxPlugin = {
  fadeIn: function() { return this.setOpacity(1); },
  fadeOut: function() { return this.setOpacity(0); },
  slideUp: function() { return this.setHeight(0); },
  slideDown: function() { return this.setHeight(100); },
  animate: function(target) { return this.setTop(target); },
  stopFx: function() { return this; },
  delayFx: function(n) { this._delay = n; return this; },
  show: function() { return this.setDisplay("block"); },
  hide: function() { return this.setDisplay("none"); },
  toggle: function() { return this; }
};
var ajaxPlugin = {
  get: function(u) { this._url = u; return this; },
  post: function(u) { this._url = u; return this; },
  loadUrl: function(u) { return this.get(u); },
  ajax: function(o) { return this; },
  getJSON: function(u) { return this.get(u); },
  param: function(o) { return "q=1"; },
  serialize: function() { return this.selector; },
  abort: function() { return this; }
};
extend(MiniQuery.prototype, fxPlugin);
extend(MiniQuery.prototype, ajaxPlugin);
)JS";
}

/// Widget registry: factories stored under computed names and instantiated
/// through a generic create() — the megamorphic-call amplifier.
const char *widgetRegistry() {
  return R"JS(
var registry = {};
function register(name, factory) { registry[name] = factory; }
function create(name) { return registry[name](); }

register("panel", function() { return {
  init: function() { this.ok = 1; return this; },
  render: function() { return "panel"; },
  update: function(v) { this.v = v; return this; },
  destroy: function() { return null; } }; });
register("grid", function() { return {
  init: function() { this.rows = []; return this; },
  render: function() { return "grid"; },
  update: function(v) { this.rows.push(v); return this; },
  destroy: function() { return null; } }; });
register("tree", function() { return {
  init: function() { this.depth = 0; return this; },
  render: function() { return "tree"; },
  update: function(v) { this.depth = v; return this; },
  destroy: function() { return null; } }; });
register("menu", function() { return {
  init: function() { this.items = []; return this; },
  render: function() { return "menu"; },
  update: function(v) { this.items.push(v); return this; },
  destroy: function() { return null; } }; });
register("tabs", function() { return {
  init: function() { this.active = 0; return this; },
  render: function() { return "tabs"; },
  update: function(v) { this.active = v; return this; },
  destroy: function() { return null; } }; });
register("form", function() { return {
  init: function() { this.fields = {}; return this; },
  render: function() { return "form"; },
  update: function(v) { this.fields.last = v; return this; },
  destroy: function() { return null; } }; });
register("chart", function() { return {
  init: function() { this.series = []; return this; },
  render: function() { return "chart"; },
  update: function(v) { this.series.push(v); return this; },
  destroy: function() { return null; } }; });
register("modal", function() { return {
  init: function() { this.open = false; return this; },
  render: function() { return "modal"; },
  update: function(v) { this.open = v; return this; },
  destroy: function() { return null; } }; });

var widgetNames = ["panel", "grid", "tree", "menu", "tabs", "form",
                   "chart", "modal"];
for (var wi = 0; wi < widgetNames.length; wi++) {
  var w = create(widgetNames[wi]);
  w.init().update(wi);
  print(w.render());
}
)JS";
}


/// The component framework: 16 component prototypes (96 distinct closures)
/// registered under computed names, instantiated via extend(), cross-linked,
/// and driven through a generic dispatcher. This is the smear amplifier: the
/// baseline pointer analysis conflates all components and methods, while the
/// determinacy facts specialize every name and call.
///
/// \p NamePrefixExpr is "" for literal component names or an expression
/// prefix like `apiPrefix + ` for the DOM-derived namespace of 1.1.
/// \p DefsOnly emits only the prototype tables (used by 1.3, which runs the
/// instantiation storm inside an event handler).
std::string componentDefinitions(const std::string &NamePrefixExpr) {
  std::string Out = R"JS(
var components = {};
function defComponent(name, proto) { components[name] = proto; }
function instantiate(name) {
  var inst = { kind: name };
  extend(inst, components[name]);
  return inst;
}
var instReg = {};
)JS";
  for (int I = 0; I < 16; ++I) {
    std::string Id = (I < 10 ? "c0" : "c1") + std::to_string(I % 10);
    std::string NameExpr = NamePrefixExpr + "\"" + Id + "\"";
    Out += "defComponent(" + NameExpr + ", {\n";
    Out += "  setup: function(ctx) { this.ctx = ctx; this.id = \"" + Id +
           "\"; return this; },\n";
    Out += "  run: function() { return this.ctx ? \"run-" + Id +
           "\" : \"idle-" + Id + "\"; },\n";
    Out += "  emit: function() { return \"ev-" + Id + "\"; },\n";
    Out += "  link: function(o) { this.peer = o; return o; },\n";
    Out += "  sync: function() { this.stamp = " + std::to_string(I) +
           "; return this; },\n";
    Out += "  reset: function() { this.ctx = null; return this; }\n";
    Out += "});\n";
  }
  Out += "var compNames = [";
  for (int I = 0; I < 16; ++I) {
    std::string Id = (I < 10 ? "c0" : "c1") + std::to_string(I % 10);
    if (I)
      Out += ", ";
    Out += NamePrefixExpr + "\"" + Id + "\"";
  }
  Out += "];\n";
  return Out;
}

/// The instantiation + dispatch storm over the registered components.
const char *componentStorm() {
  return R"JS(
for (var ci = 0; ci < compNames.length; ci++) {
  instReg[compNames[ci]] = instantiate(compNames[ci]);
}
var opNames = ["setup", "sync", "emit"];
for (var si = 0; si < compNames.length; si++) {
  for (var oj = 0; oj < opNames.length; oj++) {
    invoke(instReg[compNames[si]], opNames[oj]);
  }
}
for (var li = 0; li < compNames.length; li++) {
  instReg[compNames[li]].link(instReg[compNames[(li + 1) % 16]]);
}
print("components:" + compNames.length);
)JS";
}

/// Library self-exercise via the accessor API and generic dispatch.
const char *usageSection() {
  return R"JS(
var q = $("#main");
q.setCss("red").setWidth(100).setHeight(50);
print(q.getCss(), q.getWidth(), q.getHeight());
var q2 = $("#sidebar");
q2.fadeIn().slideUp().hide();
invoke(q2, "show");
invoke(q2, "fadeOut");
$(function() { print("dom-ready"); });
)JS";
}

/// N DOM-conditional dispatches (each one is an indeterminate callee without
/// the determinate-DOM assumption → one heap flush each), plus two
/// genuinely random ones that flush in every configuration.
std::string domDispatchSection(int Count, bool IncludeRandom = true) {
  std::string Out = R"JS(
var touched = 0;
function touchDom(el) { touched++; return el; }
function skipDom(el) { return el; }
var domEls = [];
for (var di = 0; di < )JS";
  Out += std::to_string(Count);
  Out += R"JS(; di++) {
  var del = document.getElementById("item" + di);
  (del.active ? touchDom : skipDom)(del);
  domEls[di] = del;
}
)JS";
  if (IncludeRandom)
    Out += R"JS(
(Math.random() < 0.5 ? touchDom : skipDom)(document.getElementById("xa"));
(Math.random() < 0.5 ? touchDom : skipDom)(document.getElementById("xb"));
)JS";
  return Out;
}

std::string miniquery10() {
  std::string Out;
  Out += corePrelude();
  Out += accessorGeneration();
  Out += pluginTables();
  Out += widgetRegistry();
  Out += componentDefinitions("");
  Out += componentStorm();
  Out += usageSection();
  // 80 DOM flushes + 2 random ones = 82, matching the paper's Table 1 cell;
  // under DetDOM only the 2 random flushes remain.
  Out += domDispatchSection(80);
  Out += "print(\"miniquery 1.0 loaded\");\n";
  return Out;
}

std::string miniquery11() {
  std::string Out;
  Out += corePrelude();
  // DOM-derived method namespace: without DetDOM the prefix is
  // indeterminate, so every accessor name fact is lost.
  Out += R"JS(
var cfgEl = document.getElementById("mq-config");
var apiPrefix = cfgEl.getAttribute("prefix");
var attrNames = ["css", "attr", "html", "text", "val", "width", "height",
                 "top", "left", "opacity", "color", "margin", "padding",
                 "border", "font", "size", "weight", "display", "position",
                 "zindex", "overflow"];
function defAccessor(name) {
  MiniQuery.prototype[apiPrefix + "Get" + cap(name)] =
    function() { return this["_" + name]; };
  MiniQuery.prototype[apiPrefix + "Set" + cap(name)] =
    function(v) { this["_" + name] = v; return this; };
}
for (var ai = 0; ai < attrNames.length; ai++) {
  defAccessor(attrNames[ai]);
}
)JS";
  Out += pluginTables();
  Out += widgetRegistry();
  Out += componentDefinitions("apiPrefix + ");
  Out += componentStorm();
  Out += R"JS(
var q = $("#main");
q[apiPrefix + "SetCss"]("red");
q[apiPrefix + "SetWidth"](100);
print(q[apiPrefix + "GetCss"](), q[apiPrefix + "GetWidth"]());
var q2 = $("#sidebar");
q2.get("/api").abort();
$(function() { print("dom-ready"); });
)JS";
  // 103 DOM flushes + 4 random = 107 / 4, the paper's 1.1 cell.
  Out += domDispatchSection(103);
  Out += R"JS(
(Math.random() < 0.5 ? touchDom : skipDom)(document.getElementById("xc"));
(Math.random() < 0.5 ? touchDom : skipDom)(document.getElementById("xd"));
print("miniquery 1.1 loaded");
)JS";
  return Out;
}

std::string miniquery12() {
  std::string Out;
  Out += corePrelude();
  // Heavy machinery is defined but *lazy*: nothing calls initEngine without
  // client code, so the static analysis never has to look inside.
  Out += R"JS(
MiniQuery.prototype.initEngine = function() {
  var attrNames = ["css", "attr", "html", "text", "val", "width", "height",
                   "top", "left", "opacity", "color", "margin", "padding",
                   "border", "font", "size", "weight", "display", "position",
                   "zindex", "overflow"];
  function defAccessor(name) {
    MiniQuery.prototype["get" + cap(name)] =
      function() { return this["_" + name]; };
    MiniQuery.prototype["set" + cap(name)] =
      function(v) { this["_" + name] = v; return this; };
  }
  for (var ai = 0; ai < attrNames.length; ai++) {
    defAccessor(attrNames[ai]);
  }
  var registry = {};
  function register(name, factory) { registry[name] = factory; }
  function create(name) { return registry[name](); }
  register("panel", function() { return {init: function() { return this; }}; });
  register("grid", function() { return {init: function() { return this; }}; });
  var names = ["panel", "grid"];
  for (var wi = 0; wi < names.length; wi++) {
    create(names[wi]).init();
  }
  return this;
};
var q = $("#main");
print(q.toString());
$(function() { print("dom-ready"); });
)JS";
  // Startup hammers the DOM: >1000 flushes without DetDOM, 0 with. The
  // analysis stops collecting facts, but none of this code matters
  // statically, so every configuration still completes.
  // No genuinely random dispatches: 1.2's cell is (>1000) vs (0).
  Out += domDispatchSection(1030, /*IncludeRandom=*/false);
  Out += "print(\"miniquery 1.2 loaded\");\n";
  return Out;
}

std::string miniquery13() {
  std::string Out;
  Out += corePrelude();
  // Component prototypes are built at the top level; the heavy machinery
  // that *uses* them runs inside event handlers registered during startup.
  // Handler entry flushes the heap, so every read of the pre-existing tables
  // is indeterminate inside: the facts die, and the indeterminate-base
  // stores keep flushing.
  Out += componentDefinitions("");
  Out += R"JS(
document.addEventListener("ready", function() {
  var attrNames = ["css", "attr", "html", "text", "val", "width", "height",
                   "top", "left", "opacity", "color", "margin", "padding",
                   "border", "font", "size", "weight", "display", "position",
                   "zindex", "overflow"];
  function defAccessor(name) {
    MiniQuery.prototype["get" + cap(name)] =
      function() { return this["_" + name]; };
    MiniQuery.prototype["set" + cap(name)] =
      function(v) { this["_" + name] = v; return this; };
  }
  for (var ai = 0; ai < attrNames.length; ai++) {
    defAccessor(attrNames[ai]);
  }
  var fxPlugin = {
    fadeIn: function() { return this.setOpacity(1); },
    fadeOut: function() { return this.setOpacity(0); },
    slideUp: function() { return this.setHeight(0); },
    slideDown: function() { return this.setHeight(100); },
    show: function() { return this.setDisplay("block"); },
    hide: function() { return this.setDisplay("none"); }
  };
  extend(MiniQuery.prototype, fxPlugin);
  // The component storm against the pre-handler tables.
  for (var ci = 0; ci < compNames.length; ci++) {
    instReg[compNames[ci]] = instantiate(compNames[ci]);
  }
  var opNames = ["setup", "sync", "emit"];
  for (var si = 0; si < compNames.length; si++) {
    for (var oj = 0; oj < opNames.length; oj++) {
      invoke(instReg[compNames[si]], opNames[oj]);
    }
  }
  // Cache priming: every store has an indeterminate base → a flush each.
  var cache = MiniQuery.prototype;
  for (var pi = 0; pi < 1000; pi++) {
    cache["slot" + pi] = pi;
  }
  var q = $("#main");
  q.setCss("red").fadeIn();
  print(q.getCss());
});
document.addEventListener("load", function() {
  var registry = {};
  function register(name, factory) { registry[name] = factory; }
  function create(name) { return registry[name](); }
  register("panel", function() { return {
    init: function() { return this; },
    render: function() { return "panel"; } }; });
  register("grid", function() { return {
    init: function() { return this; },
    render: function() { return "grid"; } }; });
  var names = ["panel", "grid"];
  for (var wi = 0; wi < names.length; wi++) {
    print(create(names[wi]).init().render());
  }
});
// An unexercised handler keeps even more code live for the static analysis.
document.getElementById("app").addEventListener("click", function() {
  var q = $("#clicked");
  invoke(q, "toString");
});
print("miniquery 1.3 loaded");
)JS";
  return Out;
}

} // namespace

std::string workloads::miniquery(int Minor) {
  switch (Minor) {
  case 0:
    return miniquery10();
  case 1:
    return miniquery11();
  case 2:
    return miniquery12();
  case 3:
    return miniquery13();
  default:
    return "";
  }
}
