//===- Workloads.h - Benchmark programs (paper workload stand-ins) -*- C++-*-=//
///
/// \file
/// Embedded MiniJS programs reproducing the paper's evaluation workloads:
///
///  * the worked examples of Figures 1–4;
///  * four "miniquery" library versions engineered to exhibit the structural
///    property that drove each jQuery version's row in Table 1
///    (1.0: accessor-generation loops needing 21× unrolling; 1.1:
///    DOM-dependent initialization; 1.2: lazy init + flush-heavy but
///    analysis-irrelevant startup; 1.3: heavy code inside event handlers);
///  * a 28-program eval-elimination suite with the same category counts as
///    the Jensen et al. suite the paper evaluates on (Section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef DDA_WORKLOADS_WORKLOADS_H
#define DDA_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace dda {
namespace workloads {

/// Paper Figure 1: the polymorphic jQuery-style `$` dispatcher.
const char *figure1();
/// Paper Figure 2: the worked determinacy example.
const char *figure2();
/// Paper Figure 3: accessor generation via computed property names.
const char *figure3();
/// Paper Figure 4: eval of a cross-statement string concatenation.
const char *figure4();

/// miniquery version sources; \p Minor is 0..3 for "1.0".."1.3".
std::string miniquery(int Minor);

/// One program of the eval-elimination suite.
struct EvalBenchmark {
  const char *Name;
  std::string Source;
  /// False for the one benchmark that cannot run in our harness (the
  /// paper's "cannot be run in ZombieJS" case).
  bool Runnable;
  /// True for the three benchmarks with missing required code.
  bool MissingCode;
  /// Expected result of the syntactic unevalizer-style baseline.
  bool ExpectedUnevalizer;
  /// Expected result of our determinacy-based elimination (Spec).
  bool ExpectedSpec;
  /// Expected result under the determinate-DOM assumption (Spec+DetDOM).
  bool ExpectedSpecDetDom;
};

/// The 28-program suite.
const std::vector<EvalBenchmark> &evalSuite();

} // namespace workloads
} // namespace dda

#endif // DDA_WORKLOADS_WORKLOADS_H
