//===- ProgramGenerator.cpp -------------------------------------------------==//

#include "workloads/ProgramGenerator.h"

#include "support/RNG.h"

#include <vector>

using namespace dda;
using workloads::GeneratorOptions;

namespace {

/// Generation state: typed pools of declared names plus emission helpers.
class Generator {
public:
  Generator(uint64_t Seed, const GeneratorOptions &Opts)
      : Rng(Seed ^ 0xddaddaddaULL), Opts(Opts) {}

  std::string run() {
    Out.clear();
    // Seed pools so expressions always have material to work with.
    declareNumber("n0", "1");
    declareNumber("n1", "7");
    declareString("s0", "\"alpha\"");
    declareString("s1", "\"beta\"");
    declareObject("o0", "{a: 1, b: \"two\"}");
    emitFunctions();
    for (unsigned I = 0; I < Opts.TopLevelStmts; ++I)
      emitStmt(0);
    emitSummary();
    return Out;
  }

private:
  // ------------------------------------------------------------- helpers --
  uint64_t pick(uint64_t Bound) { return Rng.nextBelow(Bound); }
  bool chance(unsigned Percent) { return pick(100) < Percent; }

  std::string fresh(const char *Prefix) {
    return std::string(Prefix) + std::to_string(++NameCounter);
  }

  void line(const std::string &Text) {
    for (unsigned I = 0; I < Indent; ++I)
      Out += "  ";
    Out += Text;
    Out += '\n';
  }

  // Pools only grow at block depth 0: a declaration inside a branch may
  // never execute, so nested names must not be referenced elsewhere.
  void declareNumber(const std::string &Name, const std::string &Init,
                     bool Pool = true) {
    line("var " + Name + " = " + Init + ";");
    if (Pool)
      Numbers.push_back(Name);
  }
  void declareString(const std::string &Name, const std::string &Init,
                     bool Pool = true) {
    line("var " + Name + " = " + Init + ";");
    if (Pool)
      Strings.push_back(Name);
  }
  void declareObject(const std::string &Name, const std::string &Init,
                     bool Pool = true) {
    line("var " + Name + " = " + Init + ";");
    if (Pool)
      Objects.push_back(Name);
  }

  std::string anyNumber() {
    if (chance(30))
      return std::to_string(pick(100));
    return Numbers[pick(Numbers.size())];
  }

  std::string anyString() {
    if (chance(30))
      return "\"k" + std::to_string(pick(8)) + "\"";
    return Strings[pick(Strings.size())];
  }

  std::string anyObject() { return Objects[pick(Objects.size())]; }

  /// A side-effect-free numeric expression.
  std::string numberExpr() {
    switch (pick(6)) {
    case 0:
      return anyNumber() + " + " + anyNumber();
    case 1:
      return anyNumber() + " * " + std::to_string(1 + pick(5));
    case 2:
      return anyNumber() + " - " + anyNumber();
    case 3:
      return anyNumber() + " % " + std::to_string(2 + pick(5));
    case 4:
      if (Opts.UseIndeterminacy && chance(40))
        return "Math.floor(Math.random() * " + std::to_string(2 + pick(8)) +
               ")";
      return "Math.abs(" + anyNumber() + ")";
    default:
      return anyNumber();
    }
  }

  std::string stringExpr() {
    switch (pick(5)) {
    case 0:
      return anyString() + " + " + anyString();
    case 1:
      return anyString() + " + " + anyNumber();
    case 2:
      return anyString() + ".toUpperCase()";
    case 3:
      if (Opts.UseIndeterminacy && chance(30))
        return "\"\" + document.title";
      return anyString() + ".substr(" + std::to_string(pick(3)) + ")";
    default:
      return anyString();
    }
  }

  std::string boolExpr() {
    switch (pick(5)) {
    case 0:
      return anyNumber() + " < " + anyNumber();
    case 1:
      return anyString() + " === " + anyString();
    case 2:
      if (Opts.UseIndeterminacy)
        return "Math.random() < 0.5";
      return anyNumber() + " >= " + std::to_string(pick(50));
    case 3:
      // Always-true / always-false but indeterminate when randomness is on.
      if (Opts.UseIndeterminacy)
        return chance(50) ? "Math.random() < 2" : "Math.random() > 2";
      return chance(50) ? "1 < 2" : "2 < 1";
    default:
      return "typeof " + anyString() + " === \"string\"";
    }
  }

  // ----------------------------------------------------------- functions --
  void emitFunctions() {
    unsigned N = 1 + pick(Opts.MaxFunctions);
    for (unsigned I = 0; I < N; ++I) {
      std::string Name = fresh("fn");
      line("function " + Name + "(p, q) {");
      ++Indent;
      // Body draws only on parameters and globals declared so far, and only
      // calls previously generated functions (no recursion, so termination
      // is structural).
      if (chance(60))
        line("var t = p + q;");
      else
        line("var t = " + numberExpr() + ";");
      if (chance(50)) {
        line("if (" + boolExpr() + ") {");
        ++Indent;
        if (chance(50) && !Objects.empty())
          line(anyObject() + ".from" + Name + " = t;");
        else
          line("t = t + 1;");
        --Indent;
        line("}");
      }
      if (!Functions.empty() && chance(40))
        line("t = t + " + Functions[pick(Functions.size())] + "(" +
             anyNumber() + ", 1);");
      line(chance(70) ? "return t;" : "return p;");
      --Indent;
      line("}");
      Functions.push_back(Name);
    }
  }

  // ------------------------------------------------------------ statements --
  void emitStmt(unsigned Depth) {
    switch (pick(13)) {
    case 0:
      declareNumber(fresh("n"), numberExpr(), Depth == 0);
      return;
    case 1:
      declareString(fresh("s"), stringExpr(), Depth == 0);
      return;
    case 2: {
      std::string Name = fresh("o");
      declareObject(Name, "{x: " + numberExpr() + ", tag: " + anyString() +
                              "}",
                    Depth == 0);
      return;
    }
    case 3: // Property write, static or computed.
      if (Opts.UseDynamicProperties && chance(40))
        line(anyObject() + "[" + anyString() + "] = " + numberExpr() + ";");
      else
        line(anyObject() + ".w" + std::to_string(pick(4)) + " = " +
             numberExpr() + ";");
      return;
    case 4: // Property read into a number.
      declareNumber(fresh("n"), "0 + (" + anyObject() + ".x || 0)",
                    Depth == 0);
      return;
    case 5: { // Conditional.
      if (Depth >= Opts.MaxBlockDepth) {
        line(Numbers[pick(Numbers.size())] + "++;");
        return;
      }
      line("if (" + boolExpr() + ") {");
      ++Indent;
      emitStmt(Depth + 1);
      if (chance(50))
        emitStmt(Depth + 1);
      --Indent;
      if (chance(40)) {
        line("} else {");
        ++Indent;
        emitStmt(Depth + 1);
        --Indent;
      }
      line("}");
      return;
    }
    case 6: { // Counted loop.
      if (Depth >= Opts.MaxBlockDepth) {
        line(Numbers[pick(Numbers.size())] + " += 2;");
        return;
      }
      std::string Var = fresh("i");
      line("for (var " + Var + " = 0; " + Var + " < " +
           std::to_string(2 + pick(4)) + "; " + Var + "++) {");
      ++Indent;
      emitStmt(Depth + 1);
      if (chance(30))
        line("if (" + boolExpr() + ") { continue; }");
      --Indent;
      line("}");
      return;
    }
    case 7: { // For-in.
      if (!Opts.UseDynamicProperties || Depth >= Opts.MaxBlockDepth) {
        line(Numbers[pick(Numbers.size())] + "--;");
        return;
      }
      std::string Var = fresh("k");
      std::string Acc = fresh("s");
      declareString(Acc, "\"\"", Depth == 0);
      line("for (var " + Var + " in " + anyObject() + ") {");
      ++Indent;
      line(Acc + " += " + Var + ";");
      --Indent;
      line("}");
      return;
    }
    case 8: { // Call a generated function.
      declareNumber(fresh("n"),
                    Functions[pick(Functions.size())] + "(" + anyNumber() +
                        ", " + anyNumber() + ")",
                    Depth == 0);
      return;
    }
    case 9: { // try/throw/catch.
      if (Depth >= Opts.MaxBlockDepth) {
        line(Numbers[pick(Numbers.size())] + " *= 2;");
        return;
      }
      std::string Caught = fresh("s");
      declareString(Caught, "\"no\"", Depth == 0);
      line("try {");
      ++Indent;
      if (chance(50))
        line("if (" + boolExpr() + ") { throw \"e" +
             std::to_string(pick(5)) + "\"; }");
      else
        emitStmt(Depth + 1);
      --Indent;
      line("} catch (ex) {");
      ++Indent;
      line(Caught + " = \"\" + ex;");
      --Indent;
      line("}");
      return;
    }
    case 10: { // Ternary / logical.
      declareNumber(fresh("n"),
                    "(" + boolExpr() + ") ? " + anyNumber() + " : " +
                        anyNumber(),
                    Depth == 0);
      return;
    }
    case 11: { // switch over a small numeric discriminant.
      if (Depth >= Opts.MaxBlockDepth) {
        line(Numbers[pick(Numbers.size())] + " += 3;");
        return;
      }
      std::string Out = fresh("s");
      declareString(Out, "\"init\"", Depth == 0);
      line("switch (" + numberExpr() + " % 3) {");
      line("case 0:");
      ++Indent;
      line(Out + " = \"zero\";");
      if (chance(50))
        line("break;");
      --Indent;
      line("case 1:");
      ++Indent;
      line(Out + " = \"one\";");
      line("break;");
      --Indent;
      line("default:");
      ++Indent;
      line(Out + " = \"many\";");
      --Indent;
      line("}");
      return;
    }
    default: { // eval of a constant expression (optional).
      if (!Opts.UseEval) {
        line(Numbers[pick(Numbers.size())] + " += 1;");
        return;
      }
      declareNumber(fresh("n"),
                    "eval(\"" + std::to_string(pick(50)) + " + " +
                        std::to_string(pick(50)) + "\")",
                    Depth == 0);
      return;
    }
    }
  }

  void emitSummary() {
    // Deterministic observable endpoints for differential testing.
    std::string Nums;
    for (size_t I = 0; I < Numbers.size(); ++I) {
      if (I)
        Nums += " + ";
      Nums += Numbers[I];
    }
    line("var summaryN = " + Nums + ";");
    std::string Strs;
    for (size_t I = 0; I < Strings.size(); ++I) {
      if (I)
        Strs += " + \"|\" + ";
      Strs += Strings[I];
    }
    line("var summaryS = " + Strs + ";");
    line("print(summaryN, summaryS);");
    for (const std::string &O : Objects)
      line("print(" + O + ".x, " + O + ".tag);");
  }

  RNG Rng;
  const GeneratorOptions &Opts;
  std::string Out;
  unsigned Indent = 0;
  unsigned NameCounter = 0;
  std::vector<std::string> Numbers;
  std::vector<std::string> Strings;
  std::vector<std::string> Objects;
  std::vector<std::string> Functions;
};

} // namespace

std::string workloads::generateProgram(uint64_t Seed,
                                       const GeneratorOptions &Opts) {
  Generator G(Seed, Opts);
  return G.run();
}
