//===- Figures.cpp - The paper's worked examples ---------------------------==//

#include "workloads/Workloads.h"

using namespace dda;

const char *workloads::figure1() {
  return R"JS(
function isHTML(s) { return s.indexOf("<") === 0; }
var readyHandlers = [];
function $(selector) {
  if (typeof selector === "string") {
    if (isHTML(selector)) {
      print("parse-html:" + selector);
      return {kind: "dom", html: selector};
    } else {
      print("css-query:" + selector);
      return {kind: "css", query: selector};
    }
  } else if (typeof selector === "function") {
    readyHandlers.push(selector);
    return null;
  } else {
    return [selector];
  }
}
$("div.menu");
$("<p>hi</p>");
$(function() { print("ready"); });
$(42);
)JS";
}

const char *workloads::figure2() {
  return R"JS(
function checkf(p) {
  if (p.f < 32)
    setg(p, 42);
}
function setg(r, v) {
  r.g = v;
}
var x = { f: 23 },
    y = { f: Math.random() * 100 };
checkf(x);
checkf(y);
(y.f > 50 ? checkf : setg)(x, 72);
var z = { f: x.g - 16, h: true };
checkf(z);
)JS";
}

const char *workloads::figure3() {
  return R"JS(
function Rectangle(w, h) {
  this.width = w;
  this.height = h;
}
Rectangle.prototype.toString = function() {
  return "[" + this.width + "x" + this.height + "]";
};
String.prototype.cap = function() {
  return this[0].toUpperCase() + this.substr(1);
};
function defAccessors(prop) {
  Rectangle.prototype["get" + prop.cap()] =
    function() { return this[prop]; };
  Rectangle.prototype["set" + prop.cap()] =
    function(v) { this[prop] = v; };
}
var props = ["width", "height"];
for (var i = 0; i < props.length; i++)
  defAccessors(props[i]);
var r = new Rectangle(20, 30);
r.setWidth(r.getWidth() + 20);
alert(r.toString());
)JS";
}

const char *workloads::figure4() {
  return R"JS(
ivymap = window.ivymap || {};
ivymap['pc.sy.banner.tcck.'] = function() { print("banner:tcck"); };
function showIvyViaJs(locationId) {
  var _f = undefined;
  var _fconv = "ivymap['" + locationId + "']";
  try {
    _f = eval(_fconv);
    if (_f != undefined) {
      _f();
    }
  } catch (e) {
  }
}
showIvyViaJs('pc.sy.banner.tcck.');
showIvyViaJs('pc.sy.banner.duilian.');
)JS";
}
