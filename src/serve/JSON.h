//===- JSON.h - Minimal JSON for the serve wire protocol ---------*- C++ -*-==//
///
/// \file
/// A deliberately small JSON reader/writer for the line-delimited serve
/// protocol. Tenant input is hostile by assumption, so the parser is
/// defensive end to end: depth-limited recursion (a `[[[[...` bomb returns
/// a typed error instead of blowing the stack), strict string scanning
/// with bounded escapes (surrogate-pair `\uXXXX` escapes are combined
/// into one real UTF-8 code point and lone halves rejected, so decoded
/// strings are never CESU-8), and no exceptions — every parse
/// failure is a (position, message) result the caller turns into a
/// `bad_request` response. The writer escapes everything JSON requires
/// (quotes, backslashes, control bytes) so analysis output — arbitrary
/// tenant-program print() bytes — round-trips safely inside a response
/// line.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SERVE_JSON_H
#define DDA_SERVE_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dda {
namespace json {

/// A parsed JSON value. Objects keep their members in a sorted map —
/// duplicate keys take the last value, matching common JSON semantics.
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return B; }
  double number() const { return Num; }
  const std::string &str() const { return Str; }
  const std::vector<Value> &items() const { return Items; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value *get(const std::string &Key) const;

  /// Number that is a non-negative integer representable in 64 bits;
  /// false otherwise (NaN, negative, fractional, > 2^53 loses precision so
  /// we reject > 2^53 as well: budgets and seeds never need more).
  bool asU64(uint64_t &Out) const;

  static Value null() { return Value(); }
  static Value boolean(bool V);
  static Value number(double V);
  static Value string(std::string V);

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Items;
  std::map<std::string, Value> Members;
};

/// Parse outcome: Ok, or a message with the byte offset it refers to.
struct ParseResult {
  bool Ok = false;
  Value V;
  std::string Error;
  size_t ErrorAt = 0;
};

/// Parses exactly one JSON value spanning the whole input (trailing
/// whitespace allowed). \p MaxDepth bounds nesting of arrays/objects.
ParseResult parse(std::string_view Text, unsigned MaxDepth = 64);

/// Appends \p S to \p Out as a quoted, escaped JSON string literal.
void appendQuoted(std::string &Out, std::string_view S);

/// Renders a double the way the protocol emits numbers: integral values
/// without a fraction, everything else with enough digits to round-trip.
void appendNumber(std::string &Out, double V);

} // namespace json
} // namespace dda

#endif // DDA_SERVE_JSON_H
