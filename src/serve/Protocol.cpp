//===- Protocol.cpp -------------------------------------------------------==//

#include "serve/Protocol.h"

#include "serve/JSON.h"

#include <algorithm>
#include <cstdio>

using namespace dda;
using namespace dda::serve;

const char *dda::serve::errorKindName(ErrorKind K) {
  switch (K) {
  case ErrorKind::BadRequest:
    return "bad_request";
  case ErrorKind::TooLarge:
    return "too_large";
  case ErrorKind::ParseError:
    return "parse_error";
  case ErrorKind::ProgramError:
    return "program_error";
  case ErrorKind::ResourceTrap:
    return "resource_trap";
  case ErrorKind::Overloaded:
    return "overloaded";
  case ErrorKind::ShuttingDown:
    return "shutting_down";
  case ErrorKind::Internal:
    return "internal";
  }
  return "?";
}

namespace {

bool failReq(ErrorKind &EK, std::string &Message, const std::string &Msg) {
  EK = ErrorKind::BadRequest;
  Message = Msg;
  return false;
}

/// Re-serializes a parsed id member for verbatim echo. Only scalar ids are
/// accepted (objects/arrays as correlation ids are a smell, reject them).
bool renderId(const json::Value &V, std::string &Out) {
  switch (V.kind()) {
  case json::Value::Kind::Null:
    Out = "null";
    return true;
  case json::Value::Kind::Bool:
    Out = V.boolean() ? "true" : "false";
    return true;
  case json::Value::Kind::Number:
    Out.clear();
    json::appendNumber(Out, V.number());
    return true;
  case json::Value::Kind::String:
    Out.clear();
    json::appendQuoted(Out, V.str());
    return true;
  default:
    return false;
  }
}

bool readU64Field(const json::Value &V, const char *Name, uint64_t &Out,
                  ErrorKind &EK, std::string &Message) {
  if (!V.asU64(Out))
    return failReq(EK, Message,
                   std::string(Name) + " must be a non-negative integer");
  return true;
}

} // namespace

bool dda::serve::parseRequest(const std::string &Line, Request &Out,
                              ErrorKind &EK, std::string &Message) {
  json::ParseResult P = json::parse(Line, kMaxJsonDepth);
  if (!P.Ok)
    return failReq(EK, Message,
                   "malformed JSON at byte " + std::to_string(P.ErrorAt) +
                       ": " + P.Error);
  if (!P.V.isObject())
    return failReq(EK, Message, "request must be a JSON object");

  // Echo `id` even for invalid requests, so clients can correlate errors.
  if (const json::Value *Id = P.V.get("id"))
    if (!renderId(*Id, Out.IdJson))
      return failReq(EK, Message, "id must be a scalar");

  bool SawCmd = false;
  for (const auto &[Key, V] : P.V.Members) {
    if (Key == "id") {
      continue; // Handled above.
    } else if (Key == "cmd") {
      SawCmd = true;
      if (!V.isString())
        return failReq(EK, Message, "cmd must be a string");
      if (V.str() == "analyze")
        Out.Cmd = Request::Command::Analyze;
      else if (V.str() == "ping")
        Out.Cmd = Request::Command::Ping;
      else if (V.str() == "stats")
        Out.Cmd = Request::Command::Stats;
      else
        return failReq(EK, Message, "unknown cmd: " + V.str());
    } else if (Key == "source") {
      if (!V.isString())
        return failReq(EK, Message, "source must be a string");
      Out.Source = V.str();
    } else if (Key == "path") {
      if (!V.isString() || V.str().empty())
        return failReq(EK, Message, "path must be a non-empty string");
      Out.Path = V.str();
    } else if (Key == "seeds") {
      if (!V.isArray() || V.items().empty())
        return failReq(EK, Message, "seeds must be a non-empty array");
      if (V.items().size() > kMaxSeedsPerRequest)
        return failReq(EK, Message,
                       "too many seeds (max " +
                           std::to_string(kMaxSeedsPerRequest) + ")");
      for (const json::Value &S : V.items()) {
        uint64_t Seed = 0;
        if (!S.asU64(Seed))
          return failReq(EK, Message,
                         "seeds must be non-negative integers");
        Out.Seeds.push_back(Seed);
      }
    } else if (Key == "engine") {
      ExecEngine E;
      if (!V.isString() || !parseExecEngine(V.str(), E))
        return failReq(EK, Message, "engine must be 'bytecode' or 'tree'");
      Out.Engine = E;
    } else if (Key == "detdom") {
      if (!V.isBool())
        return failReq(EK, Message, "detdom must be a boolean");
      Out.DetDom = V.boolean();
    } else if (Key == "no_cache") {
      if (!V.isBool())
        return failReq(EK, Message, "no_cache must be a boolean");
      Out.NoCache = V.boolean();
    } else if (Key == "max_steps") {
      uint64_t N;
      if (!readU64Field(V, "max_steps", N, EK, Message))
        return false;
      Out.MaxSteps = N;
    } else if (Key == "deadline_ms") {
      uint64_t N;
      if (!readU64Field(V, "deadline_ms", N, EK, Message))
        return false;
      Out.DeadlineMs = N;
    } else if (Key == "max_heap") {
      uint64_t N;
      if (!readU64Field(V, "max_heap", N, EK, Message))
        return false;
      Out.MaxHeapCells = N;
    } else if (Key == "cf_fuel") {
      uint64_t N;
      if (!readU64Field(V, "cf_fuel", N, EK, Message))
        return false;
      Out.CfFuel = N;
    } else if (Key == "max_call_depth") {
      uint64_t N;
      if (!readU64Field(V, "max_call_depth", N, EK, Message))
        return false;
      Out.MaxCallDepth = static_cast<unsigned>(std::min<uint64_t>(N, 1u << 20));
    } else if (Key == "max_eval_depth") {
      uint64_t N;
      if (!readU64Field(V, "max_eval_depth", N, EK, Message))
        return false;
      Out.MaxEvalDepth = static_cast<unsigned>(std::min<uint64_t>(N, 1u << 20));
    } else if (Key == "inject_fault") {
      if (!V.isString())
        return failReq(EK, Message, "inject_fault must be a string spec");
      std::string Error;
      Out.Injector = FaultInjector::parse(V.str(), &Error);
      if (!Out.Injector)
        return failReq(EK, Message, "inject_fault: " + Error);
    } else {
      // Strict schema: a typo'd budget field silently ignored would run
      // with the wrong limits, so unknown members are an error.
      return failReq(EK, Message, "unknown request member: " + Key);
    }
  }

  if (!SawCmd)
    return failReq(EK, Message, "missing cmd");
  if (Out.Cmd == Request::Command::Analyze) {
    if (Out.Source.empty() == Out.Path.empty())
      return failReq(EK, Message,
                     "analyze needs exactly one of source or path");
  } else if (!Out.Source.empty() || !Out.Path.empty()) {
    return failReq(EK, Message, "source/path only apply to analyze");
  }
  if (Out.Seeds.empty())
    Out.Seeds.push_back(1);
  return true;
}

//===----------------------------------------------------------------------===//
// Fingerprint and payload
//===----------------------------------------------------------------------===//

namespace {

void appendSortedIds(std::string &Out, const NodeBitSet &S) {
  // NodeBitSet iterates in ascending id order — already the sorted order
  // this digest has always rendered.
  for (NodeID Id : S) {
    Out += std::to_string(Id);
    Out += ',';
  }
}

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

uint64_t dda::serve::factFingerprint(const AnalysisResult &R) {
  // Mirrors the parallel-engine determinism tests: render everything a
  // client can observe, in a fixed order, and hash it. Facts.dump sorts by
  // (node, ctx, kind, index), so the rendering is deterministic.
  std::string Out;
  Out += "ok=" + std::to_string(R.Ok);
  Out += " trap=" + std::string(trapKindName(R.Trap));
  Out += " error=" + R.Error;
  Out += "\noutput=" + R.Output;
  Out += "\nfacts:\n" + R.Facts.dump(R.Contexts);
  Out += "calls=";
  appendSortedIds(Out, R.ExecutedCalls);
  Out += "\nstmts=";
  appendSortedIds(Out, R.ExecutedStmts);
  Out += "\nflushes=" + std::to_string(R.Stats.HeapFlushes);
  Out += " cntr=" + std::to_string(R.Stats.Counterfactuals);
  Out += " aborts=" + std::to_string(R.Stats.CounterfactualAborts);
  Out += " journal=" + std::to_string(R.Stats.JournalEntries);
  Out += " steps=" + std::to_string(R.Stats.StepsUsed);
  Out += " flushlimit=" + std::to_string(R.Stats.FlushLimitHit);
  Out += "\ndegradation=" + R.Degradation.str();
  Out += " eventsTotal=" + std::to_string(R.Degradation.EventsTotal);
  return fnv1a(Out);
}

int dda::serve::analysisExitCode(const AnalysisResult &R) {
  if (R.Ok)
    return R.Trap == TrapKind::None ? 0 : 3;
  if (R.Trap == TrapKind::None)
    return 1; // Program-level failure without a trap.
  return isResourceTrap(R.Trap) ? 3 : 4;
}

std::string dda::serve::analysisPayloadJson(const AnalysisResult &R,
                                            ExecEngine Engine,
                                            const std::vector<uint64_t> &Seeds) {
  std::string Out;
  Out.reserve(256 + R.Output.size());
  if (!R.Ok) {
    // The run is invalid end to end: report it as a typed error payload,
    // with the trap context preserved.
    ErrorKind K = R.Trap == TrapKind::None ? ErrorKind::ProgramError
                  : isResourceTrap(R.Trap) ? ErrorKind::ResourceTrap
                                           : ErrorKind::Internal;
    Out += "{\"status\":\"error\",\"error\":\"";
    Out += errorKindName(K);
    Out += "\",\"exit_code\":";
    Out += std::to_string(analysisExitCode(R));
    Out += ",\"trap\":\"";
    Out += trapKindName(R.Trap);
    Out += "\",\"message\":";
    json::appendQuoted(Out, R.Error);
    Out += '}';
    return Out;
  }
  char Hex[24];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(factFingerprint(R)));
  Out += "{\"status\":\"ok\",\"exit_code\":";
  Out += std::to_string(analysisExitCode(R));
  Out += ",\"engine\":\"";
  Out += execEngineName(Engine);
  Out += "\",\"seeds\":[";
  for (size_t I = 0; I < Seeds.size(); ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(Seeds[I]);
  }
  Out += "],\"facts\":";
  Out += std::to_string(R.Facts.size());
  Out += ",\"determinate\":";
  Out += std::to_string(R.Facts.countDeterminate());
  Out += ",\"fingerprint\":\"";
  Out += Hex;
  Out += "\",\"trap\":\"";
  Out += trapKindName(R.Trap);
  Out += "\",\"degraded\":";
  Out += R.Degradation.degraded() ? "true" : "false";
  Out += ",\"degradation_events\":";
  Out += std::to_string(R.Degradation.EventsTotal);
  Out += ",\"injected\":";
  Out += (R.Trap != TrapKind::None && R.Degradation.Trip.Injected) ? "true"
                                                                   : "false";
  Out += ",\"steps\":";
  Out += std::to_string(R.Stats.StepsUsed);
  Out += ",\"flushes\":";
  Out += std::to_string(R.Stats.HeapFlushes);
  Out += ",\"counterfactuals\":";
  Out += std::to_string(R.Stats.Counterfactuals);
  // Undo-engine observability. Deliberately NOT part of the fingerprint:
  // these describe how branches were undone, not what the analysis
  // concluded, and legitimately differ between undo engines and with
  // branch parallelism on or off.
  Out += ",\"snapshot_forks\":";
  Out += std::to_string(R.Stats.SnapshotForks);
  Out += ",\"cow_copies\":";
  Out += std::to_string(R.Stats.CowCopies);
  Out += ",\"parallel_branch_tasks\":";
  Out += std::to_string(R.Stats.ParallelBranchTasks);
  Out += ",\"parallel_branch_commits\":";
  Out += std::to_string(R.Stats.ParallelBranchCommits);
  Out += ",\"output\":";
  json::appendQuoted(Out, R.Output);
  Out += '}';
  return Out;
}

std::string dda::serve::errorPayloadJson(ErrorKind K,
                                         const std::string &Message) {
  std::string Out = "{\"status\":\"error\",\"error\":\"";
  Out += errorKindName(K);
  Out += "\",\"message\":";
  json::appendQuoted(Out, Message);
  Out += '}';
  return Out;
}

std::string dda::serve::responseLine(const std::string &IdJson, bool Cached,
                                     uint64_t ElapsedMs,
                                     const std::string &Payload) {
  std::string Out = "{\"id\":";
  Out += IdJson;
  Out += ",\"cached\":";
  Out += Cached ? "true" : "false";
  Out += ",\"elapsed_ms\":";
  Out += std::to_string(ElapsedMs);
  Out += ",\"result\":";
  Out += Payload;
  Out += '}';
  return Out;
}
