//===- JSON.cpp -----------------------------------------------------------==//

#include "serve/JSON.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace dda;
using namespace dda::json;

const Value *Value::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = Members.find(Key);
  return It == Members.end() ? nullptr : &It->second;
}

bool Value::asU64(uint64_t &Out) const {
  if (K != Kind::Number || std::isnan(Num) || std::isinf(Num) || Num < 0)
    return false;
  if (Num > 9007199254740992.0) // 2^53: past this doubles skip integers.
    return false;
  double Floor = std::floor(Num);
  if (Floor != Num)
    return false;
  Out = static_cast<uint64_t>(Floor);
  return true;
}

Value Value::boolean(bool V) {
  Value Out;
  Out.K = Kind::Bool;
  Out.B = V;
  return Out;
}

Value Value::number(double V) {
  Value Out;
  Out.K = Kind::Number;
  Out.Num = V;
  return Out;
}

Value Value::string(std::string V) {
  Value Out;
  Out.K = Kind::String;
  Out.Str = std::move(V);
  return Out;
}

namespace {

/// Hand-rolled recursive-descent parser over a string_view. No exceptions;
/// the first error wins and aborts the walk.
class Parser {
public:
  Parser(std::string_view Text, unsigned MaxDepth)
      : Text(Text), MaxDepth(MaxDepth) {}

  ParseResult run() {
    ParseResult R;
    skipWs();
    if (!parseValue(R.V, 0)) {
      R.Error = Error;
      R.ErrorAt = ErrorAt;
      return R;
    }
    skipWs();
    if (Pos != Text.size()) {
      R.Error = "trailing bytes after JSON value";
      R.ErrorAt = Pos;
      return R;
    }
    R.Ok = true;
    return R;
  }

private:
  bool fail(const std::string &Msg) {
    if (Error.empty()) {
      Error = Msg;
      ErrorAt = Pos;
    }
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return fail("invalid literal");
    Pos += Lit.size();
    return true;
  }

  bool parseValue(Value &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case 'n':
      return literal("null");
    case 't':
      Out = Value::boolean(true);
      return literal("true");
    case 'f':
      Out = Value::boolean(false);
      return literal("false");
    case '"':
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    case '[': {
      ++Pos;
      Out.K = Value::Kind::Array;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        Value Item;
        skipWs();
        if (!parseValue(Item, Depth + 1))
          return false;
        Out.Items.push_back(std::move(Item));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated array");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    case '{': {
      ++Pos;
      Out.K = Value::Kind::Object;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != '"')
          return fail("expected object key");
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        skipWs();
        Value Member;
        if (!parseValue(Member, Depth + 1))
          return false;
        Out.Members[Key] = std::move(Member);
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated object");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    default:
      Out.K = Value::Kind::Number;
      return parseNumber(Out.Num);
    }
  }

  /// Reads exactly four hex digits at Pos into \p Code.
  bool parseHex4(unsigned &Code) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Code = 0;
    for (int I = 0; I < 4; ++I) {
      char H = Text[Pos + I];
      Code <<= 4;
      if (H >= '0' && H <= '9')
        Code |= H - '0';
      else if (H >= 'a' && H <= 'f')
        Code |= H - 'a' + 10;
      else if (H >= 'A' && H <= 'F')
        Code |= H - 'A' + 10;
      else
        return fail("bad \\u escape");
    }
    Pos += 4;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // Opening quote.
    while (Pos < Text.size()) {
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          unsigned Code = 0;
          if (!parseHex4(Code))
            return false;
          // UTF-16 surrogate halves never stand alone: a high surrogate
          // must be immediately followed by an escaped low surrogate, and
          // the pair becomes one 4-byte UTF-8 code point. Encoding halves
          // individually (CESU-8) would hand clients invalid UTF-8 when
          // the string is echoed back.
          uint32_t CP = Code;
          if (Code >= 0xDC00 && Code <= 0xDFFF)
            return fail("lone low surrogate in \\u escape");
          if (Code >= 0xD800 && Code <= 0xDBFF) {
            if (Pos + 2 > Text.size() || Text[Pos] != '\\' ||
                Text[Pos + 1] != 'u')
              return fail("lone high surrogate in \\u escape");
            Pos += 2;
            unsigned Low = 0;
            if (!parseHex4(Low))
              return false;
            if (Low < 0xDC00 || Low > 0xDFFF)
              return fail("high surrogate not followed by low surrogate");
            CP = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          }
          if (CP < 0x80) {
            Out += static_cast<char>(CP);
          } else if (CP < 0x800) {
            Out += static_cast<char>(0xC0 | (CP >> 6));
            Out += static_cast<char>(0x80 | (CP & 0x3F));
          } else if (CP < 0x10000) {
            Out += static_cast<char>(0xE0 | (CP >> 12));
            Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (CP & 0x3F));
          } else {
            Out += static_cast<char>(0xF0 | (CP >> 18));
            Out += static_cast<char>(0x80 | ((CP >> 12) & 0x3F));
            Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (CP & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
        }
        continue;
      }
      if (C < 0x20)
        return fail("raw control byte in string");
      Out += static_cast<char>(C);
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber(double &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    Out = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      return fail("malformed number");
    return true;
  }

  std::string_view Text;
  unsigned MaxDepth;
  size_t Pos = 0;
  std::string Error;
  size_t ErrorAt = 0;
};

} // namespace

ParseResult dda::json::parse(std::string_view Text, unsigned MaxDepth) {
  return Parser(Text, MaxDepth).run();
}

void dda::json::appendQuoted(std::string &Out, std::string_view S) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

void dda::json::appendNumber(std::string &Out, double V) {
  if (std::isnan(V) || std::isinf(V)) {
    Out += "null";
    return;
  }
  double Floor = std::floor(V);
  if (Floor == V && std::fabs(V) < 9007199254740992.0) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    Out += Buf;
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}
