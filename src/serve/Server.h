//===- Server.h - The ddajs analysis daemon ----------------------*- C++ -*-==//
///
/// \file
/// `ddajs serve`: a long-lived, multi-tenant analysis service over a
/// line-delimited JSON socket protocol (Protocol.h). The robustness model,
/// layer by layer:
///
///  * **Admission control.** A bounded ticket gate caps how many requests
///    may be past parsing at once. When the gate is full the request gets
///    an immediate typed `overloaded` response (the 429 analogue) instead
///    of queueing — memory stays bounded no matter the offered load.
///    Connections above the connection cap are likewise turned away with a
///    one-line `overloaded` response.
///  * **Per-request budgets + service ceiling.** Every request's governor
///    limits are composed with the service-level ceiling (composeLimits),
///    so a tenant can tighten but never exceed the fleet's budgets; the
///    ceiling's wall-clock deadline is the watchdog that guarantees a
///    hostile program cannot hold a worker forever. A watchdog thread
///    additionally observes requests running past their composed deadline
///    (a governor bug would show up here) and counts them in stats.
///  * **Filesystem confinement.** `path` requests are disabled unless the
///    operator opts in with `--root DIR`; when enabled, the canonicalized
///    path must stay inside the root, name a regular file (no FIFOs or
///    device files that block or never end), and reads stop at
///    MaxRequestBytes — tenant input can neither disclose server-side
///    files nor grow the daemon's memory without bound.
///  * **Crash isolation.** Request handling is wrapped so every parser
///    blowup, trap, or injected fault becomes a typed error or degraded-ok
///    response. The daemon never exits on tenant input.
///  * **Caching.** Content-hash-keyed LRUs of parsed ASTs and serialized
///    result payloads (Cache.h): identical program + seed set + options →
///    the byte-identical cached answer.
///  * **Shared worker fleet.** One ThreadPool sized by --jobs runs every
///    request's seed fan-out as a request-scoped TaskGroup
///    (runDeterminacyAnalysisOnPool), so results are byte-identical to
///    single-shot CLI runs while stragglers from one request overlap with
///    other requests' work.
///  * **Graceful drain.** SIGTERM/SIGINT (via the signal-safe wake pipe)
///    or requestShutdown(): stop accepting, answer new requests with
///    `shutting_down`, let in-flight requests finish, drain the pool, and
///    flush a final stats line. Exit code 0.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SERVE_SERVER_H
#define DDA_SERVE_SERVER_H

#include "determinacy/Determinacy.h"
#include "incremental/FactStore.h"
#include "serve/Cache.h"
#include "serve/Protocol.h"
#include "support/ResourceGovernor.h"
#include "support/ThreadPool.h"

#include <deque>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace dda {
namespace serve {

struct ServeOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;    ///< 0 = ephemeral; port() reports the bound one.
  unsigned Jobs = 0;    ///< Worker-pool size; 0 = one per hardware thread.
  size_t QueueDepth = 0;      ///< Admission tickets; 0 = 4 * workers.
  size_t MaxConnections = 64; ///< Concurrent connections before shedding.
  size_t MaxRequestBytes = 1 << 20; ///< Per-line (and per-file) byte cap.
  size_t CacheAsts = 64;      ///< AST LRU entries; 0 disables.
  size_t CacheResults = 256;  ///< Result LRU entries; 0 disables.

  /// Directory that `path` requests are confined to (`--root`). Empty —
  /// the default — disables the `path` member entirely: a multi-tenant
  /// daemon must never let tenants read arbitrary server-side files.
  /// When set, requested paths are canonicalized (symlinks resolved) and
  /// must stay inside this directory, name a regular file, and fit the
  /// MaxRequestBytes budget.
  std::string Root;

  /// Service-level budget ceiling, composed into every request. The
  /// deadline here is the fleet-protection watchdog: requests can only
  /// tighten it.
  GovernorLimits Ceiling;

  ExecEngine Engine = defaultExecEngine(); ///< Default request engine.
  bool DetDom = false;                     ///< Default request DOM mode.
  uint64_t DomSeed = 1;

  /// Service-level fault injection (`ddajs serve --inject-fault`): cloned
  /// into every request, so each request trips deterministically at its
  /// own Nth checkpoint — the end-to-end soundness-under-faults drill.
  std::optional<FaultInjector> Injector;

  /// Region-summary store directory (`--fact-store`). Empty disables the
  /// incremental layer regardless of Incremental. The store is shared by
  /// every request and seed task (FactStore is thread-safe), so one
  /// tenant's cold run warms every later byte-identical region — across
  /// requests, connections, and daemon restarts.
  std::string FactStoreDir;

  /// Service-level incremental mode (`--incremental`), applied to every
  /// request. Replay-vs-execute never changes a response payload, so the
  /// result cache and cross-mode diffs stay byte-identical.
  IncrementalMode Incremental = IncrementalMode::Off;

  /// Watchdog scan interval.
  uint64_t WatchdogIntervalMs = 200;
};

/// Monotonic service counters. Everything is atomic so the stats command
/// can read while workers write; the JSON rendering is a point-in-time
/// sample, not a consistent snapshot.
struct ServeStats {
  std::atomic<uint64_t> ConnectionsAccepted{0};
  std::atomic<uint64_t> ConnectionsRejected{0};
  std::atomic<uint64_t> RequestsReceived{0};
  std::atomic<uint64_t> ResponsesOk{0};
  std::atomic<uint64_t> ResponsesError{0};
  std::atomic<uint64_t> Shed{0};        ///< `overloaded` responses.
  std::atomic<uint64_t> Rejected{0};    ///< `shutting_down` responses.
  std::atomic<uint64_t> Trapped{0};     ///< Degraded-but-ok responses.
  std::atomic<uint64_t> InjectedTrips{0};
  std::atomic<uint64_t> ActiveRequests{0};
  std::atomic<uint64_t> MaxActiveRequests{0};
  std::atomic<uint64_t> OverdueObserved{0}; ///< Watchdog sightings.
  // Snapshot undo-engine observability, summed over every analysis the
  // service ran (all seeds of all requests).
  std::atomic<uint64_t> SnapshotForks{0};  ///< COW snapshot frames opened.
  std::atomic<uint64_t> CowCopies{0};      ///< Pre-images saved by COW writes.
  std::atomic<uint64_t> ParallelBranchTasks{0};   ///< Branches sent to a pool.
  std::atomic<uint64_t> ParallelBranchCommits{0}; ///< Folded without rerun.
  // Incremental-replay observability (same mechanism-not-conclusions
  // contract): regions warm-started from the fact store, facts replayed
  // from summaries, fresh summaries captured, and — from the tree-diff of
  // each program against the closest previously seen one — how many AST
  // nodes of offered work were genuinely new code.
  std::atomic<uint64_t> IncrementalHits{0};
  std::atomic<uint64_t> ReplayedFacts{0};
  std::atomic<uint64_t> SummariesStored{0};
  std::atomic<uint64_t> DirtyNodes{0};
};

class Server {
public:
  explicit Server(const ServeOptions &Opts);

  /// Joins everything; equivalent to requestShutdown() + wait().
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and starts the acceptor + watchdog threads. Returns
  /// false with \p Error set when the socket cannot be set up.
  bool start(std::string *Error);

  /// The bound port (useful with Port = 0).
  uint16_t port() const { return BoundPort; }

  /// Asks the service to drain: stop accepting, finish in-flight work,
  /// reject new requests with `shutting_down`. Thread-safe, idempotent,
  /// returns immediately. NOT async-signal-safe — signal handlers must
  /// write a byte to wakeFd() instead.
  void requestShutdown();

  /// Write end of the self-pipe; `write(wakeFd(), "x", 1)` from a signal
  /// handler triggers the same drain as requestShutdown().
  int wakeFd() const { return WakePipe[1]; }

  /// Blocks until the drain completes: acceptor joined, every connection
  /// closed, pool drained. Safe to call from one thread only.
  void wait();

  /// requestShutdown() + wait().
  void stop();

  const ServeStats &stats() const { return Stats; }
  const AnalysisCache &cache() const { return Cache; }

  /// Point-in-time stats rendering (the `stats` command's payload body and
  /// the final drain line).
  std::string statsJson() const;

private:
  class Connection;

  void acceptLoop();
  void watchdogLoop();
  void reapConnections(bool JoinAll);

  /// Handles one request line end to end; returns the full response line.
  /// Never throws (crash isolation lives here).
  std::string handleLine(const std::string &Line);
  std::string handleAnalyze(const Request &Req, bool &Cached);

  /// Loads a `path` request's file under the --root confinement rules:
  /// root configured, canonical path inside it, regular file, at most
  /// MaxRequestBytes read. On failure returns false with \p ErrorPayload
  /// set to the typed error payload.
  bool readConfinedFile(const std::string &Path, std::string &Source,
                        std::string &ErrorPayload);

  ServeOptions Opts;
  ServeStats Stats;
  AnalysisCache Cache;
  ThreadPool Pool;
  size_t QueueDepth; ///< Resolved admission capacity.

  /// Shared region-summary store; open iff Opts.FactStoreDir was set and
  /// open() succeeded at start().
  FactStore Store;
  bool StoreOpen = false;

  /// Bounded registry of (source hash → top-level subtree hashes) for the
  /// diff-aware path: each incoming program is diffed against the closest
  /// previously seen one (most shared top-level hashes) to account dirty
  /// vs clean offered work. FIFO-bounded observability state, not a cache.
  struct SeenProgram {
    uint64_t SourceHash;
    std::vector<uint64_t> TopHashes;
  };
  std::mutex SeenMu;
  std::deque<SeenProgram> SeenPrograms;
  static constexpr size_t MaxSeenPrograms = 64;

  /// Canonicalized Opts.Root (set by start(); empty = path requests off).
  std::string RootCanon;

  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};
  uint16_t BoundPort = 0;
  std::chrono::steady_clock::time_point StartedAt;

  std::atomic<bool> Draining{false};
  std::atomic<bool> Exiting{false}; ///< Watchdog/acceptor teardown flag.
  std::atomic<uint64_t> AdmissionTickets{0};

  std::thread Acceptor;
  std::thread Watchdog;
  std::mutex WatchdogMu;
  std::condition_variable WatchdogCv;

  std::mutex ConnMu;
  std::vector<std::unique_ptr<Connection>> Connections;

  /// Active-request registry for the watchdog: start time + composed
  /// deadline per in-flight analysis.
  struct Inflight {
    std::chrono::steady_clock::time_point Start;
    uint64_t DeadlineMs;
    bool OverdueReported;
  };
  std::mutex InflightMu;
  uint64_t NextInflightId = 0;
  std::unordered_map<uint64_t, Inflight> InflightMap;

  bool Started = false;
  bool Waited = false;
};

} // namespace serve
} // namespace dda

#endif // DDA_SERVE_SERVER_H
