//===- Protocol.h - Serve wire protocol and shared response schema -*-C++-*-==//
///
/// \file
/// The line-delimited JSON protocol of `ddajs serve`, and the response
/// schema it shares with `ddajs analyze --batch`.
///
/// One request per line, one response line per request:
///
///   {"id":"r1","cmd":"analyze","source":"print(1);","seeds":[1,2]}
///   → {"id":"r1","cached":false,"elapsed_ms":3,"result":{...}}
///
/// The `result` object is the canonical analysis payload: `--batch` prints
/// the same object (plus a `path` field) one line per file, so a client
/// can diff a served answer against a single-shot CLI run field by field —
/// including the fact fingerprint, a 64-bit FNV-1a hash over everything a
/// client can observe from an AnalysisResult (facts, contexts, coverage,
/// output, stats, degradation). Identical fingerprints ⇔ interchangeable
/// results; the serve tests and the CI soak lean on this.
///
/// Every failure is *typed*: a `status:"error"` payload with a stable
/// `error` kind (`bad_request`, `too_large`, `parse_error`,
/// `program_error`, `resource_trap`, `overloaded`, `shutting_down`,
/// `internal`). Tenant input can select which error it gets, never whether
/// it gets one — the daemon does not die on request input.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SERVE_PROTOCOL_H
#define DDA_SERVE_PROTOCOL_H

#include "determinacy/Determinacy.h"
#include "support/FaultInjector.h"

#include <optional>
#include <string>
#include <vector>

namespace dda {
namespace serve {

/// Stable error kinds of the wire protocol. Order is meaningless; names
/// (errorKindName) are the contract.
enum class ErrorKind : uint8_t {
  BadRequest,   ///< Malformed JSON, unknown fields, invalid values.
  TooLarge,     ///< Request line exceeded the service's byte budget.
  ParseError,   ///< The submitted program failed to parse.
  ProgramError, ///< The program ran and failed (uncaught exception, ...).
  ResourceTrap, ///< The run was invalidated by a resource trap.
  Overloaded,   ///< Admission queue full; retry later (429 analogue).
  ShuttingDown, ///< Service is draining; no new work accepted.
  Internal,     ///< A bug in the service; the request was isolated.
};

const char *errorKindName(ErrorKind K);

/// A parsed, validated analyze/ping/stats request.
struct Request {
  enum class Command : uint8_t { Analyze, Ping, Stats } Cmd = Command::Analyze;

  /// The client's `id` member re-serialized verbatim ("null" when absent);
  /// echoed in the response so clients can pipeline.
  std::string IdJson = "null";

  std::string Source; ///< Inline program text (exclusive with Path).
  std::string Path;   ///< Server-side file to analyze (exclusive with
                      ///< Source; only honored when the daemon was started
                      ///< with --root, and confined to that directory).

  std::vector<uint64_t> Seeds; ///< Validated, non-empty (defaults to {1}).

  std::optional<ExecEngine> Engine; ///< Absent = service default.
  std::optional<bool> DetDom;       ///< Absent = service default.

  /// Per-request budget overrides (absent fields keep service defaults).
  /// The server composes these with its ceiling via composeLimits, so a
  /// tenant can only ever tighten the service-level budgets.
  std::optional<uint64_t> MaxSteps, DeadlineMs, MaxHeapCells, CfFuel;
  std::optional<unsigned> MaxCallDepth, MaxEvalDepth;

  std::optional<FaultInjector> Injector; ///< `inject_fault` spec.
  bool NoCache = false;                  ///< Bypass the response cache.
};

/// Hard caps on request shape, beyond byte size (enforced server-side).
constexpr size_t kMaxSeedsPerRequest = 64;
constexpr unsigned kMaxJsonDepth = 64;

/// Parses and validates one request line. Returns false with a typed
/// error: malformed JSON, wrong types, unknown members, out-of-range
/// seeds/budgets. Never throws.
bool parseRequest(const std::string &Line, Request &Out, ErrorKind &EK,
                  std::string &Message);

/// 64-bit FNV-1a over the canonical rendering of everything a client can
/// observe from \p R. Byte-identical results ⇔ equal fingerprints, across
/// engines, thread counts, and serve-vs-CLI entry points.
uint64_t factFingerprint(const AnalysisResult &R);

/// Exit code for an analysis outcome, shared by ddajs and the serve
/// payload: 0 ok, 1 program error, 3 resource trap (partial but sound
/// results), 4 internal error.
int analysisExitCode(const AnalysisResult &R);

/// Serializes the canonical result payload for \p R: `status`, `exit_code`,
/// `engine`, `seeds`, fact counts, `fingerprint` (hex), `trap`,
/// degradation summary, stats, and the program output. Used verbatim by
/// serve responses, `--batch` summary lines, and the tests that compare
/// the two.
std::string analysisPayloadJson(const AnalysisResult &R, ExecEngine Engine,
                                const std::vector<uint64_t> &Seeds);

/// Serializes a typed error payload: `{"status":"error","error":<kind>,
/// "message":<msg>}` (+ `exit_code` for request-level failures).
std::string errorPayloadJson(ErrorKind K, const std::string &Message);

/// Wraps a payload into a full response line (no trailing newline):
/// `{"id":<id>,"cached":<b>,"elapsed_ms":<n>,"result":<payload>}`.
std::string responseLine(const std::string &IdJson, bool Cached,
                         uint64_t ElapsedMs, const std::string &Payload);

} // namespace serve
} // namespace dda

#endif // DDA_SERVE_PROTOCOL_H
