//===- Cache.cpp ----------------------------------------------------------==//

#include "serve/Cache.h"

using namespace dda;
using namespace dda::serve;

uint64_t dda::serve::hashBytes(std::string_view Bytes) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::shared_ptr<Program> AnalysisCache::lookupAst(uint64_t SourceHash) {
  std::lock_guard<std::mutex> Lock(AstMu);
  if (std::shared_ptr<Program> *P = Asts.touch(SourceHash)) {
    AstHits.fetch_add(1, std::memory_order_relaxed);
    return *P;
  }
  AstMisses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void AnalysisCache::insertAst(uint64_t SourceHash, std::shared_ptr<Program> P) {
  std::lock_guard<std::mutex> Lock(AstMu);
  if (Asts.touch(SourceHash))
    return; // First insert wins; racing parses produced equivalent ASTs.
  Asts.insert(SourceHash, std::move(P), MaxAsts);
}

bool AnalysisCache::lookupResult(const std::string &Key,
                                 std::string &PayloadOut) {
  std::lock_guard<std::mutex> Lock(ResultMu);
  if (std::string *Payload = Results.touch(Key)) {
    ResultHits.fetch_add(1, std::memory_order_relaxed);
    PayloadOut = *Payload;
    return true;
  }
  ResultMisses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void AnalysisCache::insertResult(const std::string &Key,
                                 const std::string &Payload) {
  std::lock_guard<std::mutex> Lock(ResultMu);
  Results.insert(Key, Payload, MaxResults);
}
