//===- Server.cpp - The ddajs analysis daemon ------------------------------==//

#include "serve/Server.h"

#include "ast/StructuralHash.h"
#include "determinacy/ParallelAnalysis.h"
#include "incremental/TreeDiff.h"
#include "parser/Parser.h"
#include "serve/JSON.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

using namespace dda;
using namespace dda::serve;

//===----------------------------------------------------------------------===//
// Connection: one socket, one reader thread, requests handled serially.
//===----------------------------------------------------------------------===//

class Server::Connection {
public:
  Connection(Server &S, int Fd) : S(S), Fd(Fd), T([this] { run(); }) {}
  ~Connection() { join(); }

  bool done() const { return Done.load(std::memory_order_acquire); }
  void join() {
    if (T.joinable())
      T.join();
  }

private:
  /// Outcome of one poll+recv+respond round.
  enum class Step : uint8_t { Progress, Idle, Closed };

  void run() {
    std::string Buf;
    while (true) {
      Step St = step(Buf, /*TimeoutMs=*/200);
      if (St == Step::Closed)
        break;
      if (S.Draining.load(std::memory_order_acquire)) {
        // Drain: requests already on the wire still get their answers
        // (handleLine turns new analysis work into shutting_down), but
        // only for a bounded grace window — a client that keeps the
        // socket hot must not be able to postpone the close, or wait()
        // and the SIGTERM drain never converge.
        auto Grace = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(200);
        while (std::chrono::steady_clock::now() < Grace &&
               step(Buf, /*TimeoutMs=*/20) == Step::Progress) {
        }
        break;
      }
    }
    ::close(Fd);
    Done.store(true, std::memory_order_release);
  }

  /// One round: wait up to \p TimeoutMs for bytes, answer every complete
  /// line received. Returns Idle on timeout, Closed when the peer is gone
  /// or the connection must drop, Progress otherwise.
  Step step(std::string &Buf, int TimeoutMs) {
    struct pollfd P = {Fd, POLLIN, 0};
    int N = ::poll(&P, 1, TimeoutMs);
    if (N < 0)
      return errno == EINTR ? Step::Idle : Step::Closed;
    if (N == 0)
      return Step::Idle;
    char Tmp[64 * 1024];
    ssize_t Got = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (Got <= 0)
      return Step::Closed; // EOF or error: client went away.
    Buf.append(Tmp, static_cast<size_t>(Got));
    size_t NL;
    while ((NL = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;
      std::string Resp;
      if (Line.size() > S.Opts.MaxRequestBytes) {
        S.Stats.RequestsReceived.fetch_add(1, std::memory_order_relaxed);
        S.Stats.ResponsesError.fetch_add(1, std::memory_order_relaxed);
        Resp = responseLine(
            "null", false, 0,
            errorPayloadJson(ErrorKind::TooLarge,
                             "request line exceeds " +
                                 std::to_string(S.Opts.MaxRequestBytes) +
                                 " bytes"));
      } else {
        Resp = S.handleLine(Line);
      }
      Resp += '\n';
      if (!writeAll(Resp))
        return Step::Closed;
    }
    if (Buf.size() > S.Opts.MaxRequestBytes) {
      // A partial line already over budget: answer with the typed error
      // and drop the connection — buffering further would hand the
      // sender unbounded memory.
      S.Stats.RequestsReceived.fetch_add(1, std::memory_order_relaxed);
      S.Stats.ResponsesError.fetch_add(1, std::memory_order_relaxed);
      writeAll(responseLine(
                   "null", false, 0,
                   errorPayloadJson(ErrorKind::TooLarge,
                                    "request line exceeds " +
                                        std::to_string(
                                            S.Opts.MaxRequestBytes) +
                                        " bytes")) +
               "\n");
      return Step::Closed;
    }
    return Step::Progress;
  }

  bool writeAll(const std::string &Data) {
    size_t Off = 0;
    while (Off < Data.size()) {
      // MSG_NOSIGNAL: a client that disconnects mid-response must surface
      // as a write error on this connection, not SIGPIPE for the daemon.
      ssize_t N =
          ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  Server &S;
  int Fd;
  std::atomic<bool> Done{false};
  std::thread T; // Last member: starts after everything else is built.
};

//===----------------------------------------------------------------------===//
// Server lifecycle
//===----------------------------------------------------------------------===//

Server::Server(const ServeOptions &Opts)
    : Opts(Opts), Cache(Opts.CacheAsts, Opts.CacheResults), Pool(Opts.Jobs),
      QueueDepth(Opts.QueueDepth ? Opts.QueueDepth : 4 * Pool.workers()) {}

Server::~Server() {
  if (Started)
    stop();
  for (int Fd : WakePipe)
    if (Fd >= 0)
      ::close(Fd);
}

bool Server::start(std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg + ": " + std::strerror(errno);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };

  if (!Opts.Root.empty()) {
    // Resolve the served root once, up front: every path request is
    // checked against this canonical prefix, so a bad root must be a
    // startup error, not a per-request surprise.
    std::error_code EC;
    std::filesystem::path Canon = std::filesystem::canonical(Opts.Root, EC);
    if (!EC && !std::filesystem::is_directory(Canon, EC))
      EC = std::make_error_code(std::errc::not_a_directory);
    if (EC) {
      if (Error)
        *Error = "--root " + Opts.Root + ": " + EC.message();
      return false;
    }
    RootCanon = Canon.string();
  }

  if (!Opts.FactStoreDir.empty()) {
    // An unusable store directory is an operator error, not a per-request
    // surprise; corrupt *contents* are tolerated (forgiving segment load).
    std::string StoreErr;
    if (!Store.open(Opts.FactStoreDir, StoreErr)) {
      if (Error)
        *Error = "--fact-store " + Opts.FactStoreDir + ": " + StoreErr;
      return false;
    }
    StoreOpen = true;
  }

  if (::pipe(WakePipe) != 0)
    return Fail("pipe");
  // The write end is poked from signal handlers: never let it block.
  ::fcntl(WakePipe[0], F_SETFL, O_NONBLOCK);
  ::fcntl(WakePipe[1], F_SETFL, O_NONBLOCK);

  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Opts.Port);
  if (::inet_pton(AF_INET, Opts.Host.c_str(), &Addr.sin_addr) != 1)
    return Fail("bad host " + Opts.Host);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return Fail("bind " + Opts.Host + ":" + std::to_string(Opts.Port));
  if (::listen(ListenFd, 64) != 0)
    return Fail("listen");

  sockaddr_in Bound = {};
  socklen_t Len = sizeof(Bound);
  ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound), &Len);
  BoundPort = ntohs(Bound.sin_port);

  StartedAt = std::chrono::steady_clock::now();
  Started = true;
  Acceptor = std::thread([this] { acceptLoop(); });
  Watchdog = std::thread([this] { watchdogLoop(); });
  return true;
}

void Server::requestShutdown() {
  Draining.store(true, std::memory_order_release);
  if (WakePipe[1] >= 0) {
    char B = 'x';
    [[maybe_unused]] ssize_t N = ::write(WakePipe[1], &B, 1);
  }
}

void Server::wait() {
  if (!Started || Waited)
    return;
  if (Acceptor.joinable())
    Acceptor.join();
  // Acceptor is gone: no new connections. Existing ones finish their
  // in-flight request (bounded by the composed deadline ceiling) and
  // close within one poll interval.
  reapConnections(/*JoinAll=*/true);
  Pool.stop(ThreadPool::StopMode::Drain);
  Exiting.store(true, std::memory_order_release);
  WatchdogCv.notify_all();
  if (Watchdog.joinable())
    Watchdog.join();
  Waited = true;
}

void Server::stop() {
  requestShutdown();
  wait();
}

void Server::reapConnections(bool JoinAll) {
  std::vector<std::unique_ptr<Connection>> Dead;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    auto It = Connections.begin();
    while (It != Connections.end()) {
      if (JoinAll || (*It)->done()) {
        Dead.push_back(std::move(*It));
        It = Connections.erase(It);
      } else {
        ++It;
      }
    }
  }
  // Join outside the lock: a connection thread may be inside handleLine,
  // which never takes ConnMu, but keeping join() lock-free is cheap
  // insurance.
  for (auto &C : Dead)
    C->join();
}

void Server::acceptLoop() {
  while (true) {
    struct pollfd P[2] = {{ListenFd, POLLIN, 0}, {WakePipe[0], POLLIN, 0}};
    int N = ::poll(P, 2, 500);
    reapConnections(/*JoinAll=*/false);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (P[1].revents != 0)
      break; // Shutdown wake (signal handler or requestShutdown).
    if (Draining.load(std::memory_order_acquire))
      break;
    if (N == 0 || (P[0].revents & POLLIN) == 0)
      continue;
    int Fd = ::accept4(ListenFd, nullptr, nullptr, SOCK_CLOEXEC);
    if (Fd < 0)
      continue;
    Stats.ConnectionsAccepted.fetch_add(1, std::memory_order_relaxed);
    size_t Active;
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      Active = Connections.size();
    }
    if (Active >= Opts.MaxConnections) {
      // Shed at the connection level too: one typed line, then close.
      Stats.ConnectionsRejected.fetch_add(1, std::memory_order_relaxed);
      std::string Resp =
          responseLine("null", false, 0,
                       errorPayloadJson(ErrorKind::Overloaded,
                                        "connection limit reached")) +
          "\n";
      [[maybe_unused]] ssize_t W =
          ::send(Fd, Resp.data(), Resp.size(), MSG_NOSIGNAL);
      ::close(Fd);
      continue;
    }
    std::lock_guard<std::mutex> Lock(ConnMu);
    Connections.push_back(std::make_unique<Connection>(*this, Fd));
  }
  Draining.store(true, std::memory_order_release);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
}

void Server::watchdogLoop() {
  std::unique_lock<std::mutex> Lock(WatchdogMu);
  while (!Exiting.load(std::memory_order_acquire)) {
    WatchdogCv.wait_for(Lock,
                        std::chrono::milliseconds(Opts.WatchdogIntervalMs));
    auto Now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> InLock(InflightMu);
    for (auto &[Id, F] : InflightMap) {
      if (F.DeadlineMs == 0 || F.OverdueReported)
        continue;
      uint64_t ElapsedMs =
          (uint64_t)std::chrono::duration_cast<std::chrono::milliseconds>(
              Now - F.Start)
              .count();
      // The governor samples its deadline periodically, so some overshoot
      // is normal; 2x + 1s means the budget failed to bite and the fleet
      // should know.
      if (ElapsedMs > 2 * F.DeadlineMs + 1000) {
        F.OverdueReported = true;
        Stats.OverdueObserved.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "ddajs serve: watchdog: request %llu overdue "
                     "(%llums elapsed, %llums deadline)\n",
                     (unsigned long long)Id, (unsigned long long)ElapsedMs,
                     (unsigned long long)F.DeadlineMs);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

namespace {

/// RAII admission ticket over an atomic counter with a hard cap.
class Ticket {
public:
  Ticket(std::atomic<uint64_t> &Count, size_t Cap) : Count(Count) {
    uint64_t Cur = Count.load(std::memory_order_relaxed);
    while (Cur < Cap) {
      if (Count.compare_exchange_weak(Cur, Cur + 1,
                                      std::memory_order_acq_rel))
        return;
    }
    Denied = true;
  }
  ~Ticket() {
    if (!Denied)
      Count.fetch_sub(1, std::memory_order_acq_rel);
  }
  bool admitted() const { return !Denied; }

private:
  std::atomic<uint64_t> &Count;
  bool Denied = false;
};

uint64_t elapsedMsSince(std::chrono::steady_clock::time_point T) {
  return (uint64_t)std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - T)
      .count();
}

} // namespace

std::string Server::handleLine(const std::string &Line) {
  auto T0 = std::chrono::steady_clock::now();
  Stats.RequestsReceived.fetch_add(1, std::memory_order_relaxed);

  Request Req;
  ErrorKind EK;
  std::string Message;
  if (!parseRequest(Line, Req, EK, Message)) {
    Stats.ResponsesError.fetch_add(1, std::memory_order_relaxed);
    return responseLine(Req.IdJson, false, elapsedMsSince(T0),
                        errorPayloadJson(EK, Message));
  }

  // Ops introspection stays answerable under load and during drains.
  if (Req.Cmd == Request::Command::Ping) {
    Stats.ResponsesOk.fetch_add(1, std::memory_order_relaxed);
    return responseLine(Req.IdJson, false, elapsedMsSince(T0),
                        "{\"status\":\"ok\",\"pong\":true}");
  }
  if (Req.Cmd == Request::Command::Stats) {
    Stats.ResponsesOk.fetch_add(1, std::memory_order_relaxed);
    return responseLine(Req.IdJson, false, elapsedMsSince(T0),
                        "{\"status\":\"ok\",\"stats\":" + statsJson() + "}");
  }

  if (Draining.load(std::memory_order_acquire)) {
    Stats.Rejected.fetch_add(1, std::memory_order_relaxed);
    Stats.ResponsesError.fetch_add(1, std::memory_order_relaxed);
    return responseLine(
        Req.IdJson, false, elapsedMsSince(T0),
        errorPayloadJson(ErrorKind::ShuttingDown, "service is draining"));
  }

  Ticket Admission(AdmissionTickets, QueueDepth);
  if (!Admission.admitted()) {
    // Load shedding: a full admission gate answers immediately instead of
    // queueing without bound. The 429 analogue.
    Stats.Shed.fetch_add(1, std::memory_order_relaxed);
    Stats.ResponsesError.fetch_add(1, std::memory_order_relaxed);
    return responseLine(
        Req.IdJson, false, elapsedMsSince(T0),
        errorPayloadJson(ErrorKind::Overloaded,
                         "admission queue full (depth " +
                             std::to_string(QueueDepth) + "); retry"));
  }

  uint64_t Active = Stats.ActiveRequests.fetch_add(1) + 1;
  uint64_t MaxSeen = Stats.MaxActiveRequests.load(std::memory_order_relaxed);
  while (Active > MaxSeen &&
         !Stats.MaxActiveRequests.compare_exchange_weak(MaxSeen, Active)) {
  }

  // Crash isolation: whatever a tenant's program does to the analysis —
  // parser blowups, budget trips, injected faults, allocation failure —
  // becomes a typed response on this connection. The daemon never exits
  // on request input.
  bool Cached = false;
  std::string Payload;
  try {
    Payload = handleAnalyze(Req, Cached);
  } catch (const std::exception &E) {
    Payload = errorPayloadJson(ErrorKind::Internal, E.what());
  } catch (...) {
    Payload = errorPayloadJson(ErrorKind::Internal, "unknown exception");
  }
  Stats.ActiveRequests.fetch_sub(1);

  if (Payload.rfind("{\"status\":\"ok\"", 0) == 0)
    Stats.ResponsesOk.fetch_add(1, std::memory_order_relaxed);
  else
    Stats.ResponsesError.fetch_add(1, std::memory_order_relaxed);
  return responseLine(Req.IdJson, Cached, elapsedMsSince(T0), Payload);
}

bool Server::readConfinedFile(const std::string &Path, std::string &Source,
                              std::string &ErrorPayload) {
  auto Reject = [&](ErrorKind K, const std::string &Msg) {
    ErrorPayload = errorPayloadJson(K, Msg);
    return false;
  };
  if (RootCanon.empty())
    return Reject(ErrorKind::BadRequest,
                  "path requests are disabled (serve started without --root)");

  // Canonicalize (symlinks resolved) and require the result to stay under
  // the served root: a tenant must not be able to read arbitrary
  // server-side files through the daemon.
  std::error_code EC;
  std::filesystem::path Canon =
      std::filesystem::weakly_canonical(std::filesystem::path(Path), EC);
  if (EC)
    return Reject(ErrorKind::BadRequest, "cannot resolve " + Path);
  std::string CanonStr = Canon.string();
  bool Inside = RootCanon == "/" || CanonStr == RootCanon ||
                (CanonStr.size() > RootCanon.size() &&
                 CanonStr.compare(0, RootCanon.size(), RootCanon) == 0 &&
                 CanonStr[RootCanon.size()] == '/');
  if (!Inside)
    return Reject(ErrorKind::BadRequest,
                  Path + " is outside the served --root");

  // O_NONBLOCK so opening a FIFO cannot park this connection thread (and
  // its admission ticket) forever; regular-file reads never short-read
  // because of it.
  int Fd = ::open(CanonStr.c_str(), O_RDONLY | O_NONBLOCK | O_CLOEXEC);
  if (Fd < 0)
    return Reject(ErrorKind::BadRequest, "cannot open " + Path);
  struct stat St;
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode)) {
    ::close(Fd);
    return Reject(ErrorKind::BadRequest, Path + " is not a regular file");
  }

  // Read at most MaxRequestBytes + 1: one extra byte distinguishes "fits"
  // from "too large" without ever buffering an unbounded stream (a
  // /dev/zero-shaped file must cost the daemon one buffer, not its RSS).
  Source.clear();
  char Tmp[64 * 1024];
  while (Source.size() <= Opts.MaxRequestBytes) {
    size_t Want = std::min(sizeof(Tmp), Opts.MaxRequestBytes + 1 - Source.size());
    ssize_t N = ::read(Fd, Tmp, Want);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      return Reject(ErrorKind::BadRequest, "cannot read " + Path);
    }
    if (N == 0)
      break;
    Source.append(Tmp, static_cast<size_t>(N));
  }
  ::close(Fd);
  if (Source.size() > Opts.MaxRequestBytes)
    return Reject(ErrorKind::TooLarge,
                  Path + " exceeds " + std::to_string(Opts.MaxRequestBytes) +
                      " bytes");
  return true;
}

std::string Server::handleAnalyze(const Request &Req, bool &Cached) {
  // Resolve the program text.
  std::string Source;
  if (!Req.Path.empty()) {
    std::string Err;
    if (!readConfinedFile(Req.Path, Source, Err))
      return Err; // Already a typed error payload.
  } else {
    Source = Req.Source;
  }

  // Effective options: request overrides folded under the service ceiling.
  ExecEngine Engine = Req.Engine.value_or(Opts.Engine);
  bool DetDom = Req.DetDom.value_or(Opts.DetDom);
  AnalysisOptions AOpts;
  GovernorLimits ReqLimits = AOpts.governorLimits();
  if (Req.MaxSteps)
    ReqLimits.MaxSteps = *Req.MaxSteps;
  if (Req.DeadlineMs)
    ReqLimits.DeadlineMs = *Req.DeadlineMs;
  if (Req.MaxHeapCells)
    ReqLimits.MaxHeapCells = *Req.MaxHeapCells;
  if (Req.CfFuel)
    ReqLimits.CfFuel = *Req.CfFuel;
  if (Req.MaxCallDepth)
    ReqLimits.MaxCallDepth = *Req.MaxCallDepth;
  if (Req.MaxEvalDepth)
    ReqLimits.MaxEvalDepth = *Req.MaxEvalDepth;
  GovernorLimits Limits = composeLimits(ReqLimits, Opts.Ceiling);

  // The service injector applies to every request (the end-to-end fault
  // drill); a request-level spec overrides it. Each request gets a fresh
  // clone with zeroed checkpoint counters, and the parallel engine clones
  // again per seed task, so trips are deterministic per (request, seed).
  FaultInjector LocalInjector;
  bool HasInjector = false;
  if (Req.Injector) {
    LocalInjector = *Req.Injector;
    HasInjector = true;
  } else if (Opts.Injector) {
    LocalInjector = *Opts.Injector;
    HasInjector = true;
  }
  if (HasInjector)
    LocalInjector.reset();

  AOpts.DomSeed = Opts.DomSeed;
  AOpts.Engine = Engine;
  AOpts.DeterminateDom = DetDom;
  AOpts.MaxSteps = Limits.MaxSteps;
  AOpts.DeadlineMs = Limits.DeadlineMs;
  AOpts.MaxHeapCells = Limits.MaxHeapCells;
  AOpts.MaxCallDepth = Limits.MaxCallDepth;
  AOpts.MaxEvalDepth = Limits.MaxEvalDepth;
  AOpts.CounterfactualFuel = Limits.CfFuel;
  AOpts.Injector = HasInjector ? &LocalInjector : nullptr;
  // The incremental layer never changes what a request answers — replayed
  // regions are byte-identical to executed ones — so it is deliberately
  // absent from the result-cache key (and from optionVectorFingerprint).
  if (StoreOpen) {
    AOpts.Incremental = Opts.Incremental;
    AOpts.Store = &Store;
  }

  uint64_t SourceHash = hashBytes(Source);
  std::string Key;
  {
    // Everything that can change the result participates: the program
    // bytes, and the one shared definition of "same options"
    // (optionVectorFingerprint, which covers engine, DOM mode and seed,
    // every composed budget, and the injector spec) folded with the
    // request's seed list.
    uint64_t OptFold = optionVectorFingerprint(
        AOpts, HasInjector ? LocalInjector.str() : std::string());
    for (uint64_t S : Req.Seeds)
      OptFold = mixHash(OptFold, S);
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%016llx:%016llx",
                  (unsigned long long)SourceHash,
                  (unsigned long long)OptFold);
    Key = Buf;
  }

  std::string Payload;
  if (!Req.NoCache && Cache.lookupResult(Key, Payload)) {
    Cached = true;
    return Payload;
  }

  // Parse (or reuse the cached AST — safe to share across concurrent
  // requests: analysis never mutates the program arena, eval'd nodes go to
  // per-task overlays).
  std::shared_ptr<Program> P =
      Req.NoCache ? nullptr : Cache.lookupAst(SourceHash);
  if (!P) {
    DiagnosticEngine Diags;
    auto Parsed = std::make_shared<Program>(parseProgram(Source, Diags));
    if (Diags.hasErrors()) {
      Payload = errorPayloadJson(ErrorKind::ParseError, Diags.str());
      if (!Req.NoCache)
        Cache.insertResult(Key, Payload);
      return Payload;
    }
    P = std::move(Parsed);
    if (!Req.NoCache)
      Cache.insertAst(SourceHash, P);
  }

  // Diff-aware accounting: classify this program's top-level statements
  // against the closest previously seen program (the registered hash
  // sequence sharing the most subtree hashes) and count the AST nodes
  // inside dirty statements. Advisory observability — the chained
  // fingerprints decide what actually replays.
  {
    std::vector<uint64_t> Hashes = topLevelHashes(*P);
    std::lock_guard<std::mutex> Lock(SeenMu);
    const SeenProgram *Closest = nullptr;
    size_t BestShared = 0;
    bool SeenBefore = false;
    for (const SeenProgram &Prev : SeenPrograms) {
      if (Prev.SourceHash == SourceHash) {
        SeenBefore = true;
        Closest = &Prev;
        break;
      }
      std::vector<uint64_t> A = Prev.TopHashes, B = Hashes;
      std::sort(A.begin(), A.end());
      std::sort(B.begin(), B.end());
      std::vector<uint64_t> Shared;
      std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                            std::back_inserter(Shared));
      if (!Closest || Shared.size() > BestShared) {
        Closest = &Prev;
        BestShared = Shared.size();
      }
    }
    TreeDiffResult Diff = diffTopLevel(
        Closest ? Closest->TopHashes : std::vector<uint64_t>(), *P);
    Stats.DirtyNodes.fetch_add(Diff.DirtyNodes, std::memory_order_relaxed);
    if (!SeenBefore) {
      SeenPrograms.push_back({SourceHash, std::move(Hashes)});
      if (SeenPrograms.size() > MaxSeenPrograms)
        SeenPrograms.pop_front();
    }
  }

  AOpts.RandomSeed = Req.Seeds.front();

  // Register with the watchdog for the duration of the run.
  uint64_t InflightId;
  {
    std::lock_guard<std::mutex> Lock(InflightMu);
    InflightId = NextInflightId++;
    InflightMap[InflightId] = {std::chrono::steady_clock::now(),
                               Limits.DeadlineMs, false};
  }
  AnalysisResult R;
  try {
    R = runDeterminacyAnalysisOnPool(*P, AOpts, Req.Seeds, Pool);
  } catch (...) {
    std::lock_guard<std::mutex> Lock(InflightMu);
    InflightMap.erase(InflightId);
    throw;
  }
  {
    std::lock_guard<std::mutex> Lock(InflightMu);
    InflightMap.erase(InflightId);
  }

  if (R.Trap != TrapKind::None) {
    Stats.Trapped.fetch_add(1, std::memory_order_relaxed);
    if (R.Degradation.Trip.Injected)
      Stats.InjectedTrips.fetch_add(1, std::memory_order_relaxed);
  }
  Stats.SnapshotForks.fetch_add(R.Stats.SnapshotForks,
                                std::memory_order_relaxed);
  Stats.CowCopies.fetch_add(R.Stats.CowCopies, std::memory_order_relaxed);
  Stats.ParallelBranchTasks.fetch_add(R.Stats.ParallelBranchTasks,
                                      std::memory_order_relaxed);
  Stats.ParallelBranchCommits.fetch_add(R.Stats.ParallelBranchCommits,
                                        std::memory_order_relaxed);
  Stats.IncrementalHits.fetch_add(R.Stats.IncrementalReplays,
                                  std::memory_order_relaxed);
  Stats.ReplayedFacts.fetch_add(R.Stats.ReplayedFacts,
                                std::memory_order_relaxed);
  Stats.SummariesStored.fetch_add(R.Stats.SummariesStored,
                                  std::memory_order_relaxed);
  if (StoreOpen && R.Stats.SummariesStored) {
    // Persist what this request captured right away: a crash loses at most
    // the current request's summaries, and commits of identical content
    // are idempotent. I/O failure is non-fatal — pending summaries stay
    // queued and retry on the next request's commit.
    std::string CommitErr;
    (void)Store.commit(CommitErr);
  }

  Payload = analysisPayloadJson(R, Engine, Req.Seeds);
  // Deadline traps depend on wall-clock scheduling, not on the key — the
  // one outcome that must never be replayed from cache.
  if (!Req.NoCache && R.Trap != TrapKind::Deadline)
    Cache.insertResult(Key, Payload);
  return Payload;
}

std::string Server::statsJson() const {
  std::string Out = "{";
  auto Add = [&](const char *Name, uint64_t V, bool First = false) {
    if (!First)
      Out += ',';
    Out += '"';
    Out += Name;
    Out += "\":";
    Out += std::to_string(V);
  };
  Add("uptime_ms", Started ? elapsedMsSince(StartedAt) : 0, true);
  Add("jobs", Pool.workers());
  Add("queue_depth", QueueDepth);
  Add("connections_accepted", Stats.ConnectionsAccepted.load());
  Add("connections_rejected", Stats.ConnectionsRejected.load());
  Add("requests", Stats.RequestsReceived.load());
  Add("responses_ok", Stats.ResponsesOk.load());
  Add("responses_error", Stats.ResponsesError.load());
  Add("shed", Stats.Shed.load());
  Add("rejected_draining", Stats.Rejected.load());
  Add("trapped", Stats.Trapped.load());
  Add("injected_trips", Stats.InjectedTrips.load());
  Add("active_requests", Stats.ActiveRequests.load());
  Add("max_active_requests", Stats.MaxActiveRequests.load());
  Add("overdue_observed", Stats.OverdueObserved.load());
  Add("snapshot_forks", Stats.SnapshotForks.load());
  Add("cow_copies", Stats.CowCopies.load());
  Add("parallel_branch_tasks", Stats.ParallelBranchTasks.load());
  Add("parallel_branch_commits", Stats.ParallelBranchCommits.load());
  Add("incremental_hits", Stats.IncrementalHits.load());
  Add("dirty_nodes", Stats.DirtyNodes.load());
  Add("replayed_facts", Stats.ReplayedFacts.load());
  Add("summaries_stored", Stats.SummariesStored.load());
  Add("store_summaries", StoreOpen ? Store.size() : 0);
  Add("store_segments_skipped", StoreOpen ? Store.segmentsSkipped() : 0);
  Add("store_records_dropped", StoreOpen ? Store.recordsDropped() : 0);
  Add("cache_hits", Cache.resultHits());
  Add("cache_misses", Cache.resultMisses());
  Add("ast_hits", Cache.astHits());
  Add("ast_misses", Cache.astMisses());
  Out += '}';
  return Out;
}
