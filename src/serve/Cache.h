//===- Cache.h - Content-hash-keyed LRU caches for the serve layer -*-C++-*-==//
///
/// \file
/// Two LRU caches make repeat traffic — the dominant production shape,
/// same library + small edits — cheap:
///
///  * an **AST cache** keyed by the content hash of the source bytes. A
///    parsed Program is immutable under analysis (runtime-eval'd nodes go
///    into per-task overlay ASTContexts, never the shared arena — the PR-3
///    invariant), so one parse can back any number of concurrent requests;
///    entries are handed out as shared_ptr so eviction never frees a
///    program mid-analysis.
///  * a **result cache** keyed by (source hash, seed set, every
///    result-relevant option). The value is the *serialized* response
///    payload, so a cache hit is byte-identical to the cold run that
///    populated it — asserted by tests. Wall-clock-dependent outcomes
///    (deadline traps) are never inserted; everything else the analysis
///    produces is a pure function of the key.
///
/// Both caches are a mutex'd list+map LRU: entries are small (a pointer or
/// a string), hit paths are two map lookups, and the serve workload is
/// analysis-bound — lock contention here is noise.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SERVE_CACHE_H
#define DDA_SERVE_CACHE_H

#include "ast/ASTContext.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dda {
namespace serve {

/// 64-bit FNV-1a content hash, the cache key primitive.
uint64_t hashBytes(std::string_view Bytes);

/// Thread-safe LRU of parsed programs + serialized result payloads.
class AnalysisCache {
public:
  /// \p MaxAsts / \p MaxResults bound each LRU's entry count; 0 disables
  /// that cache entirely.
  AnalysisCache(size_t MaxAsts, size_t MaxResults)
      : MaxAsts(MaxAsts), MaxResults(MaxResults) {}

  /// The parsed program for \p SourceHash, or nullptr on miss.
  std::shared_ptr<Program> lookupAst(uint64_t SourceHash);

  /// Caches a successfully parsed program. First insert wins on a race;
  /// the caller keeps using its own copy either way.
  void insertAst(uint64_t SourceHash, std::shared_ptr<Program> P);

  /// The cached payload for \p Key, or false on miss.
  bool lookupResult(const std::string &Key, std::string &PayloadOut);

  void insertResult(const std::string &Key, const std::string &Payload);

  // Monotonic counters, exported through serve stats.
  uint64_t astHits() const { return AstHits.load(); }
  uint64_t astMisses() const { return AstMisses.load(); }
  uint64_t resultHits() const { return ResultHits.load(); }
  uint64_t resultMisses() const { return ResultMisses.load(); }

private:
  // One LRU: recency list of (key, value), map from key to list position.
  template <typename K, typename V> struct Lru {
    std::list<std::pair<K, V>> Order; // Front = most recent.
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> Pos;

    V *touch(const K &Key) {
      auto It = Pos.find(Key);
      if (It == Pos.end())
        return nullptr;
      Order.splice(Order.begin(), Order, It->second);
      return &Order.front().second;
    }

    void insert(const K &Key, V Value, size_t Max) {
      if (Max == 0)
        return;
      if (V *Existing = touch(Key)) {
        *Existing = std::move(Value);
        return;
      }
      Order.emplace_front(Key, std::move(Value));
      Pos[Key] = Order.begin();
      while (Order.size() > Max) {
        Pos.erase(Order.back().first);
        Order.pop_back();
      }
    }
  };

  const size_t MaxAsts, MaxResults;
  std::mutex AstMu, ResultMu;
  Lru<uint64_t, std::shared_ptr<Program>> Asts;
  Lru<std::string, std::string> Results;
  std::atomic<uint64_t> AstHits{0}, AstMisses{0};
  std::atomic<uint64_t> ResultHits{0}, ResultMisses{0};
};

} // namespace serve
} // namespace dda

#endif // DDA_SERVE_CACHE_H
