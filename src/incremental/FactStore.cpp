//===- FactStore.cpp - Persistent append-only region-summary store --------===//

#include "incremental/FactStore.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <unistd.h>

using namespace dda;

namespace fs = std::filesystem;

constexpr char FactStore::Magic[9];

static uint64_t fnv64(const void *Data, size_t Len, uint64_t H) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

size_t FactStore::KeyHash::operator()(const Key &K) const {
  uint64_t H = 0xcbf29ce484222325ull;
  H = fnv64(&K.StmtKey, sizeof(K.StmtKey), H);
  H = fnv64(&K.PreFp, sizeof(K.PreFp), H);
  H = fnv64(&K.OptFp, sizeof(K.OptFp), H);
  return static_cast<size_t>(H);
}

bool FactStore::open(const std::string &Dir, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    Error = "fact-store: cannot create '" + Dir + "': " + EC.message();
    return false;
  }
  if (!fs::is_directory(Dir, EC) || EC) {
    Error = "fact-store: '" + Dir + "' is not a directory";
    return false;
  }
  Directory = Dir;

  // Deterministic load order (lookup results don't depend on it — first
  // writer wins and duplicate keys carry equal payloads — but determinism
  // keeps the skip/drop counters reproducible).
  std::vector<std::string> Segments;
  for (const auto &Entry : fs::directory_iterator(Dir, EC)) {
    if (EC)
      break;
    const fs::path &P = Entry.path();
    if (P.extension() == ".facts" &&
        P.filename().string().rfind("seg-", 0) == 0)
      Segments.push_back(P.string());
  }
  std::sort(Segments.begin(), Segments.end());
  for (const std::string &Path : Segments) {
    if (loadSegment(Path))
      ++SegmentsLoaded;
    else
      ++SegmentsSkipped;
  }
  return true;
}

bool FactStore::loadSegment(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  if (Bytes.size() < 12 || std::memcmp(Bytes.data(), Magic, 8) != 0)
    return false;
  uint32_t Version;
  std::memcpy(&Version, Bytes.data() + 8, 4);
  if (Version != FormatVersion)
    return false;

  size_t Pos = 12;
  while (Pos < Bytes.size()) {
    if (Bytes.size() - Pos < 12) { // truncated frame header
      ++RecordsDropped;
      break;
    }
    uint32_t Len;
    uint64_t Sum;
    std::memcpy(&Len, Bytes.data() + Pos, 4);
    std::memcpy(&Sum, Bytes.data() + Pos + 4, 8);
    Pos += 12;
    if (Len < 40 || Len > Bytes.size() - Pos) { // truncated/garbage payload
      ++RecordsDropped;
      break;
    }
    const char *Payload = Bytes.data() + Pos;
    if (fnv64(Payload, Len, 0xcbf29ce484222325ull) != Sum) { // bit flip
      ++RecordsDropped;
      break;
    }
    ByteReader R(std::string_view(Payload, Len));
    RegionSummary S;
    S.StmtKey = R.u64();
    S.PreFp = R.u64();
    S.OptFp = R.u64();
    S.PostFp = R.u64();
    S.Delta = R.str();
    if (!R.ok() || !R.atEnd()) {
      ++RecordsDropped;
      break;
    }
    insertLocked(std::move(S), /*Pending=*/false);
    Pos += Len;
  }
  return true;
}

bool FactStore::insertLocked(RegionSummary S, bool Pending) {
  Key K{S.StmtKey, S.PreFp, S.OptFp};
  auto [It, Inserted] =
      Summaries.try_emplace(K, nullptr);
  if (!Inserted)
    return false;
  It->second = std::make_unique<RegionSummary>(std::move(S));
  if (Pending)
    PendingWrite.push_back(It->second.get());
  return true;
}

const RegionSummary *FactStore::lookup(uint64_t StmtKey, uint64_t PreFp,
                                       uint64_t OptFp) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Summaries.find(Key{StmtKey, PreFp, OptFp});
  return It == Summaries.end() ? nullptr : It->second.get();
}

void FactStore::insert(RegionSummary S) {
  std::lock_guard<std::mutex> Lock(Mu);
  insertLocked(std::move(S), /*Pending=*/true);
}

bool FactStore::commit(std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (PendingWrite.empty())
    return true;
  if (Directory.empty()) {
    Error = "fact-store: not opened";
    return false;
  }

  std::string Bytes;
  Bytes.append(Magic, 8);
  uint32_t Version = FormatVersion;
  Bytes.append(reinterpret_cast<const char *>(&Version), 4);
  for (const RegionSummary *S : PendingWrite) {
    ByteWriter W;
    W.u64(S->StmtKey);
    W.u64(S->PreFp);
    W.u64(S->OptFp);
    W.u64(S->PostFp);
    W.str(S->Delta);
    uint32_t Len = static_cast<uint32_t>(W.size());
    uint64_t Sum = fnv64(W.bytes().data(), W.size(), 0xcbf29ce484222325ull);
    Bytes.append(reinterpret_cast<const char *>(&Len), 4);
    Bytes.append(reinterpret_cast<const char *>(&Sum), 8);
    Bytes.append(W.bytes());
  }

  char Name[64];
  std::snprintf(Name, sizeof(Name), "seg-%016llx.facts",
                static_cast<unsigned long long>(
                    fnv64(Bytes.data(), Bytes.size(), 0xcbf29ce484222325ull)));
  fs::path Final = fs::path(Directory) / Name;
  char TmpName[96];
  std::snprintf(TmpName, sizeof(TmpName), "tmp-%ld-%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(++CommitSeq));
  fs::path Tmp = fs::path(Directory) / TmpName;

  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Error = "fact-store: cannot write '" + Tmp.string() + "'";
      return false;
    }
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    Out.flush();
    if (!Out) {
      Error = "fact-store: short write to '" + Tmp.string() + "'";
      std::error_code EC;
      fs::remove(Tmp, EC);
      return false;
    }
  }
  // Content-hash names make the rename idempotent: a concurrent process
  // committing the same summaries produces byte-identical content, and
  // rename over an existing file is atomic on POSIX.
  std::error_code EC;
  fs::rename(Tmp, Final, EC);
  if (EC) {
    Error = "fact-store: rename failed: " + EC.message();
    fs::remove(Tmp, EC);
    return false;
  }
  PendingWrite.clear();
  return true;
}

size_t FactStore::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Summaries.size();
}

size_t FactStore::pendingCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return PendingWrite.size();
}
