//===- SubtreeSummary.h - Region summaries for incremental replay -*- C++ -*-=//
///
/// \file
/// The value type the incremental layer persists: one RegionSummary per
/// analyzed top-level statement ("region"), keyed by
///
///   (StmtKey, PreFp, OptFp)
///
/// where StmtKey identifies the statement's code *and* its program points
/// (structural hash x position hash x NodeID), PreFp is the chained
/// execution fingerprint certifying the entire history that produced the
/// reaching state (options, hoisted declarations, and every prior region's
/// key + effect), and OptFp is the option-vector fingerprint including the
/// seed. The summary's payload is an opaque byte-encoded effect delta
/// (facts, heap/env post-images, governor spend, RNG tapes, ...) produced
/// and consumed by the determinacy layer; this module only defines the
/// container and the byte-level reader/writer both sides share.
///
/// Everything written through ByteWriter spells strings out as bytes —
/// never interner StringIds — so summaries are valid across processes.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_INCREMENTAL_SUBTREESUMMARY_H
#define DDA_INCREMENTAL_SUBTREESUMMARY_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dda {

/// 64-bit FNV-1a; the checksum/content-hash primitive of the store layer.
uint64_t summaryChecksum(std::string_view Bytes);

/// Advances a chained execution fingerprint past one region: the new
/// fingerprint certifies "the old history, then this statement, with this
/// effect". Order-dependent by construction.
uint64_t chainFingerprint(uint64_t PrevFp, uint64_t StmtKey,
                          uint64_t DeltaHash);

/// One stored region effect. Key fields + opaque delta payload.
struct RegionSummary {
  uint64_t StmtKey = 0; ///< subtree hash x position hash x NodeID
  uint64_t PreFp = 0;   ///< chained fingerprint of the reaching state
  uint64_t OptFp = 0;   ///< option-vector fingerprint (seed included)
  uint64_t PostFp = 0;  ///< PreFp advanced past this region's effect
  std::string Delta;    ///< byte-encoded effect (determinacy layer schema)
};

/// Little-endian append-only byte encoder. All multi-byte integers are
/// memcpy'd (the store is host-endian; segment files are per-machine cache
/// artifacts, not interchange files — the versioned header guards misuse).
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u16(uint16_t V) { raw(&V, sizeof(V)); }
  void u32(uint32_t V) { raw(&V, sizeof(V)); }
  void u64(uint64_t V) { raw(&V, sizeof(V)); }
  void f64(double V) { raw(&V, sizeof(V)); }
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    raw(S.data(), S.size());
  }
  void raw(const void *Data, size_t Len) {
    Buf.append(static_cast<const char *>(Data), Len);
  }
  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  std::string Buf;
};

/// Bounds-checked decoder over a byte buffer. Any out-of-bounds read sets a
/// sticky failure flag and yields zeros/empties; callers check ok() once at
/// the end (or at validation points) instead of after every field.
class ByteReader {
public:
  explicit ByteReader(std::string_view Data) : Data(Data) {}

  uint8_t u8() {
    uint8_t V = 0;
    read(&V, sizeof(V));
    return V;
  }
  uint16_t u16() {
    uint16_t V = 0;
    read(&V, sizeof(V));
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    read(&V, sizeof(V));
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    read(&V, sizeof(V));
    return V;
  }
  double f64() {
    double V = 0;
    read(&V, sizeof(V));
    return V;
  }
  std::string str() {
    uint32_t Len = u32();
    if (Len > Data.size() - Pos) {
      Failed = true;
      return {};
    }
    std::string S(Data.substr(Pos, Len));
    Pos += Len;
    return S;
  }
  bool ok() const { return !Failed; }
  bool atEnd() const { return Pos == Data.size(); }
  size_t remaining() const { return Data.size() - Pos; }

private:
  void read(void *Out, size_t Len) {
    if (Failed || Len > Data.size() - Pos) {
      Failed = true;
      return;
    }
    std::memcpy(Out, Data.data() + Pos, Len);
    Pos += Len;
  }

  std::string_view Data;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace dda

#endif // DDA_INCREMENTAL_SUBTREESUMMARY_H
