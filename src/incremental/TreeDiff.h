//===- TreeDiff.h - Clean/dirty classification between programs -*- C++ -*-===//
///
/// \file
/// Maps the top-level statements of a new program onto a previously seen
/// program by structural hash and classifies each as *clean* (an identical
/// subtree existed before) or *dirty* (new or edited code). Matching is a
/// longest-common-subsequence over the two hash sequences (with the usual
/// common prefix/suffix fast path), so a one-statement edit in the middle
/// of a large file dirties exactly that statement — insertions and
/// deletions shift positions without dirtying their neighbours.
///
/// Position shifts are the reason clean-vs-dirty is advisory rather than a
/// soundness boundary: a "clean" statement at a new line still produces
/// different program points, and the determinacy layer's chained
/// fingerprints (which cover positions) decide what actually replays. The
/// diff is the serve layer's observability and planning signal — how much
/// of the incoming program is genuinely new code (`dirty_nodes`).
///
//===----------------------------------------------------------------------===//

#ifndef DDA_INCREMENTAL_TREEDIFF_H
#define DDA_INCREMENTAL_TREEDIFF_H

#include "ast/ASTContext.h"

#include <cstdint>
#include <vector>

namespace dda {

struct TreeDiffResult {
  /// For each new top-level statement: matched old index, or -1 if dirty.
  std::vector<int64_t> OldMatch;
  size_t CleanStmts = 0;
  size_t DirtyStmts = 0;
  /// Total AST nodes inside the dirty top-level statements.
  size_t DirtyNodes = 0;
};

/// Number of AST nodes in the subtree rooted at N.
size_t subtreeNodeCount(const Node *N);

/// Diffs New's top-level statements against a prior program's top-level
/// hash sequence (as produced by topLevelHashes).
TreeDiffResult diffTopLevel(const std::vector<uint64_t> &OldHashes,
                            const Program &New);

} // namespace dda

#endif // DDA_INCREMENTAL_TREEDIFF_H
