//===- FactStore.h - Persistent append-only region-summary store -*- C++ -*-==//
///
/// \file
/// On-disk store for RegionSummaries (`--fact-store DIR`). The directory
/// holds content-addressed segment files:
///
///   DIR/seg-<16 hex chars>.facts
///
/// Each segment is a versioned header ("DDAFACTS" magic + u32 format
/// version) followed by length- and checksum-framed records. Loading is
/// deliberately forgiving: a segment with a bad header is skipped whole,
/// and a record with a bad length or checksum stops the scan of that
/// segment — everything read up to that point stays usable, so a
/// truncated or bit-flipped store degrades to (partial) cold start, never
/// to an error or a wrong replay (record payloads are re-validated against
/// live pre-state at replay time on top of the checksum).
///
/// Writes never touch existing segments: new summaries accumulate in
/// memory and commit() streams them into a fresh segment via
/// write-temp-then-rename, so a crash mid-commit leaves only an ignorable
/// tmp- file. The file name is the content hash of the segment bytes,
/// which makes commits of identical content idempotent across processes.
///
/// All public methods are thread-safe; lookup() returns pointers that stay
/// valid for the store's lifetime (summaries are never evicted in-process).
///
//===----------------------------------------------------------------------===//

#ifndef DDA_INCREMENTAL_FACTSTORE_H
#define DDA_INCREMENTAL_FACTSTORE_H

#include "incremental/SubtreeSummary.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dda {

class FactStore {
public:
  FactStore() = default;
  FactStore(const FactStore &) = delete;
  FactStore &operator=(const FactStore &) = delete;

  /// Binds the store to DIR (created if absent) and loads every readable
  /// segment. Returns false only when the directory cannot be created or
  /// opened; unreadable/corrupt segments are tolerated and counted.
  bool open(const std::string &Dir, std::string &Error);

  /// Finds the summary for (StmtKey, PreFp, OptFp), or null. The returned
  /// pointer is valid until the store is destroyed.
  const RegionSummary *lookup(uint64_t StmtKey, uint64_t PreFp,
                              uint64_t OptFp) const;

  /// Adds a freshly captured summary (first writer wins; a duplicate key
  /// is dropped — under the chain-fingerprint scheme equal keys imply
  /// equal payloads). It is immediately visible to lookup() and queued
  /// for the next commit().
  void insert(RegionSummary S);

  /// Persists queued summaries into one new segment file. No-op when
  /// nothing is pending. Returns false on I/O failure (pending summaries
  /// are kept and retried on the next commit).
  bool commit(std::string &Error);

  size_t size() const;
  size_t pendingCount() const;
  uint64_t segmentsLoaded() const { return SegmentsLoaded; }
  uint64_t segmentsSkipped() const { return SegmentsSkipped; }
  uint64_t recordsDropped() const { return RecordsDropped; }
  const std::string &directory() const { return Directory; }

  static constexpr char Magic[9] = "DDAFACTS"; // 8 bytes on disk
  static constexpr uint32_t FormatVersion = 1;

private:
  struct Key {
    uint64_t StmtKey, PreFp, OptFp;
    bool operator==(const Key &O) const {
      return StmtKey == O.StmtKey && PreFp == O.PreFp && OptFp == O.OptFp;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const;
  };

  bool loadSegment(const std::string &Path);
  bool insertLocked(RegionSummary S, bool Pending);

  mutable std::mutex Mu;
  std::string Directory;
  std::unordered_map<Key, std::unique_ptr<RegionSummary>, KeyHash> Summaries;
  std::vector<const RegionSummary *> PendingWrite;
  uint64_t SegmentsLoaded = 0;
  uint64_t SegmentsSkipped = 0;
  uint64_t RecordsDropped = 0;
  uint64_t CommitSeq = 0;
};

} // namespace dda

#endif // DDA_INCREMENTAL_FACTSTORE_H
