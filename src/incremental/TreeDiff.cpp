//===- TreeDiff.cpp - Clean/dirty classification between programs ---------===//

#include "incremental/TreeDiff.h"

#include "ast/ASTWalk.h"
#include "ast/StructuralHash.h"

#include <algorithm>

using namespace dda;

size_t dda::subtreeNodeCount(const Node *N) {
  size_t Count = 0;
  walkPreOrder(N, [&](const Node *) {
    ++Count;
    return true;
  });
  return Count;
}

TreeDiffResult dda::diffTopLevel(const std::vector<uint64_t> &OldHashes,
                                 const Program &New) {
  std::vector<uint64_t> NewHashes = topLevelHashes(New);
  size_t N = NewHashes.size(), M = OldHashes.size();
  TreeDiffResult R;
  R.OldMatch.assign(N, -1);

  // Common prefix/suffix fast path: a single edit leaves both huge.
  size_t Pre = 0;
  while (Pre < N && Pre < M && NewHashes[Pre] == OldHashes[Pre]) {
    R.OldMatch[Pre] = static_cast<int64_t>(Pre);
    ++Pre;
  }
  size_t Suf = 0;
  while (Suf < N - Pre && Suf < M - Pre &&
         NewHashes[N - 1 - Suf] == OldHashes[M - 1 - Suf]) {
    R.OldMatch[N - 1 - Suf] = static_cast<int64_t>(M - 1 - Suf);
    ++Suf;
  }

  // LCS over the middle. The middle is small after a typical edit; cap the
  // quadratic table for adversarial inputs (beyond the cap the unmatched
  // middle just counts as dirty, which only under-reports reuse).
  size_t An = N - Pre - Suf, Bm = M - Pre - Suf;
  if (An > 0 && Bm > 0 && An * Bm <= size_t(4) * 1024 * 1024) {
    const uint64_t *A = NewHashes.data() + Pre;
    const uint64_t *B = OldHashes.data() + Pre;
    std::vector<uint32_t> T((An + 1) * (Bm + 1), 0);
    auto At = [&](size_t I, size_t J) -> uint32_t & {
      return T[I * (Bm + 1) + J];
    };
    for (size_t I = An; I-- > 0;)
      for (size_t J = Bm; J-- > 0;)
        At(I, J) = A[I] == B[J] ? At(I + 1, J + 1) + 1
                                : std::max(At(I + 1, J), At(I, J + 1));
    size_t I = 0, J = 0;
    while (I < An && J < Bm) {
      if (A[I] == B[J]) {
        R.OldMatch[Pre + I] = static_cast<int64_t>(Pre + J);
        ++I, ++J;
      } else if (At(I + 1, J) >= At(I, J + 1)) {
        ++I;
      } else {
        ++J;
      }
    }
  }

  for (size_t I = 0; I < N; ++I) {
    if (R.OldMatch[I] >= 0) {
      ++R.CleanStmts;
    } else {
      ++R.DirtyStmts;
      R.DirtyNodes += subtreeNodeCount(New.Body[I]);
    }
  }
  return R;
}
