//===- SubtreeSummary.cpp - Region summaries for incremental replay -------===//

#include "incremental/SubtreeSummary.h"

using namespace dda;

uint64_t dda::summaryChecksum(std::string_view Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

uint64_t dda::chainFingerprint(uint64_t PrevFp, uint64_t StmtKey,
                               uint64_t DeltaHash) {
  auto Mix = [](uint64_t A, uint64_t B) {
    uint64_t H =
        A + 0x9e3779b97f4a7c15ull + (B ^ (B >> 30)) * 0xbf58476d1ce4e5b9ull;
    H = (H ^ (H >> 27)) * 0x94d049bb133111ebull;
    return H ^ (H >> 31);
  };
  return Mix(Mix(PrevFp, StmtKey), DeltaHash);
}
