//===- Builtins.cpp -------------------------------------------------------==//

#include "interp/Builtins.h"

#include "interp/Ops.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace dda;

NativeHost::~NativeHost() = default;

const NativeInfo &dda::nativeInfo(NativeFn Fn) {
  // Defaults: pure, deterministic, counterfactual-safe.
  static const NativeInfo Infos[] = {
      {"<none>", false, false, false, true},
      {"Math.random", /*Random=*/true, false, false, true},
      {"Math.floor", false, false, false, true},
      {"Math.ceil", false, false, false, true},
      {"Math.round", false, false, false, true},
      {"Math.abs", false, false, false, true},
      {"Math.max", false, false, false, true},
      {"Math.min", false, false, false, true},
      {"Math.pow", false, false, false, true},
      {"Math.sqrt", false, false, false, true},
      {"parseInt", false, false, false, true},
      {"parseFloat", false, false, false, true},
      {"isNaN", false, false, false, true},
      {"String", false, false, false, true},
      {"Number", false, false, false, true},
      {"Boolean", false, false, false, true},
      {"print", false, false, false, true},
      {"eval", false, false, false, true},
      {"String.charAt", false, false, false, true},
      {"String.charCodeAt", false, false, false, true},
      {"String.toUpperCase", false, false, false, true},
      {"String.toLowerCase", false, false, false, true},
      {"String.substr", false, false, false, true},
      {"String.substring", false, false, false, true},
      {"String.indexOf", false, false, false, true},
      {"String.slice", false, false, false, true},
      {"String.split", false, false, false, true},
      {"String.concat", false, false, false, true},
      {"String.replace", false, false, false, true},
      {"Array.push", false, false, false, true},
      {"Array.pop", false, false, false, true},
      {"Array.shift", false, false, false, true},
      {"Array.join", false, false, false, true},
      {"Array.indexOf", false, false, false, true},
      {"Array.slice", false, false, false, true},
      {"Array.concat", false, false, false, true},
      {"Object.hasOwnProperty", false, false, false, true},
      {"Object.keys", false, false, false, true},
      {"document.getElementById", false, /*DomRead=*/true, /*DomEffect=*/true,
       true},
      {"document.createElement", false, false, /*DomEffect=*/true, true},
      {"document.write", false, false, /*DomEffect=*/true,
       /*CounterfactualSafe=*/false},
      {"addEventListener", false, false, /*DomEffect=*/true,
       /*CounterfactualSafe=*/false},
      {"getAttribute", false, /*DomRead=*/true, /*DomEffect=*/true, true},
      {"setAttribute", false, false, /*DomEffect=*/true, true},
      {"appendChild", false, false, /*DomEffect=*/true, true},
  };
  size_t Index = static_cast<size_t>(Fn);
  assert(Index < sizeof(Infos) / sizeof(Infos[0]) && "native out of range");
  return Infos[Index];
}

Value dda::domSyntheticValue(uint64_t Seed, ObjectRef O, StringId Name) {
  // FNV-1a over (seed, object, name characters), then render as a short
  // token. The token is what "the page" happened to contain in this
  // environment. Hashing the characters (not the atom id) keeps the value
  // stable regardless of interning order.
  uint64_t H = 1469598103934665603ULL ^ Seed;
  auto Mix = [&H](uint64_t X) {
    H ^= X;
    H *= 1099511628211ULL;
  };
  Mix(O);
  for (char C : Interner::global().view(Name))
    Mix(static_cast<unsigned char>(C));
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "dom%llx",
                static_cast<unsigned long long>(H & 0xffffff));
  return Value::string(Buf);
}

namespace {

double argNumber(const std::vector<TaggedValue> &Args, size_t I,
                 double Default = std::nan("")) {
  if (I >= Args.size())
    return Default;
  return toNumber(Args[I].V);
}

std::string argString(NativeHost &Host, const std::vector<TaggedValue> &Args,
                      size_t I) {
  if (I >= Args.size())
    return "undefined";
  return toStringValue(Args[I].V, Host.heap());
}

StringId argAtom(NativeHost &Host, const std::vector<TaggedValue> &Args,
                 size_t I) {
  if (I >= Args.size())
    return Interner::global().wellKnown().Undefined;
  return toStringAtom(Args[I].V, Host.heap());
}

Det inputsDet(const TaggedValue &This, const std::vector<TaggedValue> &Args) {
  Det D = This.D;
  for (const TaggedValue &A : Args)
    D = meet(D, A.D);
  return D;
}

/// Reads the numeric `length` of an array through the host (so determinacy
/// of the length participates in the result).
TaggedValue arrayLength(NativeHost &Host, ObjectRef Arr) {
  TaggedValue Len = Host.nativeReadProperty(Arr, atoms().Length);
  if (!Len.V.isNumber())
    Len.V = Value::number(0);
  return Len;
}

ObjectRef allocArray(NativeHost &Host, Det D,
                     const std::vector<TaggedValue> &Elements) {
  ObjectRef Arr = Host.newArray();
  Interner &In = Interner::global();
  for (size_t I = 0; I < Elements.size(); ++I)
    Host.nativeWriteProperty(Arr, In.internIndex(I), Elements[I]);
  Host.nativeWriteProperty(
      Arr, In.wellKnown().Length,
      TaggedValue(Value::number(static_cast<double>(Elements.size())), D));
  return Arr;
}

NativeResult ok(Value V, Det D) {
  NativeResult R;
  R.Result = TaggedValue(std::move(V), D);
  return R;
}

NativeResult thrown(std::string Message) {
  NativeResult R;
  R.Threw = true;
  R.Thrown = Value::string(std::move(Message));
  return R;
}

} // namespace

NativeResult dda::callNative(NativeHost &Host, NativeFn Fn,
                             const TaggedValue &This,
                             const std::vector<TaggedValue> &Args) {
  const NativeInfo &Info = nativeInfo(Fn);
  Heap &H = Host.heap();
  Det DIn = inputsDet(This, Args);
  // Model: Math.random is always indeterminate; DOM reads are indeterminate
  // unless the host runs under the determinate-DOM assumption (the host
  // expresses that by downgrading in its own wrapper; here we report the
  // conservative flag and let hosts override via recordSetDeterminacy-style
  // hooks at the call site). The interpreters apply the DetDOM policy.
  Det DOut = DIn;
  (void)Info;

  switch (Fn) {
  case NativeFn::None:
  case NativeFn::Eval:
    return ok(Value::undefined(), DOut);

  // -------------------------------------------------------------- Math ----
  case NativeFn::MathRandom:
    return ok(Value::number(Host.randomRng().nextDouble()),
              Det::Indeterminate);
  case NativeFn::MathFloor:
    return ok(Value::number(std::floor(argNumber(Args, 0))), DOut);
  case NativeFn::MathCeil:
    return ok(Value::number(std::ceil(argNumber(Args, 0))), DOut);
  case NativeFn::MathRound:
    return ok(Value::number(std::floor(argNumber(Args, 0) + 0.5)), DOut);
  case NativeFn::MathAbs:
    return ok(Value::number(std::fabs(argNumber(Args, 0))), DOut);
  case NativeFn::MathMax: {
    double Best = -std::numeric_limits<double>::infinity();
    for (size_t I = 0; I < Args.size(); ++I)
      Best = std::max(Best, argNumber(Args, I));
    return ok(Value::number(Best), DOut);
  }
  case NativeFn::MathMin: {
    double Best = std::numeric_limits<double>::infinity();
    for (size_t I = 0; I < Args.size(); ++I)
      Best = std::min(Best, argNumber(Args, I));
    return ok(Value::number(Best), DOut);
  }
  case NativeFn::MathPow:
    return ok(Value::number(std::pow(argNumber(Args, 0), argNumber(Args, 1))),
              DOut);
  case NativeFn::MathSqrt:
    return ok(Value::number(std::sqrt(argNumber(Args, 0))), DOut);

  // ----------------------------------------------------------- globals ----
  case NativeFn::ParseInt: {
    std::string S = argString(Host, Args, 0);
    size_t Begin = S.find_first_not_of(" \t\n\r");
    if (Begin == std::string::npos)
      return ok(Value::number(std::nan("")), DOut);
    char *End = nullptr;
    double N = static_cast<double>(std::strtol(S.c_str() + Begin, &End, 10));
    if (End == S.c_str() + Begin)
      return ok(Value::number(std::nan("")), DOut);
    return ok(Value::number(N), DOut);
  }
  case NativeFn::ParseFloat: {
    std::string S = argString(Host, Args, 0);
    char *End = nullptr;
    double N = std::strtod(S.c_str(), &End);
    if (End == S.c_str())
      return ok(Value::number(std::nan("")), DOut);
    return ok(Value::number(N), DOut);
  }
  case NativeFn::IsNaN:
    return ok(Value::boolean(std::isnan(argNumber(Args, 0))), DOut);
  case NativeFn::StringCtor:
    return ok(Value::string(Args.empty() ? "" : argString(Host, Args, 0)),
              DOut);
  case NativeFn::NumberCtor:
    return ok(Value::number(Args.empty() ? 0 : argNumber(Args, 0)), DOut);
  case NativeFn::BooleanCtor:
    return ok(Value::boolean(!Args.empty() && toBoolean(Args[0].V)), DOut);
  case NativeFn::Print: {
    std::string Line;
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Line += " ";
      Line += toStringValue(Args[I].V, H);
    }
    Host.output(Line);
    return ok(Value::undefined(), Det::Determinate);
  }

  // ------------------------------------------------------------ string ----
  case NativeFn::StrCharAt: {
    std::string S = toStringValue(This.V, H);
    double I = argNumber(Args, 0, 0);
    if (std::isnan(I) || I < 0 || I >= static_cast<double>(S.size()))
      return ok(Value::string(""), DOut);
    return ok(Value::string(std::string(1, S[static_cast<size_t>(I)])), DOut);
  }
  case NativeFn::StrCharCodeAt: {
    std::string S = toStringValue(This.V, H);
    double I = argNumber(Args, 0, 0);
    if (std::isnan(I) || I < 0 || I >= static_cast<double>(S.size()))
      return ok(Value::number(std::nan("")), DOut);
    return ok(Value::number(static_cast<unsigned char>(
                  S[static_cast<size_t>(I)])),
              DOut);
  }
  case NativeFn::StrToUpperCase: {
    std::string S = toStringValue(This.V, H);
    std::transform(S.begin(), S.end(), S.begin(),
                   [](unsigned char C) { return std::toupper(C); });
    return ok(Value::string(std::move(S)), DOut);
  }
  case NativeFn::StrToLowerCase: {
    std::string S = toStringValue(This.V, H);
    std::transform(S.begin(), S.end(), S.begin(),
                   [](unsigned char C) { return std::tolower(C); });
    return ok(Value::string(std::move(S)), DOut);
  }
  case NativeFn::StrSubstr: {
    std::string S = toStringValue(This.V, H);
    double Start = argNumber(Args, 0, 0);
    double Len = argNumber(Args, 1, static_cast<double>(S.size()));
    if (std::isnan(Start))
      Start = 0;
    if (Start < 0)
      Start = std::max(0.0, static_cast<double>(S.size()) + Start);
    if (std::isnan(Len) || Start >= static_cast<double>(S.size()) || Len <= 0)
      return ok(Value::string(""), DOut);
    size_t B = static_cast<size_t>(Start);
    size_t N = static_cast<size_t>(std::min(Len, double(S.size()) - Start));
    return ok(Value::string(S.substr(B, N)), DOut);
  }
  case NativeFn::StrSubstring:
  case NativeFn::StrSlice: {
    std::string S = toStringValue(This.V, H);
    double Size = static_cast<double>(S.size());
    double Start = argNumber(Args, 0, 0);
    double End = argNumber(Args, 1, Size);
    if (std::isnan(Start))
      Start = 0;
    if (std::isnan(End))
      End = Fn == NativeFn::StrSubstring ? 0 : Size;
    if (Fn == NativeFn::StrSlice) {
      if (Start < 0)
        Start = std::max(0.0, Size + Start);
      if (End < 0)
        End = std::max(0.0, Size + End);
    }
    Start = std::clamp(Start, 0.0, Size);
    End = std::clamp(End, 0.0, Size);
    if (Fn == NativeFn::StrSubstring && Start > End)
      std::swap(Start, End);
    if (Start >= End)
      return ok(Value::string(""), DOut);
    return ok(Value::string(S.substr(static_cast<size_t>(Start),
                                     static_cast<size_t>(End - Start))),
              DOut);
  }
  case NativeFn::StrIndexOf: {
    std::string S = toStringValue(This.V, H);
    std::string Needle = argString(Host, Args, 0);
    size_t P = S.find(Needle);
    return ok(Value::number(P == std::string::npos ? -1
                                                   : static_cast<double>(P)),
              DOut);
  }
  case NativeFn::StrSplit: {
    std::string S = toStringValue(This.V, H);
    std::vector<TaggedValue> Parts;
    if (Args.empty()) {
      Parts.emplace_back(Value::string(S), DOut);
    } else {
      std::string Sep = argString(Host, Args, 0);
      if (Sep.empty()) {
        for (char C : S)
          Parts.emplace_back(Value::string(std::string(1, C)), DOut);
      } else {
        size_t Pos = 0;
        for (;;) {
          size_t Next = S.find(Sep, Pos);
          if (Next == std::string::npos) {
            Parts.emplace_back(Value::string(S.substr(Pos)), DOut);
            break;
          }
          Parts.emplace_back(Value::string(S.substr(Pos, Next - Pos)), DOut);
          Pos = Next + Sep.size();
        }
      }
    }
    return ok(Value::object(allocArray(Host, DOut, Parts)), DOut);
  }
  case NativeFn::StrConcat: {
    std::string S = toStringValue(This.V, H);
    for (size_t I = 0; I < Args.size(); ++I)
      S += argString(Host, Args, I);
    return ok(Value::string(std::move(S)), DOut);
  }
  case NativeFn::StrReplace: {
    std::string S = toStringValue(This.V, H);
    std::string Needle = argString(Host, Args, 0);
    std::string Repl = argString(Host, Args, 1);
    size_t P = S.find(Needle);
    if (P != std::string::npos && !Needle.empty())
      S = S.substr(0, P) + Repl + S.substr(P + Needle.size());
    return ok(Value::string(std::move(S)), DOut);
  }

  // ------------------------------------------------------------- array ----
  case NativeFn::ArrPush: {
    if (!This.V.isObject())
      return thrown("TypeError: push on non-object");
    ObjectRef Arr = This.V.Obj;
    TaggedValue Len = arrayLength(Host, Arr);
    double N = Len.V.Num;
    for (const TaggedValue &A : Args) {
      Host.nativeWriteProperty(Arr, Interner::global().internNumber(N), A);
      N += 1;
    }
    TaggedValue NewLen(Value::number(N), meet(Len.D, This.D));
    Host.nativeWriteProperty(Arr, atoms().Length, NewLen);
    return ok(NewLen.V, NewLen.D);
  }
  case NativeFn::ArrPop: {
    if (!This.V.isObject())
      return thrown("TypeError: pop on non-object");
    ObjectRef Arr = This.V.Obj;
    TaggedValue Len = arrayLength(Host, Arr);
    if (Len.V.Num <= 0)
      return ok(Value::undefined(), meet(Len.D, This.D));
    double N = Len.V.Num - 1;
    TaggedValue Last =
        Host.nativeReadProperty(Arr, Interner::global().internNumber(N));
    Host.nativeWriteProperty(Arr, atoms().Length,
                             TaggedValue(Value::number(N), Len.D));
    return ok(Last.V, meet(Last.D, meet(Len.D, This.D)));
  }
  case NativeFn::ArrShift: {
    if (!This.V.isObject())
      return thrown("TypeError: shift on non-object");
    ObjectRef Arr = This.V.Obj;
    TaggedValue Len = arrayLength(Host, Arr);
    if (Len.V.Num <= 0)
      return ok(Value::undefined(), meet(Len.D, This.D));
    Interner &In = Interner::global();
    TaggedValue First = Host.nativeReadProperty(Arr, In.internIndex(0));
    double N = Len.V.Num;
    for (double I = 1; I < N; I += 1) {
      TaggedValue E = Host.nativeReadProperty(Arr, In.internNumber(I));
      Host.nativeWriteProperty(Arr, In.internNumber(I - 1), E);
    }
    Host.nativeWriteProperty(Arr, In.wellKnown().Length,
                             TaggedValue(Value::number(N - 1), Len.D));
    return ok(First.V, meet(First.D, meet(Len.D, This.D)));
  }
  case NativeFn::ArrJoin: {
    if (!This.V.isObject())
      return thrown("TypeError: join on non-object");
    ObjectRef Arr = This.V.Obj;
    std::string Sep = Args.empty() ? "," : argString(Host, Args, 0);
    TaggedValue Len = arrayLength(Host, Arr);
    Det D = meet(DOut, Len.D);
    std::string Out;
    for (double I = 0; I < Len.V.Num; I += 1) {
      if (I > 0)
        Out += Sep;
      TaggedValue E =
          Host.nativeReadProperty(Arr, Interner::global().internNumber(I));
      D = meet(D, E.D);
      if (!E.V.isUndefined() && !E.V.isNull())
        Out += toStringValue(E.V, H);
    }
    return ok(Value::string(std::move(Out)), D);
  }
  case NativeFn::ArrIndexOf: {
    if (!This.V.isObject())
      return thrown("TypeError: indexOf on non-object");
    ObjectRef Arr = This.V.Obj;
    TaggedValue Len = arrayLength(Host, Arr);
    Det D = meet(DOut, Len.D);
    if (Args.empty())
      return ok(Value::number(-1), D);
    for (double I = 0; I < Len.V.Num; I += 1) {
      TaggedValue E =
          Host.nativeReadProperty(Arr, Interner::global().internNumber(I));
      D = meet(D, E.D);
      if (strictEquals(E.V, Args[0].V))
        return ok(Value::number(I), D);
    }
    return ok(Value::number(-1), D);
  }
  case NativeFn::ArrSlice: {
    if (!This.V.isObject())
      return thrown("TypeError: slice on non-object");
    ObjectRef Arr = This.V.Obj;
    TaggedValue Len = arrayLength(Host, Arr);
    double Size = Len.V.Num;
    double Start = argNumber(Args, 0, 0);
    double End = argNumber(Args, 1, Size);
    if (std::isnan(Start))
      Start = 0;
    if (std::isnan(End))
      End = Size;
    if (Start < 0)
      Start = std::max(0.0, Size + Start);
    if (End < 0)
      End = std::max(0.0, Size + End);
    Start = std::clamp(Start, 0.0, Size);
    End = std::clamp(End, 0.0, Size);
    std::vector<TaggedValue> Elements;
    for (double I = Start; I < End; I += 1)
      Elements.push_back(
          Host.nativeReadProperty(Arr, Interner::global().internNumber(I)));
    Det D = meet(DOut, Len.D);
    return ok(Value::object(allocArray(Host, D, Elements)), D);
  }
  case NativeFn::ArrConcat: {
    if (!This.V.isObject())
      return thrown("TypeError: concat on non-object");
    std::vector<TaggedValue> Elements;
    Det D = DOut;
    auto AppendAll = [&](const TaggedValue &TV) {
      if (TV.V.isObject() && H.get(TV.V.Obj).Class == ObjectClass::Array) {
        TaggedValue Len = arrayLength(Host, TV.V.Obj);
        D = meet(D, Len.D);
        for (double I = 0; I < Len.V.Num; I += 1)
          Elements.push_back(Host.nativeReadProperty(
              TV.V.Obj, Interner::global().internNumber(I)));
      } else {
        Elements.push_back(TV);
      }
    };
    AppendAll(This);
    for (const TaggedValue &A : Args)
      AppendAll(A);
    return ok(Value::object(allocArray(Host, D, Elements)), D);
  }

  // ------------------------------------------------------------ object ----
  case NativeFn::ObjHasOwnProperty: {
    if (!This.V.isObject())
      return ok(Value::boolean(false), DOut);
    Det D = meet(DOut, Host.recordSetDeterminacy(This.V.Obj));
    return ok(Value::boolean(H.get(This.V.Obj).has(argAtom(Host, Args, 0))),
              D);
  }
  case NativeFn::ObjKeys: {
    if (Args.empty() || !Args[0].V.isObject())
      return thrown("TypeError: Object.keys on non-object");
    ObjectRef O = Args[0].V.Obj;
    Det D = meet(DOut, Host.recordSetDeterminacy(O));
    std::vector<TaggedValue> Keys;
    for (StringId K : H.get(O).orderedKeys())
      Keys.emplace_back(Value::atom(K), D);
    return ok(Value::object(allocArray(Host, D, Keys)), D);
  }

  // --------------------------------------------------------------- DOM ----
  case NativeFn::DomGetElementById: {
    std::string Id = argString(Host, Args, 0);
    ObjectRef El = Host.domElement(intern("id:" + Id));
    return ok(Value::object(El), DOut);
  }
  case NativeFn::DomCreateElement: {
    ObjectRef El = H.allocate(ObjectClass::Dom);
    Host.nativeWriteProperty(
        El, intern("tagName"),
        TaggedValue(Value::string(argString(Host, Args, 0))));
    return ok(Value::object(El), DOut);
  }
  case NativeFn::DomWrite:
    Host.output("[document.write] " + argString(Host, Args, 0));
    return ok(Value::undefined(), Det::Determinate);
  case NativeFn::DomAddEventListener: {
    if (Args.size() >= 2)
      Host.registerEventHandler(argAtom(Host, Args, 0), Args[1].V);
    return ok(Value::undefined(), Det::Determinate);
  }
  case NativeFn::DomGetAttribute: {
    if (!This.V.isObject())
      return thrown("TypeError: getAttribute on non-object");
    StringId Name = intern("attr:" + argString(Host, Args, 0));
    // A previously setAttribute'd value wins; otherwise synthesize content.
    if (H.get(This.V.Obj).has(Name)) {
      TaggedValue TV = Host.nativeReadProperty(This.V.Obj, Name);
      return ok(TV.V, TV.D);
    }
    return ok(domSyntheticValue(Host.domSeed(), This.V.Obj, Name), DOut);
  }
  case NativeFn::DomSetAttribute: {
    if (!This.V.isObject())
      return thrown("TypeError: setAttribute on non-object");
    StringId Name = intern("attr:" + argString(Host, Args, 0));
    TaggedValue TV = Args.size() >= 2 ? Args[1]
                                      : TaggedValue(Value::undefined());
    Host.nativeWriteProperty(This.V.Obj, Name, TV);
    return ok(Value::undefined(), Det::Determinate);
  }
  case NativeFn::DomAppendChild: {
    if (!This.V.isObject())
      return thrown("TypeError: appendChild on non-object");
    TaggedValue Child =
        Args.empty() ? TaggedValue(Value::undefined()) : Args[0];
    Host.nativeWriteProperty(This.V.Obj, intern("lastChild"), Child);
    return ok(Child.V, Child.D);
  }
  }
  return ok(Value::undefined(), DOut);
}
