//===- Environment.h - Scope chains for MiniJS -------------------*- C++ -*-==//
///
/// \file
/// Environments form the lexical scope chain. Like the heap, slots carry a
/// determinacy flag used only by the instrumented interpreter. Environments
/// live in an arena (deque for reference stability) and are referenced by
/// EnvRef; closures capture an EnvRef. Bindings are keyed on interned atoms,
/// so a variable lookup hashes a 32-bit id instead of the name's characters.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_INTERP_ENVIRONMENT_H
#define DDA_INTERP_ENVIRONMENT_H

#include "interp/Value.h"
#include "support/Arena.h"
#include "support/ResourceGovernor.h"

#include <cassert>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dda {

/// A variable binding: value plus determinacy flag.
struct Binding {
  Value V;
  Det D = Det::Determinate;
  /// Builtin globals installed before the program runs are immune to the
  /// conservative whole-environment taint (mirrors Slot::Immune); a user
  /// write replaces the binding and clears the flag.
  bool Immune = false;
};

/// One scope: bindings plus a parent link.
struct Environment {
  EnvRef Parent = 0;
  std::unordered_map<StringId, Binding> Vars;
  /// Copy-on-write stamp; see EnvArena::ensureSaved (mirrors
  /// JSObject::SaveGen).
  uint32_t SaveGen = 0;

  /// Freshly-constructed state in place (ChunkedArena pool reuse); the
  /// binding map keeps its buckets. Mirrors JSObject::reset.
  void reset() {
    Parent = 0;
    Vars.clear();
    SaveGen = 0;
  }
};

/// Arena of environments. Reference 0 is invalid; reference 1 is created by
/// the interpreter as the global scope.
class EnvArena {
public:
  EnvArena() { Envs.push(); } // Index 0 invalid.

  EnvRef allocate(EnvRef Parent) {
    Envs.push().Parent = Parent;
    return static_cast<EnvRef>(Envs.size() - 1);
  }

  Environment &get(EnvRef Ref) {
    assert(Ref != 0 && Ref < Envs.size() && "invalid environment reference");
    return Envs[Ref];
  }

  /// Finds the environment in \p Start's chain that declares \p Name, or 0.
  EnvRef lookupEnv(EnvRef Start, StringId Name) {
    for (EnvRef E = Start; E != 0; E = Envs[E].Parent)
      if (Envs[E].Vars.count(Name))
        return E;
    return 0;
  }

  /// Finds the binding for \p Name starting at \p Start, or null. One hash
  /// probe per environment on the chain (no lookupEnv + operator[] re-probe).
  /// \p FoundIn (optional) receives the declaring environment on a hit.
  Binding *lookup(EnvRef Start, StringId Name, EnvRef *FoundIn = nullptr) {
    for (EnvRef E = Start; E != 0; E = Envs[E].Parent) {
      auto It = Envs[E].Vars.find(Name);
      if (It != Envs[E].Vars.end()) {
        if (FoundIn)
          *FoundIn = E;
        return &It->second;
      }
    }
    return nullptr;
  }

  size_t size() const { return Envs.size() - 1; }

  /// Arena-wide binding-set generation; see noteShapeChange().
  uint32_t shapeGen() const { return ShapeG; }

  /// Records a change to some environment's binding *set* that could affect
  /// name resolution through pre-existing scope chains: an insert into an
  /// environment that already had lookups routed through it (sloppy-mode
  /// global creation, eval hoisting into the caller's scope) or any binding
  /// erase (counterfactual journal undo). The bytecode VMs' variable inline
  /// caches key cached Binding pointers on (start EnvRef, shapeGen) and
  /// refill on mismatch. Inserts into freshly allocated environments
  /// (call/catch/function-wrapper scopes) need no bump: a fresh environment
  /// cannot appear on any chain an existing cache entry resolved through, and
  /// unordered_map node stability keeps Binding pointers valid across
  /// unrelated inserts.
  void noteShapeChange() { ++ShapeG; }

  /// Iterates every environment (conservative whole-environment taint).
  template <typename Fn> void forEach(Fn F) {
    for (size_t I = 1; I < Envs.size(); ++I)
      F(static_cast<EnvRef>(I), Envs[I]);
  }

  /// Attaches a budget governor (not owned; may be null) so charged
  /// snapshot frames can bill pre-image copies, mirroring Heap.
  void setGovernor(ResourceGovernor *G) { Gov = G; }

  // --- Copy-on-write snapshots (see Heap for the full contract) ----------

  void beginSnapshot(bool Charged) {
    Snapshots.push_back(SnapshotFrame{++SnapGen, Charged, {}});
  }

  void ensureSaved(EnvRef Ref) {
    if (Snapshots.empty())
      return;
    SnapshotFrame &F = Snapshots.back();
    Environment &E = Envs[Ref];
    if (E.SaveGen == F.Gen)
      return;
    F.Saved.emplace_back(Ref, E);
    E.SaveGen = F.Gen;
    ++CowSaveCount;
    if (F.Charged && Gov)
      Gov->noteCowSave();
  }

  /// Restores pre-images in reverse save order. Any restore replaces a
  /// binding map wholesale (erases included), so the arena-wide shape
  /// generation is bumped once when anything was restored — the same
  /// invalidation a journal undo's erases would have produced.
  void restoreSnapshot() {
    assert(!Snapshots.empty() && "no snapshot frame to restore");
    SnapshotFrame &F = Snapshots.back();
    bool Any = !F.Saved.empty();
    for (auto It = F.Saved.rbegin(); It != F.Saved.rend(); ++It)
      Envs[It->first] = std::move(It->second);
    Snapshots.pop_back();
    if (Any)
      noteShapeChange();
  }

  void commitSnapshot() {
    assert(!Snapshots.empty() && "no snapshot frame to commit");
    SnapshotFrame F = std::move(Snapshots.back());
    Snapshots.pop_back();
    if (!Snapshots.empty()) {
      SnapshotFrame &P = Snapshots.back();
      for (auto &E : F.Saved)
        P.Saved.push_back(std::move(E));
    }
  }

  void dropSnapshotsForFork() { Snapshots.clear(); }

  /// Parks the truncated environments for pooled reuse (mirrors Heap).
  void truncateTo(size_t N) { Envs.truncateTo(N + 1); }

  size_t snapshotDepth() const { return Snapshots.size(); }
  uint64_t cowSaves() const { return CowSaveCount; }

private:
  struct SnapshotFrame {
    uint32_t Gen;
    bool Charged;
    std::vector<std::pair<EnvRef, Environment>> Saved;
  };

  // Chunked arena (was std::deque): same reference stability, chunk size
  // tuned to the element, pooled reuse across speculation rollbacks.
  ChunkedArena<Environment> Envs;
  uint32_t ShapeG = 1;
  ResourceGovernor *Gov = nullptr;
  std::vector<SnapshotFrame> Snapshots;
  uint32_t SnapGen = 0;
  uint64_t CowSaveCount = 0;
};

} // namespace dda

#endif // DDA_INTERP_ENVIRONMENT_H
