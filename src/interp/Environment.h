//===- Environment.h - Scope chains for MiniJS -------------------*- C++ -*-==//
///
/// \file
/// Environments form the lexical scope chain. Like the heap, slots carry a
/// determinacy flag used only by the instrumented interpreter. Environments
/// live in an arena (deque for reference stability) and are referenced by
/// EnvRef; closures capture an EnvRef. Bindings are keyed on interned atoms,
/// so a variable lookup hashes a 32-bit id instead of the name's characters.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_INTERP_ENVIRONMENT_H
#define DDA_INTERP_ENVIRONMENT_H

#include "interp/Value.h"

#include <cassert>
#include <deque>
#include <unordered_map>

namespace dda {

/// A variable binding: value plus determinacy flag.
struct Binding {
  Value V;
  Det D = Det::Determinate;
  /// Builtin globals installed before the program runs are immune to the
  /// conservative whole-environment taint (mirrors Slot::Immune); a user
  /// write replaces the binding and clears the flag.
  bool Immune = false;
};

/// One scope: bindings plus a parent link.
struct Environment {
  EnvRef Parent = 0;
  std::unordered_map<StringId, Binding> Vars;
};

/// Arena of environments. Reference 0 is invalid; reference 1 is created by
/// the interpreter as the global scope.
class EnvArena {
public:
  EnvArena() { Envs.emplace_back(); } // Index 0 invalid.

  EnvRef allocate(EnvRef Parent) {
    Envs.emplace_back();
    Envs.back().Parent = Parent;
    return static_cast<EnvRef>(Envs.size() - 1);
  }

  Environment &get(EnvRef Ref) {
    assert(Ref != 0 && Ref < Envs.size() && "invalid environment reference");
    return Envs[Ref];
  }

  /// Finds the environment in \p Start's chain that declares \p Name, or 0.
  EnvRef lookupEnv(EnvRef Start, StringId Name) {
    for (EnvRef E = Start; E != 0; E = Envs[E].Parent)
      if (Envs[E].Vars.count(Name))
        return E;
    return 0;
  }

  /// Finds the binding for \p Name starting at \p Start, or null. One hash
  /// probe per environment on the chain (no lookupEnv + operator[] re-probe).
  /// \p FoundIn (optional) receives the declaring environment on a hit.
  Binding *lookup(EnvRef Start, StringId Name, EnvRef *FoundIn = nullptr) {
    for (EnvRef E = Start; E != 0; E = Envs[E].Parent) {
      auto It = Envs[E].Vars.find(Name);
      if (It != Envs[E].Vars.end()) {
        if (FoundIn)
          *FoundIn = E;
        return &It->second;
      }
    }
    return nullptr;
  }

  size_t size() const { return Envs.size() - 1; }

  /// Arena-wide binding-set generation; see noteShapeChange().
  uint32_t shapeGen() const { return ShapeG; }

  /// Records a change to some environment's binding *set* that could affect
  /// name resolution through pre-existing scope chains: an insert into an
  /// environment that already had lookups routed through it (sloppy-mode
  /// global creation, eval hoisting into the caller's scope) or any binding
  /// erase (counterfactual journal undo). The bytecode VMs' variable inline
  /// caches key cached Binding pointers on (start EnvRef, shapeGen) and
  /// refill on mismatch. Inserts into freshly allocated environments
  /// (call/catch/function-wrapper scopes) need no bump: a fresh environment
  /// cannot appear on any chain an existing cache entry resolved through, and
  /// unordered_map node stability keeps Binding pointers valid across
  /// unrelated inserts.
  void noteShapeChange() { ++ShapeG; }

  /// Iterates every environment (conservative whole-environment taint).
  template <typename Fn> void forEach(Fn F) {
    for (size_t I = 1; I < Envs.size(); ++I)
      F(static_cast<EnvRef>(I), Envs[I]);
  }

private:
  std::deque<Environment> Envs;
  uint32_t ShapeG = 1;
};

} // namespace dda

#endif // DDA_INTERP_ENVIRONMENT_H
