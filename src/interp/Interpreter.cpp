//===- Interpreter.cpp ----------------------------------------------------==//

#include "interp/Interpreter.h"

#include "ast/ASTPrinter.h"
#include "interp/Ops.h"
#include "parser/Parser.h"
#include "support/FaultInjector.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace dda;

Interpreter::Interpreter(Program &P, InterpOptions Options)
    : Prog(P), Opts(Options), Gov(Options.governorLimits()),
      RandomRng(Options.RandomSeed), DomRng(Options.DomSeed) {
  Gov.setInjector(Opts.Injector);
  installGlobals();
  // Builtin setup above is free; only program-driven allocations count.
  TheHeap.setGovernor(&Gov);
  if (Opts.Engine == ExecEngine::Bytecode)
    BC = std::make_unique<bc::Module>();
}

Interpreter::~Interpreter() = default;

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

ObjectRef Interpreter::makeNative(NativeFn Fn) {
  ObjectRef Ref = TheHeap.allocate(ObjectClass::Native);
  TheHeap.get(Ref).Native = Fn;
  return Ref;
}

ObjectRef Interpreter::makeFunction(const FunctionExpr *Fn, EnvRef Closure) {
  ObjectRef Ref = TheHeap.allocate(ObjectClass::Function, Fn->getID());
  JSObject &O = TheHeap.get(Ref);
  O.Fn = Fn;
  O.Closure = Closure;
  // Eagerly create the .prototype object so `new` and method definitions on
  // Fn.prototype work.
  ObjectRef ProtoObj = TheHeap.allocate(ObjectClass::Plain);
  TheHeap.get(ProtoObj).Proto = ObjectProto;
  TheHeap.get(ProtoObj).set(atoms().Constructor, Slot{Value::object(Ref)});
  TheHeap.get(Ref).set(atoms().Prototype, Slot{Value::object(ProtoObj)});
  return Ref;
}

void Interpreter::installGlobals() {
  GlobalEnv = Envs.allocate(0);
  CurrentEnv = GlobalEnv;

  ObjectProto = TheHeap.allocate(ObjectClass::Plain);
  TheHeap.get(ObjectProto)
      .set(intern("hasOwnProperty"),
           Slot{Value::object(makeNative(NativeFn::ObjHasOwnProperty))});

  StringProto = TheHeap.allocate(ObjectClass::Plain);
  auto AddStringMethod = [&](const char *Name, NativeFn Fn) {
    TheHeap.get(StringProto)
        .set(intern(Name), Slot{Value::object(makeNative(Fn))});
  };
  AddStringMethod("charAt", NativeFn::StrCharAt);
  AddStringMethod("charCodeAt", NativeFn::StrCharCodeAt);
  AddStringMethod("toUpperCase", NativeFn::StrToUpperCase);
  AddStringMethod("toLowerCase", NativeFn::StrToLowerCase);
  AddStringMethod("substr", NativeFn::StrSubstr);
  AddStringMethod("substring", NativeFn::StrSubstring);
  AddStringMethod("indexOf", NativeFn::StrIndexOf);
  AddStringMethod("slice", NativeFn::StrSlice);
  AddStringMethod("split", NativeFn::StrSplit);
  AddStringMethod("concat", NativeFn::StrConcat);
  AddStringMethod("replace", NativeFn::StrReplace);

  ArrayProto = TheHeap.allocate(ObjectClass::Plain);
  TheHeap.get(ArrayProto).Proto = ObjectProto;
  auto AddArrayMethod = [&](const char *Name, NativeFn Fn) {
    TheHeap.get(ArrayProto)
        .set(intern(Name), Slot{Value::object(makeNative(Fn))});
  };
  AddArrayMethod("push", NativeFn::ArrPush);
  AddArrayMethod("pop", NativeFn::ArrPop);
  AddArrayMethod("shift", NativeFn::ArrShift);
  AddArrayMethod("join", NativeFn::ArrJoin);
  AddArrayMethod("indexOf", NativeFn::ArrIndexOf);
  AddArrayMethod("slice", NativeFn::ArrSlice);
  AddArrayMethod("concat", NativeFn::ArrConcat);

  Environment &G = Envs.get(GlobalEnv);
  auto DefineGlobal = [&](const char *Name, Value V) {
    G.Vars[intern(Name)] = Binding{std::move(V), Det::Determinate};
  };

  // Math.
  ObjectRef MathObj = TheHeap.allocate(ObjectClass::Plain);
  auto AddMath = [&](const char *Name, NativeFn Fn) {
    TheHeap.get(MathObj).set(intern(Name),
                             Slot{Value::object(makeNative(Fn))});
  };
  AddMath("random", NativeFn::MathRandom);
  AddMath("floor", NativeFn::MathFloor);
  AddMath("ceil", NativeFn::MathCeil);
  AddMath("round", NativeFn::MathRound);
  AddMath("abs", NativeFn::MathAbs);
  AddMath("max", NativeFn::MathMax);
  AddMath("min", NativeFn::MathMin);
  AddMath("pow", NativeFn::MathPow);
  AddMath("sqrt", NativeFn::MathSqrt);
  DefineGlobal("Math", Value::object(MathObj));

  // console.
  ObjectRef ConsoleObj = TheHeap.allocate(ObjectClass::Plain);
  TheHeap.get(ConsoleObj)
      .set(intern("log"), Slot{Value::object(makeNative(NativeFn::Print))});
  DefineGlobal("console", Value::object(ConsoleObj));
  DefineGlobal("alert", Value::object(makeNative(NativeFn::Print)));
  DefineGlobal("print", Value::object(makeNative(NativeFn::Print)));

  // Global utilities.
  DefineGlobal("parseInt", Value::object(makeNative(NativeFn::ParseInt)));
  DefineGlobal("parseFloat", Value::object(makeNative(NativeFn::ParseFloat)));
  DefineGlobal("isNaN", Value::object(makeNative(NativeFn::IsNaN)));
  DefineGlobal("String", Value::object(makeNative(NativeFn::StringCtor)));
  DefineGlobal("Number", Value::object(makeNative(NativeFn::NumberCtor)));
  DefineGlobal("Boolean", Value::object(makeNative(NativeFn::BooleanCtor)));
  EvalFn = makeNative(NativeFn::Eval);
  DefineGlobal("eval", Value::object(EvalFn));

  // String.prototype is reachable for monkey-patching (paper Figure 3 adds
  // String.prototype.cap); expose it via the String constructor object.
  TheHeap.get(EvalFn); // (no-op; keeps object ids stable across edits)
  // The String global is a native function object; give it a prototype prop.
  Binding *StringB = Envs.lookup(GlobalEnv, intern("String"));
  TheHeap.get(StringB->V.Obj)
      .set(atoms().Prototype, Slot{Value::object(StringProto)});
  Binding *NumberB = Envs.lookup(GlobalEnv, intern("Number"));
  (void)NumberB;

  // Object global with Object.keys and Object.prototype.
  ObjectRef ObjectCtor = TheHeap.allocate(ObjectClass::Plain);
  TheHeap.get(ObjectCtor)
      .set(intern("keys"), Slot{Value::object(makeNative(NativeFn::ObjKeys))});
  TheHeap.get(ObjectCtor)
      .set(atoms().Prototype, Slot{Value::object(ObjectProto)});
  DefineGlobal("Object", Value::object(ObjectCtor));

  ObjectRef ArrayCtor = TheHeap.allocate(ObjectClass::Plain);
  TheHeap.get(ArrayCtor).set(atoms().Prototype,
                             Slot{Value::object(ArrayProto)});
  DefineGlobal("Array", Value::object(ArrayCtor));

  // DOM: window is a plain object (absent properties read as undefined, so
  // idioms like `window.ivymap || {}` behave); document is a DOM object whose
  // unwritten properties read as synthetic environment content.
  WindowObj = TheHeap.allocate(ObjectClass::Plain);
  DocumentObj = TheHeap.allocate(ObjectClass::Dom);
  JSObject &Doc = TheHeap.get(DocumentObj);
  Doc.set(intern("getElementById"),
          Slot{Value::object(makeNative(NativeFn::DomGetElementById))});
  Doc.set(intern("createElement"),
          Slot{Value::object(makeNative(NativeFn::DomCreateElement))});
  Doc.set(intern("write"),
          Slot{Value::object(makeNative(NativeFn::DomWrite))});
  Doc.set(intern("addEventListener"),
          Slot{Value::object(makeNative(NativeFn::DomAddEventListener))});
  JSObject &Win = TheHeap.get(WindowObj);
  Win.set(intern("document"), Slot{Value::object(DocumentObj)});
  Win.set(intern("addEventListener"),
          Slot{Value::object(makeNative(NativeFn::DomAddEventListener))});
  DefineGlobal("window", Value::object(WindowObj));
  DefineGlobal("document", Value::object(DocumentObj));
  DefineGlobal("undefined", Value::undefined());
}

//===----------------------------------------------------------------------===//
// NativeHost
//===----------------------------------------------------------------------===//

void Interpreter::nativeWriteProperty(ObjectRef O, StringId Name,
                                      TaggedValue TV) {
  TheHeap.get(O).set(Name, Slot{std::move(TV.V), TV.D, 0});
}

TaggedValue Interpreter::nativeReadProperty(ObjectRef O, StringId Name) {
  const Slot *S = TheHeap.get(O).get(Name);
  if (!S)
    return TaggedValue(Value::undefined());
  return TaggedValue(S->V, S->D);
}

void Interpreter::output(const std::string &Text) {
  Output += Text;
  Output += '\n';
}

void Interpreter::registerEventHandler(StringId Event, Value Handler) {
  EventHandlers.emplace_back(Event, std::move(Handler));
}

ObjectRef Interpreter::domElement(StringId Key) {
  auto It = DomElements.find(Key);
  if (It != DomElements.end())
    return It->second;
  ObjectRef El = TheHeap.allocate(ObjectClass::Dom);
  JSObject &O = TheHeap.get(El);
  O.set(intern("getAttribute"),
        Slot{Value::object(makeNative(NativeFn::DomGetAttribute))});
  O.set(intern("setAttribute"),
        Slot{Value::object(makeNative(NativeFn::DomSetAttribute))});
  O.set(intern("appendChild"),
        Slot{Value::object(makeNative(NativeFn::DomAppendChild))});
  O.set(intern("addEventListener"),
        Slot{Value::object(makeNative(NativeFn::DomAddEventListener))});
  DomElements.emplace(Key, El);
  return El;
}

ObjectRef Interpreter::newArray() {
  ObjectRef Arr = TheHeap.allocate(ObjectClass::Array);
  TheHeap.get(Arr).Proto = ArrayProto;
  return Arr;
}

Det Interpreter::recordSetDeterminacy(ObjectRef) { return Det::Determinate; }

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

bool Interpreter::run() {
  Gov.startClock();
  CurrentEnv = GlobalEnv;
  CurrentThis = Value::object(WindowObj);
  hoist(Prog.Body, GlobalEnv, /*FreshEnv=*/false);
  Completion C = execBlockBody(Prog.Body);
  if (C.K == Completion::Throw) {
    Error = "uncaught exception: " + toStringValue(C.V, TheHeap);
    return false;
  }
  if (C.K == Completion::Fatal) {
    Error = toStringValue(C.V, TheHeap);
    Trap = C.Trap;
    return false;
  }

  if (Opts.RunEventHandlers) {
    // Only "ready"/"load" handlers fire in this synthetic environment;
    // handlers for other events model the paper's *unexercised* handlers
    // (statically reachable, dynamically never covered).
    std::vector<std::pair<StringId, Value>> Firable;
    for (auto &H : EventHandlers)
      if (H.first == atoms().Ready || H.first == atoms().Load)
        Firable.push_back(H);
    EventHandlers = std::move(Firable);
    size_t Fired = 0;
    while (Fired < EventHandlers.size()) {
      // Choose the next handler among the unfired ones.
      size_t Remaining = EventHandlers.size() - Fired;
      size_t Pick = Opts.ShuffleEventHandlers
                        ? Fired + DomRng.nextBelow(Remaining)
                        : Fired;
      std::swap(EventHandlers[Fired], EventHandlers[Pick]);
      Value Handler = EventHandlers[Fired].second;
      StringId EventName = EventHandlers[Fired].first;
      ++Fired;
      std::vector<Value> Args = {Value::atom(EventName)};
      EvalResult R = callValue(Handler, Value::object(DocumentObj), Args);
      if (R.C.K == Completion::Throw) {
        Error = "uncaught exception in event handler: " +
                toStringValue(R.C.V, TheHeap);
        return false;
      }
      if (R.C.K == Completion::Fatal) {
        Error = toStringValue(R.C.V, TheHeap);
        Trap = R.C.Trap;
        return false;
      }
    }
  }
  return true;
}


static bool isBuiltinGlobalName(const std::string &Name) {
  static const char *Builtins[] = {
      "Math",   "console", "alert",    "print",  "parseInt", "parseFloat",
      "isNaN",  "String",  "Number",   "Boolean", "eval",    "Object",
      "Array",  "window",  "document", "undefined"};
  for (const char *B : Builtins)
    if (Name == B)
      return true;
  return false;
}

Value Interpreter::globalVariable(const std::string &Name) {
  Binding *B = Envs.lookup(GlobalEnv, intern(Name));
  return B ? B->V : Value::undefined();
}

std::vector<std::string> Interpreter::userGlobalNames() {
  std::vector<std::string> Names;
  for (const auto &[Name, B] : Envs.get(GlobalEnv).Vars) {
    std::string Text(atomText(Name));
    if (!isBuiltinGlobalName(Text))
      Names.push_back(std::move(Text));
  }
  std::sort(Names.begin(), Names.end());
  return Names;
}

Value Interpreter::property(const Value &Base, const std::string &Name) {
  EvalResult R = getProperty(Base, intern(Name));
  return R.abrupt() ? Value::undefined() : R.V;
}

/// Renders the governor's latched trip as a typed trap completion. The
/// step-limit message text is load-bearing: callers historically matched
/// on "step limit".
Completion Interpreter::trapCompletion() {
  TrapKind K = Gov.trapKind();
  std::string Msg;
  switch (K) {
  case TrapKind::StepLimit:
    Msg = "step limit exceeded";
    break;
  case TrapKind::Deadline:
    Msg = "deadline exceeded";
    break;
  case TrapKind::HeapLimit:
    Msg = "heap cell limit exceeded";
    break;
  case TrapKind::CallDepthLimit:
    Msg = "call depth limit exceeded";
    break;
  case TrapKind::EvalDepthLimit:
    Msg = "eval depth limit exceeded";
    break;
  default:
    return Completion::fatal("governor trap without a tripped budget");
  }
  if (Gov.trip().Injected)
    Msg += " (injected)";
  return Completion::trap(K, std::move(Msg));
}

Completion Interpreter::throwTypeError(const std::string &Message) {
  return Completion::thrown(Value::string("TypeError: " + Message));
}

//===----------------------------------------------------------------------===//
// Hoisting
//===----------------------------------------------------------------------===//

void Interpreter::hoistStmt(const Stmt *S, EnvRef Env) {
  Environment &E = Envs.get(Env);
  switch (S->getKind()) {
  case NodeKind::VarDeclStmt:
    for (const auto &D : cast<VarDeclStmt>(S)->getDeclarators())
      if (!E.Vars.count(D.Atom))
        E.Vars[D.Atom] = Binding{Value::undefined(), Det::Determinate};
    return;
  case NodeKind::FunctionDeclStmt: {
    const FunctionExpr *Fn = cast<FunctionDeclStmt>(S)->getFunction();
    ObjectRef FnObj = makeFunction(Fn, Env);
    E.Vars[Fn->getNameAtom()] =
        Binding{Value::object(FnObj), Det::Determinate};
    return;
  }
  case NodeKind::BlockStmt:
    for (const Stmt *Inner : cast<BlockStmt>(S)->getBody())
      hoistStmt(Inner, Env);
    return;
  case NodeKind::IfStmt:
    hoistStmt(cast<IfStmt>(S)->getThen(), Env);
    if (const Stmt *Else = cast<IfStmt>(S)->getElse())
      hoistStmt(Else, Env);
    return;
  case NodeKind::WhileStmt:
    hoistStmt(cast<WhileStmt>(S)->getBody(), Env);
    return;
  case NodeKind::DoWhileStmt:
    hoistStmt(cast<DoWhileStmt>(S)->getBody(), Env);
    return;
  case NodeKind::ForStmt:
    if (const Stmt *Init = cast<ForStmt>(S)->getInit())
      hoistStmt(Init, Env);
    hoistStmt(cast<ForStmt>(S)->getBody(), Env);
    return;
  case NodeKind::ForInStmt: {
    const auto *F = cast<ForInStmt>(S);
    if (F->declaresVar() && !E.Vars.count(F->getVarAtom()))
      E.Vars[F->getVarAtom()] = Binding{Value::undefined(), Det::Determinate};
    hoistStmt(F->getBody(), Env);
    return;
  }
  case NodeKind::TryStmt: {
    const auto *T = cast<TryStmt>(S);
    hoistStmt(T->getBlock(), Env);
    if (T->getCatchBlock())
      hoistStmt(T->getCatchBlock(), Env);
    if (T->getFinallyBlock())
      hoistStmt(T->getFinallyBlock(), Env);
    return;
  }
  case NodeKind::SwitchStmt:
    for (const auto &Clause : cast<SwitchStmt>(S)->getClauses())
      for (const Stmt *Inner : Clause.Body)
        hoistStmt(Inner, Env);
    return;
  default:
    return;
  }
}

void Interpreter::hoist(const std::vector<Stmt *> &Body, EnvRef Env,
                        bool FreshEnv) {
  // Hoisting into a pre-existing scope (toplevel, eval) can add bindings
  // that shadow outer ones along already-cached resolution chains; a fresh
  // activation scope cannot, so it skips the cache-invalidating bump.
  if (!FreshEnv)
    Envs.noteShapeChange();
  for (const Stmt *S : Body)
    hoistStmt(S, Env);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Completion Interpreter::execBlockBody(const std::vector<Stmt *> &Body) {
  for (const Stmt *S : Body) {
    Completion C = execStmt(S);
    if (C.isAbrupt())
      return C;
  }
  return Completion::normal();
}

Completion Interpreter::execStmt(const Stmt *S) {
  Completion Tick;
  if (!tick(Tick))
    return Tick;

  switch (S->getKind()) {
  case NodeKind::ExpressionStmt: {
    EvalResult R = evalExpr(cast<ExpressionStmt>(S)->getExpr());
    if (R.abrupt())
      return R.C;
    LastStmtValue = R.V;
    return Completion::normal();
  }
  case NodeKind::VarDeclStmt: {
    for (const auto &D : cast<VarDeclStmt>(S)->getDeclarators()) {
      if (!D.Init)
        continue;
      EvalResult R = evalExpr(D.Init);
      if (R.abrupt())
        return R.C;
      // The variable was hoisted into the nearest function scope.
      Binding *B = Envs.lookup(CurrentEnv, D.Atom);
      if (B)
        B->V = R.V;
      else {
        Envs.noteShapeChange(); // New binding in a pre-existing scope.
        Envs.get(GlobalEnv).Vars[D.Atom] = Binding{R.V, Det::Determinate};
      }
    }
    return Completion::normal();
  }
  case NodeKind::FunctionDeclStmt:
    return Completion::normal(); // Bound during hoisting.
  case NodeKind::BlockStmt:
    return execBlockBody(cast<BlockStmt>(S)->getBody());
  case NodeKind::IfStmt: {
    const auto *If = cast<IfStmt>(S);
    EvalResult Cond = evalExpr(If->getCond());
    if (Cond.abrupt())
      return Cond.C;
    if (toBoolean(Cond.V))
      return execStmt(If->getThen());
    if (If->getElse())
      return execStmt(If->getElse());
    return Completion::normal();
  }
  case NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(S);
    for (;;) {
      Completion T;
      if (!tick(T))
        return T;
      EvalResult Cond = evalExpr(W->getCond());
      if (Cond.abrupt())
        return Cond.C;
      if (!toBoolean(Cond.V))
        return Completion::normal();
      Completion C = execStmt(W->getBody());
      if (C.K == Completion::Break)
        return Completion::normal();
      if (C.K == Completion::Continue)
        continue;
      if (C.isAbrupt())
        return C;
    }
  }
  case NodeKind::DoWhileStmt: {
    const auto *W = cast<DoWhileStmt>(S);
    for (;;) {
      Completion T;
      if (!tick(T))
        return T;
      Completion C = execStmt(W->getBody());
      if (C.K == Completion::Break)
        return Completion::normal();
      if (C.isAbrupt() && C.K != Completion::Continue)
        return C;
      EvalResult Cond = evalExpr(W->getCond());
      if (Cond.abrupt())
        return Cond.C;
      if (!toBoolean(Cond.V))
        return Completion::normal();
    }
  }
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(S);
    if (F->getInit()) {
      Completion C = execStmt(F->getInit());
      if (C.isAbrupt())
        return C;
    }
    for (;;) {
      Completion T;
      if (!tick(T))
        return T;
      if (F->getCond()) {
        EvalResult Cond = evalExpr(F->getCond());
        if (Cond.abrupt())
          return Cond.C;
        if (!toBoolean(Cond.V))
          return Completion::normal();
      }
      Completion C = execStmt(F->getBody());
      if (C.K == Completion::Break)
        return Completion::normal();
      if (C.isAbrupt() && C.K != Completion::Continue)
        return C;
      if (F->getUpdate()) {
        EvalResult U = evalExpr(F->getUpdate());
        if (U.abrupt())
          return U.C;
      }
    }
  }
  case NodeKind::ForInStmt: {
    const auto *F = cast<ForInStmt>(S);
    EvalResult Obj = evalExpr(F->getObject());
    if (Obj.abrupt())
      return Obj.C;
    if (!Obj.V.isObject())
      return Completion::normal();
    std::vector<StringId> Keys = TheHeap.get(Obj.V.Obj).ownKeys();
    for (StringId Key : Keys) {
      if (!TheHeap.get(Obj.V.Obj).has(Key))
        continue; // Deleted during iteration.
      Binding *B = Envs.lookup(CurrentEnv, F->getVarAtom());
      if (B)
        B->V = Value::atom(Key);
      else {
        Envs.noteShapeChange(); // New binding in a pre-existing scope.
        Envs.get(GlobalEnv).Vars[F->getVarAtom()] =
            Binding{Value::atom(Key), Det::Determinate};
      }
      Completion C = execStmt(F->getBody());
      if (C.K == Completion::Break)
        return Completion::normal();
      if (C.isAbrupt() && C.K != Completion::Continue)
        return C;
    }
    return Completion::normal();
  }
  case NodeKind::ReturnStmt: {
    const auto *R = cast<ReturnStmt>(S);
    if (!R->getArg())
      return Completion::ret(Value::undefined());
    EvalResult V = evalExpr(R->getArg());
    if (V.abrupt())
      return V.C;
    return Completion::ret(V.V);
  }
  case NodeKind::BreakStmt:
    return {Completion::Break, Value()};
  case NodeKind::ContinueStmt:
    return {Completion::Continue, Value()};
  case NodeKind::ThrowStmt: {
    EvalResult V = evalExpr(cast<ThrowStmt>(S)->getArg());
    if (V.abrupt())
      return V.C;
    return Completion::thrown(V.V);
  }
  case NodeKind::TryStmt: {
    const auto *T = cast<TryStmt>(S);
    Completion C = execStmt(T->getBlock());
    if (C.K == Completion::Throw && T->getCatchBlock()) {
      // Catch parameter gets a fresh scope.
      EnvRef CatchEnv = Envs.allocate(CurrentEnv);
      Envs.get(CatchEnv).Vars[T->getCatchAtom()] =
          Binding{C.V, Det::Determinate};
      EnvRef Saved = CurrentEnv;
      CurrentEnv = CatchEnv;
      C = execStmt(T->getCatchBlock());
      CurrentEnv = Saved;
    }
    if (T->getFinallyBlock()) {
      Completion F = execStmt(T->getFinallyBlock());
      if (F.isAbrupt())
        return F; // finally overrides.
    }
    return C;
  }
  case NodeKind::EmptyStmt:
    return Completion::normal();
  case NodeKind::SwitchStmt: {
    const auto *Sw = cast<SwitchStmt>(S);
    EvalResult Disc = evalExpr(Sw->getDisc());
    if (Disc.abrupt())
      return Disc.C;
    // Case tests evaluate in order until a strict-equality match; the
    // default clause is chosen only if nothing matches.
    const auto &Clauses = Sw->getClauses();
    size_t Selected = Clauses.size();
    for (size_t I = 0; I < Clauses.size(); ++I) {
      if (!Clauses[I].Test)
        continue;
      EvalResult T = evalExpr(Clauses[I].Test);
      if (T.abrupt())
        return T.C;
      if (strictEquals(Disc.V, T.V)) {
        Selected = I;
        break;
      }
    }
    if (Selected == Clauses.size())
      for (size_t I = 0; I < Clauses.size(); ++I)
        if (!Clauses[I].Test) {
          Selected = I;
          break;
        }
    // Fall through from the selected clause until break.
    for (size_t I = Selected; I < Clauses.size(); ++I) {
      Completion C = execBlockBody(Clauses[I].Body);
      if (C.K == Completion::Break)
        return Completion::normal();
      if (C.isAbrupt())
        return C;
    }
    return Completion::normal();
  }
  default:
    return Completion::fatal("expression node in statement position");
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

StringId Interpreter::propertyKey(const Value &V) {
  return toStringAtom(V, TheHeap);
}

EvalResult Interpreter::getProperty(const Value &Base, StringId Name,
                                    Slot **OwnOut) {
  switch (Base.Kind) {
  case ValueKind::Undefined:
  case ValueKind::Null:
    return EvalResult::abruptly(throwTypeError(
        "cannot read property '" + Interner::global().str(Name) + "' of " +
        (Base.isNull() ? "null" : "undefined")));
  case ValueKind::String: {
    std::string_view Chars = Base.strView();
    if (Name == atoms().Length)
      return EvalResult::value(
          Value::number(static_cast<double>(Chars.size())));
    // Numeric index: precomputed at intern time, no digit re-parse.
    uint32_t I = Interner::global().arrayIndex(Name);
    if (I != Interner::NotAnIndex && I < Chars.size())
      return EvalResult::value(
          Value::atom(Interner::global().internChar(Chars[I])));
    const Slot *S = TheHeap.get(StringProto).get(Name);
    return EvalResult::value(S ? S->V : Value::undefined());
  }
  case ValueKind::Number:
  case ValueKind::Boolean:
    return EvalResult::value(Value::undefined());
  case ValueKind::Object: {
    ObjectRef O = Base.Obj;
    while (O) {
      JSObject &Obj = TheHeap.get(O);
      if (Slot *S = Obj.get(Name)) {
        if (OwnOut && O == Base.Obj)
          *OwnOut = S;
        return EvalResult::value(S->V);
      }
      if (Obj.Class == ObjectClass::Dom && O == Base.Obj) {
        // Unwritten DOM property: synthetic environment content.
        return EvalResult::value(
            domSyntheticValue(Opts.DomSeed, O, Name));
      }
      O = Obj.Proto;
    }
    return EvalResult::value(Value::undefined());
  }
  }
  return EvalResult::value(Value::undefined());
}

Completion Interpreter::setProperty(const Value &Base, StringId Name, Value V,
                                    Slot **CacheOut) {
  if (!Base.isObject())
    return throwTypeError("cannot set property '" +
                          Interner::global().str(Name) + "' on a non-object");
  JSObject &O = TheHeap.get(Base.Obj);
  bool Inserted = false;
  Slot *S = O.set(Name, Slot{std::move(V), Det::Determinate, 0}, &Inserted);
  // Overwrites of existing non-array properties are pure slot stores — the
  // cacheable case. Arrays are excluded because index writes also touch
  // `length` below.
  if (CacheOut && !Inserted && O.Class != ObjectClass::Array)
    *CacheOut = S;
  // Keep array length in sync with index writes.
  if (O.Class == ObjectClass::Array) {
    uint32_t I = Interner::global().arrayIndex(Name);
    if (I != Interner::NotAnIndex) {
      const Slot *Len = O.get(atoms().Length);
      double N = Len && Len->V.isNumber() ? Len->V.Num : 0;
      if (I + 1 > N)
        O.set(atoms().Length, Slot{Value::number(I + 1.0)});
    }
  }
  return Completion::normal();
}

EvalResult Interpreter::evalExpr(const Expr *E) {
  // Tiered: cold roots tree-walk (identical semantics), hot roots run their
  // compiled chunk — one-shot code never pays compilation.
  if (BC) {
    if (const bc::Chunk *Ch = BC->lookupHot(E->getID(), E))
      return vmRun(*Ch, 0, static_cast<uint32_t>(Ch->Code.size()));
  }
  Completion Tick;
  if (!tick(Tick))
    return EvalResult::abruptly(Tick);

  switch (E->getKind()) {
  case NodeKind::NumberLiteral:
    return EvalResult::value(Value::number(cast<NumberLiteral>(E)->getValue()));
  case NodeKind::StringLiteral:
    return EvalResult::value(Value::atom(cast<StringLiteral>(E)->getAtom()));
  case NodeKind::BooleanLiteral:
    return EvalResult::value(
        Value::boolean(cast<BooleanLiteral>(E)->getValue()));
  case NodeKind::NullLiteral:
    return EvalResult::value(Value::null());
  case NodeKind::UndefinedLiteral:
    return EvalResult::value(Value::undefined());
  case NodeKind::This:
    return EvalResult::value(CurrentThis);
  case NodeKind::Identifier: {
    const auto *Id = cast<Identifier>(E);
    Binding *B = Envs.lookup(CurrentEnv, Id->getAtom());
    if (!B)
      return EvalResult::abruptly(Completion::thrown(Value::string(
          "ReferenceError: " + Id->getName() + " is not defined")));
    return EvalResult::value(B->V);
  }
  case NodeKind::ArrayLiteral: {
    const auto *A = cast<ArrayLiteral>(E);
    ObjectRef Arr = TheHeap.allocate(ObjectClass::Array, A->getID());
    TheHeap.get(Arr).Proto = ArrayProto;
    size_t N = A->getElements().size();
    for (size_t I = 0; I < N; ++I) {
      EvalResult R = evalExpr(A->getElements()[I]);
      if (R.abrupt())
        return R;
      TheHeap.get(Arr).set(Interner::global().internIndex(I), Slot{R.V});
    }
    TheHeap.get(Arr).set(atoms().Length,
                         Slot{Value::number(static_cast<double>(N))});
    return EvalResult::value(Value::object(Arr));
  }
  case NodeKind::ObjectLiteral: {
    const auto *OL = cast<ObjectLiteral>(E);
    ObjectRef O = TheHeap.allocate(ObjectClass::Plain, OL->getID());
    TheHeap.get(O).Proto = ObjectProto;
    for (const auto &P : OL->getProperties()) {
      EvalResult R = evalExpr(P.Value);
      if (R.abrupt())
        return R;
      TheHeap.get(O).set(P.KeyAtom, Slot{R.V});
    }
    return EvalResult::value(Value::object(O));
  }
  case NodeKind::Function: {
    const auto *F = cast<FunctionExpr>(E);
    ObjectRef FnObj = makeFunction(F, CurrentEnv);
    // Named function expressions can refer to themselves; bind the name in a
    // small wrapper scope captured by the closure.
    if (!F->getName().empty()) {
      EnvRef Wrapper = Envs.allocate(CurrentEnv);
      Envs.get(Wrapper).Vars[F->getNameAtom()] =
          Binding{Value::object(FnObj), Det::Determinate};
      TheHeap.get(FnObj).Closure = Wrapper;
    }
    return EvalResult::value(Value::object(FnObj));
  }
  case NodeKind::Member:
    return evalMember(cast<MemberExpr>(E));
  case NodeKind::Call:
    return evalCall(cast<CallExpr>(E));
  case NodeKind::New:
    return evalNew(cast<NewExpr>(E));
  case NodeKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->getOp() == UnaryOp::Delete) {
      const auto *M = dyn_cast<MemberExpr>(U->getOperand());
      if (!M)
        return EvalResult::value(Value::boolean(false));
      EvalResult Base = evalExpr(M->getObject());
      if (Base.abrupt())
        return Base;
      StringId Key;
      if (M->isComputed()) {
        EvalResult I = evalExpr(M->getIndex());
        if (I.abrupt())
          return I;
        Key = propertyKey(I.V);
      } else {
        Key = M->getPropertyAtom();
      }
      if (!Base.V.isObject())
        return EvalResult::value(Value::boolean(true));
      return EvalResult::value(
          Value::boolean(TheHeap.get(Base.V.Obj).erase(Key)));
    }
    if (U->getOp() == UnaryOp::Typeof) {
      // typeof tolerates undeclared identifiers.
      if (const auto *Id = dyn_cast<Identifier>(U->getOperand())) {
        Binding *B = Envs.lookup(CurrentEnv, Id->getAtom());
        if (!B)
          return EvalResult::value(Value::atom(atoms().Undefined));
        return EvalResult::value(
            Value::string(typeofString(B->V, TheHeap)));
      }
    }
    EvalResult R = evalExpr(U->getOperand());
    if (R.abrupt())
      return R;
    switch (U->getOp()) {
    case UnaryOp::Not:
      return EvalResult::value(Value::boolean(!toBoolean(R.V)));
    case UnaryOp::Minus:
      return EvalResult::value(Value::number(-toNumber(R.V)));
    case UnaryOp::Plus:
      return EvalResult::value(Value::number(toNumber(R.V)));
    case UnaryOp::Typeof:
      return EvalResult::value(Value::string(typeofString(R.V, TheHeap)));
    case UnaryOp::Void:
      return EvalResult::value(Value::undefined());
    case UnaryOp::Delete:
      return EvalResult::value(Value::boolean(true));
    }
    return EvalResult::value(Value::undefined());
  }
  case NodeKind::Update:
    return evalUpdate(cast<UpdateExpr>(E));
  case NodeKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    EvalResult L = evalExpr(B->getLHS());
    if (L.abrupt())
      return L;
    EvalResult R = evalExpr(B->getRHS());
    if (R.abrupt())
      return R;
    if (B->getOp() == BinaryOp::In) {
      if (!R.V.isObject())
        return EvalResult::abruptly(
            throwTypeError("'in' requires an object"));
      StringId Key = propertyKey(L.V);
      for (ObjectRef O = R.V.Obj; O; O = TheHeap.get(O).Proto)
        if (TheHeap.get(O).has(Key))
          return EvalResult::value(Value::boolean(true));
      return EvalResult::value(Value::boolean(false));
    }
    if (B->getOp() == BinaryOp::Instanceof) {
      if (!R.V.isObject())
        return EvalResult::abruptly(
            throwTypeError("'instanceof' requires a function"));
      EvalResult Proto = getProperty(R.V, atoms().Prototype);
      if (Proto.abrupt())
        return Proto;
      if (!L.V.isObject() || !Proto.V.isObject())
        return EvalResult::value(Value::boolean(false));
      for (ObjectRef O = TheHeap.get(L.V.Obj).Proto; O;
           O = TheHeap.get(O).Proto)
        if (O == Proto.V.Obj)
          return EvalResult::value(Value::boolean(true));
      return EvalResult::value(Value::boolean(false));
    }
    return EvalResult::value(applyBinaryOp(B->getOp(), L.V, R.V, TheHeap));
  }
  case NodeKind::Logical: {
    const auto *L = cast<LogicalExpr>(E);
    EvalResult LHS = evalExpr(L->getLHS());
    if (LHS.abrupt())
      return LHS;
    bool Truthy = toBoolean(LHS.V);
    if (L->isAnd() ? !Truthy : Truthy)
      return LHS;
    return evalExpr(L->getRHS());
  }
  case NodeKind::Assign:
    return evalAssign(cast<AssignExpr>(E));
  case NodeKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    EvalResult Cond = evalExpr(C->getCond());
    if (Cond.abrupt())
      return Cond;
    return evalExpr(toBoolean(Cond.V) ? C->getThen() : C->getElse());
  }
  default:
    return EvalResult::abruptly(
        Completion::fatal("statement node in expression position"));
  }
}

EvalResult Interpreter::evalMember(const MemberExpr *E) {
  EvalResult Base = evalExpr(E->getObject());
  if (Base.abrupt())
    return Base;
  StringId Key;
  if (E->isComputed()) {
    EvalResult I = evalExpr(E->getIndex());
    if (I.abrupt())
      return I;
    Key = propertyKey(I.V);
  } else {
    Key = E->getPropertyAtom();
  }
  return getProperty(Base.V, Key);
}

EvalResult Interpreter::evalAssign(const AssignExpr *E) {
  // Compute the new value; for compound assignment, read-modify-write.
  auto Compute = [&](const Value &Old, bool &Failed,
                     Completion &C) -> Value {
    EvalResult R = evalExpr(E->getValue());
    if (R.abrupt()) {
      Failed = true;
      C = R.C;
      return Value::undefined();
    }
    if (E->getOp() == AssignOp::Assign)
      return R.V;
    BinaryOp Op;
    switch (E->getOp()) {
    case AssignOp::Add:
      Op = BinaryOp::Add;
      break;
    case AssignOp::Sub:
      Op = BinaryOp::Sub;
      break;
    case AssignOp::Mul:
      Op = BinaryOp::Mul;
      break;
    case AssignOp::Div:
      Op = BinaryOp::Div;
      break;
    default:
      Op = BinaryOp::Mod;
      break;
    }
    return applyBinaryOp(Op, Old, R.V, TheHeap);
  };

  if (const auto *Id = dyn_cast<Identifier>(E->getTarget())) {
    Binding *B = Envs.lookup(CurrentEnv, Id->getAtom());
    Value Old = B ? B->V : Value::undefined();
    if (!B && E->getOp() != AssignOp::Assign)
      return EvalResult::abruptly(Completion::thrown(Value::string(
          "ReferenceError: " + Id->getName() + " is not defined")));
    bool Failed = false;
    Completion C;
    Value NewV = Compute(Old, Failed, C);
    if (Failed)
      return EvalResult::abruptly(C);
    // Assignment to an undeclared name creates a global (sloppy mode).
    B = Envs.lookup(CurrentEnv, Id->getAtom());
    if (B) {
      B->V = NewV;
    } else {
      Envs.noteShapeChange(); // New binding in a pre-existing scope.
      Envs.get(GlobalEnv).Vars[Id->getAtom()] =
          Binding{NewV, Det::Determinate};
    }
    return EvalResult::value(NewV);
  }

  const auto *M = cast<MemberExpr>(E->getTarget());
  EvalResult Base = evalExpr(M->getObject());
  if (Base.abrupt())
    return Base;
  StringId Key;
  if (M->isComputed()) {
    EvalResult I = evalExpr(M->getIndex());
    if (I.abrupt())
      return I;
    Key = propertyKey(I.V);
  } else {
    Key = M->getPropertyAtom();
  }
  Value Old;
  if (E->getOp() != AssignOp::Assign) {
    EvalResult OldR = getProperty(Base.V, Key);
    if (OldR.abrupt())
      return OldR;
    Old = OldR.V;
  }
  bool Failed = false;
  Completion C;
  Value NewV = Compute(Old, Failed, C);
  if (Failed)
    return EvalResult::abruptly(C);
  Completion W = setProperty(Base.V, Key, NewV);
  if (W.isAbrupt())
    return EvalResult::abruptly(W);
  return EvalResult::value(NewV);
}

EvalResult Interpreter::evalUpdate(const UpdateExpr *E) {
  double Delta = E->isIncrement() ? 1 : -1;
  if (const auto *Id = dyn_cast<Identifier>(E->getOperand())) {
    Binding *B = Envs.lookup(CurrentEnv, Id->getAtom());
    if (!B)
      return EvalResult::abruptly(Completion::thrown(Value::string(
          "ReferenceError: " + Id->getName() + " is not defined")));
    double Old = toNumber(B->V);
    B->V = Value::number(Old + Delta);
    return EvalResult::value(Value::number(E->isPrefix() ? Old + Delta : Old));
  }
  const auto *M = dyn_cast<MemberExpr>(E->getOperand());
  if (!M)
    return EvalResult::abruptly(throwTypeError("invalid update target"));
  EvalResult Base = evalExpr(M->getObject());
  if (Base.abrupt())
    return Base;
  StringId Key;
  if (M->isComputed()) {
    EvalResult I = evalExpr(M->getIndex());
    if (I.abrupt())
      return I;
    Key = propertyKey(I.V);
  } else {
    Key = M->getPropertyAtom();
  }
  EvalResult OldR = getProperty(Base.V, Key);
  if (OldR.abrupt())
    return OldR;
  double Old = toNumber(OldR.V);
  Completion W = setProperty(Base.V, Key, Value::number(Old + Delta));
  if (W.isAbrupt())
    return EvalResult::abruptly(W);
  return EvalResult::value(Value::number(E->isPrefix() ? Old + Delta : Old));
}

EvalResult Interpreter::evalCall(const CallExpr *E) {
  // Method calls bind `this` to the receiver.
  Value ThisV = Value::undefined();
  Value Callee;
  if (const auto *M = dyn_cast<MemberExpr>(E->getCallee())) {
    EvalResult Base = evalExpr(M->getObject());
    if (Base.abrupt())
      return Base;
    StringId Key;
    if (M->isComputed()) {
      EvalResult I = evalExpr(M->getIndex());
      if (I.abrupt())
        return I;
      Key = propertyKey(I.V);
    } else {
      Key = M->getPropertyAtom();
    }
    EvalResult Fn = getProperty(Base.V, Key);
    if (Fn.abrupt())
      return Fn;
    ThisV = Base.V;
    Callee = Fn.V;
  } else {
    EvalResult Fn = evalExpr(E->getCallee());
    if (Fn.abrupt())
      return Fn;
    Callee = Fn.V;
  }

  std::vector<Value> Args;
  Args.reserve(E->getArgs().size());
  for (const Expr *A : E->getArgs()) {
    EvalResult R = evalExpr(A);
    if (R.abrupt())
      return R;
    Args.push_back(R.V);
  }

  // eval is intercepted: it runs in the caller's scope.
  if (Callee.isObject() && Callee.Obj == EvalFn)
    return evalEval(Args);

  return callValue(Callee, ThisV, Args);
}

EvalResult Interpreter::evalEval(const std::vector<Value> &Args) {
  if (Args.empty() || !Args[0].isString())
    return EvalResult::value(Args.empty() ? Value::undefined() : Args[0]);
  if (!Gov.enterEval())
    return EvalResult::abruptly(trapCompletion());
  DiagnosticEngine Diags;
  std::vector<Stmt *> Body = parseIntoContext(
      Interner::global().str(Args[0].Str), *Prog.Context, Diags);
  if (Diags.hasErrors()) {
    Gov.exitEval();
    return EvalResult::abruptly(Completion::thrown(
        Value::string("SyntaxError: " + Diags.diagnostics()[0].Message)));
  }
  hoist(Body, CurrentEnv, /*FreshEnv=*/false);
  Value Saved = LastStmtValue;
  LastStmtValue = Value::undefined();
  Completion C = execBlockBody(Body);
  Value Result = LastStmtValue;
  LastStmtValue = Saved;
  Gov.exitEval();
  if (C.K == Completion::Return)
    return EvalResult::abruptly(
        Completion::thrown(Value::string("SyntaxError: illegal return")));
  if (C.isAbrupt())
    return EvalResult::abruptly(C);
  return EvalResult::value(Result);
}

EvalResult Interpreter::evalNew(const NewExpr *E) {
  EvalResult Fn = evalExpr(E->getCallee());
  if (Fn.abrupt())
    return Fn;
  std::vector<Value> Args;
  Args.reserve(E->getArgs().size());
  for (const Expr *A : E->getArgs()) {
    EvalResult R = evalExpr(A);
    if (R.abrupt())
      return R;
    Args.push_back(R.V);
  }
  if (!Fn.V.isObject())
    return EvalResult::abruptly(throwTypeError("not a constructor"));
  JSObject &FnObj = TheHeap.get(Fn.V.Obj);
  if (FnObj.Class == ObjectClass::Native) {
    // `new String(x)` etc. degrade to the plain call.
    NativeFn N = FnObj.Native;
    std::vector<TaggedValue> TArgs;
    for (const Value &V : Args)
      TArgs.emplace_back(V);
    NativeResult R = callNative(*this, N, TaggedValue(Value::undefined()),
                                TArgs);
    if (R.Threw)
      return EvalResult::abruptly(Completion::thrown(R.Thrown));
    return EvalResult::value(R.Result.V);
  }
  if (FnObj.Class != ObjectClass::Function)
    return EvalResult::abruptly(throwTypeError("not a constructor"));

  ObjectRef Fresh = TheHeap.allocate(ObjectClass::Plain, E->getID());
  const Slot *ProtoSlot = TheHeap.get(Fn.V.Obj).get(atoms().Prototype);
  TheHeap.get(Fresh).Proto = ProtoSlot && ProtoSlot->V.isObject()
                                 ? ProtoSlot->V.Obj
                                 : ObjectProto;
  EvalResult R = callClosure(Fn.V.Obj, Value::object(Fresh), Args);
  if (R.abrupt())
    return R;
  // If the constructor returned an object, that wins.
  if (R.V.isObject())
    return R;
  return EvalResult::value(Value::object(Fresh));
}

EvalResult Interpreter::callValue(const Value &Callee, const Value &ThisV,
                                  const std::vector<Value> &Args) {
  if (!Callee.isObject())
    return EvalResult::abruptly(
        throwTypeError(toStringValue(Callee, TheHeap) + " is not a function"));
  JSObject &O = TheHeap.get(Callee.Obj);
  if (O.Class == ObjectClass::Native) {
    std::vector<TaggedValue> TArgs;
    TArgs.reserve(Args.size());
    for (const Value &V : Args)
      TArgs.emplace_back(V);
    NativeResult R = callNative(*this, O.Native, TaggedValue(ThisV), TArgs);
    if (R.Threw)
      return EvalResult::abruptly(Completion::thrown(R.Thrown));
    return EvalResult::value(R.Result.V);
  }
  if (O.Class != ObjectClass::Function)
    return EvalResult::abruptly(throwTypeError("not a function"));
  return callClosure(Callee.Obj, ThisV, Args);
}

EvalResult Interpreter::callClosure(ObjectRef FnObj, const Value &ThisV,
                                    const std::vector<Value> &Args) {
  switch (Gov.enterCall()) {
  case ResourceGovernor::CallGate::Ok:
    break;
  case ResourceGovernor::CallGate::Overflow:
    // Natural overflow stays a catchable JS exception, as before.
    return EvalResult::abruptly(Completion::thrown(
        Value::string("RangeError: maximum call depth exceeded")));
  case ResourceGovernor::CallGate::Trip:
    return EvalResult::abruptly(trapCompletion());
  }

  const JSObject &O = TheHeap.get(FnObj);
  const FunctionExpr *Fn = O.Fn;
  EnvRef CallEnv = Envs.allocate(O.Closure);
  Environment &E = Envs.get(CallEnv);
  const std::vector<StringId> &Params = Fn->getParamAtoms();
  for (size_t I = 0; I < Params.size(); ++I) {
    Value V = I < Args.size() ? Args[I] : Value::undefined();
    E.Vars[Params[I]] = Binding{std::move(V), Det::Determinate};
  }

  const auto *Body = cast<BlockStmt>(Fn->getBody());
  hoist(Body->getBody(), CallEnv, /*FreshEnv=*/true);

  EnvRef SavedEnv = CurrentEnv;
  Value SavedThis = CurrentThis;
  CurrentEnv = CallEnv;
  CurrentThis = ThisV;
  Completion C = execBlockBody(Body->getBody());
  Gov.exitCall();
  CurrentEnv = SavedEnv;
  CurrentThis = SavedThis;

  switch (C.K) {
  case Completion::Normal:
    return EvalResult::value(Value::undefined());
  case Completion::Return:
    return EvalResult::value(C.V);
  case Completion::Break:
  case Completion::Continue:
    return EvalResult::abruptly(
        Completion::fatal("break/continue escaped a function body"));
  case Completion::Throw:
  case Completion::Fatal:
    return EvalResult::abruptly(C);
  }
  return EvalResult::value(Value::undefined());
}
