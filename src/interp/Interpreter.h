//===- Interpreter.h - Concrete big-step interpreter for MiniJS --*- C++ -*-==//
///
/// \file
/// The concrete semantics of MiniJS (paper Figure 8, extended from µJS to the
/// full subset: prototypes, exceptions, loops with break/continue, for-in,
/// eval, and a synthetic DOM). This interpreter is the ground truth that the
/// instrumented interpreter's determinacy facts are checked against: running
/// it with different `RandomSeed`/`DomSeed` values simulates the "other
/// executions" quantified over in Theorem 1.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_INTERP_INTERPRETER_H
#define DDA_INTERP_INTERPRETER_H

#include "ast/ASTContext.h"
#include "bytecode/Bytecode.h"
#include "interp/Builtins.h"
#include "interp/Environment.h"
#include "interp/Heap.h"
#include "interp/Value.h"
#include "support/Diagnostics.h"
#include "support/FlatMap.h"
#include "support/RNG.h"
#include "support/ResourceGovernor.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace dda {

class FaultInjector;

/// Tunables for a concrete run.
struct InterpOptions {
  uint64_t RandomSeed = 1; ///< Seed for Math.random (program input).
  uint64_t DomSeed = 1;    ///< Seed for synthetic DOM content (environment).
  /// Expression execution engine; the bytecode VM is the default hot path,
  /// the tree-walk is the reference semantics (`--engine=tree`).
  ExecEngine Engine = defaultExecEngine();
  uint64_t MaxSteps = 50'000'000;
  uint64_t DeadlineMs = 0;   ///< Wall-clock budget; 0 = none.
  uint64_t MaxHeapCells = 0; ///< Heap-cell budget; 0 = unlimited.
  unsigned MaxCallDepth = 600;
  unsigned MaxEvalDepth = 64; ///< Nested eval budget; 0 = unlimited.
  bool RunEventHandlers = true;
  /// Permute event-handler firing order using DomSeed (events "can fire in
  /// any order", Section 4).
  bool ShuffleEventHandlers = true;
  /// Optional deterministic fault injector (not owned; may be null).
  FaultInjector *Injector = nullptr;

  GovernorLimits governorLimits() const {
    GovernorLimits L;
    L.MaxSteps = MaxSteps;
    L.DeadlineMs = DeadlineMs;
    L.MaxHeapCells = MaxHeapCells;
    L.MaxCallDepth = MaxCallDepth;
    L.MaxEvalDepth = MaxEvalDepth;
    return L;
  }
};

/// How a statement or expression finished.
///
/// `Fatal` means the run cannot continue; `Trap` distinguishes *why*: a
/// resource-budget trip (TrapKind::StepLimit, Deadline, ...) is an expected,
/// recoverable condition callers may degrade on, while
/// TrapKind::InternalError marks a genuine interpreter invariant violation.
struct Completion {
  enum Kind : uint8_t { Normal, Return, Break, Continue, Throw, Fatal } K =
      Normal;
  Value V; ///< Return value / thrown value; Fatal carries a message string.
  TrapKind Trap = TrapKind::None; ///< Set iff K == Fatal.

  bool isAbrupt() const { return K != Normal; }
  static Completion normal() { return Completion(); }
  static Completion ret(Value V) { return {Return, std::move(V)}; }
  static Completion thrown(Value V) { return {Throw, std::move(V)}; }
  /// An interpreter bug (malformed AST, broken invariant).
  static Completion fatal(std::string Message) {
    return {Fatal, Value::string(std::move(Message)), TrapKind::InternalError};
  }
  /// A typed trap (resource trip); carries a message for human output.
  static Completion trap(TrapKind Kind, std::string Message) {
    return {Fatal, Value::string(std::move(Message)), Kind};
  }
};

/// Result of evaluating an expression: a value, or an abrupt completion.
struct EvalResult {
  Completion C;
  Value V;

  bool abrupt() const { return C.isAbrupt(); }
  static EvalResult value(Value V) { return {Completion::normal(), std::move(V)}; }
  static EvalResult abruptly(Completion C) { return {std::move(C), Value()}; }
};

/// The concrete interpreter. One instance runs one program once.
class Interpreter : public NativeHost {
public:
  Interpreter(Program &P, InterpOptions Opts = InterpOptions());
  ~Interpreter() override;

  /// Runs the program (top-level code, then registered event handlers).
  /// Returns false on a fatal condition or an uncaught exception; see
  /// errorMessage().
  bool run();

  const std::string &outputText() const { return Output; }
  const std::string &errorMessage() const { return Error; }
  uint64_t stepsUsed() const { return Gov.stepsUsed(); }

  /// Why run() failed: a typed resource trap, an internal error, or
  /// TrapKind::None (success or ordinary uncaught exception).
  TrapKind trapKind() const { return Trap; }
  const ResourceGovernor &governor() const { return Gov; }

  /// Reads a global variable (test hook).
  Value globalVariable(const std::string &Name);
  /// Names of all user-created global variables (test hook).
  std::vector<std::string> userGlobalNames();
  /// Reads a property off an object value (test hook; follows prototypes).
  Value property(const Value &Base, const std::string &Name);

  // NativeHost implementation.
  Heap &heap() override { return TheHeap; }
  RNG &randomRng() override { return RandomRng; }
  RNG &domRng() override { return DomRng; }
  void nativeWriteProperty(ObjectRef O, StringId Name,
                           TaggedValue TV) override;
  TaggedValue nativeReadProperty(ObjectRef O, StringId Name) override;
  void output(const std::string &Text) override;
  void registerEventHandler(StringId Event, Value Handler) override;
  ObjectRef domElement(StringId Key) override;
  uint64_t domSeed() const override { return Opts.DomSeed; }
  ObjectRef newArray() override;
  Det recordSetDeterminacy(ObjectRef O) override;

private:
  friend class InterpreterTestPeer;

  // Setup.
  void installGlobals();
  ObjectRef makeNative(NativeFn Fn);
  ObjectRef makeFunction(const FunctionExpr *Fn, EnvRef Closure);

  // Statements.
  Completion execStmt(const Stmt *S);
  Completion execBlockBody(const std::vector<Stmt *> &Body);
  /// \p FreshEnv: hoisting into an environment allocated for this activation
  /// (call scope). Hoisting into a pre-existing scope (program toplevel,
  /// eval'd code) must bump the env arena's shape generation so variable
  /// inline caches revalidate.
  void hoist(const std::vector<Stmt *> &Body, EnvRef Env, bool FreshEnv);
  void hoistStmt(const Stmt *S, EnvRef Env);

  // Expressions.
  EvalResult evalExpr(const Expr *E);
  EvalResult evalCall(const CallExpr *E);
  EvalResult evalNew(const NewExpr *E);
  EvalResult evalMember(const MemberExpr *E);
  EvalResult evalAssign(const AssignExpr *E);
  EvalResult evalUpdate(const UpdateExpr *E);
  EvalResult evalEval(const std::vector<Value> &Args);

  // Bytecode engine (VMConcrete.cpp). evalExpr forwards to vmEval when the
  // chunk cache is live; statements and everything the handlers call stay
  // shared with the tree-walk.
  EvalResult vmEval(const Expr *E);
  EvalResult vmRun(const bc::Chunk &Ch, uint32_t From, uint32_t To);

  // Helpers.
  /// \p OwnOut (optional): receives the own slot of an object base when the
  /// read resolved to one — the bytecode VM's member inline caches may then
  /// cache that pointer keyed on the object's shape generation. Left null for
  /// prototype hits, synthetic DOM reads and primitive bases.
  EvalResult getProperty(const Value &Base, StringId Name,
                         Slot **OwnOut = nullptr);
  /// \p CacheOut (optional): receives the written slot when the store
  /// overwrote an existing own property of a non-array object — exactly the
  /// case where a cached `*Slot = ...` replay is equivalent to setProperty.
  Completion setProperty(const Value &Base, StringId Name, Value V,
                         Slot **CacheOut = nullptr);
  EvalResult callValue(const Value &Callee, const Value &ThisV,
                       const std::vector<Value> &Args);
  EvalResult callClosure(ObjectRef FnObj, const Value &ThisV,
                         const std::vector<Value> &Args);
  StringId propertyKey(const Value &V);
  /// Per-step governor checkpoint; defined inline because both engines call
  /// it once per AST node / instruction (the hottest call in the system).
  bool tick(Completion &C) {
    if (Gov.tickStep())
      return true;
    C = trapCompletion();
    return false;
  }
  Completion trapCompletion();
  Completion throwTypeError(const std::string &Message);

  Program &Prog;
  InterpOptions Opts;
  ResourceGovernor Gov;
  Heap TheHeap;
  EnvArena Envs;
  RNG RandomRng;
  RNG DomRng;

  EnvRef GlobalEnv = 0;
  EnvRef CurrentEnv = 0;
  Value CurrentThis;
  TrapKind Trap = TrapKind::None;

  // Shared prototype / builtin objects.
  ObjectRef ObjectProto = 0;
  ObjectRef StringProto = 0;
  ObjectRef ArrayProto = 0;
  ObjectRef EvalFn = 0;
  ObjectRef WindowObj = 0;
  ObjectRef DocumentObj = 0;

  FlatMap<StringId, ObjectRef> DomElements;
  std::vector<std::pair<StringId, Value>> EventHandlers;

  std::string Output;
  std::string Error;
  /// Completion value of the most recent ExpressionStmt (for eval).
  Value LastStmtValue;

  /// Chunk cache; non-null iff Opts.Engine == ExecEngine::Bytecode.
  std::unique_ptr<bc::Module> BC;
  /// Operand stack shared by all (re-entrant) dispatch-loop activations;
  /// each activation works relative to its entry height.
  std::vector<Value> VStack;
  /// Branch-join scratch (pairs of {join IP, resume IP}) shared the same
  /// way, so taking a branch never heap-allocates on the steady state.
  std::vector<std::pair<uint32_t, uint32_t>> JStack;
};

} // namespace dda

#endif // DDA_INTERP_INTERPRETER_H
