//===- Builtins.h - Native functions and their models ------------*- C++ -*-==//
///
/// \file
/// Built-in (native) functions for MiniJS: Math, String and Array methods,
/// global utilities, console output, and the DOM entry points. The paper's
/// implementation provides "hand-written models" for natives that describe
/// their effect on determinacy information (Section 4); here every native
/// carries a NativeInfo record giving that model:
///
///  * Pure natives have no heap effect; their result is determinate iff the
///    receiver and all arguments are.
///  * `Random` natives (Math.random) return indeterminate results: they are
///    the canonical indeterminate source.
///  * `DomRead` natives return indeterminate results unless the analysis runs
///    under the (unsound) determinate-DOM assumption of Section 5.1.
///  * Natives not known side-effect-free abort counterfactual execution
///    (CounterfactualSafe == false).
///
/// Natives perform all heap mutation through the NativeHost so that the
/// instrumented interpreter can journal the writes (making them undoable
/// during counterfactual execution).
///
//===----------------------------------------------------------------------===//

#ifndef DDA_INTERP_BUILTINS_H
#define DDA_INTERP_BUILTINS_H

#include "interp/Environment.h"
#include "interp/Heap.h"
#include "interp/Value.h"
#include "support/RNG.h"

#include <string>
#include <vector>

namespace dda {

/// Identifies each native function.
enum class NativeFn : uint16_t {
  None = 0,
  // Math.
  MathRandom,
  MathFloor,
  MathCeil,
  MathRound,
  MathAbs,
  MathMax,
  MathMin,
  MathPow,
  MathSqrt,
  // Globals.
  ParseInt,
  ParseFloat,
  IsNaN,
  StringCtor,
  NumberCtor,
  BooleanCtor,
  Print, ///< console.log / print / alert.
  Eval,  ///< Intercepted by the interpreters before dispatch.
  // String.prototype.
  StrCharAt,
  StrCharCodeAt,
  StrToUpperCase,
  StrToLowerCase,
  StrSubstr,
  StrSubstring,
  StrIndexOf,
  StrSlice,
  StrSplit,
  StrConcat,
  StrReplace,
  // Array.prototype.
  ArrPush,
  ArrPop,
  ArrShift,
  ArrJoin,
  ArrIndexOf,
  ArrSlice,
  ArrConcat,
  // Object.
  ObjHasOwnProperty,
  ObjKeys,
  // DOM.
  DomGetElementById,
  DomCreateElement,
  DomWrite,
  DomAddEventListener,
  DomGetAttribute,
  DomSetAttribute,
  DomAppendChild,
};

/// Static model of a native's effect on determinacy information.
struct NativeInfo {
  const char *Name;
  /// Result is indeterminate regardless of inputs (Math.random).
  bool Random = false;
  /// Result is a read from the environment/DOM: indeterminate unless the
  /// determinate-DOM assumption is enabled.
  bool DomRead = false;
  /// Mutates only DOM data structures (no flush of the rest of the heap).
  bool DomEffect = false;
  /// Known side-effect-free (or all effects journaled via the host); safe to
  /// run during counterfactual execution.
  bool CounterfactualSafe = true;
};

/// Returns the model for \p Fn.
const NativeInfo &nativeInfo(NativeFn Fn);

/// Host services a native needs; implemented by both interpreters. Routing
/// mutation through the host lets the instrumented interpreter journal it.
class NativeHost {
public:
  virtual ~NativeHost();

  virtual Heap &heap() = 0;
  /// RNG backing Math.random (the "program input" source).
  virtual RNG &randomRng() = 0;
  /// RNG backing synthetic DOM contents (the "environment" source).
  virtual RNG &domRng() = 0;

  /// Journaled property write. \p Name is an interned atom.
  virtual void nativeWriteProperty(ObjectRef O, StringId Name,
                                   TaggedValue TV) = 0;
  /// Property read following the host's determinacy rules.
  virtual TaggedValue nativeReadProperty(ObjectRef O, StringId Name) = 0;
  /// console.log / alert / document.write sink.
  virtual void output(const std::string &Text) = 0;
  /// addEventListener registration.
  virtual void registerEventHandler(StringId Event, Value Handler) = 0;
  /// Lazily creates/returns the DOM element for an id/tag atom (identity
  /// cached so repeated lookups agree).
  virtual ObjectRef domElement(StringId Key) = 0;
  /// Seed for synthetic DOM content; varies across "environments".
  virtual uint64_t domSeed() const = 0;
  /// Allocates an empty array object wired to Array.prototype.
  virtual ObjectRef newArray() = 0;
  /// Determinacy of an object's *property set* (open vs closed record). The
  /// concrete interpreter always answers Determinate.
  virtual Det recordSetDeterminacy(ObjectRef O) = 0;
};

/// Deterministic synthetic content for an unwritten DOM property: stable for
/// a given (seed, object, name), different across seeds. Both interpreters
/// use this for reads from DOM-class objects, so the instrumented run and
/// same-seed concrete runs agree on concrete values.
Value domSyntheticValue(uint64_t Seed, ObjectRef O, StringId Name);

/// Result of invoking a native.
struct NativeResult {
  TaggedValue Result;
  bool Threw = false;
  Value Thrown;
};

/// Invokes native \p Fn. Determinacy of the result is computed from the
/// inputs and the native's model; the concrete interpreter ignores it.
NativeResult callNative(NativeHost &Host, NativeFn Fn, const TaggedValue &This,
                        const std::vector<TaggedValue> &Args);

} // namespace dda

#endif // DDA_INTERP_BUILTINS_H
