//===- Value.h - Runtime values for MiniJS -----------------------*- C++ -*-==//
///
/// \file
/// The concrete runtime value type used by both the plain interpreter and the
/// instrumented (determinacy) interpreter. Mirrors the paper's Value domain:
/// primitives, heap addresses, and closures (closures live in the heap as
/// function objects, so a Value only ever holds an address).
///
//===----------------------------------------------------------------------===//

#ifndef DDA_INTERP_VALUE_H
#define DDA_INTERP_VALUE_H

#include <cstdint>
#include <string>

namespace dda {

/// Index of an object in the Heap; 0 is reserved as "no object".
using ObjectRef = uint32_t;

/// Index of an environment in the environment arena; 0 is "no environment".
using EnvRef = uint32_t;

/// Runtime type tag of a Value.
enum class ValueKind : uint8_t {
  Undefined,
  Null,
  Boolean,
  Number,
  String,
  Object, ///< Includes functions and arrays; see JSObject::Class.
};

/// A concrete MiniJS value. Small enough to copy freely; strings are held by
/// value for simplicity.
struct Value {
  ValueKind Kind = ValueKind::Undefined;
  bool Bool = false;
  double Num = 0;
  std::string Str;
  ObjectRef Obj = 0;

  static Value undefined() { return Value(); }

  static Value null() {
    Value V;
    V.Kind = ValueKind::Null;
    return V;
  }

  static Value boolean(bool B) {
    Value V;
    V.Kind = ValueKind::Boolean;
    V.Bool = B;
    return V;
  }

  static Value number(double N) {
    Value V;
    V.Kind = ValueKind::Number;
    V.Num = N;
    return V;
  }

  static Value string(std::string S) {
    Value V;
    V.Kind = ValueKind::String;
    V.Str = std::move(S);
    return V;
  }

  static Value object(ObjectRef Ref) {
    Value V;
    V.Kind = ValueKind::Object;
    V.Obj = Ref;
    return V;
  }

  bool isUndefined() const { return Kind == ValueKind::Undefined; }
  bool isNull() const { return Kind == ValueKind::Null; }
  bool isBoolean() const { return Kind == ValueKind::Boolean; }
  bool isNumber() const { return Kind == ValueKind::Number; }
  bool isString() const { return Kind == ValueKind::String; }
  bool isObject() const { return Kind == ValueKind::Object; }
};

/// Determinacy flag: `!` (determinate) or `?` (indeterminate) in the paper's
/// notation. Defined here so the shared heap slot type can carry it; the
/// concrete interpreter simply leaves it at Determinate.
enum class Det : uint8_t { Determinate, Indeterminate };

/// Meet of two determinacy flags: the result of combining two values is
/// determinate only if both inputs are.
inline Det meet(Det A, Det B) {
  return (A == Det::Determinate && B == Det::Determinate)
             ? Det::Determinate
             : Det::Indeterminate;
}

/// An instrumented value `v^d`: a concrete value plus its determinacy flag.
/// The concrete interpreter uses these too (with D always Determinate) so
/// the builtin library can be shared between the two evaluators.
struct TaggedValue {
  Value V;
  Det D = Det::Determinate;

  TaggedValue() = default;
  TaggedValue(Value V, Det D = Det::Determinate) : V(std::move(V)), D(D) {}

  bool isDet() const { return D == Det::Determinate; }

  /// The paper's `v̂?`: same value, forced indeterminate.
  TaggedValue asIndeterminate() const {
    return TaggedValue(V, Det::Indeterminate);
  }
};

} // namespace dda

#endif // DDA_INTERP_VALUE_H
