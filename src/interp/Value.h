//===- Value.h - Runtime values for MiniJS -----------------------*- C++ -*-==//
///
/// \file
/// The concrete runtime value type used by both the plain interpreter and the
/// instrumented (determinacy) interpreter. Mirrors the paper's Value domain:
/// primitives, heap addresses, and closures (closures live in the heap as
/// function objects, so a Value only ever holds an address).
///
/// A Value is a 16-byte POD: a kind tag plus a payload union. Strings are
/// atoms in the global Interner, so copying a Value never allocates and
/// string equality is an id compare.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_INTERP_VALUE_H
#define DDA_INTERP_VALUE_H

#include "support/Interner.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace dda {

/// Index of an object in the Heap; 0 is reserved as "no object".
using ObjectRef = uint32_t;

/// Index of an environment in the environment arena; 0 is "no environment".
using EnvRef = uint32_t;

/// Runtime type tag of a Value.
enum class ValueKind : uint8_t {
  Undefined,
  Null,
  Boolean,
  Number,
  String,
  Object, ///< Includes functions and arrays; see JSObject::Class.
};

/// A concrete MiniJS value. A trivially copyable 16-byte tag + payload; only
/// the member selected by Kind is meaningful.
struct Value {
  ValueKind Kind = ValueKind::Undefined;
  union {
    bool Bool;
    double Num;
    StringId Str; ///< Atom in Interner::global().
    ObjectRef Obj;
  };

  Value() : Num(0) {}

  static Value undefined() { return Value(); }

  static Value null() {
    Value V;
    V.Kind = ValueKind::Null;
    return V;
  }

  static Value boolean(bool B) {
    Value V;
    V.Kind = ValueKind::Boolean;
    V.Bool = B;
    return V;
  }

  static Value number(double N) {
    Value V;
    V.Kind = ValueKind::Number;
    V.Num = N;
    return V;
  }

  /// Interns \p S in the global table.
  static Value string(std::string_view S) {
    return atom(Interner::global().intern(S));
  }

  /// Wraps an already interned atom (no hashing).
  static Value atom(StringId Id) {
    Value V;
    V.Kind = ValueKind::String;
    V.Str = Id;
    return V;
  }

  static Value object(ObjectRef Ref) {
    Value V;
    V.Kind = ValueKind::Object;
    V.Obj = Ref;
    return V;
  }

  bool isUndefined() const { return Kind == ValueKind::Undefined; }
  bool isNull() const { return Kind == ValueKind::Null; }
  bool isBoolean() const { return Kind == ValueKind::Boolean; }
  bool isNumber() const { return Kind == ValueKind::Number; }
  bool isString() const { return Kind == ValueKind::String; }
  bool isObject() const { return Kind == ValueKind::Object; }

  /// The characters of a string value (valid only when isString()).
  std::string_view strView() const {
    assert(isString() && "strView on non-string");
    return Interner::global().view(Str);
  }
};

static_assert(sizeof(Value) <= 16, "Value must stay a compact POD");
static_assert(std::is_trivially_copyable_v<Value>,
              "Value must be trivially copyable");

/// Determinacy flag: `!` (determinate) or `?` (indeterminate) in the paper's
/// notation. Defined here so the shared heap slot type can carry it; the
/// concrete interpreter simply leaves it at Determinate.
enum class Det : uint8_t { Determinate, Indeterminate };

/// Meet of two determinacy flags: the result of combining two values is
/// determinate only if both inputs are.
inline Det meet(Det A, Det B) {
  return (A == Det::Determinate && B == Det::Determinate)
             ? Det::Determinate
             : Det::Indeterminate;
}

/// An instrumented value `v^d`: a concrete value plus its determinacy flag.
/// The concrete interpreter uses these too (with D always Determinate) so
/// the builtin library can be shared between the two evaluators.
struct TaggedValue {
  Value V;
  Det D = Det::Determinate;

  TaggedValue() = default;
  TaggedValue(Value V, Det D = Det::Determinate) : V(V), D(D) {}

  bool isDet() const { return D == Det::Determinate; }

  /// The paper's `v̂?`: same value, forced indeterminate.
  TaggedValue asIndeterminate() const {
    return TaggedValue(V, Det::Indeterminate);
  }
};

} // namespace dda

#endif // DDA_INTERP_VALUE_H
