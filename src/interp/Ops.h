//===- Ops.h - Primitive operations and coercions ----------------*- C++ -*-==//
///
/// \file
/// The semantics of MiniJS primitive operators (the paper's `J ⊙ K` partial
/// functions) and the ECMAScript-style coercions they rely on. Shared by the
/// concrete and instrumented interpreters so the two evaluators cannot
/// disagree on value semantics. Implicit `toString`/`valueOf` conversion of
/// objects is not modeled, matching the paper's implementation (Section 4).
///
//===----------------------------------------------------------------------===//

#ifndef DDA_INTERP_OPS_H
#define DDA_INTERP_OPS_H

#include "ast/AST.h"
#include "interp/Heap.h"
#include "interp/Value.h"

namespace dda {

/// ToBoolean.
bool toBoolean(const Value &V);

/// ToNumber. Objects convert to NaN (no valueOf modeling).
double toNumber(const Value &V);

/// ToString. Needs the heap to render arrays and functions.
std::string toStringValue(const Value &V, const Heap &H);

/// ToString as an interned atom — the property-key fast path. A string value
/// returns its atom with no hashing; integral numbers hit the cached
/// numeric-index atoms; everything else interns the rendered text.
StringId toStringAtom(const Value &V, const Heap &H);

/// The string produced by `typeof`.
std::string typeofString(const Value &V, const Heap &H);

/// `===`.
bool strictEquals(const Value &A, const Value &B);

/// `==` (loose equality, without object-to-primitive coercion).
bool looseEquals(const Value &A, const Value &B);

/// Evaluates an arithmetic/relational/equality binary operator on already
/// evaluated operands. `in` and `instanceof` need heap structure walks and
/// are handled by the interpreters, not here.
Value applyBinaryOp(BinaryOp Op, const Value &A, const Value &B,
                    const Heap &H);

/// Number-number fast path for applyBinaryOp, inline for the bytecode
/// dispatch loops (where the out-of-line call plus its type dispatch is a
/// measurable share of a Binary instruction). Returns false — leaving Out
/// untouched — whenever the slow path must run; when it returns true, Out
/// is exactly what applyBinaryOp would have produced (IEEE comparisons
/// give the NaN-is-false semantics directly).
inline bool applyBinaryOpFast(BinaryOp Op, const Value &A, const Value &B,
                              Value &Out) {
  if (A.Kind != ValueKind::Number || B.Kind != ValueKind::Number)
    return false;
  const double X = A.Num, Y = B.Num;
  switch (Op) {
  case BinaryOp::Add:
    Out = Value::number(X + Y);
    return true;
  case BinaryOp::Sub:
    Out = Value::number(X - Y);
    return true;
  case BinaryOp::Mul:
    Out = Value::number(X * Y);
    return true;
  case BinaryOp::Div:
    Out = Value::number(X / Y);
    return true;
  case BinaryOp::Eq:
  case BinaryOp::StrictEq:
    Out = Value::boolean(X == Y);
    return true;
  case BinaryOp::NotEq:
  case BinaryOp::StrictNotEq:
    Out = Value::boolean(!(X == Y));
    return true;
  case BinaryOp::Less:
    Out = Value::boolean(X < Y);
    return true;
  case BinaryOp::LessEq:
    Out = Value::boolean(X <= Y);
    return true;
  case BinaryOp::Greater:
    Out = Value::boolean(X > Y);
    return true;
  case BinaryOp::GreaterEq:
    Out = Value::boolean(X >= Y);
    return true;
  default:
    return false; // Mod (fmod), in, instanceof: slow path.
  }
}

/// ToBoolean with the branch-condition fast cases inline (booleans and
/// numbers cover essentially every loop/ternary condition).
inline bool toBooleanFast(const Value &V) {
  if (V.Kind == ValueKind::Boolean)
    return V.Bool;
  if (V.Kind == ValueKind::Number)
    return V.Num != 0 && !(V.Num != V.Num);
  return toBoolean(V);
}

} // namespace dda

#endif // DDA_INTERP_OPS_H
