//===- Heap.h - Object heap for MiniJS ---------------------------*- C++ -*-==//
///
/// \file
/// Heap object model shared by the concrete and instrumented interpreters.
/// Objects store properties in insertion order (matching JavaScript engines'
/// enumeration order, which the paper's eval case study relies on: "if the
/// set of properties to iterate over is determinate, our analysis assumes
/// that the iteration order is also determinate").
///
/// Each property slot carries a determinacy flag and a *recency epoch*: the
/// instrumented interpreter implements the paper's heap flush (Section 4) by
/// bumping a global epoch counter, so a property is determinate only when its
/// flag is `!` and its epoch equals the current one. The concrete interpreter
/// ignores both fields.
///
/// Property names are interned atoms (StringId): map probes hash a 32-bit id,
/// and the array-index fast path reads the index precomputed at intern time.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_INTERP_HEAP_H
#define DDA_INTERP_HEAP_H

#include "ast/AST.h"
#include "interp/Value.h"
#include "support/Arena.h"
#include "support/ResourceGovernor.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

namespace dda {

/// Classification of heap objects.
enum class ObjectClass : uint8_t {
  Plain,    ///< Object literal / new-expression result.
  Array,    ///< Array literal; keeps `length` in sync with index writes.
  Function, ///< User closure: AST function + captured environment.
  Native,   ///< Built-in function.
  Dom,      ///< DOM node / document / window; reads are indeterminate.
};

/// A property slot: the stored value plus instrumentation metadata.
struct Slot {
  Value V;
  Det D = Det::Determinate;
  uint32_t Epoch = 0; ///< Recency annotation (heap-flush support).
  /// Builtin slots installed before the program runs (native methods,
  /// prototype wiring) survive heap flushes: they model the immutable parts
  /// of the standard library whose behavior the hand-written native models
  /// already capture (paper Section 4). A user write replaces the slot and
  /// clears the flag.
  bool Immune = false;
};

/// Identifier of a built-in function; dispatch lives in Builtins.cpp.
enum class NativeFn : uint16_t;

/// A heap object. Also represents closures and built-ins.
class JSObject {
public:
  ObjectClass Class = ObjectClass::Plain;
  ObjectRef Proto = 0; ///< Prototype link; 0 means none.

  // Function payload (Class == Function).
  const FunctionExpr *Fn = nullptr;
  EnvRef Closure = 0;

  // Native payload (Class == Native).
  NativeFn Native{};

  /// Allocation site (NodeID of the literal / function / new expression), or
  /// 0 for runtime-created objects. Used to render object values in facts and
  /// by the pointer-analysis comparison tests.
  NodeID AllocSite = 0;

  // Instrumentation state (used only by the instrumented interpreter).
  /// Epoch at which this record was created/known closed. The record is
  /// *open* (paper: `{x:v, ...}`) if this differs from the current global
  /// epoch or if ExplicitlyOpen is set.
  uint32_t ClosedEpoch = 0;
  /// Set when a property store with an indeterminate name hits this record.
  bool ExplicitlyOpen = false;
  /// Properties that are absent here but may exist in other executions
  /// (counterfactually created then undone). The paper models records as
  /// total functions, so a single absent property can be `undefined?` while
  /// the rest of the record stays determinate. Sorted, duplicate-free.
  /// Small-vector: almost every record has zero-to-few entries, so they
  /// live inline in the object instead of in the global allocator.
  SmallVec<StringId, 4> MaybeAbsent;
  /// Properties present here but possibly absent in other executions
  /// (created inside a branch with an indeterminate condition). They make
  /// the record's property *set* indeterminate even though each value's
  /// determinacy is tracked per slot. Sorted, duplicate-free.
  SmallVec<StringId, 4> MaybePresent;

  bool isMaybeAbsent(StringId Name) const {
    return std::binary_search(MaybeAbsent.begin(), MaybeAbsent.end(), Name);
  }

  bool isMaybePresent(StringId Name) const {
    return std::binary_search(MaybePresent.begin(), MaybePresent.end(), Name);
  }

  /// Inserts into the sorted MaybeAbsent set; returns false if already there
  /// (so callers journal only real insertions and the set cannot grow
  /// unboundedly across counterfactual rounds).
  bool insertMaybeAbsent(StringId Name) { return sortedInsert(MaybeAbsent, Name); }
  bool insertMaybePresent(StringId Name) {
    return sortedInsert(MaybePresent, Name);
  }

  /// Removes from the sorted sets (journal undo).
  void eraseMaybeAbsent(StringId Name) { sortedErase(MaybeAbsent, Name); }
  void eraseMaybePresent(StringId Name) { sortedErase(MaybePresent, Name); }

  /// Bumped whenever the own-property *set* changes (insert or erase).
  /// The bytecode VMs' inline caches key cached Slot pointers on
  /// (ObjectRef, ShapeGen): value overwrites keep the generation because
  /// unordered_map nodes are stable under everything but erase of the node
  /// itself, so a matching generation proves the pointer is still live and
  /// still the closest (own) slot for its name.
  uint32_t ShapeGen = 0;

  /// Generation of the innermost snapshot frame that already holds a
  /// pre-image of this object (copy-on-write stamp); 0 = never saved. See
  /// Heap::ensureSaved.
  uint32_t SaveGen = 0;

  bool has(StringId Name) const { return Props.count(Name) != 0; }

  /// Returns the slot for \p Name, or null if absent (prototype chain is the
  /// interpreter's job, not the object's).
  const Slot *get(StringId Name) const {
    auto It = Props.find(Name);
    return It == Props.end() ? nullptr : &It->second;
  }

  Slot *get(StringId Name) {
    auto It = Props.find(Name);
    return It == Props.end() ? nullptr : &It->second;
  }

  /// Creates or overwrites the slot for \p Name, maintaining insertion order.
  /// Returns the stored slot (stable address until the property is erased);
  /// \p Inserted reports whether the property was newly created.
  Slot *set(StringId Name, Slot S, bool *InsertedOut = nullptr) {
    auto [It, Inserted] = Props.try_emplace(Name, S);
    if (Inserted) {
      Order.push_back(Name);
      ++ShapeGen;
    } else {
      It->second = S;
    }
    if (InsertedOut)
      *InsertedOut = Inserted;
    return &It->second;
  }

  /// Removes a property; returns true if it existed. The insertion-order
  /// entry is removed too, so a later reinsertion appends at the end —
  /// matching JavaScript enumeration semantics.
  bool erase(StringId Name) {
    auto It = Props.find(Name);
    if (It == Props.end())
      return false;
    Props.erase(It);
    Order.erase(std::find(Order.begin(), Order.end(), Name));
    ++ShapeGen;
    return true;
  }

  /// Own enumerable property names in insertion order. `erase` keeps Order
  /// consistent with Props, so this is a straight copy.
  std::vector<StringId> ownKeys() const { return Order; }

  /// Insertion-order keys without copying (hot-path iteration).
  const std::vector<StringId> &orderedKeys() const { return Order; }

  size_t propertyCount() const { return Props.size(); }

  /// Iteration support for analyses that need every slot.
  const std::unordered_map<StringId, Slot> &slots() const { return Props; }
  std::unordered_map<StringId, Slot> &slots() { return Props; }

  /// Restores the freshly-constructed state in place (ChunkedArena pool
  /// reuse after a speculation rollback). Observable state must be
  /// byte-equivalent to destroy+reconstruct — ShapeGen/SaveGen return to
  /// zero exactly as a new object's would — while the containers keep
  /// their allocated capacity.
  void reset() {
    Class = ObjectClass::Plain;
    Proto = 0;
    Fn = nullptr;
    Closure = 0;
    Native = NativeFn{};
    AllocSite = 0;
    ClosedEpoch = 0;
    ExplicitlyOpen = false;
    MaybeAbsent.clear();
    MaybePresent.clear();
    ShapeGen = 0;
    SaveGen = 0;
    Props.clear();
    Order.clear();
  }

private:
  static bool sortedInsert(SmallVec<StringId, 4> &Set, StringId Name) {
    auto It = std::lower_bound(Set.begin(), Set.end(), Name);
    if (It != Set.end() && *It == Name)
      return false;
    Set.insert(It, Name);
    return true;
  }

  static void sortedErase(SmallVec<StringId, 4> &Set, StringId Name) {
    auto It = std::lower_bound(Set.begin(), Set.end(), Name);
    if (It != Set.end() && *It == Name)
      Set.erase(It);
  }

  std::unordered_map<StringId, Slot> Props;
  std::vector<StringId> Order;
};

/// The heap: an append-only arena of objects (no GC; analysis runs are short,
/// matching the paper's focus on initialization phases).
class Heap {
public:
  Heap() { Objects.push(); } // Index 0 is the invalid object.

  /// Attaches a budget governor (not owned; may be null). Interpreters set
  /// this *after* installing builtins so that only program-driven
  /// allocations count against the heap-cell budget. Allocation itself
  /// never fails: an over-budget cell latches a trip in the governor, which
  /// the interpreter observes at its next step checkpoint.
  void setGovernor(ResourceGovernor *G) { Gov = G; }

  ObjectRef allocate(ObjectClass Class, NodeID AllocSite = 0) {
    if (Gov)
      Gov->noteHeapCell();
    // push() either constructs a fresh object or resets a parked one
    // (speculation-rollback pool reuse); both start byte-identical.
    JSObject &O = Objects.push();
    O.Class = Class;
    O.AllocSite = AllocSite;
    return static_cast<ObjectRef>(Objects.size() - 1);
  }

  JSObject &get(ObjectRef Ref) {
    assert(Ref != 0 && Ref < Objects.size() && "invalid object reference");
    return Objects[Ref];
  }

  const JSObject &get(ObjectRef Ref) const {
    assert(Ref != 0 && Ref < Objects.size() && "invalid object reference");
    return Objects[Ref];
  }

  size_t size() const { return Objects.size() - 1; }

  /// Iterates all live objects (used by whole-heap checks in tests and the
  /// naive-flush ablation benchmark).
  template <typename Fn> void forEach(Fn F) {
    for (size_t I = 1; I < Objects.size(); ++I)
      F(static_cast<ObjectRef>(I), Objects[I]);
  }

  // --- Copy-on-write snapshots -------------------------------------------
  //
  // A snapshot frame is an O(1) fork point: beginSnapshot() records nothing
  // but a fresh generation number. The first mutation of each object after
  // the fork (the interpreter's write barrier calls ensureSaved) copies that
  // object's pre-image into the frame and stamps the live object with the
  // frame's generation so later writes are free. restoreSnapshot() assigns
  // the pre-images back in reverse save order — undo cost is O(objects
  // *touched* in the branch), independent of how many writes each received.
  // Frames nest: an inner frame's pre-image copy carries the object's outer
  // SaveGen stamp, so restoring the inner frame re-establishes the outer
  // frame's saved-status exactly.

  /// Opens a snapshot frame. \p Charged frames bill each pre-image copy to
  /// the governor's heap-cell budget (counterfactual branches; see
  /// ResourceGovernor::noteCowSave); uncharged frames (the base frame and
  /// speculation frames) do not.
  void beginSnapshot(bool Charged) {
    Snapshots.push_back(SnapshotFrame{++SnapGen, Charged, {}});
  }

  /// Write barrier: copies \p Ref's pre-image into the innermost snapshot
  /// frame unless it is already saved there. No-op when no frame is open.
  void ensureSaved(ObjectRef Ref) {
    if (Snapshots.empty())
      return;
    SnapshotFrame &F = Snapshots.back();
    JSObject &O = Objects[Ref];
    if (O.SaveGen == F.Gen)
      return;
    F.Saved.emplace_back(Ref, O);
    O.SaveGen = F.Gen;
    ++CowSaveCount;
    if (F.Charged && Gov)
      Gov->noteCowSave();
  }

  /// Undoes every write made since the innermost frame opened by assigning
  /// the pre-images back in reverse save order (an outer frame may hold two
  /// copies of one object around a committed inner frame; the older one,
  /// applied last, wins). Each restored object gets a ShapeGen strictly
  /// above its live value: assignment replaces the property map wholesale,
  /// so any inline-cache pointer into the old nodes must be invalidated.
  void restoreSnapshot() {
    assert(!Snapshots.empty() && "no snapshot frame to restore");
    SnapshotFrame &F = Snapshots.back();
    for (auto It = F.Saved.rbegin(); It != F.Saved.rend(); ++It) {
      JSObject &Live = Objects[It->first];
      uint32_t FreshShape = Live.ShapeGen + 1;
      Live = std::move(It->second);
      Live.ShapeGen = FreshShape;
    }
    Snapshots.pop_back();
  }

  /// Closes the innermost frame keeping its writes. Its pre-images are
  /// *merged* into the enclosing frame (appended, so reverse-order restore
  /// still applies the enclosing frame's own, older copies last): an object
  /// first written inside the committed frame has its only pre-image there,
  /// and the enclosing frame must still be able to undo past the commit.
  /// With no enclosing frame the pre-images are dropped. Live objects keep
  /// the dead frame's stamp, which no future frame generation can equal, so
  /// the enclosing frame re-saves them on their next write (a harmless
  /// duplicate copy).
  void commitSnapshot() {
    assert(!Snapshots.empty() && "no snapshot frame to commit");
    SnapshotFrame F = std::move(Snapshots.back());
    Snapshots.pop_back();
    if (!Snapshots.empty()) {
      SnapshotFrame &P = Snapshots.back();
      for (auto &E : F.Saved)
        P.Saved.push_back(std::move(E));
    }
  }

  /// For a deep-copied (forked) heap: drops the frames copied from the
  /// parent — they guard the *parent's* journal marks — while keeping the
  /// generation counter monotonic so stale SaveGen stamps never collide
  /// with a new frame.
  void dropSnapshotsForFork() { Snapshots.clear(); }

  /// Shrinks the arena back to \p N objects (speculation rollback; \p N was
  /// captured via size() at the fork point). The removed objects are parked
  /// for pooled reuse, not destroyed.
  void truncateTo(size_t N) { Objects.truncateTo(N + 1); }

  size_t snapshotDepth() const { return Snapshots.size(); }
  uint64_t cowSaves() const { return CowSaveCount; }

private:
  struct SnapshotFrame {
    uint32_t Gen;
    bool Charged;
    std::vector<std::pair<ObjectRef, JSObject>> Saved;
  };

  // Chunked arena: object references handed out as JSObject& stay valid
  // across later allocations (chunks never move), chunks are sized in
  // objects rather than libstdc++'s 512-byte deque blocks, and truncated
  // objects are pooled for reuse across counterfactual churn.
  ChunkedArena<JSObject> Objects;
  ResourceGovernor *Gov = nullptr;
  std::vector<SnapshotFrame> Snapshots;
  uint32_t SnapGen = 0;
  uint64_t CowSaveCount = 0;
};

} // namespace dda

#endif // DDA_INTERP_HEAP_H
