//===- Ops.cpp ------------------------------------------------------------==//

#include "interp/Ops.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace dda;

bool dda::toBoolean(const Value &V) {
  switch (V.Kind) {
  case ValueKind::Undefined:
  case ValueKind::Null:
    return false;
  case ValueKind::Boolean:
    return V.Bool;
  case ValueKind::Number:
    return V.Num != 0 && !std::isnan(V.Num);
  case ValueKind::String:
    return V.Str != Interner::global().wellKnown().Empty;
  case ValueKind::Object:
    return true;
  }
  return false;
}

double dda::toNumber(const Value &V) {
  switch (V.Kind) {
  case ValueKind::Undefined:
    return std::nan("");
  case ValueKind::Null:
    return 0;
  case ValueKind::Boolean:
    return V.Bool ? 1 : 0;
  case ValueKind::Number:
    return V.Num;
  case ValueKind::String:
    return stringToNumber(Interner::global().str(V.Str));
  case ValueKind::Object:
    return std::nan("");
  }
  return std::nan("");
}

std::string dda::toStringValue(const Value &V, const Heap &H) {
  switch (V.Kind) {
  case ValueKind::Undefined:
    return "undefined";
  case ValueKind::Null:
    return "null";
  case ValueKind::Boolean:
    return V.Bool ? "true" : "false";
  case ValueKind::Number:
    return numberToString(V.Num);
  case ValueKind::String:
    return std::string(V.strView());
  case ValueKind::Object: {
    const JSObject &O = H.get(V.Obj);
    switch (O.Class) {
    case ObjectClass::Array: {
      // Array.prototype.toString == join(",").
      std::string Out;
      const Slot *Len = O.get(Interner::global().wellKnown().Length);
      size_t N = Len && Len->V.isNumber() ? static_cast<size_t>(Len->V.Num) : 0;
      for (size_t I = 0; I < N; ++I) {
        if (I)
          Out += ",";
        const Slot *S = O.get(Interner::global().internIndex(I));
        if (S && !S->V.isUndefined() && !S->V.isNull())
          Out += toStringValue(S->V, H);
      }
      return Out;
    }
    case ObjectClass::Function:
    case ObjectClass::Native:
      return "function";
    case ObjectClass::Dom:
      return "[object DOM]";
    case ObjectClass::Plain:
      return "[object Object]";
    }
    return "[object Object]";
  }
  }
  return "undefined";
}

StringId dda::toStringAtom(const Value &V, const Heap &H) {
  Interner &I = Interner::global();
  switch (V.Kind) {
  case ValueKind::Undefined:
    return I.wellKnown().Undefined;
  case ValueKind::Null:
    return I.wellKnown().Null;
  case ValueKind::Boolean:
    return V.Bool ? I.wellKnown().True : I.wellKnown().False;
  case ValueKind::Number:
    return I.internNumber(V.Num);
  case ValueKind::String:
    return V.Str;
  case ValueKind::Object:
    return I.intern(toStringValue(V, H));
  }
  return I.wellKnown().Undefined;
}

std::string dda::typeofString(const Value &V, const Heap &H) {
  switch (V.Kind) {
  case ValueKind::Undefined:
    return "undefined";
  case ValueKind::Null:
    return "object"; // Yes, really.
  case ValueKind::Boolean:
    return "boolean";
  case ValueKind::Number:
    return "number";
  case ValueKind::String:
    return "string";
  case ValueKind::Object: {
    ObjectClass C = H.get(V.Obj).Class;
    if (C == ObjectClass::Function || C == ObjectClass::Native)
      return "function";
    return "object";
  }
  }
  return "undefined";
}

bool dda::strictEquals(const Value &A, const Value &B) {
  if (A.Kind != B.Kind)
    return false;
  switch (A.Kind) {
  case ValueKind::Undefined:
  case ValueKind::Null:
    return true;
  case ValueKind::Boolean:
    return A.Bool == B.Bool;
  case ValueKind::Number:
    return A.Num == B.Num; // NaN != NaN falls out of IEEE comparison.
  case ValueKind::String:
    return A.Str == B.Str;
  case ValueKind::Object:
    return A.Obj == B.Obj;
  }
  return false;
}

bool dda::looseEquals(const Value &A, const Value &B) {
  if (A.Kind == B.Kind)
    return strictEquals(A, B);
  // null == undefined.
  if ((A.isNull() && B.isUndefined()) || (A.isUndefined() && B.isNull()))
    return true;
  // Number vs string, and booleans coerce to numbers.
  bool ANumeric = A.isNumber() || A.isBoolean() || A.isString();
  bool BNumeric = B.isNumber() || B.isBoolean() || B.isString();
  if (ANumeric && BNumeric) {
    double X = toNumber(A);
    double Y = toNumber(B);
    return X == Y;
  }
  // Object-to-primitive coercion is not modeled.
  return false;
}

Value dda::applyBinaryOp(BinaryOp Op, const Value &A, const Value &B,
                         const Heap &H) {
  switch (Op) {
  case BinaryOp::Add:
    // String concatenation if either side is (or renders as) a string.
    if (A.isString() || B.isString() || A.isObject() || B.isObject())
      return Value::string(toStringValue(A, H) + toStringValue(B, H));
    return Value::number(toNumber(A) + toNumber(B));
  case BinaryOp::Sub:
    return Value::number(toNumber(A) - toNumber(B));
  case BinaryOp::Mul:
    return Value::number(toNumber(A) * toNumber(B));
  case BinaryOp::Div:
    return Value::number(toNumber(A) / toNumber(B));
  case BinaryOp::Mod:
    return Value::number(std::fmod(toNumber(A), toNumber(B)));
  case BinaryOp::Eq:
    return Value::boolean(looseEquals(A, B));
  case BinaryOp::NotEq:
    return Value::boolean(!looseEquals(A, B));
  case BinaryOp::StrictEq:
    return Value::boolean(strictEquals(A, B));
  case BinaryOp::StrictNotEq:
    return Value::boolean(!strictEquals(A, B));
  case BinaryOp::Less:
  case BinaryOp::LessEq:
  case BinaryOp::Greater:
  case BinaryOp::GreaterEq: {
    // Both strings: lexicographic. Otherwise numeric.
    bool Result;
    if (A.isString() && B.isString()) {
      int Cmp = A.Str == B.Str
                    ? 0
                    : Interner::global().view(A.Str).compare(
                          Interner::global().view(B.Str));
      Result = Op == BinaryOp::Less      ? Cmp < 0
               : Op == BinaryOp::LessEq  ? Cmp <= 0
               : Op == BinaryOp::Greater ? Cmp > 0
                                         : Cmp >= 0;
    } else {
      double X = toNumber(A);
      double Y = toNumber(B);
      if (std::isnan(X) || std::isnan(Y))
        Result = false;
      else
        Result = Op == BinaryOp::Less      ? X < Y
                 : Op == BinaryOp::LessEq  ? X <= Y
                 : Op == BinaryOp::Greater ? X > Y
                                           : X >= Y;
    }
    return Value::boolean(Result);
  }
  case BinaryOp::Instanceof:
  case BinaryOp::In:
    // Handled structurally by the interpreters.
    return Value::boolean(false);
  }
  return Value::undefined();
}
