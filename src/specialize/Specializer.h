//===- Specializer.h - Determinacy-driven program specialization -*- C++ -*-==//
///
/// \file
/// Rewrites a MiniJS program into a *residual program* using the facts a
/// dynamic determinacy run produced, implementing the three specializations
/// of paper Section 5.1 plus the eval rewriting of Section 5.2:
///
///  (i)   removing branches guarded by determinately-false (or -true)
///        conditions;
///  (ii)  making dynamic property accesses with determinate names static
///        (`o["get"+p]` → `o.getWidth`);
///  (iii) unrolling loops with a determinate iteration bound when this
///        enables other specializations;
///  (iv)  replacing `eval(s)` with the parsed code when `s` is determinate.
///
/// Context sensitivity is materialized as *function cloning*: a call site
/// whose callee is determinate under a full-call-stack context gets
/// redirected to a clone of the callee specialized for that context (the
/// clone is declared as a sibling of the original, so closures resolve
/// identically). The residual program is then analyzable by the plain
/// context-insensitive pointer analysis — each clone is its own 0-CFA
/// function, which is exactly how the paper's Spec configuration gains
/// precision over Baseline.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SPECIALIZE_SPECIALIZER_H
#define DDA_SPECIALIZE_SPECIALIZER_H

#include "ast/ASTContext.h"
#include "determinacy/Determinacy.h"

#include <set>
#include <unordered_map>

namespace dda {

/// Specializer knobs. Defaults mirror the paper: up to four levels of
/// calling context, and loops unrolled up to 32 iterations (jQuery 1.0
/// needed 21).
struct SpecializerOptions {
  unsigned MaxCloneDepth = 4;
  unsigned MaxUnroll = 32;
  bool PruneBranches = true;
  bool StaticizeProperties = true;
  bool UnrollLoops = true;
  bool SpliceEval = true;
  bool CloneFunctions = true;
};

/// What the specializer did (for tests, benches, and EXPERIMENTS.md rows).
struct SpecializationReport {
  unsigned BranchesPruned = 0;
  unsigned PropertiesStaticized = 0;
  unsigned LoopsUnrolled = 0;
  unsigned EvalsSpliced = 0;
  unsigned FunctionClones = 0;
  /// Original NodeIDs of eval call sites that were replaced by parsed code.
  std::set<NodeID> SplicedEvalSites;
};

/// The residual program plus bookkeeping.
struct SpecializeResult {
  Program Residual;
  SpecializationReport Report;
  /// Maps every residual node back to the original node it was cloned from.
  std::unordered_map<NodeID, NodeID> OriginOf;
};

/// Specializes \p P using \p Analysis (facts + contexts from a determinacy
/// run). \p Analysis is non-const because context-chain lookups intern.
SpecializeResult specializeProgram(const Program &P, AnalysisResult &Analysis,
                                   const SpecializerOptions &Opts = {});

} // namespace dda

#endif // DDA_SPECIALIZE_SPECIALIZER_H
