//===- Specializer.cpp ----------------------------------------------------==//

#include "specialize/Specializer.h"

#include "ast/ASTWalk.h"
#include "determinacy/InstrumentedInterpreter.h"
#include "parser/Parser.h"
#include "support/StringUtils.h"

#include <cassert>
#include <map>

using namespace dda;

namespace {

/// True for expressions whose evaluation has no observable effect, so a
/// pruned branch may drop them (condition expressions of removed ifs,
/// staticized index expressions).
bool isPureExpr(const Expr *E) {
  switch (E->getKind()) {
  case NodeKind::NumberLiteral:
  case NodeKind::StringLiteral:
  case NodeKind::BooleanLiteral:
  case NodeKind::NullLiteral:
  case NodeKind::UndefinedLiteral:
  case NodeKind::Identifier:
  case NodeKind::This:
  case NodeKind::Function:
    return true;
  case NodeKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    // Property reads can throw on null/undefined, but a pruned determinate
    // branch was observed to evaluate them successfully in every execution.
    if (!isPureExpr(M->getObject()))
      return false;
    return !M->isComputed() || isPureExpr(M->getIndex());
  }
  case NodeKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return U->getOp() != UnaryOp::Delete && isPureExpr(U->getOperand());
  }
  case NodeKind::Binary:
    return isPureExpr(cast<BinaryExpr>(E)->getLHS()) &&
           isPureExpr(cast<BinaryExpr>(E)->getRHS());
  case NodeKind::Logical:
    return isPureExpr(cast<LogicalExpr>(E)->getLHS()) &&
           isPureExpr(cast<LogicalExpr>(E)->getRHS());
  case NodeKind::Conditional:
    return isPureExpr(cast<ConditionalExpr>(E)->getCond()) &&
           isPureExpr(cast<ConditionalExpr>(E)->getThen()) &&
           isPureExpr(cast<ConditionalExpr>(E)->getElse());
  default:
    return false; // Calls, assignments, updates, literals with allocation.
  }
}

/// Relaxed purity for *index expressions being replaced by a determinate
/// name*: the paper's rewrite (Section 2.2) drops computations like
/// `"get" + prop.cap()` whose value the dynamic analysis proved determinate.
/// Calls are permitted (their value is reproduced by the fact); assignments,
/// updates, and deletes are not (they mutate visible state).
bool isDroppableIndex(const Expr *E) {
  switch (E->getKind()) {
  case NodeKind::Assign:
  case NodeKind::Update:
    return false;
  case NodeKind::Unary:
    if (cast<UnaryExpr>(E)->getOp() == UnaryOp::Delete)
      return false;
    break;
  default:
    break;
  }
  bool Ok = true;
  forEachChild(E, [&](const Node *Child) {
    if (Ok && !isa<Stmt>(Child))
      Ok = isDroppableIndex(cast<Expr>(Child));
  });
  return Ok;
}

/// True if the subtree contains a break/continue not nested in an inner loop
/// (which would make unrolling change semantics).
bool hasLooseBreakOrContinue(const Stmt *S);

bool hasLooseBreakOrContinueNode(const Node *N) {
  switch (N->getKind()) {
  case NodeKind::BreakStmt:
  case NodeKind::ContinueStmt:
  case NodeKind::SwitchStmt: // Conservative: continue may escape a switch.
    return true;
  case NodeKind::WhileStmt:
  case NodeKind::DoWhileStmt:
  case NodeKind::ForStmt:
  case NodeKind::ForInStmt:
  case NodeKind::Function:
    return false; // Inner loops / functions capture their own break.
  default: {
    bool Found = false;
    forEachChild(N, [&](const Node *Child) {
      if (!Found)
        Found = hasLooseBreakOrContinueNode(Child);
    });
    return Found;
  }
  }
}

bool hasLooseBreakOrContinue(const Stmt *S) {
  return S && hasLooseBreakOrContinueNode(S);
}

/// Collects Call/New node ids that execute *exactly once, unconditionally*
/// per execution of the subtree: descends neither into nested functions nor
/// past any conditional or looping construct. Occurrence overrides assigned
/// during unrolling are only safe for such sites — a conditionally executed
/// call's dynamic occurrence counter does not track the iteration index.
void collectCallSites(const Node *N, std::vector<NodeID> &Out) {
  switch (N->getKind()) {
  case NodeKind::Function:
  case NodeKind::WhileStmt:
  case NodeKind::DoWhileStmt:
  case NodeKind::ForStmt:
  case NodeKind::ForInStmt:
  case NodeKind::TryStmt:
    return;
  case NodeKind::SwitchStmt:
    // Only the discriminant executes unconditionally.
    collectCallSites(cast<SwitchStmt>(N)->getDisc(), Out);
    return;
  case NodeKind::IfStmt:
    collectCallSites(cast<IfStmt>(N)->getCond(), Out);
    return;
  case NodeKind::Conditional:
    collectCallSites(cast<ConditionalExpr>(N)->getCond(), Out);
    return;
  case NodeKind::Logical:
    collectCallSites(cast<LogicalExpr>(N)->getLHS(), Out);
    return;
  default:
    break;
  }
  if (isa<CallExpr>(N) || isa<NewExpr>(N))
    Out.push_back(N->getID());
  forEachChild(N, [&](const Node *Child) { collectCallSites(Child, Out); });
}

/// Collects call sites inside loops *directly nested* in this subtree (not
/// behind any conditional or function): their dynamic occurrence within an
/// enclosing activation is `outerIteration * innerTrips + innerIteration`,
/// so an enclosing unroll records the outer iteration index as a *scaled
/// base* which the nested unroll multiplies out.
void collectNestedLoopCallSites(const Node *N, std::vector<NodeID> &Out) {
  switch (N->getKind()) {
  case NodeKind::Function:
  case NodeKind::TryStmt:
  case NodeKind::DoWhileStmt:
    return;
  case NodeKind::SwitchStmt:
    collectNestedLoopCallSites(cast<SwitchStmt>(N)->getDisc(), Out);
    return;
  case NodeKind::IfStmt:
    collectNestedLoopCallSites(cast<IfStmt>(N)->getCond(), Out);
    return;
  case NodeKind::Conditional:
    collectNestedLoopCallSites(cast<ConditionalExpr>(N)->getCond(), Out);
    return;
  case NodeKind::Logical:
    collectNestedLoopCallSites(cast<LogicalExpr>(N)->getLHS(), Out);
    return;
  case NodeKind::WhileStmt:
    collectCallSites(cast<WhileStmt>(N)->getBody(), Out);
    collectNestedLoopCallSites(cast<WhileStmt>(N)->getBody(), Out);
    return;
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(N);
    collectCallSites(F->getBody(), Out);
    if (F->getUpdate())
      collectCallSites(F->getUpdate(), Out);
    collectNestedLoopCallSites(F->getBody(), Out);
    return;
  }
  case NodeKind::ForInStmt:
    collectCallSites(cast<ForInStmt>(N)->getBody(), Out);
    collectNestedLoopCallSites(cast<ForInStmt>(N)->getBody(), Out);
    return;
  default:
    forEachChild(N, [&](const Node *Child) {
      collectNestedLoopCallSites(Child, Out);
    });
    return;
  }
}

/// True if the subtree contains a call or a computed member access — the
/// cheap proxy for "unrolling may enable other specializations".
bool hasSpecializationOpportunity(const Node *N) {
  if (isa<CallExpr>(N) || isa<NewExpr>(N))
    return true;
  if (const auto *M = dyn_cast<MemberExpr>(N))
    if (M->isComputed() && !isa<StringLiteral>(M->getIndex()))
      return true;
  bool Found = false;
  forEachChild(N, [&](const Node *Child) {
    if (!Found)
      Found = hasSpecializationOpportunity(Child);
  });
  return Found;
}

class Emitter {
public:
  Emitter(const Program &P, AnalysisResult &A, const SpecializerOptions &Opts)
      : Orig(P), A(A), Opts(Opts) {
    indexOriginal();
    computeUsefulContexts();
  }

  SpecializeResult run() {
    SpecializeResult Result;
    ASTContext &Out = *Result.Residual.Context;
    OutCtx = &Out;
    OriginOf = &Result.OriginOf;

    State Top;
    Top.HasCtx = true;
    Top.Ctx = ContextTable::Root;
    for (const Stmt *S : Orig.Body)
      emitInto(Result.Residual.Body, S, Top);

    // Clones are appended at the end of the top-level list; function
    // declarations hoist, so forward references are fine.
    while (!Pending.empty()) {
      CloneRequest Req = Pending.back();
      Pending.pop_back();
      Result.Residual.Body.push_back(emitClone(Req));
    }

    Result.Report = Report;
    return Result;
  }

private:
  struct State {
    bool HasCtx = false;
    ContextID Ctx = ContextTable::Root;
    /// Occurrence overrides for call sites inside unrolled loop iterations.
    std::unordered_map<NodeID, uint32_t> OccMap;
    /// Outer-iteration indices for call sites inside loops nested within an
    /// unrolled body; multiplied out by the nested loop's own unroll.
    std::unordered_map<NodeID, uint32_t> ScaledBase;
    /// Parameters of the enclosing clone with determinate values.
    std::unordered_map<std::string, FactValue> KnownConsts;
  };

  struct CloneRequest {
    const FunctionExpr *Fn;
    ContextID Ctx;
    std::string Name;
    std::unordered_map<std::string, FactValue> KnownConsts;
  };

  // ----------------------------------------------------------- indexing --

  void indexOriginal() {
    walkProgram(Orig, [&](const Node *N) {
      if (const auto *F = dyn_cast<FunctionExpr>(N))
        FunctionByID[F->getID()] = F;
      return true;
    });
    // Functions that can be cloned: declared (or var-bound) at top level.
    for (const Stmt *S : Orig.Body) {
      if (const auto *FD = dyn_cast<FunctionDeclStmt>(S)) {
        TopLevelFns.insert(FD->getFunction()->getID());
        continue;
      }
      if (const auto *VD = dyn_cast<VarDeclStmt>(S))
        for (const auto &D : VD->getDeclarators())
          if (D.Init && isa<FunctionExpr>(D.Init))
            TopLevelFns.insert(D.Init->getID());
    }
  }

  void computeUsefulContexts() {
    for (const auto &[Key, Val] : A.Facts.all()) {
      if (!Val.isDeterminate())
        continue;
      switch (Key.Kind) {
      case FactKind::Condition:
      case FactKind::PropName:
      case FactKind::EvalArg:
      case FactKind::TripCount:
      case FactKind::CallArg:
        break;
      default:
        continue;
      }
      for (ContextID C = Key.Ctx; C != ContextTable::Root;
           C = A.Contexts.entry(C).Parent)
        UsefulCtxs.insert(C);
    }
  }

  /// Context-insensitive fallback (FactDB::uniform): the merged value over
  /// all observed contexts, or null if any disagree / are indeterminate.
  const FactValue *uniformFact(FactKind Kind, NodeID Node) {
    return A.Facts.uniform(Kind, Node);
  }

  // ------------------------------------------------------------ helpers --

  template <typename T, typename... Args>
  T *make(const Node *From, Args &&...Rest) {
    T *N = OutCtx->create<T>(From->getRange(), std::forward<Args>(Rest)...);
    (*OriginOf)[N->getID()] = From->getID();
    return N;
  }

  /// The child context of call site \p Site under \p St, if its occurrence
  /// is unambiguous; 0 otherwise.
  ContextID childContext(const State &St, NodeID Site, uint32_t Line) {
    if (!St.HasCtx)
      return 0;
    auto OccIt = St.OccMap.find(Site);
    if (OccIt != St.OccMap.end())
      return A.Contexts.intern(St.Ctx, Site, OccIt->second, Line);
    std::vector<ContextID> Children = A.Contexts.childrenAt(St.Ctx, Site);
    if (Children.size() != 1)
      return 0;
    return Children[0];
  }

  std::string cloneName(const FunctionExpr *Fn, ContextID Ctx) {
    auto Key = std::make_pair(Fn->getID(), Ctx);
    auto It = CloneNames.find(Key);
    if (It != CloneNames.end())
      return It->second;
    std::string Base = Fn->getName().empty()
                           ? "fn" + std::to_string(Fn->getID())
                           : Fn->getName();
    std::string Name = Base + "$" + std::to_string(++CloneCounter);
    CloneNames.emplace(Key, Name);
    return Name;
  }

  Stmt *emitClone(const CloneRequest &Req) {
    ++Report.FunctionClones;
    State St;
    St.HasCtx = true;
    St.Ctx = Req.Ctx;
    St.KnownConsts = Req.KnownConsts;
    Stmt *Body = emitStmt(Req.Fn->getBody(), St);
    auto *F = make<FunctionExpr>(Req.Fn, Req.Name,
                                 Req.Fn->getParams(), Body);
    return make<FunctionDeclStmt>(Req.Fn, F);
  }

  // ----------------------------------------------------------- emission --

  void emitInto(std::vector<Stmt *> &Out, const Stmt *S, const State &St) {
    Stmt *E = emitStmt(S, St);
    if (E)
      Out.push_back(E);
  }

  Stmt *emitStmt(const Stmt *S, const State &St) {
    if (!S)
      return nullptr;
    switch (S->getKind()) {
    case NodeKind::ExpressionStmt: {
      const Expr *E = cast<ExpressionStmt>(S)->getExpr();
      // Statement-position eval with a multi-statement determinate argument
      // splices as a block.
      if (const auto *Call = dyn_cast<CallExpr>(E))
        if (Stmt *Spliced = trySpliceEvalStmt(Call, St))
          return Spliced;
      return make<ExpressionStmt>(S, emitExpr(E, St));
    }
    case NodeKind::VarDeclStmt: {
      std::vector<VarDeclStmt::Declarator> Decls;
      for (const auto &D : cast<VarDeclStmt>(S)->getDeclarators())
        Decls.push_back({D.Name, D.Init ? emitExpr(D.Init, St) : nullptr});
      return make<VarDeclStmt>(S, std::move(Decls));
    }
    case NodeKind::FunctionDeclStmt: {
      // Originals are kept verbatim (facts do not apply context-free), but
      // known constants from an enclosing clone still flow in.
      const FunctionExpr *F = cast<FunctionDeclStmt>(S)->getFunction();
      return make<FunctionDeclStmt>(
          S, cast<FunctionExpr>(emitExpr(F, St)));
    }
    case NodeKind::BlockStmt: {
      std::vector<Stmt *> Body;
      for (const Stmt *Child : cast<BlockStmt>(S)->getBody())
        emitInto(Body, Child, St);
      return make<BlockStmt>(S, std::move(Body));
    }
    case NodeKind::IfStmt:
      return emitIf(cast<IfStmt>(S), St);
    case NodeKind::WhileStmt: {
      const auto *W = cast<WhileStmt>(S);
      if (Stmt *Unrolled = tryUnroll(S, nullptr, W->getCond(), nullptr,
                                     W->getBody(), St))
        return Unrolled;
      return make<WhileStmt>(S, emitExpr(W->getCond(), St),
                             emitStmt(W->getBody(), St));
    }
    case NodeKind::DoWhileStmt: {
      const auto *W = cast<DoWhileStmt>(S);
      return make<DoWhileStmt>(S, emitStmt(W->getBody(), St),
                               emitExpr(W->getCond(), St));
    }
    case NodeKind::ForStmt: {
      const auto *F = cast<ForStmt>(S);
      if (Stmt *Unrolled = tryUnroll(S, F->getInit(), F->getCond(),
                                     F->getUpdate(), F->getBody(), St))
        return Unrolled;
      return make<ForStmt>(S, emitStmt(F->getInit(), St),
                           F->getCond() ? emitExpr(F->getCond(), St) : nullptr,
                           F->getUpdate() ? emitExpr(F->getUpdate(), St)
                                          : nullptr,
                           emitStmt(F->getBody(), St));
    }
    case NodeKind::ForInStmt: {
      const auto *F = cast<ForInStmt>(S);
      if (Stmt *Unrolled = tryUnrollForIn(F, St))
        return Unrolled;
      return make<ForInStmt>(S, F->getVar(), F->declaresVar(),
                             emitExpr(F->getObject(), St),
                             emitStmt(F->getBody(), St));
    }
    case NodeKind::ReturnStmt: {
      const auto *R = cast<ReturnStmt>(S);
      return make<ReturnStmt>(S,
                              R->getArg() ? emitExpr(R->getArg(), St)
                                          : nullptr);
    }
    case NodeKind::BreakStmt:
      return make<BreakStmt>(S);
    case NodeKind::ContinueStmt:
      return make<ContinueStmt>(S);
    case NodeKind::ThrowStmt:
      return make<ThrowStmt>(S, emitExpr(cast<ThrowStmt>(S)->getArg(), St));
    case NodeKind::TryStmt: {
      const auto *T = cast<TryStmt>(S);
      return make<TryStmt>(S, emitStmt(T->getBlock(), St),
                           T->getCatchParam(),
                           emitStmt(T->getCatchBlock(), St),
                           emitStmt(T->getFinallyBlock(), St));
    }
    case NodeKind::EmptyStmt:
      return make<EmptyStmt>(S);
    case NodeKind::SwitchStmt:
      return emitSwitch(cast<SwitchStmt>(S), St);
    default:
      assert(false && "expression in statement position");
      return nullptr;
    }
  }

  /// Switch emission with determinate-selection pruning: when the dynamic
  /// analysis proved which clause is taken in every execution, the switch
  /// collapses to the selected clause suffix (stopping at a direct break).
  Stmt *emitSwitch(const SwitchStmt *Sw, const State &St) {
    const auto &Clauses = Sw->getClauses();
    const FactValue *Sel = nullptr;
    if (Opts.PruneBranches) {
      if (St.HasCtx)
        Sel = A.Facts.condition(Sw->getID(), St.Ctx);
      if (!Sel || !Sel->isDeterminate())
        Sel = uniformFact(FactKind::Condition, Sw->getID());
    }
    if (Sel && Sel->K == FactValue::Number && Sel->Num >= 0 &&
        Sel->Num <= static_cast<double>(Clauses.size())) {
      // The clause suffix must be free of non-direct breaks / continues for
      // the collapse to preserve semantics.
      size_t Selected = static_cast<size_t>(Sel->Num);
      bool Collapsible = true;
      bool SawDirectBreak = false;
      std::vector<const Stmt *> Suffix;
      for (size_t I = Selected; I < Clauses.size() && !SawDirectBreak; ++I)
        for (const Stmt *Child : Clauses[I].Body) {
          if (isa<BreakStmt>(Child)) {
            SawDirectBreak = true;
            break;
          }
          if (hasLooseBreakOrContinue(Child)) {
            Collapsible = false;
            break;
          }
          Suffix.push_back(Child);
        }
      if (Collapsible) {
        ++Report.BranchesPruned;
        std::vector<Stmt *> Out;
        if (!isPureExpr(Sw->getDisc()))
          Out.push_back(make<ExpressionStmt>(Sw, emitExpr(Sw->getDisc(), St)));
        // Evaluated case tests may have side effects; keep the impure ones
        // up to (and including) the selected clause.
        for (size_t I = 0; I <= Selected && I < Clauses.size(); ++I)
          if (Clauses[I].Test && !isPureExpr(Clauses[I].Test))
            Out.push_back(
                make<ExpressionStmt>(Sw, emitExpr(Clauses[I].Test, St)));
        for (const Stmt *Child : Suffix)
          emitInto(Out, Child, St);
        return make<BlockStmt>(Sw, std::move(Out));
      }
    }
    // Structural copy.
    std::vector<SwitchStmt::Clause> NewClauses;
    for (const auto &Clause : Clauses) {
      SwitchStmt::Clause NC;
      NC.Test = Clause.Test ? emitExpr(Clause.Test, St) : nullptr;
      for (const Stmt *Child : Clause.Body)
        emitInto(NC.Body, Child, St);
      NewClauses.push_back(std::move(NC));
    }
    return make<SwitchStmt>(Sw, emitExpr(Sw->getDisc(), St),
                            std::move(NewClauses));
  }

  Stmt *emitIf(const IfStmt *If, const State &St) {
    const FactValue *Cond = nullptr;
    if (Opts.PruneBranches) {
      if (St.HasCtx)
        Cond = A.Facts.condition(If->getID(), St.Ctx);
      if ((!Cond || !Cond->isDeterminate()))
        Cond = uniformFact(FactKind::Condition, If->getID());
    }
    if (Cond && Cond->isDeterminate() && Cond->K == FactValue::Boolean) {
      ++Report.BranchesPruned;
      const Stmt *Taken = Cond->B ? If->getThen() : If->getElse();
      std::vector<Stmt *> Body;
      // Keep the condition's side effects when it is not pure.
      if (!isPureExpr(If->getCond()))
        Body.push_back(
            make<ExpressionStmt>(If, emitExpr(If->getCond(), St)));
      if (Taken)
        emitInto(Body, Taken, St);
      return make<BlockStmt>(If, std::move(Body));
    }
    return make<IfStmt>(If, emitExpr(If->getCond(), St),
                        emitStmt(If->getThen(), St),
                        emitStmt(If->getElse(), St));
  }

  Stmt *tryUnroll(const Stmt *Loop, const Stmt *Init, const Expr *Cond,
                  const Expr *Update, const Stmt *Body, const State &St) {
    if (!Opts.UnrollLoops || !St.HasCtx || !Cond || !Body)
      return nullptr;
    const FactValue *Trip = A.Facts.tripCount(Loop->getID(), St.Ctx);
    if (!Trip || Trip->K != FactValue::Number)
      return nullptr;
    double N = Trip->Num;
    if (N < 0 || N > Opts.MaxUnroll || N != static_cast<double>(int(N)))
      return nullptr;
    if (!isPureExpr(Cond) || hasLooseBreakOrContinue(Body))
      return nullptr;
    if (!hasSpecializationOpportunity(Body))
      return nullptr;

    ++Report.LoopsUnrolled;
    std::vector<NodeID> Sites;
    collectCallSites(Body, Sites);
    if (Update)
      collectCallSites(Update, Sites);
    std::vector<NodeID> NestedSites;
    collectNestedLoopCallSites(Body, NestedSites);

    std::vector<Stmt *> Out;
    if (Init)
      emitInto(Out, Init, St);
    unsigned Trips = static_cast<unsigned>(N);
    auto ScaledIndex = [&](const State &Outer, NodeID Site, unsigned I) {
      // Compose with any enclosing unrolled loop: this body runs Trips
      // times per outer iteration, so index = outer * Trips + I.
      auto It = Outer.ScaledBase.find(Site);
      uint32_t Base = It == Outer.ScaledBase.end() ? 0 : It->second * Trips;
      return Base + I;
    };
    for (unsigned I = 0; I < Trips; ++I) {
      State Iter = St;
      for (NodeID Site : Sites)
        Iter.OccMap[Site] = ScaledIndex(St, Site, I);
      for (NodeID Site : NestedSites)
        Iter.ScaledBase[Site] = ScaledIndex(St, Site, I);
      emitInto(Out, Body, Iter);
      if (Update)
        Out.push_back(make<ExpressionStmt>(Loop, emitExpr(Update, Iter)));
    }
    return make<BlockStmt>(Loop, std::move(Out));
  }

  /// Unrolls a for-in loop whose property *set* was determinate: iteration
  /// order is determinate too (Section 5.2), so each iteration binds a known
  /// key. This is what specializes jQuery-style `extend` copy loops.
  Stmt *tryUnrollForIn(const ForInStmt *F, const State &St) {
    if (!Opts.UnrollLoops || !St.HasCtx)
      return nullptr;
    const FactValue *Trip = A.Facts.tripCount(F->getID(), St.Ctx);
    if (!Trip || Trip->K != FactValue::Number)
      return nullptr;
    double N = Trip->Num;
    if (N < 0 || N > Opts.MaxUnroll || N != static_cast<double>(int(N)))
      return nullptr;
    if (!isPureExpr(F->getObject()) || hasLooseBreakOrContinue(F->getBody()))
      return nullptr;
    if (!hasSpecializationOpportunity(F->getBody()))
      return nullptr;
    // Every iteration's key must be determinate.
    std::vector<StringId> Keys;
    for (unsigned I = 0; I < static_cast<unsigned>(N); ++I) {
      const FactValue *Key =
          A.Facts.forInKey(F->getID(), St.Ctx, static_cast<uint16_t>(I));
      if (!Key || Key->K != FactValue::String)
        return nullptr;
      Keys.push_back(Key->Str);
    }

    ++Report.LoopsUnrolled;
    std::vector<NodeID> Sites;
    collectCallSites(F->getBody(), Sites);
    std::vector<NodeID> NestedSites;
    collectNestedLoopCallSites(F->getBody(), NestedSites);

    std::vector<Stmt *> Out;
    uint32_t Trips = static_cast<uint32_t>(Keys.size());
    auto ScaledIndex = [&](NodeID Site, unsigned I) {
      auto It = St.ScaledBase.find(Site);
      uint32_t Base = It == St.ScaledBase.end() ? 0 : It->second * Trips;
      return Base + I;
    };
    for (unsigned I = 0; I < Keys.size(); ++I) {
      State Iter = St;
      for (NodeID Site : Sites)
        Iter.OccMap[Site] = ScaledIndex(Site, I);
      for (NodeID Site : NestedSites)
        Iter.ScaledBase[Site] = ScaledIndex(Site, I);
      Iter.KnownConsts[F->getVar()] = [&] {
        FactValue FV;
        FV.K = FactValue::String;
        FV.Str = Keys[I];
        return FV;
      }();
      // Bind the loop variable so plain uses of it still work.
      auto *KeyLit = make<StringLiteral>(F, std::string(atomText(Keys[I])));
      auto *VarRef = make<Identifier>(F, F->getVar());
      auto *Bind = make<AssignExpr>(F, AssignOp::Assign, VarRef, KeyLit);
      Out.push_back(make<ExpressionStmt>(F, Bind));
      emitInto(Out, F->getBody(), Iter);
    }
    return make<BlockStmt>(F, std::move(Out));
  }

  /// Statement-position eval splicing (multi-statement argument).
  Stmt *trySpliceEvalStmt(const CallExpr *Call, const State &St) {
    std::string Code;
    if (!evalSpliceCandidate(Call, St, Code))
      return nullptr;
    DiagnosticEngine Diags;
    std::vector<Stmt *> Parsed = parseIntoContext(Code, *OutCtx, Diags);
    if (Diags.hasErrors())
      return nullptr;
    ++Report.EvalsSpliced;
    Report.SplicedEvalSites.insert(Call->getID());
    for (Stmt *S : Parsed)
      (*OriginOf)[S->getID()] = Call->getID();
    // Argument side effects (string concatenations) are pure by the
    // candidate check, so drop the original call entirely.
    return OutCtx->create<BlockStmt>(Call->getRange(), std::move(Parsed));
  }

  /// Shared precondition check: eval-only callee, determinate string arg.
  bool evalSpliceCandidate(const CallExpr *Call, const State &St,
                           std::string &CodeOut) {
    if (!Opts.SpliceEval)
      return false;
    // Strictly context-qualified (like the paper's specializer): an eval
    // inside a loop that cannot be unrolled has an ambiguous occurrence and
    // is not rewritten, even if every observed argument was the same.
    ContextID Ctx = childContext(St, Call->getID(), Call->getLine());
    if (!Ctx)
      return false;
    const FactValue *Callee = A.Facts.callee(Call->getID(), Ctx);
    if (!Callee || !Callee->isNative(NativeFn::Eval))
      return false;
    const FactValue *Arg = A.Facts.evalArg(Call->getID(), Ctx);
    if (!Arg || Arg->K != FactValue::String)
      return false;
    if (Call->getArgs().size() != 1 || !isPureExpr(Call->getArgs()[0]))
      return false;
    CodeOut = Interner::global().str(Arg->Str);
    return true;
  }

  Expr *emitExpr(const Expr *E, const State &St) {
    switch (E->getKind()) {
    case NodeKind::NumberLiteral:
      return make<NumberLiteral>(E, cast<NumberLiteral>(E)->getValue());
    case NodeKind::StringLiteral:
      return make<StringLiteral>(E, cast<StringLiteral>(E)->getValue());
    case NodeKind::BooleanLiteral:
      return make<BooleanLiteral>(E, cast<BooleanLiteral>(E)->getValue());
    case NodeKind::NullLiteral:
      return make<NullLiteral>(E);
    case NodeKind::UndefinedLiteral:
      return make<UndefinedLiteral>(E);
    case NodeKind::Identifier:
      return make<Identifier>(E, cast<Identifier>(E)->getName());
    case NodeKind::This:
      return make<ThisExpr>(E);
    case NodeKind::ArrayLiteral: {
      std::vector<Expr *> Elements;
      for (const Expr *Child : cast<ArrayLiteral>(E)->getElements())
        Elements.push_back(emitExpr(Child, St));
      return make<ArrayLiteral>(E, std::move(Elements));
    }
    case NodeKind::ObjectLiteral: {
      std::vector<ObjectLiteral::Property> Props;
      for (const auto &P : cast<ObjectLiteral>(E)->getProperties())
        Props.push_back({P.Key, emitExpr(P.Value, St)});
      return make<ObjectLiteral>(E, std::move(Props));
    }
    case NodeKind::Function: {
      const auto *F = cast<FunctionExpr>(E);
      // The body runs under other call stacks: drop the context, keep known
      // constants not shadowed by the function's own names.
      State Inner;
      Inner.HasCtx = false;
      Inner.KnownConsts = St.KnownConsts;
      for (const std::string &P : F->getParams())
        Inner.KnownConsts.erase(P);
      std::vector<std::string> Assigned = collectAssignedNames(F->getBody());
      for (const std::string &Name : Assigned)
        Inner.KnownConsts.erase(Name);
      return make<FunctionExpr>(F, F->getName(), F->getParams(),
                                emitStmt(F->getBody(), Inner));
    }
    case NodeKind::Member:
      return emitMember(cast<MemberExpr>(E), St);
    case NodeKind::Call:
      return emitCall(cast<CallExpr>(E), St);
    case NodeKind::New: {
      const auto *C = cast<NewExpr>(E);
      std::vector<Expr *> Args;
      for (const Expr *Arg : C->getArgs())
        Args.push_back(emitExpr(Arg, St));
      return make<NewExpr>(E, emitExpr(C->getCallee(), St), std::move(Args));
    }
    case NodeKind::Unary:
      return make<UnaryExpr>(E, cast<UnaryExpr>(E)->getOp(),
                             emitExpr(cast<UnaryExpr>(E)->getOperand(), St));
    case NodeKind::Update:
      return make<UpdateExpr>(E, cast<UpdateExpr>(E)->isIncrement(),
                              cast<UpdateExpr>(E)->isPrefix(),
                              emitExpr(cast<UpdateExpr>(E)->getOperand(), St));
    case NodeKind::Binary:
      return make<BinaryExpr>(E, cast<BinaryExpr>(E)->getOp(),
                              emitExpr(cast<BinaryExpr>(E)->getLHS(), St),
                              emitExpr(cast<BinaryExpr>(E)->getRHS(), St));
    case NodeKind::Logical:
      return make<LogicalExpr>(E, cast<LogicalExpr>(E)->isAnd(),
                               emitExpr(cast<LogicalExpr>(E)->getLHS(), St),
                               emitExpr(cast<LogicalExpr>(E)->getRHS(), St));
    case NodeKind::Assign:
      return make<AssignExpr>(E, cast<AssignExpr>(E)->getOp(),
                              emitExpr(cast<AssignExpr>(E)->getTarget(), St),
                              emitExpr(cast<AssignExpr>(E)->getValue(), St));
    case NodeKind::Conditional:
      return make<ConditionalExpr>(
          E, emitExpr(cast<ConditionalExpr>(E)->getCond(), St),
          emitExpr(cast<ConditionalExpr>(E)->getThen(), St),
          emitExpr(cast<ConditionalExpr>(E)->getElse(), St));
    default:
      assert(false && "statement in expression position");
      return nullptr;
    }
  }

  static std::vector<std::string> collectAssignedNames(const Stmt *Body);

  Expr *emitMember(const MemberExpr *M, const State &St) {
    Expr *Base = emitExpr(M->getObject(), St);
    if (!M->isComputed())
      return make<MemberExpr>(M, Base, M->getProperty());

    if (Opts.StaticizeProperties && isDroppableIndex(M->getIndex())) {
      // (a) context-qualified fact; (b) uniform fact over all contexts;
      // (c) a known-constant captured parameter.
      const FactValue *Name = nullptr;
      if (St.HasCtx)
        Name = A.Facts.propName(M->getID(), St.Ctx);
      if ((!Name || !Name->isDeterminate()))
        Name = uniformFact(FactKind::PropName, M->getID());
      if (!Name || !Name->isDeterminate())
        if (const auto *Id = dyn_cast<Identifier>(M->getIndex())) {
          auto It = St.KnownConsts.find(Id->getName());
          if (It != St.KnownConsts.end() && It->second.K == FactValue::String)
            Name = &It->second;
        }
      if (Name && Name->K == FactValue::String &&
          isIdentifier(Interner::global().str(Name->Str))) {
        ++Report.PropertiesStaticized;
        return make<MemberExpr>(M, Base, std::string(atomText(Name->Str)));
      }
    }
    return make<MemberExpr>(M, Base, emitExpr(M->getIndex(), St));
  }

  Expr *emitCall(const CallExpr *Call, const State &St) {
    // Expression-position eval splicing: single-expression argument only.
    std::string Code;
    if (evalSpliceCandidate(Call, St, Code)) {
      DiagnosticEngine Diags;
      std::vector<Stmt *> Parsed = parseIntoContext(Code, *OutCtx, Diags);
      if (!Diags.hasErrors() && Parsed.size() == 1 &&
          isa<ExpressionStmt>(Parsed[0])) {
        ++Report.EvalsSpliced;
        Report.SplicedEvalSites.insert(Call->getID());
        Expr *Spliced = cast<ExpressionStmt>(Parsed[0])->getExpr();
        (*OriginOf)[Spliced->getID()] = Call->getID();
        return Spliced;
      }
    }

    std::vector<Expr *> Args;
    for (const Expr *Arg : Call->getArgs())
      Args.push_back(emitExpr(Arg, St));

    // Clone redirection.
    if (Opts.CloneFunctions) {
      ContextID Ctx = childContext(St, Call->getID(), Call->getLine());
      if (Ctx && A.Contexts.depth(Ctx) <= Opts.MaxCloneDepth &&
          UsefulCtxs.count(Ctx)) {
        const FactValue *Callee = A.Facts.callee(Call->getID(), Ctx);
        if (Callee && Callee->isFunction() &&
            TopLevelFns.count(Callee->Node) &&
            !isa<MemberExpr>(Call->getCallee())) {
          const FunctionExpr *F = FunctionByID.at(Callee->Node);
          std::string Name = cloneName(F, Ctx);
          if (RequestedClones.insert({F->getID(), Ctx}).second) {
            CloneRequest Req;
            Req.Fn = F;
            Req.Ctx = Ctx;
            Req.Name = Name;
            // Determinate arguments become known constants in the clone.
            for (size_t I = 0; I < F->getParams().size(); ++I) {
              const FactValue *Arg = A.Facts.callArg(
                  Call->getID(), Ctx, static_cast<uint16_t>(I));
              if (Arg && Arg->isDeterminate())
                Req.KnownConsts.emplace(F->getParams()[I], *Arg);
            }
            Pending.push_back(std::move(Req));
          }
          auto *NewCallee = make<Identifier>(Call->getCallee(), Name);
          return make<CallExpr>(Call, NewCallee, std::move(Args));
        }
      }
    }

    return make<CallExpr>(Call, emitExpr(Call->getCallee(), St),
                          std::move(Args));
  }

  const Program &Orig;
  AnalysisResult &A;
  const SpecializerOptions &Opts;
  SpecializationReport Report;

  ASTContext *OutCtx = nullptr;
  std::unordered_map<NodeID, NodeID> *OriginOf = nullptr;

  std::unordered_map<NodeID, const FunctionExpr *> FunctionByID;
  std::set<NodeID> TopLevelFns;
  std::set<ContextID> UsefulCtxs;

  std::vector<CloneRequest> Pending;
  std::set<std::pair<NodeID, ContextID>> RequestedClones;
  std::map<std::pair<NodeID, ContextID>, std::string> CloneNames;
  unsigned CloneCounter = 0;
};

std::vector<std::string> Emitter::collectAssignedNames(const Stmt *Body) {
  // Reuse the determinacy library's syntactic vd(s); the emitter keys its
  // constant map on spelled names, so convert the atoms back.
  std::vector<std::string> Names;
  for (StringId Id : collectAssignedVars(Body))
    Names.emplace_back(atomText(Id));
  return Names;
}

} // namespace

SpecializeResult dda::specializeProgram(const Program &P,
                                        AnalysisResult &Analysis,
                                        const SpecializerOptions &Opts) {
  Emitter E(P, Analysis, Opts);
  return E.run();
}
