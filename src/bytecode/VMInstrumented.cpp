//===- VMInstrumented.cpp - Instrumented dispatch loop over bytecode -------==//
///
/// \file
/// The instrumented engine's dispatch loop (member functions of
/// InstrumentedInterpreter). It runs the *same* chunks the concrete loop
/// runs, layering the determinacy semantics over each instruction: tagging
/// rules on loads/stores/operators, fact recording at each node's
/// completing instruction, journal writes through the shared setVar /
/// writeProp helpers, and counterfactual fork/undo on indeterminate
/// branches via vmBranchExpr (the code-range twin of evalBranchExpr).
/// Every handler mirrors the corresponding arm of the tree-walk evalExpr
/// verbatim — the differential suites hold the two dispatch modes to
/// identical facts, output, and governor step counts.
///
/// Unlike the concrete loop, branch ranges run as recursive vmRun
/// activations rather than flattened IP jumps: an indeterminate condition
/// forks a counterfactual run of the untaken side with journal undo, which
/// needs an activation boundary. Everything else matches the concrete
/// loop's shape — threaded dispatch on GCC/Clang with a portable switch
/// fallback, and a preallocated operand stack indexed unchecked (the chunk
/// carries a conservative MaxStack bound).
///
//===----------------------------------------------------------------------===//

#include "ast/AST.h"
#include "bytecode/Bytecode.h"
#include "determinacy/InstrumentedInterpreter.h"
#include "interp/Ops.h"

using namespace dda;
using namespace dda::bc;

#if defined(__GNUC__) || defined(__clang__)
#define DDA_THREADED_DISPATCH 1
#else
#define DDA_THREADED_DISPATCH 0
#endif

IRes InstrumentedInterpreter::vmEval(const Expr *E) {
  const Chunk &Ch = BC->getOrCompile(E);
  return vmRun(Ch, 0, static_cast<uint32_t>(Ch.Code.size()));
}

IRes InstrumentedInterpreter::vmBranchExpr(
    const Chunk &Ch, const TaggedValue &CondV, bool HasTaken, uint32_t TFrom,
    uint32_t TTo, bool HasUntaken, uint32_t UFrom, uint32_t UTo,
    uint32_t UntakenVd, const Expr *UntakenNode) {
  if (CondV.isDet()) {
    if (!HasTaken)
      return IRes::value(CondV);
    return vmRun(Ch, TFrom, TTo);
  }
  // Indeterminate condition: explore the untaken side counterfactually
  // against the shared pre-branch state.
  IRes TakenR;
  auto RunTaken = [&]() -> IComp {
    Journal::Mark M = J.mark();
    ++IndetBranchDepth;
    IRes R = vmRun(Ch, TFrom, TTo);
    --IndetBranchDepth;
    markIndetSince(M);
    if (R.abrupt()) {
      if (R.C.K != IComp::Fatal)
        R.C.IndetControl = true;
      TakenR = R;
      return R.C;
    }
    TakenR = IRes::value(R.V.asIndeterminate());
    return IComp::normal();
  };
  if (HasUntaken) {
    if (HasTaken && UntakenNode) {
      // The shadow interpreter tree-walks the untaken subtree: its chunk
      // cache is private and the two engines are observationally identical.
      IComp Out;
      if (tryParallelBranch(
              UntakenNode->getID(), Ch.VdLists[UntakenVd],
              [UntakenNode](InstrumentedInterpreter &Sh) {
                return Sh.evalExpr(UntakenNode).C;
              },
              RunTaken, Out))
        return TakenR;
    }
    uint64_t CfSteps0 = Gov.stepsUsed();
    IComp CF = counterfactualBranch(Ch.VdLists[UntakenVd], [&] {
      IRes R = vmRun(Ch, UFrom, UTo);
      return R.C;
    });
    if (CF.K == IComp::Fatal)
      return IRes::abruptly(CF);
    if (UntakenNode)
      noteBranchCfSteps(UntakenNode->getID(), CfSteps0);
  }
  if (!HasTaken)
    return IRes::value(CondV.asIndeterminate());
  RunTaken();
  return TakenR;
}

IRes InstrumentedInterpreter::vmRun(const Chunk &Ch, uint32_t From,
                                    uint32_t To) {
  std::vector<TaggedValue> &S = VStack;
  std::vector<VMJoin> &Joins = JStack;
  const size_t Base = S.size();
  const size_t JBase = Joins.size();
  // One resize up front (MaxStack bounds any execution through the chunk,
  // including sub-range activations); pushes and pops below are unchecked
  // index writes. Nested activations reserve above this frame's region.
  S.resize(Base + Ch.MaxStack);
  size_t Top = Base;
  const Instr *const Code = Ch.Code.data();
  InlineCache *const ICs = Ch.IC.data();
  const bool RecordAll = Opts.RecordAllExpressions;
  auto Fail = [&](IComp C) {
    S.resize(Base);
    Joins.resize(JBase);
    return IRes::abruptly(std::move(C));
  };

  // Flattened determinate branches rejoin here: a taken then-range ends at
  // AEnd but resumes past the else-range at BEnd, and the branch node's
  // completing fact is recorded at the join (the branch's value is then on
  // top of the stack). Ranges nest strictly, so joins are LIFO; NextJoin
  // mirrors the top to keep the per-dispatch check to one compare.
  // Indeterminate conditions never come through here — they keep the
  // recursive vmBranchExpr activation (counterfactual fork/undo needs the
  // boundary), below which JBase isolates this frame's entries.
  uint32_t NextJoin = UINT32_MAX;
  uint32_t IP = From;

#if DDA_THREADED_DISPATCH
  // Label table indexed by Opcode; order must match the enum exactly.
  static const void *const Targets[] = {
      &&L_Tick,        &&L_PushNum,     &&L_PushAtom,
      &&L_PushBool,    &&L_PushNull,    &&L_PushUndef,
      &&L_PushThis,    &&L_LoadVar,     &&L_TypeofVar,
      &&L_DeleteFalse, &&L_UpdateVar,   &&L_UpdateInvalid,
      &&L_MakeClosure, &&L_FatalExpr,   &&L_NewArray,
      &&L_ArrayElem,   &&L_ArrayFinish, &&L_NewObject,
      &&L_ObjProp,     &&L_ObjFinish,   &&L_ResolveKey,
      &&L_GetMember,   &&L_GetCalleeMember, &&L_MemberOld,
      &&L_SetMember,   &&L_SetMemberCompound, &&L_DeleteMember,
      &&L_UpdateMember, &&L_LoadVarCompound, &&L_StoreVar,
      &&L_StoreVarCompound, &&L_Unary,  &&L_Binary,
      &&L_LogicalBranch, &&L_CondBranch, &&L_Invoke,
      &&L_InvokeNew,
  };
  static_assert(sizeof(Targets) / sizeof(Targets[0]) ==
                    static_cast<size_t>(Opcode::InvokeNew) + 1,
                "dispatch table out of sync with Opcode");

#define VM_DISPATCH()                                                          \
  do {                                                                         \
    while (IP == NextJoin) {                                                   \
      const VMJoin &Jn = Joins.back();                                         \
      if (RecordAll && (Code[Jn.Instr].Flags & kCompletes))                    \
        recordFact(FactKind::Expression, Code[Jn.Instr].ID, S[Top - 1]);       \
      IP = Jn.Resume;                                                          \
      Joins.pop_back();                                                        \
      NextJoin = Joins.size() == JBase ? UINT32_MAX : Joins.back().Join;       \
    }                                                                          \
    if (IP >= To)                                                              \
      goto L_Done;                                                             \
    goto *Targets[static_cast<size_t>(Code[IP].Op)];                           \
  } while (0)
#define VM_CASE(Name) L_##Name
// Each node's completing instruction is where the tree-walk's evalExpr
// wrapper would record the Expression fact for the node.
#define VM_NEXT()                                                              \
  do {                                                                         \
    if (RecordAll && (Code[IP].Flags & kCompletes))                            \
      recordFact(FactKind::Expression, Code[IP].ID, S[Top - 1]);               \
    ++IP;                                                                      \
    VM_DISPATCH();                                                             \
  } while (0)
// Branch handlers retarget IP themselves, so they record their own
// completing fact and jump without the VM_NEXT flag check.
#define VM_JUMP() VM_DISPATCH()

  VM_DISPATCH();
#else
#define VM_CASE(Name) case Opcode::Name
#define VM_NEXT() goto L_Next
#define VM_JUMP() goto L_Top
L_Top:
  while (IP == NextJoin) {
    const VMJoin &Jn = Joins.back();
    if (RecordAll && (Code[Jn.Instr].Flags & kCompletes))
      recordFact(FactKind::Expression, Code[Jn.Instr].ID, S[Top - 1]);
    IP = Jn.Resume;
    Joins.pop_back();
    NextJoin = Joins.size() == JBase ? UINT32_MAX : Joins.back().Join;
  }
  if (IP >= To)
    goto L_Done;
  switch (Code[IP].Op) {
#endif

  VM_CASE(Tick) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    VM_NEXT();
  }
  VM_CASE(PushNum) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = TaggedValue(Value::number(Ch.Nums[Code[IP].C]));
    VM_NEXT();
  }
  VM_CASE(PushAtom) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = TaggedValue(Value::atom(StringId{Code[IP].C}));
    VM_NEXT();
  }
  VM_CASE(PushBool) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = TaggedValue(Value::boolean(Code[IP].C != 0));
    VM_NEXT();
  }
  VM_CASE(PushNull) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = TaggedValue(Value::null());
    VM_NEXT();
  }
  VM_CASE(PushUndef) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = TaggedValue(Value::undefined());
    VM_NEXT();
  }
  VM_CASE(PushThis) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = Frames.back().ThisV;
    VM_NEXT();
  }
  VM_CASE(LoadVar) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    const Instr &I = Code[IP];
    InlineCache &C = ICs[IP];
    Binding *B;
    if (C.Key == CurrentEnv && C.Gen == Envs.shapeGen()) {
      B = static_cast<Binding *>(C.Ptr);
    } else {
      EnvRef FoundIn = 0;
      B = Envs.lookup(CurrentEnv, StringId{I.C}, &FoundIn);
      if (!B)
        return Fail(throwString("ReferenceError: " +
                                Interner::global().str(StringId{I.C}) +
                                " is not defined"));
      C = {CurrentEnv, Envs.shapeGen(), B, FoundIn};
    }
    S[Top++] = TaggedValue(B->V, B->D);
    VM_NEXT();
  }
  VM_CASE(TypeofVar) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    const Instr &I = Code[IP];
    Binding *B = Envs.lookup(CurrentEnv, StringId{I.C});
    if (!B)
      S[Top++] = TaggedValue(Value::atom(atoms().Undefined));
    else
      S[Top++] = TaggedValue(Value::string(typeofString(B->V, TheHeap)), B->D);
    VM_NEXT();
  }
  VM_CASE(DeleteFalse) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = TaggedValue(Value::boolean(false));
    VM_NEXT();
  }
  VM_CASE(UpdateVar) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    const Instr &I = Code[IP];
    InlineCache &C = ICs[IP];
    Binding *B;
    EnvRef FoundIn = 0;
    if (C.Key == CurrentEnv && C.Gen == Envs.shapeGen()) {
      B = static_cast<Binding *>(C.Ptr);
      FoundIn = static_cast<EnvRef>(C.Aux);
    } else {
      B = Envs.lookup(CurrentEnv, StringId{I.C}, &FoundIn);
      if (!B)
        return Fail(throwString("ReferenceError: " +
                                Interner::global().str(StringId{I.C}) +
                                " is not defined"));
      C = {CurrentEnv, Envs.shapeGen(), B, FoundIn};
    }
    double Delta = (I.Flags & kIncrement) ? 1 : -1;
    double Old = toNumber(B->V);
    Det D = B->D;
    // The binding exists, so setVar would resolve to exactly (FoundIn, B).
    storeVarCached(FoundIn, *B, StringId{I.C},
                   TaggedValue(Value::number(Old + Delta), D));
    S[Top++] =
        TaggedValue(Value::number((I.Flags & kPrefix) ? Old + Delta : Old), D);
    VM_NEXT();
  }
  VM_CASE(UpdateInvalid) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    return Fail(throwString("TypeError: invalid update target"));
  }
  VM_CASE(MakeClosure) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    const FunctionExpr *F = Ch.Fns[Code[IP].C];
    ObjectRef FnObj = makeFunction(F, CurrentEnv);
    if (!F->getName().empty()) {
      EnvRef Wrapper = Envs.allocate(CurrentEnv);
      Envs.get(Wrapper).Vars[F->getNameAtom()] =
          Binding{Value::object(FnObj), Det::Determinate};
      TheHeap.get(FnObj).Closure = Wrapper;
    }
    S[Top++] = TaggedValue(Value::object(FnObj));
    VM_NEXT();
  }
  VM_CASE(FatalExpr) : {
    IComp T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    return Fail(IComp::fatal("statement node in expression position"));
  }
  VM_CASE(NewArray) : {
    if (uint32_t Pre = Code[IP].B) { // fused pre-ticks
      IComp T;
      do
        if (!tick(T))
          return Fail(std::move(T));
      while (--Pre);
    }
    ObjectRef Arr = TheHeap.allocate(ObjectClass::Array, Code[IP].ID);
    TheHeap.get(Arr).Proto = ArrayProto;
    TheHeap.get(Arr).ClosedEpoch = Epoch;
    S[Top++] = TaggedValue(Value::object(Arr));
    VM_NEXT();
  }
  VM_CASE(ArrayElem) : {
    TaggedValue V = std::move(S[--Top]);
    TheHeap.get(S[Top - 1].V.Obj)
        .set(Interner::global().internIndex(Code[IP].C),
             Slot{V.V, taintAdjust(V.D), Epoch});
    VM_NEXT();
  }
  VM_CASE(ArrayFinish) : {
    TheHeap.get(S[Top - 1].V.Obj)
        .set(atoms().Length, Slot{Value::number(static_cast<double>(Code[IP].C)),
                                  Det::Determinate, Epoch});
    VM_NEXT();
  }
  VM_CASE(NewObject) : {
    if (uint32_t Pre = Code[IP].B) { // fused pre-ticks
      IComp T;
      do
        if (!tick(T))
          return Fail(std::move(T));
      while (--Pre);
    }
    ObjectRef O = TheHeap.allocate(ObjectClass::Plain, Code[IP].ID);
    TheHeap.get(O).Proto = ObjectProto;
    TheHeap.get(O).ClosedEpoch = Epoch;
    S[Top++] = TaggedValue(Value::object(O));
    VM_NEXT();
  }
  VM_CASE(ObjProp) : {
    TaggedValue V = std::move(S[--Top]);
    TheHeap.get(S[Top - 1].V.Obj)
        .set(StringId{Code[IP].C}, Slot{V.V, taintAdjust(V.D), Epoch});
    VM_NEXT();
  }
  VM_CASE(ObjFinish) : { VM_NEXT(); } // The object value is already on top.
  VM_CASE(ResolveKey) : {
    TaggedValue Idx = std::move(S[--Top]);
    StringId Key = toStringAtom(Idx.V, TheHeap);
    TaggedValue KeyV(Value::atom(Key), Idx.D);
    // The value of a computed property name is a core client fact (access
    // staticization, paper Section 2.2 / 5.1).
    recordFact(FactKind::PropName, Code[IP].ID, KeyV);
    S[Top++] = KeyV;
    VM_NEXT();
  }
  VM_CASE(GetMember) : {
    const Instr &I = Code[IP];
    StringId Key{I.C};
    Det KeyDet = Det::Determinate;
    if (I.Flags & kComputed) {
      Key = S[Top - 1].V.Str;
      KeyDet = S[Top - 1].D;
      --Top;
    }
    TaggedValue BaseV = std::move(S[--Top]);
    const bool Static = !(I.Flags & kComputed);
    InlineCache &C = ICs[IP];
    const Slot *Hint = nullptr;
    if (Static && BaseV.V.isObject() && C.Key == BaseV.V.Obj &&
        C.Gen == TheHeap.get(BaseV.V.Obj).ShapeGen)
      Hint = static_cast<const Slot *>(C.Ptr);
    const Slot *Own = nullptr;
    IRes R = readProperty(BaseV, Key, KeyDet, Hint, Static ? &Own : nullptr);
    if (R.abrupt())
      return Fail(std::move(R.C));
    if (Own && Static)
      C = {BaseV.V.Obj, TheHeap.get(BaseV.V.Obj).ShapeGen,
           const_cast<Slot *>(Own)};
    S[Top++] = std::move(R.V);
    VM_NEXT();
  }
  VM_CASE(GetCalleeMember) : {
    const Instr &I = Code[IP];
    StringId Key{I.C};
    Det KeyDet = Det::Determinate;
    if (I.Flags & kComputed) {
      Key = S[Top - 1].V.Str;
      KeyDet = S[Top - 1].D;
      --Top;
    }
    const TaggedValue &BaseV = S[Top - 1];
    const bool Static = !(I.Flags & kComputed);
    InlineCache &C = ICs[IP];
    const Slot *Hint = nullptr;
    if (Static && BaseV.V.isObject() && C.Key == BaseV.V.Obj &&
        C.Gen == TheHeap.get(BaseV.V.Obj).ShapeGen)
      Hint = static_cast<const Slot *>(C.Ptr);
    ObjectRef BaseObj = BaseV.V.isObject() ? BaseV.V.Obj : 0;
    const Slot *Own = nullptr;
    IRes R = readProperty(BaseV, Key, KeyDet, Hint, Static ? &Own : nullptr);
    if (R.abrupt())
      return Fail(std::move(R.C));
    if (Own && Static)
      C = {BaseObj, TheHeap.get(BaseObj).ShapeGen, const_cast<Slot *>(Own)};
    S[Top++] = std::move(R.V);
    VM_NEXT();
  }
  VM_CASE(MemberOld) : {
    const Instr &I = Code[IP];
    StringId Key{I.C};
    Det KeyDet = Det::Determinate;
    const TaggedValue *BaseV = &S[Top - 1];
    if (I.Flags & kComputed) {
      Key = S[Top - 1].V.Str;
      KeyDet = S[Top - 1].D;
      BaseV = &S[Top - 2];
    }
    const bool Static = !(I.Flags & kComputed);
    InlineCache &C = ICs[IP];
    const Slot *Hint = nullptr;
    if (Static && BaseV->V.isObject() && C.Key == BaseV->V.Obj &&
        C.Gen == TheHeap.get(BaseV->V.Obj).ShapeGen)
      Hint = static_cast<const Slot *>(C.Ptr);
    ObjectRef BaseObj = BaseV->V.isObject() ? BaseV->V.Obj : 0;
    const Slot *Own = nullptr;
    IRes R = readProperty(*BaseV, Key, KeyDet, Hint, Static ? &Own : nullptr);
    if (R.abrupt())
      return Fail(std::move(R.C));
    if (Own && Static)
      C = {BaseObj, TheHeap.get(BaseObj).ShapeGen, const_cast<Slot *>(Own)};
    S[Top++] = std::move(R.V);
    VM_NEXT();
  }
  VM_CASE(SetMember) : {
    const Instr &I = Code[IP];
    TaggedValue NewV = std::move(S[--Top]);
    StringId Key{I.C};
    Det KeyDet = Det::Determinate;
    if (I.Flags & kComputed) {
      Key = S[Top - 1].V.Str;
      KeyDet = S[Top - 1].D;
      --Top;
    }
    TaggedValue BaseV = std::move(S[--Top]);
    recordFact(FactKind::Assign, I.ID, TaggedValue(NewV.V, taintAdjust(NewV.D)));
    IComp W = setPropertyTagged(BaseV, Key, KeyDet, NewV);
    if (W.isAbrupt())
      return Fail(std::move(W));
    S[Top++] = std::move(NewV);
    VM_NEXT();
  }
  VM_CASE(SetMemberCompound) : {
    const Instr &I = Code[IP];
    TaggedValue RHS = std::move(S[--Top]);
    TaggedValue Old = std::move(S[--Top]);
    StringId Key{I.C};
    Det KeyDet = Det::Determinate;
    if (I.Flags & kComputed) {
      Key = S[Top - 1].V.Str;
      KeyDet = S[Top - 1].D;
      --Top;
    }
    TaggedValue BaseV = std::move(S[--Top]);
    TaggedValue NewV;
    NewV.D = meet(Old.D, RHS.D);
    if (!applyBinaryOpFast(static_cast<BinaryOp>(I.B), Old.V, RHS.V, NewV.V))
      NewV.V = applyBinaryOp(static_cast<BinaryOp>(I.B), Old.V, RHS.V, TheHeap);
    recordFact(FactKind::Assign, I.ID, TaggedValue(NewV.V, taintAdjust(NewV.D)));
    IComp W = setPropertyTagged(BaseV, Key, KeyDet, NewV);
    if (W.isAbrupt())
      return Fail(std::move(W));
    S[Top++] = std::move(NewV);
    VM_NEXT();
  }
  VM_CASE(DeleteMember) : {
    const Instr &I = Code[IP];
    StringId Key{I.C};
    Det KeyDet = Det::Determinate;
    if (I.Flags & kComputed) {
      Key = S[Top - 1].V.Str;
      KeyDet = S[Top - 1].D;
      --Top;
    }
    TaggedValue BaseV = std::move(S[--Top]);
    if (!BaseV.V.isObject()) {
      S[Top++] = TaggedValue(Value::boolean(true), meet(BaseV.D, KeyDet));
      VM_NEXT();
    }
    if (KeyDet == Det::Indeterminate)
      openRecord(BaseV.V.Obj); // Some property goes away; which varies.
    bool Existed = eraseProp(BaseV.V.Obj, Key);
    if (BaseV.D == Det::Indeterminate)
      flushHeap();
    S[Top++] = TaggedValue(Value::boolean(Existed), meet(BaseV.D, KeyDet));
    VM_NEXT();
  }
  VM_CASE(UpdateMember) : {
    const Instr &I = Code[IP];
    StringId Key{I.C};
    Det KeyDet = Det::Determinate;
    if (I.Flags & kComputed) {
      Key = S[Top - 1].V.Str;
      KeyDet = S[Top - 1].D;
      --Top;
    }
    TaggedValue BaseV = std::move(S[--Top]);
    IRes OldR = readProperty(BaseV, Key, KeyDet);
    if (OldR.abrupt())
      return Fail(std::move(OldR.C));
    double Delta = (I.Flags & kIncrement) ? 1 : -1;
    double Old = toNumber(OldR.V.V);
    Det D = OldR.V.D;
    IComp W = setPropertyTagged(BaseV, Key, KeyDet,
                                TaggedValue(Value::number(Old + Delta), D));
    if (W.isAbrupt())
      return Fail(std::move(W));
    S[Top++] =
        TaggedValue(Value::number((I.Flags & kPrefix) ? Old + Delta : Old), D);
    VM_NEXT();
  }
  VM_CASE(LoadVarCompound) : {
    const Instr &I = Code[IP];
    if (uint32_t Pre = I.B) { // fused pre-ticks
      IComp T;
      do
        if (!tick(T))
          return Fail(std::move(T));
      while (--Pre);
    }
    InlineCache &C = ICs[IP];
    Binding *B;
    if (C.Key == CurrentEnv && C.Gen == Envs.shapeGen()) {
      B = static_cast<Binding *>(C.Ptr);
    } else {
      EnvRef FoundIn = 0;
      B = Envs.lookup(CurrentEnv, StringId{I.C}, &FoundIn);
      if (!B)
        return Fail(throwString("ReferenceError: " +
                                Interner::global().str(StringId{I.C}) +
                                " is not defined"));
      C = {CurrentEnv, Envs.shapeGen(), B, FoundIn};
    }
    S[Top++] = TaggedValue(B->V, B->D);
    VM_NEXT();
  }
  VM_CASE(StoreVar) : {
    const Instr &I = Code[IP];
    TaggedValue NewV = std::move(S[--Top]);
    recordFact(FactKind::Assign, I.ID, TaggedValue(NewV.V, taintAdjust(NewV.D)));
    InlineCache &C = ICs[IP];
    if (C.Key == CurrentEnv && C.Gen == Envs.shapeGen()) {
      storeVarCached(static_cast<EnvRef>(C.Aux),
                     *static_cast<Binding *>(C.Ptr), StringId{I.C}, NewV);
    } else {
      EnvRef FoundIn = 0;
      if (Binding *B = Envs.lookup(CurrentEnv, StringId{I.C}, &FoundIn)) {
        C = {CurrentEnv, Envs.shapeGen(), B, FoundIn};
        storeVarCached(FoundIn, *B, StringId{I.C}, NewV);
      } else {
        setVar(StringId{I.C}, NewV); // Sloppy-mode global creation.
      }
    }
    S[Top++] = std::move(NewV);
    VM_NEXT();
  }
  VM_CASE(StoreVarCompound) : {
    const Instr &I = Code[IP];
    TaggedValue RHS = std::move(S[--Top]);
    TaggedValue Old = std::move(S[--Top]);
    TaggedValue NewV;
    NewV.D = meet(Old.D, RHS.D);
    if (!applyBinaryOpFast(static_cast<BinaryOp>(I.B), Old.V, RHS.V, NewV.V))
      NewV.V = applyBinaryOp(static_cast<BinaryOp>(I.B), Old.V, RHS.V, TheHeap);
    recordFact(FactKind::Assign, I.ID, TaggedValue(NewV.V, taintAdjust(NewV.D)));
    InlineCache &C = ICs[IP];
    if (C.Key == CurrentEnv && C.Gen == Envs.shapeGen()) {
      storeVarCached(static_cast<EnvRef>(C.Aux),
                     *static_cast<Binding *>(C.Ptr), StringId{I.C}, NewV);
    } else {
      EnvRef FoundIn = 0;
      if (Binding *B = Envs.lookup(CurrentEnv, StringId{I.C}, &FoundIn)) {
        C = {CurrentEnv, Envs.shapeGen(), B, FoundIn};
        storeVarCached(FoundIn, *B, StringId{I.C}, NewV);
      } else {
        setVar(StringId{I.C}, NewV); // Sloppy-mode global creation.
      }
    }
    S[Top++] = std::move(NewV);
    VM_NEXT();
  }
  VM_CASE(Unary) : {
    TaggedValue R = std::move(S[--Top]);
    Det D = R.D;
    switch (static_cast<UnaryOp>(Code[IP].B)) {
    case UnaryOp::Not:
      S[Top++] = TaggedValue(Value::boolean(!toBooleanFast(R.V)), D);
      break;
    case UnaryOp::Minus:
      S[Top++] = TaggedValue(Value::number(-toNumber(R.V)), D);
      break;
    case UnaryOp::Plus:
      S[Top++] = TaggedValue(Value::number(toNumber(R.V)), D);
      break;
    case UnaryOp::Typeof:
      S[Top++] = TaggedValue(Value::string(typeofString(R.V, TheHeap)), D);
      break;
    case UnaryOp::Void:
      S[Top++] = TaggedValue(Value::undefined());
      break;
    case UnaryOp::Delete:
      S[Top++] = TaggedValue(Value::boolean(true));
      break;
    }
    VM_NEXT();
  }
  VM_CASE(Binary) : {
    const Instr &I = Code[IP];
    TaggedValue R = std::move(S[--Top]);
    TaggedValue L = std::move(S[--Top]);
    Det D = meet(L.D, R.D);
    BinaryOp Op = static_cast<BinaryOp>(I.B);
    if (Op == BinaryOp::In) {
      if (!R.V.isObject()) {
        IComp C = throwString("TypeError: 'in' requires an object");
        C.IndetControl = R.D == Det::Indeterminate;
        return Fail(std::move(C));
      }
      StringId Key = toStringAtom(L.V, TheHeap);
      // Walk the chain; openness on the way makes the answer uncertain.
      Det MissDet = Det::Determinate;
      bool Pushed = false;
      for (ObjectRef O = R.V.Obj; O; O = TheHeap.get(O).Proto) {
        const JSObject &Obj = TheHeap.get(O);
        if (Obj.has(Key)) {
          Det HitDet =
              Obj.isMaybePresent(Key) ? Det::Indeterminate : Det::Determinate;
          S[Top++] =
              TaggedValue(Value::boolean(true), meet(meet(D, MissDet), HitDet));
          Pushed = true;
          break;
        }
        if (!recordClosed(Obj) || Obj.isMaybeAbsent(Key))
          MissDet = Det::Indeterminate;
      }
      if (!Pushed)
        S[Top++] = TaggedValue(Value::boolean(false), meet(D, MissDet));
      VM_NEXT();
    }
    if (Op == BinaryOp::Instanceof) {
      if (!R.V.isObject()) {
        IComp C = throwString("TypeError: 'instanceof' requires a function");
        C.IndetControl = R.D == Det::Indeterminate;
        return Fail(std::move(C));
      }
      IRes Proto = readProperty(R, atoms().Prototype, Det::Determinate);
      if (Proto.abrupt())
        return Fail(std::move(Proto.C));
      Det DP = meet(D, Proto.V.D);
      if (!L.V.isObject() || !Proto.V.V.isObject()) {
        S[Top++] = TaggedValue(Value::boolean(false), DP);
        VM_NEXT();
      }
      bool Found = false;
      for (ObjectRef O = TheHeap.get(L.V.Obj).Proto; O; O = TheHeap.get(O).Proto)
        if (O == Proto.V.V.Obj) {
          Found = true;
          break;
        }
      S[Top++] = TaggedValue(Value::boolean(Found), DP);
      VM_NEXT();
    }
    Value Fast;
    if (applyBinaryOpFast(Op, L.V, R.V, Fast))
      S[Top++] = TaggedValue(std::move(Fast), D);
    else
      S[Top++] = TaggedValue(applyBinaryOp(Op, L.V, R.V, TheHeap), D);
    VM_NEXT();
  }
  VM_CASE(LogicalBranch) : {
    const Instr &I = Code[IP];
    TaggedValue LHS = std::move(S[--Top]);
    const BranchInfo &Br = Ch.Branches[I.C];
    bool Truthy = toBooleanFast(LHS.V);
    bool EvaluatesRHS = (I.Flags & kIsAnd) ? Truthy : !Truthy;
    if (LHS.isDet()) {
      // Determinate condition: no counterfactual side, so run flattened
      // like the concrete loop instead of recursing.
      if (!EvaluatesRHS) {
        S[Top++] = std::move(LHS); // Short-circuit: the LHS is the value.
        if (RecordAll && (I.Flags & kCompletes))
          recordFact(FactKind::Expression, I.ID, S[Top - 1]);
        IP = Br.BEnd;
        VM_JUMP();
      }
      // Fall into the RHS range; it ends at the continuation (AEnd ==
      // BEnd), so a join entry is only needed to record our fact there.
      if (RecordAll && (I.Flags & kCompletes)) {
        Joins.push_back({Br.AEnd, Br.AEnd, IP});
        NextJoin = Br.AEnd;
      }
      ++IP;
      VM_JUMP();
    }
    IRes R = vmBranchExpr(Ch, LHS, EvaluatesRHS, Br.AStart, Br.AEnd,
                          !EvaluatesRHS, Br.AStart, Br.AEnd, Br.VdA,
                          EvaluatesRHS ? nullptr : Br.NodeA);
    if (R.abrupt())
      return Fail(std::move(R.C));
    S[Top++] = std::move(R.V);
    if (RecordAll && (I.Flags & kCompletes))
      recordFact(FactKind::Expression, I.ID, S[Top - 1]);
    IP = Br.BEnd; // Straight to the continuation past both ranges.
    VM_JUMP();
  }
  VM_CASE(CondBranch) : {
    const Instr &I = Code[IP];
    TaggedValue Cond = std::move(S[--Top]);
    const BranchInfo &Br = Ch.Branches[I.C];
    bool B = toBooleanFast(Cond.V);
    recordFactValue(FactKind::Condition, I.ID,
                    Cond.isDet()
                        ? [&] {
                            FactValue F;
                            F.K = FactValue::Boolean;
                            F.B = B;
                            return F;
                          }()
                        : FactValue::indet());
    if (Cond.isDet()) {
      // Determinate condition: take one side flattened, rejoining past the
      // untaken range (where the branch's completing fact gets recorded).
      if (B) {
        Joins.push_back({Br.AEnd, Br.BEnd, IP});
        NextJoin = Br.AEnd;
        ++IP; // Falls onto the then-range.
      } else {
        if (RecordAll && (I.Flags & kCompletes)) {
          Joins.push_back({Br.BEnd, Br.BEnd, IP});
          NextJoin = Br.BEnd;
        }
        IP = Br.BStart; // The else-range ends at the continuation.
      }
      VM_JUMP();
    }
    IRes R = B ? vmBranchExpr(Ch, Cond, true, Br.AStart, Br.AEnd, true,
                              Br.BStart, Br.BEnd, Br.VdB, Br.NodeB)
               : vmBranchExpr(Ch, Cond, true, Br.BStart, Br.BEnd, true,
                              Br.AStart, Br.AEnd, Br.VdA, Br.NodeA);
    if (R.abrupt())
      return Fail(std::move(R.C));
    S[Top++] = std::move(R.V);
    if (RecordAll && (I.Flags & kCompletes))
      recordFact(FactKind::Expression, I.ID, S[Top - 1]);
    IP = Br.BEnd; // Straight to the continuation past both ranges.
    VM_JUMP();
  }
  VM_CASE(Invoke) : {
    const Instr &I = Code[IP];
    size_t Argc = I.B;
    std::vector<TaggedValue> Args(S.begin() + (Top - Argc), S.begin() + Top);
    Top -= Argc;
    TaggedValue Callee = std::move(S[--Top]);
    TaggedValue ThisV;
    if (I.Flags & kMemberCall) {
      ThisV = std::move(S[--Top]);
    }
    // Facts about this call are keyed by the *child* context (site +
    // occurrence), so distinct loop iterations keep distinct facts.
    ContextID ChildCtx = enterSite(I.ID, I.C);
    recordFactAt(FactKind::Callee, I.ID, ChildCtx, Callee);
    for (size_t A = 0; A < Args.size(); ++A)
      recordFactAt(FactKind::CallArg, I.ID, ChildCtx, Args[A],
                   static_cast<uint16_t>(A));
    if (!inCounterfactual())
      noteExecutedCall(I.ID);
    IRes R = (Callee.V.isObject() && Callee.V.Obj == EvalFn)
                 ? evalEval(I.ID, Args, ChildCtx)
                 : callValueTagged(Callee, ThisV, Args, ChildCtx);
    if (R.abrupt())
      return Fail(std::move(R.C));
    S[Top++] = std::move(R.V);
    VM_NEXT();
  }
  VM_CASE(InvokeNew) : {
    const Instr &I = Code[IP];
    size_t Argc = I.B;
    std::vector<TaggedValue> Args(S.begin() + (Top - Argc), S.begin() + Top);
    Top -= Argc;
    TaggedValue Fn = std::move(S[--Top]);
    ContextID ChildCtx = enterSite(I.ID, I.C);
    recordFactAt(FactKind::Callee, I.ID, ChildCtx, Fn);
    for (size_t A = 0; A < Args.size(); ++A)
      recordFactAt(FactKind::CallArg, I.ID, ChildCtx, Args[A],
                   static_cast<uint16_t>(A));
    if (!inCounterfactual())
      noteExecutedCall(I.ID);

    if (!Fn.V.isObject())
      return Fail(throwString("TypeError: not a constructor"));
    JSObject &FnObj = TheHeap.get(Fn.V.Obj);
    if (FnObj.Class == ObjectClass::Native) {
      NativeResult R = callNative(*this, FnObj.Native, TaggedValue(), Args);
      if (R.Threw)
        return Fail(IComp::thrown(TaggedValue(R.Thrown)));
      S[Top++] = TaggedValue(R.Result.V, meet(R.Result.D, Fn.D));
      VM_NEXT();
    }
    if (FnObj.Class != ObjectClass::Function)
      return Fail(throwString("TypeError: not a constructor"));

    ObjectRef Fresh = TheHeap.allocate(ObjectClass::Plain, I.ID);
    TheHeap.get(Fresh).ClosedEpoch = Epoch;
    IRes ProtoR = readProperty(Fn, atoms().Prototype, Det::Determinate);
    if (ProtoR.abrupt())
      return Fail(std::move(ProtoR.C));
    TheHeap.get(Fresh).Proto =
        ProtoR.V.V.isObject() ? ProtoR.V.V.Obj : ObjectProto;

    IRes R = callClosure(Fn.V.Obj, Fn.D, TaggedValue(Value::object(Fresh)),
                         Args, ChildCtx);
    if (R.abrupt())
      return Fail(std::move(R.C));
    // If the constructor returned an object, that wins.
    if (R.V.V.isObject())
      S[Top++] = std::move(R.V);
    else
      S[Top++] = TaggedValue(Value::object(Fresh), meet(Fn.D, Det::Determinate));
    VM_NEXT();
  }

#if !DDA_THREADED_DISPATCH
  }
  goto L_Top; // Unreachable: every handler ends in VM_NEXT.
L_Next:
  if (RecordAll && (Code[IP].Flags & kCompletes))
    recordFact(FactKind::Expression, Code[IP].ID, S[Top - 1]);
  ++IP;
  goto L_Top;
#endif

#undef VM_CASE
#undef VM_NEXT
#undef VM_JUMP
#ifdef VM_DISPATCH
#undef VM_DISPATCH
#endif

L_Done : {
  TaggedValue V = std::move(S[--Top]);
  S.resize(Base);
  return IRes::value(std::move(V));
}
}
