//===- Bytecode.cpp - Expression lowering and disassembly -------------------==//

#include "bytecode/Bytecode.h"

#include "ast/AST.h"

#include <cstdlib>
#include <sstream>

using namespace dda;
using namespace dda::bc;

ExecEngine dda::defaultExecEngine() {
  static ExecEngine E = [] {
    const char *V = std::getenv("DDA_ENGINE");
    if (V && std::string(V) == "tree")
      return ExecEngine::TreeWalk;
    return ExecEngine::Bytecode;
  }();
  return E;
}

const char *dda::execEngineName(ExecEngine E) {
  return E == ExecEngine::TreeWalk ? "tree" : "bytecode";
}

bool dda::parseExecEngine(const std::string &Name, ExecEngine &Out) {
  if (Name == "tree") {
    Out = ExecEngine::TreeWalk;
    return true;
  }
  if (Name == "bytecode") {
    Out = ExecEngine::Bytecode;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Compiler
//===----------------------------------------------------------------------===//

namespace {

/// Names assigned anywhere in \p E, not descending into nested function
/// bodies. Must produce the same names in the same order as the tree-walk's
/// syntactic collector in InstrumentedInterpreter.cpp: the list drives
/// counterfactual journal weakening, and journal-entry counts are part of
/// the engines' observable equivalence.
void collectAssignedInExpr(const Expr *E, std::vector<StringId> &Out) {
  if (!E)
    return;
  switch (E->getKind()) {
  case NodeKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    if (const auto *Id = dyn_cast<Identifier>(A->getTarget()))
      Out.push_back(Id->getAtom());
    else
      collectAssignedInExpr(A->getTarget(), Out);
    collectAssignedInExpr(A->getValue(), Out);
    return;
  }
  case NodeKind::Update: {
    const auto *U = cast<UpdateExpr>(E);
    if (const auto *Id = dyn_cast<Identifier>(U->getOperand()))
      Out.push_back(Id->getAtom());
    else
      collectAssignedInExpr(U->getOperand(), Out);
    return;
  }
  case NodeKind::Function:
    return; // Callee locals cannot touch our scope.
  case NodeKind::ArrayLiteral:
    for (const Expr *Child : cast<ArrayLiteral>(E)->getElements())
      collectAssignedInExpr(Child, Out);
    return;
  case NodeKind::ObjectLiteral:
    for (const auto &P : cast<ObjectLiteral>(E)->getProperties())
      collectAssignedInExpr(P.Value, Out);
    return;
  case NodeKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    collectAssignedInExpr(M->getObject(), Out);
    if (M->isComputed())
      collectAssignedInExpr(M->getIndex(), Out);
    return;
  }
  case NodeKind::Call: {
    const auto *C = cast<CallExpr>(E);
    collectAssignedInExpr(C->getCallee(), Out);
    for (const Expr *A : C->getArgs())
      collectAssignedInExpr(A, Out);
    return;
  }
  case NodeKind::New: {
    const auto *C = cast<NewExpr>(E);
    collectAssignedInExpr(C->getCallee(), Out);
    for (const Expr *A : C->getArgs())
      collectAssignedInExpr(A, Out);
    return;
  }
  case NodeKind::Unary:
    collectAssignedInExpr(cast<UnaryExpr>(E)->getOperand(), Out);
    return;
  case NodeKind::Binary:
    collectAssignedInExpr(cast<BinaryExpr>(E)->getLHS(), Out);
    collectAssignedInExpr(cast<BinaryExpr>(E)->getRHS(), Out);
    return;
  case NodeKind::Logical:
    collectAssignedInExpr(cast<LogicalExpr>(E)->getLHS(), Out);
    collectAssignedInExpr(cast<LogicalExpr>(E)->getRHS(), Out);
    return;
  case NodeKind::Conditional:
    collectAssignedInExpr(cast<ConditionalExpr>(E)->getCond(), Out);
    collectAssignedInExpr(cast<ConditionalExpr>(E)->getThen(), Out);
    collectAssignedInExpr(cast<ConditionalExpr>(E)->getElse(), Out);
    return;
  default:
    return;
  }
}

BinaryOp compoundOp(AssignOp Op) {
  switch (Op) {
  case AssignOp::Add:
    return BinaryOp::Add;
  case AssignOp::Sub:
    return BinaryOp::Sub;
  case AssignOp::Mul:
    return BinaryOp::Mul;
  case AssignOp::Div:
    return BinaryOp::Div;
  default:
    return BinaryOp::Mod;
  }
}

class Compiler {
public:
  explicit Compiler(Chunk &Ch) : Ch(Ch) {}

  void expr(const Expr *E) {
    switch (E->getKind()) {
    case NodeKind::NumberLiteral: {
      Ch.Nums.push_back(cast<NumberLiteral>(E)->getValue());
      emit(Opcode::PushNum, kCompletes, 0,
           static_cast<uint32_t>(Ch.Nums.size() - 1), E->getID());
      return;
    }
    case NodeKind::StringLiteral:
      emit(Opcode::PushAtom, kCompletes, 0,
           cast<StringLiteral>(E)->getAtom().Raw, E->getID());
      return;
    case NodeKind::BooleanLiteral:
      emit(Opcode::PushBool, kCompletes, 0,
           cast<BooleanLiteral>(E)->getValue() ? 1 : 0, E->getID());
      return;
    case NodeKind::NullLiteral:
      emit(Opcode::PushNull, kCompletes, 0, 0, E->getID());
      return;
    case NodeKind::UndefinedLiteral:
      emit(Opcode::PushUndef, kCompletes, 0, 0, E->getID());
      return;
    case NodeKind::This:
      emit(Opcode::PushThis, kCompletes, 0, 0, E->getID());
      return;
    case NodeKind::Identifier:
      emit(Opcode::LoadVar, kCompletes, 0,
           cast<Identifier>(E)->getAtom().Raw, E->getID());
      return;
    case NodeKind::ArrayLiteral: {
      const auto *A = cast<ArrayLiteral>(E);
      tick(E);
      emit(Opcode::NewArray, 0, 0, 0, E->getID());
      const auto &Elems = A->getElements();
      for (size_t I = 0; I < Elems.size(); ++I) {
        expr(Elems[I]);
        emit(Opcode::ArrayElem, 0, 0, static_cast<uint32_t>(I), E->getID());
      }
      emit(Opcode::ArrayFinish, kCompletes, 0,
           static_cast<uint32_t>(Elems.size()), E->getID());
      return;
    }
    case NodeKind::ObjectLiteral: {
      const auto *OL = cast<ObjectLiteral>(E);
      tick(E);
      emit(Opcode::NewObject, 0, 0, 0, E->getID());
      for (const auto &P : OL->getProperties()) {
        expr(P.Value);
        emit(Opcode::ObjProp, 0, 0, P.KeyAtom.Raw, E->getID());
      }
      emit(Opcode::ObjFinish, kCompletes, 0, 0, E->getID());
      return;
    }
    case NodeKind::Function: {
      Ch.Fns.push_back(cast<FunctionExpr>(E));
      emit(Opcode::MakeClosure, kCompletes, 0,
           static_cast<uint32_t>(Ch.Fns.size() - 1), E->getID());
      return;
    }
    case NodeKind::Member: {
      const auto *M = cast<MemberExpr>(E);
      tick(E);
      expr(M->getObject());
      emit(Opcode::GetMember, kCompletes | memberKey(M), 0, keyAtom(M),
           M->getID());
      return;
    }
    case NodeKind::Call: {
      const auto *C = cast<CallExpr>(E);
      tick(E);
      uint8_t Flags = kCompletes;
      if (const auto *M = dyn_cast<MemberExpr>(C->getCallee())) {
        // The callee MemberExpr is resolved inline (no tick of its own, no
        // Expression fact), exactly as the tree-walk's evalCall does.
        expr(M->getObject());
        emit(Opcode::GetCalleeMember, memberKey(M), 0, keyAtom(M),
             M->getID());
        Flags |= kMemberCall;
      } else {
        expr(C->getCallee());
      }
      for (const Expr *A : C->getArgs())
        expr(A);
      emit(Opcode::Invoke, Flags,
           static_cast<uint16_t>(C->getArgs().size()), C->getLine(),
           C->getID());
      return;
    }
    case NodeKind::New: {
      const auto *N = cast<NewExpr>(E);
      tick(E);
      expr(N->getCallee());
      for (const Expr *A : N->getArgs())
        expr(A);
      emit(Opcode::InvokeNew, kCompletes,
           static_cast<uint16_t>(N->getArgs().size()), N->getLine(),
           N->getID());
      return;
    }
    case NodeKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->getOp() == UnaryOp::Delete) {
        const auto *M = dyn_cast<MemberExpr>(U->getOperand());
        if (!M) {
          emit(Opcode::DeleteFalse, kCompletes, 0, 0, E->getID());
          return;
        }
        tick(E);
        expr(M->getObject());
        emit(Opcode::DeleteMember, kCompletes | memberKey(M), 0, keyAtom(M),
             E->getID());
        return;
      }
      if (U->getOp() == UnaryOp::Typeof &&
          isa<Identifier>(U->getOperand())) {
        emit(Opcode::TypeofVar, kCompletes, 0,
             cast<Identifier>(U->getOperand())->getAtom().Raw, E->getID());
        return;
      }
      tick(E);
      expr(U->getOperand());
      emit(Opcode::Unary, kCompletes,
           static_cast<uint16_t>(U->getOp()), 0, E->getID());
      return;
    }
    case NodeKind::Update: {
      const auto *U = cast<UpdateExpr>(E);
      uint8_t Mode = (U->isPrefix() ? kPrefix : 0) |
                     (U->isIncrement() ? kIncrement : 0);
      if (const auto *Id = dyn_cast<Identifier>(U->getOperand())) {
        emit(Opcode::UpdateVar, kCompletes | Mode, 0, Id->getAtom().Raw,
             E->getID());
        return;
      }
      const auto *M = dyn_cast<MemberExpr>(U->getOperand());
      if (!M) {
        emit(Opcode::UpdateInvalid, 0, 0, 0, E->getID());
        return;
      }
      tick(E);
      expr(M->getObject());
      emit(Opcode::UpdateMember, kCompletes | Mode | memberKey(M), 0,
           keyAtom(M), E->getID());
      return;
    }
    case NodeKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      tick(E);
      expr(B->getLHS());
      expr(B->getRHS());
      emit(Opcode::Binary, kCompletes,
           static_cast<uint16_t>(B->getOp()), 0, E->getID());
      return;
    }
    case NodeKind::Logical: {
      const auto *L = cast<LogicalExpr>(E);
      tick(E);
      expr(L->getLHS());
      uint32_t BranchIP = emit(Opcode::LogicalBranch,
                               kCompletes | (L->isAnd() ? kIsAnd : 0), 0, 0,
                               E->getID());
      BranchInfo Br;
      Br.AStart = pc();
      expr(L->getRHS());
      Br.AEnd = Br.BStart = Br.BEnd = pc();
      Br.VdA = vd(L->getRHS());
      Br.VdB = 0;
      Br.NodeA = L->getRHS();
      Ch.Code[BranchIP].C = addBranch(Br);
      return;
    }
    case NodeKind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      tick(E);
      expr(C->getCond());
      uint32_t BranchIP =
          emit(Opcode::CondBranch, kCompletes, 0, 0, E->getID());
      BranchInfo Br;
      Br.AStart = pc();
      expr(C->getThen());
      Br.AEnd = Br.BStart = pc();
      expr(C->getElse());
      Br.BEnd = pc();
      Br.VdA = vd(C->getThen());
      Br.VdB = vd(C->getElse());
      Br.NodeA = C->getThen();
      Br.NodeB = C->getElse();
      Ch.Code[BranchIP].C = addBranch(Br);
      return;
    }
    case NodeKind::Assign: {
      const auto *A = cast<AssignExpr>(E);
      bool Compound = A->getOp() != AssignOp::Assign;
      uint16_t Op = static_cast<uint16_t>(compoundOp(A->getOp()));
      tick(E);
      if (const auto *Id = dyn_cast<Identifier>(A->getTarget())) {
        if (Compound)
          emit(Opcode::LoadVarCompound, 0, 0, Id->getAtom().Raw, E->getID());
        expr(A->getValue());
        if (Compound)
          emit(Opcode::StoreVarCompound, kCompletes, Op, Id->getAtom().Raw,
               E->getID());
        else
          emit(Opcode::StoreVar, kCompletes, 0, Id->getAtom().Raw,
               E->getID());
        return;
      }
      const auto *M = cast<MemberExpr>(A->getTarget());
      expr(M->getObject());
      uint8_t Key = memberKey(M);
      if (Compound)
        emit(Opcode::MemberOld, Key, 0, keyAtom(M), M->getID());
      expr(A->getValue());
      if (Compound)
        emit(Opcode::SetMemberCompound, kCompletes | Key, Op, keyAtom(M),
             E->getID());
      else
        emit(Opcode::SetMember, kCompletes | Key, 0, keyAtom(M), E->getID());
      return;
    }
    default:
      emit(Opcode::FatalExpr, 0, 0, 0, E->getID());
      return;
    }
  }

private:
  uint32_t pc() const { return static_cast<uint32_t>(Ch.Code.size()); }

  uint32_t emit(Opcode Op, uint8_t Flags, uint16_t B, uint32_t C,
                NodeID ID) {
    Ch.Code.push_back(Instr{Op, Flags, B, C, ID});
    return pc() - 1;
  }

  void tick(const Expr *E) { emit(Opcode::Tick, 0, 0, 0, E->getID()); }

  /// Emits the computed-key resolution (if any) and returns the kComputed
  /// flag bit for the consuming instruction.
  uint8_t memberKey(const MemberExpr *M) {
    if (!M->isComputed())
      return 0;
    expr(M->getIndex());
    emit(Opcode::ResolveKey, 0, 0, 0, M->getID());
    return kComputed;
  }

  uint32_t keyAtom(const MemberExpr *M) {
    return M->isComputed() ? 0 : M->getPropertyAtom().Raw;
  }

  uint32_t vd(const Expr *E) {
    std::vector<StringId> Names;
    collectAssignedInExpr(E, Names);
    Ch.VdLists.push_back(std::move(Names));
    return static_cast<uint32_t>(Ch.VdLists.size() - 1);
  }

  uint32_t addBranch(const BranchInfo &Br) {
    Ch.Branches.push_back(Br);
    return static_cast<uint32_t>(Ch.Branches.size() - 1);
  }

  Chunk &Ch;
};

} // namespace

/// Conservative operand-stack bound: a linear pass over the instruction
/// stream. Branch ranges are laid out inline, so walking straight through
/// simulates both arms back to back — each CondBranch therefore counts one
/// phantom extra value (both arms "push" their result), which only
/// over-reserves, never under.
static uint32_t maxStackDepth(const Chunk &Ch) {
  int32_t Depth = 0, Max = 1;
  for (const Instr &I : Ch.Code) {
    int32_t Pops = 0, Pushes = 0;
    const bool Computed = (I.Flags & kComputed) != 0;
    switch (I.Op) {
    case Opcode::Tick:
    case Opcode::ArrayFinish:
    case Opcode::ObjFinish:
    case Opcode::UpdateInvalid:
    case Opcode::FatalExpr:
      break;
    case Opcode::PushNum:
    case Opcode::PushAtom:
    case Opcode::PushBool:
    case Opcode::PushNull:
    case Opcode::PushUndef:
    case Opcode::PushThis:
    case Opcode::LoadVar:
    case Opcode::TypeofVar:
    case Opcode::DeleteFalse:
    case Opcode::UpdateVar:
    case Opcode::MakeClosure:
    case Opcode::NewArray:
    case Opcode::NewObject:
    case Opcode::MemberOld:
    case Opcode::LoadVarCompound:
      Pushes = 1;
      break;
    case Opcode::ArrayElem:
    case Opcode::ObjProp:
      Pops = 1;
      break;
    case Opcode::ResolveKey:
    case Opcode::Unary:
      Pops = 1;
      Pushes = 1;
      break;
    case Opcode::GetMember:
      Pops = Computed ? 2 : 1;
      Pushes = 1;
      break;
    case Opcode::GetCalleeMember:
      Pops = Computed ? 1 : 0;
      Pushes = 1;
      break;
    case Opcode::SetMember:
      Pops = Computed ? 3 : 2;
      Pushes = 1;
      break;
    case Opcode::SetMemberCompound:
      Pops = Computed ? 4 : 3;
      Pushes = 1;
      break;
    case Opcode::DeleteMember:
    case Opcode::UpdateMember:
      Pops = Computed ? 2 : 1;
      Pushes = 1;
      break;
    case Opcode::StoreVar:
      Pops = 1;
      Pushes = 1;
      break;
    case Opcode::StoreVarCompound:
    case Opcode::Binary:
      Pops = 2;
      Pushes = 1;
      break;
    case Opcode::LogicalBranch:
    case Opcode::CondBranch:
      Pops = 1;
      break;
    case Opcode::Invoke:
      Pops = I.B + 1 + ((I.Flags & kMemberCall) ? 1 : 0);
      Pushes = 1;
      break;
    case Opcode::InvokeNew:
      Pops = I.B + 1;
      Pushes = 1;
      break;
    }
    Depth -= Pops;
    if (Depth < 0)
      Depth = 0; // Phantom branch-arm values; bound stays conservative.
    Depth += Pushes;
    Max = std::max(Max, Depth);
  }
  return static_cast<uint32_t>(Max);
}

/// Which instructions can absorb preceding Tick instructions into their B
/// immediate (unused otherwise on these). Every compiled subtree bottoms
/// out at one of them — the first instruction after any run of interior-
/// node ticks is a leaf, an allocation, or a variable access — so in
/// practice every Tick run fuses away.
static bool absorbsTicks(Opcode Op) {
  switch (Op) {
  case Opcode::PushNum:
  case Opcode::PushAtom:
  case Opcode::PushBool:
  case Opcode::PushNull:
  case Opcode::PushUndef:
  case Opcode::PushThis:
  case Opcode::LoadVar:
  case Opcode::TypeofVar:
  case Opcode::DeleteFalse:
  case Opcode::UpdateVar:
  case Opcode::UpdateInvalid:
  case Opcode::MakeClosure:
  case Opcode::FatalExpr:
  case Opcode::NewArray:
  case Opcode::NewObject:
  case Opcode::LoadVarCompound:
    return true;
  default:
    return false;
  }
}

/// Folds each run of Tick instructions into the following instruction's B
/// immediate (its pre-tick count), eliminating one dispatch per interior
/// AST node while keeping the governor's checkpoint sequence bit-identical:
/// the absorbing handler performs the same tick() calls in the same order
/// before its own work, so traps fire at the same step with the same state.
/// A run never folds across a branch-range boundary — an entry point must
/// not acquire ticks that precede it, and a range end must not lose ticks
/// that follow it — and branch ranges are remapped to the shrunken stream.
static void fuseTicks(Chunk &Ch) {
  const uint32_t N = static_cast<uint32_t>(Ch.Code.size());
  if (N == 0)
    return;
  std::vector<char> IsBound(N + 1, 0);
  for (const BranchInfo &Br : Ch.Branches) {
    IsBound[Br.AStart] = 1;
    IsBound[Br.AEnd] = 1;
    IsBound[Br.BStart] = 1;
    IsBound[Br.BEnd] = 1;
  }
  std::vector<Instr> Out;
  Out.reserve(N);
  std::vector<uint32_t> NewIdx(N + 1, 0);
  uint32_t I = 0;
  while (I < N) {
    if (Ch.Code[I].Op != Opcode::Tick) {
      NewIdx[I] = static_cast<uint32_t>(Out.size());
      Out.push_back(Ch.Code[I]);
      ++I;
      continue;
    }
    uint32_t K = I;
    while (K < N && Ch.Code[K].Op == Opcode::Tick)
      ++K;
    if (K == N) { // Cannot happen (chunks end completing), but stay safe.
      for (uint32_t P = I; P < K; ++P) {
        NewIdx[P] = static_cast<uint32_t>(Out.size());
        Out.push_back(Ch.Code[P]);
      }
      I = K;
      continue;
    }
    // Latest legal fusion start: past any boundary inside (I, K].
    uint32_t S = I;
    for (uint32_t P = I + 1; P <= K; ++P)
      if (IsBound[P])
        S = P;
    if (!absorbsTicks(Ch.Code[K].Op) ||
        (K - S) > static_cast<uint32_t>(0xFFFF - Ch.Code[K].B))
      S = K; // Fuse nothing.
    for (uint32_t P = I; P < S; ++P) {
      NewIdx[P] = static_cast<uint32_t>(Out.size());
      Out.push_back(Ch.Code[P]);
    }
    for (uint32_t P = S; P <= K; ++P)
      NewIdx[P] = static_cast<uint32_t>(Out.size());
    Instr Target = Ch.Code[K];
    Target.B = static_cast<uint16_t>(Target.B + (K - S));
    Out.push_back(Target);
    I = K + 1;
  }
  NewIdx[N] = static_cast<uint32_t>(Out.size());
  for (BranchInfo &Br : Ch.Branches) {
    Br.AStart = NewIdx[Br.AStart];
    Br.AEnd = NewIdx[Br.AEnd];
    Br.BStart = NewIdx[Br.BStart];
    Br.BEnd = NewIdx[Br.BEnd];
  }
  Ch.Code = std::move(Out);
}

std::unique_ptr<Chunk> bc::compileExpr(const Expr *Root) {
  auto Ch = std::make_unique<Chunk>();
  Ch->Root = Root;
  Compiler(*Ch).expr(Root);
  fuseTicks(*Ch);
  Ch->IC.assign(Ch->Code.size(), InlineCache{});
  Ch->MaxStack = maxStackDepth(*Ch);
  return Ch;
}

const Chunk &Module::getOrCompile(const Expr *E) {
  NodeID ID = E->getID();
  if (ID < Table.size()) {
    const Chunk *Ch = Table[ID].Ch;
    if (Ch && Ch->Root == E)
      return *Ch;
  } else {
    Table.resize(ID + 1);
  }
  Owned.push_back(compileExpr(E));
  Table[ID].Ch = Owned.back().get();
  return *Table[ID].Ch;
}

// Out-of-line tail of the inline lookupHot probe: NodeID reused by a
// different (eval-overlay) tree — restart warmup. The stale chunk's storage
// stays in Owned; an in-flight activation may still be executing it.
const Chunk *Module::invalidateAndCount(NodeID ID, const Expr *E) {
  Entry &En = Table[ID];
  En = Entry{};
  if (++En.Warm < WarmupRuns)
    return nullptr;
  return compileHot(ID, E);
}

// First sighting of this NodeID: grow the table and start its count.
const Chunk *Module::growAndCount(NodeID ID) {
  Table.resize(ID + 1);
  Table[ID].Warm = 1;
  return nullptr;
}

const Chunk *Module::compileHot(NodeID ID, const Expr *E) {
  Owned.push_back(compileExpr(E));
  Table[ID].Ch = Owned.back().get();
  return Table[ID].Ch;
}

//===----------------------------------------------------------------------===//
// Disassembler
//===----------------------------------------------------------------------===//

static const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Tick:
    return "tick";
  case Opcode::PushNum:
    return "push_num";
  case Opcode::PushAtom:
    return "push_atom";
  case Opcode::PushBool:
    return "push_bool";
  case Opcode::PushNull:
    return "push_null";
  case Opcode::PushUndef:
    return "push_undef";
  case Opcode::PushThis:
    return "push_this";
  case Opcode::LoadVar:
    return "load_var";
  case Opcode::TypeofVar:
    return "typeof_var";
  case Opcode::DeleteFalse:
    return "delete_false";
  case Opcode::UpdateVar:
    return "update_var";
  case Opcode::UpdateInvalid:
    return "update_invalid";
  case Opcode::MakeClosure:
    return "make_closure";
  case Opcode::FatalExpr:
    return "fatal_expr";
  case Opcode::NewArray:
    return "new_array";
  case Opcode::ArrayElem:
    return "array_elem";
  case Opcode::ArrayFinish:
    return "array_finish";
  case Opcode::NewObject:
    return "new_object";
  case Opcode::ObjProp:
    return "obj_prop";
  case Opcode::ObjFinish:
    return "obj_finish";
  case Opcode::ResolveKey:
    return "resolve_key";
  case Opcode::GetMember:
    return "get_member";
  case Opcode::GetCalleeMember:
    return "get_callee_member";
  case Opcode::MemberOld:
    return "member_old";
  case Opcode::SetMember:
    return "set_member";
  case Opcode::SetMemberCompound:
    return "set_member_compound";
  case Opcode::DeleteMember:
    return "delete_member";
  case Opcode::UpdateMember:
    return "update_member";
  case Opcode::LoadVarCompound:
    return "load_var_compound";
  case Opcode::StoreVar:
    return "store_var";
  case Opcode::StoreVarCompound:
    return "store_var_compound";
  case Opcode::Unary:
    return "unary";
  case Opcode::Binary:
    return "binary";
  case Opcode::LogicalBranch:
    return "logical_branch";
  case Opcode::CondBranch:
    return "cond_branch";
  case Opcode::Invoke:
    return "invoke";
  case Opcode::InvokeNew:
    return "invoke_new";
  }
  return "?";
}

static bool hasAtomOperand(Opcode Op) {
  switch (Op) {
  case Opcode::PushAtom:
  case Opcode::LoadVar:
  case Opcode::TypeofVar:
  case Opcode::UpdateVar:
  case Opcode::ObjProp:
  case Opcode::LoadVarCompound:
  case Opcode::StoreVar:
  case Opcode::StoreVarCompound:
    return true;
  case Opcode::GetMember:
  case Opcode::GetCalleeMember:
  case Opcode::MemberOld:
  case Opcode::SetMember:
  case Opcode::SetMemberCompound:
  case Opcode::DeleteMember:
  case Opcode::UpdateMember:
    return true;
  default:
    return false;
  }
}

std::string bc::disassemble(const Chunk &Ch) {
  std::ostringstream OS;
  for (size_t IP = 0; IP < Ch.Code.size(); ++IP) {
    const Instr &I = Ch.Code[IP];
    OS << IP << "\t" << opcodeName(I.Op);
    switch (I.Op) {
    case Opcode::PushNum:
      OS << " " << Ch.Nums[I.C];
      break;
    case Opcode::PushBool:
      OS << " " << (I.C ? "true" : "false");
      break;
    case Opcode::Unary:
    case Opcode::Binary:
      OS << " op=" << I.B;
      break;
    case Opcode::MakeClosure:
      OS << " fn#" << I.C;
      break;
    case Opcode::LogicalBranch:
    case Opcode::CondBranch: {
      const BranchInfo &Br = Ch.Branches[I.C];
      OS << " a=[" << Br.AStart << "," << Br.AEnd << ")";
      if (Br.BEnd != Br.AEnd)
        OS << " b=[" << Br.BStart << "," << Br.BEnd << ")";
      break;
    }
    case Opcode::Invoke:
    case Opcode::InvokeNew:
      OS << " argc=" << I.B << " line=" << I.C;
      break;
    case Opcode::ArrayElem:
    case Opcode::ArrayFinish:
      OS << " " << I.C;
      break;
    default:
      if (hasAtomOperand(I.Op) && !(I.Flags & kComputed))
        OS << " '" << atomText(StringId{I.C}) << "'";
      break;
    }
    if (I.Flags & kCompletes)
      OS << " !";
    OS << "\tnode=" << I.ID << "\n";
  }
  return OS.str();
}
