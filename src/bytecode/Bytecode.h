//===- Bytecode.h - Flat bytecode for MiniJS expressions ---------*- C++ -*-==//
///
/// \file
/// A compact postfix bytecode shared by the concrete and the instrumented
/// interpreters. One compiler lowers each expression tree (statements stay
/// tree-walk — they are control, not the hot path) to a flat instruction
/// stream over an explicit operand stack of PR-1 16-byte POD Values (or
/// TaggedValues in the instrumented dispatch mode). The two engines differ
/// only in their dispatch loops: the instrumented loop layers determinacy
/// tagging, fact recording, journal writes and counterfactual fork/abort
/// hooks over the same instruction stream, so the differential and
/// soundness suites remain the oracle that both semantics agree.
///
/// Invariants the dispatch loops rely on:
///
///  * governor ticks are explicit: every compiled node either starts with a
///    Tick instruction or is a self-ticking leaf, placed so the VM's step
///    sequence is *identical* (count and order) to the tree-walk's
///    pre-order ticking — injected faults trip at the same checkpoint
///    under either engine;
///  * each expression node has exactly one "completing" instruction
///    (Flags & kCompletes), in postfix order, whose result is the node's
///    value — the instrumented loop hangs Expression facts off it;
///  * branch operands (?:, &&, ||) are nested code ranges executed
///    recursively, with the untaken side's assigned-variable list
///    precompiled in the exact order the tree-walk's syntactic collector
///    produces it (journal-entry counts depend on that order).
///
/// Chunks are compiled on first evaluation of a root expression and cached
/// per interpreter instance, keyed by node pointer — ASTs parsed at runtime
/// by `eval` (including the parallel engine's per-task overlay arenas) get
/// chunks the same way, and die with the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_BYTECODE_BYTECODE_H
#define DDA_BYTECODE_BYTECODE_H

#include "support/Interner.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace dda {

class Expr;
class FunctionExpr;
using NodeID = uint32_t;

/// Which execution engine evaluates expressions.
enum class ExecEngine : uint8_t {
  TreeWalk, ///< Reference semantics: recursive big-step evaluation.
  Bytecode, ///< Compile-once flat dispatch (default).
};

/// Process default: `DDA_ENGINE=tree` selects the tree-walk reference
/// semantics, anything else (including unset) the bytecode VM.
ExecEngine defaultExecEngine();

/// "tree" / "bytecode".
const char *execEngineName(ExecEngine E);

/// Parses an `--engine` value; returns false on an unknown name.
bool parseExecEngine(const std::string &Name, ExecEngine &Out);

namespace bc {

enum class Opcode : uint8_t {
  // Pre-order governor checkpoint for an interior node. After compilation a
  // tick-fusion peephole folds runs of these into the next instruction's B
  // field as a pre-tick count (see fuseTicks in Bytecode.cpp); a standalone
  // Tick only survives when a branch-range boundary cuts through the run.
  Tick,
  // Self-ticking leaves (push one value). All of them — and the three
  // allocating/compound openers below — treat B as "extra governor ticks
  // to run first", the fusion pass's landing field.
  PushNum,   ///< C = index into Chunk::Nums.
  PushAtom,  ///< C = raw StringId.
  PushBool,  ///< C = 0/1.
  PushNull,
  PushUndef,
  PushThis,
  LoadVar,   ///< C = name atom; throws ReferenceError when unbound.
  TypeofVar, ///< typeof <identifier>; tolerates unbound names.
  DeleteFalse,   ///< delete of a non-member: false, operand unevaluated.
  UpdateVar,     ///< ++x/x--; C = name atom, kPrefix/kIncrement flags.
  UpdateInvalid, ///< update of a non-reference: TypeError, no eval.
  MakeClosure,   ///< C = index into Chunk::Fns.
  FatalExpr,     ///< malformed AST: statement node in expression position.
  // Literals with element streams. NewArray/NewObject allocate before the
  // elements evaluate (heap allocation order matches the tree-walk).
  NewArray,    ///< push fresh array.
  ArrayElem,   ///< C = element index; pops value, peeks array.
  ArrayFinish, ///< C = element count; writes length, completes.
  NewObject,
  ObjProp,   ///< C = key atom; pops value, peeks object.
  ObjFinish, ///< completes with the object.
  // Property access. Non-computed keys ride in C; computed keys are
  // resolved by ResolveKey, which pops the index value and pushes the key
  // atom (with its determinacy in the instrumented mode).
  ResolveKey,      ///< ID = the MemberExpr (PropName facts hang here).
  GetMember,       ///< pops [key,] base; pushes property value.
  GetCalleeMember, ///< pops [key]; peeks base; pushes callee above it.
  MemberOld,       ///< compound assign: peeks base/[key], pushes old value.
  SetMember,       ///< pops value, [key,] base; writes; pushes value.
  SetMemberCompound, ///< pops rhs, old, [key,] base; B = BinaryOp.
  DeleteMember,      ///< pops [key,] base; pushes existed-boolean.
  UpdateMember,      ///< pops [key,] base; read-modify-write.
  // Variable stores.
  LoadVarCompound,  ///< compound assign: pushes old; ReferenceError if unbound.
  StoreVar,         ///< pops value; writes variable; pushes value.
  StoreVarCompound, ///< pops rhs, old; B = BinaryOp; writes; pushes result.
  // Operators.
  Unary,  ///< B = UnaryOp; pops operand, pushes result.
  Binary, ///< B = BinaryOp (includes in/instanceof); pops rhs, lhs.
  // Branches: C = index into Chunk::Branches; sub-ranges follow inline and
  // the dispatch loop jumps past them.
  LogicalBranch, ///< kIsAnd flag; range A = RHS.
  CondBranch,    ///< range A = then, range B = else.
  // Calls: B = argc, C = source line; kMemberCall means the receiver sits
  // under the callee on the stack.
  Invoke,
  InvokeNew,
};

// Instr::Flags bits.
inline constexpr uint8_t kCompletes = 1;  ///< node's postfix result point
inline constexpr uint8_t kComputed = 2;   ///< member key came from ResolveKey
inline constexpr uint8_t kPrefix = 4;     ///< ++x rather than x++
inline constexpr uint8_t kIncrement = 8;  ///< ++ rather than --
inline constexpr uint8_t kIsAnd = 16;     ///< && rather than ||
inline constexpr uint8_t kMemberCall = 32;///< receiver under callee

/// One 12-byte instruction. B carries small immediates (operator kinds,
/// argument counts), C large ones (atoms, pool/branch indices, lines), ID
/// the AST node for facts, error positions and allocation sites.
struct Instr {
  Opcode Op;
  uint8_t Flags;
  uint16_t B;
  uint32_t C;
  NodeID ID;
};

/// A branch construct's two inline code ranges ([AStart,AEnd) then
/// [BStart,BEnd), contiguous) plus the precompiled assigned-variable lists
/// used when a side runs counterfactually. For && / || only range A (the
/// RHS) exists and BStart == BEnd == AEnd.
struct BranchInfo {
  uint32_t AStart, AEnd, BStart, BEnd;
  uint32_t VdA, VdB; ///< VdLists indices (untaken-side vd); VdB unused for &&/||.
  /// The AST subtrees the ranges were compiled from (A = RHS / then-arm,
  /// B = else-arm; null when the side does not exist). A parallel branch's
  /// shadow interpreter tree-walks the untaken subtree — chunks are
  /// per-interpreter scratch and cannot cross threads.
  const Expr *NodeA = nullptr;
  const Expr *NodeB = nullptr;
};

/// One monomorphic inline-cache entry. Variable instructions cache the
/// Binding* resolved from (Key = start EnvRef) while Gen matches the env
/// arena's shape generation; member instructions cache the own Slot* for
/// (Key = base ObjectRef) while Gen matches that object's shape generation.
/// A generation mismatch just refills — never unsound, only slower.
struct InlineCache {
  uint32_t Key = 0;
  uint32_t Gen = 0;
  void *Ptr = nullptr;
  /// Engine-specific extra word: the instrumented VM stores the declaring
  /// EnvRef alongside a cached Binding* (its journal entries name the
  /// environment, not just the binding).
  uint32_t Aux = 0;
};

/// A compiled expression: the instruction stream plus side tables.
/// Constants are pooled; atoms are already interned StringIds and ride in
/// the instruction word itself.
struct Chunk {
  const Expr *Root = nullptr;
  std::vector<Instr> Code;
  std::vector<double> Nums;
  std::vector<const FunctionExpr *> Fns;
  std::vector<BranchInfo> Branches;
  std::vector<std::vector<StringId>> VdLists;
  /// Per-instruction inline caches, indexed like Code. Mutable because the
  /// compiled code itself is immutable; caches are per-interpreter scratch
  /// (each interpreter owns its Module, so chunks are never shared across
  /// threads).
  mutable std::vector<InlineCache> IC;
  /// Upper bound on operand-stack growth of any execution through this
  /// chunk (conservative: a linear pass that walks both branch arms). The
  /// dispatch loops resize their stack once on entry and index into it
  /// unchecked instead of paying a capacity check per push.
  uint32_t MaxStack = 0;
};

/// Lowers one expression tree to a chunk.
std::unique_ptr<Chunk> compileExpr(const Expr *Root);

/// Per-interpreter chunk cache (one compile per root expression).
///
/// Direct-mapped on NodeID rather than hashed on the node pointer: the
/// lookup runs once per root-expression evaluation, and for tiny roots
/// (loop conditions, `i++` updates) a hash probe is a measurable fraction
/// of the whole evaluation. NodeIDs are dense (ASTContext hands them out
/// sequentially; eval overlays base at the program's nextID), so the table
/// stays compact. The cached Root pointer guards against id reuse across
/// distinct eval overlay arenas — on a mismatch the slot is recompiled, but
/// the stale chunk's storage is retained until the Module dies, because an
/// in-flight dispatch activation may still be executing it.
class Module {
public:
  const Chunk &getOrCompile(const Expr *E);

  /// Drops every cached chunk pointer, warmth counter, and inline-cache
  /// entry. Used when a speculative execution is rolled back: chunks
  /// compiled during the speculation may reference eval-AST nodes that
  /// rollbackTo just freed, and speculatively filled inline caches may
  /// point into map nodes of objects the rollback truncated — a
  /// deterministic rerun re-allocates the same ObjectRef and can re-reach
  /// the cached shape generation, so a stale entry could *hit* on a freed
  /// pointer. The chunk storage itself is retained (Owned) because an
  /// in-flight dispatch activation below the rollback point may still be
  /// executing one.
  void flushCaches() {
    for (Entry &En : Table)
      En = Entry();
    for (auto &Ch : Owned)
      for (InlineCache &C : Ch->IC)
        C = InlineCache();
  }

  /// Tiered lookup: returns the chunk once \p E has run often enough to be
  /// worth compiling, null while it is still cold (the caller tree-walks —
  /// the two engines are observationally identical, so mixing them per
  /// root changes nothing observable). One-shot code (top-level
  /// initialization, most of the eval corpus) never pays compilation; a
  /// loop's condition/update/body roots compile within their first few
  /// iterations. Inline because every root evaluation — hot or cold —
  /// makes this probe; only table growth, id-reuse invalidation, and
  /// compilation itself leave the header. \p ID must be E->getID() (passed
  /// in so this header needs no AST dependency).
  const Chunk *lookupHot(NodeID ID, const Expr *E) {
    if (ID < Table.size()) {
      Entry &En = Table[ID];
      if (En.Ch) {
        if (En.Ch->Root == E)
          return En.Ch;
        return invalidateAndCount(ID, E); // id reused by an eval overlay
      }
      if (++En.Warm < WarmupRuns)
        return nullptr;
      return compileHot(ID, E);
    }
    return growAndCount(ID);
  }

private:
  const Chunk *invalidateAndCount(NodeID ID, const Expr *E);
  const Chunk *growAndCount(NodeID ID);
  const Chunk *compileHot(NodeID ID, const Expr *E);
  /// Executions after which a root is compiled (so N-1 tree-walk runs).
  /// High enough that straight-line code run a handful of times never pays
  /// compilation; any loop crosses it within its first few iterations.
  static constexpr uint32_t WarmupRuns = 4;

  /// One slot per NodeID: the chunk once hot, plus the execution count
  /// while cold. A single vector so the per-evaluation probe (which every
  /// cold tree-walk node pays too, via the recursive evalExpr) touches one
  /// cache line.
  struct Entry {
    const Chunk *Ch = nullptr;
    uint32_t Warm = 0;
  };
  std::vector<Entry> Table;
  std::vector<std::unique_ptr<Chunk>> Owned;
};

/// Human-readable listing (debugging aid; exercised by tests).
std::string disassemble(const Chunk &Ch);

} // namespace bc
} // namespace dda

#endif // DDA_BYTECODE_BYTECODE_H
