//===- VMConcrete.cpp - Concrete dispatch loop over MiniJS bytecode --------==//
///
/// \file
/// The concrete engine's flat dispatch loop (member functions of
/// Interpreter). Each opcode handler replicates the corresponding arm of
/// the tree-walk evalExpr exactly — same governor tick points, same error
/// message strings, same heap allocation order — so the two engines are
/// observationally identical run-for-run. Deep semantics (property access,
/// calls, eval, natives) are shared by calling the same private helpers the
/// tree-walk uses.
///
/// Dispatch-level optimizations the tree-walk cannot express:
///
/// - *Inline caches.* Variable instructions cache the resolved Binding*
///   keyed on (starting EnvRef, env-arena shape generation); static-key
///   member instructions cache the own Slot* keyed on (ObjectRef, object
///   shape generation). A generation mismatch falls back to the shared slow
///   path and refills, so a hit is always equivalent to a full lookup.
/// - *Branch flattening.* Taken branch ranges execute in the same dispatch
///   loop via IP jumps and a LIFO join stack instead of recursive vmRun
///   calls (the compiler lays ranges out contiguously: then-range, then
///   else-range, then the continuation).
/// - *Threaded dispatch.* On GCC/Clang each handler ends in its own
///   indirect jump (computed goto) instead of looping back to one shared
///   switch, so the branch predictor keeps per-opcode-pair history. The
///   portable switch fallback compiles the same handler bodies via the
///   VM_CASE/VM_NEXT macros.
///
//===----------------------------------------------------------------------===//

#include "ast/AST.h"
#include "bytecode/Bytecode.h"
#include "interp/Interpreter.h"
#include "interp/Ops.h"

using namespace dda;
using namespace dda::bc;

#if defined(__GNUC__) || defined(__clang__)
#define DDA_THREADED_DISPATCH 1
#else
#define DDA_THREADED_DISPATCH 0
#endif

EvalResult Interpreter::vmEval(const Expr *E) {
  const Chunk &Ch = BC->getOrCompile(E);
  return vmRun(Ch, 0, static_cast<uint32_t>(Ch.Code.size()));
}

EvalResult Interpreter::vmRun(const Chunk &Ch, uint32_t From, uint32_t To) {
  std::vector<Value> &S = VStack;
  std::vector<std::pair<uint32_t, uint32_t>> &Joins = JStack;
  const size_t Base = S.size();
  const size_t JBase = Joins.size();
  // One resize up front (MaxStack bounds any execution through the chunk);
  // pushes and pops below are unchecked index writes. Top is the logical
  // height; S.size() is trimmed back to it around re-entrant calls.
  S.resize(Base + Ch.MaxStack);
  size_t Top = Base;
  const Instr *const Code = Ch.Code.data();
  InlineCache *const ICs = Ch.IC.data();
  auto Fail = [&](Completion C) {
    S.resize(Base);
    Joins.resize(JBase);
    return EvalResult::abruptly(std::move(C));
  };
  auto RefError = [](StringId Name) {
    return Completion::thrown(Value::string(
        "ReferenceError: " + Interner::global().str(Name) +
        " is not defined"));
  };

  // Branch joins: a taken then-range ends at AEnd but must resume past the
  // untaken else-range at BEnd. Ranges nest strictly, so joins are LIFO;
  // NextJoin mirrors the top of the stack to keep the per-instruction check
  // to one compare. The stack itself is member scratch (re-entrant
  // activations via Invoke push and fully pop above JBase).
  uint32_t NextJoin = UINT32_MAX;
  uint32_t IP = From;

#if DDA_THREADED_DISPATCH
  // Label table indexed by Opcode; order must match the enum exactly.
  static const void *const Targets[] = {
      &&L_Tick,        &&L_PushNum,     &&L_PushAtom,
      &&L_PushBool,    &&L_PushNull,    &&L_PushUndef,
      &&L_PushThis,    &&L_LoadVar,     &&L_TypeofVar,
      &&L_DeleteFalse, &&L_UpdateVar,   &&L_UpdateInvalid,
      &&L_MakeClosure, &&L_FatalExpr,   &&L_NewArray,
      &&L_ArrayElem,   &&L_ArrayFinish, &&L_NewObject,
      &&L_ObjProp,     &&L_ObjFinish,   &&L_ResolveKey,
      &&L_GetMember,   &&L_GetCalleeMember, &&L_MemberOld,
      &&L_SetMember,   &&L_SetMemberCompound, &&L_DeleteMember,
      &&L_UpdateMember, &&L_LoadVarCompound, &&L_StoreVar,
      &&L_StoreVarCompound, &&L_Unary,  &&L_Binary,
      &&L_LogicalBranch, &&L_CondBranch, &&L_Invoke,
      &&L_InvokeNew,
  };
  static_assert(sizeof(Targets) / sizeof(Targets[0]) ==
                    static_cast<size_t>(Opcode::InvokeNew) + 1,
                "dispatch table out of sync with Opcode");

#define VM_DISPATCH()                                                          \
  do {                                                                         \
    while (IP == NextJoin) {                                                   \
      IP = Joins.back().second;                                                \
      Joins.pop_back();                                                        \
      NextJoin = Joins.size() == JBase ? UINT32_MAX : Joins.back().first;      \
    }                                                                          \
    if (IP >= To)                                                              \
      goto L_Done;                                                             \
    goto *Targets[static_cast<size_t>(Code[IP].Op)];                           \
  } while (0)
#define VM_CASE(Name) L_##Name
#define VM_NEXT()                                                              \
  do {                                                                         \
    ++IP;                                                                      \
    VM_DISPATCH();                                                             \
  } while (0)

  VM_DISPATCH();
#else
#define VM_CASE(Name) case Opcode::Name
#define VM_NEXT() goto L_Top
L_Top:
  while (IP == NextJoin) {
    IP = Joins.back().second;
    Joins.pop_back();
    NextJoin = Joins.size() == JBase ? UINT32_MAX : Joins.back().first;
  }
  if (IP >= To)
    goto L_Done;
  switch (Code[IP].Op) {
#endif

  VM_CASE(Tick) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    VM_NEXT();
  }
  VM_CASE(PushNum) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = (Value::number(Ch.Nums[Code[IP].C]));
    VM_NEXT();
  }
  VM_CASE(PushAtom) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = (Value::atom(StringId{Code[IP].C}));
    VM_NEXT();
  }
  VM_CASE(PushBool) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = (Value::boolean(Code[IP].C != 0));
    VM_NEXT();
  }
  VM_CASE(PushNull) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = (Value::null());
    VM_NEXT();
  }
  VM_CASE(PushUndef) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = (Value::undefined());
    VM_NEXT();
  }
  VM_CASE(PushThis) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = (CurrentThis);
    VM_NEXT();
  }
  VM_CASE(LoadVar) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    const Instr &I = Code[IP];
    InlineCache &C = ICs[IP];
    Binding *B;
    if (C.Key == CurrentEnv && C.Gen == Envs.shapeGen()) {
      B = static_cast<Binding *>(C.Ptr);
    } else {
      B = Envs.lookup(CurrentEnv, StringId{I.C});
      if (!B)
        return Fail(RefError(StringId{I.C}));
      C = {CurrentEnv, Envs.shapeGen(), B};
    }
    S[Top++] = (B->V);
    VM_NEXT();
  }
  VM_CASE(TypeofVar) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    Binding *B = Envs.lookup(CurrentEnv, StringId{Code[IP].C});
    if (!B)
      S[Top++] = (Value::atom(atoms().Undefined));
    else
      S[Top++] = (Value::string(typeofString(B->V, TheHeap)));
    VM_NEXT();
  }
  VM_CASE(DeleteFalse) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    S[Top++] = (Value::boolean(false));
    VM_NEXT();
  }
  VM_CASE(UpdateVar) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    const Instr &I = Code[IP];
    InlineCache &C = ICs[IP];
    Binding *B;
    if (C.Key == CurrentEnv && C.Gen == Envs.shapeGen()) {
      B = static_cast<Binding *>(C.Ptr);
    } else {
      B = Envs.lookup(CurrentEnv, StringId{I.C});
      if (!B)
        return Fail(RefError(StringId{I.C}));
      C = {CurrentEnv, Envs.shapeGen(), B};
    }
    double Delta = (I.Flags & kIncrement) ? 1 : -1;
    double Old = toNumber(B->V);
    B->V = Value::number(Old + Delta);
    S[Top++] = (Value::number((I.Flags & kPrefix) ? Old + Delta : Old));
    VM_NEXT();
  }
  VM_CASE(UpdateInvalid) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    return Fail(throwTypeError("invalid update target"));
  }
  VM_CASE(MakeClosure) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    const FunctionExpr *F = Ch.Fns[Code[IP].C];
    ObjectRef FnObj = makeFunction(F, CurrentEnv);
    if (!F->getName().empty()) {
      EnvRef Wrapper = Envs.allocate(CurrentEnv);
      Envs.get(Wrapper).Vars[F->getNameAtom()] =
          Binding{Value::object(FnObj), Det::Determinate};
      TheHeap.get(FnObj).Closure = Wrapper;
    }
    S[Top++] = (Value::object(FnObj));
    VM_NEXT();
  }
  VM_CASE(FatalExpr) : {
    Completion T;
    for (uint32_t Pre = Code[IP].B + 1u; Pre; --Pre)
      if (!tick(T))
        return Fail(std::move(T));
    return Fail(Completion::fatal("statement node in expression position"));
  }
  VM_CASE(NewArray) : {
    if (uint32_t Pre = Code[IP].B) { // fused pre-ticks
      Completion T;
      do
        if (!tick(T))
          return Fail(std::move(T));
      while (--Pre);
    }
    ObjectRef Arr = TheHeap.allocate(ObjectClass::Array, Code[IP].ID);
    TheHeap.get(Arr).Proto = ArrayProto;
    S[Top++] = (Value::object(Arr));
    VM_NEXT();
  }
  VM_CASE(ArrayElem) : {
    Value V = std::move(S[--Top]);
    TheHeap.get(S[Top - 1].Obj)
        .set(Interner::global().internIndex(Code[IP].C), Slot{std::move(V)});
    VM_NEXT();
  }
  VM_CASE(ArrayFinish) : {
    TheHeap.get(S[Top - 1].Obj)
        .set(atoms().Length,
             Slot{Value::number(static_cast<double>(Code[IP].C))});
    VM_NEXT();
  }
  VM_CASE(NewObject) : {
    if (uint32_t Pre = Code[IP].B) { // fused pre-ticks
      Completion T;
      do
        if (!tick(T))
          return Fail(std::move(T));
      while (--Pre);
    }
    ObjectRef O = TheHeap.allocate(ObjectClass::Plain, Code[IP].ID);
    TheHeap.get(O).Proto = ObjectProto;
    S[Top++] = (Value::object(O));
    VM_NEXT();
  }
  VM_CASE(ObjProp) : {
    Value V = std::move(S[--Top]);
    TheHeap.get(S[Top - 1].Obj).set(StringId{Code[IP].C}, Slot{std::move(V)});
    VM_NEXT();
  }
  VM_CASE(ObjFinish) : {
    // The object value is already on top.
    VM_NEXT();
  }
  VM_CASE(ResolveKey) : {
    Value Idx = std::move(S[--Top]);
    S[Top++] = (Value::atom(propertyKey(Idx)));
    VM_NEXT();
  }
  VM_CASE(GetMember) : {
    const Instr &I = Code[IP];
    StringId Key{I.C};
    if (I.Flags & kComputed) {
      Key = S[--Top].Str;
    }
    Value BaseV = std::move(S[--Top]);
    InlineCache &C = ICs[IP];
    if (!(I.Flags & kComputed) && BaseV.isObject() && C.Key == BaseV.Obj &&
        C.Gen == TheHeap.get(BaseV.Obj).ShapeGen) {
      S[Top++] = (static_cast<Slot *>(C.Ptr)->V);
      VM_NEXT();
    }
    Slot *Own = nullptr;
    EvalResult R = getProperty(BaseV, Key, &Own);
    if (R.abrupt())
      return Fail(std::move(R.C));
    if (Own && !(I.Flags & kComputed))
      C = {BaseV.Obj, TheHeap.get(BaseV.Obj).ShapeGen, Own};
    S[Top++] = (std::move(R.V));
    VM_NEXT();
  }
  VM_CASE(GetCalleeMember) : {
    const Instr &I = Code[IP];
    StringId Key{I.C};
    if (I.Flags & kComputed) {
      Key = S[--Top].Str;
    }
    const Value &BaseV = S[Top - 1];
    InlineCache &C = ICs[IP];
    if (!(I.Flags & kComputed) && BaseV.isObject() && C.Key == BaseV.Obj &&
        C.Gen == TheHeap.get(BaseV.Obj).ShapeGen) {
      Value Callee = static_cast<Slot *>(C.Ptr)->V;
      S[Top++] = (std::move(Callee));
      VM_NEXT();
    }
    ObjectRef BaseObj = BaseV.isObject() ? BaseV.Obj : 0;
    Slot *Own = nullptr;
    EvalResult R = getProperty(BaseV, Key, &Own);
    if (R.abrupt())
      return Fail(std::move(R.C));
    if (Own && !(I.Flags & kComputed))
      C = {BaseObj, TheHeap.get(BaseObj).ShapeGen, Own};
    S[Top++] = (std::move(R.V));
    VM_NEXT();
  }
  VM_CASE(MemberOld) : {
    const Instr &I = Code[IP];
    StringId Key{I.C};
    const Value &BaseV = (I.Flags & kComputed) ? S[Top - 2] : S[Top - 1];
    if (I.Flags & kComputed)
      Key = S[Top - 1].Str;
    InlineCache &C = ICs[IP];
    if (!(I.Flags & kComputed) && BaseV.isObject() && C.Key == BaseV.Obj &&
        C.Gen == TheHeap.get(BaseV.Obj).ShapeGen) {
      Value Old = static_cast<Slot *>(C.Ptr)->V;
      S[Top++] = (std::move(Old));
      VM_NEXT();
    }
    ObjectRef BaseObj = BaseV.isObject() ? BaseV.Obj : 0;
    Slot *Own = nullptr;
    EvalResult R = getProperty(BaseV, Key, &Own);
    if (R.abrupt())
      return Fail(std::move(R.C));
    if (Own && !(I.Flags & kComputed))
      C = {BaseObj, TheHeap.get(BaseObj).ShapeGen, Own};
    S[Top++] = (std::move(R.V));
    VM_NEXT();
  }
  VM_CASE(SetMember) : {
    const Instr &I = Code[IP];
    Value V = std::move(S[--Top]);
    StringId Key{I.C};
    if (I.Flags & kComputed) {
      Key = S[--Top].Str;
    }
    Value BaseV = std::move(S[--Top]);
    InlineCache &C = ICs[IP];
    if (!(I.Flags & kComputed) && BaseV.isObject() && C.Key == BaseV.Obj &&
        C.Gen == TheHeap.get(BaseV.Obj).ShapeGen) {
      // Cached overwrite of an existing non-array own property: identical
      // to setProperty's overwrite branch.
      *static_cast<Slot *>(C.Ptr) = Slot{V, Det::Determinate, 0};
    } else {
      Slot *Cache = nullptr;
      Completion W =
          setProperty(BaseV, Key, V, (I.Flags & kComputed) ? nullptr : &Cache);
      if (W.isAbrupt())
        return Fail(std::move(W));
      if (Cache)
        C = {BaseV.Obj, TheHeap.get(BaseV.Obj).ShapeGen, Cache};
    }
    S[Top++] = (std::move(V));
    VM_NEXT();
  }
  VM_CASE(SetMemberCompound) : {
    const Instr &I = Code[IP];
    Value RHS = std::move(S[--Top]);
    Value Old = std::move(S[--Top]);
    StringId Key{I.C};
    if (I.Flags & kComputed) {
      Key = S[--Top].Str;
    }
    Value BaseV = std::move(S[--Top]);
    Value NewV;
    if (!applyBinaryOpFast(static_cast<BinaryOp>(I.B), Old, RHS, NewV))
      NewV = applyBinaryOp(static_cast<BinaryOp>(I.B), Old, RHS, TheHeap);
    InlineCache &C = ICs[IP];
    if (!(I.Flags & kComputed) && BaseV.isObject() && C.Key == BaseV.Obj &&
        C.Gen == TheHeap.get(BaseV.Obj).ShapeGen) {
      *static_cast<Slot *>(C.Ptr) = Slot{NewV, Det::Determinate, 0};
    } else {
      Slot *Cache = nullptr;
      Completion W = setProperty(BaseV, Key, NewV,
                                 (I.Flags & kComputed) ? nullptr : &Cache);
      if (W.isAbrupt())
        return Fail(std::move(W));
      if (Cache)
        C = {BaseV.Obj, TheHeap.get(BaseV.Obj).ShapeGen, Cache};
    }
    S[Top++] = (std::move(NewV));
    VM_NEXT();
  }
  VM_CASE(DeleteMember) : {
    const Instr &I = Code[IP];
    StringId Key{I.C};
    if (I.Flags & kComputed) {
      Key = S[--Top].Str;
    }
    Value BaseV = std::move(S[--Top]);
    if (!BaseV.isObject())
      S[Top++] = (Value::boolean(true));
    else
      S[Top++] = (Value::boolean(TheHeap.get(BaseV.Obj).erase(Key)));
    VM_NEXT();
  }
  VM_CASE(UpdateMember) : {
    const Instr &I = Code[IP];
    StringId Key{I.C};
    if (I.Flags & kComputed) {
      Key = S[--Top].Str;
    }
    Value BaseV = std::move(S[--Top]);
    const bool Static = !(I.Flags & kComputed);
    InlineCache &C = ICs[IP];
    if (Static && BaseV.isObject() && C.Key == BaseV.Obj &&
        C.Gen == TheHeap.get(BaseV.Obj).ShapeGen) {
      // Cached only when the read and the write hit the same existing
      // non-array own slot, so a read-modify-write in place is identical
      // to getProperty + setProperty.
      Slot *Sl = static_cast<Slot *>(C.Ptr);
      double Delta = (I.Flags & kIncrement) ? 1 : -1;
      double Old = toNumber(Sl->V);
      *Sl = Slot{Value::number(Old + Delta), Det::Determinate, 0};
      S[Top++] = (Value::number((I.Flags & kPrefix) ? Old + Delta : Old));
      VM_NEXT();
    }
    Slot *Own = nullptr;
    EvalResult OldR = getProperty(BaseV, Key, Static ? &Own : nullptr);
    if (OldR.abrupt())
      return Fail(std::move(OldR.C));
    double Delta = (I.Flags & kIncrement) ? 1 : -1;
    double Old = toNumber(OldR.V);
    Slot *Cache = nullptr;
    Completion W = setProperty(BaseV, Key, Value::number(Old + Delta),
                               Static ? &Cache : nullptr);
    if (W.isAbrupt())
      return Fail(std::move(W));
    if (Cache && Cache == Own)
      C = {BaseV.Obj, TheHeap.get(BaseV.Obj).ShapeGen, Cache};
    S[Top++] = (Value::number((I.Flags & kPrefix) ? Old + Delta : Old));
    VM_NEXT();
  }
  VM_CASE(LoadVarCompound) : {
    const Instr &I = Code[IP];
    if (uint32_t Pre = I.B) { // fused pre-ticks
      Completion T;
      do
        if (!tick(T))
          return Fail(std::move(T));
      while (--Pre);
    }
    InlineCache &C = ICs[IP];
    Binding *B;
    if (C.Key == CurrentEnv && C.Gen == Envs.shapeGen()) {
      B = static_cast<Binding *>(C.Ptr);
    } else {
      B = Envs.lookup(CurrentEnv, StringId{I.C});
      if (!B)
        return Fail(RefError(StringId{I.C}));
      C = {CurrentEnv, Envs.shapeGen(), B};
    }
    S[Top++] = (B->V);
    VM_NEXT();
  }
  VM_CASE(StoreVar) : {
    const Instr &I = Code[IP];
    Value NewV = std::move(S[--Top]);
    InlineCache &C = ICs[IP];
    if (C.Key == CurrentEnv && C.Gen == Envs.shapeGen()) {
      static_cast<Binding *>(C.Ptr)->V = NewV;
    } else if (Binding *B = Envs.lookup(CurrentEnv, StringId{I.C})) {
      B->V = NewV;
      C = {CurrentEnv, Envs.shapeGen(), B};
    } else {
      Envs.noteShapeChange(); // New binding in a pre-existing scope.
      Envs.get(GlobalEnv).Vars[StringId{I.C}] =
          Binding{NewV, Det::Determinate};
    }
    S[Top++] = (std::move(NewV));
    VM_NEXT();
  }
  VM_CASE(StoreVarCompound) : {
    const Instr &I = Code[IP];
    Value RHS = std::move(S[--Top]);
    Value Old = std::move(S[--Top]);
    Value NewV;
    if (!applyBinaryOpFast(static_cast<BinaryOp>(I.B), Old, RHS, NewV))
      NewV = applyBinaryOp(static_cast<BinaryOp>(I.B), Old, RHS, TheHeap);
    InlineCache &C = ICs[IP];
    if (C.Key == CurrentEnv && C.Gen == Envs.shapeGen()) {
      static_cast<Binding *>(C.Ptr)->V = NewV;
    } else if (Binding *B = Envs.lookup(CurrentEnv, StringId{I.C})) {
      B->V = NewV;
      C = {CurrentEnv, Envs.shapeGen(), B};
    } else {
      Envs.noteShapeChange(); // New binding in a pre-existing scope.
      Envs.get(GlobalEnv).Vars[StringId{I.C}] =
          Binding{NewV, Det::Determinate};
    }
    S[Top++] = (std::move(NewV));
    VM_NEXT();
  }
  VM_CASE(Unary) : {
    Value V = std::move(S[--Top]);
    switch (static_cast<UnaryOp>(Code[IP].B)) {
    case UnaryOp::Not:
      S[Top++] = (Value::boolean(!toBooleanFast(V)));
      break;
    case UnaryOp::Minus:
      S[Top++] = (Value::number(-toNumber(V)));
      break;
    case UnaryOp::Plus:
      S[Top++] = (Value::number(toNumber(V)));
      break;
    case UnaryOp::Typeof:
      S[Top++] = (Value::string(typeofString(V, TheHeap)));
      break;
    case UnaryOp::Void:
      S[Top++] = (Value::undefined());
      break;
    case UnaryOp::Delete:
      S[Top++] = (Value::boolean(true));
      break;
    }
    VM_NEXT();
  }
  VM_CASE(Binary) : {
    Value RHS = std::move(S[--Top]);
    Value LHS = std::move(S[--Top]);
    BinaryOp Op = static_cast<BinaryOp>(Code[IP].B);
    if (Op == BinaryOp::In) {
      if (!RHS.isObject())
        return Fail(throwTypeError("'in' requires an object"));
      StringId Key = propertyKey(LHS);
      bool Found = false;
      for (ObjectRef O = RHS.Obj; O; O = TheHeap.get(O).Proto)
        if (TheHeap.get(O).has(Key)) {
          Found = true;
          break;
        }
      S[Top++] = (Value::boolean(Found));
      VM_NEXT();
    }
    if (Op == BinaryOp::Instanceof) {
      if (!RHS.isObject())
        return Fail(throwTypeError("'instanceof' requires a function"));
      EvalResult Proto = getProperty(RHS, atoms().Prototype);
      if (Proto.abrupt())
        return Fail(std::move(Proto.C));
      if (!LHS.isObject() || !Proto.V.isObject()) {
        S[Top++] = (Value::boolean(false));
        VM_NEXT();
      }
      bool Found = false;
      for (ObjectRef O = TheHeap.get(LHS.Obj).Proto; O;
           O = TheHeap.get(O).Proto)
        if (O == Proto.V.Obj) {
          Found = true;
          break;
        }
      S[Top++] = (Value::boolean(Found));
      VM_NEXT();
    }
    Value Fast;
    if (applyBinaryOpFast(Op, LHS, RHS, Fast))
      S[Top++] = std::move(Fast);
    else
      S[Top++] = applyBinaryOp(Op, LHS, RHS, TheHeap);
    VM_NEXT();
  }
  VM_CASE(LogicalBranch) : {
    const Instr &I = Code[IP];
    Value LHS = std::move(S[--Top]);
    const BranchInfo &Br = Ch.Branches[I.C];
    bool Truthy = toBooleanFast(LHS);
    if ((I.Flags & kIsAnd) ? !Truthy : Truthy) {
      S[Top++] = (std::move(LHS)); // Short-circuit: the LHS is the value.
      IP = Br.BEnd - 1;            // The increment skips the RHS range.
    }
    // Otherwise fall through into the RHS range; it ends at the
    // continuation (AEnd == BEnd), so no join entry is needed.
    VM_NEXT();
  }
  VM_CASE(CondBranch) : {
    Value Cond = std::move(S[--Top]);
    const BranchInfo &Br = Ch.Branches[Code[IP].C];
    if (toBooleanFast(Cond)) {
      // Fall into the then-range; rejoin past the else-range at its end.
      Joins.emplace_back(Br.AEnd, Br.BEnd);
      NextJoin = Br.AEnd;
    } else {
      IP = Br.BStart - 1; // The increment lands on the else-range.
    }
    VM_NEXT();
  }
  VM_CASE(Invoke) : {
    const Instr &I = Code[IP];
    size_t Argc = I.B;
    std::vector<Value> Args(S.begin() + (Top - Argc), S.begin() + Top);
    Top -= Argc;
    Value Callee = std::move(S[--Top]);
    Value ThisV = Value::undefined();
    if (I.Flags & kMemberCall) {
      ThisV = std::move(S[--Top]);
    }
    // eval is intercepted: it runs in the caller's scope.
    EvalResult R = (Callee.isObject() && Callee.Obj == EvalFn)
                       ? evalEval(Args)
                       : callValue(Callee, ThisV, Args);
    if (R.abrupt())
      return Fail(std::move(R.C));
    S[Top++] = (std::move(R.V));
    VM_NEXT();
  }
  VM_CASE(InvokeNew) : {
    const Instr &I = Code[IP];
    size_t Argc = I.B;
    std::vector<Value> Args(S.begin() + (Top - Argc), S.begin() + Top);
    Top -= Argc;
    Value Fn = std::move(S[--Top]);
    if (!Fn.isObject())
      return Fail(throwTypeError("not a constructor"));
    ObjectClass Class = TheHeap.get(Fn.Obj).Class;
    if (Class == ObjectClass::Native) {
      // `new String(x)` etc. degrade to the plain call.
      NativeFn N = TheHeap.get(Fn.Obj).Native;
      std::vector<TaggedValue> TArgs;
      for (const Value &V : Args)
        TArgs.emplace_back(V);
      NativeResult R =
          callNative(*this, N, TaggedValue(Value::undefined()), TArgs);
      if (R.Threw)
        return Fail(Completion::thrown(R.Thrown));
      S[Top++] = (R.Result.V);
      VM_NEXT();
    }
    if (Class != ObjectClass::Function)
      return Fail(throwTypeError("not a constructor"));
    ObjectRef Fresh = TheHeap.allocate(ObjectClass::Plain, I.ID);
    const Slot *ProtoSlot = TheHeap.get(Fn.Obj).get(atoms().Prototype);
    TheHeap.get(Fresh).Proto = ProtoSlot && ProtoSlot->V.isObject()
                                   ? ProtoSlot->V.Obj
                                   : ObjectProto;
    EvalResult R = callClosure(Fn.Obj, Value::object(Fresh), Args);
    if (R.abrupt())
      return Fail(std::move(R.C));
    // If the constructor returned an object, that wins.
    S[Top++] = (R.V.isObject() ? std::move(R.V) : Value::object(Fresh));
    VM_NEXT();
  }

#if !DDA_THREADED_DISPATCH
  }
  goto L_Top; // Unreachable: every handler ends in VM_NEXT.
#endif

#undef VM_CASE
#undef VM_NEXT
#ifdef VM_DISPATCH
#undef VM_DISPATCH
#endif

L_Done : {
  Value V = std::move(S[--Top]);
  S.resize(Base);
  return EvalResult::value(std::move(V));
}
}
