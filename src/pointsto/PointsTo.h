//===- PointsTo.h - Flow-insensitive pointer analysis for MiniJS -*- C++ -*-==//
///
/// \file
/// A from-scratch subset-based (Andersen-style, 0-CFA) pointer analysis for
/// MiniJS, standing in for the WALA JavaScript analysis the paper builds on
/// [30]. Key behaviors reproduced:
///
///  * on-the-fly call graph: function bodies are analyzed when they first
///    become call targets;
///  * field sensitivity with an unknown-field (★) fallback: a property
///    access whose name is not a literal smears across *all* properties of
///    the receiver — the precision cliff that determinacy-driven
///    specialization repairs (paper Section 2.2);
///  * prototype-chain field propagation for `new`/method lookup;
///  * a propagation budget standing in for the paper's 10-minute timeout:
///    exceeding it reports "did not complete" (the ✗ entries of Table 1).
///
/// The analysis is purely static: it never executes the program. Run it on
/// the original program for the Baseline configuration, or on the
/// specializer's residual program for the Spec configurations.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_POINTSTO_POINTSTO_H
#define DDA_POINTSTO_POINTSTO_H

#include "ast/ASTContext.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace dda {

/// Analysis knobs.
struct PointsToOptions {
  /// Propagation-step budget; exceeding it emulates the paper's timeout.
  uint64_t MaxPropagationSteps = 3'000'000;
  /// Treat addEventListener callbacks as reachable (the paper's event
  /// handlers keep jQuery-1.3-style code live even without client code).
  bool ModelEventHandlers = true;
};

/// Result of a pointer-analysis run.
struct PointsToResult {
  /// False when the step budget was exhausted (a Table 1 "✗").
  bool Completed = false;
  uint64_t PropagationSteps = 0;

  size_t NumAbstractObjects = 0;
  size_t NumConstraintVars = 0;
  size_t NumCopyEdges = 0;
  size_t ReachableFunctions = 0;

  /// Total and average points-to set size over non-empty variables.
  uint64_t TotalPointsToSize = 0;
  double AvgPointsToSize = 0;

  /// Call graph: call/new expression → targets. User functions appear as
  /// their FunctionExpr NodeID; natives as 0-valued entries are omitted.
  std::map<NodeID, std::set<NodeID>> CallTargets;
  size_t CallGraphEdges = 0;
  size_t PolymorphicCallSites = 0;
  double AvgCallTargets = 0;

  /// Call sites whose points-to set contains the `eval` native (used by the
  /// eval-elimination client: rewriting is only sound when eval is the only
  /// possible target).
  std::set<NodeID> EvalOnlyCallSites;
  std::set<NodeID> EvalMaybeCallSites;
};

/// Runs the analysis on \p P.
PointsToResult runPointsToAnalysis(const Program &P,
                                   const PointsToOptions &Opts = {});

} // namespace dda

#endif // DDA_POINTSTO_POINTSTO_H
