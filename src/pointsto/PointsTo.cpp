//===- PointsTo.cpp -------------------------------------------------------==//

#include "pointsto/PointsTo.h"

#include "ast/ASTWalk.h"
#include "interp/Builtins.h"

#include <cassert>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>

using namespace dda;

namespace {

using AbsObj = uint32_t;
using VarID = uint32_t;
using FieldID = uint32_t;

/// Grow-on-demand bitset over abstract objects.
class Bits {
public:
  bool test(AbsObj O) const {
    size_t W = O >> 6;
    return W < Words.size() && (Words[W] >> (O & 63)) & 1;
  }
  bool set(AbsObj O) {
    size_t W = O >> 6;
    if (W >= Words.size())
      Words.resize(W + 1, 0);
    uint64_t Mask = 1ULL << (O & 63);
    if (Words[W] & Mask)
      return false;
    Words[W] |= Mask;
    ++Count;
    return true;
  }
  size_t count() const { return Count; }
  bool empty() const { return Count == 0; }

  template <typename Fn> void forEach(Fn F) const {
    for (size_t W = 0; W < Words.size(); ++W) {
      uint64_t Bits = Words[W];
      while (Bits) {
        unsigned B = __builtin_ctzll(Bits);
        F(static_cast<AbsObj>((W << 6) + B));
        Bits &= Bits - 1;
      }
    }
  }

private:
  std::vector<uint64_t> Words;
  size_t Count = 0;
};

/// What an abstract object denotes.
struct AbstractObject {
  enum Kind : uint8_t {
    FunctionObj, ///< Closure of a syntactic function (0-CFA merge).
    ProtoObj,    ///< The implicit F.prototype object.
    SiteObj,     ///< Object/array literal or new-expression allocation site.
    NativeObj,   ///< A builtin function.
    Singleton,   ///< window / document / Math / string-prim / ...
  } K;
  const FunctionExpr *Fn = nullptr;
  NodeID Site = 0;
  NativeFn Native = NativeFn::None;
  const char *Name = "";
};

struct Analysis {
  const Program &Prog;
  const PointsToOptions &Opts;
  PointsToResult Result;

  // --- Abstract object universe (pre-enumerated) -------------------------
  std::vector<AbstractObject> Objects;
  std::unordered_map<const FunctionExpr *, AbsObj> FunctionObjs;
  std::unordered_map<const FunctionExpr *, AbsObj> ProtoObjs;
  std::unordered_map<NodeID, AbsObj> SiteObjs;
  std::unordered_map<uint16_t, AbsObj> NativeObjs;
  AbsObj WindowObj = 0, DocumentObj = 0, DomElementObj = 0, MathObj = 0,
         ConsoleObj = 0, ObjectCtorObj = 0, ArrayCtorObj = 0,
         StringProtoObj = 0, ArrayProtoObj = 0, ObjectProtoObj = 0,
         NativeArrayObj = 0, StringPrimObj = 0;

  // --- Constraint variables ------------------------------------------------
  std::vector<Bits> PointsTo;
  std::vector<Bits> Processed;
  std::vector<std::vector<VarID>> Succ;

  std::unordered_map<NodeID, VarID> ExprVars;
  // Locals keyed by (function | null, name).
  std::unordered_map<const FunctionExpr *,
                     std::unordered_map<std::string, VarID>>
      LocalVars;
  std::unordered_map<const FunctionExpr *, VarID> RetVars;
  std::unordered_map<const FunctionExpr *, VarID> ThisVars;
  std::unordered_map<uint64_t, VarID> FieldVars; // (AbsObj<<20 | FieldID)
  VarID ThrownVar = 0;

  // --- Field names -----------------------------------------------------------
  static constexpr FieldID StarField = 0;
  static constexpr FieldID ProtoField = 1;
  std::unordered_map<std::string, FieldID> FieldIDs;
  std::vector<std::pair<FieldID, VarID>> FieldsOfTmp;
  // Per object: created (field, var) pairs and pending load-all sinks.
  std::unordered_map<AbsObj, std::vector<std::pair<FieldID, VarID>>> ObjFields;
  std::unordered_map<AbsObj, std::vector<VarID>> LoadAllSinks;

  // --- Deferred constraints ("triggers") -------------------------------------
  struct Trigger {
    enum Kind : uint8_t { Load, LoadAll, Store, StoreStar, Call } K;
    FieldID Field = 0;
    VarID Other = 0;        ///< dst for loads, src for stores.
    // Call payload:
    NodeID CallNode = 0;
    std::vector<VarID> Args;
    VarID Result = 0;
    VarID Receiver = 0; ///< 0 = none.
    bool IsNew = false;
  };
  std::vector<std::vector<Trigger>> Triggers;
  std::vector<std::unordered_set<uint64_t>> TriggerKeys;

  // --- Scope information ------------------------------------------------------
  std::unordered_map<const FunctionExpr *, const FunctionExpr *> ParentFn;
  std::unordered_map<const FunctionExpr *,
                     std::unordered_set<std::string>>
      DeclaredNames;
  std::unordered_set<const FunctionExpr *> Generated;
  std::unordered_map<NodeID, VarID> CallSiteCalleeVar;

  std::deque<VarID> Worklist;
  std::vector<bool> InWorklist;
  uint64_t Steps = 0;
  bool Budget = true;

  Analysis(const Program &P, const PointsToOptions &O) : Prog(P), Opts(O) {
    FieldIDs["*"] = StarField;
    FieldIDs["__proto__"] = ProtoField;
  }

  // ---------------------------------------------------------------- setup --

  AbsObj makeObject(AbstractObject O) {
    Objects.push_back(O);
    return static_cast<AbsObj>(Objects.size() - 1);
  }

  FieldID fieldID(const std::string &Name) {
    auto It = FieldIDs.find(Name);
    if (It != FieldIDs.end())
      return It->second;
    FieldID ID = static_cast<FieldID>(FieldIDs.size());
    FieldIDs.emplace(Name, ID);
    return ID;
  }

  VarID makeVar() {
    PointsTo.emplace_back();
    Processed.emplace_back();
    Succ.emplace_back();
    Triggers.emplace_back();
    TriggerKeys.emplace_back();
    InWorklist.push_back(false);
    return static_cast<VarID>(PointsTo.size() - 1);
  }

  VarID exprVar(const Expr *E) {
    auto It = ExprVars.find(E->getID());
    if (It != ExprVars.end())
      return It->second;
    VarID V = makeVar();
    ExprVars.emplace(E->getID(), V);
    return V;
  }

  VarID localVar(const FunctionExpr *Fn, const std::string &Name) {
    auto &Map = LocalVars[Fn];
    auto It = Map.find(Name);
    if (It != Map.end())
      return It->second;
    VarID V = makeVar();
    Map.emplace(Name, V);
    return V;
  }

  VarID retVar(const FunctionExpr *Fn) {
    auto It = RetVars.find(Fn);
    if (It != RetVars.end())
      return It->second;
    VarID V = makeVar();
    RetVars.emplace(Fn, V);
    return V;
  }

  VarID thisVar(const FunctionExpr *Fn) {
    auto It = ThisVars.find(Fn);
    if (It != ThisVars.end())
      return It->second;
    VarID V = makeVar();
    ThisVars.emplace(Fn, V);
    return V;
  }

  VarID fieldVar(AbsObj O, FieldID F) {
    uint64_t Key = (static_cast<uint64_t>(O) << 24) | F;
    auto It = FieldVars.find(Key);
    if (It != FieldVars.end())
      return It->second;
    VarID V = makeVar();
    FieldVars.emplace(Key, V);
    ObjFields[O].emplace_back(F, V);
    // Late wiring: an unknown-name load registered earlier must see this
    // newly materialized field.
    if (F != ProtoField) {
      auto SinkIt = LoadAllSinks.find(O);
      if (SinkIt != LoadAllSinks.end())
        for (VarID Dst : SinkIt->second)
          addEdge(V, Dst);
    }
    return V;
  }

  /// Resolves an identifier lexically from function \p Fn outward; names not
  /// declared anywhere become globals (sloppy mode).
  VarID resolveVar(const FunctionExpr *Fn, const std::string &Name) {
    for (const FunctionExpr *F = Fn; F; F = ParentFn[F]) {
      auto It = DeclaredNames.find(F);
      if (It != DeclaredNames.end() && It->second.count(Name))
        return localVar(F, Name);
    }
    return localVar(nullptr, Name);
  }

  // ------------------------------------------------------------ solving --

  void enqueue(VarID V) {
    if (!InWorklist[V]) {
      InWorklist[V] = true;
      Worklist.push_back(V);
    }
  }

  void addObj(VarID V, AbsObj O) {
    if (!Budget)
      return;
    if (PointsTo[V].set(O)) {
      if (++Steps > Opts.MaxPropagationSteps)
        Budget = false;
      enqueue(V);
    }
  }

  void addEdge(VarID From, VarID To) {
    if (From == To)
      return;
    // Linear duplicate check is fine: fan-out is modest per variable.
    for (VarID S : Succ[From])
      if (S == To)
        return;
    Succ[From].push_back(To);
    ++Result.NumCopyEdges;
    PointsTo[From].forEach([&](AbsObj O) { addObj(To, O); });
  }

  uint64_t triggerKey(const Trigger &T) const {
    uint64_t H = static_cast<uint64_t>(T.K);
    H = H * 1000003 + T.Field;
    H = H * 1000003 + T.Other;
    H = H * 1000003 + T.CallNode;
    H = H * 1000003 + T.Result;
    return H;
  }

  void addTrigger(VarID V, Trigger T) {
    uint64_t Key = triggerKey(T);
    if (!TriggerKeys[V].insert(Key).second)
      return;
    // Apply to already-known objects, then store for future ones. Work on a
    // copy: applyTrigger may grow Triggers[V] and invalidate references.
    Bits Snapshot = PointsTo[V];
    Triggers[V].push_back(T);
    Snapshot.forEach([&](AbsObj O) { applyTrigger(T, O); });
  }

  void applyTrigger(const Trigger &T, AbsObj O) {
    if (!Budget)
      return;
    switch (T.K) {
    case Trigger::Load: {
      addEdge(fieldVar(O, T.Field), T.Other);
      addEdge(fieldVar(O, StarField), T.Other);
      // Prototype chain: the same load applies to whatever __proto__ holds.
      Trigger PL = T;
      addTrigger(fieldVar(O, ProtoField), PL);
      break;
    }
    case Trigger::LoadAll: {
      for (const auto &[F, V] : ObjFields[O])
        if (F != ProtoField)
          addEdge(V, T.Other);
      LoadAllSinks[O].push_back(T.Other);
      addEdge(fieldVar(O, StarField), T.Other);
      Trigger PL = T;
      addTrigger(fieldVar(O, ProtoField), PL);
      break;
    }
    case Trigger::Store:
      addEdge(T.Other, fieldVar(O, T.Field));
      break;
    case Trigger::StoreStar:
      addEdge(T.Other, fieldVar(O, StarField));
      break;
    case Trigger::Call:
      applyCall(T, O);
      break;
    }
  }

  void applyCall(const Trigger &T, AbsObj O) {
    const AbstractObject &AO = Objects[O];
    if (AO.K == AbstractObject::FunctionObj) {
      const FunctionExpr *F = AO.Fn;
      if (T.CallNode)
        Result.CallTargets[T.CallNode].insert(F->getID());
      generateFunction(F);
      // Parameters.
      for (size_t I = 0; I < F->getParams().size(); ++I)
        if (I < T.Args.size())
          addEdge(T.Args[I], localVar(F, F->getParams()[I]));
      // Return value.
      addEdge(retVar(F), T.Result);
      // this-binding.
      if (T.IsNew) {
        AbsObj NewObj = SiteObjs.at(T.CallNode);
        addObj(thisVar(F), NewObj);
        addObj(T.Result, NewObj);
        // newObj.__proto__ ⊇ F.prototype.
        addEdge(fieldVar(FunctionObjs.at(F), fieldID("prototype")),
                fieldVar(NewObj, ProtoField));
      } else if (T.Receiver) {
        addEdge(T.Receiver, thisVar(F));
      }
      return;
    }
    if (AO.K != AbstractObject::NativeObj)
      return;
    // Native models.
    switch (AO.Native) {
    case NativeFn::Eval:
      // Recorded post-hoc via CallSiteCalleeVar.
      break;
    case NativeFn::ObjKeys:
    case NativeFn::StrSplit:
      addObj(T.Result, NativeArrayObj);
      break;
    case NativeFn::ArrPush:
      // Arguments flow into the receiver's merged element field.
      if (T.Receiver)
        for (VarID Arg : T.Args) {
          Trigger St;
          St.K = Trigger::StoreStar;
          St.Other = Arg;
          addTrigger(T.Receiver, St);
        }
      break;
    case NativeFn::ArrPop:
    case NativeFn::ArrShift:
      // Result drawn from the receiver's elements.
      if (T.Receiver) {
        Trigger Ld;
        Ld.K = Trigger::Load;
        Ld.Field = StarField;
        Ld.Other = T.Result;
        addTrigger(T.Receiver, Ld);
      }
      break;
    case NativeFn::ArrSlice:
    case NativeFn::ArrConcat: {
      addObj(T.Result, NativeArrayObj);
      // Elements flow from the receiver (and, for concat, arguments) into
      // the merged native-array element field.
      VarID ElemField = fieldVar(NativeArrayObj, StarField);
      if (T.Receiver) {
        Trigger Ld;
        Ld.K = Trigger::Load;
        Ld.Field = StarField;
        Ld.Other = ElemField;
        addTrigger(T.Receiver, Ld);
      }
      for (VarID Arg : T.Args) {
        // Array arguments contribute their elements; scalars flow directly.
        Trigger Ld;
        Ld.K = Trigger::Load;
        Ld.Field = StarField;
        Ld.Other = ElemField;
        addTrigger(Arg, Ld);
        addEdge(Arg, ElemField);
      }
      break;
    }
    case NativeFn::DomGetElementById:
    case NativeFn::DomCreateElement:
      addObj(T.Result, DomElementObj);
      break;
    case NativeFn::DomAddEventListener:
      if (Opts.ModelEventHandlers && T.Args.size() >= 2) {
        Trigger HandlerCall;
        HandlerCall.K = Trigger::Call;
        HandlerCall.CallNode = T.CallNode;
        HandlerCall.Result = makeVar();
        HandlerCall.Receiver = makeVar();
        addObj(HandlerCall.Receiver, DocumentObj);
        addTrigger(T.Args[1], HandlerCall);
      }
      break;
    case NativeFn::StringCtor:
    case NativeFn::StrCharAt:
    case NativeFn::StrToUpperCase:
    case NativeFn::StrToLowerCase:
    case NativeFn::StrSubstr:
    case NativeFn::StrSubstring:
    case NativeFn::StrSlice:
    case NativeFn::StrConcat:
    case NativeFn::StrReplace:
      addObj(T.Result, StringPrimObj);
      break;
    default:
      break;
    }
  }

  // ----------------------------------------------------------- pre-pass --

  void collectDeclared(const FunctionExpr *Fn, const Stmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case NodeKind::VarDeclStmt:
      for (const auto &D : cast<VarDeclStmt>(S)->getDeclarators())
        DeclaredNames[Fn].insert(D.Name);
      return;
    case NodeKind::FunctionDeclStmt:
      DeclaredNames[Fn].insert(
          cast<FunctionDeclStmt>(S)->getFunction()->getName());
      return;
    case NodeKind::ForInStmt:
      if (cast<ForInStmt>(S)->declaresVar())
        DeclaredNames[Fn].insert(cast<ForInStmt>(S)->getVar());
      break;
    case NodeKind::TryStmt:
      if (!cast<TryStmt>(S)->getCatchParam().empty())
        DeclaredNames[Fn].insert(cast<TryStmt>(S)->getCatchParam());
      break;
    case NodeKind::SwitchStmt:
      break; // Clauses handled via child traversal below.
    default:
      break;
    }
    forEachChild(S, [&](const Node *Child) {
      if (isa<FunctionExpr>(Child))
        return; // Nested functions have their own scope.
      if (const auto *CS = dyn_cast<Stmt>(Child))
        collectDeclared(Fn, CS);
      else
        collectDeclaredExpr(Fn, cast<Expr>(Child));
    });
  }

  void collectDeclaredExpr(const FunctionExpr *Fn, const Expr *E) {
    forEachChild(E, [&](const Node *Child) {
      if (isa<FunctionExpr>(Child))
        return;
      if (const auto *CS = dyn_cast<Stmt>(Child))
        collectDeclared(Fn, CS);
      else
        collectDeclaredExpr(Fn, cast<Expr>(Child));
    });
  }

  void prePass() {
    // Enumerate the abstract-object universe and scope structure.
    std::vector<const FunctionExpr *> Stack;
    std::function<void(const Node *, const FunctionExpr *)> Walk =
        [&](const Node *N, const FunctionExpr *Enclosing) {
          if (const auto *F = dyn_cast<FunctionExpr>(N)) {
            ParentFn[F] = Enclosing;
            FunctionObjs[F] = makeObject(
                {AbstractObject::FunctionObj, F, F->getID(), NativeFn::None,
                 F->getName().empty() ? "<anon>" : F->getName().c_str()});
            ProtoObjs[F] = makeObject(
                {AbstractObject::ProtoObj, F, F->getID(), NativeFn::None,
                 "proto"});
            for (const std::string &P : F->getParams())
              DeclaredNames[F].insert(P);
            if (!F->getName().empty())
              DeclaredNames[F].insert(F->getName());
            collectDeclared(F, F->getBody());
            forEachChild(F->getBody(),
                         [&](const Node *C) { Walk(C, F); });
            return;
          }
          if (isa<ObjectLiteral>(N) || isa<ArrayLiteral>(N) ||
              isa<NewExpr>(N))
            SiteObjs[N->getID()] =
                makeObject({AbstractObject::SiteObj, nullptr, N->getID(),
                            NativeFn::None, "site"});
          forEachChild(N, [&](const Node *C) { Walk(C, Enclosing); });
        };

    // Reserve object 0 as invalid.
    makeObject({AbstractObject::Singleton, nullptr, 0, NativeFn::None,
                "<invalid>"});
    for (const Stmt *S : Prog.Body) {
      collectDeclared(nullptr, S);
      Walk(S, nullptr);
    }

    auto MakeSingleton = [&](const char *Name) {
      return makeObject(
          {AbstractObject::Singleton, nullptr, 0, NativeFn::None, Name});
    };
    WindowObj = MakeSingleton("window");
    DocumentObj = MakeSingleton("document");
    DomElementObj = MakeSingleton("dom-element");
    MathObj = MakeSingleton("Math");
    ConsoleObj = MakeSingleton("console");
    ObjectCtorObj = MakeSingleton("Object");
    ArrayCtorObj = MakeSingleton("Array");
    StringProtoObj = MakeSingleton("String.prototype");
    ArrayProtoObj = MakeSingleton("Array.prototype");
    ObjectProtoObj = MakeSingleton("Object.prototype");
    NativeArrayObj = MakeSingleton("native-array");
    StringPrimObj = MakeSingleton("string-prim");
  }

  AbsObj nativeObj(NativeFn Fn) {
    auto Key = static_cast<uint16_t>(Fn);
    auto It = NativeObjs.find(Key);
    if (It != NativeObjs.end())
      return It->second;
    AbsObj O = makeObject({AbstractObject::NativeObj, nullptr, 0, Fn,
                           nativeInfo(Fn).Name});
    NativeObjs.emplace(Key, O);
    return O;
  }

  void seedGlobals() {
    auto Global = [&](const char *Name, AbsObj O) {
      addObj(localVar(nullptr, Name), O);
    };
    auto Field = [&](AbsObj O, const char *Name, AbsObj V) {
      addObj(fieldVar(O, fieldID(Name)), V);
    };

    Global("window", WindowObj);
    Global("document", DocumentObj);
    Global("Math", MathObj);
    Global("console", ConsoleObj);
    Global("Object", ObjectCtorObj);
    Global("Array", ArrayCtorObj);
    Global("alert", nativeObj(NativeFn::Print));
    Global("print", nativeObj(NativeFn::Print));
    Global("parseInt", nativeObj(NativeFn::ParseInt));
    Global("parseFloat", nativeObj(NativeFn::ParseFloat));
    Global("isNaN", nativeObj(NativeFn::IsNaN));
    Global("String", nativeObj(NativeFn::StringCtor));
    Global("Number", nativeObj(NativeFn::NumberCtor));
    Global("Boolean", nativeObj(NativeFn::BooleanCtor));
    Global("eval", nativeObj(NativeFn::Eval));

    Field(WindowObj, "document", DocumentObj);
    Field(WindowObj, "addEventListener",
          nativeObj(NativeFn::DomAddEventListener));
    Field(DocumentObj, "getElementById",
          nativeObj(NativeFn::DomGetElementById));
    Field(DocumentObj, "createElement",
          nativeObj(NativeFn::DomCreateElement));
    Field(DocumentObj, "write", nativeObj(NativeFn::DomWrite));
    Field(DocumentObj, "addEventListener",
          nativeObj(NativeFn::DomAddEventListener));
    Field(DomElementObj, "getAttribute", nativeObj(NativeFn::DomGetAttribute));
    Field(DomElementObj, "setAttribute", nativeObj(NativeFn::DomSetAttribute));
    Field(DomElementObj, "appendChild", nativeObj(NativeFn::DomAppendChild));
    Field(DomElementObj, "addEventListener",
          nativeObj(NativeFn::DomAddEventListener));

    Field(MathObj, "random", nativeObj(NativeFn::MathRandom));
    Field(MathObj, "floor", nativeObj(NativeFn::MathFloor));
    Field(MathObj, "ceil", nativeObj(NativeFn::MathCeil));
    Field(MathObj, "round", nativeObj(NativeFn::MathRound));
    Field(MathObj, "abs", nativeObj(NativeFn::MathAbs));
    Field(MathObj, "max", nativeObj(NativeFn::MathMax));
    Field(MathObj, "min", nativeObj(NativeFn::MathMin));
    Field(MathObj, "pow", nativeObj(NativeFn::MathPow));
    Field(MathObj, "sqrt", nativeObj(NativeFn::MathSqrt));
    Field(ConsoleObj, "log", nativeObj(NativeFn::Print));

    Field(ObjectCtorObj, "keys", nativeObj(NativeFn::ObjKeys));
    Field(ObjectCtorObj, "prototype", ObjectProtoObj);
    Field(ArrayCtorObj, "prototype", ArrayProtoObj);
    Field(nativeObj(NativeFn::StringCtor), "prototype", StringProtoObj);

    Field(ObjectProtoObj, "hasOwnProperty",
          nativeObj(NativeFn::ObjHasOwnProperty));
    auto StrMethod = [&](const char *Name, NativeFn Fn) {
      Field(StringProtoObj, Name, nativeObj(Fn));
    };
    StrMethod("charAt", NativeFn::StrCharAt);
    StrMethod("charCodeAt", NativeFn::StrCharCodeAt);
    StrMethod("toUpperCase", NativeFn::StrToUpperCase);
    StrMethod("toLowerCase", NativeFn::StrToLowerCase);
    StrMethod("substr", NativeFn::StrSubstr);
    StrMethod("substring", NativeFn::StrSubstring);
    StrMethod("indexOf", NativeFn::StrIndexOf);
    StrMethod("slice", NativeFn::StrSlice);
    StrMethod("split", NativeFn::StrSplit);
    StrMethod("concat", NativeFn::StrConcat);
    StrMethod("replace", NativeFn::StrReplace);
    auto ArrMethod = [&](const char *Name, NativeFn Fn) {
      Field(ArrayProtoObj, Name, nativeObj(Fn));
    };
    ArrMethod("push", NativeFn::ArrPush);
    ArrMethod("pop", NativeFn::ArrPop);
    ArrMethod("shift", NativeFn::ArrShift);
    ArrMethod("join", NativeFn::ArrJoin);
    ArrMethod("indexOf", NativeFn::ArrIndexOf);
    ArrMethod("slice", NativeFn::ArrSlice);
    ArrMethod("concat", NativeFn::ArrConcat);

    // Primitive strings and native arrays delegate to their prototypes.
    addObj(fieldVar(StringPrimObj, ProtoField), StringProtoObj);
    addObj(fieldVar(NativeArrayObj, ProtoField), ArrayProtoObj);
    addObj(fieldVar(DomElementObj, ProtoField), ObjectProtoObj);

    ThrownVar = makeVar();
  }

  // ------------------------------------------------- constraint generation --

  /// Generates constraints for a function body once, when it becomes a call
  /// target (on-the-fly call graph).
  void generateFunction(const FunctionExpr *F) {
    if (!Generated.insert(F).second)
      return;
    ++Result.ReachableFunctions;
    if (!F->getName().empty())
      addObj(localVar(F, F->getName()), FunctionObjs.at(F));
    genStmt(F, F->getBody());
  }

  void genStmt(const FunctionExpr *Fn, const Stmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case NodeKind::ExpressionStmt:
      genExpr(Fn, cast<ExpressionStmt>(S)->getExpr());
      return;
    case NodeKind::VarDeclStmt:
      for (const auto &D : cast<VarDeclStmt>(S)->getDeclarators())
        if (D.Init) {
          VarID V = genExpr(Fn, D.Init);
          addEdge(V, resolveVar(Fn, D.Name));
        }
      return;
    case NodeKind::FunctionDeclStmt: {
      const FunctionExpr *F = cast<FunctionDeclStmt>(S)->getFunction();
      seedFunctionObject(F);
      addObj(resolveVar(Fn, F->getName()), FunctionObjs.at(F));
      return;
    }
    case NodeKind::BlockStmt:
      for (const Stmt *Child : cast<BlockStmt>(S)->getBody())
        genStmt(Fn, Child);
      return;
    case NodeKind::IfStmt: {
      const auto *If = cast<IfStmt>(S);
      genExpr(Fn, If->getCond());
      genStmt(Fn, If->getThen());
      genStmt(Fn, If->getElse());
      return;
    }
    case NodeKind::WhileStmt:
      genExpr(Fn, cast<WhileStmt>(S)->getCond());
      genStmt(Fn, cast<WhileStmt>(S)->getBody());
      return;
    case NodeKind::DoWhileStmt:
      genStmt(Fn, cast<DoWhileStmt>(S)->getBody());
      genExpr(Fn, cast<DoWhileStmt>(S)->getCond());
      return;
    case NodeKind::ForStmt: {
      const auto *F = cast<ForStmt>(S);
      genStmt(Fn, F->getInit());
      if (F->getCond())
        genExpr(Fn, F->getCond());
      if (F->getUpdate())
        genExpr(Fn, F->getUpdate());
      genStmt(Fn, F->getBody());
      return;
    }
    case NodeKind::ForInStmt: {
      const auto *F = cast<ForInStmt>(S);
      genExpr(Fn, F->getObject());
      addObj(resolveVar(Fn, F->getVar()), StringPrimObj);
      genStmt(Fn, F->getBody());
      return;
    }
    case NodeKind::ReturnStmt:
      if (const Expr *A = cast<ReturnStmt>(S)->getArg()) {
        VarID V = genExpr(Fn, A);
        if (Fn)
          addEdge(V, retVar(Fn));
      }
      return;
    case NodeKind::ThrowStmt:
      addEdge(genExpr(Fn, cast<ThrowStmt>(S)->getArg()), ThrownVar);
      return;
    case NodeKind::TryStmt: {
      const auto *T = cast<TryStmt>(S);
      genStmt(Fn, T->getBlock());
      if (T->getCatchBlock()) {
        if (!T->getCatchParam().empty())
          addEdge(ThrownVar, resolveVar(Fn, T->getCatchParam()));
        genStmt(Fn, T->getCatchBlock());
      }
      genStmt(Fn, T->getFinallyBlock());
      return;
    }
    case NodeKind::SwitchStmt: {
      const auto *Sw = cast<SwitchStmt>(S);
      genExpr(Fn, Sw->getDisc());
      for (const auto &Clause : Sw->getClauses()) {
        if (Clause.Test)
          genExpr(Fn, Clause.Test);
        for (const Stmt *Child : Clause.Body)
          genStmt(Fn, Child);
      }
      return;
    }
    default:
      return;
    }
  }

  void seedFunctionObject(const FunctionExpr *F) {
    AbsObj FO = FunctionObjs.at(F);
    AbsObj PO = ProtoObjs.at(F);
    addObj(fieldVar(FO, fieldID("prototype")), PO);
    addObj(fieldVar(PO, fieldID("constructor")), FO);
    addObj(fieldVar(PO, ProtoField), ObjectProtoObj);
  }

  /// Returns the constraint variable holding the expression's value.
  VarID genExpr(const FunctionExpr *Fn, const Expr *E) {
    VarID Out = exprVar(E);
    switch (E->getKind()) {
    case NodeKind::NumberLiteral:
    case NodeKind::BooleanLiteral:
    case NodeKind::NullLiteral:
    case NodeKind::UndefinedLiteral:
      return Out;
    case NodeKind::StringLiteral:
      addObj(Out, StringPrimObj);
      return Out;
    case NodeKind::Identifier:
      addEdge(resolveVar(Fn, cast<Identifier>(E)->getName()), Out);
      return Out;
    case NodeKind::This:
      if (Fn)
        addEdge(thisVar(Fn), Out);
      else
        addObj(Out, WindowObj);
      return Out;
    case NodeKind::ArrayLiteral: {
      AbsObj O = SiteObjs.at(E->getID());
      addObj(Out, O);
      addObj(fieldVar(O, ProtoField), ArrayProtoObj);
      for (const Expr *Elem : cast<ArrayLiteral>(E)->getElements())
        addEdge(genExpr(Fn, Elem), fieldVar(O, StarField));
      return Out;
    }
    case NodeKind::ObjectLiteral: {
      AbsObj O = SiteObjs.at(E->getID());
      addObj(Out, O);
      addObj(fieldVar(O, ProtoField), ObjectProtoObj);
      for (const auto &P : cast<ObjectLiteral>(E)->getProperties())
        addEdge(genExpr(Fn, P.Value), fieldVar(O, fieldID(P.Key)));
      return Out;
    }
    case NodeKind::Function: {
      const auto *F = cast<FunctionExpr>(E);
      seedFunctionObject(F);
      addObj(Out, FunctionObjs.at(F));
      return Out;
    }
    case NodeKind::Member: {
      const auto *M = cast<MemberExpr>(E);
      VarID Base = genExpr(Fn, M->getObject());
      genLoad(Fn, M, Base, Out);
      return Out;
    }
    case NodeKind::Call:
    case NodeKind::New:
      genCall(Fn, E, Out);
      return Out;
    case NodeKind::Unary:
      genExpr(Fn, cast<UnaryExpr>(E)->getOperand());
      return Out;
    case NodeKind::Update:
      genExpr(Fn, cast<UpdateExpr>(E)->getOperand());
      return Out;
    case NodeKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      genExpr(Fn, B->getLHS());
      genExpr(Fn, B->getRHS());
      // `+` may concatenate strings.
      if (B->getOp() == BinaryOp::Add)
        addObj(Out, StringPrimObj);
      return Out;
    }
    case NodeKind::Logical: {
      const auto *L = cast<LogicalExpr>(E);
      addEdge(genExpr(Fn, L->getLHS()), Out);
      addEdge(genExpr(Fn, L->getRHS()), Out);
      return Out;
    }
    case NodeKind::Assign: {
      const auto *A = cast<AssignExpr>(E);
      VarID V = genExpr(Fn, A->getValue());
      if (const auto *Id = dyn_cast<Identifier>(A->getTarget())) {
        addEdge(V, resolveVar(Fn, Id->getName()));
      } else {
        const auto *M = cast<MemberExpr>(A->getTarget());
        VarID Base = genExpr(Fn, M->getObject());
        genStore(Fn, M, Base, V);
      }
      addEdge(V, Out);
      return Out;
    }
    case NodeKind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      genExpr(Fn, C->getCond());
      addEdge(genExpr(Fn, C->getThen()), Out);
      addEdge(genExpr(Fn, C->getElse()), Out);
      return Out;
    }
    default:
      return Out;
    }
  }

  /// Static field name if the access is non-computed or uses a string
  /// literal index; empty optional = unknown (★).
  static const std::string *staticFieldName(const MemberExpr *M) {
    if (!M->isComputed())
      return &M->getProperty();
    if (const auto *S = dyn_cast<StringLiteral>(M->getIndex()))
      return &S->getValue();
    return nullptr;
  }

  void genLoad(const FunctionExpr *Fn, const MemberExpr *M, VarID Base,
               VarID Dst) {
    if (M->isComputed() && !isa<StringLiteral>(M->getIndex()))
      genExpr(Fn, M->getIndex());
    Trigger T;
    if (const std::string *Name = staticFieldName(M)) {
      T.K = Trigger::Load;
      T.Field = fieldID(*Name);
    } else {
      T.K = Trigger::LoadAll;
    }
    T.Other = Dst;
    addTrigger(Base, T);
  }

  void genStore(const FunctionExpr *Fn, const MemberExpr *M, VarID Base,
                VarID Src) {
    if (M->isComputed() && !isa<StringLiteral>(M->getIndex()))
      genExpr(Fn, M->getIndex());
    Trigger T;
    if (const std::string *Name = staticFieldName(M)) {
      T.K = Trigger::Store;
      T.Field = fieldID(*Name);
    } else {
      T.K = Trigger::StoreStar;
    }
    T.Other = Src;
    addTrigger(Base, T);
  }

  void genCall(const FunctionExpr *Fn, const Expr *E, VarID Out) {
    bool IsNew = isa<NewExpr>(E);
    const Expr *CalleeE =
        IsNew ? cast<NewExpr>(E)->getCallee() : cast<CallExpr>(E)->getCallee();
    const std::vector<Expr *> &Args =
        IsNew ? cast<NewExpr>(E)->getArgs() : cast<CallExpr>(E)->getArgs();

    Trigger T;
    T.K = Trigger::Call;
    T.CallNode = E->getID();
    T.Result = Out;
    T.IsNew = IsNew;

    VarID CalleeV;
    if (const auto *M = dyn_cast<MemberExpr>(CalleeE)) {
      VarID Base = genExpr(Fn, M->getObject());
      CalleeV = exprVar(CalleeE);
      genLoad(Fn, M, Base, CalleeV);
      T.Receiver = Base;
    } else {
      CalleeV = genExpr(Fn, CalleeE);
    }
    for (const Expr *A : Args)
      T.Args.push_back(genExpr(Fn, A));
    CallSiteCalleeVar[E->getID()] = CalleeV;
    addTrigger(CalleeV, T);
  }

  // ---------------------------------------------------------------- solve --

  void solve() {
    while (!Worklist.empty() && Budget) {
      VarID V = Worklist.front();
      Worklist.pop_front();
      InWorklist[V] = false;

      // New objects since last processing.
      std::vector<AbsObj> Delta;
      PointsTo[V].forEach([&](AbsObj O) {
        if (Processed[V].set(O))
          Delta.push_back(O);
      });
      for (AbsObj O : Delta) {
        // Triggers may grow (and reallocate) while we iterate; index loop
        // over a by-value copy of each entry.
        for (size_t I = 0; I < Triggers[V].size() && Budget; ++I) {
          Trigger T = Triggers[V][I];
          applyTrigger(T, O);
        }
      }
      // Copy edges.
      for (VarID S : Succ[V])
        PointsTo[V].forEach([&](AbsObj O) { addObj(S, O); });
    }
  }

  void finalize() {
    Result.Completed = Budget;
    Result.PropagationSteps = Steps;
    Result.NumAbstractObjects = Objects.size();
    Result.NumConstraintVars = PointsTo.size();
    size_t NonEmpty = 0;
    for (const Bits &B : PointsTo) {
      Result.TotalPointsToSize += B.count();
      if (!B.empty())
        ++NonEmpty;
    }
    Result.AvgPointsToSize =
        NonEmpty ? double(Result.TotalPointsToSize) / double(NonEmpty) : 0;

    for (const auto &[Site, Targets] : Result.CallTargets) {
      Result.CallGraphEdges += Targets.size();
      if (Targets.size() > 1)
        ++Result.PolymorphicCallSites;
    }
    Result.AvgCallTargets =
        Result.CallTargets.empty()
            ? 0
            : double(Result.CallGraphEdges) / double(Result.CallTargets.size());

    AbsObj EvalObj = 0;
    auto It = NativeObjs.find(static_cast<uint16_t>(NativeFn::Eval));
    if (It != NativeObjs.end())
      EvalObj = It->second;
    for (const auto &[Site, CalleeV] : CallSiteCalleeVar) {
      if (!EvalObj || !PointsTo[CalleeV].test(EvalObj))
        continue;
      Result.EvalMaybeCallSites.insert(Site);
      if (PointsTo[CalleeV].count() == 1)
        Result.EvalOnlyCallSites.insert(Site);
    }
  }

  void run() {
    prePass();
    seedGlobals();
    for (const Stmt *S : Prog.Body)
      genStmt(nullptr, S);
    solve();
    finalize();
  }
};

} // namespace

PointsToResult dda::runPointsToAnalysis(const Program &P,
                                        const PointsToOptions &Opts) {
  Analysis A(P, Opts);
  A.run();
  return A.Result;
}
