//===- StringUtils.cpp ----------------------------------------------------==//

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace dda;

std::string dda::numberToString(double Value) {
  if (std::isnan(Value))
    return "NaN";
  if (std::isinf(Value))
    return Value > 0 ? "Infinity" : "-Infinity";
  // Negative zero prints as "0" in JS ToString.
  if (Value == 0)
    return "0";
  // Integral values within the safe-integer range print without a decimal
  // point, matching JS.
  if (Value == std::floor(Value) && std::fabs(Value) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", Value);
    return Buf;
  }
  // Shortest representation that round-trips: try increasing precision.
  for (int Precision = 1; Precision <= 17; ++Precision) {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, Value);
    if (std::strtod(Buf, nullptr) == Value)
      return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  return Buf;
}

double dda::stringToNumber(const std::string &Text) {
  const char *Begin = Text.c_str();
  const char *End = Begin + Text.size();
  while (Begin != End && std::isspace(static_cast<unsigned char>(*Begin)))
    ++Begin;
  while (End != Begin && std::isspace(static_cast<unsigned char>(End[-1])))
    --End;
  if (Begin == End)
    return 0.0;
  std::string Trimmed(Begin, End);
  char *ParseEnd = nullptr;
  double Result;
  if (Trimmed.size() > 2 && Trimmed[0] == '0' &&
      (Trimmed[1] == 'x' || Trimmed[1] == 'X')) {
    Result = static_cast<double>(std::strtoull(Trimmed.c_str(), &ParseEnd, 16));
  } else {
    Result = std::strtod(Trimmed.c_str(), &ParseEnd);
  }
  if (ParseEnd != Trimmed.c_str() + Trimmed.size())
    return std::nan("");
  return Result;
}

std::string dda::escapeString(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size() + 2);
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

bool dda::isIdentifier(const std::string &Text) {
  if (Text.empty())
    return false;
  auto IsStart = [](char C) {
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$';
  };
  auto IsPart = [&](char C) {
    return IsStart(C) || std::isdigit(static_cast<unsigned char>(C));
  };
  if (!IsStart(Text[0]))
    return false;
  for (size_t I = 1; I < Text.size(); ++I)
    if (!IsPart(Text[I]))
      return false;
  // A handful of keywords cannot be used with dot syntax in our parser.
  static const char *Keywords[] = {
      "var",      "function", "return", "if",    "else",   "while", "for",
      "in",       "new",      "typeof", "true",  "false",  "null",  "this",
      "break",    "continue", "try",    "catch", "finally", "throw",
      "delete",   "do",       "instanceof", "undefined"};
  for (const char *Keyword : Keywords)
    if (Text == Keyword)
      return false;
  return true;
}
