//===- Interner.h - Global string interner (atoms) ---------------*- C++ -*-==//
///
/// \file
/// Atom table shared by the lexer/parser, both interpreters, and every
/// analysis client. A `StringId` is a dense 32-bit handle to a unique string;
/// equality of atoms is a single integer compare, maps keyed on atoms hash a
/// precomputed value instead of re-walking characters, and canonical array
/// indices ("0", "42", ...) carry their numeric value so the array fast paths
/// never re-parse digits.
///
/// The table is append-only and process-global (the interpreters are
/// single-threaded; both the concrete and instrumented evaluators must agree
/// on atom identity for a value to project between them). Id 0 is reserved as
/// "no atom"; id 1 is always the empty string.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_INTERNER_H
#define DDA_SUPPORT_INTERNER_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dda {

/// Handle to an interned string. Two atoms are the same string iff their ids
/// are equal. Value-initialized ids are invalid (Raw == 0).
struct StringId {
  uint32_t Raw = 0;

  constexpr StringId() = default;
  constexpr explicit StringId(uint32_t Raw) : Raw(Raw) {}

  constexpr bool valid() const { return Raw != 0; }
  constexpr explicit operator bool() const { return Raw != 0; }

  friend constexpr bool operator==(StringId A, StringId B) {
    return A.Raw == B.Raw;
  }
  friend constexpr bool operator!=(StringId A, StringId B) {
    return A.Raw != B.Raw;
  }
  friend constexpr bool operator<(StringId A, StringId B) {
    return A.Raw < B.Raw;
  }
};

/// The atom table.
class Interner {
public:
  /// Sentinel meaning "not an array index" from arrayIndex().
  static constexpr uint32_t NotAnIndex = 0xffffffffu;

  /// The process-wide table.
  static Interner &global();

  /// Interns \p S, returning the canonical atom (allocates only on first
  /// sight of a string).
  StringId intern(std::string_view S);

  /// Atom for the canonical decimal spelling of \p I — the fast replacement
  /// for `intern(std::to_string(I))` on array hot paths. Small indices are
  /// served from a flat cache.
  StringId internIndex(uint64_t I);

  /// Atom for the JavaScript ToString of \p N (integral values take the
  /// internIndex fast path).
  StringId internNumber(double N);

  /// Atom for the 1-character string \p C (flat cache, no hashing).
  StringId internChar(char C);

  /// The characters of an atom. The view is stable for the process lifetime.
  std::string_view view(StringId Id) const {
    assert(Id.Raw != 0 && Id.Raw < Atoms.size() && "invalid atom");
    return *Atoms[Id.Raw].Text;
  }

  /// The atom as a std::string reference (stable storage).
  const std::string &str(StringId Id) const {
    assert(Id.Raw != 0 && Id.Raw < Atoms.size() && "invalid atom");
    return *Atoms[Id.Raw].Text;
  }

  /// Precomputed hash of the atom's characters.
  size_t hash(StringId Id) const {
    assert(Id.Raw != 0 && Id.Raw < Atoms.size() && "invalid atom");
    return Atoms[Id.Raw].Hash;
  }

  /// The numeric value if the atom is a canonical array index ("0".."4294967294",
  /// no leading zeros), else NotAnIndex. Computed once at intern time.
  uint32_t arrayIndex(StringId Id) const {
    assert(Id.Raw != 0 && Id.Raw < Atoms.size() && "invalid atom");
    return Atoms[Id.Raw].Index;
  }

  bool isArrayIndex(StringId Id) const { return arrayIndex(Id) != NotAnIndex; }

  /// Number of distinct atoms interned so far.
  size_t size() const { return Atoms.size() - 1; }

  /// Atoms the runtime consults on hot paths, interned once at startup.
  struct WellKnown {
    StringId Empty;       ///< "" — also the ToBoolean(false) string.
    StringId Length;      ///< "length"
    StringId Prototype;   ///< "prototype"
    StringId Constructor; ///< "constructor"
    StringId Undefined;   ///< "undefined"
    StringId Null;        ///< "null"
    StringId True;        ///< "true"
    StringId False;       ///< "false"
    StringId Load;        ///< "load" (event)
    StringId Ready;       ///< "ready" (event)
    StringId Click;       ///< "click" (event)
  };
  const WellKnown &wellKnown() const { return Known; }

private:
  Interner();

  struct AtomInfo {
    const std::string *Text = nullptr;
    size_t Hash = 0;
    uint32_t Index = NotAnIndex;
  };

  StringId insert(std::string_view S, size_t Hash);

  // Deque gives stable string storage; AtomInfo::Text and the map's keys
  // point into it.
  std::deque<std::string> Storage;
  std::vector<AtomInfo> Atoms; // Indexed by StringId::Raw; [0] is invalid.
  std::unordered_map<std::string_view, uint32_t> Lookup;
  // Flat caches so the hottest producers skip the hash map entirely.
  std::vector<StringId> SmallIndexCache; // internIndex(0..4095)
  StringId CharCache[256] = {};          // internChar
  WellKnown Known;
};

/// Convenience: intern via the global table.
inline StringId intern(std::string_view S) {
  return Interner::global().intern(S);
}

/// Convenience: the characters of a global-table atom.
inline std::string_view atomText(StringId Id) {
  return Interner::global().view(Id);
}

/// Convenience: the global table's well-known atoms.
inline const Interner::WellKnown &atoms() {
  return Interner::global().wellKnown();
}

} // namespace dda

/// Atoms hash by their (dense) id — identity hashing with a multiplicative
/// mix so consecutive ids spread across buckets.
template <> struct std::hash<dda::StringId> {
  size_t operator()(dda::StringId Id) const {
    uint64_t H = Id.Raw;
    H *= 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(H >> 32);
  }
};

#endif // DDA_SUPPORT_INTERNER_H
