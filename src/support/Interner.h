//===- Interner.h - Global string interner (atoms) ---------------*- C++ -*-==//
///
/// \file
/// Atom table shared by the lexer/parser, both interpreters, and every
/// analysis client. A `StringId` is a dense 32-bit handle to a unique string;
/// equality of atoms is a single integer compare, maps keyed on atoms hash a
/// precomputed value instead of re-walking characters, and canonical array
/// indices ("0", "42", ...) carry their numeric value so the array fast paths
/// never re-parse digits.
///
/// The table is append-only, process-global, and safe for concurrent use by
/// the parallel analysis engine (every worker must agree on atom identity
/// for facts to merge across seeds):
///
///  * `view`/`str`/`hash`/`arrayIndex` are lock-free — atoms live in
///    fixed-size chunks that are published once and never move, so the hot
///    read path PR 1 bought stays a couple of loads;
///  * `intern` consults a per-thread direct-mapped cache first (atoms are
///    immutable, so hits need no locks at all), then shards its lookup over
///    64 stripes, taking a shared lock for the already-interned case and an
///    exclusive shard lock only when appending a new atom;
///  * the flat `internIndex`/`internChar` caches are atomics with
///    release/acquire publication, so a cache hit stays a single load.
///
/// A `StringId` may only be read by a thread that obtained it through a
/// happens-before edge from the interning thread (the shard lock, the flat
/// caches, or task handoff through the thread pool all provide one).
///
/// Id 0 is reserved as "no atom"; id 1 is always the empty string. The
/// global table is a Meyers singleton: construction (including the
/// pre-seeded well-known atoms) is race-free even if the first callers are
/// already concurrent.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_INTERNER_H
#define DDA_SUPPORT_INTERNER_H

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dda {

/// Handle to an interned string. Two atoms are the same string iff their ids
/// are equal. Value-initialized ids are invalid (Raw == 0).
struct StringId {
  uint32_t Raw = 0;

  constexpr StringId() = default;
  constexpr explicit StringId(uint32_t Raw) : Raw(Raw) {}

  constexpr bool valid() const { return Raw != 0; }
  constexpr explicit operator bool() const { return Raw != 0; }

  friend constexpr bool operator==(StringId A, StringId B) {
    return A.Raw == B.Raw;
  }
  friend constexpr bool operator!=(StringId A, StringId B) {
    return A.Raw != B.Raw;
  }
  friend constexpr bool operator<(StringId A, StringId B) {
    return A.Raw < B.Raw;
  }
};

// Forward declaration of the flat-table hasher primary template (FlatMap.h);
// specialized here so any client keying a FlatMap on atoms gets mixed ids.
template <typename K, typename Enable> struct FlatHash;
template <> struct FlatHash<StringId, void> {
  uint64_t operator()(StringId Id) const {
    // splitmix64 finalizer, inlined to keep this header independent of
    // FlatMap.h (kept in sync with dda::splitmix64).
    uint64_t X = Id.Raw + 0x9E3779B97F4A7C15ull;
    X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
    X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
    return X ^ (X >> 31);
  }
};

/// The atom table.
class Interner {
public:
  /// Sentinel meaning "not an array index" from arrayIndex().
  static constexpr uint32_t NotAnIndex = 0xffffffffu;

  /// The process-wide table.
  static Interner &global();

  /// Interns \p S, returning the canonical atom (allocates only on first
  /// sight of a string). Safe to call from any number of threads.
  StringId intern(std::string_view S);

  /// Atom for the canonical decimal spelling of \p I — the fast replacement
  /// for `intern(std::to_string(I))` on array hot paths. Small indices are
  /// served from a flat cache.
  StringId internIndex(uint64_t I);

  /// Atom for the JavaScript ToString of \p N (integral values take the
  /// internIndex fast path).
  StringId internNumber(double N);

  /// Atom for the 1-character string \p C (flat cache, no hashing).
  StringId internChar(char C);

  /// The characters of an atom. The view is stable for the process lifetime.
  std::string_view view(StringId Id) const { return *info(Id).Text; }

  /// The atom as a std::string reference (stable storage).
  const std::string &str(StringId Id) const { return *info(Id).Text; }

  /// Precomputed hash of the atom's characters.
  size_t hash(StringId Id) const { return info(Id).Hash; }

  /// The numeric value if the atom is a canonical array index ("0".."4294967294",
  /// no leading zeros), else NotAnIndex. Computed once at intern time.
  uint32_t arrayIndex(StringId Id) const { return info(Id).Index; }

  bool isArrayIndex(StringId Id) const { return arrayIndex(Id) != NotAnIndex; }

  /// Number of distinct atoms interned so far.
  size_t size() const {
    return AtomCount.load(std::memory_order_acquire) - 1;
  }

  /// Atoms the runtime consults on hot paths, interned once at startup
  /// (before any worker thread can observe the table).
  struct WellKnown {
    StringId Empty;       ///< "" — also the ToBoolean(false) string.
    StringId Length;      ///< "length"
    StringId Prototype;   ///< "prototype"
    StringId Constructor; ///< "constructor"
    StringId Undefined;   ///< "undefined"
    StringId Null;        ///< "null"
    StringId True;        ///< "true"
    StringId False;       ///< "false"
    StringId Load;        ///< "load" (event)
    StringId Ready;       ///< "ready" (event)
    StringId Click;       ///< "click" (event)
  };
  const WellKnown &wellKnown() const { return Known; }

private:
  Interner();
  ~Interner();
  Interner(const Interner &) = delete;
  Interner &operator=(const Interner &) = delete;

  struct AtomInfo {
    const std::string *Text = nullptr;
    size_t Hash = 0;
    uint32_t Index = NotAnIndex;
  };

  // Atoms live in fixed-size chunks that are allocated once and never move,
  // so readers index them without synchronization beyond the publishing
  // acquire load of the chunk pointer.
  static constexpr unsigned kChunkShift = 16;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift; // atoms per chunk
  static constexpr uint32_t kMaxChunks = 4096;              // 2^28 atoms
  static constexpr size_t kShards = 64;
  static constexpr size_t kSmallIndexCacheSize = 4096;

  /// One lookup stripe: new-atom appends take the exclusive lock, the
  /// already-interned fast path only a shared one. Storage gives the atoms
  /// of this shard stable character storage.
  struct Shard {
    std::shared_mutex Mu;
    std::unordered_map<std::string_view, uint32_t> Lookup;
    std::deque<std::string> Storage;
  };

  const AtomInfo &info(StringId Id) const {
    assert(Id.Raw != 0 &&
           Id.Raw < AtomCount.load(std::memory_order_relaxed) &&
           "invalid atom");
    const AtomInfo *Chunk =
        Chunks[Id.Raw >> kChunkShift].load(std::memory_order_acquire);
    return Chunk[Id.Raw & (kChunkSize - 1)];
  }

  /// The chunk that holds atom \p Raw, allocating (and CAS-publishing) it on
  /// first use.
  AtomInfo *chunkFor(uint32_t Raw);

  /// The locked path behind intern()'s thread-local cache: shared-lock
  /// probe, then exclusive-lock recheck + append.
  StringId internSlow(std::string_view S, size_t Hash);

  /// Appends a new atom; the caller must hold \p Sh's exclusive lock and
  /// have verified the string is absent.
  StringId insertLocked(Shard &Sh, std::string_view S, size_t Hash);

  std::array<std::atomic<AtomInfo *>, kMaxChunks> Chunks = {};
  std::atomic<uint32_t> AtomCount{1}; // Id 0 is invalid.
  std::array<Shard, kShards> Shards;
  // Flat caches so the hottest producers skip the shard locks entirely.
  std::array<std::atomic<uint32_t>, kSmallIndexCacheSize> SmallIndexCache = {};
  std::array<std::atomic<uint32_t>, 256> CharCache = {};
  WellKnown Known;
};

/// Convenience: intern via the global table.
inline StringId intern(std::string_view S) {
  return Interner::global().intern(S);
}

/// Convenience: the characters of a global-table atom.
inline std::string_view atomText(StringId Id) {
  return Interner::global().view(Id);
}

/// Convenience: the global table's well-known atoms.
inline const Interner::WellKnown &atoms() {
  return Interner::global().wellKnown();
}

} // namespace dda

/// Atoms hash by their (dense) id — identity hashing with a multiplicative
/// mix so consecutive ids spread across buckets.
template <> struct std::hash<dda::StringId> {
  size_t operator()(dda::StringId Id) const {
    uint64_t H = Id.Raw;
    H *= 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(H >> 32);
  }
};

#endif // DDA_SUPPORT_INTERNER_H
