//===- SourceLocation.h - Positions and ranges in MiniJS source -*- C++ -*-==//
///
/// \file
/// Lightweight value types describing positions and ranges inside a source
/// buffer. Lines and columns are 1-based, matching how the paper refers to
/// program points ("line 14"); byte offsets are 0-based.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_SOURCELOCATION_H
#define DDA_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace dda {

/// A position in a source buffer.
struct SourceLoc {
  uint32_t Line = 0;   ///< 1-based line; 0 means "unknown".
  uint32_t Column = 0; ///< 1-based column.
  uint32_t Offset = 0; ///< 0-based byte offset.

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column, uint32_t Offset)
      : Line(Line), Column(Column), Offset(Offset) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &Other) const {
    return Line == Other.Line && Column == Other.Column &&
           Offset == Other.Offset;
  }

  /// Renders as "line:col", the format used in diagnostics and in printed
  /// determinacy facts.
  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

/// A half-open byte range [Begin, End) in a source buffer.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace dda

#endif // DDA_SUPPORT_SOURCELOCATION_H
