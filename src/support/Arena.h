//===- Arena.h - Chunked object arena and small-vector -----------*- C++ -*-==//
///
/// \file
/// Allocation support for the interpreter heaps. Two pieces:
///
/// `ChunkedArena<T>` replaces `std::deque<T>` as the backing store for
/// `Heap::Objects` / `EnvArena::Envs`. It keeps the deque's address
/// stability (elements live in fixed chunks that never move) but with a
/// chunk size tuned to the element (libstdc++'s deque uses 512-*byte*
/// blocks — about three JSObjects per block — so allocation-heavy programs
/// pay a malloc every third object). It is also *pooled*: `truncateTo`
/// (speculation rollback) does not destroy elements, it parks them; the
/// next allocation calls `T::reset()` on a parked element — which must
/// restore every field to its freshly-constructed state — so the element's
/// containers keep their buckets/capacity across counterfactual churn.
/// Observable state after reset is byte-equivalent to destroy+reconstruct
/// (ShapeGen/SaveGen zero, empty maps), which is what the snapshot/journal
/// byte-identity suites check.
///
/// `SmallVec<T, N>` is a small-size-optimized vector for trivially copyable
/// elements, used for `JSObject::MaybeAbsent`/`MaybePresent`: almost every
/// record has zero-to-few maybe-absent names, and inline storage keeps them
/// out of the global allocator during counterfactual branch churn.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_ARENA_H
#define DDA_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace dda {

/// Chunked, pooled arena. Addresses are stable for the arena's lifetime;
/// `truncateTo` parks elements for reuse instead of destroying them.
/// `T` must be default-constructible and provide `reset()` (see file
/// comment). Copying the arena copies live elements only.
template <typename T, unsigned ChunkElems = 64>
class ChunkedArena {
  static_assert((ChunkElems & (ChunkElems - 1)) == 0,
                "chunk size must be a power of two");

  struct Chunk {
    alignas(alignof(T)) unsigned char Raw[sizeof(T) * ChunkElems];
    T *elems() { return reinterpret_cast<T *>(Raw); }
  };

  std::vector<std::unique_ptr<Chunk>> Chunks;
  size_t Sz = 0;          ///< Live elements.
  size_t Constructed = 0; ///< High-water mark of constructed elements.

  T &slot(size_t I) { return Chunks[I / ChunkElems]->elems()[I % ChunkElems]; }
  const T &slot(size_t I) const {
    return Chunks[I / ChunkElems]->elems()[I % ChunkElems];
  }

  void destroyAll() {
    for (size_t I = 0; I < Constructed; ++I)
      slot(I).~T();
    Chunks.clear();
    Sz = 0;
    Constructed = 0;
  }

  void copyFrom(const ChunkedArena &O) {
    Chunks.reserve((O.Sz + ChunkElems - 1) / ChunkElems);
    for (size_t I = 0; I < O.Sz; ++I) {
      if (I % ChunkElems == 0)
        Chunks.push_back(std::make_unique<Chunk>());
      new (&slot(I)) T(O.slot(I));
    }
    Sz = O.Sz;
    Constructed = O.Sz; // Pool residue is not carried into copies.
  }

public:
  ChunkedArena() = default;
  ~ChunkedArena() { destroyAll(); }

  ChunkedArena(const ChunkedArena &O) { copyFrom(O); }
  ChunkedArena &operator=(const ChunkedArena &O) {
    if (this != &O) {
      destroyAll();
      copyFrom(O);
    }
    return *this;
  }
  ChunkedArena(ChunkedArena &&O) noexcept
      : Chunks(std::move(O.Chunks)), Sz(O.Sz), Constructed(O.Constructed) {
    O.Chunks.clear();
    O.Sz = 0;
    O.Constructed = 0;
  }
  ChunkedArena &operator=(ChunkedArena &&O) noexcept {
    if (this != &O) {
      destroyAll();
      Chunks = std::move(O.Chunks);
      Sz = O.Sz;
      Constructed = O.Constructed;
      O.Chunks.clear();
      O.Sz = 0;
      O.Constructed = 0;
    }
    return *this;
  }

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }

  T &operator[](size_t I) {
    assert(I < Sz);
    return slot(I);
  }
  const T &operator[](size_t I) const {
    assert(I < Sz);
    return slot(I);
  }

  T &back() {
    assert(Sz > 0);
    return slot(Sz - 1);
  }

  /// Appends one element: a freshly default-constructed one past the
  /// high-water mark, or a parked element reset in place.
  T &push() {
    if (Sz < Constructed) {
      T &X = slot(Sz++);
      X.reset();
      return X;
    }
    if (Sz == Chunks.size() * ChunkElems)
      Chunks.push_back(std::make_unique<Chunk>());
    T &X = *new (&slot(Sz)) T();
    ++Sz;
    ++Constructed;
    return X;
  }

  /// Shrinks the live range to \p N elements, parking the rest for reuse
  /// (their memory and container capacity are retained).
  void truncateTo(size_t N) {
    assert(N <= Sz);
    Sz = N;
  }
};

/// Small-size-optimized vector for trivially copyable elements.
template <typename T, unsigned N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "SmallVec elements must be POD-like");

  T *Ptr;
  uint32_t Sz = 0;
  uint32_t Cap = N;
  alignas(alignof(T)) unsigned char Inline[sizeof(T) * N];

  T *inlineBuf() { return reinterpret_cast<T *>(Inline); }
  const T *inlineBuf() const { return reinterpret_cast<const T *>(Inline); }
  bool onHeap() const { return Ptr != inlineBuf(); }

  void grow(uint32_t Want) {
    uint32_t NewCap = Cap;
    while (NewCap < Want)
      NewCap *= 2;
    T *NewPtr = static_cast<T *>(
        ::operator new(sizeof(T) * NewCap, std::align_val_t(alignof(T))));
    std::memcpy(static_cast<void *>(NewPtr), Ptr, sizeof(T) * Sz);
    if (onHeap())
      ::operator delete(Ptr, std::align_val_t(alignof(T)));
    Ptr = NewPtr;
    Cap = NewCap;
  }

  void releaseHeap() {
    if (onHeap()) {
      ::operator delete(Ptr, std::align_val_t(alignof(T)));
      Ptr = inlineBuf();
      Cap = N;
    }
  }

public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVec() : Ptr(inlineBuf()) {}
  ~SmallVec() { releaseHeap(); }

  SmallVec(const SmallVec &O) : Ptr(inlineBuf()) { assign(O.begin(), O.end()); }
  SmallVec &operator=(const SmallVec &O) {
    if (this != &O)
      assign(O.begin(), O.end());
    return *this;
  }
  SmallVec(SmallVec &&O) noexcept : Ptr(inlineBuf()) {
    if (O.onHeap()) {
      Ptr = O.Ptr;
      Sz = O.Sz;
      Cap = O.Cap;
      O.Ptr = O.inlineBuf();
      O.Sz = 0;
      O.Cap = N;
    } else {
      std::memcpy(static_cast<void *>(Ptr), O.Ptr, sizeof(T) * O.Sz);
      Sz = O.Sz;
      O.Sz = 0;
    }
  }
  SmallVec &operator=(SmallVec &&O) noexcept {
    if (this == &O)
      return *this;
    releaseHeap();
    Sz = 0;
    if (O.onHeap()) {
      Ptr = O.Ptr;
      Sz = O.Sz;
      Cap = O.Cap;
      O.Ptr = O.inlineBuf();
      O.Sz = 0;
      O.Cap = N;
    } else {
      std::memcpy(static_cast<void *>(Ptr), O.Ptr, sizeof(T) * O.Sz);
      Sz = O.Sz;
      O.Sz = 0;
    }
    return *this;
  }

  /// Assignment from any contiguous range (std::vector interop for the
  /// incremental-region serializer).
  SmallVec &operator=(const std::vector<T> &O) {
    assign(O.data(), O.data() + O.size());
    return *this;
  }

  void assign(const T *First, const T *Last) {
    uint32_t Want = static_cast<uint32_t>(Last - First);
    if (Want > Cap)
      grow(Want);
    std::memmove(static_cast<void *>(Ptr), First, sizeof(T) * Want);
    Sz = Want;
  }

  iterator begin() { return Ptr; }
  iterator end() { return Ptr + Sz; }
  const_iterator begin() const { return Ptr; }
  const_iterator end() const { return Ptr + Sz; }

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }
  size_t capacity() const { return Cap; }

  T &operator[](size_t I) {
    assert(I < Sz);
    return Ptr[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Sz);
    return Ptr[I];
  }

  void clear() { Sz = 0; }

  void push_back(T V) {
    if (Sz == Cap)
      grow(Sz + 1);
    Ptr[Sz++] = V;
  }

  /// Inserts \p V before \p Pos (sorted-set maintenance).
  iterator insert(iterator Pos, T V) {
    size_t Off = static_cast<size_t>(Pos - Ptr);
    if (Sz == Cap)
      grow(Sz + 1);
    std::memmove(static_cast<void *>(Ptr + Off + 1), Ptr + Off,
                 sizeof(T) * (Sz - Off));
    Ptr[Off] = V;
    ++Sz;
    return Ptr + Off;
  }

  iterator erase(iterator Pos) {
    size_t Off = static_cast<size_t>(Pos - Ptr);
    std::memmove(static_cast<void *>(Ptr + Off), Ptr + Off + 1,
                 sizeof(T) * (Sz - Off - 1));
    --Sz;
    return Ptr + Off;
  }

  bool operator==(const SmallVec &O) const {
    if (Sz != O.Sz)
      return false;
    return std::memcmp(Ptr, O.Ptr, sizeof(T) * Sz) == 0;
  }
  bool operator!=(const SmallVec &O) const { return !(*this == O); }
};

} // namespace dda

#endif // DDA_SUPPORT_ARENA_H
