//===- RNG.h - Deterministic seeded random number generator ----*- C++ -*-===//
///
/// \file
/// A SplitMix64-based RNG. Used to back the MiniJS `Math.random` builtin (the
/// paper's canonical indeterminate source) and the soundness fuzzer. Seeded
/// explicitly so that "another execution" can be simulated by re-running the
/// concrete interpreter with a different seed.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_RNG_H
#define DDA_SUPPORT_RNG_H

#include <cstdint>

namespace dda {

/// SplitMix64: tiny, fast, and statistically solid for our purposes.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform double in [0, 1), like JavaScript's Math.random.
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform value in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) { return Bound ? next() % Bound : 0; }

  /// Snapshot/restore: counterfactual execution treats the random tape as
  /// part of the program state, restoring it on undo so the real execution
  /// is unaffected by the branches that were explored hypothetically.
  uint64_t getState() const { return State; }
  void setState(uint64_t S) { State = S; }

private:
  uint64_t State;
};

} // namespace dda

#endif // DDA_SUPPORT_RNG_H
