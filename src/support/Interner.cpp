//===- Interner.cpp -------------------------------------------------------==//

#include "support/Interner.h"

#include "support/StringUtils.h"

#include <cmath>
#include <mutex>

using namespace dda;

namespace {

/// True if \p S is the canonical decimal spelling of a uint32 array index
/// (no sign, no leading zeros except "0" itself, value <= 2^32 - 2).
/// Returns the value via \p Out.
bool parseArrayIndex(std::string_view S, uint32_t &Out) {
  if (S.empty() || S.size() > 10)
    return false;
  if (S.size() > 1 && S[0] == '0')
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  if (V > 0xfffffffeull) // 2^32 - 2: the largest valid array index.
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

} // namespace

Interner &Interner::global() {
  // Meyers singleton: C++11 guarantees race-free construction even when the
  // first callers are already on worker threads, and the constructor seeds
  // the well-known atoms before global() ever returns.
  static Interner I;
  return I;
}

Interner::Interner() {
  Known.Empty = intern("");
  Known.Length = intern("length");
  Known.Prototype = intern("prototype");
  Known.Constructor = intern("constructor");
  Known.Undefined = intern("undefined");
  Known.Null = intern("null");
  Known.True = intern("true");
  Known.False = intern("false");
  Known.Load = intern("load");
  Known.Ready = intern("ready");
  Known.Click = intern("click");
}

Interner::~Interner() {
  for (auto &Slot : Chunks)
    delete[] Slot.load(std::memory_order_relaxed);
}

Interner::AtomInfo *Interner::chunkFor(uint32_t Raw) {
  std::atomic<AtomInfo *> &Slot = Chunks[Raw >> kChunkShift];
  AtomInfo *Chunk = Slot.load(std::memory_order_acquire);
  if (Chunk)
    return Chunk;
  // Shards racing into a fresh chunk CAS-install it; the loser frees its
  // allocation and adopts the winner's.
  AtomInfo *Fresh = new AtomInfo[kChunkSize]();
  if (Slot.compare_exchange_strong(Chunk, Fresh, std::memory_order_acq_rel,
                                   std::memory_order_acquire))
    return Fresh;
  delete[] Fresh;
  return Chunk;
}

StringId Interner::insertLocked(Shard &Sh, std::string_view S, size_t Hash) {
  Sh.Storage.emplace_back(S);
  const std::string &Text = Sh.Storage.back();
  uint32_t Raw = AtomCount.fetch_add(1, std::memory_order_acq_rel);
  assert(Raw < kMaxChunks * static_cast<uint64_t>(kChunkSize) &&
         "atom table full");
  AtomInfo &Info = chunkFor(Raw)[Raw & (kChunkSize - 1)];
  Info.Text = &Text;
  Info.Hash = Hash;
  if (!parseArrayIndex(Text, Info.Index))
    Info.Index = NotAnIndex;
  // Publishing the id in the shard map (under the exclusive lock) is the
  // release point: any thread that finds the id here — or receives it over
  // another happens-before edge — sees the AtomInfo writes above.
  Sh.Lookup.emplace(std::string_view(Text), Raw);
  return StringId(Raw);
}

namespace {

/// Per-thread direct-mapped cache in front of the shard locks. Atoms are
/// immutable and never move, so a cached (hash, id) pair stays valid for
/// the process lifetime and needs no synchronization — a hit costs one
/// probe and one character compare, matching the single-threaded table this
/// replaced. (There is exactly one Interner — the constructor is private —
/// so entries cannot alias another table's ids.)
struct TLCacheEntry {
  size_t Hash = 0;
  uint32_t Id = 0;
};
constexpr size_t kTLCacheSize = 8192; // 96 KiB per thread.
thread_local std::array<TLCacheEntry, kTLCacheSize> TLCache = {};

} // namespace

StringId Interner::intern(std::string_view S) {
  size_t H = std::hash<std::string_view>()(S);
  TLCacheEntry &Cached = TLCache[H & (kTLCacheSize - 1)];
  if (Cached.Id != 0 && Cached.Hash == H) {
    StringId Id(Cached.Id);
    if (view(Id) == S)
      return Id;
  }
  StringId Id = internSlow(S, H);
  Cached.Hash = H;
  Cached.Id = Id.Raw;
  return Id;
}

StringId Interner::internSlow(std::string_view S, size_t H) {
  // Pick the stripe from high hash bits; the map re-uses the low ones for
  // its buckets, so this keeps shard choice and bucket choice independent.
  Shard &Sh = Shards[(H >> 17) & (kShards - 1)];
  {
    std::shared_lock<std::shared_mutex> Lock(Sh.Mu);
    auto It = Sh.Lookup.find(S);
    if (It != Sh.Lookup.end())
      return StringId(It->second);
  }
  std::unique_lock<std::shared_mutex> Lock(Sh.Mu);
  auto It = Sh.Lookup.find(S);
  if (It != Sh.Lookup.end())
    return StringId(It->second);
  return insertLocked(Sh, S, H);
}

StringId Interner::internIndex(uint64_t I) {
  if (I < kSmallIndexCacheSize) {
    std::atomic<uint32_t> &Slot = SmallIndexCache[I];
    uint32_t Cached = Slot.load(std::memory_order_acquire);
    if (Cached)
      return StringId(Cached);
    char Buf[12];
    int N = std::snprintf(Buf, sizeof(Buf), "%llu",
                          static_cast<unsigned long long>(I));
    StringId Id = intern(std::string_view(Buf, static_cast<size_t>(N)));
    // Competing fillers computed the same atom; the store is idempotent.
    Slot.store(Id.Raw, std::memory_order_release);
    return Id;
  }
  char Buf[24];
  int N = std::snprintf(Buf, sizeof(Buf), "%llu",
                        static_cast<unsigned long long>(I));
  return intern(std::string_view(Buf, static_cast<size_t>(N)));
}

StringId Interner::internNumber(double N) {
  // Integral doubles in array-index range take the cached path; everything
  // else goes through the full JavaScript ToString.
  if (N >= 0 && N < 4294967295.0 && N == std::floor(N) && !std::signbit(N))
    return internIndex(static_cast<uint64_t>(N));
  return intern(numberToString(N));
}

StringId Interner::internChar(char C) {
  std::atomic<uint32_t> &Slot = CharCache[static_cast<unsigned char>(C)];
  uint32_t Cached = Slot.load(std::memory_order_acquire);
  if (Cached)
    return StringId(Cached);
  StringId Id = intern(std::string_view(&C, 1));
  Slot.store(Id.Raw, std::memory_order_release);
  return Id;
}
