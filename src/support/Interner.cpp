//===- Interner.cpp -------------------------------------------------------==//

#include "support/Interner.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace dda;

namespace {

/// True if \p S is the canonical decimal spelling of a uint32 array index
/// (no sign, no leading zeros except "0" itself, value <= 2^32 - 2).
/// Returns the value via \p Out.
bool parseArrayIndex(std::string_view S, uint32_t &Out) {
  if (S.empty() || S.size() > 10)
    return false;
  if (S.size() > 1 && S[0] == '0')
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  if (V > 0xfffffffeull) // 2^32 - 2: the largest valid array index.
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

} // namespace

Interner &Interner::global() {
  static Interner I;
  return I;
}

Interner::Interner() {
  Atoms.emplace_back(); // Id 0 is invalid.
  Known.Empty = intern("");
  Known.Length = intern("length");
  Known.Prototype = intern("prototype");
  Known.Constructor = intern("constructor");
  Known.Undefined = intern("undefined");
  Known.Null = intern("null");
  Known.True = intern("true");
  Known.False = intern("false");
  Known.Load = intern("load");
  Known.Ready = intern("ready");
  Known.Click = intern("click");
}

StringId Interner::insert(std::string_view S, size_t Hash) {
  Storage.emplace_back(S);
  const std::string &Text = Storage.back();
  uint32_t Raw = static_cast<uint32_t>(Atoms.size());
  AtomInfo Info;
  Info.Text = &Text;
  Info.Hash = Hash;
  if (!parseArrayIndex(Text, Info.Index))
    Info.Index = NotAnIndex;
  Atoms.push_back(Info);
  Lookup.emplace(std::string_view(Text), Raw);
  return StringId(Raw);
}

StringId Interner::intern(std::string_view S) {
  auto It = Lookup.find(S);
  if (It != Lookup.end())
    return StringId(It->second);
  return insert(S, std::hash<std::string_view>()(S));
}

StringId Interner::internIndex(uint64_t I) {
  if (I < 4096) {
    if (SmallIndexCache.size() <= I)
      SmallIndexCache.resize(4096);
    StringId &Slot = SmallIndexCache[I];
    if (!Slot.valid()) {
      char Buf[12];
      int N = std::snprintf(Buf, sizeof(Buf), "%llu",
                            static_cast<unsigned long long>(I));
      Slot = intern(std::string_view(Buf, static_cast<size_t>(N)));
    }
    return Slot;
  }
  char Buf[24];
  int N = std::snprintf(Buf, sizeof(Buf), "%llu",
                        static_cast<unsigned long long>(I));
  return intern(std::string_view(Buf, static_cast<size_t>(N)));
}

StringId Interner::internNumber(double N) {
  // Integral doubles in array-index range take the cached path; everything
  // else goes through the full JavaScript ToString.
  if (N >= 0 && N < 4294967295.0 && N == std::floor(N) && !std::signbit(N))
    return internIndex(static_cast<uint64_t>(N));
  return intern(numberToString(N));
}

StringId Interner::internChar(char C) {
  StringId &Slot = CharCache[static_cast<unsigned char>(C)];
  if (!Slot.valid())
    Slot = intern(std::string_view(&C, 1));
  return Slot;
}
