//===- FaultInjector.h - Deterministic budget-trip injection -----*- C++ -*-==//
///
/// \file
/// Trips a chosen governor budget at the Nth checkpoint of its class, so
/// every degradation path in the analysis is reachable from tests with a
/// one-line spec instead of a pathological input.
///
/// A spec is `class:N` where `class` is one of the budget names
/// (`steps`, `deadline`, `heap`, `depth`, `cf-fuel`, `eval-depth`) and `N`
/// is the 1-based ordinal of the checkpoint to trip at. Examples:
///
///   steps:1000     trip the step budget at the 1000th tick
///   heap:7         trip the heap budget at the 7th allocation
///   cf-fuel:2      exhaust counterfactual fuel at the 2nd counterfactual
///
/// Checkpoint counters are per-injector (and injectors are per-run), so a
/// given (program, seed, spec) triple always trips at the same point —
/// injection is fully deterministic and reproducible. The spec can also be
/// supplied via the `DDA_INJECT_FAULT` environment variable, which `ddajs`
/// consults when no `--inject-fault` flag is given.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_FAULTINJECTOR_H
#define DDA_SUPPORT_FAULTINJECTOR_H

#include "support/ResourceGovernor.h"

#include <cstdint>
#include <optional>
#include <string>

namespace dda {

/// Deterministic single-fault injector. Counts checkpoints per budget class
/// and reports "trip now" exactly once, at the configured ordinal.
class FaultInjector {
public:
  FaultInjector() = default;
  FaultInjector(Budget Target, uint64_t AtCheckpoint)
      : Target(Target), At(AtCheckpoint), Armed(AtCheckpoint != 0) {}

  /// Parses a `class:N` spec. Returns std::nullopt (and fills *ErrorOut if
  /// given) on malformed specs.
  static std::optional<FaultInjector> parse(const std::string &Spec,
                                            std::string *ErrorOut = nullptr);

  /// Reads `DDA_INJECT_FAULT` from the environment; std::nullopt when unset
  /// or malformed (malformed env specs are ignored, not fatal).
  static std::optional<FaultInjector> fromEnvironment();

  /// Called by the governor at each checkpoint of class \p B. Returns true
  /// exactly when this checkpoint is the configured trip point.
  bool shouldTrip(Budget B) {
    if (!Armed || B != Target)
      return false;
    if (++Count[(size_t)B] != At)
      return false;
    Armed = false; // Single-shot.
    return true;
  }

  bool armed() const { return Armed; }
  Budget target() const { return Target; }
  uint64_t atCheckpoint() const { return At; }

  /// Re-arms and zeroes the checkpoint counters (for reuse across runs).
  void reset() {
    for (auto &C : Count)
      C = 0;
    Armed = At != 0;
  }

  /// Renders the spec back as `class:N`.
  std::string str() const;

private:
  Budget Target = Budget::Steps;
  uint64_t At = 0;
  bool Armed = false;
  uint64_t Count[6] = {};
};

} // namespace dda

#endif // DDA_SUPPORT_FAULTINJECTOR_H
