//===- Diagnostics.cpp ----------------------------------------------------==//

#include "support/Diagnostics.h"

using namespace dda;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.Loc.str();
    Out += ": ";
    Out += kindName(D.Kind);
    Out += ": ";
    Out += D.Message;
    Out += '\n';
  }
  return Out;
}
