//===- Diagnostics.h - Error collection for the MiniJS frontend -*- C++ -*-==//
///
/// \file
/// A small diagnostic engine. Library code never throws or exits on malformed
/// input; it reports a diagnostic here and recovers, so that tools decide how
/// to surface errors.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_DIAGNOSTICS_H
#define DDA_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace dda {

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported problem, with its location in the source buffer.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics produced by the lexer, parser, and analyses.
class DiagnosticEngine {
public:
  void report(DiagKind Kind, SourceLoc Loc, std::string Message) {
    if (Kind == DiagKind::Error)
      ++NumErrors;
    Diags.push_back({Kind, Loc, std::move(Message)});
  }

  void error(SourceLoc Loc, std::string Message) {
    report(DiagKind::Error, Loc, std::move(Message));
  }

  void warning(SourceLoc Loc, std::string Message) {
    report(DiagKind::Warning, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line, as "line:col: kind: message".
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace dda

#endif // DDA_SUPPORT_DIAGNOSTICS_H
