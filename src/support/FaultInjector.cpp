//===- FaultInjector.cpp - Deterministic budget-trip injection -------------==//

#include "support/FaultInjector.h"

#include <cstdlib>

namespace dda {

static std::optional<Budget> budgetFromName(const std::string &Name) {
  for (Budget B : {Budget::Steps, Budget::Deadline, Budget::HeapCells,
                   Budget::CallDepth, Budget::CfFuel, Budget::EvalDepth})
    if (Name == budgetName(B))
      return B;
  return std::nullopt;
}

std::optional<FaultInjector> FaultInjector::parse(const std::string &Spec,
                                                  std::string *ErrorOut) {
  auto fail = [&](const std::string &Why) -> std::optional<FaultInjector> {
    if (ErrorOut)
      *ErrorOut = "invalid fault spec '" + Spec + "': " + Why +
                  " (expected class:N with class one of steps, deadline, "
                  "heap, depth, cf-fuel, eval-depth)";
    return std::nullopt;
  };

  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0 || Colon + 1 == Spec.size())
    return fail("missing ':'");
  std::optional<Budget> B = budgetFromName(Spec.substr(0, Colon));
  if (!B)
    return fail("unknown checkpoint class");
  const std::string NumStr = Spec.substr(Colon + 1);
  uint64_t N = 0;
  for (char C : NumStr) {
    if (C < '0' || C > '9')
      return fail("N is not a positive integer");
    uint64_t Next = N * 10 + (uint64_t)(C - '0');
    if (Next < N)
      return fail("N overflows");
    N = Next;
  }
  if (N == 0)
    return fail("N must be >= 1");
  return FaultInjector(*B, N);
}

std::optional<FaultInjector> FaultInjector::fromEnvironment() {
  const char *Spec = std::getenv("DDA_INJECT_FAULT");
  if (!Spec || !*Spec)
    return std::nullopt;
  return parse(Spec);
}

std::string FaultInjector::str() const {
  return std::string(budgetName(Target)) + ":" + std::to_string(At);
}

} // namespace dda
