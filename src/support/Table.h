//===- Table.h - Plain-text table rendering for bench output ----*- C++ -*-==//
///
/// \file
/// Renders aligned plain-text tables. The benchmark harnesses use this to
/// print rows in the same layout as the paper's tables (e.g. Table 1).
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_TABLE_H
#define DDA_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace dda {

/// An aligned plain-text table with a header row.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header)
      : Header(std::move(Header)) {}

  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  /// Renders the table with column separators and a header underline.
  std::string str() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace dda

#endif // DDA_SUPPORT_TABLE_H
