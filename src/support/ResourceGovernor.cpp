//===- ResourceGovernor.cpp - Unified analysis budgets ---------------------==//

#include "support/ResourceGovernor.h"

#include "support/FaultInjector.h"

#include <sstream>

namespace dda {

const char *budgetName(Budget B) {
  switch (B) {
  case Budget::Steps:
    return "steps";
  case Budget::Deadline:
    return "deadline";
  case Budget::HeapCells:
    return "heap";
  case Budget::CallDepth:
    return "depth";
  case Budget::CfFuel:
    return "cf-fuel";
  case Budget::EvalDepth:
    return "eval-depth";
  }
  return "?";
}

const char *trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None:
    return "none";
  case TrapKind::InternalError:
    return "internal-error";
  case TrapKind::StepLimit:
    return "step-limit";
  case TrapKind::Deadline:
    return "deadline";
  case TrapKind::HeapLimit:
    return "heap-limit";
  case TrapKind::CallDepthLimit:
    return "call-depth-limit";
  case TrapKind::CfFuelExhausted:
    return "cf-fuel-exhausted";
  case TrapKind::EvalDepthLimit:
    return "eval-depth-limit";
  }
  return "?";
}

uint64_t composeBudget(uint64_t A, uint64_t B) {
  if (A == 0)
    return B;
  if (B == 0)
    return A;
  return A < B ? A : B;
}

GovernorLimits composeLimits(const GovernorLimits &Request,
                             const GovernorLimits &Ceiling) {
  GovernorLimits L;
  L.MaxSteps = composeBudget(Request.MaxSteps, Ceiling.MaxSteps);
  L.DeadlineMs = composeBudget(Request.DeadlineMs, Ceiling.DeadlineMs);
  L.MaxHeapCells = composeBudget(Request.MaxHeapCells, Ceiling.MaxHeapCells);
  L.MaxCallDepth = static_cast<unsigned>(
      composeBudget(Request.MaxCallDepth, Ceiling.MaxCallDepth));
  L.CfFuel = composeBudget(Request.CfFuel, Ceiling.CfFuel);
  L.MaxEvalDepth = static_cast<unsigned>(
      composeBudget(Request.MaxEvalDepth, Ceiling.MaxEvalDepth));
  return L;
}

TrapKind trapForBudget(Budget B) {
  switch (B) {
  case Budget::Steps:
    return TrapKind::StepLimit;
  case Budget::Deadline:
    return TrapKind::Deadline;
  case Budget::HeapCells:
    return TrapKind::HeapLimit;
  case Budget::CallDepth:
    return TrapKind::CallDepthLimit;
  case Budget::CfFuel:
    return TrapKind::CfFuelExhausted;
  case Budget::EvalDepth:
    return TrapKind::EvalDepthLimit;
  }
  return TrapKind::InternalError;
}

void DegradationReport::addEvent(TrapKind Cause, std::string Action,
                                 std::string Detail) {
  ++EventsTotal;
  if (Events.size() < kMaxEvents)
    Events.push_back({Cause, std::move(Action), std::move(Detail)});
}

std::string DegradationReport::str() const {
  std::ostringstream OS;
  if (Trap == TrapKind::None) {
    OS << "degradation: none fatal";
  } else {
    OS << "degradation: trap=" << trapKindName(Trap) << " budget="
       << budgetName(Trip.Which) << " used=" << Trip.Used;
    if (Trip.Limit != 0)
      OS << " limit=" << Trip.Limit;
    OS << " checkpoint=" << Trip.Checkpoint;
    if (Trip.Injected)
      OS << " (injected)";
  }
  OS << "; steps=" << StepsUsed << " heap-cells=" << HeapCellsUsed << "\n";
  for (const DegradationEvent &E : Events)
    OS << "  - [" << trapKindName(E.Cause) << "] " << E.Action
       << (E.Detail.empty() ? "" : ": " + E.Detail) << "\n";
  if (EventsTotal > Events.size())
    OS << "  ... " << (EventsTotal - Events.size()) << " more event(s)\n";
  return OS.str();
}

ResourceGovernor::ResourceGovernor(const GovernorLimits &L) : Limits(L) {
  recomputeArmed();
}

void ResourceGovernor::recomputeArmed() {
  Armed = Limits.DeadlineMs != 0 || (Injector && Injector->armed()) ||
          HeapTripLatched;
}

bool ResourceGovernor::tripNow(Budget B, uint64_t Used, uint64_t Limit,
                               uint64_t Checkpoint, bool Injected) {
  if (!Tripped) {
    Tripped = true;
    Trip = {B, Used, Limit, Checkpoint, Injected};
  }
  return false;
}

bool ResourceGovernor::slowTick() {
  // The injector was checked cheaply via Armed; re-derive it here so the
  // hot path stays one flag test.
  recomputeArmed();
  if (HeapTripLatched)
    return tripNow(Budget::HeapCells, HeapCells, Limits.MaxHeapCells,
                   HeapCells, HeapTripInjected);
  if (Injector && Injector->shouldTrip(Budget::Steps)) {
    recomputeArmed();
    return tripNow(Budget::Steps, Steps, Limits.MaxSteps, Steps, true);
  }
  if (Limits.DeadlineMs != 0 && (Steps % kDeadlineStride) == 0) {
    if (elapsedMs() > Limits.DeadlineMs)
      return tripNow(Budget::Deadline, elapsedMs(), Limits.DeadlineMs, Steps,
                     false);
  }
  if (Injector && Injector->shouldTrip(Budget::Deadline)) {
    recomputeArmed();
    return tripNow(Budget::Deadline, elapsedMs(), Limits.DeadlineMs, Steps,
                   true);
  }
  return true;
}

bool ResourceGovernor::noteHeapCell() {
  ++HeapCells;
  bool Injected = Injector && Injector->shouldTrip(Budget::HeapCells);
  bool Over = Limits.MaxHeapCells != 0 && HeapCells > Limits.MaxHeapCells;
  if (Injected || Over) {
    HeapTripLatched = true;
    HeapTripInjected = Injected && !Over;
    Armed = true;
    return false;
  }
  return true;
}

bool ResourceGovernor::noteCowSave() {
  ++HeapCells;
  if (Limits.MaxHeapCells != 0 && HeapCells > Limits.MaxHeapCells) {
    HeapTripLatched = true;
    HeapTripInjected = false;
    Armed = true;
    return false;
  }
  return true;
}

ResourceGovernor::CallGate ResourceGovernor::enterCall() {
  ++CallsEntered;
  if (Injector && Injector->shouldTrip(Budget::CallDepth)) {
    recomputeArmed();
    tripNow(Budget::CallDepth, CallDepth, Limits.MaxCallDepth, CallsEntered,
            true);
    return CallGate::Trip;
  }
  if (Limits.MaxCallDepth != 0 && CallDepth >= Limits.MaxCallDepth)
    return CallGate::Overflow;
  ++CallDepth;
  return CallGate::Ok;
}

bool ResourceGovernor::enterEval() {
  ++EvalsEntered;
  if (Injector && Injector->shouldTrip(Budget::EvalDepth)) {
    recomputeArmed();
    tripNow(Budget::EvalDepth, EvalDepth, Limits.MaxEvalDepth, EvalsEntered,
            true);
    return false;
  }
  if (Limits.MaxEvalDepth != 0 && EvalDepth >= Limits.MaxEvalDepth) {
    tripNow(Budget::EvalDepth, EvalDepth, Limits.MaxEvalDepth, EvalsEntered,
            false);
    return false;
  }
  ++EvalDepth;
  return true;
}

bool ResourceGovernor::spendCfFuel() {
  ++CfFuelUsed;
  if (Injector && Injector->shouldTrip(Budget::CfFuel)) {
    recomputeArmed();
    return false;
  }
  if (Limits.CfFuel != 0 && CfFuelUsed > Limits.CfFuel)
    return false;
  return true;
}

} // namespace dda
