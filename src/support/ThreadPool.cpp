//===- ThreadPool.cpp -----------------------------------------------------==//

#include "support/ThreadPool.h"

#include <atomic>

using namespace dda;

unsigned ThreadPool::hardwareWorkers() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers == 0)
    Workers = hardwareWorkers();
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    // Let queued work drain first so ~ThreadPool is a silent wait() (any
    // unobserved exception is dropped — destructors must not throw).
    Idle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
    Stopping = true;
  }
  HasWork.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Task));
  }
  HasWork.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  Idle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    std::rethrow_exception(E);
  }
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    HasWork.wait(Lock, [this] { return Stopping || !Queue.empty(); });
    if (Queue.empty())
      return; // Stopping and drained.
    std::function<void()> Task = std::move(Queue.front());
    Queue.pop_front();
    ++Running;
    Lock.unlock();
    std::exception_ptr Error;
    try {
      Task();
    } catch (...) {
      Error = std::current_exception();
    }
    Lock.lock();
    if (Error && !FirstError)
      FirstError = Error;
    --Running;
    if (Queue.empty() && Running == 0)
      Idle.notify_all();
  }
}

void ThreadPool::parallelFor(unsigned Jobs, size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (Jobs == 0)
    Jobs = hardwareWorkers();
  if (static_cast<size_t>(Jobs) > N)
    Jobs = static_cast<unsigned>(N);
  if (Jobs <= 1) {
    // Inline serial path: identical to a plain loop, exceptions included.
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  std::atomic<size_t> Next{0};
  ThreadPool Pool(Jobs);
  for (unsigned W = 0; W < Jobs; ++W)
    Pool.submit([&] {
      for (size_t I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
           I = Next.fetch_add(1, std::memory_order_relaxed))
        Fn(I);
    });
  Pool.wait();
}
