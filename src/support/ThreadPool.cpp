//===- ThreadPool.cpp -----------------------------------------------------==//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

using namespace dda;

unsigned ThreadPool::hardwareWorkers() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers == 0)
    Workers = hardwareWorkers();
  this->Workers = Workers;
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() { stop(StopMode::Drain); }

size_t ThreadPool::stop(StopMode Mode) {
  size_t Discarded = 0;
  std::vector<std::function<void()>> DiscardHooks;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Stopped = true; // Reject new submissions from here on.
    if (Mode == StopMode::Cancel) {
      Discarded = Queue.size();
      for (QueuedTask &T : Queue)
        if (T.OnDiscard)
          DiscardHooks.push_back(std::move(T.OnDiscard));
      Queue.clear();
    } else {
      // Let queued work drain first so stop(Drain) is a silent wait() (any
      // unobserved exception is dropped — shutdown must not throw).
      Idle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
    }
    Stopping = true;
  }
  // Outside the pool lock: hooks take their own locks (TaskGroup::Mu) and
  // must be able to wake waiters without re-entering this pool.
  for (const std::function<void()> &Hook : DiscardHooks)
    Hook();
  HasWork.notify_all();
  for (std::thread &T : Threads)
    T.join();
  Threads.clear();
  return Discarded;
}

bool ThreadPool::stopped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stopped;
}

bool ThreadPool::submit(std::function<void()> Task,
                        std::function<void()> OnDiscard) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopped)
      return false;
    Queue.push_back({std::move(Task), std::move(OnDiscard)});
  }
  HasWork.notify_one();
  return true;
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  Idle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    std::rethrow_exception(E);
  }
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  Idle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    HasWork.wait(Lock, [this] { return Stopping || !Queue.empty(); });
    if (Queue.empty())
      return; // Stopping and drained (or cancelled).
    std::function<void()> Task = std::move(Queue.front().Run);
    Queue.pop_front();
    ++Running;
    Lock.unlock();
    std::exception_ptr Error;
    try {
      Task();
    } catch (...) {
      Error = std::current_exception();
    }
    Lock.lock();
    if (Error && !FirstError)
      FirstError = Error;
    --Running;
    if (Queue.empty() && Running == 0)
      Idle.notify_all();
  }
}

void ThreadPool::parallelFor(unsigned Jobs, size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (Jobs == 0)
    Jobs = hardwareWorkers();
  // More workers than cores is pure oversubscription for CPU-bound tasks:
  // the extra threads only add scheduler churn and cache pressure, turning
  // a requested speedup into a measured slowdown on small machines. Clamp
  // so `--jobs 8` on a 2-core host behaves like `--jobs 2` (the merge step
  // is seed-ordered, so results are identical for every Jobs value).
  Jobs = std::min(Jobs, hardwareWorkers());
  if (static_cast<size_t>(Jobs) > N)
    Jobs = static_cast<unsigned>(N);
  if (Jobs <= 1) {
    // Inline serial path: identical to a plain loop, exceptions included.
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  // Claim contiguous chunks instead of single indices: one atomic RMW per
  // chunk instead of per task keeps the cursor cache line cool while still
  // load-balancing the tail (chunks shrink to 1 when N is small).
  const size_t Chunk = std::max<size_t>(1, N / (static_cast<size_t>(Jobs) * 4));
  std::atomic<size_t> Next{0};
  ThreadPool Pool(Jobs);
  for (unsigned W = 0; W < Jobs; ++W)
    Pool.submit([&] {
      for (size_t Begin = Next.fetch_add(Chunk, std::memory_order_relaxed);
           Begin < N;
           Begin = Next.fetch_add(Chunk, std::memory_order_relaxed)) {
        size_t End = std::min(N, Begin + Chunk);
        for (size_t I = Begin; I < End; ++I)
          Fn(I);
      }
    });
  Pool.wait();
}

//===----------------------------------------------------------------------===//
// TaskGroup
//===----------------------------------------------------------------------===//

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> Lock(Mu);
  Done.wait(Lock, [this] { return Pending == 0; });
}

bool TaskGroup::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Pending;
  }
  bool Accepted = Pool.submit(
      [this, Task = std::move(Task)] {
        std::exception_ptr Error;
        try {
          Task();
        } catch (...) {
          Error = std::current_exception();
        }
        std::lock_guard<std::mutex> Lock(Mu);
        if (Error && !FirstError)
          FirstError = Error;
        if (--Pending == 0)
          Done.notify_all();
      },
      // stop(Cancel) throws the wrapper away without running it; settle
      // the group's count (or wait() blocks forever) and surface the
      // cancellation as this group's error.
      [this] {
        std::lock_guard<std::mutex> Lock(Mu);
        if (!FirstError)
          FirstError = std::make_exception_ptr(std::runtime_error(
              "task cancelled by ThreadPool::stop(Cancel)"));
        if (--Pending == 0)
          Done.notify_all();
      });
  if (!Accepted) {
    // Pool already stopped: nothing was enqueued, so nothing is pending.
    std::lock_guard<std::mutex> Lock(Mu);
    if (--Pending == 0)
      Done.notify_all();
  }
  return Accepted;
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  Done.wait(Lock, [this] { return Pending == 0; });
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    std::rethrow_exception(E);
  }
}
