//===- ThreadPool.h - Fixed worker pool for the parallel engine --*- C++ -*-==//
///
/// \file
/// A small fixed-size worker pool used by the parallel analysis engine to
/// fan independent seed/program tasks across cores. Design points:
///
///  * tasks are coarse (a whole instrumented run each), so a single shared
///    queue under a mutex is the right shape — contention is per-task, not
///    per-step;
///  * `parallelFor` hands workers a shared atomic chunk cursor instead of
///    pre-splitting ranges, so a runaway task (one seed hitting its budget
///    and degrading) never stalls the other workers' progress; the worker
///    count is clamped to the hardware thread count, because CPU-bound
///    oversubscription only buys scheduler churn;
///  * exceptions thrown by tasks are captured and the *first* one is
///    rethrown from wait()/parallelFor after every task has settled —
///    sibling tasks run to completion, matching the engine's "one runaway
///    seed degrades alone" policy;
///  * `parallelFor` with Jobs <= 1 (or a single task) runs inline on the
///    calling thread — no pool, no queue, no synchronization — so the
///    single-threaded path is byte-for-byte the serial code path.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_THREADPOOL_H
#define DDA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dda {

/// Fixed worker pool with a shared task queue and first-exception
/// propagation.
class ThreadPool {
public:
  /// Spawns \p Workers threads; 0 means hardwareWorkers().
  explicit ThreadPool(unsigned Workers = 0);

  /// Drains the queue, joins all workers. Pending task exceptions that
  /// wait() never observed are dropped (destructors must not throw).
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workers() const { return static_cast<unsigned>(Threads.size()); }

  /// Enqueues one task for execution on some worker.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised (if any).
  void wait();

  /// Runs `Fn(0) .. Fn(N-1)` across \p Jobs workers (0 = hardwareWorkers();
  /// clamped to the hardware thread count) and waits for completion.
  /// Workers claim contiguous index chunks from a shared cursor, so long
  /// and short tasks load-balance naturally. Jobs <= 1 or N <= 1 executes
  /// inline on the calling thread. The first task exception is rethrown
  /// after all claimed tasks settle.
  static void parallelFor(unsigned Jobs, size_t N,
                          const std::function<void(size_t)> &Fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareWorkers();

private:
  void workerLoop();

  std::mutex Mu;
  std::condition_variable HasWork; ///< Signaled on submit and shutdown.
  std::condition_variable Idle;    ///< Signaled when the pool drains.
  std::deque<std::function<void()>> Queue;
  size_t Running = 0; ///< Tasks currently executing on a worker.
  bool Stopping = false;
  std::exception_ptr FirstError;
  std::vector<std::thread> Threads;
};

} // namespace dda

#endif // DDA_SUPPORT_THREADPOOL_H
