//===- ThreadPool.h - Fixed worker pool for the parallel engine --*- C++ -*-==//
///
/// \file
/// A small fixed-size worker pool used by the parallel analysis engine to
/// fan independent seed/program tasks across cores. Design points:
///
///  * tasks are coarse (a whole instrumented run each), so a single shared
///    queue under a mutex is the right shape — contention is per-task, not
///    per-step;
///  * `parallelFor` hands workers a shared atomic chunk cursor instead of
///    pre-splitting ranges, so a runaway task (one seed hitting its budget
///    and degrading) never stalls the other workers' progress; the worker
///    count is clamped to the hardware thread count, because CPU-bound
///    oversubscription only buys scheduler churn;
///  * exceptions thrown by tasks are captured and the *first* one is
///    rethrown from wait()/parallelFor after every task has settled —
///    sibling tasks run to completion, matching the engine's "one runaway
///    seed degrades alone" policy;
///  * `parallelFor` with Jobs <= 1 (or a single task) runs inline on the
///    calling thread — no pool, no queue, no synchronization — so the
///    single-threaded path is byte-for-byte the serial code path;
///  * long-lived pools (the serve daemon) shut down through an explicit
///    `stop(StopMode)` — Drain finishes queued work, Cancel discards tasks
///    that have not started — and share the pool across concurrent
///    requests via `TaskGroup`, which waits on (and propagates the first
///    exception of) *its own* tasks only.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_THREADPOOL_H
#define DDA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dda {

/// Fixed worker pool with a shared task queue and first-exception
/// propagation.
class ThreadPool {
public:
  /// How stop() disposes of tasks that are still queued.
  enum class StopMode : uint8_t {
    Drain,  ///< Run every queued task to completion before joining.
    Cancel, ///< Discard queued tasks that have not started; running ones
            ///< finish.
  };

  /// Spawns \p Workers threads; 0 means hardwareWorkers().
  explicit ThreadPool(unsigned Workers = 0);

  /// Equivalent to stop(StopMode::Drain): queued work runs, workers join.
  /// Pending task exceptions that wait() never observed are dropped
  /// (destructors must not throw).
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workers() const { return Workers; }

  /// Enqueues one task for execution on some worker. Returns false (and
  /// drops the task) once the pool has been stopped. \p OnDiscard, when
  /// given, is invoked (outside the pool lock) if the task is thrown away
  /// by stop(Cancel) before it ever ran — wrappers that keep external
  /// bookkeeping (TaskGroup's pending count) use it to settle instead of
  /// deadlocking their waiters.
  bool submit(std::function<void()> Task,
              std::function<void()> OnDiscard = nullptr);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised (if any).
  void wait();

  /// Blocks until the queue is empty and no task is running. Never throws:
  /// shutdown paths use this where an in-flight failure must not escape.
  /// The pool remains usable afterwards.
  void drain();

  /// Shuts the pool down and joins every worker. Drain runs all queued
  /// tasks first; Cancel discards tasks that have not started (tasks
  /// already running always finish) and invokes each discarded task's
  /// OnDiscard hook, so TaskGroup bookkeeping settles instead of leaving
  /// wait() blocked forever. Returns the number of discarded tasks. After
  /// stop() the pool accepts no new work (submit returns false).
  /// Idempotent; later calls return 0.
  size_t stop(StopMode Mode);

  /// True once stop() has begun; submissions are rejected.
  bool stopped() const;

  /// Runs `Fn(0) .. Fn(N-1)` across \p Jobs workers (0 = hardwareWorkers();
  /// clamped to the hardware thread count) and waits for completion.
  /// Workers claim contiguous index chunks from a shared cursor, so long
  /// and short tasks load-balance naturally. Jobs <= 1 or N <= 1 executes
  /// inline on the calling thread. The first task exception is rethrown
  /// after all claimed tasks settle.
  static void parallelFor(unsigned Jobs, size_t N,
                          const std::function<void(size_t)> &Fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareWorkers();

private:
  friend class TaskGroup;
  void workerLoop();

  /// A queued task plus its cancellation hook (null for plain tasks).
  struct QueuedTask {
    std::function<void()> Run;
    std::function<void()> OnDiscard;
  };

  mutable std::mutex Mu;
  std::condition_variable HasWork; ///< Signaled on submit and shutdown.
  std::condition_variable Idle;    ///< Signaled when the pool drains.
  std::deque<QueuedTask> Queue;
  size_t Running = 0;   ///< Tasks currently executing on a worker.
  bool Stopping = false; ///< Workers may exit once the queue is empty.
  bool Stopped = false;  ///< submit() rejects new work.
  std::exception_ptr FirstError;
  std::vector<std::thread> Threads;
  unsigned Workers = 0; ///< Stable after construction (Threads is cleared
                        ///< by stop(), but the size is still meaningful).
};

/// A request-scoped slice of a shared ThreadPool: tasks submitted through a
/// group run on the pool's workers interleaved with other groups' tasks,
/// but `wait()` blocks only on — and rethrows the first exception of —
/// *this* group's tasks. The serve daemon gives each analysis request one
/// group over the service-wide pool, so one request's fan-out can neither
/// observe nor stall another's.
class TaskGroup {
public:
  explicit TaskGroup(ThreadPool &Pool) : Pool(Pool) {}

  /// Blocks until the group's tasks settle; any unobserved exception is
  /// dropped (destructors must not throw).
  ~TaskGroup();

  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;

  /// Submits one task attributed to this group. Returns false (task
  /// dropped, nothing pending) if the pool has been stopped — callers that
  /// must make progress anyway (shutdown races) run the task inline.
  /// If the pool later discards the task via stop(Cancel), the group
  /// records a "task cancelled" error and settles its pending count, so
  /// wait() throws instead of deadlocking.
  bool submit(std::function<void()> Task);

  /// Blocks until every task submitted through this group has finished,
  /// then rethrows the first exception any of them raised.
  void wait();

private:
  ThreadPool &Pool;
  std::mutex Mu;
  std::condition_variable Done;
  size_t Pending = 0;
  std::exception_ptr FirstError;
};

} // namespace dda

#endif // DDA_SUPPORT_THREADPOOL_H
