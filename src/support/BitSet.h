//===- BitSet.h - Dense auto-growing bitset over 32-bit ids ------*- C++ -*-==//
///
/// \file
/// NodeIDs (and the other dense 32-bit handles: ContextID, StringId raws)
/// are allocated sequentially per ASTContext, so "the set of executed
/// statements" is a dense subset of [0, maxNode). A hash-set probe per
/// executed statement — two dependent loads plus a malloc per first-time
/// insert — becomes a single bit test/set in one contiguous word array.
///
/// Iteration is in ascending id order (word-by-word, counting trailing
/// zeros), which is exactly the sorted order every fingerprint-visible
/// consumer (serve's executed-id digest, the parallel fold, test dumps)
/// previously produced by copy-and-sort; see DESIGN.md "Hot-path memory
/// layout".
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_BITSET_H
#define DDA_SUPPORT_BITSET_H

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

namespace dda {

class NodeBitSet {
  std::vector<uint64_t> Words;
  size_t Live = 0;

  static unsigned popcount64(uint64_t X) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_popcountll(X));
#else
    unsigned C = 0;
    while (X) {
      X &= X - 1;
      ++C;
    }
    return C;
#endif
  }

  static unsigned ctz64(uint64_t X) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_ctzll(X));
#else
    unsigned C = 0;
    while (!(X & 1)) {
      X >>= 1;
      ++C;
    }
    return C;
#endif
  }

public:
  using value_type = uint32_t;

  NodeBitSet() = default;

  /// Inserts \p Id; returns true if it was newly added (std::set-style).
  bool insert(uint32_t Id) {
    size_t W = Id >> 6;
    if (W >= Words.size())
      Words.resize(W + 1, 0);
    uint64_t Bit = 1ull << (Id & 63);
    if (Words[W] & Bit)
      return false;
    Words[W] |= Bit;
    ++Live;
    return true;
  }

  bool contains(uint32_t Id) const {
    size_t W = Id >> 6;
    return W < Words.size() && ((Words[W] >> (Id & 63)) & 1);
  }

  size_t count(uint32_t Id) const { return contains(Id) ? 1 : 0; }
  size_t size() const { return Live; }
  bool empty() const { return Live == 0; }

  void clear() {
    Words.clear();
    Live = 0;
  }

  /// Unions \p O into this set (the parallel fold's merge step).
  void insertAll(const NodeBitSet &O) {
    if (O.Words.size() > Words.size())
      Words.resize(O.Words.size(), 0);
    for (size_t I = 0; I < O.Words.size(); ++I) {
      uint64_t New = O.Words[I] & ~Words[I];
      Live += popcount64(New);
      Words[I] |= O.Words[I];
    }
  }

  bool operator==(const NodeBitSet &O) const {
    const NodeBitSet &A = Words.size() <= O.Words.size() ? *this : O;
    const NodeBitSet &B = Words.size() <= O.Words.size() ? O : *this;
    for (size_t I = 0; I < A.Words.size(); ++I)
      if (A.Words[I] != B.Words[I])
        return false;
    for (size_t I = A.Words.size(); I < B.Words.size(); ++I)
      if (B.Words[I] != 0)
        return false;
    return true;
  }
  bool operator!=(const NodeBitSet &O) const { return !(*this == O); }

  /// Ascending-order iteration.
  class const_iterator {
    const std::vector<uint64_t> *W = nullptr;
    size_t WI = 0;
    uint64_t Rest = 0; ///< Unvisited bits of word WI.

    void advanceWord() {
      while (Rest == 0 && W && WI + 1 < W->size())
        Rest = (*W)[++WI];
      if (Rest == 0) {
        // Exhausted: normalize to end().
        W = nullptr;
        WI = 0;
      }
    }

  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t *;
    using reference = uint32_t;

    const_iterator() = default;
    explicit const_iterator(const std::vector<uint64_t> *Words) : W(Words) {
      if (W && !W->empty())
        Rest = (*W)[0];
      advanceWord();
    }

    uint32_t operator*() const {
      return static_cast<uint32_t>(WI * 64 + ctz64(Rest));
    }
    const_iterator &operator++() {
      Rest &= Rest - 1; // Clear lowest set bit.
      advanceWord();
      return *this;
    }
    bool operator==(const const_iterator &O) const {
      return W == O.W && WI == O.WI && Rest == O.Rest;
    }
    bool operator!=(const const_iterator &O) const { return !(*this == O); }
  };

  const_iterator begin() const {
    return Live ? const_iterator(&Words) : end();
  }
  const_iterator end() const { return const_iterator(); }

  /// All ids in ascending order (natural iteration order is already sorted).
  std::vector<uint32_t> toSortedVector() const {
    std::vector<uint32_t> Out;
    Out.reserve(Live);
    for (uint32_t Id : *this)
      Out.push_back(Id);
    return Out;
  }
};

} // namespace dda

#endif // DDA_SUPPORT_BITSET_H
