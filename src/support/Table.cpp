//===- Table.cpp ----------------------------------------------------------==//

#include "support/Table.h"

#include <algorithm>

using namespace dda;

std::string TextTable::str() const {
  std::vector<size_t> Widths(Header.size(), 0);
  auto Widen = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Widen(Header);
  for (const auto &Row : Rows)
    Widen(Row);

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Row.size() ? Row[I] : "";
      Cell.resize(Widths[I], ' ');
      Line += Cell;
      if (I + 1 != Widths.size())
        Line += "  ";
    }
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W;
  Total += Widths.empty() ? 0 : 2 * (Widths.size() - 1);
  Out += std::string(Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}
