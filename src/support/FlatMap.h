//===- FlatMap.h - Open-addressing flat hash map/set -------------*- C++ -*-==//
///
/// \file
/// Cache-dense hash containers for the analysis hot path. `std::unordered_map`
/// is a node-based chain-bucket table: every probe is at least two dependent
/// loads (bucket head, then node), every insert is a malloc, and iteration
/// chases pointers. The per-step path of the instrumented interpreter probes
/// such tables several times per executed operation (fact record, site
/// counts, context interning), so PR 10 replaces them with an open-addressing
/// table whose entries live in one flat array:
///
///  * power-of-two capacity, linear probing, splitmix64-finalized hashes
///    (a weak hash in a power-of-two table collides in the low bits — see
///    the FactKeyHash regression test);
///  * byte-sized control codes (empty / full / tombstone) in a separate
///    array, so the probe loop touches one cache line of metadata before it
///    ever looks at an entry;
///  * erase writes a tombstone; tombstones are reclaimed by the next rehash
///    and reused by inserts, so delete-then-reinsert churn cannot grow the
///    table unboundedly (mirrors the Interner regression);
///  * optional inline small-size storage (`InlineCap` slots embedded in the
///    object) so short-lived tables — per-call-frame site counts — never
///    allocate.
///
/// Keys and values must be trivially copyable and trivially destructible:
/// every client keys on interned atoms, node IDs, or POD fact keys, and that
/// restriction is what makes rehash a straight memcpy-class loop. Iteration
/// order is arbitrary (as with unordered_map); every fingerprint-visible
/// consumer sorts before rendering — see DESIGN.md "Hot-path memory layout"
/// for the byte-identity obligations.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_FLATMAP_H
#define DDA_SUPPORT_FLATMAP_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <new>
#include <type_traits>
#include <utility>

namespace dda {

/// Fast 64-bit bit-mixing finalizer (splitmix64). Distributes entropy from
/// every input bit into every output bit, so taking the low bits (power-of-
/// two table masks) is safe even for sequential or packed keys.
inline uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

/// Default hasher: splitmix64 over the key's integral value. Specialized for
/// integral/enum keys and pointers here; domain key types (StringId, FactKey,
/// ContextKey) provide their own hashers or specializations at their
/// definition site.
template <typename K, typename Enable = void> struct FlatHash;

template <typename K>
struct FlatHash<K, std::enable_if_t<std::is_integral_v<K> || std::is_enum_v<K>>> {
  uint64_t operator()(K Key) const {
    return splitmix64(static_cast<uint64_t>(Key));
  }
};

template <typename T> struct FlatHash<T *> {
  uint64_t operator()(T *Key) const {
    return splitmix64(reinterpret_cast<uintptr_t>(Key));
  }
};

/// Open-addressing hash map. See the file comment for the design;
/// the API mirrors the subset of std::unordered_map the analysis uses
/// (find/end/count/at/operator[]/try_emplace/insert/erase/clear/iteration).
template <typename K, typename V, typename Hasher = FlatHash<K>,
          unsigned InlineCap = 0>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<K> &&
                    std::is_trivially_destructible_v<K>,
                "FlatMap keys must be POD-like");
  static_assert(std::is_trivially_copyable_v<V> &&
                    std::is_trivially_destructible_v<V>,
                "FlatMap values must be POD-like");
  static_assert((InlineCap & (InlineCap - 1)) == 0,
                "InlineCap must be zero or a power of two");

public:
  struct Entry {
    K first;
    V second;
  };
  using value_type = Entry;

private:
  /// Control bytes: Empty/Tomb, or (high bit | 7-bit hash fragment) for a
  /// full slot. A probe compares the fragment before ever touching the
  /// 40-odd-byte Entry, so mismatched cluster neighbors cost one metadata
  /// byte instead of an Entry cache line (1/128 false-positive rate).
  /// The slot index uses only the hash's low bits, so the fragment does not
  /// affect placement — layouts (and iteration order) are identical to a
  /// plain Full/Empty/Tomb encoding.
  enum : uint8_t { Empty = 0, Tomb = 1 };
  static bool isFull(uint8_t C) { return C & 0x80; }
  static uint8_t fullCtrl(uint64_t H) {
    return static_cast<uint8_t>(0x80 | (H >> 57));
  }

  Entry *Slots = nullptr;
  uint8_t *Ctrl = nullptr;
  size_t Cap = 0;  ///< Power of two (or 0 before first insert when no inline).
  size_t Sz = 0;   ///< Live entries.
  size_t Tombs = 0;
  char *HeapBlock = nullptr; ///< Owned allocation (null while inline).

  alignas(alignof(Entry)) unsigned char
      InlineRaw[InlineCap ? sizeof(Entry) * InlineCap : 1];
  uint8_t InlineCtrl[InlineCap ? InlineCap : 1];

  static size_t ceilPow2(size_t N) {
    size_t C = 1;
    while (C < N)
      C <<= 1;
    return C;
  }

  void initInline() {
    if constexpr (InlineCap > 0) {
      Slots = reinterpret_cast<Entry *>(InlineRaw);
      Ctrl = InlineCtrl;
      Cap = InlineCap;
      std::memset(Ctrl, Empty, InlineCap);
    }
  }

  /// Allocates a fresh block of capacity \p NewCap and re-inserts every live
  /// entry (dropping tombstones).
  void rehash(size_t NewCap) {
    assert((NewCap & (NewCap - 1)) == 0 && NewCap >= Sz * 2);
    Entry *OldSlots = Slots;
    uint8_t *OldCtrl = Ctrl;
    size_t OldCap = Cap;
    char *OldBlock = HeapBlock;

    size_t Bytes = sizeof(Entry) * NewCap + NewCap;
    char *Block = static_cast<char *>(
        ::operator new(Bytes, std::align_val_t(alignof(Entry))));
    Slots = reinterpret_cast<Entry *>(Block);
    Ctrl = reinterpret_cast<uint8_t *>(Block + sizeof(Entry) * NewCap);
    Cap = NewCap;
    HeapBlock = Block;
    std::memset(Ctrl, Empty, NewCap);
    Tombs = 0;

    size_t Mask = NewCap - 1;
    for (size_t I = 0; I < OldCap; ++I) {
      if (!isFull(OldCtrl[I]))
        continue;
      uint64_t H = Hasher{}(OldSlots[I].first);
      size_t J = static_cast<size_t>(H) & Mask;
      while (isFull(Ctrl[J]))
        J = (J + 1) & Mask;
      new (&Slots[J]) Entry(OldSlots[I]);
      Ctrl[J] = fullCtrl(H);
    }
    if (OldBlock)
      ::operator delete(OldBlock, std::align_val_t(alignof(Entry)));
  }

  void growIfNeeded() {
    if (Cap == 0) {
      if constexpr (InlineCap > 0)
        initInline();
      else
        rehash(16);
      return;
    }
    // Grow at 7/8 occupancy counting tombstones; size so live load <= 1/2.
    if ((Sz + Tombs + 1) * 8 > Cap * 7)
      rehash(ceilPow2((Sz + 1) * 2 < 16 ? 16 : (Sz + 1) * 2));
  }

  /// Probe for \p Key. Returns the slot index holding it, or ~size_t(0).
  size_t findIndex(const K &Key) const {
    if (Sz == 0)
      return ~size_t(0);
    uint64_t H = Hasher{}(Key);
    uint8_t H2 = fullCtrl(H);
    size_t Mask = Cap - 1;
    size_t I = static_cast<size_t>(H) & Mask;
    while (true) {
      uint8_t C = Ctrl[I];
      if (C == H2 && Slots[I].first == Key)
        return I;
      if (C == Empty)
        return ~size_t(0);
      I = (I + 1) & Mask;
    }
  }

  /// Probe for insert: existing slot, else first tombstone on the probe
  /// path, else the terminating empty slot. \p Found reports a hit;
  /// \p NewCtrl is the control byte a fresh insert at the returned slot
  /// must store.
  size_t findInsertIndex(const K &Key, bool &Found, uint8_t &NewCtrl) {
    uint64_t H = Hasher{}(Key);
    uint8_t H2 = fullCtrl(H);
    NewCtrl = H2;
    size_t Mask = Cap - 1;
    size_t I = static_cast<size_t>(H) & Mask;
    size_t FirstTomb = ~size_t(0);
    while (true) {
      uint8_t C = Ctrl[I];
      if (C == H2 && Slots[I].first == Key) {
        Found = true;
        return I;
      }
      if (C == Empty) {
        Found = false;
        if (FirstTomb != ~size_t(0))
          return FirstTomb;
        return I;
      }
      if (C == Tomb && FirstTomb == ~size_t(0))
        FirstTomb = I;
      I = (I + 1) & Mask;
    }
  }

  void copyFrom(const FlatMap &O) {
    Sz = O.Sz;
    Tombs = O.Tombs;
    if (O.HeapBlock) {
      size_t Bytes = sizeof(Entry) * O.Cap + O.Cap;
      HeapBlock = static_cast<char *>(
          ::operator new(Bytes, std::align_val_t(alignof(Entry))));
      std::memcpy(HeapBlock, O.HeapBlock, Bytes);
      Slots = reinterpret_cast<Entry *>(HeapBlock);
      Ctrl = reinterpret_cast<uint8_t *>(HeapBlock + sizeof(Entry) * O.Cap);
      Cap = O.Cap;
    } else if (O.Cap > 0) {
      // Source lives in its inline buffer; copy into ours.
      initInline();
      std::memcpy(InlineRaw, O.InlineRaw, sizeof(Entry) * InlineCap);
      std::memcpy(InlineCtrl, O.InlineCtrl, InlineCap);
    }
  }

  void releaseHeap() {
    if (HeapBlock) {
      ::operator delete(HeapBlock, std::align_val_t(alignof(Entry)));
      HeapBlock = nullptr;
    }
  }

  void resetToEmpty() {
    Slots = nullptr;
    Ctrl = nullptr;
    Cap = 0;
    Sz = 0;
    Tombs = 0;
    HeapBlock = nullptr;
    if constexpr (InlineCap > 0)
      initInline();
  }

public:
  FlatMap() {
    if constexpr (InlineCap > 0)
      initInline();
  }
  ~FlatMap() { releaseHeap(); }

  FlatMap(const FlatMap &O) { copyFrom(O); }
  FlatMap &operator=(const FlatMap &O) {
    if (this == &O)
      return *this;
    releaseHeap();
    resetToEmpty();
    copyFrom(O);
    return *this;
  }

  FlatMap(FlatMap &&O) noexcept {
    if (O.HeapBlock) {
      Slots = O.Slots;
      Ctrl = O.Ctrl;
      Cap = O.Cap;
      Sz = O.Sz;
      Tombs = O.Tombs;
      HeapBlock = O.HeapBlock;
      O.HeapBlock = nullptr;
      O.resetToEmpty();
    } else {
      copyFrom(O);
      O.clear();
    }
  }
  FlatMap &operator=(FlatMap &&O) noexcept {
    if (this == &O)
      return *this;
    releaseHeap();
    resetToEmpty();
    if (O.HeapBlock) {
      Slots = O.Slots;
      Ctrl = O.Ctrl;
      Cap = O.Cap;
      Sz = O.Sz;
      Tombs = O.Tombs;
      HeapBlock = O.HeapBlock;
      O.HeapBlock = nullptr;
      O.resetToEmpty();
    } else {
      copyFrom(O);
      O.clear();
    }
    return *this;
  }

  // --- Iteration ---------------------------------------------------------

  template <bool IsConst> class Iter {
    using MapT = std::conditional_t<IsConst, const FlatMap, FlatMap>;
    using EntryT = std::conditional_t<IsConst, const Entry, Entry>;
    MapT *M = nullptr;
    size_t I = 0;

    void skipDead() {
      while (I < M->Cap && !FlatMap::isFull(M->Ctrl[I]))
        ++I;
    }

  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Entry;
    using difference_type = std::ptrdiff_t;
    using pointer = EntryT *;
    using reference = EntryT &;

    Iter() = default;
    Iter(MapT *Map, size_t Idx) : M(Map), I(Idx) {
      if (M)
        skipDead();
    }
    /// const_iterator from iterator.
    template <bool C = IsConst, typename = std::enable_if_t<C>>
    Iter(const Iter<false> &O) : M(O.map()), I(O.index()) {}

    EntryT &operator*() const { return M->Slots[I]; }
    EntryT *operator->() const { return &M->Slots[I]; }
    Iter &operator++() {
      ++I;
      skipDead();
      return *this;
    }
    bool operator==(const Iter &O) const { return I == O.I; }
    bool operator!=(const Iter &O) const { return I != O.I; }

    MapT *map() const { return M; }
    size_t index() const { return I; }
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, Cap); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, Cap); }

  // --- Lookup ------------------------------------------------------------

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }
  size_t capacity() const { return Cap; }
  size_t tombstones() const { return Tombs; }

  iterator find(const K &Key) {
    size_t I = findIndex(Key);
    return I == ~size_t(0) ? end() : iterator(this, I);
  }
  const_iterator find(const K &Key) const {
    size_t I = findIndex(Key);
    return I == ~size_t(0) ? end() : const_iterator(this, I);
  }

  size_t count(const K &Key) const {
    return findIndex(Key) == ~size_t(0) ? 0 : 1;
  }
  bool contains(const K &Key) const { return findIndex(Key) != ~size_t(0); }

  V &at(const K &Key) {
    size_t I = findIndex(Key);
    assert(I != ~size_t(0) && "FlatMap::at: key not present");
    return Slots[I].second;
  }
  const V &at(const K &Key) const {
    size_t I = findIndex(Key);
    assert(I != ~size_t(0) && "FlatMap::at: key not present");
    return Slots[I].second;
  }

  // --- Mutation ----------------------------------------------------------

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K &Key, Args &&...A) {
    growIfNeeded();
    bool Found;
    uint8_t NewCtrl;
    size_t I = findInsertIndex(Key, Found, NewCtrl);
    if (!Found) {
      if (Ctrl[I] == Tomb)
        --Tombs;
      new (&Slots[I]) Entry{Key, V(std::forward<Args>(A)...)};
      Ctrl[I] = NewCtrl;
      ++Sz;
    }
    return {iterator(this, I), !Found};
  }

  std::pair<iterator, bool> insert(const std::pair<K, V> &KV) {
    return try_emplace(KV.first, KV.second);
  }
  template <typename... Args>
  std::pair<iterator, bool> emplace(const K &Key, Args &&...A) {
    return try_emplace(Key, std::forward<Args>(A)...);
  }

  V &operator[](const K &Key) { return try_emplace(Key).first->second; }

  size_t erase(const K &Key) {
    size_t I = findIndex(Key);
    if (I == ~size_t(0))
      return 0;
    Ctrl[I] = Tomb;
    ++Tombs;
    --Sz;
    return 1;
  }

  iterator erase(iterator It) {
    assert(It.map() == this && isFull(Ctrl[It.index()]));
    Ctrl[It.index()] = Tomb;
    ++Tombs;
    --Sz;
    ++It;
    return It;
  }

  void clear() {
    if (Cap)
      std::memset(Ctrl, Empty, Cap);
    Sz = 0;
    Tombs = 0;
  }

  void reserve(size_t N) {
    size_t Want = ceilPow2(N * 2 < 16 ? 16 : N * 2);
    if (Want > Cap)
      rehash(Want);
  }
};

/// Open-addressing hash set: a FlatMap with empty payloads; iteration yields
/// the keys.
template <typename K, typename Hasher = FlatHash<K>, unsigned InlineCap = 0>
class FlatSet {
  struct Unit {};
  using MapT = FlatMap<K, Unit, Hasher, InlineCap>;
  MapT M;

public:
  template <bool IsConst> class Iter {
    using Inner = typename MapT::const_iterator;
    Inner It;

  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = K;
    using difference_type = std::ptrdiff_t;
    using pointer = const K *;
    using reference = const K &;

    Iter() = default;
    explicit Iter(Inner I) : It(I) {}
    const K &operator*() const { return It->first; }
    const K *operator->() const { return &It->first; }
    Iter &operator++() {
      ++It;
      return *this;
    }
    bool operator==(const Iter &O) const { return It == O.It; }
    bool operator!=(const Iter &O) const { return It != O.It; }
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  const_iterator begin() const { return const_iterator(M.begin()); }
  const_iterator end() const { return const_iterator(M.end()); }

  size_t size() const { return M.size(); }
  bool empty() const { return M.empty(); }
  size_t capacity() const { return M.capacity(); }
  size_t tombstones() const { return M.tombstones(); }

  bool insert(const K &Key) { return M.try_emplace(Key).second; }
  size_t count(const K &Key) const { return M.count(Key); }
  bool contains(const K &Key) const { return M.contains(Key); }
  size_t erase(const K &Key) { return M.erase(Key); }
  void clear() { M.clear(); }
  void reserve(size_t N) { M.reserve(N); }
};

} // namespace dda

#endif // DDA_SUPPORT_FLATMAP_H
