//===- StringUtils.h - String and number conversions ------------*- C++ -*-==//
///
/// \file
/// Conversions between MiniJS numbers and strings following (a practical
/// subset of) the ECMAScript ToString/ToNumber rules, plus string escaping
/// helpers used by the AST printer and fact rendering.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_STRINGUTILS_H
#define DDA_SUPPORT_STRINGUTILS_H

#include <string>

namespace dda {

/// Formats a double the way JavaScript's ToString does for the common cases:
/// integral values print without a decimal point, NaN prints "NaN", and
/// infinities print "Infinity"/"-Infinity". Non-integral values use the
/// shortest round-trip representation.
std::string numberToString(double Value);

/// Parses a string as a JavaScript number (ToNumber on a string). Leading and
/// trailing whitespace is permitted; the empty string is 0; anything
/// unparseable yields NaN.
double stringToNumber(const std::string &Text);

/// Escapes a string for inclusion inside double quotes in MiniJS source.
std::string escapeString(const std::string &Text);

/// True if \p Text is a valid MiniJS identifier (so a determinate property
/// name can be rewritten from o["x"] to o.x by the specializer).
bool isIdentifier(const std::string &Text);

} // namespace dda

#endif // DDA_SUPPORT_STRINGUTILS_H
