//===- ResourceGovernor.h - Unified analysis budgets -------------*- C++ -*-==//
///
/// \file
/// One checkpointed budget authority for everything that can run away:
/// interpreter steps, wall-clock deadline, heap cells, call depth,
/// counterfactual fuel, and eval re-parse depth.
///
/// The governor turns "limit exceeded" from a fatal condition into a
/// *latched trip*: the first budget that trips is recorded (which budget,
/// how much was used, at which checkpoint) and every subsequent checkpoint
/// of an unwinding kind reports the trip again so callers can propagate a
/// trap completion outward without ever losing the original cause. The
/// instrumented analysis pairs a trip with the paper's ĈNTRABORT-style
/// degradation (flush + taint) so the facts it already recorded stay sound;
/// see DESIGN.md "Resource governance".
///
/// Checkpoints are deliberately cheap — a counter increment, a compare, and
/// a branch that is almost always not-taken — so the governor can sit on
/// the interpreter's per-step hot path (see bench/bench_governor.cpp for
/// the overhead budget). The wall clock is only sampled every
/// `kDeadlineStride` steps to keep `now()` syscalls off the hot path.
///
/// A deterministic FaultInjector (FaultInjector.h) can be attached to trip
/// any budget at the Nth checkpoint of its class, so every degradation path
/// is drivable from tests without constructing pathological inputs.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_SUPPORT_RESOURCEGOVERNOR_H
#define DDA_SUPPORT_RESOURCEGOVERNOR_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace dda {

class FaultInjector;

/// The budget classes the governor meters. Also the checkpoint classes the
/// FaultInjector can target.
enum class Budget : uint8_t {
  Steps,     ///< Interpreter small-steps (statement/expression ticks).
  Deadline,  ///< Wall-clock milliseconds for the whole run.
  HeapCells, ///< Objects allocated in the Heap arena.
  CallDepth, ///< Nested closure invocations.
  CfFuel,    ///< Total counterfactual branch executions per run.
  EvalDepth, ///< Nested eval re-parse/execute levels.
};

/// Stable short name ("steps", "deadline", ...) used by --inject-fault specs
/// and reports.
const char *budgetName(Budget B);

/// How a run ended when it did not end normally. `None` means no trap;
/// `InternalError` is reserved for genuine interpreter bugs (malformed AST,
/// broken invariants) and is the only kind that should be treated as a
/// defect rather than a resource condition.
enum class TrapKind : uint8_t {
  None,
  InternalError,
  StepLimit,
  Deadline,
  HeapLimit,
  CallDepthLimit,
  CfFuelExhausted,
  EvalDepthLimit,
};

/// Human-readable trap name for messages and reports.
const char *trapKindName(TrapKind K);

/// The trap a tripped budget maps to.
TrapKind trapForBudget(Budget B);

/// True for traps caused by a resource budget (everything except None and
/// InternalError).
inline bool isResourceTrap(TrapKind K) {
  return K != TrapKind::None && K != TrapKind::InternalError;
}

/// All limits in one place. Zero means "unlimited" for every field except
/// MaxCallDepth (a hard 0 call depth would make every call fail; callers
/// that want that can still set 1).
struct GovernorLimits {
  uint64_t MaxSteps = 50'000'000;
  uint64_t DeadlineMs = 0;    ///< 0 = no wall-clock deadline.
  uint64_t MaxHeapCells = 0;  ///< 0 = unlimited heap cells.
  unsigned MaxCallDepth = 600;
  uint64_t CfFuel = 0;        ///< 0 = unlimited counterfactual executions.
  unsigned MaxEvalDepth = 64; ///< Nested evals; 0 = unlimited.
};

/// Composes two budget values where 0 means "unlimited": the tighter
/// (smaller nonzero) one wins. The serve layer uses this to fold the
/// service-level watchdog ceiling into every request's own deadline.
uint64_t composeBudget(uint64_t A, uint64_t B);

/// Folds a service-level \p Ceiling into a \p Request's limits, field by
/// field, via composeBudget: a tenant can tighten its own budgets but can
/// never exceed the service ceiling. A zero ceiling field imposes no bound
/// on that budget class.
GovernorLimits composeLimits(const GovernorLimits &Request,
                             const GovernorLimits &Ceiling);

/// What tripped, with enough context to reproduce and report.
struct TripInfo {
  Budget Which = Budget::Steps;
  uint64_t Used = 0;       ///< Amount consumed when the trip fired.
  uint64_t Limit = 0;      ///< The configured limit (0 if injected w/o limit).
  uint64_t Checkpoint = 0; ///< Ordinal of the tripping checkpoint in its class.
  bool Injected = false;   ///< True when a FaultInjector forced the trip.
};

/// One sound-degradation action the analysis took in response to a trip (or
/// to fuel exhaustion). Collected into a DegradationReport.
struct DegradationEvent {
  TrapKind Cause = TrapKind::None;
  /// What was weakened: "cntr-abort", "heap-flush", "env-taint", ...
  std::string Action;
  /// Where (node id / variable names), best effort.
  std::string Detail;
};

/// Structured account of a degraded run: which budget tripped, what the
/// analysis weakened in response, and how much of the run completed. A
/// report with `Trap == TrapKind::None` means the run completed within
/// budget (Events may still record cf-fuel degradations, which never
/// abandon the run).
struct DegradationReport {
  TrapKind Trap = TrapKind::None;
  TripInfo Trip;
  std::vector<DegradationEvent> Events; ///< Capped at kMaxEvents.
  uint64_t EventsTotal = 0;             ///< Including dropped ones.
  uint64_t StepsUsed = 0;
  uint64_t HeapCellsUsed = 0;

  static constexpr size_t kMaxEvents = 32;

  bool degraded() const { return Trap != TrapKind::None || EventsTotal != 0; }
  void addEvent(TrapKind Cause, std::string Action, std::string Detail);
  /// Multi-line human-readable rendering (for ddajs --verbose output).
  std::string str() const;
};

/// The checkpointed budget authority. One instance per interpreter run.
///
/// Checkpoint API (each returns/indicates whether the caller must unwind):
///   - tickStep()        per interpreter small-step; also samples deadline
///                       (strided) and observes latched heap trips.
///   - noteHeapCell()    per Heap::allocate; latches (allocation cannot
///                       fail), observed by the next tickStep.
///   - enterCall()       per closure invocation; tri-state so natural
///                       overflow can keep its catchable-RangeError
///                       semantics while injected trips become traps.
///   - enterEval()       per eval re-parse level.
///   - spendCfFuel()     per counterfactual execution; never unwinds —
///                       exhaustion degrades locally via cntrAbort.
///
/// Once any budget trips, the governor latches: `tripped()` stays true and
/// `trip()` describes the *first* cause.
class ResourceGovernor {
public:
  using Clock = std::chrono::steady_clock;

  explicit ResourceGovernor(const GovernorLimits &L = GovernorLimits());

  /// Attach a deterministic fault injector (not owned; may be null).
  void setInjector(FaultInjector *FI) {
    Injector = FI;
    recomputeArmed();
  }

  /// (Re)start the wall clock. Called once at the top of a run.
  void startClock() { Start = Clock::now(); }

  /// Per-step checkpoint. Returns false when the run must unwind (step
  /// limit, deadline, or a latched heap trip). Hot path.
  bool tickStep() {
    ++Steps;
    if (Steps > Limits.MaxSteps && Limits.MaxSteps != 0)
      return tripNow(Budget::Steps, Steps, Limits.MaxSteps, Steps, false);
    if (Armed)
      return slowTick();
    return true;
  }

  /// Per-allocation checkpoint. Cannot refuse the allocation; latches a
  /// heap trip for the next tickStep to observe. Returns false if the heap
  /// budget is (now) tripped, for callers that can check.
  bool noteHeapCell();

  /// Per-COW-copy checkpoint: a snapshot frame saving a private copy of an
  /// object or environment charges the same heap-cell budget as an
  /// allocation, so snapshots cannot bypass the memory ceiling a
  /// journal-based run respected. Unlike noteHeapCell this is *not* an
  /// injector checkpoint: `--inject-fault heap:N` keeps meaning "the Nth
  /// allocation" regardless of undo engine.
  bool noteCowSave();

  /// Result of a call-depth checkpoint.
  enum class CallGate : uint8_t {
    Ok,       ///< Proceed with the call.
    Overflow, ///< Natural limit hit: surface as a catchable RangeError.
    Trip,     ///< Injected/governed trip: unwind as a trap completion.
  };

  /// Per-call checkpoint, before pushing the frame. On Ok the caller must
  /// pair with exitCall().
  CallGate enterCall();
  void exitCall() { --CallDepth; }

  /// Per-eval checkpoint. Returns false when nesting exceeds the budget
  /// (or an injected trip fires); on true the caller must pair with
  /// exitEval().
  bool enterEval();
  void exitEval() { --EvalDepth; }

  /// Per-counterfactual checkpoint. Returns true when fuel remains; false
  /// means the caller should degrade locally (cntrAbort), not unwind.
  /// Never latches a run-ending trip.
  bool spendCfFuel();

  /// True once any budget (other than cf-fuel) tripped; the run should be
  /// unwinding.
  bool tripped() const { return Tripped; }
  const TripInfo &trip() const { return Trip; }
  TrapKind trapKind() const {
    return Tripped ? trapForBudget(Trip.Which) : TrapKind::None;
  }

  uint64_t stepsUsed() const { return Steps; }
  uint64_t heapCellsUsed() const { return HeapCells; }
  uint64_t cfFuelUsed() const { return CfFuelUsed; }
  uint64_t evalsEntered() const { return EvalsEntered; }
  uint64_t callsEntered() const { return CallsEntered; }
  unsigned callDepth() const { return CallDepth; }
  unsigned evalDepth() const { return EvalDepth; }
  const GovernorLimits &limits() const { return Limits; }

  /// Full mutable budget state, for speculative execution: the parallel
  /// branch engine checkpoints the governor before running the taken side
  /// speculatively and restores it when the speculation is rolled back.
  /// The injector pointer and limits are not part of the checkpoint (they
  /// are stable for a run); injector-internal counters are the injector's
  /// own business and speculation is disabled when one is attached.
  struct Checkpoint {
    uint64_t Steps = 0;
    uint64_t HeapCells = 0;
    uint64_t CfFuelUsed = 0;
    uint64_t EvalsEntered = 0;
    uint64_t CallsEntered = 0;
    unsigned CallDepth = 0;
    unsigned EvalDepth = 0;
    bool Armed = false;
    bool HeapTripLatched = false;
    bool HeapTripInjected = false;
    bool Tripped = false;
    TripInfo Trip;
    Clock::time_point Start;
  };

  Checkpoint checkpoint() const {
    Checkpoint C;
    C.Steps = Steps;
    C.HeapCells = HeapCells;
    C.CfFuelUsed = CfFuelUsed;
    C.EvalsEntered = EvalsEntered;
    C.CallsEntered = CallsEntered;
    C.CallDepth = CallDepth;
    C.EvalDepth = EvalDepth;
    C.Armed = Armed;
    C.HeapTripLatched = HeapTripLatched;
    C.HeapTripInjected = HeapTripInjected;
    C.Tripped = Tripped;
    C.Trip = Trip;
    C.Start = Start;
    return C;
  }

  void restore(const Checkpoint &C) {
    Steps = C.Steps;
    HeapCells = C.HeapCells;
    CfFuelUsed = C.CfFuelUsed;
    EvalsEntered = C.EvalsEntered;
    CallsEntered = C.CallsEntered;
    CallDepth = C.CallDepth;
    EvalDepth = C.EvalDepth;
    Armed = C.Armed;
    HeapTripLatched = C.HeapTripLatched;
    HeapTripInjected = C.HeapTripInjected;
    Tripped = C.Tripped;
    Trip = C.Trip;
    Start = C.Start;
  }

  /// Folds spend observed elsewhere (a committed parallel counterfactual,
  /// metered by its own governor) into this governor's counters, so totals
  /// match what the sequential execution would have consumed. The caller
  /// has already validated that the combined totals stay within every
  /// configured limit; this never trips.
  void applyExternalSpend(uint64_t DSteps, uint64_t DHeapCells,
                          uint64_t DCfFuel, uint64_t DEvals, uint64_t DCalls) {
    Steps += DSteps;
    HeapCells += DHeapCells;
    CfFuelUsed += DCfFuel;
    EvalsEntered += DEvals;
    CallsEntered += DCalls;
  }

  /// Milliseconds elapsed since startClock().
  uint64_t elapsedMs() const {
    return (uint64_t)std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - Start)
        .count();
  }

  /// Deadline sampling stride, in steps. Public so the overhead benchmark
  /// and tests can reason about it.
  static constexpr uint64_t kDeadlineStride = 4096;

private:
  bool slowTick();
  bool tripNow(Budget B, uint64_t Used, uint64_t Limit, uint64_t Checkpoint,
               bool Injected);
  void recomputeArmed();

  GovernorLimits Limits;
  FaultInjector *Injector = nullptr;
  Clock::time_point Start = Clock::now();

  uint64_t Steps = 0;
  uint64_t HeapCells = 0;
  uint64_t CfFuelUsed = 0;
  uint64_t EvalsEntered = 0;
  uint64_t CallsEntered = 0;
  unsigned CallDepth = 0;
  unsigned EvalDepth = 0;

  /// True when the strided slow path must run: a deadline is set, an
  /// injector is armed, or a heap trip is latched.
  bool Armed = false;
  bool HeapTripLatched = false;
  bool HeapTripInjected = false;
  bool Tripped = false;
  TripInfo Trip;
};

} // namespace dda

#endif // DDA_SUPPORT_RESOURCEGOVERNOR_H
