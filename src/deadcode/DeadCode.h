//===- DeadCode.h - Dead-code detection from determinacy facts ---*- C++ -*-==//
///
/// \file
/// One of the client applications the paper proposes for determinacy facts
/// ("an optimizer could use it to detect dead code", Section 2; "we also
/// plan to apply determinacy analysis to other problems such as partial
/// evaluation and dead code detection", Section 7).
///
/// A statement is *provably dead* when every path to it passes through a
/// branch whose condition the analysis proved determinately takes the other
/// side — so no execution, on any input, ever reaches it. Because a
/// condition fact may hold only under specific calling contexts, a branch is
/// reported dead only if the merged fact over *all* observed contexts is a
/// determinate boolean excluding it (the same uniform rule the specializer
/// uses for code it cannot clone).
///
//===----------------------------------------------------------------------===//

#ifndef DDA_DEADCODE_DEADCODE_H
#define DDA_DEADCODE_DEADCODE_H

#include "ast/ASTContext.h"
#include "determinacy/Determinacy.h"

#include <vector>

namespace dda {

/// One dead region: the untaken branch of a determinate conditional.
struct DeadRegion {
  NodeID Branch = 0;     ///< Root statement of the dead branch.
  NodeID Conditional = 0;///< The if statement owning it.
  uint32_t Line = 0;     ///< Source line of the dead branch.
  bool CondValue = false;///< The (determinate) condition value.
  size_t StatementCount = 0; ///< Statements inside the dead region.
};

struct DeadCodeResult {
  std::vector<DeadRegion> Regions;
  size_t DeadStatements = 0;
  size_t TotalStatements = 0;

  double deadFraction() const {
    return TotalStatements ? double(DeadStatements) / double(TotalStatements)
                           : 0;
  }
};

/// Reports branches of \p P that no execution can take, per \p Analysis.
/// \p Analysis is non-const because context lookups intern.
DeadCodeResult findDeadCode(const Program &P, const AnalysisResult &Analysis);

} // namespace dda

#endif // DDA_DEADCODE_DEADCODE_H
