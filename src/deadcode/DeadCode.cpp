//===- DeadCode.cpp -------------------------------------------------------==//

#include "deadcode/DeadCode.h"

#include "ast/ASTWalk.h"

using namespace dda;

namespace {

/// Counts statements in a subtree (including nested functions' bodies —
/// dead code guards whole features, closures included).
size_t countStatements(const Node *N) {
  size_t Count = 0;
  walkPreOrder(N, [&](const Node *Child) {
    if (isa<Stmt>(Child))
      ++Count;
    return true;
  });
  return Count;
}

/// The merged condition fact over all observed contexts (FactDB::uniform).
const FactValue *uniformCondition(const AnalysisResult &A, NodeID Node) {
  return A.Facts.uniform(FactKind::Condition, Node);
}

} // namespace

DeadCodeResult dda::findDeadCode(const Program &P,
                                 const AnalysisResult &Analysis) {
  DeadCodeResult Result;

  // Total statement count (the denominator).
  for (const Stmt *S : P.Body)
    Result.TotalStatements += countStatements(S);

  // Dead regions: untaken sides of uniformly determinate conditionals.
  // Regions nested inside an already-dead region are not double-counted:
  // we collect top-down and skip descendants of reported branches.
  std::vector<const Stmt *> Dead;
  std::function<void(const Node *)> Visit = [&](const Node *N) {
    if (const auto *If = dyn_cast<IfStmt>(N)) {
      const FactValue *Cond = uniformCondition(Analysis, If->getID());
      if (Cond && Cond->K == FactValue::Boolean) {
        const Stmt *Untaken = Cond->B ? If->getElse() : If->getThen();
        if (Untaken) {
          DeadRegion R;
          R.Branch = Untaken->getID();
          R.Conditional = If->getID();
          R.Line = Untaken->getLine();
          R.CondValue = Cond->B;
          R.StatementCount = countStatements(Untaken);
          Result.Regions.push_back(R);
          Result.DeadStatements += R.StatementCount;
          // Do not descend into the dead branch; do analyze the taken side.
          const Stmt *Taken = Cond->B ? If->getThen() : If->getElse();
          forEachChild(If->getCond(), Visit);
          if (Taken)
            Visit(Taken);
          return;
        }
      }
    }
    forEachChild(N, Visit);
  };
  for (const Stmt *S : P.Body)
    Visit(S);
  (void)Dead;
  return Result;
}
