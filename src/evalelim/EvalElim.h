//===- EvalElim.h - Eval elimination client (paper Section 5.2) --*- C++ -*-==//
///
/// \file
/// The eval-elimination pipeline: run the dynamic determinacy analysis,
/// specialize (which splices eval calls whose argument string is determinate
/// under a full calling context), then check statically — with the pointer
/// analysis on the residual program — that no reachable eval call site
/// remains. A program is *handled* when that check passes.
///
/// Also provides a syntactic "unevalizer"-style baseline modeled on Jensen
/// et al. [17]: an eval site is rewritable when the pointer analysis proves
/// eval is its only callee and the argument is a compile-time constant
/// string (literals, concatenations of literals, or single-assignment
/// variables bound to such). Notably it does not assume a determinate
/// for-in iteration order and cannot see through parameters — the two
/// failure modes the paper highlights.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_EVALELIM_EVALELIM_H
#define DDA_EVALELIM_EVALELIM_H

#include "determinacy/Determinacy.h"
#include "specialize/Specializer.h"

#include <string>
#include <vector>

namespace dda {

/// Why an eval site was or was not eliminated.
enum class EvalOutcome : uint8_t {
  Eliminated,             ///< Replaced by the parsed argument code.
  Unreachable,            ///< Dead in the residual program (pruned branch).
  NotCovered,             ///< Never executed by the dynamic analysis.
  IndeterminateArgument,  ///< Argument string varies across executions.
  IndeterminateCallee,    ///< A heap flush demoted the callee.
  LoopBound,              ///< Multiple occurrences; loop not unrollable.
};

const char *evalOutcomeName(EvalOutcome Outcome);

/// Per-site report (sites are original-program call nodes).
struct EvalSiteInfo {
  NodeID Site = 0;
  uint32_t Line = 0;
  EvalOutcome Outcome = EvalOutcome::NotCovered;
};

struct EvalElimOptions {
  bool DeterminateDom = false;
  uint64_t RandomSeed = 1;
  uint64_t DomSeed = 1;
};

struct EvalElimResult {
  /// Whether the dynamic run succeeded (false for missing-code programs).
  bool Ran = false;
  std::string RunError;
  /// True when the residual program has no statically reachable eval sites.
  bool Handled = false;
  size_t ResidualReachableEvalSites = 0;
  std::vector<EvalSiteInfo> Sites;
  SpecializationReport Spec;
  AnalysisStats DynamicStats;
};

/// Runs the full pipeline on \p Source.
EvalElimResult runEvalElimination(const std::string &Source,
                                  const EvalElimOptions &Opts = {});

/// Result of the syntactic baseline.
struct UnevalizerResult {
  bool ParseOk = false;
  size_t EvalSites = 0;
  size_t Rewritten = 0;
  /// True when every reachable eval site is rewritable.
  bool Handled = false;
};

/// Runs the unevalizer-style baseline (static only; never executes code).
UnevalizerResult runUnevalizer(const std::string &Source);

} // namespace dda

#endif // DDA_EVALELIM_EVALELIM_H
