//===- EvalElim.cpp -------------------------------------------------------==//

#include "evalelim/EvalElim.h"

#include "ast/ASTWalk.h"
#include "parser/Parser.h"
#include "pointsto/PointsTo.h"
#include "support/StringUtils.h"

#include <unordered_map>
#include <unordered_set>

using namespace dda;

const char *dda::evalOutcomeName(EvalOutcome Outcome) {
  switch (Outcome) {
  case EvalOutcome::Eliminated:
    return "eliminated";
  case EvalOutcome::Unreachable:
    return "unreachable";
  case EvalOutcome::NotCovered:
    return "not-covered";
  case EvalOutcome::IndeterminateArgument:
    return "indeterminate-arg";
  case EvalOutcome::IndeterminateCallee:
    return "indeterminate-callee";
  case EvalOutcome::LoopBound:
    return "loop-bound";
  }
  return "?";
}

EvalElimResult dda::runEvalElimination(const std::string &Source,
                                       const EvalElimOptions &Opts) {
  EvalElimResult Result;

  DiagnosticEngine Diags;
  Program P = parseProgram(Source, Diags);
  if (Diags.hasErrors()) {
    Result.RunError = "parse error: " + Diags.str();
    return Result;
  }

  // Original-program eval sites (through aliases, via the pointer analysis).
  PointsToResult BasePT = runPointsToAnalysis(P);
  std::set<NodeID> OriginalSites = BasePT.EvalMaybeCallSites;

  // 1. Dynamic determinacy analysis.
  AnalysisOptions AOpts;
  AOpts.DeterminateDom = Opts.DeterminateDom;
  AOpts.RandomSeed = Opts.RandomSeed;
  AOpts.DomSeed = Opts.DomSeed;
  AnalysisResult A = runDeterminacyAnalysis(P, AOpts);
  Result.DynamicStats = A.Stats;
  if (!A.Ok) {
    Result.RunError = A.Error;
    return Result; // Missing required code, etc.
  }
  Result.Ran = true;

  // 2. Specialization (includes eval splicing).
  SpecializeResult Spec = specializeProgram(P, A);
  Result.Spec = Spec.Report;

  // 3. Static check on the residual program.
  PointsToResult ResidualPT = runPointsToAnalysis(Spec.Residual);
  std::unordered_set<NodeID> StillReachable; // Original ids.
  for (NodeID Site : ResidualPT.EvalMaybeCallSites) {
    auto It = Spec.OriginOf.find(Site);
    StillReachable.insert(It == Spec.OriginOf.end() ? Site : It->second);
  }
  Result.ResidualReachableEvalSites = StillReachable.size();
  Result.Handled = StillReachable.empty();

  // 4. Per-site outcome classification.
  std::unordered_map<NodeID, uint32_t> SiteLines;
  walkProgram(P, [&](const Node *N) {
    SiteLines[N->getID()] = N->getLine();
    return true;
  });

  for (NodeID Site : OriginalSites) {
    EvalSiteInfo Info;
    Info.Site = Site;
    Info.Line = SiteLines.count(Site) ? SiteLines[Site] : 0;

    if (Result.Spec.SplicedEvalSites.count(Site)) {
      Info.Outcome = EvalOutcome::Eliminated;
    } else if (!StillReachable.count(Site)) {
      Info.Outcome = EvalOutcome::Unreachable;
    } else if (!A.ExecutedCalls.count(Site)) {
      Info.Outcome = EvalOutcome::NotCovered;
    } else {
      // Executed but not spliced: diagnose from the recorded facts.
      size_t Contexts = 0;
      bool CalleeIndet = false;
      bool ArgIndet = false;
      for (const auto &[Key, Val] : A.Facts.all()) {
        if (Key.Node != Site)
          continue;
        if (Key.Kind == FactKind::Callee) {
          ++Contexts;
          if (!Val.isNative(NativeFn::Eval))
            CalleeIndet = true;
        }
        if (Key.Kind == FactKind::EvalArg && !Val.isDeterminate())
          ArgIndet = true;
      }
      if (CalleeIndet)
        Info.Outcome = EvalOutcome::IndeterminateCallee;
      else if (Contexts > 1)
        Info.Outcome = EvalOutcome::LoopBound;
      else if (ArgIndet)
        Info.Outcome = EvalOutcome::IndeterminateArgument;
      else
        Info.Outcome = EvalOutcome::NotCovered;
    }
    Result.Sites.push_back(Info);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Unevalizer-style baseline
//===----------------------------------------------------------------------===//

namespace {

/// Counts assignments to \p Name anywhere in the program (var-decl
/// initializers, assignments, updates). Name-based and program-wide — a
/// deliberate simplification of the baseline's constant propagation.
struct AssignCounter {
  std::unordered_map<std::string, unsigned> Counts;
  std::unordered_map<std::string, const Expr *> DeclInit;

  void scan(const Program &P) {
    walkProgram(P, [&](const Node *N) {
      if (const auto *VD = dyn_cast<VarDeclStmt>(N)) {
        for (const auto &D : VD->getDeclarators())
          if (D.Init) {
            ++Counts[D.Name];
            if (!DeclInit.count(D.Name))
              DeclInit[D.Name] = D.Init;
            else
              DeclInit[D.Name] = nullptr; // Multiple decls: ambiguous.
          }
      } else if (const auto *AE = dyn_cast<AssignExpr>(N)) {
        if (const auto *Id = dyn_cast<Identifier>(AE->getTarget()))
          ++Counts[Id->getName()];
      } else if (const auto *UE = dyn_cast<UpdateExpr>(N)) {
        if (const auto *Id = dyn_cast<Identifier>(UE->getOperand()))
          ++Counts[Id->getName()];
      } else if (const auto *F = dyn_cast<FunctionExpr>(N)) {
        // Parameters shadow; a same-named outer variable cannot be proven
        // constant inside. Conservatively poison parameter names.
        for (const std::string &Param : F->getParams())
          Counts[Param] += 2;
      }
      return true;
    });
  }
};

/// Tries to fold \p E to a compile-time constant string.
bool constantString(const Expr *E, const AssignCounter &Assigns,
                    std::string &Out, unsigned Depth = 0) {
  if (Depth > 16)
    return false;
  switch (E->getKind()) {
  case NodeKind::StringLiteral:
    Out = cast<StringLiteral>(E)->getValue();
    return true;
  case NodeKind::NumberLiteral:
    Out = numberToString(cast<NumberLiteral>(E)->getValue());
    return true;
  case NodeKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->getOp() != BinaryOp::Add)
      return false;
    std::string L, R;
    if (!constantString(B->getLHS(), Assigns, L, Depth + 1) ||
        !constantString(B->getRHS(), Assigns, R, Depth + 1))
      return false;
    Out = L + R;
    return true;
  }
  case NodeKind::Identifier: {
    const std::string &Name = cast<Identifier>(E)->getName();
    auto CountIt = Assigns.Counts.find(Name);
    if (CountIt == Assigns.Counts.end() || CountIt->second != 1)
      return false;
    auto InitIt = Assigns.DeclInit.find(Name);
    if (InitIt == Assigns.DeclInit.end() || !InitIt->second)
      return false;
    return constantString(InitIt->second, Assigns, Out, Depth + 1);
  }
  default:
    return false;
  }
}

} // namespace

UnevalizerResult dda::runUnevalizer(const std::string &Source) {
  UnevalizerResult Result;
  DiagnosticEngine Diags;
  Program P = parseProgram(Source, Diags);
  if (Diags.hasErrors())
    return Result;
  Result.ParseOk = true;

  PointsToResult PT = runPointsToAnalysis(P);
  Result.EvalSites = PT.EvalMaybeCallSites.size();

  AssignCounter Assigns;
  Assigns.scan(P);

  std::unordered_map<NodeID, const CallExpr *> CallByID;
  walkProgram(P, [&](const Node *N) {
    if (const auto *C = dyn_cast<CallExpr>(N))
      CallByID[C->getID()] = C;
    return true;
  });

  bool AllRewritable = true;
  for (NodeID Site : PT.EvalMaybeCallSites) {
    bool Ok = false;
    // Must be provably eval-only...
    if (PT.EvalOnlyCallSites.count(Site)) {
      auto It = CallByID.find(Site);
      if (It != CallByID.end() && It->second->getArgs().size() == 1) {
        // ...with a compile-time constant argument that parses.
        std::string Code;
        if (constantString(It->second->getArgs()[0], Assigns, Code)) {
          DiagnosticEngine ParseDiags;
          ASTContext Scratch;
          parseIntoContext(Code, Scratch, ParseDiags);
          Ok = !ParseDiags.hasErrors();
        }
      }
    }
    if (Ok)
      ++Result.Rewritten;
    else
      AllRewritable = false;
  }
  Result.Handled = AllRewritable;
  return Result;
}
