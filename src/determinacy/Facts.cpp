//===- Facts.cpp ----------------------------------------------------------==//

#include "determinacy/Facts.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace dda;

const char *dda::factKindName(FactKind Kind) {
  switch (Kind) {
  case FactKind::Condition:
    return "cond";
  case FactKind::Callee:
    return "callee";
  case FactKind::PropName:
    return "prop";
  case FactKind::EvalArg:
    return "evalarg";
  case FactKind::CallArg:
    return "arg";
  case FactKind::Assign:
    return "assign";
  case FactKind::TripCount:
    return "trip";
  case FactKind::ForInKey:
    return "forinkey";
  case FactKind::Expression:
    return "expr";
  }
  return "?";
}

FactValue FactValue::fromTagged(const TaggedValue &TV, const Heap &H) {
  FactValue F;
  if (TV.D == Det::Indeterminate)
    return F;
  switch (TV.V.Kind) {
  case ValueKind::Undefined:
    F.K = Undefined;
    break;
  case ValueKind::Null:
    F.K = Null;
    break;
  case ValueKind::Boolean:
    F.K = Boolean;
    F.B = TV.V.Bool;
    break;
  case ValueKind::Number:
    F.K = Number;
    F.Num = TV.V.Num;
    break;
  case ValueKind::String:
    F.K = String;
    F.Str = TV.V.Str;
    break;
  case ValueKind::Object: {
    const JSObject &O = H.get(TV.V.Obj);
    if (O.Class == ObjectClass::Function) {
      F.K = Function;
      F.Node = O.Fn->getID();
    } else if (O.Class == ObjectClass::Native) {
      F.K = Native;
      F.NativeID = O.Native;
    } else {
      F.K = Object;
      F.Node = O.AllocSite;
    }
    break;
  }
  }
  return F;
}

bool FactValue::sameAs(const FactValue &Other) const {
  if (K != Other.K)
    return false;
  switch (K) {
  case Indeterminate:
  case Undefined:
  case Null:
    return true;
  case Boolean:
    return B == Other.B;
  case Number:
    // NaN facts compare equal to themselves: a point that always produces
    // NaN is determinate.
    if (Num != Num && Other.Num != Other.Num)
      return true;
    return Num == Other.Num;
  case String:
    return Str == Other.Str;
  case Function:
    return Node == Other.Node;
  case Native:
    return NativeID == Other.NativeID;
  case Object:
    // Objects are compared by allocation site; runtime-created objects
    // (site 0) never compare equal across visits.
    return Node != 0 && Node == Other.Node;
  }
  return false;
}

std::string FactValue::str() const {
  switch (K) {
  case Indeterminate:
    return "?";
  case Undefined:
    return "undefined";
  case Null:
    return "null";
  case Boolean:
    return B ? "true" : "false";
  case Number:
    return numberToString(Num);
  case String:
    return "\"" + escapeString(Interner::global().str(Str)) + "\"";
  case Function:
    return "function@" + std::to_string(Node);
  case Native:
    return std::string("native:") + nativeInfo(NativeID).Name;
  case Object:
    return "object@" + std::to_string(Node);
  }
  return "?";
}

void FactDB::record(const FactKey &Key, const FactValue &Value) {
  // Single probe: try_emplace finds-or-inserts in one pass (the hottest
  // map operation on the per-step path).
  auto [It, Inserted] = Facts.try_emplace(Key, Value);
  if (!Inserted && !It->second.sameAs(Value))
    It->second = FactValue::indet();
}

const FactValue *FactDB::query(const FactKey &Key) const {
  auto It = Facts.find(Key);
  return It == Facts.end() ? nullptr : &It->second;
}

const FactValue *FactDB::uniform(FactKind Kind, NodeID Node) const {
  const FactValue *Found = nullptr;
  for (const auto &[Key, Val] : Facts) {
    if (Key.Node != Node || Key.Kind != Kind)
      continue;
    if (!Val.isDeterminate())
      return nullptr;
    if (Found && !Found->sameAs(Val))
      return nullptr;
    Found = &Val;
  }
  return Found;
}

void FactDB::merge(const FactDB &Other) {
  for (const auto &[Key, Value] : Other.Facts)
    record(Key, Value);
}

size_t FactDB::countDeterminate() const {
  size_t N = 0;
  for (const auto &[Key, Value] : Facts)
    if (Value.isDeterminate())
      ++N;
  return N;
}

size_t FactDB::countOfKind(FactKind Kind) const {
  size_t N = 0;
  for (const auto &[Key, Value] : Facts)
    if (Key.Kind == Kind)
      ++N;
  return N;
}

std::string FactDB::dump(const ContextTable &Contexts) const {
  // Sort for stable output.
  std::vector<const Map::Entry *> Sorted;
  Sorted.reserve(Facts.size());
  for (const auto &Entry : Facts)
    Sorted.push_back(&Entry);
  std::sort(Sorted.begin(), Sorted.end(), [](const auto *A, const auto *B) {
    if (A->first.Node != B->first.Node)
      return A->first.Node < B->first.Node;
    if (A->first.Ctx != B->first.Ctx)
      return A->first.Ctx < B->first.Ctx;
    if (A->first.Kind != B->first.Kind)
      return A->first.Kind < B->first.Kind;
    return A->first.Index < B->first.Index;
  });
  std::string Out;
  for (const auto *Entry : Sorted) {
    Out += "[" + std::string(factKindName(Entry->first.Kind)) + "] node" +
           std::to_string(Entry->first.Node);
    if (Entry->first.Kind == FactKind::CallArg)
      Out += "#" + std::to_string(Entry->first.Index);
    Out += " @ " + Contexts.str(Entry->first.Ctx) + " = " +
           Entry->second.str() + "\n";
  }
  return Out;
}
