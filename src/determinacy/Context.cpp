//===- Context.cpp --------------------------------------------------------==//

#include "determinacy/Context.h"

#include <algorithm>
#include <cassert>

using namespace dda;

ContextID ContextTable::intern(ContextID Parent, NodeID Site,
                               uint32_t Occurrence, uint32_t Line) {
  Key K{Parent, Site, Occurrence};
  auto It = Interned.find(K);
  if (It != Interned.end())
    return It->second;
  ContextID ID = static_cast<ContextID>(Entries.size());
  Entries.push_back({Parent, Site, Occurrence, Line});
  Interned.emplace(K, ID);
  return ID;
}

const ContextEntry &ContextTable::entry(ContextID ID) const {
  assert(ID < Entries.size() && "invalid context id");
  return Entries[ID];
}

unsigned ContextTable::depth(ContextID ID) const {
  unsigned D = 0;
  while (ID != Root) {
    ID = entry(ID).Parent;
    ++D;
  }
  return D;
}

std::string ContextTable::str(ContextID ID) const {
  if (ID == Root)
    return "\xc2\xb7"; // "·"
  // Collect the chain root-first.
  std::vector<const ContextEntry *> Chain;
  for (ContextID C = ID; C != Root; C = entry(C).Parent)
    Chain.push_back(&entry(C));
  std::reverse(Chain.begin(), Chain.end());
  std::string Out;
  for (size_t I = 0; I < Chain.size(); ++I) {
    if (I)
      Out += "\xe2\x86\x92"; // "→"
    Out += std::to_string(Chain[I]->Line);
    if (Chain[I]->Occurrence != 0)
      Out += "_" + std::to_string(Chain[I]->Occurrence);
  }
  return Out;
}

std::vector<ContextID> ContextTable::childrenAt(ContextID Parent,
                                                NodeID Site) const {
  std::vector<ContextID> Result;
  for (ContextID ID = 1; ID < Entries.size(); ++ID)
    if (Entries[ID].Parent == Parent && Entries[ID].Site == Site)
      Result.push_back(ID);
  std::sort(Result.begin(), Result.end(), [this](ContextID A, ContextID B) {
    return Entries[A].Occurrence < Entries[B].Occurrence;
  });
  return Result;
}

std::vector<ContextID> ContextTable::children(ContextID Parent) const {
  std::vector<ContextID> Result;
  for (ContextID ID = 1; ID < Entries.size(); ++ID)
    if (Entries[ID].Parent == Parent)
      Result.push_back(ID);
  return Result;
}
