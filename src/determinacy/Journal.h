//===- Journal.h - Write journal for branch marking and undo -----*- C++ -*-==//
///
/// \file
/// The instrumented interpreter logs every variable write, property write,
/// and record-opening so it can compute the paper's vd(t̂)/pd(t̂) domains and
/// implement the two post-branch treatments:
///
///  * ÎF1 (indeterminate, true):  mark every location written in the branch
///    as indeterminate (`ρ̂′[vd(t̂) := ρ̂′?]`, `ĥ′[pd(t̂) := ĥ′?]`);
///  * ĈNTR (indeterminate, false): counterfactually execute, then *undo*
///    every write and mark the locations indeterminate
///    (`ρ̂′[vd(t̂) := ρ̂?]`, `ĥ′[pd(t̂) := ĥ?]`).
///
/// Layout: the entry the vd/pd marking walk streams over is a slim 12-byte
/// tagged record (kind, flags, name atom, env-or-object ref). Pre-write
/// state — the `Binding` / `Slot` a reverse replay restores — lives in
/// side arrays (`OldBindings` / `OldSlots`), appended in lockstep with the
/// entries that own them and *only* when the journal is in capture mode
/// (UndoEngine::Journal). A marking walk therefore touches a dense stream
/// of small PODs instead of striding over ~80-byte records whose pre-image
/// payload it never reads.
///
/// Under the snapshot undo engine (UndoEngine::Snapshot, the default) the
/// journal is still written at every site with the *same entry count* — it
/// remains the vd/pd marking log that markIndetSince and the ĈNTR weaken
/// loop walk — but capture mode is off, so the side arrays stay empty:
/// undo restores copy-on-write arena snapshots instead of reverse replay.
/// The nesting contract holds identically in both engines: each branch
/// opens its own snapshot frame or journal mark, and frames compose.
///
/// Pre-image invariant: entry I carries a pre-image iff the journal was in
/// capture mode when it was pushed, `existed()` is set, and its kind is
/// VarWrite (a Binding) or PropWrite (a Slot). Reverse walks consume the
/// side arrays from the tail with their own cursors (`bindingPreCount()` /
/// `slotPreCount()`); `truncate` re-derives the same counts from the
/// removed entries so the arrays shrink in lockstep.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_DETERMINACY_JOURNAL_H
#define DDA_DETERMINACY_JOURNAL_H

#include "interp/Environment.h"
#include "interp/Heap.h"

#include <cassert>
#include <string>
#include <type_traits>
#include <vector>

namespace dda {

/// One logged mutation — slim: refs and flags only, pre-images in the
/// journal's side arrays.
struct JournalEntry {
  enum Kind : uint8_t {
    VarWrite,        ///< Environment binding created or overwritten.
    PropWrite,       ///< Object property created, overwritten, or deleted.
    RecordOpen,      ///< Record's ExplicitlyOpen flag raised.
    MaybeAbsentAdd,  ///< Name added to a record's MaybeAbsent set.
    MaybePresentAdd, ///< Name added to a record's MaybePresent set.
  } K = VarWrite;

  /// VarWrite/PropWrite: the location already held a value (so a pre-image
  /// exists under capture mode).
  bool Existed = false;
  /// RecordOpen: the record's ExplicitlyOpen flag before the write.
  bool OldOpen = false;

  StringId Name; ///< Variable or property name (interned atom).

  // The written location's arena handle. Exactly one is meaningful per
  // kind (VarWrite -> Env; everything else -> Obj); they share storage so
  // the entry stays one word of payload.
  union {
    EnvRef Env = 0; ///< VarWrite.
    ObjectRef Obj;  ///< PropWrite / RecordOpen / Maybe*Add.
  };
};

static_assert(sizeof(JournalEntry) <= 16,
              "journal entries must stay slim: the vd/pd marking walk "
              "streams over them");
static_assert(std::is_trivially_copyable_v<JournalEntry>,
              "journal entries are memcpy-able PODs");

/// Append-only journal with position marks and out-of-line pre-images.
class Journal {
public:
  using Mark = size_t;

  Mark mark() const { return Entries.size(); }
  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  /// Capture mode: store pre-images for reverse replay (UndoEngine::Journal).
  /// Off by default — the snapshot engine logs the same entries but undoes
  /// via COW snapshots, so pre-images would be dead weight.
  void setCapture(bool On) { Capture = On; }
  bool capturing() const { return Capture; }

  /// Pushes an entry with no pre-image (location did not exist, or a kind
  /// that never carries one).
  void push(JournalEntry E) {
    assert(!(Capture && E.Existed &&
             (E.K == JournalEntry::VarWrite || E.K == JournalEntry::PropWrite)) &&
           "existing-location write needs its pre-image under capture mode");
    Entries.push_back(E);
  }

  /// Pushes a VarWrite over an existing binding; \p Old is stored only in
  /// capture mode (reading the reference costs nothing otherwise).
  void push(JournalEntry E, const Binding &Old) {
    assert(E.K == JournalEntry::VarWrite && E.Existed);
    if (Capture)
      OldBindings.push_back(Old);
    Entries.push_back(E);
  }

  /// Pushes a PropWrite over an existing slot; \p Old is stored only in
  /// capture mode.
  void push(JournalEntry E, const Slot &Old) {
    assert(E.K == JournalEntry::PropWrite && E.Existed);
    if (Capture)
      OldSlots.push_back(Old);
    Entries.push_back(E);
  }

  const JournalEntry &operator[](size_t I) const { return Entries[I]; }

  // Reverse-walk cursors: a journal-engine undo starts at the counts and
  // decrements past each Existed VarWrite/PropWrite it revisits.
  size_t bindingPreCount() const { return OldBindings.size(); }
  size_t slotPreCount() const { return OldSlots.size(); }
  const Binding &bindingPre(size_t I) const { return OldBindings[I]; }
  const Slot &slotPre(size_t I) const { return OldSlots[I]; }

  /// Drops entries at and after \p M (caller must have already applied them
  /// in reverse) along with their pre-images.
  void truncate(Mark M) {
    if (Capture) {
      size_t B = OldBindings.size(), S = OldSlots.size();
      for (size_t I = Entries.size(); I > M; --I) {
        const JournalEntry &E = Entries[I - 1];
        if (E.Existed) {
          if (E.K == JournalEntry::VarWrite)
            --B;
          else if (E.K == JournalEntry::PropWrite)
            --S;
        }
      }
      OldBindings.resize(B);
      OldSlots.resize(S);
    }
    Entries.resize(M);
  }

private:
  std::vector<JournalEntry> Entries;
  // Pre-image side arrays (SoA): parallel to the Existed VarWrite/PropWrite
  // subsequence of Entries, populated only in capture mode.
  std::vector<Binding> OldBindings;
  std::vector<Slot> OldSlots;
  bool Capture = false;
};

} // namespace dda

#endif // DDA_DETERMINACY_JOURNAL_H
