//===- Journal.h - Write journal for branch marking and undo -----*- C++ -*-==//
///
/// \file
/// The instrumented interpreter logs every variable write, property write,
/// and record-opening so it can compute the paper's vd(t̂)/pd(t̂) domains and
/// implement the two post-branch treatments:
///
///  * ÎF1 (indeterminate, true):  mark every location written in the branch
///    as indeterminate (`ρ̂′[vd(t̂) := ρ̂′?]`, `ĥ′[pd(t̂) := ĥ′?]`);
///  * ĈNTR (indeterminate, false): counterfactually execute, then *undo*
///    every write and mark the locations indeterminate
///    (`ρ̂′[vd(t̂) := ρ̂?]`, `ĥ′[pd(t̂) := ĥ?]`).
///
/// The journal stores the pre-write state of each location, so undo is a
/// reverse replay. Nested branches compose: inner undos truncate their own
/// suffix and re-journal the weakening they apply, so an outer undo still
/// restores the exact outer pre-state.
///
/// Under the snapshot undo engine (UndoEngine::Snapshot, the default) the
/// journal is still written at every site with the *same entry count* — it
/// remains the vd/pd marking log that markIndetSince and the ĈNTR weaken
/// loop walk — but entries are *slim*: the pre-write state (OldBinding /
/// OldSlot / OldOpen) is left default-constructed because undo is done by
/// restoring copy-on-write arena snapshots instead of reverse replay. Only
/// the fields marking reads (K, Env, Obj, Name, Existed) are meaningful.
/// The nesting contract above holds identically: each branch opens its own
/// snapshot frame, and frames compose like journal marks.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_DETERMINACY_JOURNAL_H
#define DDA_DETERMINACY_JOURNAL_H

#include "interp/Environment.h"
#include "interp/Heap.h"

#include <string>
#include <vector>

namespace dda {

/// One logged mutation.
struct JournalEntry {
  enum Kind : uint8_t {
    VarWrite,       ///< Environment binding created or overwritten.
    PropWrite,      ///< Object property created, overwritten, or deleted.
    RecordOpen,     ///< Record's ExplicitlyOpen flag raised.
    MaybeAbsentAdd,  ///< Name added to a record's MaybeAbsent set.
    MaybePresentAdd, ///< Name added to a record's MaybePresent set.
  } K;

  // VarWrite.
  EnvRef Env = 0;
  Binding OldBinding;

  // PropWrite / RecordOpen.
  ObjectRef Obj = 0;
  Slot OldSlot;
  bool OldOpen = false;

  StringId Name; ///< Variable or property name (interned atom).
  bool Existed = false;
};

/// Append-only journal with position marks.
class Journal {
public:
  using Mark = size_t;

  Mark mark() const { return Entries.size(); }
  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  void push(JournalEntry E) { Entries.push_back(std::move(E)); }

  const JournalEntry &operator[](size_t I) const { return Entries[I]; }

  /// Drops entries at and after \p M (caller must have already applied them
  /// in reverse).
  void truncate(Mark M) { Entries.resize(M); }

private:
  std::vector<JournalEntry> Entries;
};

} // namespace dda

#endif // DDA_DETERMINACY_JOURNAL_H
