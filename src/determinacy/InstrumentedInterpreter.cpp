//===- InstrumentedInterpreter.cpp ----------------------------------------==//

#include "determinacy/InstrumentedInterpreter.h"

#include "determinacy/ParallelAnalysis.h"
#include "interp/Ops.h"
#include "parser/Parser.h"
#include "support/FaultInjector.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace dda;

//===----------------------------------------------------------------------===//
// Syntactic variable domains
//===----------------------------------------------------------------------===//

namespace {

void collectAssignedInExpr(const Expr *E, std::vector<StringId> &Out);

void collectAssignedInStmt(const Stmt *S, std::vector<StringId> &Out) {
  if (!S)
    return;
  switch (S->getKind()) {
  case NodeKind::ExpressionStmt:
    collectAssignedInExpr(cast<ExpressionStmt>(S)->getExpr(), Out);
    return;
  case NodeKind::VarDeclStmt:
    for (const auto &D : cast<VarDeclStmt>(S)->getDeclarators()) {
      Out.push_back(D.Atom);
      if (D.Init)
        collectAssignedInExpr(D.Init, Out);
    }
    return;
  case NodeKind::FunctionDeclStmt:
    Out.push_back(cast<FunctionDeclStmt>(S)->getFunction()->getNameAtom());
    return;
  case NodeKind::BlockStmt:
    for (const Stmt *Child : cast<BlockStmt>(S)->getBody())
      collectAssignedInStmt(Child, Out);
    return;
  case NodeKind::IfStmt: {
    const auto *If = cast<IfStmt>(S);
    collectAssignedInExpr(If->getCond(), Out);
    collectAssignedInStmt(If->getThen(), Out);
    collectAssignedInStmt(If->getElse(), Out);
    return;
  }
  case NodeKind::WhileStmt:
    collectAssignedInExpr(cast<WhileStmt>(S)->getCond(), Out);
    collectAssignedInStmt(cast<WhileStmt>(S)->getBody(), Out);
    return;
  case NodeKind::DoWhileStmt:
    collectAssignedInExpr(cast<DoWhileStmt>(S)->getCond(), Out);
    collectAssignedInStmt(cast<DoWhileStmt>(S)->getBody(), Out);
    return;
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(S);
    collectAssignedInStmt(F->getInit(), Out);
    if (F->getCond())
      collectAssignedInExpr(F->getCond(), Out);
    if (F->getUpdate())
      collectAssignedInExpr(F->getUpdate(), Out);
    collectAssignedInStmt(F->getBody(), Out);
    return;
  }
  case NodeKind::ForInStmt: {
    const auto *F = cast<ForInStmt>(S);
    Out.push_back(F->getVarAtom());
    collectAssignedInExpr(F->getObject(), Out);
    collectAssignedInStmt(F->getBody(), Out);
    return;
  }
  case NodeKind::ReturnStmt:
    if (const Expr *A = cast<ReturnStmt>(S)->getArg())
      collectAssignedInExpr(A, Out);
    return;
  case NodeKind::ThrowStmt:
    collectAssignedInExpr(cast<ThrowStmt>(S)->getArg(), Out);
    return;
  case NodeKind::TryStmt: {
    const auto *T = cast<TryStmt>(S);
    collectAssignedInStmt(T->getBlock(), Out);
    collectAssignedInStmt(T->getCatchBlock(), Out);
    collectAssignedInStmt(T->getFinallyBlock(), Out);
    return;
  }
  case NodeKind::SwitchStmt: {
    const auto *Sw = cast<SwitchStmt>(S);
    collectAssignedInExpr(Sw->getDisc(), Out);
    for (const auto &Clause : Sw->getClauses()) {
      if (Clause.Test)
        collectAssignedInExpr(Clause.Test, Out);
      for (const Stmt *Child : Clause.Body)
        collectAssignedInStmt(Child, Out);
    }
    return;
  }
  default:
    return;
  }
}

void collectAssignedInExpr(const Expr *E, std::vector<StringId> &Out) {
  if (!E)
    return;
  switch (E->getKind()) {
  case NodeKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    if (const auto *Id = dyn_cast<Identifier>(A->getTarget()))
      Out.push_back(Id->getAtom());
    else
      collectAssignedInExpr(A->getTarget(), Out);
    collectAssignedInExpr(A->getValue(), Out);
    return;
  }
  case NodeKind::Update: {
    const auto *U = cast<UpdateExpr>(E);
    if (const auto *Id = dyn_cast<Identifier>(U->getOperand()))
      Out.push_back(Id->getAtom());
    else
      collectAssignedInExpr(U->getOperand(), Out);
    return;
  }
  case NodeKind::Function:
    return; // Callee locals cannot touch our scope.
  case NodeKind::ArrayLiteral:
    for (const Expr *Child : cast<ArrayLiteral>(E)->getElements())
      collectAssignedInExpr(Child, Out);
    return;
  case NodeKind::ObjectLiteral:
    for (const auto &P : cast<ObjectLiteral>(E)->getProperties())
      collectAssignedInExpr(P.Value, Out);
    return;
  case NodeKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    collectAssignedInExpr(M->getObject(), Out);
    if (M->isComputed())
      collectAssignedInExpr(M->getIndex(), Out);
    return;
  }
  case NodeKind::Call: {
    const auto *C = cast<CallExpr>(E);
    collectAssignedInExpr(C->getCallee(), Out);
    for (const Expr *A : C->getArgs())
      collectAssignedInExpr(A, Out);
    return;
  }
  case NodeKind::New: {
    const auto *C = cast<NewExpr>(E);
    collectAssignedInExpr(C->getCallee(), Out);
    for (const Expr *A : C->getArgs())
      collectAssignedInExpr(A, Out);
    return;
  }
  case NodeKind::Unary:
    collectAssignedInExpr(cast<UnaryExpr>(E)->getOperand(), Out);
    return;
  case NodeKind::Binary:
    collectAssignedInExpr(cast<BinaryExpr>(E)->getLHS(), Out);
    collectAssignedInExpr(cast<BinaryExpr>(E)->getRHS(), Out);
    return;
  case NodeKind::Logical:
    collectAssignedInExpr(cast<LogicalExpr>(E)->getLHS(), Out);
    collectAssignedInExpr(cast<LogicalExpr>(E)->getRHS(), Out);
    return;
  case NodeKind::Conditional:
    collectAssignedInExpr(cast<ConditionalExpr>(E)->getCond(), Out);
    collectAssignedInExpr(cast<ConditionalExpr>(E)->getThen(), Out);
    collectAssignedInExpr(cast<ConditionalExpr>(E)->getElse(), Out);
    return;
  default:
    return;
  }
}

} // namespace

std::vector<StringId> dda::collectAssignedVars(const Stmt *S) {
  std::vector<StringId> Out;
  collectAssignedInStmt(S, Out);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// Construction and globals
//===----------------------------------------------------------------------===//

InstrumentedInterpreter::InstrumentedInterpreter(Program &P,
                                                 const AnalysisOptions &Opts)
    : Prog(P), Opts(Opts), Gov(Opts.governorLimits()),
      RandomRng(Opts.RandomSeed), DomRng(Opts.DomSeed) {
  Gov.setInjector(Opts.Injector);
  SnapMode = this->Opts.Undo == UndoEngine::Snapshot;
  // Journal engine: undo is a reverse replay, so the journal stores Binding
  // and Slot pre-images out-of-line. Snapshot engine: entries only (the
  // vd/pd marking log); undo restores COW frames.
  J.setCapture(!SnapMode);
  Frames.push_back(Frame());
  installGlobals();
  // Builtin setup above is free; only program-driven allocations count.
  TheHeap.setGovernor(&Gov);
  Envs.setGovernor(&Gov);
  if (SnapMode) {
    // Base frame at mark 0: undoSince(0) (the test unwind hook) restores
    // the pristine post-installGlobals state. Uncharged and not counted as
    // a fork — it is bookkeeping, not a branch.
    TheHeap.beginSnapshot(/*Charged=*/false);
    Envs.beginSnapshot(/*Charged=*/false);
    SnapMarks.push_back(0);
  }
  if (Opts.Engine == ExecEngine::Bytecode)
    BC = std::make_unique<bc::Module>();
}

InstrumentedInterpreter::~InstrumentedInterpreter() = default;

ObjectRef InstrumentedInterpreter::makeNative(NativeFn Fn) {
  ObjectRef Ref = TheHeap.allocate(ObjectClass::Native);
  JSObject &O = TheHeap.get(Ref);
  O.Native = Fn;
  O.ClosedEpoch = Epoch;
  return Ref;
}

ObjectRef InstrumentedInterpreter::makeFunction(const FunctionExpr *Fn,
                                                EnvRef Closure) {
  ObjectRef Ref = TheHeap.allocate(ObjectClass::Function, Fn->getID());
  JSObject &O = TheHeap.get(Ref);
  O.Fn = Fn;
  O.Closure = Closure;
  O.ClosedEpoch = Epoch;
  ObjectRef ProtoObj = TheHeap.allocate(ObjectClass::Plain);
  TheHeap.get(ProtoObj).Proto = ObjectProto;
  TheHeap.get(ProtoObj).ClosedEpoch = Epoch;
  TheHeap.get(ProtoObj).set(
      atoms().Constructor, Slot{Value::object(Ref), Det::Determinate, Epoch});
  TheHeap.get(Ref).set(
      atoms().Prototype,
      Slot{Value::object(ProtoObj), Det::Determinate, Epoch});
  return Ref;
}

void InstrumentedInterpreter::installGlobals() {
  GlobalEnv = Envs.allocate(0);
  CurrentEnv = GlobalEnv;

  auto Set = [&](ObjectRef O, const char *Name, Value V) {
    TheHeap.get(O).set(intern(Name), Slot{std::move(V), Det::Determinate,
                                          Epoch, /*Immune=*/true});
  };

  ObjectProto = TheHeap.allocate(ObjectClass::Plain);
  Set(ObjectProto, "hasOwnProperty",
      Value::object(makeNative(NativeFn::ObjHasOwnProperty)));

  StringProto = TheHeap.allocate(ObjectClass::Plain);
  auto AddStringMethod = [&](const char *Name, NativeFn Fn) {
    Set(StringProto, Name, Value::object(makeNative(Fn)));
  };
  AddStringMethod("charAt", NativeFn::StrCharAt);
  AddStringMethod("charCodeAt", NativeFn::StrCharCodeAt);
  AddStringMethod("toUpperCase", NativeFn::StrToUpperCase);
  AddStringMethod("toLowerCase", NativeFn::StrToLowerCase);
  AddStringMethod("substr", NativeFn::StrSubstr);
  AddStringMethod("substring", NativeFn::StrSubstring);
  AddStringMethod("indexOf", NativeFn::StrIndexOf);
  AddStringMethod("slice", NativeFn::StrSlice);
  AddStringMethod("split", NativeFn::StrSplit);
  AddStringMethod("concat", NativeFn::StrConcat);
  AddStringMethod("replace", NativeFn::StrReplace);

  ArrayProto = TheHeap.allocate(ObjectClass::Plain);
  TheHeap.get(ArrayProto).Proto = ObjectProto;
  auto AddArrayMethod = [&](const char *Name, NativeFn Fn) {
    Set(ArrayProto, Name, Value::object(makeNative(Fn)));
  };
  AddArrayMethod("push", NativeFn::ArrPush);
  AddArrayMethod("pop", NativeFn::ArrPop);
  AddArrayMethod("shift", NativeFn::ArrShift);
  AddArrayMethod("join", NativeFn::ArrJoin);
  AddArrayMethod("indexOf", NativeFn::ArrIndexOf);
  AddArrayMethod("slice", NativeFn::ArrSlice);
  AddArrayMethod("concat", NativeFn::ArrConcat);

  Environment &G = Envs.get(GlobalEnv);
  auto DefineGlobal = [&](const char *Name, Value V) {
    G.Vars[intern(Name)] =
        Binding{std::move(V), Det::Determinate, /*Immune=*/true};
  };

  ObjectRef MathObj = TheHeap.allocate(ObjectClass::Plain);
  auto AddMath = [&](const char *Name, NativeFn Fn) {
    Set(MathObj, Name, Value::object(makeNative(Fn)));
  };
  AddMath("random", NativeFn::MathRandom);
  AddMath("floor", NativeFn::MathFloor);
  AddMath("ceil", NativeFn::MathCeil);
  AddMath("round", NativeFn::MathRound);
  AddMath("abs", NativeFn::MathAbs);
  AddMath("max", NativeFn::MathMax);
  AddMath("min", NativeFn::MathMin);
  AddMath("pow", NativeFn::MathPow);
  AddMath("sqrt", NativeFn::MathSqrt);
  DefineGlobal("Math", Value::object(MathObj));

  ObjectRef ConsoleObj = TheHeap.allocate(ObjectClass::Plain);
  Set(ConsoleObj, "log", Value::object(makeNative(NativeFn::Print)));
  DefineGlobal("console", Value::object(ConsoleObj));
  DefineGlobal("alert", Value::object(makeNative(NativeFn::Print)));
  DefineGlobal("print", Value::object(makeNative(NativeFn::Print)));

  DefineGlobal("parseInt", Value::object(makeNative(NativeFn::ParseInt)));
  DefineGlobal("parseFloat", Value::object(makeNative(NativeFn::ParseFloat)));
  DefineGlobal("isNaN", Value::object(makeNative(NativeFn::IsNaN)));
  ObjectRef StringCtor = makeNative(NativeFn::StringCtor);
  Set(StringCtor, "prototype", Value::object(StringProto));
  DefineGlobal("String", Value::object(StringCtor));
  DefineGlobal("Number", Value::object(makeNative(NativeFn::NumberCtor)));
  DefineGlobal("Boolean", Value::object(makeNative(NativeFn::BooleanCtor)));
  EvalFn = makeNative(NativeFn::Eval);
  DefineGlobal("eval", Value::object(EvalFn));

  ObjectRef ObjectCtor = TheHeap.allocate(ObjectClass::Plain);
  Set(ObjectCtor, "keys", Value::object(makeNative(NativeFn::ObjKeys)));
  Set(ObjectCtor, "prototype", Value::object(ObjectProto));
  DefineGlobal("Object", Value::object(ObjectCtor));

  ObjectRef ArrayCtor = TheHeap.allocate(ObjectClass::Plain);
  Set(ArrayCtor, "prototype", Value::object(ArrayProto));
  DefineGlobal("Array", Value::object(ArrayCtor));

  WindowObj = TheHeap.allocate(ObjectClass::Plain);
  DocumentObj = TheHeap.allocate(ObjectClass::Dom);
  Set(DocumentObj, "getElementById",
      Value::object(makeNative(NativeFn::DomGetElementById)));
  Set(DocumentObj, "createElement",
      Value::object(makeNative(NativeFn::DomCreateElement)));
  Set(DocumentObj, "write", Value::object(makeNative(NativeFn::DomWrite)));
  Set(DocumentObj, "addEventListener",
      Value::object(makeNative(NativeFn::DomAddEventListener)));
  Set(WindowObj, "document", Value::object(DocumentObj));
  Set(WindowObj, "addEventListener",
      Value::object(makeNative(NativeFn::DomAddEventListener)));
  DefineGlobal("window", Value::object(WindowObj));
  DefineGlobal("document", Value::object(DocumentObj));
  DefineGlobal("undefined", Value::undefined());
}

//===----------------------------------------------------------------------===//
// NativeHost
//===----------------------------------------------------------------------===//

void InstrumentedInterpreter::nativeWriteProperty(ObjectRef O, StringId Name,
                                                  TaggedValue TV) {
  // Natives resolved their receiver through a determinate path (the
  // interpreter flushed otherwise), so Base/Name are determinate here.
  writeProp(O, Name, std::move(TV), Det::Determinate, Det::Determinate);
}

TaggedValue InstrumentedInterpreter::nativeReadProperty(ObjectRef O,
                                                        StringId Name) {
  const JSObject &Obj = TheHeap.get(O);
  if (const Slot *S = Obj.get(Name))
    return TaggedValue(S->V, slotDet(*S));
  Det D = (recordClosed(Obj) && !Obj.isMaybeAbsent(Name))
              ? Det::Determinate
              : Det::Indeterminate;
  if (Obj.Class == ObjectClass::Dom)
    D = domDet();
  return TaggedValue(Value::undefined(), D);
}

void InstrumentedInterpreter::output(const std::string &Text) {
  if (inCounterfactual())
    return; // Hypothetical worlds do not print.
  Output += Text;
  Output += '\n';
}

void InstrumentedInterpreter::registerEventHandler(StringId Event,
                                                   Value Handler) {
  EventHandlers.emplace_back(Event, std::move(Handler));
}

ObjectRef InstrumentedInterpreter::domElement(StringId Key) {
  auto It = DomElements.find(Key);
  if (It != DomElements.end())
    return It->second;
  ObjectRef El = TheHeap.allocate(ObjectClass::Dom);
  JSObject &O = TheHeap.get(El);
  O.ClosedEpoch = Epoch;
  auto Set = [&](const char *Name, NativeFn Fn) {
    O.set(intern(Name), Slot{Value::object(makeNative(Fn)), Det::Determinate,
                             Epoch, /*Immune=*/true});
  };
  Set("getAttribute", NativeFn::DomGetAttribute);
  Set("setAttribute", NativeFn::DomSetAttribute);
  Set("appendChild", NativeFn::DomAppendChild);
  Set("addEventListener", NativeFn::DomAddEventListener);
  DomElements.emplace(Key, El);
  return El;
}

ObjectRef InstrumentedInterpreter::newArray() {
  ObjectRef Arr = TheHeap.allocate(ObjectClass::Array);
  TheHeap.get(Arr).Proto = ArrayProto;
  TheHeap.get(Arr).ClosedEpoch = Epoch;
  return Arr;
}

Det InstrumentedInterpreter::recordSetDeterminacy(ObjectRef O) {
  const JSObject &Obj = TheHeap.get(O);
  if (Obj.Class == ObjectClass::Dom)
    return domDet();
  return (recordClosed(Obj) && Obj.MaybeAbsent.empty() &&
          Obj.MaybePresent.empty())
             ? Det::Determinate
             : Det::Indeterminate;
}

//===----------------------------------------------------------------------===//
// Journaled mutation
//===----------------------------------------------------------------------===//

void InstrumentedInterpreter::declareVar(EnvRef Env, StringId Name,
                                         TaggedValue TV) {
  Environment &E = Envs.get(Env);
  envBarrier(Env); // Copies the env into the snapshot frame; &E stays valid.
  JournalEntry JE;
  JE.K = JournalEntry::VarWrite;
  JE.Env = Env;
  JE.Name = Name;
  auto It = E.Vars.find(Name);
  JE.Existed = It != E.Vars.end();
  if (JE.Existed)
    J.push(JE, It->second);
  else
    J.push(JE);
  ++Stats.JournalEntries;
  E.Vars[Name] = Binding{std::move(TV.V), taintAdjust(TV.D)};
}

void InstrumentedInterpreter::setVar(StringId Name, TaggedValue TV) {
  EnvRef E = Envs.lookupEnv(CurrentEnv, Name);
  if (!E) {
    E = GlobalEnv; // Sloppy-mode global creation.
    Envs.noteShapeChange(); // New binding in a pre-existing scope.
  }
  declareVar(E, Name, std::move(TV));
}

void InstrumentedInterpreter::storeVarCached(EnvRef Env, Binding &B,
                                             StringId Name, TaggedValue TV) {
  // Overwrite of a binding already resolved (by a valid inline cache or a
  // fresh lookup): journals and writes exactly like declareVar's
  // existing-binding path, minus the re-find.
  envBarrier(Env); // Frame copy only; &B points into the live map, still valid.
  JournalEntry JE;
  JE.K = JournalEntry::VarWrite;
  JE.Env = Env;
  JE.Name = Name;
  JE.Existed = true;
  J.push(JE, B);
  ++Stats.JournalEntries;
  B = Binding{std::move(TV.V), taintAdjust(TV.D)};
}

void InstrumentedInterpreter::weakenVar(EnvRef Env, StringId Name) {
  Environment &E = Envs.get(Env);
  auto It = E.Vars.find(Name);
  if (It == E.Vars.end() || It->second.D == Det::Indeterminate)
    return; // Already weak: no journal entry — and no pre-image copy.
  envBarrier(Env);
  JournalEntry JE;
  JE.K = JournalEntry::VarWrite;
  JE.Env = Env;
  JE.Name = Name;
  JE.Existed = true;
  J.push(JE, It->second);
  ++Stats.JournalEntries;
  It->second.D = Det::Indeterminate;
}

void InstrumentedInterpreter::writeProp(ObjectRef Obj, StringId Name,
                                        TaggedValue TV, Det BaseDet,
                                        Det NameDet) {
  // ŜTO: an indeterminate property name makes the whole record open and
  // indeterminate; an indeterminate base address flushes the heap.
  if (NameDet == Det::Indeterminate)
    openRecord(Obj);

  heapBarrier(Obj);
  JSObject &O = TheHeap.get(Obj);
  JournalEntry JE;
  JE.K = JournalEntry::PropWrite;
  JE.Obj = Obj;
  JE.Name = Name;
  if (const Slot *S = O.get(Name)) {
    JE.Existed = true;
    J.push(JE, *S);
  } else {
    J.push(JE);
  }
  ++Stats.JournalEntries;

  Det D = taintAdjust(meet(TV.D, NameDet));
  O.set(Name, Slot{std::move(TV.V), D, Epoch});

  // Array length maintenance. Canonical index atoms carry their numeric
  // value from intern time, so no digits are re-parsed here.
  uint32_t Idx = Interner::global().arrayIndex(Name);
  if (O.Class == ObjectClass::Array && Idx != Interner::NotAnIndex) {
    const Slot *Len = O.get(atoms().Length);
    double N = Len && Len->V.isNumber() ? Len->V.Num : 0;
    Det LenDet = Len ? slotDet(*Len) : Det::Determinate;
    if (Idx + 1 > N) {
      JournalEntry LE;
      LE.K = JournalEntry::PropWrite;
      LE.Obj = Obj;
      LE.Name = atoms().Length;
      if (Len) {
        LE.Existed = true;
        J.push(LE, *Len);
      } else {
        J.push(LE);
      }
      ++Stats.JournalEntries;
      O.set(atoms().Length,
            Slot{Value::number(Idx + 1.0), taintAdjust(meet(LenDet, NameDet)),
                 Epoch});
    }
  }

  if (BaseDet == Det::Indeterminate)
    flushHeap();
}

bool InstrumentedInterpreter::eraseProp(ObjectRef Obj, StringId Name) {
  heapBarrier(Obj);
  JSObject &O = TheHeap.get(Obj);
  const Slot *S = O.get(Name);
  JournalEntry JE;
  JE.K = JournalEntry::PropWrite;
  JE.Obj = Obj;
  JE.Name = Name;
  if (S) {
    JE.Existed = true;
    J.push(JE, *S);
  } else {
    J.push(JE);
  }
  ++Stats.JournalEntries;
  return O.erase(Name);
}

void InstrumentedInterpreter::openRecord(ObjectRef Obj) {
  JSObject &O = TheHeap.get(Obj);
  if (!O.ExplicitlyOpen) {
    heapBarrier(Obj);
    JournalEntry JE;
    JE.K = JournalEntry::RecordOpen;
    JE.Obj = Obj;
    JE.OldOpen = O.ExplicitlyOpen;
    J.push(std::move(JE));
    ++Stats.JournalEntries;
    O.ExplicitlyOpen = true;
  }
  // All existing properties become indeterminate (any may be overwritten).
  std::vector<StringId> Names;
  Names.reserve(O.slots().size());
  for (const auto &[Name, S] : O.slots())
    if (S.D == Det::Determinate && S.Epoch == Epoch)
      Names.push_back(Name);
  if (!Names.empty())
    heapBarrier(Obj); // Only a real weakening needs a pre-image.
  for (StringId Name : Names) {
    Slot *S = TheHeap.get(Obj).get(Name);
    JournalEntry JE;
    JE.K = JournalEntry::PropWrite;
    JE.Obj = Obj;
    JE.Name = Name;
    JE.Existed = true;
    J.push(JE, *S);
    ++Stats.JournalEntries;
    S->D = Det::Indeterminate;
  }
}

void InstrumentedInterpreter::addMaybeAbsent(ObjectRef Obj, StringId Name) {
  JSObject &O = TheHeap.get(Obj);
  // Probe before mutating so a no-op neither journals nor copies.
  if (O.has(Name) || O.isMaybeAbsent(Name))
    return;
  heapBarrier(Obj);
  O.insertMaybeAbsent(Name);
  JournalEntry JE;
  JE.K = JournalEntry::MaybeAbsentAdd;
  JE.Obj = Obj;
  JE.Name = Name;
  J.push(std::move(JE));
  ++Stats.JournalEntries;
}

void InstrumentedInterpreter::addMaybePresent(ObjectRef Obj, StringId Name) {
  JSObject &O = TheHeap.get(Obj);
  if (O.isMaybePresent(Name))
    return;
  heapBarrier(Obj);
  O.insertMaybePresent(Name);
  JournalEntry JE;
  JE.K = JournalEntry::MaybePresentAdd;
  JE.Obj = Obj;
  JE.Name = Name;
  J.push(std::move(JE));
  ++Stats.JournalEntries;
}

void InstrumentedInterpreter::flushHeap() {
  ++Epoch;
  ++Stats.HeapFlushes;
  if (Stats.HeapFlushes > Opts.FlushLimit)
    Stats.FlushLimitHit = true;
}

//===----------------------------------------------------------------------===//
// Branch machinery
//===----------------------------------------------------------------------===//

void InstrumentedInterpreter::markIndetSince(Journal::Mark M) {
  size_t End = J.size(); // New entries appended below need no re-marking.
  for (size_t I = M; I < End; ++I) {
    JournalEntry E = J[I]; // Copy: appending below may reallocate.
    switch (E.K) {
    case JournalEntry::VarWrite: {
      auto It = Envs.get(E.Env).Vars.find(E.Name);
      if (It != Envs.get(E.Env).Vars.end())
        It->second.D = Det::Indeterminate;
      break;
    }
    case JournalEntry::PropWrite: {
      if (Slot *S = TheHeap.get(E.Obj).get(E.Name)) {
        S->D = Det::Indeterminate;
        // A property *created* in this branch may not exist in other
        // executions: the record's property set is no longer determinate.
        if (!E.Existed)
          addMaybePresent(E.Obj, E.Name);
      } else {
        // Deleted in this branch; other executions may still have it.
        addMaybeAbsent(E.Obj, E.Name);
      }
      break;
    }
    case JournalEntry::RecordOpen:
    case JournalEntry::MaybeAbsentAdd:
    case JournalEntry::MaybePresentAdd:
      break; // Already weak; nothing further.
    }
  }
}

Journal::Mark InstrumentedInterpreter::beginUndoFrame(bool Charged) {
  Journal::Mark M = J.mark();
  TheHeap.beginSnapshot(Charged);
  Envs.beginSnapshot(Charged);
  SnapMarks.push_back(M);
  ++Stats.SnapshotForks;
  return M;
}

void InstrumentedInterpreter::undoSince(Journal::Mark M) {
  if (SnapMode) {
    // Every caller's mark is its own frame boundary (counterfactualBranch
    // and captureSpec open one; the ctor opened the base frame at 0), and
    // frames are strictly balanced — an opener restores its frame before
    // returning, on every path — so the caller's frame is exactly the top
    // of the stack: restore it and done. Cost is proportional to objects
    // *touched* since the frame opened, not writes performed. (A `>=` scan
    // would be wrong: an enclosing frame may share the mark when nothing
    // was journaled between the two opens.)
    assert(!SnapMarks.empty() && SnapMarks.back() == M &&
           "undo mark is not the innermost snapshot frame");
    TheHeap.restoreSnapshot();
    Envs.restoreSnapshot();
    SnapMarks.pop_back();
    J.truncate(M);
    return;
  }
  // Reverse replay: the pre-image side arrays are parallel to the Existed
  // VarWrite/PropWrite subsequence of the journal, so walking entries
  // backwards consumes each array from its tail.
  size_t BI = J.bindingPreCount(), SI = J.slotPreCount();
  for (size_t I = J.size(); I > M; --I) {
    const JournalEntry &E = J[I - 1];
    switch (E.K) {
    case JournalEntry::VarWrite: {
      Environment &Env = Envs.get(E.Env);
      if (E.Existed) {
        // In-place restore: the map node (and any cached Binding*) survives.
        Env.Vars[E.Name] = J.bindingPre(--BI);
      } else {
        // Erasing invalidates Binding pointers; revalidate variable caches.
        Envs.noteShapeChange();
        Env.Vars.erase(E.Name);
      }
      break;
    }
    case JournalEntry::PropWrite: {
      JSObject &O = TheHeap.get(E.Obj);
      if (E.Existed)
        O.set(E.Name, J.slotPre(--SI));
      else
        O.erase(E.Name);
      break;
    }
    case JournalEntry::RecordOpen:
      TheHeap.get(E.Obj).ExplicitlyOpen = E.OldOpen;
      break;
    case JournalEntry::MaybeAbsentAdd:
      TheHeap.get(E.Obj).eraseMaybeAbsent(E.Name);
      break;
    case JournalEntry::MaybePresentAdd:
      TheHeap.get(E.Obj).eraseMaybePresent(E.Name);
      break;
    }
  }
  J.truncate(M);
}

void InstrumentedInterpreter::cntrAbort(
    const std::vector<StringId> &AbortVd) {
  ++Stats.CounterfactualAborts;
  flushHeap();
  for (StringId Name : AbortVd) {
    EnvRef E = Envs.lookupEnv(CurrentEnv, Name);
    if (E)
      weakenVar(E, Name);
  }
  // The unexecuted branch may call closures that write any reachable
  // binding, and may transfer control non-locally: taint conservatively.
  taintAllEnvironments();
  noteCounterfactualEscape(IComp::Normal, /*UnexploredSuffix=*/true);
}

void InstrumentedInterpreter::taintAllEnvironments() {
  Envs.forEach([&](EnvRef Ref, Environment &E) {
    std::vector<StringId> Names;
    for (const auto &[Name, B] : E.Vars)
      if (!B.Immune && B.D == Det::Determinate)
        Names.push_back(Name);
    for (StringId Name : Names)
      weakenVar(Ref, Name);
  });
}

void InstrumentedInterpreter::noteCounterfactualEscape(IComp::Kind K,
                                                       bool UnexploredSuffix) {
  Journal::Mark Now = J.mark();
  auto SetMin = [Now](std::optional<Journal::Mark> &M) {
    if (!M || *M > Now)
      M = Now;
  };
  if (UnexploredSuffix) {
    // Unknown alternative code: any transfer is possible.
    SetMin(CfThrowMark);
    SetMin(CfBreakMark);
    SetMin(Frames.back().ReturnEscape);
    return;
  }
  switch (K) {
  case IComp::Throw:
    SetMin(CfThrowMark);
    break;
  case IComp::Return:
    SetMin(Frames.back().ReturnEscape);
    break;
  case IComp::Break:
  case IComp::Continue:
    SetMin(CfBreakMark);
    break;
  default:
    break;
  }
}

IComp InstrumentedInterpreter::counterfactualBranch(
    const std::vector<StringId> &AbortVd,
    const std::function<IComp()> &Exec) {
  bool Abort =
      !Opts.CounterfactualEnabled || CfDepth >= Opts.CounterfactualDepth;
  // Fuel is only spent on branches we would otherwise explore; exhaustion
  // degrades *locally* through the same ĈNTRABORT path as deep nesting —
  // the run continues, soundly, with a weaker post-state.
  if (!Abort && !Gov.spendCfFuel()) {
    Abort = true;
    Degradation.addEvent(TrapKind::CfFuelExhausted, "cntr-abort",
                         "fuel spent=" + std::to_string(Gov.cfFuelUsed()) +
                             " vd-size=" + std::to_string(AbortVd.size()));
  }
  if (Abort) {
    cntrAbort(AbortVd);
    return IComp::normal();
  }

  ++Stats.Counterfactuals;
  ++CfDepth;
  // Snapshot engine: fork is O(1) — a frame on each arena, charged so the
  // first-touch pre-image copies bill the heap-cell budget like the journal
  // engine's entry captures effectively did.
  Journal::Mark M = SnapMode ? beginUndoFrame(/*Charged=*/true) : J.mark();
  uint64_t RandomState = RandomRng.getState();
  uint64_t DomState = DomRng.getState();

  IComp C = Exec();

  --CfDepth;
  RandomRng.setState(RandomState);
  DomRng.setState(DomState);

  bool Unexplored = CfAbortRequested; // Unsafe native: branch suffix unseen.
  bool Aborted = Unexplored || C.K == IComp::Return ||
                 C.K == IComp::Break || C.K == IComp::Continue ||
                 C.K == IComp::Throw;
  CfAbortRequested = false;

  // Snapshot what the branch touched, then revert it.
  std::vector<JournalEntry> Touched;
  Touched.reserve(J.size() - M);
  for (size_t I = M; I < J.size(); ++I)
    Touched.push_back(J[I]);
  undoSince(M);

  // The other execution may perform these writes: weaken each location
  // (journaled, so an enclosing counterfactual can still undo precisely).
  for (const JournalEntry &E : Touched) {
    switch (E.K) {
    case JournalEntry::VarWrite:
      weakenVar(E.Env, E.Name);
      break;
    case JournalEntry::PropWrite: {
      JSObject &O = TheHeap.get(E.Obj);
      Slot *S = O.get(E.Name);
      if (S && (S->D == Det::Determinate && S->Epoch == Epoch)) {
        heapBarrier(E.Obj); // Weakened under the *enclosing* frame now.
        JournalEntry JE;
        JE.K = JournalEntry::PropWrite;
        JE.Obj = E.Obj;
        JE.Name = E.Name;
        JE.Existed = true;
        J.push(JE, *S);
        ++Stats.JournalEntries;
        S->D = Det::Indeterminate;
      } else if (!S) {
        // The branch created a property that does not exist here: in another
        // execution the record may have it. Records are total functions
        // (paper Section 3.1), so mark just this name as possibly present
        // and keep the rest of the record determinate.
        addMaybeAbsent(E.Obj, E.Name);
      }
      break;
    }
    case JournalEntry::RecordOpen:
      openRecord(E.Obj);
      break;
    case JournalEntry::MaybeAbsentAdd:
      addMaybeAbsent(E.Obj, E.Name);
      break;
    case JournalEntry::MaybePresentAdd:
      // The inner world considered the property possibly-created; after the
      // undo it is absent here but may exist in other executions.
      addMaybeAbsent(E.Obj, E.Name);
      break;
    }
  }

  if (C.K == IComp::Fatal)
    return C;
  if (Aborted) {
    // Exceptions / unknown effects during counterfactual: give up on the
    // heap, and record that other executions transfer control non-locally
    // from here (their catch handlers may run; our continuation may be
    // skipped there).
    flushHeap();
    if (Unexplored || C.K == IComp::Throw)
      taintAllEnvironments();
    noteCounterfactualEscape(C.K, Unexplored);
  }
  return IComp::normal();
}

//===----------------------------------------------------------------------===//
// Intra-run parallel branch exploration
//===----------------------------------------------------------------------===//
//
// At an eligible indeterminate branch, a deep-copied *shadow* interpreter
// runs the counterfactual (untaken) side on a pool thread while this thread
// runs the taken side *speculatively* against a free snapshot frame. The
// speculation is committed only when the shadow's counterfactual left zero
// net effects — its journal has no surviving weakening entries, its arenas
// did not grow, no flush/abort/escape happened, and no call was made — in
// which case the sequential order (counterfactual first, then taken side)
// would have started the taken side from exactly the state the speculation
// saw, so the merged result is byte-identical at any thread count. Anything
// else rolls the speculation back and reruns the branch sequentially.

/// Bitwise value+determinacy equality (NaN-exact for numbers).
static bool sameTagged(const TaggedValue &A, const TaggedValue &B) {
  if (A.D != B.D || A.V.Kind != B.V.Kind)
    return false;
  switch (A.V.Kind) {
  case ValueKind::Undefined:
  case ValueKind::Null:
    return true;
  case ValueKind::Boolean:
    return A.V.Bool == B.V.Bool;
  case ValueKind::Number:
    return std::memcmp(&A.V.Num, &B.V.Num, sizeof(double)) == 0;
  case ValueKind::String:
    return A.V.Str == B.V.Str;
  case ValueKind::Object:
    return A.V.Obj == B.V.Obj;
  }
  return false;
}

InstrumentedInterpreter::InstrumentedInterpreter(
    InstrumentedInterpreter &Parent, ShadowBranchTag)
    : Prog(Parent.Prog), Opts(Parent.Opts), Gov(Parent.Opts.governorLimits()),
      TheHeap(Parent.TheHeap), Envs(Parent.Envs), RandomRng(Parent.RandomRng),
      DomRng(Parent.DomRng), Contexts(Parent.Contexts) {
  // The shadow tree-walks its one branch: chunk caches are per-interpreter
  // scratch, and compiling inside a single counterfactual would only add
  // latency. It never parallelizes further, never sees the injector (its
  // deterministic checkpoint counters belong to the parent's sequence), and
  // parses any eval'd code into a private overlay so the shared AST is
  // never mutated from a pool thread.
  Opts.Engine = ExecEngine::TreeWalk;
  Opts.ParallelBranches = false;
  Opts.BranchPool = nullptr;
  Opts.Injector = nullptr;
  ASTContext *ParentEvalCtx = Parent.Opts.EvalContext
                                  ? Parent.Opts.EvalContext
                                  : Parent.Prog.Context.get();
  ShadowEvalCtx = std::make_unique<ASTContext>(ParentEvalCtx->nextID());
  Opts.EvalContext = ShadowEvalCtx.get();

  // Budgets continue from the parent's counters so the counterfactual trips
  // exactly where the sequential order would have.
  Gov.restore(Parent.Gov.checkpoint());
  TheHeap.setGovernor(&Gov);
  Envs.setGovernor(&Gov);
  // The copied frames guard the *parent's* journal marks; the shadow's own
  // counterfactual opens a fresh frame over an empty journal.
  TheHeap.dropSnapshotsForFork();
  Envs.dropSnapshotsForFork();
  SnapMode = true;
  IsShadowBranch = true;

  // Stats is the delta base for the fold (the fold adds Sh.Stats - this
  // copy to the parent). Facts/ExecutedCalls/ExecutedStmts/J start empty:
  // whatever the shadow records is exactly the branch's contribution.
  Stats = Parent.Stats;
  GlobalEnv = Parent.GlobalEnv;
  CurrentEnv = Parent.CurrentEnv;
  Frames = Parent.Frames;
  for (Frame &F : Frames)
    F.ReturnEscape.reset(); // Parent-journal-relative; meaningless here.
  Epoch = Parent.Epoch;
  Degradation = Parent.Degradation;
  IndetBranchDepth = Parent.IndetBranchDepth; // StrictTaint parity.
  ObjectProto = Parent.ObjectProto;
  StringProto = Parent.StringProto;
  ArrayProto = Parent.ArrayProto;
  EvalFn = Parent.EvalFn;
  WindowObj = Parent.WindowObj;
  DocumentObj = Parent.DocumentObj;
  DomElements = Parent.DomElements;
  EventHandlers = Parent.EventHandlers;
  LastStmtValue = Parent.LastStmtValue;
}

InstrumentedInterpreter::SpecCheckpoint InstrumentedInterpreter::captureSpec() {
  SpecCheckpoint Cp;
  Cp.Stats = Stats;
  Cp.HeapSize = TheHeap.size();
  Cp.EnvSize = Envs.size();
  Cp.HeapSaves = TheHeap.cowSaves();
  Cp.EnvSaves = Envs.cowSaves();
  Cp.Gov = Gov.checkpoint();
  Cp.RandomState = RandomRng.getState();
  Cp.DomState = DomRng.getState();
  Cp.Epoch = Epoch;
  Cp.OutputLen = Output.size();
  Cp.HandlersLen = EventHandlers.size();
  Cp.DomElements = DomElements;
  Cp.LastStmt = LastStmtValue;
  Cp.TopFrame = Frames.back();
  Cp.FrameDepth = Frames.size();
  Cp.CurEnv = CurrentEnv;
  Cp.ThrowMark = CfThrowMark;
  Cp.BreakMark = CfBreakMark;
  Cp.IndetDepth = IndetBranchDepth;
  Cp.AbortReq = CfAbortRequested;
  Cp.Degradation = Degradation;
  Cp.EvalCtx = Opts.EvalContext ? Opts.EvalContext : Prog.Context.get();
  Cp.AstNextID = Cp.EvalCtx->nextID();
  Cp.AstNodeCount = Cp.EvalCtx->nodeCount();
  Cp.VLen = VStack.size();
  Cp.JLen = JStack.size();
  // The speculation frame is free: the sequential order would not have
  // copied pre-images for taken-side writes, so charging them would make a
  // heap budget trip earlier than the oracle.
  Cp.Mark = beginUndoFrame(/*Charged=*/false);
  SpecActive = true;
  SpecSawEval = SpecWroteLastStmt = false;
  SpecFacts.clear();
  SpecStmts.clear();
  SpecCalls.clear();
  return Cp;
}

void InstrumentedInterpreter::rollbackSpec(const SpecCheckpoint &Cp) {
  SpecActive = false;
  SpecSawEval = SpecWroteLastStmt = false;
  SpecFacts.clear();
  SpecStmts.clear();
  SpecCalls.clear();
  // Restore pre-images first (refs past the fork point are still live),
  // then drop the objects the speculation allocated.
  undoSince(Cp.Mark);
  TheHeap.truncateTo(Cp.HeapSize);
  Envs.truncateTo(Cp.EnvSize);
  Envs.noteShapeChange();
  if (BC)
    BC->flushCaches(); // Caches may point into truncated arenas / rolled-back AST.
  Stats = Cp.Stats;
  Gov.restore(Cp.Gov);
  RandomRng.setState(Cp.RandomState);
  DomRng.setState(Cp.DomState);
  Epoch = Cp.Epoch;
  Output.resize(Cp.OutputLen);
  EventHandlers.resize(Cp.HandlersLen);
  DomElements = Cp.DomElements;
  LastStmtValue = Cp.LastStmt;
  Frames.resize(Cp.FrameDepth);
  Frames.back() = Cp.TopFrame;
  CurrentEnv = Cp.CurEnv;
  CfThrowMark = Cp.ThrowMark;
  CfBreakMark = Cp.BreakMark;
  IndetBranchDepth = Cp.IndetDepth;
  CfAbortRequested = Cp.AbortReq;
  Degradation = Cp.Degradation;
  Cp.EvalCtx->rollbackTo(Cp.AstNextID, Cp.AstNodeCount);
  VStack.resize(Cp.VLen);
  JStack.resize(Cp.JLen);
}

bool InstrumentedInterpreter::shadowFoldable(const InstrumentedInterpreter &Sh,
                                             const SpecCheckpoint &Cp,
                                             const IComp &CfC) const {
  // The counterfactual itself must have completed cleanly...
  if (CfC.K != IComp::Normal)
    return false;
  if (Sh.Gov.tripped() || Gov.tripped())
    return false;
  // ...without any net effect the fold would have to transplant: no
  // surviving weakening entries (writes that weren't already weak), no
  // flush, no abort/degradation, no allocations (facts key synthetic DOM
  // values by raw ObjectRef, so arena drift is unmergeable), no calls
  // (context interning, occurrence counters), no output, handlers, DOM
  // nodes, or pending escape marks.
  if (Sh.ShadowSawCall || !Sh.J.empty())
    return false;
  if (Sh.Epoch != Cp.Epoch)
    return false;
  if (Sh.Stats.CounterfactualAborts != Cp.Stats.CounterfactualAborts)
    return false;
  if (Sh.Degradation.EventsTotal != Cp.Degradation.EventsTotal)
    return false;
  if (Sh.TheHeap.size() != Cp.HeapSize || Sh.Envs.size() != Cp.EnvSize)
    return false;
  if (!Sh.Output.empty())
    return false;
  if (Sh.EventHandlers.size() != Cp.HandlersLen ||
      Sh.DomElements.size() != Cp.DomElements.size())
    return false;
  if (Sh.CfThrowMark || Sh.CfBreakMark)
    return false;
  for (const Frame &F : Sh.Frames)
    if (F.ReturnEscape)
      return false;
  if (Sh.Gov.callsEntered() != Cp.Gov.CallsEntered ||
      Sh.Gov.evalsEntered() != Cp.Gov.EvalsEntered)
    return false;
  // eval-in-speculation parses against the post-counterfactual
  // LastStmtValue in sequential order; accept only when the counterfactual
  // demonstrably did not move it.
  if (SpecSawEval && !sameTagged(Sh.LastStmtValue, Cp.LastStmt))
    return false;
  // Budget equivalence: counters are monotonic, so "combined end totals
  // within every limit" implies no sequential prefix would have tripped —
  // including the latched heap trip, whose check is also a plain count
  // comparison.
  const GovernorLimits &L = Gov.limits();
  uint64_t DSteps = Sh.Gov.stepsUsed() - Cp.Gov.Steps;
  uint64_t DHeap = Sh.Gov.heapCellsUsed() - Cp.Gov.HeapCells;
  uint64_t DFuel = Sh.Gov.cfFuelUsed() - Cp.Gov.CfFuelUsed;
  if (L.MaxSteps != 0 && Gov.stepsUsed() + DSteps > L.MaxSteps)
    return false;
  if (L.MaxHeapCells != 0 && Gov.heapCellsUsed() + DHeap > L.MaxHeapCells)
    return false;
  if (L.CfFuel != 0 && Gov.cfFuelUsed() + DFuel > L.CfFuel)
    return false;
  return true;
}

void InstrumentedInterpreter::foldShadow(InstrumentedInterpreter &Sh,
                                         const SpecCheckpoint &Cp) {
  SpecActive = false;
  // Shadow (counterfactual) facts first, then the speculative taken-side
  // facts: the sequential recording order. Cross-key iteration order is
  // irrelevant (the per-key merge in record() is commutative and
  // associative), and the shadow has already merged same-key observations
  // in its own execution order.
  for (const auto &[K, V] : Sh.Facts.all()) {
    Facts.record(K, V);
    if (IncCapturing)
      IncFacts.emplace_back(K, V);
  }
  for (const auto &[K, V] : SpecFacts) {
    Facts.record(K, V);
    if (IncCapturing)
      IncFacts.emplace_back(K, V);
  }
  SpecFacts.clear();
  for (NodeID N : SpecStmts) {
    ExecutedStmts.insert(N);
    if (IncCapturing)
      IncStmts.push_back(N);
  }
  for (NodeID N : SpecCalls) {
    ExecutedCalls.insert(N);
    if (IncCapturing)
      IncCalls.push_back(N);
  }
  SpecStmts.clear();
  SpecCalls.clear();

  // Fingerprinted counters the sequential branch would have bumped.
  Stats.JournalEntries += Sh.Stats.JournalEntries - Cp.Stats.JournalEntries;
  Stats.Counterfactuals += Sh.Stats.Counterfactuals - Cp.Stats.Counterfactuals;
  Stats.SnapshotForks += Sh.Stats.SnapshotForks - Cp.Stats.SnapshotForks;
  CowSavesFolded += (Sh.TheHeap.cowSaves() - Cp.HeapSaves) +
                    (Sh.Envs.cowSaves() - Cp.EnvSaves);
  Gov.applyExternalSpend(Sh.Gov.stepsUsed() - Cp.Gov.Steps,
                         Sh.Gov.heapCellsUsed() - Cp.Gov.HeapCells,
                         Sh.Gov.cfFuelUsed() - Cp.Gov.CfFuelUsed,
                         /*DEvals=*/0, /*DCalls=*/0);

  // Sequentially, a counterfactual branch's statement values leak into
  // LastStmtValue until the taken side overwrites it.
  if (!SpecWroteLastStmt)
    LastStmtValue = Sh.LastStmtValue;

  // Keep the speculation's writes: merge its frame into the enclosing
  // (base) frame so an outer undoSince can still restore past it.
  assert(!SnapMarks.empty() && SnapMarks.back() == Cp.Mark &&
         "speculation frame is not the innermost snapshot frame");
  TheHeap.commitSnapshot();
  Envs.commitSnapshot();
  SnapMarks.pop_back();
}

bool InstrumentedInterpreter::tryParallelBranch(
    NodeID Site, const std::vector<StringId> &AbortVd,
    const std::function<IComp(InstrumentedInterpreter &)> &UntakenExec,
    const std::function<IComp()> &TakenExec, IComp &Out) {
  // Eligibility: opted in with a pool, snapshot undo (rollback needs the
  // frames), top-level branch on the main interpreter, no speculation
  // already in flight, and no external sequencing the fork would break
  // (fault-injector checkpoint order, wall-clock deadline). A disabled or
  // depth-zero counterfactual never explores the untaken side, so there is
  // nothing to parallelize.
  if (!Opts.ParallelBranches || !Opts.BranchPool || !SnapMode ||
      IsShadowBranch || SpecActive || CfDepth != 0 || Opts.Injector ||
      Gov.limits().DeadlineMs != 0 || !Opts.CounterfactualEnabled ||
      Opts.CounterfactualDepth == 0)
    return false;
  // Adaptive cutoff: call-heavy programs reject nearly every fold
  // (ShadowSawCall), and each rejected dispatch costs a full arena fork,
  // a discarded counterfactual run, and a speculation rollback. Stop
  // dispatching once failures clearly dominate commits.
  if (ParallelFoldFailures > 4 + 4 * Stats.ParallelBranchCommits)
    return false;
  // Profile gate: forking the shadow copies the live heap, environment,
  // and context state, so a branch only belongs on a worker when its
  // counterfactual side does enough work to amortize that copy. Unknown
  // sites dispatch once to seed the profile; known sites must beat the
  // current fork-cost estimate. Small branches in hot loops over a large
  // heap would otherwise pay an O(heap) fork per iteration.
  auto ProfIt = BranchCfSteps.find(Site);
  if (ProfIt != BranchCfSteps.end() &&
      ProfIt->second < (TheHeap.size() + Envs.size()) / 4)
    return false;

  std::unique_ptr<InstrumentedInterpreter> Shadow(
      new InstrumentedInterpreter(*this, ShadowBranchTag{}));
  InstrumentedInterpreter *Sh = Shadow.get();
  uint64_t StepsAtFork = Gov.stepsUsed();
  IComp CfC = IComp::normal();
  TaskGroup Group(*Opts.BranchPool);
  bool Dispatched = Group.submit([Sh, &CfC, &AbortVd, &UntakenExec] {
    CfC = Sh->counterfactualBranch(AbortVd, [&] { return UntakenExec(*Sh); });
  });
  if (!Dispatched)
    return false; // Pool shut down; sequential path.
  ++Stats.ParallelBranchTasks;

  SpecCheckpoint Cp = captureSpec();
  IComp TakenC = TakenExec();
  bool WaitFailed = false;
  try {
    Group.wait();
  } catch (...) {
    WaitFailed = true; // Worker raised (OOM, cancelled): treat as unfoldable.
  }

  // Refresh the site profile with what this counterfactual actually cost
  // (the shadow's governor continued from the fork point), whether or not
  // the fold lands: a site that shrinks gets demoted on its next visit.
  if (!WaitFailed)
    BranchCfSteps[Site] = Sh->Gov.stepsUsed() - StepsAtFork;

  if (!WaitFailed && shadowFoldable(*Sh, Cp, CfC)) {
    foldShadow(*Sh, Cp);
    ++Stats.ParallelBranchCommits;
    Out = TakenC;
    return true;
  }
  rollbackSpec(Cp);
  ++ParallelFoldFailures;
  return false;
}

void InstrumentedInterpreter::noteBranchCfSteps(NodeID Site,
                                                uint64_t StepsBefore) {
  // Only profile where tryParallelBranch could actually dispatch: the main
  // interpreter's top-level branches with the feature enabled. (Shadows and
  // nested counterfactuals never fork, so their costs would only pollute
  // the table.)
  if (!Opts.ParallelBranches || !Opts.BranchPool || IsShadowBranch ||
      SpecActive || CfDepth != 0)
    return;
  BranchCfSteps[Site] = Gov.stepsUsed() - StepsBefore;
}

//===----------------------------------------------------------------------===//
// Fact recording and small helpers
//===----------------------------------------------------------------------===//

void InstrumentedInterpreter::commitFactRecord(const FactKey &K,
                                               const FactValue &FV) {
  if (SpecActive) {
    SpecFacts.emplace_back(K, FV);
  } else {
    Facts.record(K, FV);
    if (IncCapturing)
      IncFacts.emplace_back(K, FV);
  }
}

void InstrumentedInterpreter::recordFact(FactKind Kind, NodeID Node,
                                         const TaggedValue &TV,
                                         uint16_t Index) {
  if (Stats.FlushLimitHit)
    return;
  commitFactRecord({Node, currentCtx(), Kind, Index},
                   FactValue::fromTagged(TV, TheHeap));
}

void InstrumentedInterpreter::recordFactAt(FactKind Kind, NodeID Node,
                                           ContextID Ctx,
                                           const TaggedValue &TV,
                                           uint16_t Index) {
  if (Stats.FlushLimitHit)
    return;
  commitFactRecord({Node, Ctx, Kind, Index},
                   FactValue::fromTagged(TV, TheHeap));
}

void InstrumentedInterpreter::recordFactValue(FactKind Kind, NodeID Node,
                                              FactValue FV, uint16_t Index) {
  if (Stats.FlushLimitHit)
    return;
  commitFactRecord({Node, currentCtx(), Kind, Index}, FV);
}

/// The step-limit message text is load-bearing: callers historically
/// matched on "step limit".
IComp InstrumentedInterpreter::trapCompletion() {
  TrapKind K = Gov.trapKind();
  std::string Msg;
  switch (K) {
  case TrapKind::StepLimit:
    Msg = "step limit exceeded";
    break;
  case TrapKind::Deadline:
    Msg = "deadline exceeded";
    break;
  case TrapKind::HeapLimit:
    Msg = "heap cell limit exceeded";
    break;
  case TrapKind::CallDepthLimit:
    Msg = "call depth limit exceeded";
    break;
  case TrapKind::EvalDepthLimit:
    Msg = "eval depth limit exceeded";
    break;
  default:
    return IComp::fatal("governor trap without a tripped budget");
  }
  if (Gov.trip().Injected)
    Msg += " (injected)";
  return IComp::trap(K, std::move(Msg));
}

IComp InstrumentedInterpreter::throwString(const std::string &Message) {
  return IComp::thrown(TaggedValue(Value::string(Message)));
}

//===----------------------------------------------------------------------===//
// Hoisting
//===----------------------------------------------------------------------===//

void InstrumentedInterpreter::hoistStmt(const Stmt *S, EnvRef Env) {
  switch (S->getKind()) {
  case NodeKind::VarDeclStmt:
    for (const auto &D : cast<VarDeclStmt>(S)->getDeclarators())
      if (!Envs.get(Env).Vars.count(D.Atom))
        declareVar(Env, D.Atom, TaggedValue(Value::undefined()));
    return;
  case NodeKind::FunctionDeclStmt: {
    const FunctionExpr *Fn = cast<FunctionDeclStmt>(S)->getFunction();
    ObjectRef FnObj = makeFunction(Fn, Env);
    declareVar(Env, Fn->getNameAtom(), TaggedValue(Value::object(FnObj)));
    return;
  }
  case NodeKind::BlockStmt:
    for (const Stmt *Inner : cast<BlockStmt>(S)->getBody())
      hoistStmt(Inner, Env);
    return;
  case NodeKind::IfStmt:
    hoistStmt(cast<IfStmt>(S)->getThen(), Env);
    if (const Stmt *Else = cast<IfStmt>(S)->getElse())
      hoistStmt(Else, Env);
    return;
  case NodeKind::WhileStmt:
    hoistStmt(cast<WhileStmt>(S)->getBody(), Env);
    return;
  case NodeKind::DoWhileStmt:
    hoistStmt(cast<DoWhileStmt>(S)->getBody(), Env);
    return;
  case NodeKind::ForStmt:
    if (const Stmt *Init = cast<ForStmt>(S)->getInit())
      hoistStmt(Init, Env);
    hoistStmt(cast<ForStmt>(S)->getBody(), Env);
    return;
  case NodeKind::ForInStmt: {
    const auto *F = cast<ForInStmt>(S);
    if (F->declaresVar() && !Envs.get(Env).Vars.count(F->getVarAtom()))
      declareVar(Env, F->getVarAtom(), TaggedValue(Value::undefined()));
    hoistStmt(F->getBody(), Env);
    return;
  }
  case NodeKind::TryStmt: {
    const auto *T = cast<TryStmt>(S);
    hoistStmt(T->getBlock(), Env);
    if (T->getCatchBlock())
      hoistStmt(T->getCatchBlock(), Env);
    if (T->getFinallyBlock())
      hoistStmt(T->getFinallyBlock(), Env);
    return;
  }
  case NodeKind::SwitchStmt:
    for (const auto &Clause : cast<SwitchStmt>(S)->getClauses())
      for (const Stmt *Inner : Clause.Body)
        hoistStmt(Inner, Env);
    return;
  default:
    return;
  }
}

void InstrumentedInterpreter::hoist(const std::vector<Stmt *> &Body,
                                    EnvRef Env, bool FreshEnv) {
  // Hoisting into a pre-existing scope (toplevel, eval) can add bindings
  // that shadow outer ones along already-cached resolution chains; a fresh
  // activation scope cannot, so it skips the cache-invalidating bump.
  if (!FreshEnv)
    Envs.noteShapeChange();
  for (const Stmt *S : Body)
    hoistStmt(S, Env);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

IComp InstrumentedInterpreter::execBlockBody(const std::vector<Stmt *> &Body) {
  return execStmtsFrom(Body, 0);
}

IComp InstrumentedInterpreter::execStmtsFrom(const std::vector<Stmt *> &Body,
                                             size_t From) {
  for (size_t I = From; I < Body.size(); ++I) {
    IComp C = execStmt(Body[I]);
    if (!C.isAbrupt())
      continue;
    if (C.IndetControl && C.K != IComp::Fatal && I + 1 < Body.size()) {
      // Other executions may not take this control transfer: explore the
      // statements it skips counterfactually.
      std::vector<StringId> Vd;
      for (size_t R = I + 1; R < Body.size(); ++R)
        collectAssignedInStmt(Body[R], Vd);
      std::sort(Vd.begin(), Vd.end());
      Vd.erase(std::unique(Vd.begin(), Vd.end()), Vd.end());
      IComp CF = counterfactualBranch(
          Vd, [&] { return execStmtsFrom(Body, I + 1); });
      if (CF.K == IComp::Fatal)
        return CF;
    }
    return C;
  }
  return IComp::normal();
}

IComp InstrumentedInterpreter::execStmt(const Stmt *S) {
  IComp Tick;
  if (!tick(Tick))
    return Tick;
  if (!inCounterfactual())
    noteExecutedStmt(S->getID());

  switch (S->getKind()) {
  case NodeKind::ExpressionStmt: {
    IRes R = evalExpr(cast<ExpressionStmt>(S)->getExpr());
    if (R.abrupt())
      return R.C;
    LastStmtValue = R.V;
    if (SpecActive)
      SpecWroteLastStmt = true;
    return IComp::normal();
  }
  case NodeKind::VarDeclStmt: {
    const auto &Decls = cast<VarDeclStmt>(S)->getDeclarators();
    for (size_t I = 0; I < Decls.size(); ++I) {
      if (!Decls[I].Init)
        continue;
      IRes R = evalExpr(Decls[I].Init);
      if (R.abrupt())
        return R.C;
      recordFact(FactKind::Assign, S->getID(),
                 TaggedValue(R.V.V, taintAdjust(R.V.D)),
                 static_cast<uint16_t>(I));
      setVar(Decls[I].Atom, R.V);
    }
    return IComp::normal();
  }
  case NodeKind::FunctionDeclStmt:
    return IComp::normal();
  case NodeKind::BlockStmt:
    return execBlockBody(cast<BlockStmt>(S)->getBody());
  case NodeKind::IfStmt:
    return execIf(cast<IfStmt>(S));
  case NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(S);
    return execLoop(S, W->getCond(), W->getBody(), nullptr,
                    /*CondFirst=*/true);
  }
  case NodeKind::DoWhileStmt: {
    const auto *W = cast<DoWhileStmt>(S);
    return execLoop(S, W->getCond(), W->getBody(), nullptr,
                    /*CondFirst=*/false);
  }
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(S);
    if (F->getInit()) {
      IComp C = execStmt(F->getInit());
      if (C.isAbrupt())
        return C;
    }
    return execLoop(S, F->getCond(), F->getBody(), F->getUpdate(),
                    /*CondFirst=*/true);
  }
  case NodeKind::ForInStmt:
    return execForIn(cast<ForInStmt>(S));
  case NodeKind::ReturnStmt: {
    const auto *R = cast<ReturnStmt>(S);
    if (!R->getArg())
      return IComp::ret(TaggedValue(Value::undefined()));
    IRes V = evalExpr(R->getArg());
    if (V.abrupt())
      return V.C;
    return IComp::ret(V.V);
  }
  case NodeKind::BreakStmt:
    return {IComp::Break, TaggedValue(), false};
  case NodeKind::ContinueStmt:
    return {IComp::Continue, TaggedValue(), false};
  case NodeKind::ThrowStmt: {
    IRes V = evalExpr(cast<ThrowStmt>(S)->getArg());
    if (V.abrupt())
      return V.C;
    return IComp::thrown(V.V);
  }
  case NodeKind::TryStmt: {
    const auto *T = cast<TryStmt>(S);
    bool HadThrowEscape = CfThrowMark.has_value();
    IComp C = execStmt(T->getBlock());
    // A counterfactually explored throw inside this try block: the other
    // execution runs our catch handler and skips the rest of the block —
    // weaken everything written since the escape point.
    if (!HadThrowEscape && CfThrowMark && T->getCatchBlock()) {
      markIndetSince(*CfThrowMark);
      CfThrowMark.reset();
    }
    if (C.K == IComp::Throw && T->getCatchBlock()) {
      bool Indet = C.IndetControl;
      EnvRef CatchEnv = Envs.allocate(CurrentEnv);
      EnvRef Saved = CurrentEnv;
      CurrentEnv = CatchEnv;
      declareVar(CatchEnv, T->getCatchAtom(),
                 Indet ? C.V.asIndeterminate() : C.V);
      // If the throw itself is control-dependent on indeterminate data,
      // other executions may skip the catch block entirely: treat it like a
      // branch under an indeterminate condition.
      Journal::Mark M = J.mark();
      if (Indet)
        ++IndetBranchDepth;
      C = execStmt(T->getCatchBlock());
      if (Indet) {
        --IndetBranchDepth;
        markIndetSince(M);
        if (C.isAbrupt())
          C.IndetControl = true;
      }
      CurrentEnv = Saved;
    }
    if (T->getFinallyBlock()) {
      IComp F = execStmt(T->getFinallyBlock());
      if (F.isAbrupt())
        return F;
    }
    return C;
  }
  case NodeKind::EmptyStmt:
    return IComp::normal();
  case NodeKind::SwitchStmt:
    return execSwitch(cast<SwitchStmt>(S));
  default:
    return IComp::fatal("expression node in statement position");
  }
}

IComp InstrumentedInterpreter::execSwitch(const SwitchStmt *Sw) {
  IRes Disc = evalExpr(Sw->getDisc());
  if (Disc.abrupt())
    return Disc.C;

  // Clause selection: evaluate tests in order until a strict match. The
  // selection is determinate iff the discriminant and every *evaluated*
  // test are (unevaluated tests are the same in every execution that takes
  // the same path, and irrelevant otherwise).
  const auto &Clauses = Sw->getClauses();
  Det SelDet = Disc.V.D;
  size_t Selected = Clauses.size();
  for (size_t I = 0; I < Clauses.size(); ++I) {
    if (!Clauses[I].Test)
      continue;
    IRes T = evalExpr(Clauses[I].Test);
    if (T.abrupt())
      return T.C;
    SelDet = meet(SelDet, T.V.D);
    if (strictEquals(Disc.V.V, T.V.V)) {
      Selected = I;
      break;
    }
  }
  if (Selected == Clauses.size())
    for (size_t I = 0; I < Clauses.size(); ++I)
      if (!Clauses[I].Test) {
        Selected = I;
        break;
      }

  // Record the selected-clause fact (Condition kind, clause index or ?).
  FactValue SelFact = FactValue::indet();
  if (SelDet == Det::Determinate) {
    SelFact.K = FactValue::Number;
    SelFact.Num = static_cast<double>(Selected);
  }
  recordFactValue(FactKind::Condition, Sw->getID(), SelFact);

  if (SelDet == Det::Determinate) {
    for (size_t I = Selected; I < Clauses.size(); ++I) {
      IComp C = execBlockBody(Clauses[I].Body);
      if (C.K == IComp::Break)
        return IComp::normal();
      if (C.isAbrupt())
        return C;
    }
    return IComp::normal();
  }

  // Indeterminate selection: other executions may run *any* clause suffix.
  // Run the concrete path with ÎF1 marking, and conservatively taint the
  // whole statement's syntactic write set plus the heap for the clauses we
  // did not run (the same treatment as ĈNTRABORT).
  Journal::Mark M = J.mark();
  ++IndetBranchDepth;
  IComp Result = IComp::normal();
  for (size_t I = Selected; I < Clauses.size(); ++I) {
    IComp C = execBlockBody(Clauses[I].Body);
    if (C.K == IComp::Break) {
      Result = IComp::normal();
      break;
    }
    if (C.isAbrupt()) {
      Result = C;
      break;
    }
  }
  --IndetBranchDepth;
  markIndetSince(M);
  cntrAbort(collectAssignedVars(Sw));
  if (Result.isAbrupt() && Result.K != IComp::Fatal)
    Result.IndetControl = true;
  return Result;
}

IComp InstrumentedInterpreter::execIf(const IfStmt *If) {
  IRes Cond = evalExpr(If->getCond());
  if (Cond.abrupt())
    return Cond.C;
  bool B = toBoolean(Cond.V.V);
  recordFactValue(FactKind::Condition, If->getID(),
                  Cond.V.isDet()
                      ? [&] {
                          FactValue F;
                          F.K = FactValue::Boolean;
                          F.B = B;
                          return F;
                        }()
                      : FactValue::indet());

  const Stmt *Taken = B ? If->getThen() : If->getElse();
  const Stmt *Untaken = B ? If->getElse() : If->getThen();

  if (Cond.V.isDet())
    return Taken ? execStmt(Taken) : IComp::normal();

  // Indeterminate condition. Explore the untaken side first (ĈNTR, against
  // the shared pre-branch state), then run the taken side and weaken its
  // writes (ÎF1).
  auto RunTaken = [&]() -> IComp {
    Journal::Mark M = J.mark();
    ++IndetBranchDepth;
    IComp C = execStmt(Taken);
    --IndetBranchDepth;
    markIndetSince(M);
    if (C.isAbrupt() && C.K != IComp::Fatal)
      C.IndetControl = true;
    return C;
  };
  if (Untaken) {
    std::vector<StringId> Vd;
    collectAssignedInStmt(Untaken, Vd);
    if (Taken) {
      // Both sides exist: try running them concurrently — the untaken side
      // counterfactually on a shadow fork, the taken side speculatively
      // here. Falls through to the sequential order when ineligible or when
      // the counterfactual had effects the fold cannot reproduce.
      IComp Out;
      if (tryParallelBranch(
              Untaken->getID(), Vd,
              [Untaken](InstrumentedInterpreter &Sh) {
                return Sh.execStmt(Untaken);
              },
              RunTaken, Out))
        return Out;
    }
    uint64_t CfSteps0 = Gov.stepsUsed();
    IComp CF =
        counterfactualBranch(Vd, [&] { return execStmt(Untaken); });
    if (CF.K == IComp::Fatal)
      return CF;
    noteBranchCfSteps(Untaken->getID(), CfSteps0);
  }
  if (!Taken)
    return IComp::normal();
  return RunTaken();
}

IComp InstrumentedInterpreter::execLoop(const Stmt *LoopNode, const Expr *Cond,
                                        const Stmt *Body, const Expr *Update,
                                        bool CondFirst) {
  std::optional<Journal::Mark> IndetMark;
  uint32_t Trips = 0;
  Det TripDet = Det::Determinate;
  IComp Result = IComp::normal();
  bool SkipCondOnce = !CondFirst;
  bool StrictTainting = false;

  auto CounterfactualContinuation = [&]() {
    // ĈNTR on the loop desugaring if(x){s; while(x){s}}: hypothetically run
    // the body once more, then the rest of the loop.
    std::vector<StringId> Vd;
    collectAssignedInStmt(Body, Vd);
    return counterfactualBranch(Vd, [&]() -> IComp {
      IComp BC = execStmt(Body);
      if (BC.K == IComp::Break)
        return IComp::normal();
      if (BC.isAbrupt() && BC.K != IComp::Continue)
        return BC;
      if (Update) {
        IRes U = evalExpr(Update);
        if (U.abrupt())
          return U.C;
      }
      return execLoop(LoopNode, Cond, Body, Update, /*CondFirst=*/true);
    });
  };

  for (;;) {
    IComp Tick;
    if (!tick(Tick)) {
      Result = Tick;
      break;
    }

    if (!SkipCondOnce) {
      Det CondDet = Det::Determinate;
      bool B = true;
      if (Cond) {
        IRes C = evalExpr(Cond);
        if (C.abrupt()) {
          Result = C.C;
          break;
        }
        B = toBoolean(C.V.V);
        CondDet = C.V.D;
        recordFactValue(FactKind::Condition, LoopNode->getID(),
                        C.V.isDet()
                            ? [&] {
                                FactValue F;
                                F.K = FactValue::Boolean;
                                F.B = B;
                                return F;
                              }()
                            : FactValue::indet());
      }
      TripDet = meet(TripDet, CondDet);
      if (!B) {
        if (CondDet == Det::Indeterminate) {
          IComp CF = CounterfactualContinuation();
          if (CF.K == IComp::Fatal) {
            Result = CF;
            break;
          }
        }
        break;
      }
      if (CondDet == Det::Indeterminate && !IndetMark) {
        IndetMark = J.mark();
        if (Opts.StrictTaint) {
          ++IndetBranchDepth;
          StrictTainting = true;
        }
      }
    }
    SkipCondOnce = false;

    bool HadBreakEscape = CfBreakMark.has_value();
    IComp BC = execStmt(Body);
    // A counterfactually explored break/continue in this body: other
    // executions may exit the loop (or skip the body suffix) here.
    if (!HadBreakEscape && CfBreakMark) {
      TripDet = Det::Indeterminate;
      if (!IndetMark || *IndetMark > *CfBreakMark)
        IndetMark = *CfBreakMark;
      CfBreakMark.reset();
    }
    if (BC.K == IComp::Break) {
      if (BC.IndetControl) {
        // Other executions may keep looping arbitrarily; re-running the body
        // here would just re-take the same break, so fall back to the
        // ĈNTRABORT treatment over the loop's syntactic write set.
        TripDet = Det::Indeterminate;
        if (!IndetMark)
          IndetMark = J.mark();
        cntrAbort(collectAssignedVars(LoopNode));
      }
      break;
    }
    if (BC.isAbrupt() && BC.K != IComp::Continue) {
      Result = BC;
      break;
    }
    if (BC.K == IComp::Continue && BC.IndetControl) {
      TripDet = Det::Indeterminate;
      if (!IndetMark)
        IndetMark = J.mark();
    }
    ++Trips;
    if (Update) {
      IRes U = evalExpr(Update);
      if (U.abrupt()) {
        Result = U.C;
        break;
      }
    }
  }

  if (StrictTainting)
    --IndetBranchDepth;
  if (Result.K != IComp::Fatal) {
    FactValue TripFact = FactValue::indet();
    if (TripDet == Det::Determinate && !Result.isAbrupt()) {
      TripFact.K = FactValue::Number;
      TripFact.Num = Trips;
    }
    recordFactValue(FactKind::TripCount, LoopNode->getID(), TripFact);
  }
  if (IndetMark)
    markIndetSince(*IndetMark);
  if (Result.isAbrupt() && Result.K != IComp::Fatal && IndetMark)
    Result.IndetControl = true;
  return Result;
}

IComp InstrumentedInterpreter::execForIn(const ForInStmt *F) {
  IRes Obj = evalExpr(F->getObject());
  if (Obj.abrupt())
    return Obj.C;
  if (!Obj.V.V.isObject()) {
    recordFactValue(FactKind::TripCount, F->getID(), [&] {
      FactValue FV;
      FV.K = FactValue::Number;
      FV.Num = 0;
      return FV;
    }());
    return IComp::normal();
  }
  ObjectRef O = Obj.V.V.Obj;
  Det SetDet = meet(Obj.V.D, recordSetDeterminacy(O));

  std::vector<StringId> Keys = TheHeap.get(O).ownKeys();
  Journal::Mark M = J.mark();
  if (SetDet == Det::Indeterminate)
    ++IndetBranchDepth;

  IComp Result = IComp::normal();
  bool IndetExit = false;
  uint32_t Index = 0;
  for (StringId Key : Keys) {
    if (!TheHeap.get(O).has(Key))
      continue; // Deleted during iteration.
    // With a determinate property set, iteration order is determinate too
    // (paper Section 5.2), so each iteration's key is a per-index fact the
    // specializer can unroll against.
    if (SetDet == Det::Determinate && Index < 0xffff) {
      FactValue KeyFact;
      KeyFact.K = FactValue::String;
      KeyFact.Str = Key;
      recordFactValue(FactKind::ForInKey, F->getID(), KeyFact,
                      static_cast<uint16_t>(Index));
    }
    ++Index;
    setVar(F->getVarAtom(), TaggedValue(Value::atom(Key), SetDet));
    IComp C = execStmt(F->getBody());
    if (C.K == IComp::Break) {
      IndetExit = C.IndetControl;
      break;
    }
    if (C.isAbrupt() && C.K != IComp::Continue) {
      Result = C;
      break;
    }
  }

  if (SetDet == Det::Indeterminate)
    --IndetBranchDepth;

  FactValue TripFact = FactValue::indet();
  if (SetDet == Det::Determinate && !Result.isAbrupt() && !IndetExit) {
    TripFact.K = FactValue::Number;
    TripFact.Num = static_cast<double>(Keys.size());
  }
  if (Result.K != IComp::Fatal)
    recordFactValue(FactKind::TripCount, F->getID(), TripFact);

  if (SetDet == Det::Indeterminate || IndetExit) {
    // Other executions may iterate different keys (possibly *more* than we
    // did, including zero-iteration runs here) and write through computed
    // names anywhere reachable: weaken everything the loop wrote, taint the
    // body's syntactic write set (covering iterations we never saw), and
    // flush for heap writes we cannot enumerate.
    markIndetSince(M);
    if (SetDet == Det::Indeterminate) {
      for (StringId Name : collectAssignedVars(F)) {
        EnvRef E = Envs.lookupEnv(CurrentEnv, Name);
        if (E)
          weakenVar(E, Name);
      }
      flushHeap();
    }
    if (Result.isAbrupt() && Result.K != IComp::Fatal)
      Result.IndetControl = true;
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Property access (L̂D / ŜTO)
//===----------------------------------------------------------------------===//

IRes InstrumentedInterpreter::readProperty(const TaggedValue &Base,
                                           StringId Name, Det NameDet,
                                           const Slot *OwnHint,
                                           const Slot **OwnOut) {
  Det DIn = meet(Base.D, NameDet);
  switch (Base.V.Kind) {
  case ValueKind::Undefined:
  case ValueKind::Null: {
    IComp C = throwString("TypeError: cannot read property '" +
                          Interner::global().str(Name) + "' of " +
                          (Base.V.isNull() ? "null" : "undefined"));
    // Whether this throw happens is control-dependent on the base value.
    C.IndetControl = Base.D == Det::Indeterminate;
    return IRes::abruptly(C);
  }
  case ValueKind::String: {
    std::string_view Chars = Base.V.strView();
    if (Name == atoms().Length)
      return IRes::value(TaggedValue(
          Value::number(static_cast<double>(Chars.size())), DIn));
    uint32_t I = Interner::global().arrayIndex(Name);
    if (I != Interner::NotAnIndex && I < Chars.size())
      return IRes::value(TaggedValue(
          Value::atom(Interner::global().internChar(Chars[I])), DIn));
    const Slot *S = TheHeap.get(StringProto).get(Name);
    if (!S)
      return IRes::value(TaggedValue(Value::undefined(), DIn));
    return IRes::value(TaggedValue(S->V, meet(DIn, slotDet(*S))));
  }
  case ValueKind::Number:
  case ValueKind::Boolean:
    return IRes::value(TaggedValue(Value::undefined(), DIn));
  case ValueKind::Object: {
    ObjectRef O = Base.V.Obj;
    Det MissDet = Det::Determinate;
    // A valid inline-cache hint skips the own-property hash probe only; all
    // determinacy logic below (slot epoch, DOM rule) is re-evaluated.
    const Slot *Hint = OwnHint;
    while (O) {
      const JSObject &Obj = TheHeap.get(O);
      const Slot *S = Hint ? Hint : Obj.get(Name);
      Hint = nullptr;
      if (S) {
        Det D = meet(DIn, meet(MissDet, slotDet(*S)));
        // Paper Section 4: any value read from a DOM data structure is
        // indeterminate (native members exempt so DOM *methods* resolve).
        if (Obj.Class == ObjectClass::Dom && !(S->V.isObject() &&
            TheHeap.get(S->V.Obj).Class == ObjectClass::Native))
          D = meet(D, domDet());
        if (OwnOut && O == Base.V.Obj)
          *OwnOut = S;
        return IRes::value(TaggedValue(S->V, D));
      }
      if (Obj.Class == ObjectClass::Dom && O == Base.V.Obj) {
        // Unwritten DOM property: synthetic environment content.
        return IRes::value(TaggedValue(
            domSyntheticValue(Opts.DomSeed, O, Name), meet(DIn, domDet())));
      }
      // An open record — or one where this specific name was written in a
      // counterfactual world — may have the property in another execution,
      // shadowing whatever the prototype chain provides.
      if (!recordClosed(Obj) || Obj.isMaybeAbsent(Name))
        MissDet = Det::Indeterminate;
      O = Obj.Proto;
    }
    return IRes::value(TaggedValue(Value::undefined(), meet(DIn, MissDet)));
  }
  }
  return IRes::value(TaggedValue(Value::undefined(), DIn));
}

IComp InstrumentedInterpreter::setPropertyTagged(const TaggedValue &Base,
                                                 StringId Name, Det NameDet,
                                                 TaggedValue V) {
  if (!Base.V.isObject()) {
    IComp C = throwString("TypeError: cannot set property '" +
                          Interner::global().str(Name) + "' on a non-object");
    C.IndetControl = Base.D == Det::Indeterminate;
    return C;
  }
  writeProp(Base.V.Obj, Name, std::move(V), Base.D, NameDet);
  return IComp::normal();
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

IRes InstrumentedInterpreter::resolveKey(const MemberExpr *M, StringId &Key,
                                         Det &KeyDet) {
  if (!M->isComputed()) {
    Key = M->getPropertyAtom();
    KeyDet = Det::Determinate;
    return IRes::value(TaggedValue());
  }
  IRes I = evalExpr(M->getIndex());
  if (I.abrupt())
    return I;
  Key = toStringAtom(I.V.V, TheHeap);
  KeyDet = I.V.D;
  // The value of a computed property name is a core client fact (access
  // staticization, paper Section 2.2 / 5.1).
  recordFact(FactKind::PropName, M->getID(),
             TaggedValue(Value::atom(Key), KeyDet));
  return IRes::value(TaggedValue());
}

IRes InstrumentedInterpreter::evalMember(const MemberExpr *E) {
  IRes Base = evalExpr(E->getObject());
  if (Base.abrupt())
    return Base;
  StringId Key;
  Det KeyDet = Det::Determinate;
  IRes KeyR = resolveKey(E, Key, KeyDet);
  if (KeyR.abrupt())
    return KeyR;
  return readProperty(Base.V, Key, KeyDet);
}

IRes InstrumentedInterpreter::evalBranchExpr(const TaggedValue &CondV,
                                             const Expr *Taken,
                                             const Expr *Untaken) {
  if (CondV.isDet()) {
    if (!Taken)
      return IRes::value(CondV);
    return evalExpr(Taken);
  }
  // Indeterminate condition: explore the untaken side counterfactually
  // against the shared pre-branch state.
  IRes TakenR;
  auto RunTaken = [&]() -> IComp {
    Journal::Mark M = J.mark();
    ++IndetBranchDepth;
    IRes R = evalExpr(Taken);
    --IndetBranchDepth;
    markIndetSince(M);
    if (R.abrupt()) {
      if (R.C.K != IComp::Fatal)
        R.C.IndetControl = true;
      TakenR = R;
      return R.C;
    }
    TakenR = IRes::value(R.V.asIndeterminate());
    return IComp::normal();
  };
  if (Untaken) {
    std::vector<StringId> Vd;
    collectAssignedInExpr(Untaken, Vd);
    if (Taken) {
      IComp Out;
      if (tryParallelBranch(
              Untaken->getID(), Vd,
              [Untaken](InstrumentedInterpreter &Sh) {
                return Sh.evalExpr(Untaken).C;
              },
              RunTaken, Out))
        return TakenR;
    }
    uint64_t CfSteps0 = Gov.stepsUsed();
    IComp CF = counterfactualBranch(Vd, [&] {
      IRes R = evalExpr(Untaken);
      return R.C;
    });
    if (CF.K == IComp::Fatal)
      return IRes::abruptly(CF);
    noteBranchCfSteps(Untaken->getID(), CfSteps0);
  }
  if (!Taken)
    return IRes::value(CondV.asIndeterminate());
  RunTaken();
  return TakenR;
}

IRes InstrumentedInterpreter::evalExpr(const Expr *E) {
  // Tiered: cold roots tree-walk (identical semantics), hot roots run their
  // compiled chunk — one-shot code never pays compilation.
  if (BC) {
    if (const bc::Chunk *Ch = BC->lookupHot(E->getID(), E))
      return vmRun(*Ch, 0, static_cast<uint32_t>(Ch->Code.size()));
  }
  IComp Tick;
  if (!tick(Tick))
    return IRes::abruptly(Tick);

  IRes Result = [&]() -> IRes {
    switch (E->getKind()) {
    case NodeKind::NumberLiteral:
      return IRes::value(
          TaggedValue(Value::number(cast<NumberLiteral>(E)->getValue())));
    case NodeKind::StringLiteral:
      return IRes::value(
          TaggedValue(Value::atom(cast<StringLiteral>(E)->getAtom())));
    case NodeKind::BooleanLiteral:
      return IRes::value(
          TaggedValue(Value::boolean(cast<BooleanLiteral>(E)->getValue())));
    case NodeKind::NullLiteral:
      return IRes::value(TaggedValue(Value::null()));
    case NodeKind::UndefinedLiteral:
      return IRes::value(TaggedValue(Value::undefined()));
    case NodeKind::This:
      return IRes::value(Frames.back().ThisV);
    case NodeKind::Identifier: {
      const auto *Id = cast<Identifier>(E);
      Binding *B = Envs.lookup(CurrentEnv, Id->getAtom());
      if (!B)
        return IRes::abruptly(throwString("ReferenceError: " + Id->getName() +
                                          " is not defined"));
      return IRes::value(TaggedValue(B->V, B->D));
    }
    case NodeKind::ArrayLiteral: {
      const auto *A = cast<ArrayLiteral>(E);
      ObjectRef Arr = TheHeap.allocate(ObjectClass::Array, A->getID());
      TheHeap.get(Arr).Proto = ArrayProto;
      TheHeap.get(Arr).ClosedEpoch = Epoch;
      size_t N = A->getElements().size();
      for (size_t I = 0; I < N; ++I) {
        IRes R = evalExpr(A->getElements()[I]);
        if (R.abrupt())
          return R;
        TheHeap.get(Arr).set(Interner::global().internIndex(I),
                             Slot{R.V.V, taintAdjust(R.V.D), Epoch});
      }
      TheHeap.get(Arr).set(atoms().Length,
                           Slot{Value::number(static_cast<double>(N)),
                                Det::Determinate, Epoch});
      return IRes::value(TaggedValue(Value::object(Arr)));
    }
    case NodeKind::ObjectLiteral: {
      const auto *OL = cast<ObjectLiteral>(E);
      ObjectRef O = TheHeap.allocate(ObjectClass::Plain, OL->getID());
      TheHeap.get(O).Proto = ObjectProto;
      TheHeap.get(O).ClosedEpoch = Epoch;
      for (const auto &P : OL->getProperties()) {
        IRes R = evalExpr(P.Value);
        if (R.abrupt())
          return R;
        TheHeap.get(O).set(P.KeyAtom,
                           Slot{R.V.V, taintAdjust(R.V.D), Epoch});
      }
      return IRes::value(TaggedValue(Value::object(O)));
    }
    case NodeKind::Function: {
      const auto *F = cast<FunctionExpr>(E);
      ObjectRef FnObj = makeFunction(F, CurrentEnv);
      if (!F->getName().empty()) {
        EnvRef Wrapper = Envs.allocate(CurrentEnv);
        Envs.get(Wrapper).Vars[F->getNameAtom()] =
            Binding{Value::object(FnObj), Det::Determinate};
        TheHeap.get(FnObj).Closure = Wrapper;
      }
      return IRes::value(TaggedValue(Value::object(FnObj)));
    }
    case NodeKind::Member:
      return evalMember(cast<MemberExpr>(E));
    case NodeKind::Call:
      return evalCall(cast<CallExpr>(E));
    case NodeKind::New:
      return evalNew(cast<NewExpr>(E));
    case NodeKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->getOp() == UnaryOp::Delete) {
        const auto *M = dyn_cast<MemberExpr>(U->getOperand());
        if (!M)
          return IRes::value(TaggedValue(Value::boolean(false)));
        IRes Base = evalExpr(M->getObject());
        if (Base.abrupt())
          return Base;
        StringId Key;
        Det KeyDet = Det::Determinate;
        IRes KeyR = resolveKey(M, Key, KeyDet);
        if (KeyR.abrupt())
          return KeyR;
        if (!Base.V.V.isObject())
          return IRes::value(
              TaggedValue(Value::boolean(true), meet(Base.V.D, KeyDet)));
        if (KeyDet == Det::Indeterminate)
          openRecord(Base.V.V.Obj); // Some property goes away; which varies.
        bool Existed = eraseProp(Base.V.V.Obj, Key);
        if (Base.V.D == Det::Indeterminate)
          flushHeap();
        return IRes::value(
            TaggedValue(Value::boolean(Existed), meet(Base.V.D, KeyDet)));
      }
      if (U->getOp() == UnaryOp::Typeof) {
        if (const auto *Id = dyn_cast<Identifier>(U->getOperand())) {
          Binding *B = Envs.lookup(CurrentEnv, Id->getAtom());
          if (!B)
            return IRes::value(TaggedValue(Value::atom(atoms().Undefined)));
          return IRes::value(
              TaggedValue(Value::string(typeofString(B->V, TheHeap)), B->D));
        }
      }
      IRes R = evalExpr(U->getOperand());
      if (R.abrupt())
        return R;
      Det D = R.V.D;
      switch (U->getOp()) {
      case UnaryOp::Not:
        return IRes::value(TaggedValue(Value::boolean(!toBoolean(R.V.V)), D));
      case UnaryOp::Minus:
        return IRes::value(TaggedValue(Value::number(-toNumber(R.V.V)), D));
      case UnaryOp::Plus:
        return IRes::value(TaggedValue(Value::number(toNumber(R.V.V)), D));
      case UnaryOp::Typeof:
        return IRes::value(
            TaggedValue(Value::string(typeofString(R.V.V, TheHeap)), D));
      case UnaryOp::Void:
        return IRes::value(TaggedValue(Value::undefined()));
      case UnaryOp::Delete:
        return IRes::value(TaggedValue(Value::boolean(true)));
      }
      return IRes::value(TaggedValue(Value::undefined(), D));
    }
    case NodeKind::Update:
      return evalUpdate(cast<UpdateExpr>(E));
    case NodeKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      IRes L = evalExpr(B->getLHS());
      if (L.abrupt())
        return L;
      IRes R = evalExpr(B->getRHS());
      if (R.abrupt())
        return R;
      Det D = meet(L.V.D, R.V.D);
      if (B->getOp() == BinaryOp::In) {
        if (!R.V.V.isObject()) {
          IComp C = throwString("TypeError: 'in' requires an object");
          C.IndetControl = R.V.D == Det::Indeterminate;
          return IRes::abruptly(C);
        }
        StringId Key = toStringAtom(L.V.V, TheHeap);
        // Walk the chain; openness on the way makes the answer uncertain.
        Det MissDet = Det::Determinate;
        for (ObjectRef O = R.V.V.Obj; O; O = TheHeap.get(O).Proto) {
          const JSObject &Obj = TheHeap.get(O);
          if (Obj.has(Key)) {
            Det HitDet = Obj.isMaybePresent(Key) ? Det::Indeterminate
                                                 : Det::Determinate;
            return IRes::value(TaggedValue(Value::boolean(true),
                                           meet(meet(D, MissDet), HitDet)));
          }
          if (!recordClosed(Obj) || Obj.isMaybeAbsent(Key))
            MissDet = Det::Indeterminate;
        }
        return IRes::value(
            TaggedValue(Value::boolean(false), meet(D, MissDet)));
      }
      if (B->getOp() == BinaryOp::Instanceof) {
        if (!R.V.V.isObject()) {
          IComp C = throwString("TypeError: 'instanceof' requires a function");
          C.IndetControl = R.V.D == Det::Indeterminate;
          return IRes::abruptly(C);
        }
        IRes Proto = readProperty(R.V, atoms().Prototype, Det::Determinate);
        if (Proto.abrupt())
          return Proto;
        Det DP = meet(D, Proto.V.D);
        if (!L.V.V.isObject() || !Proto.V.V.isObject())
          return IRes::value(TaggedValue(Value::boolean(false), DP));
        for (ObjectRef O = TheHeap.get(L.V.V.Obj).Proto; O;
             O = TheHeap.get(O).Proto)
          if (O == Proto.V.V.Obj)
            return IRes::value(TaggedValue(Value::boolean(true), DP));
        return IRes::value(TaggedValue(Value::boolean(false), DP));
      }
      return IRes::value(
          TaggedValue(applyBinaryOp(B->getOp(), L.V.V, R.V.V, TheHeap), D));
    }
    case NodeKind::Logical: {
      const auto *L = cast<LogicalExpr>(E);
      IRes LHS = evalExpr(L->getLHS());
      if (LHS.abrupt())
        return LHS;
      bool Truthy = toBoolean(LHS.V.V);
      bool EvaluatesRHS = L->isAnd() ? Truthy : !Truthy;
      return evalBranchExpr(LHS.V, EvaluatesRHS ? L->getRHS() : nullptr,
                            EvaluatesRHS ? nullptr : L->getRHS());
    }
    case NodeKind::Assign:
      return evalAssign(cast<AssignExpr>(E));
    case NodeKind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      IRes Cond = evalExpr(C->getCond());
      if (Cond.abrupt())
        return Cond;
      bool B = toBoolean(Cond.V.V);
      recordFactValue(FactKind::Condition, E->getID(),
                      Cond.V.isDet()
                          ? [&] {
                              FactValue F;
                              F.K = FactValue::Boolean;
                              F.B = B;
                              return F;
                            }()
                          : FactValue::indet());
      return evalBranchExpr(Cond.V, B ? C->getThen() : C->getElse(),
                            B ? C->getElse() : C->getThen());
    }
    default:
      return IRes::abruptly(
          IComp::fatal("statement node in expression position"));
    }
  }();

  if (Opts.RecordAllExpressions && !Result.abrupt())
    recordFact(FactKind::Expression, E->getID(), Result.V);
  return Result;
}

IRes InstrumentedInterpreter::evalAssign(const AssignExpr *E) {
  auto Compute = [&](const TaggedValue &Old, bool &Failed,
                     IComp &C) -> TaggedValue {
    IRes R = evalExpr(E->getValue());
    if (R.abrupt()) {
      Failed = true;
      C = R.C;
      return TaggedValue();
    }
    if (E->getOp() == AssignOp::Assign)
      return R.V;
    BinaryOp Op;
    switch (E->getOp()) {
    case AssignOp::Add:
      Op = BinaryOp::Add;
      break;
    case AssignOp::Sub:
      Op = BinaryOp::Sub;
      break;
    case AssignOp::Mul:
      Op = BinaryOp::Mul;
      break;
    case AssignOp::Div:
      Op = BinaryOp::Div;
      break;
    default:
      Op = BinaryOp::Mod;
      break;
    }
    return TaggedValue(applyBinaryOp(Op, Old.V, R.V.V, TheHeap),
                       meet(Old.D, R.V.D));
  };

  if (const auto *Id = dyn_cast<Identifier>(E->getTarget())) {
    Binding *B = Envs.lookup(CurrentEnv, Id->getAtom());
    if (!B && E->getOp() != AssignOp::Assign)
      return IRes::abruptly(throwString("ReferenceError: " + Id->getName() +
                                        " is not defined"));
    TaggedValue Old = B ? TaggedValue(B->V, B->D) : TaggedValue();
    bool Failed = false;
    IComp C;
    TaggedValue NewV = Compute(Old, Failed, C);
    if (Failed)
      return IRes::abruptly(C);
    recordFact(FactKind::Assign, E->getID(),
               TaggedValue(NewV.V, taintAdjust(NewV.D)));
    setVar(Id->getAtom(), NewV);
    return IRes::value(NewV);
  }

  const auto *M = cast<MemberExpr>(E->getTarget());
  IRes Base = evalExpr(M->getObject());
  if (Base.abrupt())
    return Base;
  StringId Key;
  Det KeyDet = Det::Determinate;
  IRes KeyR = resolveKey(M, Key, KeyDet);
  if (KeyR.abrupt())
    return KeyR;
  TaggedValue Old;
  if (E->getOp() != AssignOp::Assign) {
    IRes OldR = readProperty(Base.V, Key, KeyDet);
    if (OldR.abrupt())
      return OldR;
    Old = OldR.V;
  }
  bool Failed = false;
  IComp C;
  TaggedValue NewV = Compute(Old, Failed, C);
  if (Failed)
    return IRes::abruptly(C);
  recordFact(FactKind::Assign, E->getID(),
             TaggedValue(NewV.V, taintAdjust(NewV.D)));
  IComp W = setPropertyTagged(Base.V, Key, KeyDet, NewV);
  if (W.isAbrupt())
    return IRes::abruptly(W);
  return IRes::value(NewV);
}

IRes InstrumentedInterpreter::evalUpdate(const UpdateExpr *E) {
  double Delta = E->isIncrement() ? 1 : -1;
  if (const auto *Id = dyn_cast<Identifier>(E->getOperand())) {
    Binding *B = Envs.lookup(CurrentEnv, Id->getAtom());
    if (!B)
      return IRes::abruptly(throwString("ReferenceError: " + Id->getName() +
                                        " is not defined"));
    double Old = toNumber(B->V);
    Det D = B->D;
    setVar(Id->getAtom(), TaggedValue(Value::number(Old + Delta), D));
    return IRes::value(
        TaggedValue(Value::number(E->isPrefix() ? Old + Delta : Old), D));
  }
  const auto *M = dyn_cast<MemberExpr>(E->getOperand());
  if (!M)
    return IRes::abruptly(throwString("TypeError: invalid update target"));
  IRes Base = evalExpr(M->getObject());
  if (Base.abrupt())
    return Base;
  StringId Key;
  Det KeyDet = Det::Determinate;
  IRes KeyR = resolveKey(M, Key, KeyDet);
  if (KeyR.abrupt())
    return KeyR;
  IRes OldR = readProperty(Base.V, Key, KeyDet);
  if (OldR.abrupt())
    return OldR;
  double Old = toNumber(OldR.V.V);
  Det D = OldR.V.D;
  IComp W = setPropertyTagged(Base.V, Key, KeyDet,
                              TaggedValue(Value::number(Old + Delta), D));
  if (W.isAbrupt())
    return IRes::abruptly(W);
  return IRes::value(
      TaggedValue(Value::number(E->isPrefix() ? Old + Delta : Old), D));
}

//===----------------------------------------------------------------------===//
// Calls (ÎNV)
//===----------------------------------------------------------------------===//

IRes InstrumentedInterpreter::evalCall(const CallExpr *E) {
  TaggedValue ThisV;
  TaggedValue Callee;
  if (const auto *M = dyn_cast<MemberExpr>(E->getCallee())) {
    IRes Base = evalExpr(M->getObject());
    if (Base.abrupt())
      return Base;
    StringId Key;
    Det KeyDet = Det::Determinate;
    IRes KeyR = resolveKey(M, Key, KeyDet);
    if (KeyR.abrupt())
      return KeyR;
    IRes Fn = readProperty(Base.V, Key, KeyDet);
    if (Fn.abrupt())
      return Fn;
    ThisV = Base.V;
    Callee = Fn.V;
  } else {
    IRes Fn = evalExpr(E->getCallee());
    if (Fn.abrupt())
      return Fn;
    Callee = Fn.V;
  }

  std::vector<TaggedValue> Args;
  Args.reserve(E->getArgs().size());
  for (size_t I = 0; I < E->getArgs().size(); ++I) {
    IRes R = evalExpr(E->getArgs()[I]);
    if (R.abrupt())
      return R;
    Args.push_back(R.V);
  }

  // Facts about this call are keyed by the *child* context (site +
  // occurrence), so distinct loop iterations keep distinct facts (the
  // paper's 24_0 vs 24_1 contexts).
  ContextID ChildCtx = enterSite(E->getID(), E->getLine());
  recordFactAt(FactKind::Callee, E->getID(), ChildCtx, Callee);
  for (size_t I = 0; I < Args.size(); ++I)
    recordFactAt(FactKind::CallArg, E->getID(), ChildCtx, Args[I],
                 static_cast<uint16_t>(I));
  if (!inCounterfactual())
    noteExecutedCall(E->getID());

  if (Callee.V.isObject() && Callee.V.Obj == EvalFn)
    return evalEval(E->getID(), Args, ChildCtx);

  return callValueTagged(Callee, ThisV, Args, ChildCtx);
}

ContextID InstrumentedInterpreter::enterSite(NodeID Site, uint32_t Line) {
  // A call inside a shadow counterfactual makes the fork's effects too broad
  // to fold back (SiteCounts, context interning, handler registration can all
  // diverge); the parallel-branch commit check rejects the fork.
  if (IsShadowBranch)
    ShadowSawCall = true;
  uint32_t Occ = Frames.back().SiteCounts[Site]++;
  return Contexts.intern(currentCtx(), Site, Occ, Line);
}

IRes InstrumentedInterpreter::callValueTagged(
    const TaggedValue &Callee, const TaggedValue &ThisV,
    const std::vector<TaggedValue> &Args, ContextID ChildCtx) {
  if (!Callee.V.isObject()) {
    IComp C = throwString("TypeError: " + toStringValue(Callee.V, TheHeap) +
                          " is not a function");
    C.IndetControl = Callee.D == Det::Indeterminate;
    return IRes::abruptly(C);
  }
  JSObject &O = TheHeap.get(Callee.V.Obj);
  if (O.Class == ObjectClass::Native) {
    const NativeInfo &Info = nativeInfo(O.Native);
    if (inCounterfactual() && !Info.CounterfactualSafe) {
      // A native we cannot undo: abort the counterfactual execution
      // (paper Section 4).
      CfAbortRequested = true;
      return IRes::abruptly(throwString("__counterfactual_abort"));
    }
    NativeResult R = callNative(*this, O.Native, ThisV, Args);
    if (R.Threw) {
      IComp C = IComp::thrown(TaggedValue(R.Thrown));
      C.IndetControl = Callee.D == Det::Indeterminate;
      return IRes::abruptly(C);
    }
    Det D = R.Result.D;
    if (Info.DomRead)
      D = Opts.DeterminateDom ? D : Det::Indeterminate;
    D = meet(D, Callee.D);
    if (Callee.D == Det::Indeterminate)
      flushHeap();
    return IRes::value(TaggedValue(R.Result.V, D));
  }
  if (O.Class != ObjectClass::Function) {
    IComp C = throwString("TypeError: not a function");
    C.IndetControl = Callee.D == Det::Indeterminate;
    return IRes::abruptly(C);
  }
  return callClosure(Callee.V.Obj, Callee.D, ThisV, Args, ChildCtx);
}

IRes InstrumentedInterpreter::callClosure(ObjectRef FnObj, Det CalleeDet,
                                          const TaggedValue &ThisV,
                                          const std::vector<TaggedValue> &Args,
                                          ContextID ChildCtx) {
  switch (Gov.enterCall()) {
  case ResourceGovernor::CallGate::Ok:
    break;
  case ResourceGovernor::CallGate::Overflow:
    // Natural overflow stays a catchable JS exception, as before.
    return IRes::abruptly(
        throwString("RangeError: maximum call depth exceeded"));
  case ResourceGovernor::CallGate::Trip:
    return IRes::abruptly(trapCompletion());
  }

  const JSObject &O = TheHeap.get(FnObj);
  const FunctionExpr *Fn = O.Fn;
  EnvRef CallEnv = Envs.allocate(O.Closure);
  const std::vector<StringId> &Params = Fn->getParamAtoms();
  for (size_t I = 0; I < Params.size(); ++I) {
    TaggedValue V = I < Args.size() ? Args[I] : TaggedValue();
    declareVar(CallEnv, Params[I], std::move(V));
  }
  const auto *Body = cast<BlockStmt>(Fn->getBody());
  hoist(Body->getBody(), CallEnv, /*FreshEnv=*/true);

  EnvRef SavedEnv = CurrentEnv;
  CurrentEnv = CallEnv;
  Frames.push_back(Frame{ChildCtx, {}, ThisV, std::nullopt});
  IComp C = execBlockBody(Body->getBody());
  Gov.exitCall();
  // A counterfactually explored `return` escaped somewhere in this
  // activation: other executions leave early, so everything written since
  // then is weakened and the return value cannot be determinate.
  std::optional<Journal::Mark> ReturnEscape = Frames.back().ReturnEscape;
  Frames.pop_back();
  CurrentEnv = SavedEnv;
  if (ReturnEscape) {
    markIndetSince(*ReturnEscape);
    C.V.D = Det::Indeterminate;
    if (C.K == IComp::Normal)
      C.IndetControl = true;
  }

  // ÎNV: an indeterminate callee means another execution may have run
  // arbitrary other code here — flush, and the result is indeterminate.
  bool IndetCallee = CalleeDet == Det::Indeterminate;
  if (IndetCallee)
    flushHeap();

  switch (C.K) {
  case IComp::Normal:
    return IRes::value(TaggedValue(Value::undefined(),
                                   (IndetCallee || ReturnEscape)
                                       ? Det::Indeterminate
                                       : Det::Determinate));
  case IComp::Return: {
    TaggedValue V = C.V;
    if (IndetCallee || C.IndetControl || ReturnEscape)
      V.D = Det::Indeterminate;
    return IRes::value(V);
  }
  case IComp::Break:
  case IComp::Continue:
    return IRes::abruptly(
        IComp::fatal("break/continue escaped a function body"));
  case IComp::Throw: {
    if (IndetCallee) {
      C.V.D = Det::Indeterminate;
      C.IndetControl = true;
    }
    return IRes::abruptly(C);
  }
  case IComp::Fatal:
    return IRes::abruptly(C);
  }
  return IRes::value(TaggedValue());
}

IRes InstrumentedInterpreter::evalNew(const NewExpr *E) {
  IRes Fn = evalExpr(E->getCallee());
  if (Fn.abrupt())
    return Fn;
  std::vector<TaggedValue> Args;
  Args.reserve(E->getArgs().size());
  for (size_t I = 0; I < E->getArgs().size(); ++I) {
    IRes R = evalExpr(E->getArgs()[I]);
    if (R.abrupt())
      return R;
    Args.push_back(R.V);
  }
  ContextID ChildCtx = enterSite(E->getID(), E->getLine());
  recordFactAt(FactKind::Callee, E->getID(), ChildCtx, Fn.V);
  for (size_t I = 0; I < Args.size(); ++I)
    recordFactAt(FactKind::CallArg, E->getID(), ChildCtx, Args[I],
                 static_cast<uint16_t>(I));
  if (!inCounterfactual())
    noteExecutedCall(E->getID());

  if (!Fn.V.V.isObject())
    return IRes::abruptly(throwString("TypeError: not a constructor"));
  JSObject &FnObj = TheHeap.get(Fn.V.V.Obj);
  if (FnObj.Class == ObjectClass::Native) {
    NativeResult R = callNative(*this, FnObj.Native, TaggedValue(), Args);
    if (R.Threw)
      return IRes::abruptly(IComp::thrown(TaggedValue(R.Thrown)));
    return IRes::value(TaggedValue(R.Result.V, meet(R.Result.D, Fn.V.D)));
  }
  if (FnObj.Class != ObjectClass::Function)
    return IRes::abruptly(throwString("TypeError: not a constructor"));

  ObjectRef Fresh = TheHeap.allocate(ObjectClass::Plain, E->getID());
  TheHeap.get(Fresh).ClosedEpoch = Epoch;
  IRes ProtoR = readProperty(Fn.V, atoms().Prototype, Det::Determinate);
  if (ProtoR.abrupt())
    return ProtoR;
  TheHeap.get(Fresh).Proto =
      ProtoR.V.V.isObject() ? ProtoR.V.V.Obj : ObjectProto;

  IRes R = callClosure(Fn.V.V.Obj, Fn.V.D, TaggedValue(Value::object(Fresh)),
                       Args, ChildCtx);
  if (R.abrupt())
    return R;
  if (R.V.V.isObject())
    return R;
  return IRes::value(TaggedValue(Value::object(Fresh),
                                 meet(Fn.V.D, Det::Determinate)));
}

IRes InstrumentedInterpreter::evalEval(NodeID Site,
                                       const std::vector<TaggedValue> &Args,
                                       ContextID ChildCtx) {
  TaggedValue Arg = Args.empty() ? TaggedValue() : Args[0];
  recordFactAt(FactKind::EvalArg, Site, ChildCtx, Arg);
  if (SpecActive)
    SpecSawEval = true;
  if (!Arg.V.isString())
    return IRes::value(Arg);

  if (!Gov.enterEval())
    return IRes::abruptly(trapCompletion());
  struct EvalScope {
    ResourceGovernor &G;
    ~EvalScope() { G.exitEval(); }
  } Scope{Gov};

  DiagnosticEngine Diags;
  ASTContext &EvalCtx = Opts.EvalContext ? *Opts.EvalContext : *Prog.Context;
  std::vector<Stmt *> Body =
      parseIntoContext(Interner::global().str(Arg.V.Str), EvalCtx, Diags);
  if (Diags.hasErrors()) {
    IComp C = throwString("SyntaxError: " + Diags.diagnostics()[0].Message);
    C.IndetControl = Arg.D == Det::Indeterminate;
    return IRes::abruptly(C);
  }
  hoist(Body, CurrentEnv, /*FreshEnv=*/false);

  TaggedValue Saved = LastStmtValue;
  LastStmtValue = TaggedValue();
  Journal::Mark M = J.mark();
  bool Indet = Arg.D == Det::Indeterminate;
  if (Indet)
    ++IndetBranchDepth;
  IComp C = execBlockBody(Body);
  if (Indet) {
    --IndetBranchDepth;
    // Other executions evaluate different code: weaken everything this code
    // wrote and flush (the paper's implementation flushes the heap when the
    // eval'd code is not determinate).
    markIndetSince(M);
    flushHeap();
  }
  TaggedValue Result = LastStmtValue;
  LastStmtValue = Saved;
  if (C.K == IComp::Return)
    return IRes::abruptly(throwString("SyntaxError: illegal return"));
  if (C.isAbrupt()) {
    if (Indet && C.K != IComp::Fatal)
      C.IndetControl = true;
    return IRes::abruptly(C);
  }
  if (Indet)
    Result.D = Det::Indeterminate;
  return IRes::value(Result);
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

void InstrumentedInterpreter::degradeAfterTrap(const IComp &C) {
  Trap = C.Trap;
  Degradation.Trap = C.Trap;
  Degradation.Trip = Gov.trip();
  // Exactly the ĈNTRABORT recipe, applied to the whole remaining run: the
  // unexecuted suffix of the program may write anything, so open every
  // record (epoch bump) and weaken every non-immune binding. Everything
  // recorded in the FactDB *before* the trip described fully-executed
  // occurrences and stays sound; the final-state projection becomes
  // conservative (all indeterminate).
  flushHeap();
  Degradation.addEvent(C.Trap, "heap-flush", "epoch bumped, records opened");
  taintAllEnvironments();
  Degradation.addEvent(C.Trap, "env-taint",
                       "all non-immune bindings weakened");
  Degradation.addEvent(C.Trap, "abandon-run",
                       toStringValue(C.V.V, TheHeap));
  Degradation.StepsUsed = Gov.stepsUsed();
  Degradation.HeapCellsUsed = Gov.heapCellsUsed();
  Stats.StepsUsed = Gov.stepsUsed();
}

bool InstrumentedInterpreter::run() {
  Gov.startClock();
  CurrentEnv = GlobalEnv;
  Frames.back().ThisV = TaggedValue(Value::object(WindowObj));
  hoist(Prog.Body, GlobalEnv, /*FreshEnv=*/false);
  IComp C = incrementalActive() ? execProgramBody() : execBlockBody(Prog.Body);
  Stats.StepsUsed = Gov.stepsUsed();
  if (C.K == IComp::Throw) {
    Error = "uncaught exception: " + toStringValue(C.V.V, TheHeap);
    return false;
  }
  if (C.K == IComp::Fatal) {
    if (isResourceTrap(C.Trap)) {
      // Degrade, don't die: keep the partial-but-sound facts.
      degradeAfterTrap(C);
      return true;
    }
    Error = toStringValue(C.V.V, TheHeap);
    Trap = C.Trap;
    return false;
  }

  if (Opts.RunEventHandlers) {
    // Matches the concrete interpreter: only ready/load handlers fire.
    std::vector<std::pair<StringId, Value>> Firable;
    for (auto &H : EventHandlers)
      if (H.first == atoms().Ready || H.first == atoms().Load)
        Firable.push_back(H);
    EventHandlers = std::move(Firable);
    size_t Fired = 0;
    uint32_t HandlerIndex = 0;
    while (Fired < EventHandlers.size()) {
      size_t Remaining = EventHandlers.size() - Fired;
      size_t Pick = Fired + DomRng.nextBelow(Remaining);
      std::swap(EventHandlers[Fired], EventHandlers[Pick]);
      Value Handler = EventHandlers[Fired].second;
      StringId EventName = EventHandlers[Fired].first;
      ++Fired;

      // "Since DOM events can fire in any order, we perform a heap flush
      // immediately upon entering an event handler" (Section 4).
      flushHeap();
      // Event handlers run under a synthetic context frame (site 0 with the
      // firing index as occurrence) so facts inside them stay qualified.
      std::vector<TaggedValue> HandlerArgs = {
          TaggedValue(Value::atom(EventName), Det::Indeterminate)};
      ContextID HandlerCtx =
          Contexts.intern(ContextTable::Root, /*Site=*/0, HandlerIndex, 0);
      IRes R = callValueTagged(TaggedValue(Handler),
                               TaggedValue(Value::object(DocumentObj)),
                               HandlerArgs, HandlerCtx);
      ++HandlerIndex;
      if (R.C.K == IComp::Throw) {
        Error = "uncaught exception in event handler: " +
                toStringValue(R.C.V.V, TheHeap);
        Stats.StepsUsed = Gov.stepsUsed();
        return false;
      }
      if (R.C.K == IComp::Fatal) {
        if (isResourceTrap(R.C.Trap)) {
          degradeAfterTrap(R.C);
          return true;
        }
        Error = toStringValue(R.C.V.V, TheHeap);
        Trap = R.C.Trap;
        Stats.StepsUsed = Gov.stepsUsed();
        return false;
      }
    }
  }
  Stats.StepsUsed = Gov.stepsUsed();
  Degradation.StepsUsed = Gov.stepsUsed();
  Degradation.HeapCellsUsed = Gov.heapCellsUsed();
  return true;
}


static bool isBuiltinGlobalName(const std::string &Name) {
  static const char *Builtins[] = {
      "Math",   "console", "alert",    "print",  "parseInt", "parseFloat",
      "isNaN",  "String",  "Number",   "Boolean", "eval",    "Object",
      "Array",  "window",  "document", "undefined"};
  for (const char *B : Builtins)
    if (Name == B)
      return true;
  return false;
}

TaggedValue InstrumentedInterpreter::globalVariable(const std::string &Name) {
  Binding *B = Envs.lookup(GlobalEnv, intern(Name));
  return B ? TaggedValue(B->V, B->D) : TaggedValue();
}

std::vector<std::string> InstrumentedInterpreter::userGlobalNames() {
  std::vector<std::string> Names;
  for (const auto &[Name, B] : Envs.get(GlobalEnv).Vars) {
    std::string Text(atomText(Name));
    if (!isBuiltinGlobalName(Text))
      Names.push_back(std::move(Text));
  }
  std::sort(Names.begin(), Names.end());
  return Names;
}

TaggedValue
InstrumentedInterpreter::taggedProperty(const TaggedValue &Base,
                                        const std::string &Name) {
  IRes R = readProperty(Base, intern(Name), Det::Determinate);
  return R.abrupt() ? TaggedValue() : R.V;
}

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

namespace {

AnalysisResult assembleResult(InstrumentedInterpreter &I, bool Ok) {
  AnalysisResult R;
  R.Ok = Ok;
  R.Error = I.errorMessage();
  R.Output = I.outputText();
  R.Trap = I.trapKind();
  R.Degradation = I.degradation();
  R.Facts = std::move(I.facts());
  R.Contexts = std::move(I.contexts());
  R.Stats = I.finalStats();
  R.ExecutedCalls = I.executedCalls();
  R.ExecutedStmts = I.executedStmts();
  return R;
}

} // namespace

AnalysisResult dda::runDeterminacyAnalysis(Program &P,
                                           const AnalysisOptions &Opts) {
  InstrumentedInterpreter I(P, Opts);
  bool Ok = I.run();
  return assembleResult(I, Ok);
}

AnalysisResult dda::runDeterminacyAnalysisMultiSeed(
    Program &P, const AnalysisOptions &Opts,
    const std::vector<uint64_t> &Seeds) {
  // One code path for every thread count: the serial case is the parallel
  // engine's inline Jobs == 1 mode (see ParallelAnalysis.cpp).
  return runDeterminacyAnalysisParallel(P, Opts, Seeds, 1);
}
