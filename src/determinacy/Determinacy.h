//===- Determinacy.h - Dynamic determinacy analysis (public API) -*- C++ -*-==//
///
/// \file
/// Entry point for the dynamic determinacy analysis of Schäfer, Sridharan,
/// Dolby & Tip, "Dynamic Determinacy Analysis" (PLDI 2013). One call to
/// runDeterminacyAnalysis executes the program once under the instrumented
/// semantics (paper Figure 9) and returns a database of determinacy facts
/// that hold for *every* execution (Theorem 1), along with the calling
/// context table and analysis statistics.
///
/// \code
///   Program P = parseProgram(Source, Diags);
///   AnalysisResult R = runDeterminacyAnalysis(P, AnalysisOptions());
///   const FactValue *F = R.Facts.condition(IfNodeID, Ctx);
///   if (F && F->isBooleanFalse())
///     ...branch is dead under Ctx in all executions...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DDA_DETERMINACY_DETERMINACY_H
#define DDA_DETERMINACY_DETERMINACY_H

#include "ast/ASTContext.h"
#include "bytecode/Bytecode.h"
#include "determinacy/Context.h"
#include "determinacy/Facts.h"
#include "support/BitSet.h"
#include "support/ResourceGovernor.h"

#include <string>
#include <string_view>

namespace dda {

class FactStore;
class FaultInjector;
class ThreadPool;

/// Whether (and how) the interpreter reuses persisted region summaries.
enum class IncrementalMode : uint8_t {
  Off, ///< Execute everything; neither read nor write the store.
  On,  ///< Replay matching regions from the store, capture the rest.
  /// Belt-and-braces validation: on a store hit, execute the region anyway
  /// and assert the captured effect is byte-identical to the stored one.
  /// A mismatch (a hash collision, a corrupted-but-checksum-valid record,
  /// or a nondeterminism bug) is an internal error — exit code 4.
  Strict,
};

/// How the instrumented interpreter undoes the writes of a counterfactual
/// branch (paper rule ĈNTR).
enum class UndoEngine : uint8_t {
  /// Copy-on-write arena snapshots: O(1) fork, first write of each touched
  /// object/environment copies its pre-image, undo restores the copies.
  /// Undo cost is O(locations touched), independent of write count. The
  /// write journal still runs (it is the vd/pd marking log) but skips
  /// capturing pre-images.
  Snapshot,
  /// Reference engine: the journal captures pre-images and undo is a
  /// reverse replay, O(writes in branch). Kept selectable (`--undo
  /// journal`) as the differential oracle for the snapshot path.
  Journal,
};

/// Configuration of an instrumented run.
struct AnalysisOptions {
  uint64_t RandomSeed = 1; ///< Concrete seed for Math.random.
  uint64_t DomSeed = 1;    ///< Concrete seed for synthetic DOM content.
  /// Expression execution engine; the bytecode VM is the default hot path,
  /// the tree-walk is the reference semantics (`--engine=tree`).
  ExecEngine Engine = defaultExecEngine();
  uint64_t MaxSteps = 50'000'000;
  uint64_t DeadlineMs = 0;   ///< Wall-clock budget for the run; 0 = none.
  uint64_t MaxHeapCells = 0; ///< Heap-cell budget; 0 = unlimited.
  unsigned MaxCallDepth = 600;
  unsigned MaxEvalDepth = 64; ///< Nested eval budget; 0 = unlimited.

  /// Total counterfactual-execution fuel for the whole run; exhaustion
  /// degrades each further indeterminate-false branch via ĈNTRABORT.
  /// 0 = unlimited.
  uint64_t CounterfactualFuel = 0;

  /// Optional deterministic fault injector (not owned; may be null). Used
  /// by tests and `ddajs --inject-fault` to trip any budget at a chosen
  /// checkpoint. The parallel engine clones it per task, so each worker's
  /// checkpoint counters — and its trip — are its own.
  FaultInjector *Injector = nullptr;

  /// Arena receiving AST nodes parsed at runtime by `eval` (not owned; may
  /// be null). When null they splice into the program's own context — the
  /// single-run default. The parallel engine points each worker at a
  /// private overlay context based at the program's nextID, so concurrent
  /// seeds never mutate the shared AST and eval'd code gets deterministic
  /// NodeIDs regardless of thread count.
  ASTContext *EvalContext = nullptr;

  /// Paper's `k`: maximum nesting depth of counterfactual executions; deeper
  /// nests short-circuit via the ĈNTRABORT rule.
  unsigned CounterfactualDepth = 4;

  /// The paper stops the dynamic analysis after 1000 heap flushes "since at
  /// this point it is unlikely to detect new determinacy facts".
  unsigned FlushLimit = 1000;

  /// Section 5.1's (unsound) determinate-DOM assumption: DOM properties and
  /// DOM native results are treated as determinate.
  bool DeterminateDom = false;

  bool RunEventHandlers = true;

  /// Ablation: disable counterfactual execution entirely; indeterminate-false
  /// branches fall back to ĈNTRABORT (flush + static taint).
  bool CounterfactualEnabled = true;

  /// Ablation: classic dynamic-information-flow marking — values written
  /// under an indeterminate conditional are tainted *immediately* rather
  /// than after the branch completes (Section 6, Information Flow Analysis).
  bool StrictTaint = false;

  /// Record an Expression fact for every expression evaluation (heavier;
  /// used by tests and the quickstart example).
  bool RecordAllExpressions = false;

  /// Branch-undo machinery; Snapshot is the default hot path, Journal the
  /// reference oracle. Facts, coverage, and every fingerprinted statistic
  /// are byte-identical between the two.
  UndoEngine Undo = UndoEngine::Snapshot;

  /// Run the taken and counterfactual sides of eligible indeterminate
  /// branches concurrently (requires BranchPool and the Snapshot undo
  /// engine). The fold is deterministic: merged facts are byte-identical
  /// to the sequential execution at any thread count.
  bool ParallelBranches = false;

  /// Worker pool for intra-run branch parallelism (not owned; may be
  /// null, which disables ParallelBranches). Kept separate from the
  /// seed-level pool so branch tasks can never deadlock behind whole-run
  /// tasks occupying every worker.
  ThreadPool *BranchPool = nullptr;

  /// Incremental re-analysis (`--incremental`): replay top-level regions
  /// whose (statement key, reaching-state fingerprint, option fingerprint)
  /// match a summary in Store, and capture fresh summaries for the rest.
  /// Requires Store; ignored (fully off) when Store is null or a fault
  /// injector is attached (replay would shift the injector's deterministic
  /// checkpoint ordinals).
  IncrementalMode Incremental = IncrementalMode::Off;

  /// Persistent region-summary store (not owned; may be null). Shared by
  /// every seed task and serve request — FactStore is internally
  /// thread-safe.
  FactStore *Store = nullptr;

  GovernorLimits governorLimits() const {
    GovernorLimits L;
    L.MaxSteps = MaxSteps;
    L.DeadlineMs = DeadlineMs;
    L.MaxHeapCells = MaxHeapCells;
    L.MaxCallDepth = MaxCallDepth;
    L.CfFuel = CounterfactualFuel;
    L.MaxEvalDepth = MaxEvalDepth;
    return L;
  }
};

/// Counters describing what the instrumented run did.
struct AnalysisStats {
  uint64_t HeapFlushes = 0;
  uint64_t Counterfactuals = 0;       ///< ĈNTR activations.
  uint64_t CounterfactualAborts = 0;  ///< ĈNTRABORT activations.
  uint64_t JournalEntries = 0;
  uint64_t StepsUsed = 0;
  // Snapshot-engine observability. These describe *how* undo was done, not
  // *what* the analysis concluded, so they are excluded from the
  // fact-fingerprint parity contract (they legitimately differ between
  // undo engines and with/without branch parallelism).
  uint64_t SnapshotForks = 0;         ///< COW snapshot frames opened.
  uint64_t CowCopies = 0;             ///< Object/environment pre-images saved.
  uint64_t ParallelBranchTasks = 0;   ///< Counterfactuals dispatched to the pool.
  uint64_t ParallelBranchCommits = 0; ///< Dispatched branches folded without rerun.
  // Incremental-replay observability. Same contract as the snapshot
  // counters: mechanism, not conclusions — excluded from fact fingerprints
  // (a warm run replays instead of executing, but produces byte-identical
  // facts, output, and governor totals).
  uint64_t IncrementalRegions = 0; ///< Top-level regions considered.
  uint64_t IncrementalReplays = 0; ///< Regions warm-started from the store.
  uint64_t ReplayedFacts = 0;      ///< Facts re-recorded from summaries.
  uint64_t SummariesStored = 0;    ///< Fresh summaries captured this run.
  bool FlushLimitHit = false;
};

/// Everything an instrumented run produces.
///
/// A run that trips a resource budget still returns `Ok = true` with
/// *partial-but-sound* facts: the analysis degrades through the ĈNTRABORT
/// machinery (abort in-flight counterfactuals, flush the heap, taint the
/// variable domain) instead of failing, and `Degradation` records what
/// happened. `Ok = false` is reserved for conditions that invalidate the
/// run entirely: parse/internal errors or an uncaught program exception.
struct AnalysisResult {
  bool Ok = false;
  std::string Error;
  std::string Output; ///< Console output of the (real) execution.

  /// TrapKind::None for a clean in-budget run; a resource trap kind when
  /// the run was cut short but soundly degraded; InternalError when Ok is
  /// false because of an interpreter bug.
  TrapKind Trap = TrapKind::None;
  /// Structured account of budget trips and the weakenings they caused.
  DegradationReport Degradation;

  FactDB Facts;
  ContextTable Contexts;
  AnalysisStats Stats;

  /// Call expressions that actually executed (non-counterfactually) — used
  /// by the eval-elimination client to classify "not covered" sites.
  /// Dense bitset; iteration is in ascending NodeID order.
  NodeBitSet ExecutedCalls;
  /// Statements that actually executed (non-counterfactually).
  NodeBitSet ExecutedStmts;
};

/// Fingerprint of every analysis option that can change what a run
/// concludes — the one definition of "same options" shared by the serve
/// result cache, the batch driver, and FactStore summary keys. RandomSeed
/// is deliberately excluded (callers fold the seed per run or per seed
/// list); IncrementalMode and the Store pointer are excluded because
/// replay-vs-execute must not change results. InjectorSpec is the textual
/// form of the fault injector ("" = none).
uint64_t optionVectorFingerprint(const AnalysisOptions &Opts,
                                 std::string_view InjectorSpec = {});

/// Runs the program once under the instrumented semantics.
AnalysisResult runDeterminacyAnalysis(Program &P,
                                      const AnalysisOptions &Opts = {});

/// Runs the analysis under several Math.random seeds and merges the fact
/// databases ("running the determinacy analysis on different inputs yields
/// more facts, which are all sound and hence can be used together").
AnalysisResult runDeterminacyAnalysisMultiSeed(
    Program &P, const AnalysisOptions &Opts,
    const std::vector<uint64_t> &Seeds);

} // namespace dda

#endif // DDA_DETERMINACY_DETERMINACY_H
