//===- Facts.h - Determinacy facts and the fact database ---------*- C++ -*-==//
///
/// \file
/// A determinacy fact is the paper's `⟦e⟧ c = v`: at program point `e` under
/// calling context `c`, the value is `v` in every execution (or `?` if
/// indeterminate). The instrumented interpreter records facts at the points
/// client analyses consume:
///
///   * Condition  — branch/loop conditions (branch pruning, Figure 1),
///   * Callee     — call targets (call-graph specialization, eval detection),
///   * PropName   — computed property names (access staticization, Figure 3),
///   * EvalArg    — eval argument strings (eval elimination, Figure 4),
///   * CallArg    — argument values at call sites (function specialization),
///   * Assign     — values written by assignments,
///   * TripCount  — loop iteration counts (bounded unrolling),
///   * Expression — every expression (optional; used by tests and tools).
///
/// Re-visiting the same (point, context) merges by value equality: a second
/// visit with a different value demotes the fact to indeterminate.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_DETERMINACY_FACTS_H
#define DDA_DETERMINACY_FACTS_H

#include "determinacy/Context.h"
#include "interp/Builtins.h"
#include "interp/Heap.h"
#include "interp/Value.h"
#include "support/FlatMap.h"

#include <optional>
#include <string>
#include <vector>

namespace dda {

/// What kind of program point a fact describes.
enum class FactKind : uint8_t {
  Condition,
  Callee,
  PropName,
  EvalArg,
  CallArg,
  Assign,
  TripCount,
  /// Key bound by iteration #Index of a for-in loop over a determinate
  /// property set (iteration order is determinate, Section 5.2).
  ForInKey,
  Expression,
};

const char *factKindName(FactKind Kind);

/// The value side of a fact. Objects are identified by allocation site and
/// functions by their AST node, which is what makes facts comparable across
/// executions (the paper's µ address mapping).
struct FactValue {
  enum Kind : uint8_t {
    Indeterminate,
    Undefined,
    Null,
    Boolean,
    Number,
    String,
    Function, ///< User closure, identified by FunctionExpr NodeID.
    Native,   ///< Built-in, identified by NativeFn.
    Object,   ///< Plain/array/DOM object, identified by allocation site.
  } K = Indeterminate;

  bool B = false;
  double Num = 0;
  StringId Str; ///< Interned atom (K == String).
  NodeID Node = 0;
  NativeFn NativeID = NativeFn::None;

  static FactValue indet() { return FactValue(); }
  static FactValue fromTagged(const TaggedValue &TV, const Heap &H);

  bool isDeterminate() const { return K != Indeterminate; }
  bool isString() const { return K == String; }
  bool isBooleanTrue() const { return K == Boolean && B; }
  bool isBooleanFalse() const { return K == Boolean && !B; }
  bool isFunction() const { return K == Function; }
  bool isNative(NativeFn Fn) const { return K == Native && NativeID == Fn; }

  bool sameAs(const FactValue &Other) const;

  /// Renders like the paper: `23`, `"width"`, `true`, `?`, `function@12`.
  std::string str() const;
};

/// Key of a fact: program point + context + kind (+ argument index).
struct FactKey {
  NodeID Node = 0;
  ContextID Ctx = 0;
  FactKind Kind = FactKind::Expression;
  uint16_t Index = 0; ///< Argument position for CallArg.

  bool operator==(const FactKey &O) const {
    return Node == O.Node && Ctx == O.Ctx && Kind == O.Kind && Index == O.Index;
  }
};

/// Hashes the packed key through a splitmix64 finalizer. The packed word
/// alone is NOT a usable hash: `std::hash<uint64_t>` is the identity on
/// libstdc++, and a power-of-two table masks to the low bits — which for the
/// old `A * 1000003 + B` scheme were dominated by Kind/Index, clustering
/// every (node, ctx) pair for a hot fact kind into a handful of buckets.
/// See the FactKeyHashDistribution regression test.
struct FactKeyHash {
  size_t operator()(const FactKey &K) const {
    uint64_t A = (static_cast<uint64_t>(K.Node) << 32) | K.Ctx;
    uint64_t B = (static_cast<uint64_t>(K.Index) << 8) |
                 static_cast<uint64_t>(K.Kind);
    return static_cast<size_t>(splitmix64(A * 0x9E3779B97F4A7C15ull ^ B));
  }
};

/// The database of merged facts from one (or more) instrumented runs.
class FactDB {
public:
  /// Open-addressing table: fact recording is the single hottest map
  /// operation on the per-step path (every condition, callee, and argument
  /// observation probes it). Iteration order is arbitrary; `dump()` sorts,
  /// and all iterating clients (merge, uniform, counts, the specializer's
  /// scans) are order-insensitive — see the FactDBDeterminism test.
  using Map = FlatMap<FactKey, FactValue, FactKeyHash>;

  /// Records an observation; merges with any prior fact at the same key.
  void record(const FactKey &Key, const FactValue &Value);

  /// The merged fact, or nullptr if the point was never observed.
  const FactValue *query(const FactKey &Key) const;

  // Convenience queries.
  const FactValue *condition(NodeID Stmt, ContextID Ctx) const {
    return query({Stmt, Ctx, FactKind::Condition, 0});
  }
  const FactValue *callee(NodeID Call, ContextID Ctx) const {
    return query({Call, Ctx, FactKind::Callee, 0});
  }
  const FactValue *propName(NodeID Member, ContextID Ctx) const {
    return query({Member, Ctx, FactKind::PropName, 0});
  }
  const FactValue *evalArg(NodeID Call, ContextID Ctx) const {
    return query({Call, Ctx, FactKind::EvalArg, 0});
  }
  const FactValue *callArg(NodeID Call, ContextID Ctx, uint16_t I) const {
    return query({Call, Ctx, FactKind::CallArg, I});
  }
  const FactValue *tripCount(NodeID Loop, ContextID Ctx) const {
    return query({Loop, Ctx, FactKind::TripCount, 0});
  }
  const FactValue *forInKey(NodeID Loop, ContextID Ctx, uint16_t I) const {
    return query({Loop, Ctx, FactKind::ForInKey, I});
  }
  const FactValue *expression(NodeID E, ContextID Ctx) const {
    return query({E, Ctx, FactKind::Expression, 0});
  }

  /// The *context-free* (shallow) merge of every observation at
  /// (Kind, Node): a determinate value only if all observed contexts agree
  /// and none is indeterminate, else null. This is the paper's future-work
  /// direction of "inferring determinacy facts with shallower calling
  /// contexts": sound because it is the meet over all full-context facts.
  const FactValue *uniform(FactKind Kind, NodeID Node) const;

  /// Merges another database into this one (running the analysis on more
  /// inputs "yields more facts, which are all sound and hence can be used
  /// together" — paper Section 7). Points observed in both merge by value;
  /// points observed in only one database are kept as-is.
  void merge(const FactDB &Other);

  size_t size() const { return Facts.size(); }
  size_t countDeterminate() const;
  size_t countOfKind(FactKind Kind) const;

  /// All facts, for iteration/dumping.
  const Map &all() const { return Facts; }

  /// Human-readable dump: one `⟦node@line⟧ ctx = value` per line.
  std::string dump(const ContextTable &Contexts) const;

private:
  Map Facts;
};

} // namespace dda

#endif // DDA_DETERMINACY_FACTS_H
