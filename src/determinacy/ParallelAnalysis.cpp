//===- ParallelAnalysis.cpp -----------------------------------------------==//

#include "determinacy/ParallelAnalysis.h"

#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include <utility>

using namespace dda;

namespace {

/// Re-interns a context chain from one table into another (used when merging
/// fact databases from separate runs).
ContextID remapContext(const ContextTable &From, ContextID ID,
                       ContextTable &To) {
  if (ID == ContextTable::Root)
    return ContextTable::Root;
  const ContextEntry &E = From.entry(ID);
  ContextID Parent = remapContext(From, E.Parent, To);
  return To.intern(Parent, E.Site, E.Occurrence, E.Line);
}

} // namespace

void dda::mergeAnalysisResults(AnalysisResult &Merged, AnalysisResult &&R) {
  // Remap the new run's contexts into the merged table, then merge facts
  // point-wise (all facts are sound, so the union -- with value-equality
  // merging -- is sound too).
  for (const auto &[Key, Value] : R.Facts.all()) {
    FactKey Remapped = Key;
    Remapped.Ctx = remapContext(R.Contexts, Key.Ctx, Merged.Contexts);
    Merged.Facts.record(Remapped, Value);
  }
  Merged.ExecutedCalls.insertAll(R.ExecutedCalls);
  Merged.ExecutedStmts.insertAll(R.ExecutedStmts);
  Merged.Stats.HeapFlushes += R.Stats.HeapFlushes;
  Merged.Stats.Counterfactuals += R.Stats.Counterfactuals;
  Merged.Stats.CounterfactualAborts += R.Stats.CounterfactualAborts;
  Merged.Stats.JournalEntries += R.Stats.JournalEntries;
  Merged.Stats.StepsUsed += R.Stats.StepsUsed;
  Merged.Stats.SnapshotForks += R.Stats.SnapshotForks;
  Merged.Stats.CowCopies += R.Stats.CowCopies;
  Merged.Stats.ParallelBranchTasks += R.Stats.ParallelBranchTasks;
  Merged.Stats.ParallelBranchCommits += R.Stats.ParallelBranchCommits;
  Merged.Stats.IncrementalRegions += R.Stats.IncrementalRegions;
  Merged.Stats.IncrementalReplays += R.Stats.IncrementalReplays;
  Merged.Stats.ReplayedFacts += R.Stats.ReplayedFacts;
  Merged.Stats.SummariesStored += R.Stats.SummariesStored;
  Merged.Stats.FlushLimitHit |= R.Stats.FlushLimitHit;
  // Degradation merges pessimistically: remember the first trap, fold in
  // every run's weakening events.
  if (Merged.Trap == TrapKind::None && R.Trap != TrapKind::None) {
    Merged.Trap = R.Trap;
    Merged.Degradation.Trap = R.Degradation.Trap;
    Merged.Degradation.Trip = R.Degradation.Trip;
  }
  for (const DegradationEvent &E : R.Degradation.Events)
    Merged.Degradation.addEvent(E.Cause, E.Action, E.Detail);
  Merged.Degradation.EventsTotal +=
      R.Degradation.EventsTotal - R.Degradation.Events.size();
  Merged.Degradation.StepsUsed += R.Degradation.StepsUsed;
  Merged.Degradation.HeapCellsUsed += R.Degradation.HeapCellsUsed;
  Merged.Ok = Merged.Ok && R.Ok;
}

namespace {

/// One worker task: a single seeded run with per-task state. \p EvalBase is
/// the shared program's nextID captured once before the fan-out, so every
/// task bases its eval overlay at the same NodeID.
AnalysisResult runTask(Program &P, const AnalysisOptions &Opts, uint64_t Seed,
                       NodeID EvalBase) {
  AnalysisOptions O = Opts;
  O.RandomSeed = Seed;
  // Nodes parsed by runtime eval land in this task-private overlay instead
  // of the shared program arena. Nothing in AnalysisResult points into it
  // (facts and coverage carry NodeIDs, not pointers), so it can die with
  // the task.
  ASTContext EvalCtx(EvalBase);
  O.EvalContext = &EvalCtx;
  // Each task trips its own injected fault: private checkpoint counters,
  // same spec.
  FaultInjector TaskInjector;
  if (Opts.Injector) {
    TaskInjector = *Opts.Injector;
    TaskInjector.reset();
    O.Injector = &TaskInjector;
  }
  return runDeterminacyAnalysis(P, O);
}

AnalysisResult mergeInSeedOrder(std::vector<AnalysisResult> &Results) {
  AnalysisResult Merged = std::move(Results.front());
  for (size_t I = 1; I < Results.size(); ++I)
    mergeAnalysisResults(Merged, std::move(Results[I]));
  return Merged;
}

} // namespace

AnalysisResult dda::runDeterminacyAnalysisTask(Program &P,
                                               const AnalysisOptions &Opts,
                                               uint64_t Seed) {
  return runTask(P, Opts, Seed, P.Context->nextID());
}

AnalysisResult
dda::runDeterminacyAnalysisParallel(Program &P, const AnalysisOptions &Opts,
                                    const std::vector<uint64_t> &Seeds,
                                    unsigned Jobs) {
  if (Seeds.empty())
    return AnalysisResult();
  NodeID EvalBase = P.Context->nextID();
  std::vector<AnalysisResult> Results(Seeds.size());
  ThreadPool::parallelFor(Jobs, Seeds.size(), [&](size_t I) {
    Results[I] = runTask(P, Opts, Seeds[I], EvalBase);
  });
  // The barrier above makes every per-seed result visible; folding them in
  // seed order makes the merge independent of completion order.
  return mergeInSeedOrder(Results);
}

AnalysisResult
dda::runDeterminacyAnalysisOnPool(Program &P, const AnalysisOptions &Opts,
                                  const std::vector<uint64_t> &Seeds,
                                  ThreadPool &Pool) {
  if (Seeds.empty())
    return AnalysisResult();
  NodeID EvalBase = P.Context->nextID();
  std::vector<AnalysisResult> Results(Seeds.size());
  if (Seeds.size() == 1 || Pool.workers() <= 1) {
    // Inline fast path: one seed (the common service request) or a serial
    // pool — same code path as the Jobs == 1 engine.
    for (size_t I = 0; I < Seeds.size(); ++I)
      Results[I] = runTask(P, Opts, Seeds[I], EvalBase);
    return mergeInSeedOrder(Results);
  }
  TaskGroup Group(Pool);
  for (size_t I = 0; I < Seeds.size(); ++I) {
    bool Accepted = Group.submit(
        [&, I] { Results[I] = runTask(P, Opts, Seeds[I], EvalBase); });
    // A stopping pool rejects new tasks; run the seed inline so a request
    // already past admission still completes during graceful drain.
    if (!Accepted)
      Results[I] = runTask(P, Opts, Seeds[I], EvalBase);
  }
  Group.wait();
  return mergeInSeedOrder(Results);
}

std::vector<AnalysisResult>
dda::runDeterminacyAnalysisBatch(std::vector<Program> &Programs,
                                 const AnalysisOptions &Opts,
                                 const std::vector<uint64_t> &Seeds,
                                 unsigned Jobs) {
  std::vector<uint64_t> SeedList =
      Seeds.empty() ? std::vector<uint64_t>{Opts.RandomSeed} : Seeds;
  const size_t NumPrograms = Programs.size();
  const size_t NumSeeds = SeedList.size();
  std::vector<NodeID> EvalBases(NumPrograms);
  for (size_t P = 0; P < NumPrograms; ++P)
    EvalBases[P] = Programs[P].Context->nextID();
  // Flatten to (program, seed) tasks so one pool load-balances across both
  // axes: a slow program's seeds overlap with everyone else's work.
  std::vector<AnalysisResult> Slots(NumPrograms * NumSeeds);
  ThreadPool::parallelFor(Jobs, Slots.size(), [&](size_t T) {
    size_t P = T / NumSeeds, S = T % NumSeeds;
    Slots[T] = runTask(Programs[P], Opts, SeedList[S], EvalBases[P]);
  });
  std::vector<AnalysisResult> Out;
  Out.reserve(NumPrograms);
  for (size_t P = 0; P < NumPrograms; ++P) {
    std::vector<AnalysisResult> PerSeed(
        std::make_move_iterator(Slots.begin() + P * NumSeeds),
        std::make_move_iterator(Slots.begin() + (P + 1) * NumSeeds));
    Out.push_back(mergeInSeedOrder(PerSeed));
  }
  return Out;
}
