//===- Context.h - Interned calling contexts ---------------------*- C++ -*-==//
///
/// \file
/// Calling contexts for determinacy facts. The paper qualifies every fact
/// with "a complete call stack reaching all the way back to the program's
/// entrypoint" (Section 2.1), and distinguishes repeated executions of the
/// same call site with an occurrence index ("24₀ denotes the first time
/// execution reaches line 24", Section 2.2).
///
/// A context is an interned chain of (call-site NodeID, occurrence) pairs.
/// Occurrences count dynamic executions of a site *within one activation of
/// its enclosing function*, so two loop iterations around a call get distinct
/// contexts while plain recursion composes through the chain.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_DETERMINACY_CONTEXT_H
#define DDA_DETERMINACY_CONTEXT_H

#include "ast/AST.h"
#include "support/FlatMap.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dda {

/// An interned calling context; 0 is the root (program entry).
using ContextID = uint32_t;

/// One frame of a context chain.
struct ContextEntry {
  ContextID Parent = 0;
  NodeID Site = 0;         ///< Call expression node.
  uint32_t Occurrence = 0; ///< Nth execution of Site in the parent activation.
  uint32_t Line = 0;       ///< Source line of the site, for rendering.
};

/// Hash-consed table of contexts.
class ContextTable {
public:
  static constexpr ContextID Root = 0;

  /// Interns (Parent, Site, Occurrence); Line is informational.
  ContextID intern(ContextID Parent, NodeID Site, uint32_t Occurrence,
                   uint32_t Line);

  const ContextEntry &entry(ContextID ID) const;

  /// Chain length (root = 0).
  unsigned depth(ContextID ID) const;

  /// Renders like the paper: "16→4" , with occurrence subscripts when
  /// non-zero: "24_1→15". The root renders as "·".
  std::string str(ContextID ID) const;

  /// All interned contexts whose parent is \p Parent and site is \p Site,
  /// ordered by occurrence. Used by the specializer to discover how often a
  /// call site executed under a given context.
  std::vector<ContextID> childrenAt(ContextID Parent, NodeID Site) const;

  /// All interned contexts with parent \p Parent.
  std::vector<ContextID> children(ContextID Parent) const;

  size_t size() const { return Entries.size(); }

private:
  /// POD key for the hash-consing table (a std::tuple is not guaranteed
  /// trivially copyable, which the flat table requires).
  struct Key {
    ContextID Parent;
    NodeID Site;
    uint32_t Occurrence;
    bool operator==(const Key &O) const {
      return Parent == O.Parent && Site == O.Site && Occurrence == O.Occurrence;
    }
  };
  struct KeyHash {
    uint64_t operator()(const Key &K) const {
      uint64_t A = (static_cast<uint64_t>(K.Parent) << 32) | K.Site;
      return splitmix64(A * 0x9E3779B97F4A7C15ull ^ K.Occurrence);
    }
  };

  std::vector<ContextEntry> Entries; ///< Index 0 unused (root).
  /// Context interning runs once per call-site execution — flat probing keeps
  /// it off the allocator. ContextIDs come from Entries' append order, so
  /// table layout cannot affect interned ids.
  FlatMap<Key, ContextID, KeyHash> Interned;

public:
  ContextTable() { Entries.emplace_back(); }
};

} // namespace dda

#endif // DDA_DETERMINACY_CONTEXT_H
