//===- ParallelAnalysis.h - Thread-pool seed/program fan-out -----*- C++ -*-==//
///
/// \file
/// The parallel analysis engine. Every seeded run of the determinacy
/// analysis is completely independent (paper Section 7: running the
/// analysis on more inputs yields strictly more sound facts), so the engine
/// fans seeds — and, in batch mode, whole programs — across a fixed worker
/// pool and reduces the per-run results through the existing merge lattice
/// in a fixed seed order. The merged result is therefore **identical for
/// every thread count**, including Jobs == 1, which runs inline with no
/// pool at all.
///
/// Per-worker ownership (see DESIGN.md "Threading model"):
///  * the program AST is shared immutable; nodes parsed at runtime by
///    `eval` go into a per-task overlay ASTContext based at the program's
///    nextID, so every seed sees the same NodeIDs for its eval'd code;
///  * each task owns its Heap/Environment arenas, RNG tapes, journal,
///    governor (budgets are per task: a runaway seed degrades alone), and
///    — when fault injection is configured — a private clone of the
///    FaultInjector with its own checkpoint counters;
///  * the process-global Interner is safe for concurrent interning.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_DETERMINACY_PARALLELANALYSIS_H
#define DDA_DETERMINACY_PARALLELANALYSIS_H

#include "determinacy/Determinacy.h"

#include <vector>

namespace dda {

/// Folds \p From into \p Into: remaps contexts into the merged table,
/// merges facts point-wise by value equality (all facts are sound, so the
/// union is sound too), accumulates coverage and statistics, and merges
/// degradation pessimistically (first trap wins, all weakening events are
/// kept). Deterministic given the call order; the engine always folds in
/// seed order.
void mergeAnalysisResults(AnalysisResult &Into, AnalysisResult &&From);

/// Runs one seeded analysis exactly as a parallel worker would: private
/// eval-overlay context based at \p P's current nextID and a private clone
/// of any configured fault injector. Exposed so tests can compare a single
/// task against the merged fan-out.
AnalysisResult runDeterminacyAnalysisTask(Program &P,
                                          const AnalysisOptions &Opts,
                                          uint64_t Seed);

/// Fans \p Seeds across \p Jobs workers (0 = one per hardware thread;
/// <= 1 = inline on the calling thread) and merges the per-seed results in
/// seed order. `runDeterminacyAnalysisMultiSeed` is this with Jobs == 1.
AnalysisResult runDeterminacyAnalysisParallel(Program &P,
                                              const AnalysisOptions &Opts,
                                              const std::vector<uint64_t> &Seeds,
                                              unsigned Jobs);

class ThreadPool;

/// Request-scoped fan-out over a *shared* pool: fans \p Seeds across
/// \p Pool's workers as one TaskGroup and merges in seed order, so a
/// long-lived service can run many concurrent analyses on one fixed worker
/// fleet without per-request pool construction. The merged result is
/// byte-identical to runDeterminacyAnalysisParallel on the same seeds. A
/// single seed — or a stopped/1-worker pool — runs inline on the calling
/// thread.
AnalysisResult runDeterminacyAnalysisOnPool(Program &P,
                                            const AnalysisOptions &Opts,
                                            const std::vector<uint64_t> &Seeds,
                                            ThreadPool &Pool);

/// Batch mode: analyzes every program under every seed, with all
/// (program, seed) tasks sharing one pool so stragglers in one program
/// overlap with work on the others. Result[i] is the seed-merged result for
/// Programs[i], identical to running runDeterminacyAnalysisParallel on it
/// alone. An empty \p Seeds list means {Opts.RandomSeed}.
std::vector<AnalysisResult>
runDeterminacyAnalysisBatch(std::vector<Program> &Programs,
                            const AnalysisOptions &Opts,
                            const std::vector<uint64_t> &Seeds, unsigned Jobs);

} // namespace dda

#endif // DDA_DETERMINACY_PARALLELANALYSIS_H
