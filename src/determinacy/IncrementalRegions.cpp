//===- IncrementalRegions.cpp - Region-level capture and replay ----------===//
///
/// \file
/// The incremental re-analysis core (`--incremental`, DESIGN.md "Incremental
/// re-analysis"). A *region* is one top-level statement of the program. At
/// each region boundary the interpreter is in a canonical state (base frame,
/// global scope, no branch machinery in flight), so a region's effect on the
/// analysis is a pure function of (the reaching state, the statement, the
/// option vector). Instead of hashing the reaching state — O(heap) per
/// region — we certify it with a *chained fingerprint*: FP_0 covers the
/// option vector and the hoisted declarations, and FP_{i+1} extends FP_i
/// with region i's statement key and effect-delta hash. A deterministic
/// interpreter makes the fingerprint a sound (modulo 64-bit collisions;
/// `--incremental strict` checks) certificate of the entire reaching state.
///
/// A region summary stores the region's *net effect* as an explicit byte
/// delta: post-images of every pre-existing object/environment it touched
/// (the journal suffix is the complete touched set — every mutation of
/// pre-existing state goes through a journaled mutator), new arena tail
/// entries wholesale, appended contexts/facts/coverage/output/handlers,
/// RNG tapes, the epoch, governor spend, and fingerprinted statistics.
/// Replaying a summary re-applies that delta without executing — the warm
/// path — and is byte-identical to execution in everything the analysis
/// publishes. All strings are spelled out as text (never interner ids), so
/// summaries are valid across processes.
///
//===----------------------------------------------------------------------===//

#include "ast/ASTWalk.h"
#include "ast/StructuralHash.h"
#include "determinacy/InstrumentedInterpreter.h"
#include "incremental/FactStore.h"
#include "incremental/SubtreeSummary.h"

#include <algorithm>

using namespace dda;

//===----------------------------------------------------------------------===//
// Option-vector fingerprint
//===----------------------------------------------------------------------===//

uint64_t dda::optionVectorFingerprint(const AnalysisOptions &Opts,
                                      std::string_view InjectorSpec) {
  ByteWriter W;
  W.u32(1); // fingerprint schema version
  W.u64(Opts.DomSeed);
  W.u8(static_cast<uint8_t>(Opts.Engine));
  W.u64(Opts.MaxSteps);
  W.u64(Opts.DeadlineMs);
  W.u64(Opts.MaxHeapCells);
  W.u32(Opts.MaxCallDepth);
  W.u32(Opts.MaxEvalDepth);
  W.u64(Opts.CounterfactualFuel);
  W.u32(Opts.CounterfactualDepth);
  W.u32(Opts.FlushLimit);
  W.u8(Opts.DeterminateDom);
  W.u8(Opts.RunEventHandlers);
  W.u8(Opts.CounterfactualEnabled);
  W.u8(Opts.StrictTaint);
  W.u8(Opts.RecordAllExpressions);
  W.u8(static_cast<uint8_t>(Opts.Undo));
  W.u8(Opts.ParallelBranches);
  W.str(InjectorSpec);
  return summaryChecksum(W.bytes());
}

//===----------------------------------------------------------------------===//
// Pre-region capture state
//===----------------------------------------------------------------------===//

namespace dda {
/// Everything buildRegionDelta diffs the post-region interpreter against.
struct RegionCaptureState {
  Journal::Mark Mark = 0;
  size_t HeapSize = 0, EnvSize = 0, CtxSize = 0;
  size_t OutputLen = 0, HandlersLen = 0;
  size_t DegEvents = 0;
  uint64_t DegTotal = 0;
  ResourceGovernor::Checkpoint Gov;
  uint64_t Flushes = 0, Cntr = 0, Aborts = 0, JEntries = 0;
  NodeID EvalNextID = 0;
};
} // namespace dda

//===----------------------------------------------------------------------===//
// Byte schema helpers
//===----------------------------------------------------------------------===//

namespace {

std::string_view atomStr(StringId Id) { return Interner::global().view(Id); }

bool textLess(StringId A, StringId B) { return atomStr(A) < atomStr(B); }

void writeAtom(ByteWriter &W, StringId Id) { W.str(atomStr(Id)); }

StringId readAtom(ByteReader &R) { return Interner::global().intern(R.str()); }

void writeValue(ByteWriter &W, const Value &V) {
  W.u8(static_cast<uint8_t>(V.Kind));
  switch (V.Kind) {
  case ValueKind::Boolean:
    W.u8(V.Bool);
    break;
  case ValueKind::Number:
    W.f64(V.Num);
    break;
  case ValueKind::String:
    writeAtom(W, V.Str);
    break;
  case ValueKind::Object:
    W.u32(V.Obj);
    break;
  default:
    break;
  }
}

Value readValue(ByteReader &R) {
  switch (static_cast<ValueKind>(R.u8())) {
  case ValueKind::Null:
    return Value::null();
  case ValueKind::Boolean:
    return Value::boolean(R.u8() != 0);
  case ValueKind::Number:
    return Value::number(R.f64());
  case ValueKind::String:
    return Value::atom(readAtom(R));
  case ValueKind::Object:
    return Value::object(R.u32());
  default:
    return Value::undefined();
  }
}

void writeTagged(ByteWriter &W, const TaggedValue &TV) {
  writeValue(W, TV.V);
  W.u8(static_cast<uint8_t>(TV.D));
}

TaggedValue readTagged(ByteReader &R) {
  Value V = readValue(R);
  return TaggedValue(V, static_cast<Det>(R.u8()));
}

void writeSlot(ByteWriter &W, const Slot &S) {
  writeValue(W, S.V);
  W.u8(static_cast<uint8_t>(S.D));
  W.u32(S.Epoch);
  W.u8(S.Immune);
}

Slot readSlot(ByteReader &R) {
  Slot S;
  S.V = readValue(R);
  S.D = static_cast<Det>(R.u8());
  S.Epoch = R.u32();
  S.Immune = R.u8() != 0;
  return S;
}

void writeFactValue(ByteWriter &W, const FactValue &V) {
  W.u8(static_cast<uint8_t>(V.K));
  W.u8(V.B);
  W.f64(V.Num);
  W.str(V.K == FactValue::String ? atomStr(V.Str) : std::string_view());
  W.u32(V.Node);
  W.u16(static_cast<uint16_t>(V.NativeID));
}

FactValue readFactValue(ByteReader &R) {
  FactValue V;
  V.K = static_cast<FactValue::Kind>(R.u8());
  V.B = R.u8() != 0;
  V.Num = R.f64();
  std::string Text = R.str();
  if (V.K == FactValue::String)
    V.Str = Interner::global().intern(Text);
  V.Node = R.u32();
  V.NativeID = static_cast<NativeFn>(R.u16());
  return V;
}

/// Serialized image of one heap object. Atom sets are written sorted by
/// *text* (interner ids are process-local) so capture bytes are
/// deterministic across processes; Props ride in insertion (enumeration)
/// order, which execution determines deterministically.
bool writeObject(ByteWriter &W, const JSObject &O,
                 const FlatMap<NodeID, const FunctionExpr *> &Fns) {
  W.u8(static_cast<uint8_t>(O.Class));
  W.u32(O.Proto);
  if (O.Fn) {
    auto It = Fns.find(O.Fn->getID());
    if (It == Fns.end() || It->second != O.Fn)
      return false; // Not a program function (eval overlay): not portable.
    W.u8(1);
    W.u32(O.Fn->getID());
  } else {
    W.u8(0);
    W.u32(0);
  }
  W.u32(O.Closure);
  W.u16(static_cast<uint16_t>(O.Native));
  W.u32(O.AllocSite);
  W.u32(O.ClosedEpoch);
  W.u8(O.ExplicitlyOpen);
  for (const auto *Set : {&O.MaybeAbsent, &O.MaybePresent}) {
    std::vector<StringId> ByText(Set->begin(), Set->end());
    std::sort(ByText.begin(), ByText.end(), textLess);
    W.u32(static_cast<uint32_t>(ByText.size()));
    for (StringId Id : ByText)
      writeAtom(W, Id);
  }
  const std::vector<StringId> &Keys = O.orderedKeys();
  W.u32(static_cast<uint32_t>(Keys.size()));
  for (StringId K : Keys) {
    writeAtom(W, K);
    writeSlot(W, *O.get(K));
  }
  return true;
}

struct ObjImage {
  ObjectRef Ref = 0; // 0 for fresh objects (ref implicit from arena order).
  uint8_t Class = 0;
  ObjectRef Proto = 0;
  bool HasFn = false;
  NodeID FnNode = 0;
  EnvRef Closure = 0;
  uint16_t Native = 0;
  NodeID AllocSite = 0;
  uint32_t ClosedEpoch = 0;
  bool Open = false;
  std::vector<StringId> MaybeAbsent, MaybePresent;
  std::vector<std::pair<StringId, Slot>> Props;
};

bool readObject(ByteReader &R, ObjImage &Im) {
  Im.Class = R.u8();
  Im.Proto = R.u32();
  Im.HasFn = R.u8() != 0;
  Im.FnNode = R.u32();
  Im.Closure = R.u32();
  Im.Native = R.u16();
  Im.AllocSite = R.u32();
  Im.ClosedEpoch = R.u32();
  Im.Open = R.u8() != 0;
  for (std::vector<StringId> *Set : {&Im.MaybeAbsent, &Im.MaybePresent}) {
    uint32_t N = R.u32();
    if (N > R.remaining())
      return false;
    Set->reserve(N);
    for (uint32_t I = 0; I < N && R.ok(); ++I)
      Set->push_back(readAtom(R));
    std::sort(Set->begin(), Set->end()); // Re-sorted under *local* ids.
  }
  uint32_t NProps = R.u32();
  if (NProps > R.remaining())
    return false;
  Im.Props.reserve(NProps);
  for (uint32_t I = 0; I < NProps && R.ok(); ++I) {
    StringId K = readAtom(R);
    Im.Props.emplace_back(K, readSlot(R));
  }
  return R.ok();
}

void buildObject(const ObjImage &Im,
                 const FlatMap<NodeID, const FunctionExpr *> &Fns,
                 JSObject &O) {
  O.Class = static_cast<ObjectClass>(Im.Class);
  O.Proto = Im.Proto;
  O.Fn = Im.HasFn ? Fns.at(Im.FnNode) : nullptr;
  O.Closure = Im.Closure;
  O.Native = static_cast<NativeFn>(Im.Native);
  O.AllocSite = Im.AllocSite;
  O.ClosedEpoch = Im.ClosedEpoch;
  O.ExplicitlyOpen = Im.Open;
  O.MaybeAbsent = Im.MaybeAbsent;
  O.MaybePresent = Im.MaybePresent;
  for (const auto &[K, S] : Im.Props)
    O.set(K, S);
}

void writeEnv(ByteWriter &W, const Environment &E) {
  W.u32(E.Parent);
  std::vector<std::pair<StringId, Binding>> Vars(E.Vars.begin(), E.Vars.end());
  std::sort(Vars.begin(), Vars.end(),
            [](const auto &A, const auto &B) {
              return textLess(A.first, B.first);
            });
  W.u32(static_cast<uint32_t>(Vars.size()));
  for (const auto &[Name, B] : Vars) {
    writeAtom(W, Name);
    writeValue(W, B.V);
    W.u8(static_cast<uint8_t>(B.D));
    W.u8(B.Immune);
  }
}

struct EnvImage {
  EnvRef Ref = 0; // 0 for fresh environments.
  EnvRef Parent = 0;
  std::vector<std::pair<StringId, Binding>> Vars;
};

bool readEnv(ByteReader &R, EnvImage &Im) {
  Im.Parent = R.u32();
  uint32_t N = R.u32();
  if (N > R.remaining())
    return false;
  Im.Vars.reserve(N);
  for (uint32_t I = 0; I < N && R.ok(); ++I) {
    StringId Name = readAtom(R);
    Binding B;
    B.V = readValue(R);
    B.D = static_cast<Det>(R.u8());
    B.Immune = R.u8() != 0;
    Im.Vars.emplace_back(Name, B);
  }
  return R.ok();
}

/// The fully decoded delta, validated before anything mutates.
struct DecodedDelta {
  std::vector<ObjImage> Touched, Fresh;
  std::vector<EnvImage> TouchedEnvs, FreshEnvs;
  std::vector<ContextEntry> Ctxs;
  std::vector<std::pair<FactKey, FactValue>> Facts;
  std::vector<NodeID> Stmts, Calls;
  std::string Out;
  std::vector<std::pair<StringId, Value>> Handlers;
  std::vector<std::pair<StringId, ObjectRef>> DomAdds;
  std::vector<std::pair<NodeID, uint32_t>> SiteCounts;
  uint64_t RandomState = 0, DomState = 0;
  uint32_t Epoch = 0;
  TaggedValue LastStmt;
  uint64_t DSteps = 0, DHeap = 0, DFuel = 0, DCalls = 0;
  uint64_t DFlushes = 0, DCntr = 0, DAborts = 0, DJournal = 0;
  bool FlushLimitHit = false;
  std::vector<DegradationEvent> DegEvents;
  uint64_t DegTotalDelta = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// Eligibility
//===----------------------------------------------------------------------===//

bool InstrumentedInterpreter::incrementalActive() const {
  // A fault injector counts checkpoints by ordinal; replaying a region
  // skips its checkpoints and would shift every later ordinal, so the
  // incremental layer stands down entirely when one is attached.
  return Opts.Incremental != IncrementalMode::Off && Opts.Store &&
         !Opts.Injector && !IsShadowBranch;
}

bool InstrumentedInterpreter::regionBoundaryClean() const {
  if (CfDepth != 0 || SpecActive || IndetBranchDepth != 0 || CfAbortRequested)
    return false;
  if (CfThrowMark || CfBreakMark)
    return false;
  if (Frames.size() != 1 || Frames.back().ReturnEscape)
    return false;
  if (CurrentEnv != GlobalEnv)
    return false;
  // A latched-but-unobserved heap trip is pending state a delta cannot
  // carry; treat it like a trip.
  ResourceGovernor::Checkpoint Cp = Gov.checkpoint();
  if (Cp.Tripped || Cp.HeapTripLatched)
    return false;
  size_t WantDepth = SnapMode ? 1 : 0; // Base COW frame only.
  return TheHeap.snapshotDepth() == WantDepth &&
         Envs.snapshotDepth() == WantDepth;
}

//===----------------------------------------------------------------------===//
// Fingerprints and keys
//===----------------------------------------------------------------------===//

static void hoistFpStmt(const Stmt *S, uint64_t &H) {
  // Mirrors InstrumentedInterpreter::hoistStmt exactly: the names declared
  // (in recursion order) plus the full content+position identity of hoisted
  // functions. Covering positions here is what lets a region legitimately
  // reference *later* statements' NodeIDs through hoisted calls.
  auto MixText = [&H](StringId Id) {
    std::string_view T = atomStr(Id);
    H = mixHash(H, hashBytesFnv(T.data(), T.size(), 0x9e3779b97f4a7c15ull));
  };
  switch (S->getKind()) {
  case NodeKind::VarDeclStmt:
    for (const auto &D : cast<VarDeclStmt>(S)->getDeclarators())
      MixText(D.Atom);
    return;
  case NodeKind::FunctionDeclStmt: {
    const FunctionExpr *Fn = cast<FunctionDeclStmt>(S)->getFunction();
    MixText(Fn->getNameAtom());
    H = mixHash(H, subtreeHash(Fn));
    H = mixHash(H, subtreePositionHash(Fn));
    return;
  }
  case NodeKind::BlockStmt:
    for (const Stmt *Inner : cast<BlockStmt>(S)->getBody())
      hoistFpStmt(Inner, H);
    return;
  case NodeKind::IfStmt:
    hoistFpStmt(cast<IfStmt>(S)->getThen(), H);
    if (const Stmt *Else = cast<IfStmt>(S)->getElse())
      hoistFpStmt(Else, H);
    return;
  case NodeKind::WhileStmt:
    hoistFpStmt(cast<WhileStmt>(S)->getBody(), H);
    return;
  case NodeKind::DoWhileStmt:
    hoistFpStmt(cast<DoWhileStmt>(S)->getBody(), H);
    return;
  case NodeKind::ForStmt:
    if (const Stmt *Init = cast<ForStmt>(S)->getInit())
      hoistFpStmt(Init, H);
    hoistFpStmt(cast<ForStmt>(S)->getBody(), H);
    return;
  case NodeKind::ForInStmt: {
    const auto *F = cast<ForInStmt>(S);
    if (F->declaresVar())
      MixText(F->getVarAtom());
    hoistFpStmt(F->getBody(), H);
    return;
  }
  case NodeKind::TryStmt: {
    const auto *T = cast<TryStmt>(S);
    hoistFpStmt(T->getBlock(), H);
    if (T->getCatchBlock())
      hoistFpStmt(T->getCatchBlock(), H);
    if (T->getFinallyBlock())
      hoistFpStmt(T->getFinallyBlock(), H);
    return;
  }
  case NodeKind::SwitchStmt:
    for (const auto &Clause : cast<SwitchStmt>(S)->getClauses())
      for (const Stmt *Inner : Clause.Body)
        hoistFpStmt(Inner, H);
    return;
  default:
    return;
  }
}

uint64_t InstrumentedInterpreter::hoistFingerprint() const {
  uint64_t H = 0x6a09e667f3bcc909ull;
  for (const Stmt *S : Prog.Body)
    hoistFpStmt(S, H);
  return H;
}

uint64_t InstrumentedInterpreter::stmtKeyFor(const Stmt *S) const {
  // Content hash x position hash: facts and contexts embed NodeIDs and
  // lines, so identical code at shifted positions must key differently.
  return mixHash(mixHash(subtreeHash(S), subtreePositionHash(S)), S->getID());
}

//===----------------------------------------------------------------------===//
// Capture
//===----------------------------------------------------------------------===//

bool InstrumentedInterpreter::buildRegionDelta(const RegionCaptureState &RC,
                                               std::string &Delta) {
  if (IncUnserializable)
    return false;
  ResourceGovernor::Checkpoint Now = Gov.checkpoint();
  // An eval re-parsed code into the overlay arena: later facts may reference
  // overlay NodeIDs whose assignment depends on this process's history.
  if (Now.EvalsEntered != RC.Gov.EvalsEntered)
    return false;
  const ASTContext *EvalCtx =
      Opts.EvalContext ? Opts.EvalContext : Prog.Context.get();
  if (EvalCtx->nextID() != RC.EvalNextID)
    return false;

  // The journal suffix is the complete set of touched pre-existing
  // locations: every mutation of pre-existing state routes through a
  // journaled mutator (natives included, via the NativeHost interface), and
  // counterfactualBranch re-journals surviving weakenings after undo.
  std::vector<ObjectRef> TObjs;
  std::vector<EnvRef> TEnvs;
  for (size_t I = RC.Mark; I < J.size(); ++I) {
    const JournalEntry &E = J[I];
    if (E.K == JournalEntry::VarWrite) {
      if (E.Env != 0 && E.Env <= RC.EnvSize)
        TEnvs.push_back(E.Env);
    } else {
      if (E.Obj != 0 && E.Obj <= RC.HeapSize)
        TObjs.push_back(E.Obj);
    }
  }
  std::sort(TObjs.begin(), TObjs.end());
  TObjs.erase(std::unique(TObjs.begin(), TObjs.end()), TObjs.end());
  std::sort(TEnvs.begin(), TEnvs.end());
  TEnvs.erase(std::unique(TEnvs.begin(), TEnvs.end()), TEnvs.end());

  ByteWriter W;
  W.u64(RC.HeapSize);
  W.u64(RC.EnvSize);
  W.u64(RC.CtxSize);

  W.u32(static_cast<uint32_t>(TObjs.size()));
  for (ObjectRef R : TObjs) {
    W.u32(R);
    if (!writeObject(W, TheHeap.get(R), IncFnIndex))
      return IncUnserializable = true, false;
  }
  W.u32(static_cast<uint32_t>(TheHeap.size() - RC.HeapSize));
  for (size_t I = RC.HeapSize + 1; I <= TheHeap.size(); ++I)
    if (!writeObject(W, TheHeap.get(static_cast<ObjectRef>(I)), IncFnIndex))
      return IncUnserializable = true, false;

  W.u32(static_cast<uint32_t>(TEnvs.size()));
  for (EnvRef R : TEnvs) {
    W.u32(R);
    writeEnv(W, Envs.get(R));
  }
  W.u32(static_cast<uint32_t>(Envs.size() - RC.EnvSize));
  for (size_t I = RC.EnvSize + 1; I <= Envs.size(); ++I)
    writeEnv(W, Envs.get(static_cast<EnvRef>(I)));

  W.u32(static_cast<uint32_t>(Contexts.size() - RC.CtxSize));
  for (size_t I = RC.CtxSize; I < Contexts.size(); ++I) {
    const ContextEntry &E = Contexts.entry(static_cast<ContextID>(I));
    W.u32(E.Parent);
    W.u32(E.Site);
    W.u32(E.Occurrence);
    W.u32(E.Line);
  }

  // Facts, sorted by (key, value) — shadow-branch folds make the raw
  // mirror order nondeterministic, but FactDB::record's merge is
  // order-independent, so any canonical order is sound.
  std::sort(IncFacts.begin(), IncFacts.end(),
            [](const std::pair<FactKey, FactValue> &A,
               const std::pair<FactKey, FactValue> &B) {
              const FactKey &KA = A.first, &KB = B.first;
              if (KA.Node != KB.Node)
                return KA.Node < KB.Node;
              if (KA.Ctx != KB.Ctx)
                return KA.Ctx < KB.Ctx;
              if (KA.Kind != KB.Kind)
                return KA.Kind < KB.Kind;
              if (KA.Index != KB.Index)
                return KA.Index < KB.Index;
              ByteWriter VA, VB;
              writeFactValue(VA, A.second);
              writeFactValue(VB, B.second);
              return VA.bytes() < VB.bytes();
            });
  W.u32(static_cast<uint32_t>(IncFacts.size()));
  for (const auto &[K, V] : IncFacts) {
    W.u32(K.Node);
    W.u32(K.Ctx);
    W.u8(static_cast<uint8_t>(K.Kind));
    W.u16(K.Index);
    writeFactValue(W, V);
  }

  for (std::vector<NodeID> *Cov : {&IncStmts, &IncCalls}) {
    std::sort(Cov->begin(), Cov->end());
    Cov->erase(std::unique(Cov->begin(), Cov->end()), Cov->end());
    W.u32(static_cast<uint32_t>(Cov->size()));
    for (NodeID N : *Cov)
      W.u32(N);
  }

  W.str(std::string_view(Output).substr(RC.OutputLen));

  W.u32(static_cast<uint32_t>(EventHandlers.size() - RC.HandlersLen));
  for (size_t I = RC.HandlersLen; I < EventHandlers.size(); ++I) {
    writeAtom(W, EventHandlers[I].first);
    writeValue(W, EventHandlers[I].second);
  }

  std::vector<std::pair<StringId, ObjectRef>> DomAdds;
  {
    std::vector<StringId> Pre = IncPreDomKeys;
    std::sort(Pre.begin(), Pre.end());
    for (const auto &[K, V] : DomElements)
      if (!std::binary_search(Pre.begin(), Pre.end(), K))
        DomAdds.emplace_back(K, V);
    std::sort(DomAdds.begin(), DomAdds.end(),
              [](const auto &A, const auto &B) {
                return textLess(A.first, B.first);
              });
  }
  W.u32(static_cast<uint32_t>(DomAdds.size()));
  for (const auto &[K, V] : DomAdds) {
    writeAtom(W, K);
    W.u32(V);
  }

  std::vector<std::pair<NodeID, uint32_t>> SCDiff;
  for (const auto &[N, C] : Frames.back().SiteCounts) {
    auto It = IncPreSiteCounts.find(N);
    if (It == IncPreSiteCounts.end() || It->second != C)
      SCDiff.emplace_back(N, C);
  }
  std::sort(SCDiff.begin(), SCDiff.end());
  W.u32(static_cast<uint32_t>(SCDiff.size()));
  for (const auto &[N, C] : SCDiff) {
    W.u32(N);
    W.u32(C);
  }

  W.u64(RandomRng.getState());
  W.u64(DomRng.getState());
  W.u32(Epoch);
  writeTagged(W, LastStmtValue);

  W.u64(Now.Steps - RC.Gov.Steps);
  W.u64(Now.HeapCells - RC.Gov.HeapCells);
  W.u64(Now.CfFuelUsed - RC.Gov.CfFuelUsed);
  W.u64(Now.CallsEntered - RC.Gov.CallsEntered);

  W.u64(Stats.HeapFlushes - RC.Flushes);
  W.u64(Stats.Counterfactuals - RC.Cntr);
  W.u64(Stats.CounterfactualAborts - RC.Aborts);
  W.u64(Stats.JournalEntries - RC.JEntries);
  W.u8(Stats.FlushLimitHit);

  // Degradation events feed DegradationReport::str(), which the
  // fact-fingerprint parity contract covers — replay must reproduce them.
  W.u32(static_cast<uint32_t>(Degradation.Events.size() - RC.DegEvents));
  for (size_t I = RC.DegEvents; I < Degradation.Events.size(); ++I) {
    const DegradationEvent &E = Degradation.Events[I];
    W.u8(static_cast<uint8_t>(E.Cause));
    W.str(E.Action);
    W.str(E.Detail);
  }
  W.u64(Degradation.EventsTotal - RC.DegTotal);

  Delta = W.take();
  return true;
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

bool InstrumentedInterpreter::applyRegionDelta(const std::string &Delta) {
  ByteReader R(Delta);

  // Validation header: the live pre-state must be the one the capture
  // diffed against. A mismatch (hash collision, foreign store) is detected
  // here, before anything mutates.
  uint64_t PreHeap = R.u64(), PreEnv = R.u64(), PreCtx = R.u64();
  if (!R.ok() || PreHeap != TheHeap.size() || PreEnv != Envs.size() ||
      PreCtx != Contexts.size())
    return false;

  DecodedDelta D;
  uint32_t NTouched = R.u32();
  if (NTouched > R.remaining())
    return false;
  D.Touched.resize(NTouched);
  for (auto &Im : D.Touched) {
    Im.Ref = R.u32();
    if (Im.Ref == 0 || Im.Ref > PreHeap || !readObject(R, Im))
      return false;
  }
  uint32_t NFresh = R.u32();
  if (NFresh > R.remaining())
    return false;
  D.Fresh.resize(NFresh);
  for (auto &Im : D.Fresh)
    if (!readObject(R, Im))
      return false;

  uint32_t NTouchedEnvs = R.u32();
  if (NTouchedEnvs > R.remaining())
    return false;
  D.TouchedEnvs.resize(NTouchedEnvs);
  for (auto &Im : D.TouchedEnvs) {
    Im.Ref = R.u32();
    if (Im.Ref == 0 || Im.Ref > PreEnv || !readEnv(R, Im))
      return false;
  }
  uint32_t NFreshEnvs = R.u32();
  if (NFreshEnvs > R.remaining())
    return false;
  D.FreshEnvs.resize(NFreshEnvs);
  for (auto &Im : D.FreshEnvs)
    if (!readEnv(R, Im))
      return false;

  uint32_t NCtx = R.u32();
  if (NCtx > R.remaining())
    return false;
  D.Ctxs.resize(NCtx);
  for (auto &E : D.Ctxs) {
    E.Parent = R.u32();
    E.Site = R.u32();
    E.Occurrence = R.u32();
    E.Line = R.u32();
  }

  uint32_t NFacts = R.u32();
  if (NFacts > R.remaining())
    return false;
  D.Facts.resize(NFacts);
  for (auto &[K, V] : D.Facts) {
    K.Node = R.u32();
    K.Ctx = R.u32();
    K.Kind = static_cast<FactKind>(R.u8());
    K.Index = R.u16();
    V = readFactValue(R);
  }

  for (std::vector<NodeID> *Cov : {&D.Stmts, &D.Calls}) {
    uint32_t N = R.u32();
    if (N > R.remaining())
      return false;
    Cov->resize(N);
    for (NodeID &Id : *Cov)
      Id = R.u32();
  }

  D.Out = R.str();

  uint32_t NHandlers = R.u32();
  if (NHandlers > R.remaining())
    return false;
  D.Handlers.resize(NHandlers);
  for (auto &[K, V] : D.Handlers) {
    K = readAtom(R);
    V = readValue(R);
  }

  uint32_t NDom = R.u32();
  if (NDom > R.remaining())
    return false;
  D.DomAdds.resize(NDom);
  for (auto &[K, V] : D.DomAdds) {
    K = readAtom(R);
    V = R.u32();
  }

  uint32_t NSites = R.u32();
  if (NSites > R.remaining())
    return false;
  D.SiteCounts.resize(NSites);
  for (auto &[N, C] : D.SiteCounts) {
    N = R.u32();
    C = R.u32();
  }

  D.RandomState = R.u64();
  D.DomState = R.u64();
  D.Epoch = R.u32();
  D.LastStmt = readTagged(R);

  D.DSteps = R.u64();
  D.DHeap = R.u64();
  D.DFuel = R.u64();
  D.DCalls = R.u64();

  D.DFlushes = R.u64();
  D.DCntr = R.u64();
  D.DAborts = R.u64();
  D.DJournal = R.u64();
  D.FlushLimitHit = R.u8() != 0;

  uint32_t NDeg = R.u32();
  if (!R.ok() || NDeg > R.remaining())
    return false;
  D.DegEvents.resize(NDeg);
  for (auto &E : D.DegEvents) {
    E.Cause = static_cast<TrapKind>(R.u8());
    E.Action = R.str();
    E.Detail = R.str();
  }
  D.DegTotalDelta = R.u64();

  if (!R.ok() || !R.atEnd())
    return false;
  if (D.DHeap < D.Fresh.size() || D.DegTotalDelta < D.DegEvents.size())
    return false;
  for (const ObjImage *Group : {D.Touched.data(), D.Fresh.data()})
    (void)Group;
  for (const auto &Im : D.Touched)
    if (Im.HasFn && !IncFnIndex.count(Im.FnNode))
      return false;
  for (const auto &Im : D.Fresh)
    if (Im.HasFn && !IncFnIndex.count(Im.FnNode))
      return false;

  // ---- Everything validated: apply. No failure paths from here. ----

  for (const ObjImage &Im : D.Touched) {
    // Mimic restoreSnapshot's discipline: pre-image the object into the
    // base COW frame, replace it wholesale, keep the save stamp, and give
    // it a fresh shape generation so VM inline caches revalidate.
    heapBarrier(Im.Ref);
    JSObject &Live = TheHeap.get(Im.Ref);
    uint32_t FreshShape = Live.ShapeGen + 1;
    uint32_t KeepSave = Live.SaveGen;
    JSObject N;
    buildObject(Im, IncFnIndex, N);
    Live = std::move(N);
    Live.ShapeGen = FreshShape;
    Live.SaveGen = KeepSave;
  }
  for (const ObjImage &Im : D.Fresh) {
    // allocate() charges the heap-cell budget exactly like the cold run's
    // allocation did; the external-spend fold below adds only the rest.
    ObjectRef Ref = TheHeap.allocate(static_cast<ObjectClass>(Im.Class),
                                     Im.AllocSite);
    JSObject N;
    buildObject(Im, IncFnIndex, N);
    TheHeap.get(Ref) = std::move(N);
  }

  for (const EnvImage &Im : D.TouchedEnvs) {
    envBarrier(Im.Ref);
    Environment &E = Envs.get(Im.Ref);
    uint32_t KeepSave = E.SaveGen;
    E.Parent = Im.Parent;
    E.Vars.clear();
    for (const auto &[Name, B] : Im.Vars)
      E.Vars.emplace(Name, B);
    E.SaveGen = KeepSave;
  }
  for (const EnvImage &Im : D.FreshEnvs) {
    EnvRef Ref = Envs.allocate(Im.Parent);
    Environment &E = Envs.get(Ref);
    for (const auto &[Name, B] : Im.Vars)
      E.Vars.emplace(Name, B);
  }
  if (!D.TouchedEnvs.empty())
    Envs.noteShapeChange(); // Wholesale Vars replacement, like a restore.

  for (const ContextEntry &E : D.Ctxs)
    Contexts.intern(E.Parent, E.Site, E.Occurrence, E.Line);

  for (const auto &[K, V] : D.Facts)
    Facts.record(K, V);
  Stats.ReplayedFacts += D.Facts.size();

  for (NodeID N : D.Stmts)
    ExecutedStmts.insert(N);
  for (NodeID N : D.Calls)
    ExecutedCalls.insert(N);

  Output += D.Out;
  for (const auto &[K, V] : D.Handlers)
    EventHandlers.emplace_back(K, V);
  for (const auto &[K, V] : D.DomAdds)
    DomElements.emplace(K, V);
  for (const auto &[N, C] : D.SiteCounts)
    Frames.back().SiteCounts[N] = C;

  RandomRng.setState(D.RandomState);
  DomRng.setState(D.DomState);
  Epoch = D.Epoch;
  LastStmtValue = D.LastStmt;

  Gov.applyExternalSpend(D.DSteps, D.DHeap - D.Fresh.size(), D.DFuel,
                         /*DEvals=*/0, D.DCalls);

  Stats.HeapFlushes += D.DFlushes;
  Stats.Counterfactuals += D.DCntr;
  Stats.CounterfactualAborts += D.DAborts;
  // Journal entries are a per-push counter; replay pushes nothing (no undo
  // ever reaches back past a clean region boundary), so fold the count.
  Stats.JournalEntries += D.DJournal;
  Stats.FlushLimitHit = D.FlushLimitHit;

  for (const DegradationEvent &E : D.DegEvents)
    Degradation.addEvent(E.Cause, E.Action, E.Detail); // bumps EventsTotal
  Degradation.EventsTotal += D.DegTotalDelta - D.DegEvents.size();

  return true;
}

//===----------------------------------------------------------------------===//
// The region driver
//===----------------------------------------------------------------------===//

IComp InstrumentedInterpreter::execProgramBody() {
  const std::vector<Stmt *> &Body = Prog.Body;

  IncOptFp = mixHash(optionVectorFingerprint(Opts), Opts.RandomSeed);
  IncFnIndex.clear();
  for (const Stmt *S : Body)
    walkPreOrder(S, [this](const Node *N) {
      if (N->getKind() == NodeKind::Function)
        IncFnIndex.emplace(N->getID(), cast<FunctionExpr>(N));
      return true;
    });
  IncChainFp =
      chainFingerprint(0x441cee9202af60d3ull, IncOptFp, hoistFingerprint());

  for (size_t I = 0; I < Body.size(); ++I) {
    if (IncStop || !regionBoundaryClean()) {
      // First unclean boundary: the chain fingerprint no longer certifies
      // the reaching state, so the rest of the program runs plain.
      IncStop = true;
      return execStmtsFrom(Body, I);
    }
    const Stmt *S = Body[I];
    ++Stats.IncrementalRegions;
    const uint64_t StmtKey = stmtKeyFor(S);
    const uint64_t PreFp = IncChainFp;
    const RegionSummary *Hit = Opts.Store->lookup(StmtKey, PreFp, IncOptFp);

    if (Hit && Opts.Incremental == IncrementalMode::On &&
        applyRegionDelta(Hit->Delta)) {
      IncChainFp = Hit->PostFp;
      ++Stats.IncrementalReplays;
      continue;
    }

    // Cold path (and the whole of strict mode): execute with capture on.
    RegionCaptureState RC;
    RC.Mark = J.mark();
    RC.HeapSize = TheHeap.size();
    RC.EnvSize = Envs.size();
    RC.CtxSize = Contexts.size();
    RC.OutputLen = Output.size();
    RC.HandlersLen = EventHandlers.size();
    RC.DegEvents = Degradation.Events.size();
    RC.DegTotal = Degradation.EventsTotal;
    RC.Gov = Gov.checkpoint();
    RC.Flushes = Stats.HeapFlushes;
    RC.Cntr = Stats.Counterfactuals;
    RC.Aborts = Stats.CounterfactualAborts;
    RC.JEntries = Stats.JournalEntries;
    const ASTContext *EvalCtx =
        Opts.EvalContext ? Opts.EvalContext : Prog.Context.get();
    RC.EvalNextID = EvalCtx->nextID();
    IncPreDomKeys.clear();
    for (const auto &[K, V] : DomElements) {
      (void)V;
      IncPreDomKeys.push_back(K);
    }
    IncPreSiteCounts = Frames.back().SiteCounts;
    IncFacts.clear();
    IncStmts.clear();
    IncCalls.clear();
    IncUnserializable = false;
    IncCapturing = true;

    IComp C = execStmt(S);

    IncCapturing = false;
    std::string Delta;
    bool Clean = C.K == IComp::Normal && regionBoundaryClean() &&
                 buildRegionDelta(RC, Delta);
    if (Clean) {
      uint64_t PostFp =
          chainFingerprint(PreFp, StmtKey, summaryChecksum(Delta));
      if (Hit) {
        if (Opts.Incremental == IncrementalMode::Strict &&
            (Hit->Delta != Delta || Hit->PostFp != PostFp))
          return IComp::fatal(
              "incremental strict mismatch: stored summary for region " +
              std::to_string(I) +
              " diverges from re-execution (stale store or hash collision)");
      } else {
        RegionSummary Sum;
        Sum.StmtKey = StmtKey;
        Sum.PreFp = PreFp;
        Sum.OptFp = IncOptFp;
        Sum.PostFp = PostFp;
        Sum.Delta = std::move(Delta);
        Opts.Store->insert(std::move(Sum));
        ++Stats.SummariesStored;
      }
      IncChainFp = PostFp;
    } else {
      IncStop = true;
    }

    if (!C.isAbrupt())
      continue;
    // Identical to execStmtsFrom's abrupt tail: an indeterminate control
    // transfer explores the skipped suffix counterfactually.
    IncStop = true;
    if (C.IndetControl && C.K != IComp::Fatal && I + 1 < Body.size()) {
      std::vector<StringId> Vd;
      for (size_t R2 = I + 1; R2 < Body.size(); ++R2) {
        std::vector<StringId> Part = collectAssignedVars(Body[R2]);
        Vd.insert(Vd.end(), Part.begin(), Part.end());
      }
      std::sort(Vd.begin(), Vd.end());
      Vd.erase(std::unique(Vd.begin(), Vd.end()), Vd.end());
      IComp CF =
          counterfactualBranch(Vd, [&] { return execStmtsFrom(Body, I + 1); });
      if (CF.K == IComp::Fatal)
        return CF;
    }
    return C;
  }
  return IComp::normal();
}
