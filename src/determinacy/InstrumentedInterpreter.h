//===- InstrumentedInterpreter.h - The determinacy semantics -----*- C++ -*-==//
///
/// \file
/// The instrumented big-step evaluator (paper Figure 9). It executes the
/// program concretely — same values, same output as the concrete
/// Interpreter under the same seeds — while shadowing every value with a
/// determinacy flag and implementing:
///
///  * the tagging rules for loads, stores, operators and calls (L̂D, ŜTO,
///    P̂RIMOP, ÎNV),
///  * post-branch marking for indeterminate-but-true conditions (ÎF1),
///  * counterfactual execution with undo for indeterminate-but-false
///    conditions (ĈNTR) and its nesting cutoff (ĈNTRABORT),
///  * epoch-based heap flushes with per-property recency (Section 4),
///  * native-function models, DOM handling, and recursive instrumentation
///    of eval'd code (Section 4).
///
/// Counterfactual execution snapshots the RNG tapes, suppresses output, and
/// undoes all journaled writes, so the *concrete projection* of an
/// instrumented run is exactly the concrete interpreter's run.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_DETERMINACY_INSTRUMENTEDINTERPRETER_H
#define DDA_DETERMINACY_INSTRUMENTEDINTERPRETER_H

#include "ast/ASTContext.h"
#include "determinacy/Determinacy.h"
#include "determinacy/Journal.h"
#include "interp/Builtins.h"
#include "interp/Environment.h"
#include "interp/Heap.h"
#include "support/BitSet.h"
#include "support/FlatMap.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dda {

/// Abrupt-completion record over tagged values.
///
/// IndetControl marks a completion whose *occurrence* is control-dependent on
/// indeterminate data (e.g. a `return` inside a branch with an indeterminate
/// condition): other executions may not perform this transfer, so as the
/// completion unwinds, every block counterfactually executes the statements
/// it skips — the full-JavaScript generalization of the paper's "adjust
/// determinacy information at every control flow merge point" (Section 4).
struct IComp {
  enum Kind : uint8_t { Normal, Return, Break, Continue, Throw, Fatal } K =
      Normal;
  TaggedValue V;
  bool IndetControl = false;
  /// Set iff K == Fatal: distinguishes resource-budget trips (recoverable;
  /// the analysis degrades soundly) from internal errors (genuine bugs).
  TrapKind Trap = TrapKind::None;

  bool isAbrupt() const { return K != Normal; }
  static IComp normal() { return IComp(); }
  static IComp ret(TaggedValue V) { return {Return, std::move(V), false}; }
  static IComp thrown(TaggedValue V) { return {Throw, std::move(V), false}; }
  /// An interpreter bug (malformed AST, broken invariant).
  static IComp fatal(std::string Message) {
    return {Fatal, TaggedValue(Value::string(std::move(Message))), false,
            TrapKind::InternalError};
  }
  /// A typed resource trap; carries a message for human output.
  static IComp trap(TrapKind Kind, std::string Message) {
    return {Fatal, TaggedValue(Value::string(std::move(Message))), false,
            Kind};
  }
};

/// Expression result over tagged values.
struct IRes {
  IComp C;
  TaggedValue V;

  bool abrupt() const { return C.isAbrupt(); }
  static IRes value(TaggedValue V) { return {IComp::normal(), std::move(V)}; }
  static IRes abruptly(IComp C) { return {std::move(C), TaggedValue()}; }
};

/// The instrumented interpreter. One instance = one analyzed execution.
class InstrumentedInterpreter : public NativeHost {
public:
  InstrumentedInterpreter(Program &P, const AnalysisOptions &Opts);
  ~InstrumentedInterpreter() override;

  bool run();

  // Result access (after run()).
  FactDB &facts() { return Facts; }
  ContextTable &contexts() { return Contexts; }
  const AnalysisStats &stats() const { return Stats; }
  /// Stats with the derived CowCopies counter filled in (pre-image copies
  /// across this interpreter's arenas plus committed shadow branches); what
  /// the analysis result publishes.
  AnalysisStats finalStats() const {
    AnalysisStats S = Stats;
    S.CowCopies = TheHeap.cowSaves() + Envs.cowSaves() + CowSavesFolded;
    return S;
  }
  const std::string &outputText() const { return Output; }
  const std::string &errorMessage() const { return Error; }
  const NodeBitSet &executedCalls() const { return ExecutedCalls; }
  const NodeBitSet &executedStmts() const { return ExecutedStmts; }

  /// Reads a global variable with its determinacy flag (test hook).
  TaggedValue globalVariable(const std::string &Name);
  /// Names of all user-created global variables (test hook).
  std::vector<std::string> userGlobalNames();
  /// Reads a property with the L̂D determinacy rules (test hook).
  TaggedValue taggedProperty(const TaggedValue &Base, const std::string &Name);
  /// Current global epoch (test hook).
  uint32_t currentEpoch() const { return Epoch; }

  /// Why run() stopped early: TrapKind::None for a clean run, a resource
  /// trap when a budget tripped (run() still returns true after degrading
  /// soundly), InternalError for genuine bugs (run() returns false).
  TrapKind trapKind() const { return Trap; }
  /// Structured account of budget trips and sound weakenings (after run()).
  const DegradationReport &degradation() const { return Degradation; }
  const ResourceGovernor &governor() const { return Gov; }

  /// Number of live journal entries (test hook: journal-undo integrity).
  size_t journalSize() const { return J.size(); }
  /// Reverts *every* journaled write back to the pre-run state (test hook:
  /// after this, no user-visible binding or property mutation survives —
  /// FuzzTest uses it to prove undo integrity after mid-counterfactual
  /// aborts).
  void unwindJournalForTest() { undoSince(0); }

  // NativeHost implementation.
  Heap &heap() override { return TheHeap; }
  RNG &randomRng() override { return RandomRng; }
  RNG &domRng() override { return DomRng; }
  void nativeWriteProperty(ObjectRef O, StringId Name,
                           TaggedValue TV) override;
  TaggedValue nativeReadProperty(ObjectRef O, StringId Name) override;
  void output(const std::string &Text) override;
  void registerEventHandler(StringId Event, Value Handler) override;
  ObjectRef domElement(StringId Key) override;
  uint64_t domSeed() const override { return Opts.DomSeed; }
  ObjectRef newArray() override;
  Det recordSetDeterminacy(ObjectRef O) override;

private:
  // --- Setup -------------------------------------------------------------
  void installGlobals();
  ObjectRef makeNative(NativeFn Fn);
  ObjectRef makeFunction(const FunctionExpr *Fn, EnvRef Closure);

  // --- Journaled state mutation -------------------------------------------
  /// Resolves and writes a variable (creating a global when undeclared).
  void setVar(StringId Name, TaggedValue TV);
  /// Overwrites a binding already resolved to (\p Env, \p B) — the bytecode
  /// VM's variable-cache fast path. Journals like declareVar's
  /// existing-binding case without re-finding the map node.
  void storeVarCached(EnvRef Env, Binding &B, StringId Name, TaggedValue TV);
  /// Declares/overwrites a binding in a specific environment.
  void declareVar(EnvRef Env, StringId Name, TaggedValue TV);
  /// Marks an existing binding indeterminate (journaled).
  void weakenVar(EnvRef Env, StringId Name);
  /// The ŜTO rule: journaled property write honoring base/name determinacy.
  void writeProp(ObjectRef Obj, StringId Name, TaggedValue TV,
                 Det BaseDet, Det NameDet);
  /// Journaled property deletion; returns whether it existed.
  bool eraseProp(ObjectRef Obj, StringId Name);
  /// Opens a record (journaled) and marks all its properties indeterminate.
  void openRecord(ObjectRef Obj);
  /// Marks \p Name as possibly-present-in-other-executions on \p Obj
  /// (journaled).
  void addMaybeAbsent(ObjectRef Obj, StringId Name);
  /// Marks \p Name as present-here-but-possibly-absent-elsewhere (created
  /// under an indeterminate condition); journaled.
  void addMaybePresent(ObjectRef Obj, StringId Name);

  bool recordClosed(const JSObject &O) const {
    return !O.ExplicitlyOpen && O.ClosedEpoch == Epoch;
  }
  Det slotDet(const Slot &S) const {
    return (S.D == Det::Determinate && (S.Epoch == Epoch || S.Immune))
               ? Det::Determinate
               : Det::Indeterminate;
  }

  /// Bumps the global epoch: every property everywhere becomes stale and
  /// every record opens.
  void flushHeap();

  // --- Branch machinery ----------------------------------------------------
  /// Marks every location journaled since \p M indeterminate (ÎF1's
  /// post-branch weakening). Values are kept.
  void markIndetSince(Journal::Mark M);
  /// Reverts every journaled change since \p M and truncates the journal.
  void undoSince(Journal::Mark M);
  /// ĈNTR: runs \p Exec counterfactually (bounded by CounterfactualDepth),
  /// undoes its writes, and weakens the touched locations. \p AbortVd is the
  /// syntactic variable domain used by the ĈNTRABORT fallback. Returns only
  /// Normal or Fatal.
  IComp counterfactualBranch(const std::vector<StringId> &AbortVd,
                             const std::function<IComp()> &Exec);
  /// ĈNTRABORT: flush the heap and taint every name in \p AbortVd.
  void cntrAbort(const std::vector<StringId> &AbortVd);
  /// Conservative env taint: code we could not explore (an unexplored
  /// counterfactual suffix, or alternative-world catch handlers) may write
  /// any reachable binding. Journaled; builtin bindings are immune.
  void taintAllEnvironments();
  /// Registers the consequences of non-local control escaping a
  /// counterfactual branch (alt-world return/throw/break).
  void noteCounterfactualEscape(IComp::Kind K, bool UnexploredSuffix);

  bool inCounterfactual() const { return CfDepth > 0; }

  // --- Snapshot undo engine (UndoEngine::Snapshot) -------------------------
  /// Opens a paired journal mark + copy-on-write frame on both arenas and
  /// returns the mark, which is what undoSince() later receives. \p Charged
  /// frames bill each pre-image copy to the heap-cell budget (counterfactual
  /// branches model real alternative-world allocations of undo state); the
  /// base frame and speculation frames are free.
  Journal::Mark beginUndoFrame(bool Charged);
  /// Copy-on-write write barriers, called by every journaled-mutation site
  /// immediately before mutating. No-ops under the journal engine, where the
  /// pre-image rides in the journal entry instead.
  void envBarrier(EnvRef Env) {
    if (SnapMode)
      Envs.ensureSaved(Env);
  }
  void heapBarrier(ObjectRef Obj) {
    if (SnapMode)
      TheHeap.ensureSaved(Obj);
  }

  /// Per-activation call-site occurrence counters. Most activations execute
  /// a handful of distinct sites, so eight inline slots keep frame setup off
  /// the allocator.
  using SiteCountMap = FlatMap<NodeID, uint32_t, FlatHash<NodeID>, 8>;

  struct Frame {
    ContextID Ctx = ContextTable::Root;
    SiteCountMap SiteCounts;
    TaggedValue ThisV;
    /// Set when a counterfactually explored `return` escaped a branch in
    /// this activation: other executions may leave the function early, so
    /// everything written from the mark to the function's exit is weakened
    /// and the return value is indeterminate.
    std::optional<Journal::Mark> ReturnEscape;
  };

  // --- Intra-run parallel branch exploration -------------------------------
  /// Tag for the shadow-forking constructor.
  struct ShadowBranchTag {};
  /// Deep-copies \p Parent into an isolated shadow interpreter that runs one
  /// counterfactual branch on a pool thread: private arenas, governor, RNGs,
  /// journal, facts, context table and eval arena; only the immutable
  /// Program (and the global string interner, which is thread-safe and
  /// canonical) are shared.
  InstrumentedInterpreter(InstrumentedInterpreter &Parent, ShadowBranchTag);

  /// Pre-speculation state of the main interpreter: everything rollbackSpec
  /// needs to make a speculative taken-side execution fully unobservable
  /// before the sequential rerun.
  struct SpecCheckpoint {
    AnalysisStats Stats;
    Journal::Mark Mark = 0;
    size_t HeapSize = 0, EnvSize = 0;
    uint64_t HeapSaves = 0, EnvSaves = 0;
    ResourceGovernor::Checkpoint Gov;
    uint64_t RandomState = 0, DomState = 0;
    uint32_t Epoch = 0;
    size_t OutputLen = 0, HandlersLen = 0;
    FlatMap<StringId, ObjectRef> DomElements;
    TaggedValue LastStmt;
    Frame TopFrame;
    size_t FrameDepth = 0;
    EnvRef CurEnv = 0;
    std::optional<Journal::Mark> ThrowMark, BreakMark;
    unsigned IndetDepth = 0;
    bool AbortReq = false;
    DegradationReport Degradation;
    ASTContext *EvalCtx = nullptr;
    NodeID AstNextID = 0;
    size_t AstNodeCount = 0;
    size_t VLen = 0, JLen = 0;
  };
  SpecCheckpoint captureSpec();
  void rollbackSpec(const SpecCheckpoint &Cp);
  /// Whether the shadow's finished counterfactual left *zero* net effects
  /// beyond journalled-then-undone writes — the condition under which the
  /// speculative taken-side run is byte-identical to the sequential order
  /// and the shadow's facts/stats can be folded in.
  bool shadowFoldable(const InstrumentedInterpreter &Sh,
                      const SpecCheckpoint &Cp, const IComp &CfC) const;
  void foldShadow(InstrumentedInterpreter &Sh, const SpecCheckpoint &Cp);
  /// Runs the counterfactual (untaken) side on Opts.BranchPool while this
  /// thread speculatively runs the taken side. On success \p Out holds the
  /// taken side's completion and the merged state is byte-identical to
  /// sequential execution; on failure (ineligible branch, saturated pool, or
  /// unfoldable counterfactual side effects) all speculative state is rolled
  /// back and the caller must run the sequential path.
  bool tryParallelBranch(
      NodeID Site, const std::vector<StringId> &AbortVd,
      const std::function<IComp(InstrumentedInterpreter &)> &UntakenExec,
      const std::function<IComp()> &TakenExec, IComp &Out);
  /// Records how many governor steps the just-finished *sequential*
  /// counterfactual at \p Site consumed (callers pass the pre-branch
  /// Gov.stepsUsed() reading), feeding the dispatch profile consulted by
  /// tryParallelBranch. No-op unless parallel branches are enabled.
  void noteBranchCfSteps(NodeID Site, uint64_t StepsBefore);

  // --- Incremental region replay (IncrementalRegions.cpp) ------------------
  /// True when this run consults/feeds the persistent fact store.
  bool incrementalActive() const;
  /// Drives Prog.Body with per-statement ("region") replay/capture; the
  /// semantics are exactly execStmtsFrom(Prog.Body, 0) — abrupt completions
  /// take the identical counterfactual-suffix path — but each region whose
  /// key hits the store is warm-started from its stored effect delta
  /// instead of executing.
  IComp execProgramBody();
  /// The interpreter is at the base toplevel state from which a region's
  /// effect delta is meaningful: no branch/speculation in flight, no
  /// pending cross-world control transfer, base frames only.
  bool regionBoundaryClean() const;
  /// Mirrors hoist(Prog.Body)'s recursion over declarations (names and the
  /// full content+position identity of hoisted functions), so the chain
  /// fingerprint covers everything installGlobals+hoist put in scope.
  uint64_t hoistFingerprint() const;
  /// (subtree hash, position hash, NodeID) of one top-level statement.
  uint64_t stmtKeyFor(const Stmt *S) const;
  /// Serializes the region's net effect since the capture began into
  /// Delta. Returns false when the effect is not replayable (a function
  /// value escaped whose FunctionExpr is not a program node, eval parsed
  /// new code, ...).
  bool buildRegionDelta(const struct RegionCaptureState &RC,
                        std::string &Delta);
  /// Validates Delta against the live pre-state and applies it. Returns
  /// false — before mutating anything — when validation fails.
  bool applyRegionDelta(const std::string &Delta);

  // --- Statements ----------------------------------------------------------
  IComp execStmt(const Stmt *S);
  IComp execBlockBody(const std::vector<Stmt *> &Body);
  /// Executes Body[From..]; on an IndetControl abrupt completion,
  /// counterfactually executes the statements it skips.
  IComp execStmtsFrom(const std::vector<Stmt *> &Body, size_t From);
  IComp execIf(const IfStmt *If);
  IComp execLoop(const Stmt *LoopNode, const Expr *Cond, const Stmt *Body,
                 const Expr *Update, bool CondFirst);
  IComp execForIn(const ForInStmt *F);
  IComp execSwitch(const SwitchStmt *Sw);
  /// \p FreshEnv: hoisting into an environment allocated for this activation
  /// (call scope); pre-existing targets (toplevel, eval) bump the env arena's
  /// shape generation so variable inline caches revalidate.
  void hoist(const std::vector<Stmt *> &Body, EnvRef Env, bool FreshEnv);
  void hoistStmt(const Stmt *S, EnvRef Env);

  // --- Expressions -----------------------------------------------------------
  IRes evalExpr(const Expr *E);
  IRes evalCall(const CallExpr *E);
  IRes evalNew(const NewExpr *E);
  IRes evalMember(const MemberExpr *E);
  IRes evalAssign(const AssignExpr *E);
  IRes evalUpdate(const UpdateExpr *E);
  IRes evalEval(NodeID Site, const std::vector<TaggedValue> &Args,
                ContextID ChildCtx);

  // Bytecode engine (VMInstrumented.cpp). evalExpr forwards to vmEval when
  // the chunk cache is live; statements, counterfactual machinery, journal
  // and fact recording stay shared with the tree-walk.
  IRes vmEval(const Expr *E);
  IRes vmRun(const bc::Chunk &Ch, uint32_t From, uint32_t To);
  /// The VM's evalBranchExpr: the taken/untaken operands are code ranges of
  /// \p Ch instead of subtrees; \p UntakenVd indexes Ch.VdLists.
  /// \p UntakenNode is the untaken side's AST subtree (from
  /// BranchInfo::NodeA/NodeB) — the shadow interpreter of a parallel branch
  /// tree-walks it, since chunks are per-interpreter scratch.
  IRes vmBranchExpr(const bc::Chunk &Ch, const TaggedValue &CondV,
                    bool HasTaken, uint32_t TFrom, uint32_t TTo,
                    bool HasUntaken, uint32_t UFrom, uint32_t UTo,
                    uint32_t UntakenVd, const Expr *UntakenNode);
  /// Expression-level conditional branches (?:, &&, ||) follow the same
  /// indeterminate-condition discipline as if statements: with an
  /// indeterminate condition, the untaken side is counterfactually evaluated
  /// first, then the taken side is evaluated and its writes marked. When
  /// \p Taken is null the result is \p CondV itself (short-circuit).
  IRes evalBranchExpr(const TaggedValue &CondV, const Expr *Taken,
                      const Expr *Untaken);

  // --- Helpers ----------------------------------------------------------------
  /// \p OwnHint: a still-valid cached own slot of the base object (skips the
  /// hash probe; every determinacy rule still runs). \p OwnOut receives the
  /// own slot when the read resolved to one, for the VM to cache.
  IRes readProperty(const TaggedValue &Base, StringId Name, Det NameDet,
                    const Slot *OwnHint = nullptr,
                    const Slot **OwnOut = nullptr);
  IComp setPropertyTagged(const TaggedValue &Base, StringId Name,
                          Det NameDet, TaggedValue V);
  IRes callValueTagged(const TaggedValue &Callee, const TaggedValue &ThisV,
                       const std::vector<TaggedValue> &Args,
                       ContextID ChildCtx);
  IRes callClosure(ObjectRef FnObj, Det CalleeDet, const TaggedValue &ThisV,
                   const std::vector<TaggedValue> &Args, ContextID ChildCtx);
  /// Interns the child context for an execution of call site \p Site in the
  /// current activation (bumping its occurrence counter).
  ContextID enterSite(NodeID Site, uint32_t Line);
  IRes resolveKey(const MemberExpr *M, StringId &Key, Det &KeyDet);

  ContextID currentCtx() const { return Frames.back().Ctx; }
  void recordFact(FactKind Kind, NodeID Node, const TaggedValue &TV,
                  uint16_t Index = 0);
  void recordFactAt(FactKind Kind, NodeID Node, ContextID Ctx,
                    const TaggedValue &TV, uint16_t Index = 0);
  void recordFactValue(FactKind Kind, NodeID Node, FactValue FV,
                       uint16_t Index = 0);
  /// Single sink behind the recordFact family: records into the FactDB, or
  /// buffers into SpecFacts during a speculative taken-side run (the FactDB
  /// has no undo; buffered facts are flushed on fold, dropped on rollback).
  /// The FactValue is materialized at call time either way — it may read
  /// heap state that later mutates.
  void commitFactRecord(const FactKey &K, const FactValue &FV);
  /// Coverage sinks with the same speculation-buffering discipline. The
  /// IncCapturing mirror feeds the incremental region delta (speculative
  /// entries are mirrored on fold, where they actually commit).
  void noteExecutedStmt(NodeID N) {
    if (SpecActive) {
      SpecStmts.push_back(N);
    } else {
      ExecutedStmts.insert(N);
      if (IncCapturing)
        IncStmts.push_back(N);
    }
  }
  void noteExecutedCall(NodeID N) {
    if (SpecActive) {
      SpecCalls.push_back(N);
    } else {
      ExecutedCalls.insert(N);
      if (IncCapturing)
        IncCalls.push_back(N);
    }
  }
  /// Per-step governor checkpoint; defined inline because the dispatch
  /// loops call it once per AST node / instruction.
  bool tick(IComp &C) {
    if (Gov.tickStep())
      return true;
    C = trapCompletion();
    return false;
  }
  /// Renders the governor's latched trip as a typed trap completion.
  IComp trapCompletion();
  /// Sound degradation after a resource trap unwound to the driver: flush
  /// the heap, taint the variable domain, and fill the DegradationReport.
  void degradeAfterTrap(const IComp &C);
  IComp throwString(const std::string &Message);
  Det domDet() const {
    return Opts.DeterminateDom ? Det::Determinate : Det::Indeterminate;
  }
  /// Applies StrictTaint (information-flow ablation) to a to-be-written
  /// value.
  Det taintAdjust(Det D) const {
    return (Opts.StrictTaint && IndetBranchDepth > 0) ? Det::Indeterminate : D;
  }

  Program &Prog;
  AnalysisOptions Opts;
  ResourceGovernor Gov;
  Heap TheHeap;
  EnvArena Envs;
  RNG RandomRng;
  RNG DomRng;
  Journal J;
  /// Undo engine selected at construction (Opts.Undo == Snapshot).
  bool SnapMode = false;
  /// Journal marks of the open snapshot frames, innermost last — a parallel
  /// array to the arenas' frame stacks (one mark per paired heap+env frame).
  /// Frame 0 is the base frame opened at construction so undoSince(0) can
  /// restore the pristine globals.
  std::vector<Journal::Mark> SnapMarks;

  FactDB Facts;
  ContextTable Contexts;
  AnalysisStats Stats;
  /// Dense bitsets: NodeIDs are allocated sequentially per ASTContext, so a
  /// coverage probe per executed statement is a bit test, and iteration is
  /// naturally in the sorted order the serve digest and parallel fold want.
  NodeBitSet ExecutedCalls;
  NodeBitSet ExecutedStmts;

  EnvRef GlobalEnv = 0;
  EnvRef CurrentEnv = 0;
  std::vector<Frame> Frames;
  uint32_t Epoch = 0;
  TrapKind Trap = TrapKind::None;
  DegradationReport Degradation;

  unsigned CfDepth = 0;
  bool CfAbortRequested = false;
  unsigned IndetBranchDepth = 0;
  /// Pending "another execution throws from here": consumed by the
  /// dynamically enclosing try statement (its catch may run in the other
  /// world, and everything until then may be skipped there).
  std::optional<Journal::Mark> CfThrowMark;
  /// Pending "another execution breaks/continues here": consumed by the
  /// dynamically enclosing loop (its remaining iterations may be skipped in
  /// the other world).
  std::optional<Journal::Mark> CfBreakMark;

  ObjectRef ObjectProto = 0;
  ObjectRef StringProto = 0;
  ObjectRef ArrayProto = 0;
  ObjectRef EvalFn = 0;
  ObjectRef WindowObj = 0;
  ObjectRef DocumentObj = 0;

  FlatMap<StringId, ObjectRef> DomElements;
  std::vector<std::pair<StringId, Value>> EventHandlers;

  std::string Output;
  std::string Error;
  TaggedValue LastStmtValue;

  // --- Parallel-branch state ----------------------------------------------
  bool IsShadowBranch = false; ///< This instance is a forked shadow.
  /// Set by enterSite in a shadow: the counterfactual made a call (closure,
  /// native, or eval). Calls have effects the fold cannot reproduce
  /// (context-table interning, per-frame occurrence counters, handler
  /// registration), so the branch is not foldable.
  bool ShadowSawCall = false;
  bool SpecActive = false;        ///< Speculative taken-side run in flight.
  bool SpecSawEval = false;       ///< The speculation entered evalEval.
  bool SpecWroteLastStmt = false; ///< Speculation assigned LastStmtValue.
  std::vector<std::pair<FactKey, FactValue>> SpecFacts;
  std::vector<NodeID> SpecStmts, SpecCalls;
  /// Private eval-AST overlay of a shadow (referenced by its
  /// Opts.EvalContext), based at the parent's eval arena nextID.
  std::unique_ptr<ASTContext> ShadowEvalCtx;
  /// Pre-image copies made by committed shadow branches, whose arenas die
  /// with them; folded into the CowCopies statistic.
  uint64_t CowSavesFolded = 0;
  /// Dispatched shadow branches whose fold was rejected (the branch had
  /// effects the fold cannot reproduce, typically calls). Each failure pays
  /// a full arena fork plus a wasted counterfactual run, so once failures
  /// consistently outpace commits further dispatch is suppressed for the
  /// rest of the run. Fold rejection is deterministic for a given program
  /// and seed, so the cutoff — and the merged facts — stay deterministic.
  uint64_t ParallelFoldFailures = 0;
  /// Per-branch-site dispatch profile: governor steps the most recent
  /// counterfactual at this site consumed (keyed by the untaken node).
  /// Forking a shadow copies the live heap/env/context state, so a site is
  /// only worth dispatching when its counterfactual amortizes that copy;
  /// unknown sites dispatch once optimistically to seed the profile. All
  /// inputs are deterministic, so gating never perturbs merged facts.
  FlatMap<NodeID, uint64_t> BranchCfSteps;

  // --- Incremental-replay state --------------------------------------------
  /// A region capture is in flight: the fact/coverage sinks mirror their
  /// commits into IncFacts/IncStmts/IncCalls so the delta can spell them
  /// out (the FactDB itself has no per-region provenance).
  bool IncCapturing = false;
  /// Sticky off-switch: once any region ends abrupt, dirty, or
  /// non-replayable, later regions are neither replayed nor captured (their
  /// reaching state is no longer certified by the chain fingerprint alone).
  bool IncStop = false;
  /// Set by buildRegionDelta when the effect references something summaries
  /// cannot carry across processes.
  bool IncUnserializable = false;
  uint64_t IncChainFp = 0; ///< Chained fingerprint of the replayed history.
  uint64_t IncOptFp = 0;   ///< optionVectorFingerprint + RandomSeed.
  std::vector<std::pair<FactKey, FactValue>> IncFacts;
  std::vector<NodeID> IncStmts, IncCalls;
  /// Program FunctionExprs by NodeID, for serializing escaped function
  /// values as stable IDs (and refusing anything else).
  FlatMap<NodeID, const FunctionExpr *> IncFnIndex;
  /// DomElements keys present when the capture began (additions diff base).
  std::vector<StringId> IncPreDomKeys;
  /// Top-frame SiteCounts when the capture began (changed-entry diff base).
  SiteCountMap IncPreSiteCounts;

  /// Chunk cache; non-null iff Opts.Engine == ExecEngine::Bytecode.
  std::unique_ptr<bc::Module> BC;
  /// Operand stack shared by all (re-entrant) dispatch-loop activations;
  /// each activation works relative to its entry height.
  std::vector<TaggedValue> VStack;
  /// Branch-join scratch for flattened determinate branches: when IP hits
  /// Join, record the branch instruction's completing fact (top of stack is
  /// the branch's value) and resume at Resume. Shared like VStack; strictly
  /// LIFO within an activation.
  struct VMJoin {
    uint32_t Join, Resume, Instr;
  };
  std::vector<VMJoin> JStack;
};

/// Syntactic vd(s): names assigned anywhere in \p S, not descending into
/// nested function bodies (paper Section 3.1). Exposed for tests.
std::vector<StringId> collectAssignedVars(const Stmt *S);

} // namespace dda

#endif // DDA_DETERMINACY_INSTRUMENTEDINTERPRETER_H
