//===- StructuralHash.h - Content-addressed AST subtree identity -*- C++ -*-==//
///
/// \file
/// Structural Merkle hashes over MiniJS subtrees. The hash of a node covers
/// its kind, its literals/atoms/flags, and the hashes of its children —
/// nothing else. NodeIDs and source positions are deliberately excluded, so
/// two byte-identical program fragments hash equal no matter where they sit
/// in a file or which parse produced them. This is the content-addressed
/// identity the incremental layer keys on (see src/incremental/).
///
/// A second hash, subtreePositionHash, covers exactly what subtreeHash
/// omits: the (NodeID, line, column) triples of every node in the subtree.
/// Determinacy facts and calling contexts embed NodeIDs and line numbers,
/// so a stored summary is only replayable when *both* hashes match — the
/// code is the same and it sits at the same program points.
///
/// subtreeHash memoizes into Node::structuralHashMemo (computed once at
/// parse via warmStructuralHashes, lazily for eval-overlay nodes);
/// subtreePositionHash is cheap and recomputed on demand.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_AST_STRUCTURALHASH_H
#define DDA_AST_STRUCTURALHASH_H

#include "ast/ASTContext.h"

#include <cstdint>
#include <vector>

namespace dda {

/// 64-bit FNV-1a over a byte buffer; the primitive every hash here builds on.
uint64_t hashBytesFnv(const void *Data, size_t Len, uint64_t Seed);

/// Order-dependent 64-bit mix (not commutative: mixHash(a,b) != mixHash(b,a)).
uint64_t mixHash(uint64_t A, uint64_t B);

/// Structural Merkle hash of the subtree rooted at N (never 0; memoized).
uint64_t subtreeHash(const Node *N);

/// Hash of the (NodeID, line, column) layout of the subtree rooted at N.
uint64_t subtreePositionHash(const Node *N);

/// Structural hashes of each top-level statement, in program order. Warms
/// the memo for every node in the program as a side effect.
std::vector<uint64_t> topLevelHashes(const Program &P);

/// One hash for the whole program: the chained fold of topLevelHashes.
uint64_t programHash(const Program &P);

/// Computes (and memoizes) the structural hash of every subtree in the
/// program. Call once after parsing so later concurrent readers only ever
/// read the memo field.
void warmStructuralHashes(const Program &P);

} // namespace dda

#endif // DDA_AST_STRUCTURALHASH_H
