//===- ASTPrinter.cpp -----------------------------------------------------==//

#include "ast/ASTPrinter.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace dda;

namespace {

/// Precedence levels for parenthesization, higher binds tighter.
enum Precedence {
  PrecLowest = 0,
  PrecAssign = 1,
  PrecConditional = 2,
  PrecOr = 3,
  PrecAnd = 4,
  PrecEquality = 5,
  PrecRelational = 6,
  PrecAdditive = 7,
  PrecMultiplicative = 8,
  PrecUnary = 9,
  PrecPostfix = 10,
  PrecPrimary = 11,
};

Precedence binaryPrecedence(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
  case BinaryOp::NotEq:
  case BinaryOp::StrictEq:
  case BinaryOp::StrictNotEq:
    return PrecEquality;
  case BinaryOp::Less:
  case BinaryOp::LessEq:
  case BinaryOp::Greater:
  case BinaryOp::GreaterEq:
  case BinaryOp::Instanceof:
  case BinaryOp::In:
    return PrecRelational;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return PrecAdditive;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Mod:
    return PrecMultiplicative;
  }
  return PrecLowest;
}

class Printer {
public:
  std::string expr(const Expr *E, Precedence Parent) {
    Precedence Mine = precedenceOf(E);
    std::string Text = exprNoParens(E);
    if (Mine < Parent)
      return "(" + Text + ")";
    return Text;
  }

  std::string stmt(const Stmt *S, unsigned Indent);

private:
  Precedence precedenceOf(const Expr *E) {
    switch (E->getKind()) {
    case NodeKind::Assign:
      return PrecAssign;
    case NodeKind::Conditional:
      return PrecConditional;
    case NodeKind::Logical:
      return cast<LogicalExpr>(E)->isAnd() ? PrecAnd : PrecOr;
    case NodeKind::Binary:
      return binaryPrecedence(cast<BinaryExpr>(E)->getOp());
    case NodeKind::Unary:
      return PrecUnary;
    case NodeKind::Update:
      return cast<UpdateExpr>(E)->isPrefix() ? PrecUnary : PrecPostfix;
    case NodeKind::Member:
    case NodeKind::Call:
    case NodeKind::New:
      return PrecPostfix;
    case NodeKind::Function:
      // Function expressions need parens in statement position; callers that
      // care pass PrecPrimary as the parent to force them.
      return PrecAssign;
    default:
      return PrecPrimary;
    }
  }

  std::string exprNoParens(const Expr *E);
  std::string indentStr(unsigned Indent) { return std::string(Indent * 2, ' '); }
  std::string blockOrStmt(const Stmt *S, unsigned Indent);
  std::string functionText(const FunctionExpr *F, unsigned Indent);
};

std::string Printer::exprNoParens(const Expr *E) {
  switch (E->getKind()) {
  case NodeKind::NumberLiteral:
    return numberToString(cast<NumberLiteral>(E)->getValue());
  case NodeKind::StringLiteral:
    return "\"" + escapeString(cast<StringLiteral>(E)->getValue()) + "\"";
  case NodeKind::BooleanLiteral:
    return cast<BooleanLiteral>(E)->getValue() ? "true" : "false";
  case NodeKind::NullLiteral:
    return "null";
  case NodeKind::UndefinedLiteral:
    return "undefined";
  case NodeKind::Identifier:
    return cast<Identifier>(E)->getName();
  case NodeKind::This:
    return "this";
  case NodeKind::ArrayLiteral: {
    std::string Out = "[";
    const auto &Elements = cast<ArrayLiteral>(E)->getElements();
    for (size_t I = 0; I < Elements.size(); ++I) {
      if (I)
        Out += ", ";
      Out += expr(Elements[I], PrecAssign);
    }
    return Out + "]";
  }
  case NodeKind::ObjectLiteral: {
    std::string Out = "{";
    const auto &Props = cast<ObjectLiteral>(E)->getProperties();
    for (size_t I = 0; I < Props.size(); ++I) {
      if (I)
        Out += ", ";
      if (isIdentifier(Props[I].Key))
        Out += Props[I].Key;
      else
        Out += "\"" + escapeString(Props[I].Key) + "\"";
      Out += ": ";
      Out += expr(Props[I].Value, PrecAssign);
    }
    return Out + "}";
  }
  case NodeKind::Function:
    return functionText(cast<FunctionExpr>(E), 0);
  case NodeKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    std::string Base = expr(M->getObject(), PrecPostfix);
    if (M->isComputed())
      return Base + "[" + expr(M->getIndex(), PrecLowest) + "]";
    return Base + "." + M->getProperty();
  }
  case NodeKind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::string Out = expr(C->getCallee(), PrecPostfix) + "(";
    for (size_t I = 0; I < C->getArgs().size(); ++I) {
      if (I)
        Out += ", ";
      Out += expr(C->getArgs()[I], PrecAssign);
    }
    return Out + ")";
  }
  case NodeKind::New: {
    const auto *C = cast<NewExpr>(E);
    std::string Out = "new " + expr(C->getCallee(), PrecPostfix) + "(";
    for (size_t I = 0; I < C->getArgs().size(); ++I) {
      if (I)
        Out += ", ";
      Out += expr(C->getArgs()[I], PrecAssign);
    }
    return Out + ")";
  }
  case NodeKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    const char *Spelling = "";
    switch (U->getOp()) {
    case UnaryOp::Not:
      Spelling = "!";
      break;
    case UnaryOp::Minus:
      Spelling = "-";
      break;
    case UnaryOp::Plus:
      Spelling = "+";
      break;
    case UnaryOp::Typeof:
      Spelling = "typeof ";
      break;
    case UnaryOp::Delete:
      Spelling = "delete ";
      break;
    case UnaryOp::Void:
      Spelling = "void ";
      break;
    }
    return std::string(Spelling) + expr(U->getOperand(), PrecUnary);
  }
  case NodeKind::Update: {
    const auto *U = cast<UpdateExpr>(E);
    const char *Spelling = U->isIncrement() ? "++" : "--";
    if (U->isPrefix())
      return std::string(Spelling) + expr(U->getOperand(), PrecUnary);
    return expr(U->getOperand(), PrecPostfix) + Spelling;
  }
  case NodeKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Precedence P = binaryPrecedence(B->getOp());
    return expr(B->getLHS(), P) + " " + binaryOpSpelling(B->getOp()) + " " +
           expr(B->getRHS(), static_cast<Precedence>(P + 1));
  }
  case NodeKind::Logical: {
    const auto *L = cast<LogicalExpr>(E);
    Precedence P = L->isAnd() ? PrecAnd : PrecOr;
    return expr(L->getLHS(), P) + (L->isAnd() ? " && " : " || ") +
           expr(L->getRHS(), static_cast<Precedence>(P + 1));
  }
  case NodeKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    const char *Spelling = "=";
    switch (A->getOp()) {
    case AssignOp::Assign:
      Spelling = "=";
      break;
    case AssignOp::Add:
      Spelling = "+=";
      break;
    case AssignOp::Sub:
      Spelling = "-=";
      break;
    case AssignOp::Mul:
      Spelling = "*=";
      break;
    case AssignOp::Div:
      Spelling = "/=";
      break;
    case AssignOp::Mod:
      Spelling = "%=";
      break;
    }
    return expr(A->getTarget(), PrecPostfix) + " " + Spelling + " " +
           expr(A->getValue(), PrecAssign);
  }
  case NodeKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    return expr(C->getCond(), PrecOr) + " ? " +
           expr(C->getThen(), PrecAssign) + " : " +
           expr(C->getElse(), PrecAssign);
  }
  default:
    assert(false && "statement kind in expression printer");
    return "<bad-expr>";
  }
}

std::string Printer::functionText(const FunctionExpr *F, unsigned Indent) {
  std::string Out = "function";
  if (!F->getName().empty())
    Out += " " + F->getName();
  Out += "(";
  for (size_t I = 0; I < F->getParams().size(); ++I) {
    if (I)
      Out += ", ";
    Out += F->getParams()[I];
  }
  Out += ") ";
  Out += blockOrStmt(F->getBody(), Indent);
  return Out;
}

std::string Printer::blockOrStmt(const Stmt *S, unsigned Indent) {
  if (const auto *B = dyn_cast<BlockStmt>(S)) {
    std::string Out = "{\n";
    for (const Stmt *Child : B->getBody())
      Out += stmt(Child, Indent + 1);
    Out += indentStr(Indent) + "}";
    return Out;
  }
  std::string Out = "{\n";
  Out += stmt(S, Indent + 1);
  Out += indentStr(Indent) + "}";
  return Out;
}

std::string Printer::stmt(const Stmt *S, unsigned Indent) {
  std::string Pad = indentStr(Indent);
  switch (S->getKind()) {
  case NodeKind::ExpressionStmt: {
    const Expr *E = cast<ExpressionStmt>(S)->getExpr();
    // Function expressions and object literals at statement start would be
    // misparsed; wrap them.
    std::string Text = expr(E, PrecLowest);
    if (isa<FunctionExpr>(E) || isa<ObjectLiteral>(E))
      Text = "(" + Text + ")";
    return Pad + Text + ";\n";
  }
  case NodeKind::VarDeclStmt: {
    std::string Out = Pad + "var ";
    const auto &Decls = cast<VarDeclStmt>(S)->getDeclarators();
    for (size_t I = 0; I < Decls.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Decls[I].Name;
      if (Decls[I].Init)
        Out += " = " + expr(Decls[I].Init, PrecAssign);
    }
    return Out + ";\n";
  }
  case NodeKind::FunctionDeclStmt:
    return Pad +
           functionText(cast<FunctionDeclStmt>(S)->getFunction(), Indent) +
           "\n";
  case NodeKind::BlockStmt: {
    std::string Out = Pad + "{\n";
    for (const Stmt *Child : cast<BlockStmt>(S)->getBody())
      Out += stmt(Child, Indent + 1);
    return Out + Pad + "}\n";
  }
  case NodeKind::IfStmt: {
    const auto *If = cast<IfStmt>(S);
    std::string Out = Pad + "if (" + expr(If->getCond(), PrecLowest) + ") " +
                      blockOrStmt(If->getThen(), Indent);
    if (If->getElse())
      Out += " else " + blockOrStmt(If->getElse(), Indent);
    return Out + "\n";
  }
  case NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(S);
    return Pad + "while (" + expr(W->getCond(), PrecLowest) + ") " +
           blockOrStmt(W->getBody(), Indent) + "\n";
  }
  case NodeKind::DoWhileStmt: {
    const auto *W = cast<DoWhileStmt>(S);
    return Pad + "do " + blockOrStmt(W->getBody(), Indent) + " while (" +
           expr(W->getCond(), PrecLowest) + ");\n";
  }
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(S);
    std::string Out = Pad + "for (";
    if (F->getInit()) {
      std::string InitText = stmt(F->getInit(), 0);
      // Strip indentation and trailing newline; keep the ';'.
      while (!InitText.empty() &&
             (InitText.back() == '\n' || InitText.back() == ' '))
        InitText.pop_back();
      Out += InitText;
    } else {
      Out += ";";
    }
    Out += " ";
    if (F->getCond())
      Out += expr(F->getCond(), PrecLowest);
    Out += "; ";
    if (F->getUpdate())
      Out += expr(F->getUpdate(), PrecLowest);
    Out += ") " + blockOrStmt(F->getBody(), Indent);
    return Out + "\n";
  }
  case NodeKind::ForInStmt: {
    const auto *F = cast<ForInStmt>(S);
    std::string Out = Pad + "for (";
    if (F->declaresVar())
      Out += "var ";
    Out += F->getVar() + " in " + expr(F->getObject(), PrecLowest) + ") " +
           blockOrStmt(F->getBody(), Indent);
    return Out + "\n";
  }
  case NodeKind::ReturnStmt: {
    const auto *R = cast<ReturnStmt>(S);
    if (R->getArg())
      return Pad + "return " + expr(R->getArg(), PrecLowest) + ";\n";
    return Pad + "return;\n";
  }
  case NodeKind::BreakStmt:
    return Pad + "break;\n";
  case NodeKind::ContinueStmt:
    return Pad + "continue;\n";
  case NodeKind::ThrowStmt:
    return Pad + "throw " + expr(cast<ThrowStmt>(S)->getArg(), PrecLowest) +
           ";\n";
  case NodeKind::TryStmt: {
    const auto *T = cast<TryStmt>(S);
    std::string Out = Pad + "try " + blockOrStmt(T->getBlock(), Indent);
    if (T->getCatchBlock())
      Out += " catch (" + T->getCatchParam() + ") " +
             blockOrStmt(T->getCatchBlock(), Indent);
    if (T->getFinallyBlock())
      Out += " finally " + blockOrStmt(T->getFinallyBlock(), Indent);
    return Out + "\n";
  }
  case NodeKind::EmptyStmt:
    return Pad + ";\n";
  case NodeKind::SwitchStmt: {
    const auto *Sw = cast<SwitchStmt>(S);
    std::string Out =
        Pad + "switch (" + expr(Sw->getDisc(), PrecLowest) + ") {\n";
    for (const auto &Clause : Sw->getClauses()) {
      if (Clause.Test)
        Out += Pad + "case " + expr(Clause.Test, PrecLowest) + ":\n";
      else
        Out += Pad + "default:\n";
      for (const Stmt *Child : Clause.Body)
        Out += stmt(Child, Indent + 1);
    }
    return Out + Pad + "}\n";
  }
  default:
    assert(false && "expression kind in statement printer");
    return Pad + "<bad-stmt>;\n";
  }
}

} // namespace

std::string dda::printExpr(const Expr *E) {
  Printer P;
  return P.expr(E, PrecLowest);
}

std::string dda::printStmt(const Stmt *S, unsigned Indent) {
  Printer P;
  return P.stmt(S, Indent);
}

std::string dda::printProgram(const Program &Prog) {
  std::string Out;
  for (const Stmt *S : Prog.Body)
    Out += printStmt(S, 0);
  return Out;
}
