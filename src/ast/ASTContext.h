//===- ASTContext.h - Ownership arena and factory for AST nodes -*- C++ -*-==//
///
/// \file
/// Owns every AST node of a program, including nodes created later by the
/// specializer (clones) and by runtime `eval` (parsed at run time and spliced
/// into the same context, mirroring how the paper's implementation recursively
/// instruments eval'd code). Nodes reference children via raw pointers that
/// stay valid for the context's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_AST_ASTCONTEXT_H
#define DDA_AST_ASTCONTEXT_H

#include "ast/AST.h"

#include <cassert>
#include <memory>
#include <utility>
#include <vector>

namespace dda {

/// A parsed program: top-level statements plus the arena that owns them.
class ASTContext {
public:
  ASTContext() = default;
  /// Overlay context whose NodeIDs continue from \p FirstID. The parallel
  /// analysis engine gives each worker one of these (based at the shared
  /// program's nextID) to receive runtime-eval'd nodes, so concurrent seeds
  /// never mutate the shared program and each seed's eval'd code gets the
  /// same NodeIDs regardless of thread count.
  explicit ASTContext(NodeID FirstID) : NextID(FirstID) {}
  ASTContext(const ASTContext &) = delete;
  ASTContext &operator=(const ASTContext &) = delete;

  /// Allocates a node of type \p T, assigning it the next NodeID.
  template <typename T, typename... Args> T *create(Args &&...A) {
    auto Owned = std::make_unique<T>(NextID++, std::forward<Args>(A)...);
    T *Raw = Owned.get();
    Nodes.emplace_back(std::move(Owned));
    return Raw;
  }

  /// Allocates a node that reuses an existing NodeID. Used by the specializer
  /// so that clones keep the program-point identity of the original node and
  /// determinacy facts keyed by that point still apply.
  template <typename T, typename... Args> T *createWithID(NodeID ID, Args &&...A) {
    auto Owned = std::make_unique<T>(ID, std::forward<Args>(A)...);
    T *Raw = Owned.get();
    Nodes.emplace_back(std::move(Owned));
    return Raw;
  }

  NodeID nextID() const { return NextID; }
  size_t nodeCount() const { return Nodes.size(); }

  /// Discards every node created after a checkpoint (captured as
  /// nextID()/nodeCount()) and resets the ID sequence, so code parsed by
  /// `eval` during a rolled-back speculative execution is re-parsed with the
  /// same NodeIDs when the work is rerun sequentially. Callers must not
  /// retain pointers into the discarded suffix.
  void rollbackTo(NodeID Next, size_t Count) {
    assert(Count <= Nodes.size() && "rollback past a later checkpoint");
    // erase, not resize: OwnedNode is move-only and never default-constructed.
    Nodes.erase(Nodes.begin() + static_cast<ptrdiff_t>(Count), Nodes.end());
    NextID = Next;
  }

private:
  // unique_ptr<Node> would need a public virtual destructor; nodes are
  // POD-like, so store them type-erased with a deleting thunk instead.
  struct Erased {
    void *Ptr;
    void (*Delete)(void *);
  };

  template <typename T> struct Deleter {
    static void destroy(void *P) { delete static_cast<T *>(P); }
  };

  class OwnedNode {
  public:
    template <typename T>
    explicit OwnedNode(std::unique_ptr<T> P)
        : Storage{P.release(), &Deleter<T>::destroy} {}
    OwnedNode(OwnedNode &&Other) noexcept : Storage(Other.Storage) {
      Other.Storage.Ptr = nullptr;
    }
    OwnedNode &operator=(OwnedNode &&Other) noexcept {
      if (this != &Other) {
        reset();
        Storage = Other.Storage;
        Other.Storage.Ptr = nullptr;
      }
      return *this;
    }
    OwnedNode(const OwnedNode &) = delete;
    OwnedNode &operator=(const OwnedNode &) = delete;
    ~OwnedNode() { reset(); }

  private:
    void reset() {
      if (Storage.Ptr)
        Storage.Delete(Storage.Ptr);
      Storage.Ptr = nullptr;
    }
    Erased Storage;
  };

  std::vector<OwnedNode> Nodes;
  NodeID NextID = 1;
};

/// A whole MiniJS program: the arena plus the ordered top-level statements.
struct Program {
  std::shared_ptr<ASTContext> Context = std::make_shared<ASTContext>();
  std::vector<Stmt *> Body;
};

} // namespace dda

#endif // DDA_AST_ASTCONTEXT_H
