//===- ASTWalk.h - Generic AST traversal -------------------------*- C++ -*-==//
///
/// \file
/// Child enumeration and pre-order traversal over the AST, used by the
/// static analyses, the specializer, and tests that need to locate nodes by
/// kind or source line.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_AST_ASTWALK_H
#define DDA_AST_ASTWALK_H

#include "ast/ASTContext.h"

#include <functional>

namespace dda {

/// Invokes \p F on every direct child of \p N (expressions and statements).
void forEachChild(const Node *N, const std::function<void(const Node *)> &F);

/// Pre-order walk of the subtree rooted at \p N. If \p F returns false the
/// walk does not descend into that node's children.
void walkPreOrder(const Node *N, const std::function<bool(const Node *)> &F);

/// Pre-order walk of a whole program.
void walkProgram(const Program &P, const std::function<bool(const Node *)> &F);

/// Finds the first node (in pre-order) satisfying \p Pred, or null.
const Node *findNode(const Program &P,
                     const std::function<bool(const Node *)> &Pred);

/// Finds the first node of the given kind on the given source line.
const Node *findNodeOnLine(const Program &P, NodeKind Kind, uint32_t Line);

} // namespace dda

#endif // DDA_AST_ASTWALK_H
