//===- AST.h - MiniJS abstract syntax tree -----------------------*- C++ -*-==//
///
/// \file
/// AST node hierarchy for MiniJS. Nodes use LLVM-style kind tags (no RTTI)
/// and are owned by an ASTContext arena; child links are raw non-owning
/// pointers. Every node carries a stable NodeID which serves as the *program
/// point* identifier used by the determinacy analysis (the paper qualifies
/// facts by program point plus calling context), and a SourceRange so that
/// facts can be printed with line numbers as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_AST_AST_H
#define DDA_AST_AST_H

#include "support/Interner.h"
#include "support/SourceLocation.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace dda {

class Stmt;
class Expr;
class FunctionExpr;

/// Stable identifier of an AST node; doubles as the program-point id.
using NodeID = uint32_t;

/// Discriminator for the node hierarchy.
enum class NodeKind : uint8_t {
  // Expressions.
  NumberLiteral,
  StringLiteral,
  BooleanLiteral,
  NullLiteral,
  UndefinedLiteral,
  Identifier,
  This,
  ArrayLiteral,
  ObjectLiteral,
  Function,
  Member,
  Call,
  New,
  Unary,
  Update,
  Binary,
  Logical,
  Assign,
  Conditional,
  // Statements.
  ExpressionStmt,
  VarDeclStmt,
  FunctionDeclStmt,
  BlockStmt,
  IfStmt,
  WhileStmt,
  DoWhileStmt,
  ForStmt,
  ForInStmt,
  ReturnStmt,
  BreakStmt,
  ContinueStmt,
  ThrowStmt,
  TryStmt,
  EmptyStmt,
  SwitchStmt,
};

/// Returns the mnemonic name of a node kind ("Call", "IfStmt", ...).
const char *nodeKindName(NodeKind Kind);

/// Common base of expressions and statements.
class Node {
public:
  NodeKind getKind() const { return Kind; }
  NodeID getID() const { return ID; }
  SourceRange getRange() const { return Range; }
  SourceLoc getLoc() const { return Range.Begin; }
  uint32_t getLine() const { return Range.Begin.Line; }

  void setRange(SourceRange R) { Range = R; }

  /// Memoized structural Merkle hash (see ast/StructuralHash.h); 0 means
  /// "not yet computed" — subtreeHash() fills it lazily. The hash covers
  /// kinds, atoms, literals, and children only — never NodeIDs or source
  /// positions — so byte-identical subtrees at different positions (or in
  /// different programs) hash equal. Mutable because hashing is a pure
  /// derived attribute over an otherwise-immutable tree.
  uint64_t structuralHashMemo() const { return StructHash; }
  void setStructuralHashMemo(uint64_t H) const { StructHash = H; }

protected:
  Node(NodeKind Kind, NodeID ID, SourceRange Range)
      : Kind(Kind), ID(ID), Range(Range) {}
  ~Node() = default;

private:
  NodeKind Kind;
  NodeID ID;
  SourceRange Range;
  mutable uint64_t StructHash = 0;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all expressions.
class Expr : public Node {
protected:
  using Node::Node;

public:
  static bool classof(const Node *N) {
    return N->getKind() <= NodeKind::Conditional;
  }
};

/// Numeric literal, e.g. `23`, `0x1f`, `31.4`.
class NumberLiteral : public Expr {
public:
  NumberLiteral(NodeID ID, SourceRange R, double Value)
      : Expr(NodeKind::NumberLiteral, ID, R), Value(Value) {}
  double getValue() const { return Value; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::NumberLiteral;
  }

private:
  double Value;
};

/// String literal, e.g. `"width"`. The spelling is interned once at
/// construction so evaluation never re-hashes the characters.
class StringLiteral : public Expr {
public:
  StringLiteral(NodeID ID, SourceRange R, std::string Value)
      : Expr(NodeKind::StringLiteral, ID, R), Value(std::move(Value)),
        Atom(intern(this->Value)) {}
  const std::string &getValue() const { return Value; }
  StringId getAtom() const { return Atom; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::StringLiteral;
  }

private:
  std::string Value;
  StringId Atom;
};

/// `true` or `false`.
class BooleanLiteral : public Expr {
public:
  BooleanLiteral(NodeID ID, SourceRange R, bool Value)
      : Expr(NodeKind::BooleanLiteral, ID, R), Value(Value) {}
  bool getValue() const { return Value; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::BooleanLiteral;
  }

private:
  bool Value;
};

/// `null`.
class NullLiteral : public Expr {
public:
  NullLiteral(NodeID ID, SourceRange R) : Expr(NodeKind::NullLiteral, ID, R) {}
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::NullLiteral;
  }
};

/// `undefined`.
class UndefinedLiteral : public Expr {
public:
  UndefinedLiteral(NodeID ID, SourceRange R)
      : Expr(NodeKind::UndefinedLiteral, ID, R) {}
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::UndefinedLiteral;
  }
};

/// A variable reference. The name is interned once at construction.
class Identifier : public Expr {
public:
  Identifier(NodeID ID, SourceRange R, std::string Name)
      : Expr(NodeKind::Identifier, ID, R), Name(std::move(Name)),
        Atom(intern(this->Name)) {}
  const std::string &getName() const { return Name; }
  StringId getAtom() const { return Atom; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::Identifier;
  }

private:
  std::string Name;
  StringId Atom;
};

/// `this`.
class ThisExpr : public Expr {
public:
  ThisExpr(NodeID ID, SourceRange R) : Expr(NodeKind::This, ID, R) {}
  static bool classof(const Node *N) { return N->getKind() == NodeKind::This; }
};

/// `[e1, e2, ...]`.
class ArrayLiteral : public Expr {
public:
  ArrayLiteral(NodeID ID, SourceRange R, std::vector<Expr *> Elements)
      : Expr(NodeKind::ArrayLiteral, ID, R), Elements(std::move(Elements)) {}
  const std::vector<Expr *> &getElements() const { return Elements; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::ArrayLiteral;
  }

private:
  std::vector<Expr *> Elements;
};

/// `{k1: e1, k2: e2, ...}`. Keys are identifier or string-literal spellings.
class ObjectLiteral : public Expr {
public:
  struct Property {
    std::string Key;
    Expr *Value;
    StringId KeyAtom; ///< Filled by the ObjectLiteral constructor.
  };
  ObjectLiteral(NodeID ID, SourceRange R, std::vector<Property> Properties)
      : Expr(NodeKind::ObjectLiteral, ID, R),
        Properties(std::move(Properties)) {
    for (Property &P : this->Properties)
      P.KeyAtom = intern(P.Key);
  }
  const std::vector<Property> &getProperties() const { return Properties; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::ObjectLiteral;
  }

private:
  std::vector<Property> Properties;
};

/// `function name(params) { body }`, used both as an expression and as the
/// payload of a function declaration statement.
class FunctionExpr : public Expr {
public:
  FunctionExpr(NodeID ID, SourceRange R, std::string Name,
               std::vector<std::string> Params, Stmt *Body)
      : Expr(NodeKind::Function, ID, R), Name(std::move(Name)),
        Params(std::move(Params)), Body(Body),
        NameAtom(intern(this->Name)) {
    ParamAtoms.reserve(this->Params.size());
    for (const std::string &P : this->Params)
      ParamAtoms.push_back(intern(P));
  }
  /// Empty for anonymous functions.
  const std::string &getName() const { return Name; }
  const std::vector<std::string> &getParams() const { return Params; }
  StringId getNameAtom() const { return NameAtom; }
  const std::vector<StringId> &getParamAtoms() const { return ParamAtoms; }
  Stmt *getBody() const { return Body; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::Function;
  }

private:
  std::string Name;
  std::vector<std::string> Params;
  Stmt *Body;
  StringId NameAtom;
  std::vector<StringId> ParamAtoms;
};

/// `obj.prop` (Computed == false) or `obj[expr]` (Computed == true).
class MemberExpr : public Expr {
public:
  MemberExpr(NodeID ID, SourceRange R, Expr *Object, std::string Property)
      : Expr(NodeKind::Member, ID, R), Object(Object),
        Property(std::move(Property)), Index(nullptr),
        PropAtom(intern(this->Property)), Computed(false) {}
  MemberExpr(NodeID ID, SourceRange R, Expr *Object, Expr *Index)
      : Expr(NodeKind::Member, ID, R), Object(Object), Index(Index),
        Computed(true) {}
  Expr *getObject() const { return Object; }
  bool isComputed() const { return Computed; }
  /// Only valid when !isComputed().
  const std::string &getProperty() const {
    assert(!Computed && "static property of a computed member access");
    return Property;
  }
  /// Interned property atom; only valid when !isComputed().
  StringId getPropertyAtom() const {
    assert(!Computed && "static property of a computed member access");
    return PropAtom;
  }
  /// Only valid when isComputed().
  Expr *getIndex() const {
    assert(Computed && "index of a static member access");
    return Index;
  }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::Member;
  }

private:
  Expr *Object;
  std::string Property;
  Expr *Index;
  StringId PropAtom;
  bool Computed;
};

/// `callee(args)`.
class CallExpr : public Expr {
public:
  CallExpr(NodeID ID, SourceRange R, Expr *Callee, std::vector<Expr *> Args)
      : Expr(NodeKind::Call, ID, R), Callee(Callee), Args(std::move(Args)) {}
  Expr *getCallee() const { return Callee; }
  const std::vector<Expr *> &getArgs() const { return Args; }
  static bool classof(const Node *N) { return N->getKind() == NodeKind::Call; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
};

/// `new Callee(args)`.
class NewExpr : public Expr {
public:
  NewExpr(NodeID ID, SourceRange R, Expr *Callee, std::vector<Expr *> Args)
      : Expr(NodeKind::New, ID, R), Callee(Callee), Args(std::move(Args)) {}
  Expr *getCallee() const { return Callee; }
  const std::vector<Expr *> &getArgs() const { return Args; }
  static bool classof(const Node *N) { return N->getKind() == NodeKind::New; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
};

/// Unary operators.
enum class UnaryOp : uint8_t { Not, Minus, Plus, Typeof, Delete, Void };

/// `!e`, `-e`, `typeof e`, `delete o.p`, ...
class UnaryExpr : public Expr {
public:
  UnaryExpr(NodeID ID, SourceRange R, UnaryOp Op, Expr *Operand)
      : Expr(NodeKind::Unary, ID, R), Op(Op), Operand(Operand) {}
  UnaryOp getOp() const { return Op; }
  Expr *getOperand() const { return Operand; }
  static bool classof(const Node *N) { return N->getKind() == NodeKind::Unary; }

private:
  UnaryOp Op;
  Expr *Operand;
};

/// `++x`, `x--`, etc.
class UpdateExpr : public Expr {
public:
  UpdateExpr(NodeID ID, SourceRange R, bool IsIncrement, bool IsPrefix,
             Expr *Operand)
      : Expr(NodeKind::Update, ID, R), Operand(Operand),
        IsIncrement(IsIncrement), IsPrefix(IsPrefix) {}
  bool isIncrement() const { return IsIncrement; }
  bool isPrefix() const { return IsPrefix; }
  Expr *getOperand() const { return Operand; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::Update;
  }

private:
  Expr *Operand;
  bool IsIncrement;
  bool IsPrefix;
};

/// Strict binary (non-short-circuiting) operators.
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,       // ==
  NotEq,    // !=
  StrictEq, // ===
  StrictNotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Instanceof,
  In,
};

/// Returns the source spelling of a binary operator.
const char *binaryOpSpelling(BinaryOp Op);

/// `a + b`, `a < b`, ...
class BinaryExpr : public Expr {
public:
  BinaryExpr(NodeID ID, SourceRange R, BinaryOp Op, Expr *LHS, Expr *RHS)
      : Expr(NodeKind::Binary, ID, R), Op(Op), LHS(LHS), RHS(RHS) {}
  BinaryOp getOp() const { return Op; }
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::Binary;
  }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

/// Short-circuiting `&&` / `||`.
class LogicalExpr : public Expr {
public:
  LogicalExpr(NodeID ID, SourceRange R, bool IsAnd, Expr *LHS, Expr *RHS)
      : Expr(NodeKind::Logical, ID, R), LHS(LHS), RHS(RHS), IsAnd(IsAnd) {}
  bool isAnd() const { return IsAnd; }
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::Logical;
  }

private:
  Expr *LHS;
  Expr *RHS;
  bool IsAnd;
};

/// Compound-assignment operator payload: plain `=` or the arithmetic op
/// applied before storing.
enum class AssignOp : uint8_t { Assign, Add, Sub, Mul, Div, Mod };

/// `target = value`, `target += value`, ... where target is an Identifier or
/// a MemberExpr.
class AssignExpr : public Expr {
public:
  AssignExpr(NodeID ID, SourceRange R, AssignOp Op, Expr *Target, Expr *Value)
      : Expr(NodeKind::Assign, ID, R), Op(Op), Target(Target), Value(Value) {}
  AssignOp getOp() const { return Op; }
  Expr *getTarget() const { return Target; }
  Expr *getValue() const { return Value; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::Assign;
  }

private:
  AssignOp Op;
  Expr *Target;
  Expr *Value;
};

/// `cond ? then : else`.
class ConditionalExpr : public Expr {
public:
  ConditionalExpr(NodeID ID, SourceRange R, Expr *Cond, Expr *Then, Expr *Else)
      : Expr(NodeKind::Conditional, ID, R), Cond(Cond), Then(Then),
        Else(Else) {}
  Expr *getCond() const { return Cond; }
  Expr *getThen() const { return Then; }
  Expr *getElse() const { return Else; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::Conditional;
  }

private:
  Expr *Cond;
  Expr *Then;
  Expr *Else;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all statements.
class Stmt : public Node {
protected:
  using Node::Node;

public:
  static bool classof(const Node *N) {
    return N->getKind() >= NodeKind::ExpressionStmt;
  }
};

/// An expression evaluated for its effects.
class ExpressionStmt : public Stmt {
public:
  ExpressionStmt(NodeID ID, SourceRange R, Expr *E)
      : Stmt(NodeKind::ExpressionStmt, ID, R), E(E) {}
  Expr *getExpr() const { return E; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::ExpressionStmt;
  }

private:
  Expr *E;
};

/// `var x = e, y, z = f;`.
class VarDeclStmt : public Stmt {
public:
  struct Declarator {
    std::string Name;
    Expr *Init; ///< May be null.
    StringId Atom; ///< Filled by the VarDeclStmt constructor.
  };
  VarDeclStmt(NodeID ID, SourceRange R, std::vector<Declarator> Decls)
      : Stmt(NodeKind::VarDeclStmt, ID, R), Decls(std::move(Decls)) {
    for (Declarator &D : this->Decls)
      D.Atom = intern(D.Name);
  }
  const std::vector<Declarator> &getDeclarators() const { return Decls; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::VarDeclStmt;
  }

private:
  std::vector<Declarator> Decls;
};

/// `function f(...) {...}` in statement position (hoisted).
class FunctionDeclStmt : public Stmt {
public:
  FunctionDeclStmt(NodeID ID, SourceRange R, FunctionExpr *Function)
      : Stmt(NodeKind::FunctionDeclStmt, ID, R), Function(Function) {}
  FunctionExpr *getFunction() const { return Function; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::FunctionDeclStmt;
  }

private:
  FunctionExpr *Function;
};

/// `{ s1; s2; ... }`.
class BlockStmt : public Stmt {
public:
  BlockStmt(NodeID ID, SourceRange R, std::vector<Stmt *> Body)
      : Stmt(NodeKind::BlockStmt, ID, R), Body(std::move(Body)) {}
  const std::vector<Stmt *> &getBody() const { return Body; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::BlockStmt;
  }

private:
  std::vector<Stmt *> Body;
};

/// `if (cond) then else else`.
class IfStmt : public Stmt {
public:
  IfStmt(NodeID ID, SourceRange R, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(NodeKind::IfStmt, ID, R), Cond(Cond), Then(Then), Else(Else) {}
  Expr *getCond() const { return Cond; }
  Stmt *getThen() const { return Then; }
  Stmt *getElse() const { return Else; } ///< May be null.
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::IfStmt;
  }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

/// `while (cond) body`.
class WhileStmt : public Stmt {
public:
  WhileStmt(NodeID ID, SourceRange R, Expr *Cond, Stmt *Body)
      : Stmt(NodeKind::WhileStmt, ID, R), Cond(Cond), Body(Body) {}
  Expr *getCond() const { return Cond; }
  Stmt *getBody() const { return Body; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::WhileStmt;
  }

private:
  Expr *Cond;
  Stmt *Body;
};

/// `do body while (cond);`.
class DoWhileStmt : public Stmt {
public:
  DoWhileStmt(NodeID ID, SourceRange R, Stmt *Body, Expr *Cond)
      : Stmt(NodeKind::DoWhileStmt, ID, R), Cond(Cond), Body(Body) {}
  Expr *getCond() const { return Cond; }
  Stmt *getBody() const { return Body; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::DoWhileStmt;
  }

private:
  Expr *Cond;
  Stmt *Body;
};

/// `for (init; cond; update) body`; any of the three headers may be null.
class ForStmt : public Stmt {
public:
  ForStmt(NodeID ID, SourceRange R, Stmt *Init, Expr *Cond, Expr *Update,
          Stmt *Body)
      : Stmt(NodeKind::ForStmt, ID, R), Init(Init), Cond(Cond),
        Update(Update), Body(Body) {}
  Stmt *getInit() const { return Init; }     ///< VarDeclStmt/ExpressionStmt.
  Expr *getCond() const { return Cond; }     ///< May be null.
  Expr *getUpdate() const { return Update; } ///< May be null.
  Stmt *getBody() const { return Body; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::ForStmt;
  }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Update;
  Stmt *Body;
};

/// `for (var x in obj) body` / `for (x in obj) body`.
class ForInStmt : public Stmt {
public:
  ForInStmt(NodeID ID, SourceRange R, std::string Var, bool Declares,
            Expr *Object, Stmt *Body)
      : Stmt(NodeKind::ForInStmt, ID, R), Var(std::move(Var)), Object(Object),
        Body(Body), VarAtom(intern(this->Var)), Declares(Declares) {}
  const std::string &getVar() const { return Var; }
  StringId getVarAtom() const { return VarAtom; }
  bool declaresVar() const { return Declares; }
  Expr *getObject() const { return Object; }
  Stmt *getBody() const { return Body; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::ForInStmt;
  }

private:
  std::string Var;
  Expr *Object;
  Stmt *Body;
  StringId VarAtom;
  bool Declares;
};

/// `return e;` / `return;`.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(NodeID ID, SourceRange R, Expr *Arg)
      : Stmt(NodeKind::ReturnStmt, ID, R), Arg(Arg) {}
  Expr *getArg() const { return Arg; } ///< May be null.
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::ReturnStmt;
  }

private:
  Expr *Arg;
};

/// `break;`.
class BreakStmt : public Stmt {
public:
  BreakStmt(NodeID ID, SourceRange R) : Stmt(NodeKind::BreakStmt, ID, R) {}
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::BreakStmt;
  }
};

/// `continue;`.
class ContinueStmt : public Stmt {
public:
  ContinueStmt(NodeID ID, SourceRange R)
      : Stmt(NodeKind::ContinueStmt, ID, R) {}
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::ContinueStmt;
  }
};

/// `throw e;`.
class ThrowStmt : public Stmt {
public:
  ThrowStmt(NodeID ID, SourceRange R, Expr *Arg)
      : Stmt(NodeKind::ThrowStmt, ID, R), Arg(Arg) {}
  Expr *getArg() const { return Arg; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::ThrowStmt;
  }

private:
  Expr *Arg;
};

/// `try {..} catch (e) {..} finally {..}`; catch and finally are optional but
/// at least one is present.
class TryStmt : public Stmt {
public:
  TryStmt(NodeID ID, SourceRange R, Stmt *Block, std::string CatchParam,
          Stmt *CatchBlock, Stmt *FinallyBlock)
      : Stmt(NodeKind::TryStmt, ID, R), Block(Block),
        CatchParam(std::move(CatchParam)), CatchBlock(CatchBlock),
        FinallyBlock(FinallyBlock), CatchAtom(intern(this->CatchParam)) {}
  Stmt *getBlock() const { return Block; }
  const std::string &getCatchParam() const { return CatchParam; }
  StringId getCatchAtom() const { return CatchAtom; }
  Stmt *getCatchBlock() const { return CatchBlock; }     ///< May be null.
  Stmt *getFinallyBlock() const { return FinallyBlock; } ///< May be null.
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::TryStmt;
  }

private:
  Stmt *Block;
  std::string CatchParam;
  Stmt *CatchBlock;
  Stmt *FinallyBlock;
  StringId CatchAtom;
};

/// `switch (disc) { case e: ...; default: ...; }`. Clauses execute with
/// fall-through until a `break`.
class SwitchStmt : public Stmt {
public:
  struct Clause {
    Expr *Test; ///< Null for the default clause.
    std::vector<Stmt *> Body;
  };
  SwitchStmt(NodeID ID, SourceRange R, Expr *Disc, std::vector<Clause> Clauses)
      : Stmt(NodeKind::SwitchStmt, ID, R), Disc(Disc),
        Clauses(std::move(Clauses)) {}
  Expr *getDisc() const { return Disc; }
  const std::vector<Clause> &getClauses() const { return Clauses; }
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::SwitchStmt;
  }

private:
  Expr *Disc;
  std::vector<Clause> Clauses;
};

/// `;`.
class EmptyStmt : public Stmt {
public:
  EmptyStmt(NodeID ID, SourceRange R) : Stmt(NodeKind::EmptyStmt, ID, R) {}
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::EmptyStmt;
  }
};

//===----------------------------------------------------------------------===//
// Casting helpers (LLVM-style, RTTI-free)
//===----------------------------------------------------------------------===//

template <typename T> bool isa(const Node *N) {
  return N && T::classof(N);
}

template <typename T> T *cast(Node *N) {
  assert(isa<T>(N) && "cast to incompatible node kind");
  return static_cast<T *>(N);
}

template <typename T> const T *cast(const Node *N) {
  assert(isa<T>(N) && "cast to incompatible node kind");
  return static_cast<const T *>(N);
}

template <typename T> T *dyn_cast(Node *N) {
  return isa<T>(N) ? static_cast<T *>(N) : nullptr;
}

template <typename T> const T *dyn_cast(const Node *N) {
  return isa<T>(N) ? static_cast<const T *>(N) : nullptr;
}

} // namespace dda

#endif // DDA_AST_AST_H
