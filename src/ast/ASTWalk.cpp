//===- ASTWalk.cpp --------------------------------------------------------==//

#include "ast/ASTWalk.h"

using namespace dda;

void dda::forEachChild(const Node *N,
                       const std::function<void(const Node *)> &F) {
  auto Visit = [&](const Node *Child) {
    if (Child)
      F(Child);
  };
  switch (N->getKind()) {
  case NodeKind::NumberLiteral:
  case NodeKind::StringLiteral:
  case NodeKind::BooleanLiteral:
  case NodeKind::NullLiteral:
  case NodeKind::UndefinedLiteral:
  case NodeKind::Identifier:
  case NodeKind::This:
  case NodeKind::BreakStmt:
  case NodeKind::ContinueStmt:
  case NodeKind::EmptyStmt:
    return;
  case NodeKind::ArrayLiteral:
    for (const Expr *E : cast<ArrayLiteral>(N)->getElements())
      Visit(E);
    return;
  case NodeKind::ObjectLiteral:
    for (const auto &P : cast<ObjectLiteral>(N)->getProperties())
      Visit(P.Value);
    return;
  case NodeKind::Function:
    Visit(cast<FunctionExpr>(N)->getBody());
    return;
  case NodeKind::Member: {
    const auto *M = cast<MemberExpr>(N);
    Visit(M->getObject());
    if (M->isComputed())
      Visit(M->getIndex());
    return;
  }
  case NodeKind::Call: {
    const auto *C = cast<CallExpr>(N);
    Visit(C->getCallee());
    for (const Expr *A : C->getArgs())
      Visit(A);
    return;
  }
  case NodeKind::New: {
    const auto *C = cast<NewExpr>(N);
    Visit(C->getCallee());
    for (const Expr *A : C->getArgs())
      Visit(A);
    return;
  }
  case NodeKind::Unary:
    Visit(cast<UnaryExpr>(N)->getOperand());
    return;
  case NodeKind::Update:
    Visit(cast<UpdateExpr>(N)->getOperand());
    return;
  case NodeKind::Binary:
    Visit(cast<BinaryExpr>(N)->getLHS());
    Visit(cast<BinaryExpr>(N)->getRHS());
    return;
  case NodeKind::Logical:
    Visit(cast<LogicalExpr>(N)->getLHS());
    Visit(cast<LogicalExpr>(N)->getRHS());
    return;
  case NodeKind::Assign:
    Visit(cast<AssignExpr>(N)->getTarget());
    Visit(cast<AssignExpr>(N)->getValue());
    return;
  case NodeKind::Conditional:
    Visit(cast<ConditionalExpr>(N)->getCond());
    Visit(cast<ConditionalExpr>(N)->getThen());
    Visit(cast<ConditionalExpr>(N)->getElse());
    return;
  case NodeKind::ExpressionStmt:
    Visit(cast<ExpressionStmt>(N)->getExpr());
    return;
  case NodeKind::VarDeclStmt:
    for (const auto &D : cast<VarDeclStmt>(N)->getDeclarators())
      Visit(D.Init);
    return;
  case NodeKind::FunctionDeclStmt:
    Visit(cast<FunctionDeclStmt>(N)->getFunction());
    return;
  case NodeKind::BlockStmt:
    for (const Stmt *S : cast<BlockStmt>(N)->getBody())
      Visit(S);
    return;
  case NodeKind::IfStmt: {
    const auto *If = cast<IfStmt>(N);
    Visit(If->getCond());
    Visit(If->getThen());
    Visit(If->getElse());
    return;
  }
  case NodeKind::WhileStmt:
    Visit(cast<WhileStmt>(N)->getCond());
    Visit(cast<WhileStmt>(N)->getBody());
    return;
  case NodeKind::DoWhileStmt:
    Visit(cast<DoWhileStmt>(N)->getBody());
    Visit(cast<DoWhileStmt>(N)->getCond());
    return;
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(N);
    Visit(F->getInit());
    Visit(F->getCond());
    Visit(F->getUpdate());
    Visit(F->getBody());
    return;
  }
  case NodeKind::ForInStmt:
    Visit(cast<ForInStmt>(N)->getObject());
    Visit(cast<ForInStmt>(N)->getBody());
    return;
  case NodeKind::ReturnStmt:
    Visit(cast<ReturnStmt>(N)->getArg());
    return;
  case NodeKind::ThrowStmt:
    Visit(cast<ThrowStmt>(N)->getArg());
    return;
  case NodeKind::TryStmt: {
    const auto *T = cast<TryStmt>(N);
    Visit(T->getBlock());
    Visit(T->getCatchBlock());
    Visit(T->getFinallyBlock());
    return;
  }
  case NodeKind::SwitchStmt: {
    const auto *S = cast<SwitchStmt>(N);
    Visit(S->getDisc());
    for (const auto &Clause : S->getClauses()) {
      Visit(Clause.Test);
      for (const Stmt *Child : Clause.Body)
        Visit(Child);
    }
    return;
  }
  }
}

void dda::walkPreOrder(const Node *N,
                       const std::function<bool(const Node *)> &F) {
  if (!N || !F(N))
    return;
  forEachChild(N, [&](const Node *Child) { walkPreOrder(Child, F); });
}

void dda::walkProgram(const Program &P,
                      const std::function<bool(const Node *)> &F) {
  for (const Stmt *S : P.Body)
    walkPreOrder(S, F);
}

const Node *dda::findNode(const Program &P,
                          const std::function<bool(const Node *)> &Pred) {
  const Node *Found = nullptr;
  walkProgram(P, [&](const Node *N) {
    if (Found)
      return false;
    if (Pred(N)) {
      Found = N;
      return false;
    }
    return true;
  });
  return Found;
}

const Node *dda::findNodeOnLine(const Program &P, NodeKind Kind,
                                uint32_t Line) {
  return findNode(P, [&](const Node *N) {
    return N->getKind() == Kind && N->getLine() == Line;
  });
}
