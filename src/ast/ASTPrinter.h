//===- ASTPrinter.h - Render an AST back to MiniJS source --------*- C++ -*-==//
///
/// \file
/// Pretty-prints an AST as MiniJS source. Used to emit the residual programs
/// produced by the specializer, to render expressions inside printed
/// determinacy facts (the `⟦e⟧` part), and by round-trip parser tests.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_AST_ASTPRINTER_H
#define DDA_AST_ASTPRINTER_H

#include "ast/ASTContext.h"

#include <string>

namespace dda {

/// Renders \p E as a single-line expression.
std::string printExpr(const Expr *E);

/// Renders \p S with indentation, terminated by a newline.
std::string printStmt(const Stmt *S, unsigned Indent = 0);

/// Renders a whole program.
std::string printProgram(const Program &P);

} // namespace dda

#endif // DDA_AST_ASTPRINTER_H
