//===- AST.cpp ------------------------------------------------------------==//

#include "ast/AST.h"

using namespace dda;

const char *dda::nodeKindName(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::NumberLiteral:
    return "NumberLiteral";
  case NodeKind::StringLiteral:
    return "StringLiteral";
  case NodeKind::BooleanLiteral:
    return "BooleanLiteral";
  case NodeKind::NullLiteral:
    return "NullLiteral";
  case NodeKind::UndefinedLiteral:
    return "UndefinedLiteral";
  case NodeKind::Identifier:
    return "Identifier";
  case NodeKind::This:
    return "This";
  case NodeKind::ArrayLiteral:
    return "ArrayLiteral";
  case NodeKind::ObjectLiteral:
    return "ObjectLiteral";
  case NodeKind::Function:
    return "Function";
  case NodeKind::Member:
    return "Member";
  case NodeKind::Call:
    return "Call";
  case NodeKind::New:
    return "New";
  case NodeKind::Unary:
    return "Unary";
  case NodeKind::Update:
    return "Update";
  case NodeKind::Binary:
    return "Binary";
  case NodeKind::Logical:
    return "Logical";
  case NodeKind::Assign:
    return "Assign";
  case NodeKind::Conditional:
    return "Conditional";
  case NodeKind::ExpressionStmt:
    return "ExpressionStmt";
  case NodeKind::VarDeclStmt:
    return "VarDeclStmt";
  case NodeKind::FunctionDeclStmt:
    return "FunctionDeclStmt";
  case NodeKind::BlockStmt:
    return "BlockStmt";
  case NodeKind::IfStmt:
    return "IfStmt";
  case NodeKind::WhileStmt:
    return "WhileStmt";
  case NodeKind::DoWhileStmt:
    return "DoWhileStmt";
  case NodeKind::ForStmt:
    return "ForStmt";
  case NodeKind::ForInStmt:
    return "ForInStmt";
  case NodeKind::ReturnStmt:
    return "ReturnStmt";
  case NodeKind::BreakStmt:
    return "BreakStmt";
  case NodeKind::ContinueStmt:
    return "ContinueStmt";
  case NodeKind::ThrowStmt:
    return "ThrowStmt";
  case NodeKind::TryStmt:
    return "TryStmt";
  case NodeKind::EmptyStmt:
    return "EmptyStmt";
  case NodeKind::SwitchStmt:
    return "SwitchStmt";
  }
  return "Unknown";
}

const char *dda::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::NotEq:
    return "!=";
  case BinaryOp::StrictEq:
    return "===";
  case BinaryOp::StrictNotEq:
    return "!==";
  case BinaryOp::Less:
    return "<";
  case BinaryOp::LessEq:
    return "<=";
  case BinaryOp::Greater:
    return ">";
  case BinaryOp::GreaterEq:
    return ">=";
  case BinaryOp::Instanceof:
    return "instanceof";
  case BinaryOp::In:
    return "in";
  }
  return "?";
}
