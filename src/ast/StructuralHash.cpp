//===- StructuralHash.cpp - Content-addressed AST subtree identity --------===//

#include "ast/StructuralHash.h"

#include "ast/AST.h"

#include <cstring>

using namespace dda;

uint64_t dda::hashBytesFnv(const void *Data, size_t Len, uint64_t Seed) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

uint64_t dda::mixHash(uint64_t A, uint64_t B) {
  // splitmix64-style finalizer over the concatenation; order-dependent.
  uint64_t H = A + 0x9e3779b97f4a7c15ull + (B ^ (B >> 30)) * 0xbf58476d1ce4e5b9ull;
  H = (H ^ (H >> 27)) * 0x94d049bb133111ebull;
  return H ^ (H >> 31);
}

namespace {

/// Incremental hasher for one node: feeds tag bytes, scalars, strings, and
/// child hashes in a fixed per-kind order so the encoding is prefix-free
/// enough in practice (every child slot is preceded by a present/null tag,
/// every string by its length).
class NodeHasher {
public:
  explicit NodeHasher(NodeKind K) : H(0xcbf29ce484222325ull) {
    u8(static_cast<uint8_t>(K));
  }

  void u8(uint8_t V) { bytes(&V, 1); }
  void u32(uint32_t V) { bytes(&V, sizeof(V)); }
  void u64(uint64_t V) { bytes(&V, sizeof(V)); }
  void f64(double V) { bytes(&V, sizeof(V)); } // bit pattern, NaN-exact
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  void child(const Node *N); // present/null tag + recursive hash
  uint64_t done() const { return H ? H : 1; } // reserve 0 for "unmemoized"

private:
  void bytes(const void *Data, size_t Len) { H = hashBytesFnv(Data, Len, H); }
  uint64_t H;
};

uint64_t structuralHashUncached(const Node *N);

void NodeHasher::child(const Node *C) {
  if (!C) {
    u8(0);
    return;
  }
  u8(1);
  u64(subtreeHash(C));
}

uint64_t structuralHashUncached(const Node *N) {
  NodeHasher H(N->getKind());
  switch (N->getKind()) {
  case NodeKind::NumberLiteral:
    H.f64(cast<NumberLiteral>(N)->getValue());
    break;
  case NodeKind::StringLiteral:
    H.str(cast<StringLiteral>(N)->getValue());
    break;
  case NodeKind::BooleanLiteral:
    H.u8(cast<BooleanLiteral>(N)->getValue());
    break;
  case NodeKind::NullLiteral:
  case NodeKind::UndefinedLiteral:
  case NodeKind::This:
  case NodeKind::EmptyStmt:
  case NodeKind::BreakStmt:
  case NodeKind::ContinueStmt:
    break;
  case NodeKind::Identifier:
    H.str(cast<Identifier>(N)->getName());
    break;
  case NodeKind::ArrayLiteral: {
    const auto *A = cast<ArrayLiteral>(N);
    H.u64(A->getElements().size());
    for (const Expr *E : A->getElements())
      H.child(E);
    break;
  }
  case NodeKind::ObjectLiteral: {
    const auto *O = cast<ObjectLiteral>(N);
    H.u64(O->getProperties().size());
    for (const auto &P : O->getProperties()) {
      H.str(P.Key);
      H.child(P.Value);
    }
    break;
  }
  case NodeKind::Function: {
    const auto *F = cast<FunctionExpr>(N);
    H.str(F->getName());
    H.u64(F->getParams().size());
    for (const std::string &P : F->getParams())
      H.str(P);
    H.child(F->getBody());
    break;
  }
  case NodeKind::Member: {
    const auto *M = cast<MemberExpr>(N);
    H.u8(M->isComputed());
    H.child(M->getObject());
    if (M->isComputed())
      H.child(M->getIndex());
    else
      H.str(M->getProperty());
    break;
  }
  case NodeKind::Call: {
    const auto *C = cast<CallExpr>(N);
    H.child(C->getCallee());
    H.u64(C->getArgs().size());
    for (const Expr *A : C->getArgs())
      H.child(A);
    break;
  }
  case NodeKind::New: {
    const auto *C = cast<NewExpr>(N);
    H.child(C->getCallee());
    H.u64(C->getArgs().size());
    for (const Expr *A : C->getArgs())
      H.child(A);
    break;
  }
  case NodeKind::Unary: {
    const auto *U = cast<UnaryExpr>(N);
    H.u8(static_cast<uint8_t>(U->getOp()));
    H.child(U->getOperand());
    break;
  }
  case NodeKind::Update: {
    const auto *U = cast<UpdateExpr>(N);
    H.u8(U->isIncrement());
    H.u8(U->isPrefix());
    H.child(U->getOperand());
    break;
  }
  case NodeKind::Binary: {
    const auto *B = cast<BinaryExpr>(N);
    H.u8(static_cast<uint8_t>(B->getOp()));
    H.child(B->getLHS());
    H.child(B->getRHS());
    break;
  }
  case NodeKind::Logical: {
    const auto *L = cast<LogicalExpr>(N);
    H.u8(L->isAnd());
    H.child(L->getLHS());
    H.child(L->getRHS());
    break;
  }
  case NodeKind::Assign: {
    const auto *A = cast<AssignExpr>(N);
    H.u8(static_cast<uint8_t>(A->getOp()));
    H.child(A->getTarget());
    H.child(A->getValue());
    break;
  }
  case NodeKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(N);
    H.child(C->getCond());
    H.child(C->getThen());
    H.child(C->getElse());
    break;
  }
  case NodeKind::ExpressionStmt:
    H.child(cast<ExpressionStmt>(N)->getExpr());
    break;
  case NodeKind::VarDeclStmt: {
    const auto *V = cast<VarDeclStmt>(N);
    H.u64(V->getDeclarators().size());
    for (const auto &D : V->getDeclarators()) {
      H.str(D.Name);
      H.child(D.Init);
    }
    break;
  }
  case NodeKind::FunctionDeclStmt:
    H.child(cast<FunctionDeclStmt>(N)->getFunction());
    break;
  case NodeKind::BlockStmt: {
    const auto *B = cast<BlockStmt>(N);
    H.u64(B->getBody().size());
    for (const Stmt *S : B->getBody())
      H.child(S);
    break;
  }
  case NodeKind::IfStmt: {
    const auto *I = cast<IfStmt>(N);
    H.child(I->getCond());
    H.child(I->getThen());
    H.child(I->getElse());
    break;
  }
  case NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(N);
    H.child(W->getCond());
    H.child(W->getBody());
    break;
  }
  case NodeKind::DoWhileStmt: {
    const auto *W = cast<DoWhileStmt>(N);
    H.child(W->getCond());
    H.child(W->getBody());
    break;
  }
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(N);
    H.child(F->getInit());
    H.child(F->getCond());
    H.child(F->getUpdate());
    H.child(F->getBody());
    break;
  }
  case NodeKind::ForInStmt: {
    const auto *F = cast<ForInStmt>(N);
    H.str(F->getVar());
    H.u8(F->declaresVar());
    H.child(F->getObject());
    H.child(F->getBody());
    break;
  }
  case NodeKind::ReturnStmt:
    H.child(cast<ReturnStmt>(N)->getArg());
    break;
  case NodeKind::ThrowStmt:
    H.child(cast<ThrowStmt>(N)->getArg());
    break;
  case NodeKind::TryStmt: {
    const auto *T = cast<TryStmt>(N);
    H.child(T->getBlock());
    H.str(T->getCatchParam());
    H.child(T->getCatchBlock());
    H.child(T->getFinallyBlock());
    break;
  }
  case NodeKind::SwitchStmt: {
    const auto *S = cast<SwitchStmt>(N);
    H.child(S->getDisc());
    H.u64(S->getClauses().size());
    for (const auto &C : S->getClauses()) {
      H.child(C.Test);
      H.u64(C.Body.size());
      for (const Stmt *B : C.Body)
        H.child(B);
    }
    break;
  }
  }
  return H.done();
}

/// Positional layout hasher: folds (NodeID, line, column) of every node in
/// the subtree, pre-order, with child-slot present/null tags so the shape
/// is encoded too.
uint64_t positionHashRec(const Node *N, uint64_t H);

uint64_t positionChild(const Node *C, uint64_t H) {
  uint8_t Tag = C != nullptr;
  H = hashBytesFnv(&Tag, 1, H);
  return C ? positionHashRec(C, H) : H;
}

} // namespace

uint64_t dda::subtreeHash(const Node *N) {
  if (uint64_t Memo = N->structuralHashMemo())
    return Memo;
  uint64_t H = structuralHashUncached(N);
  N->setStructuralHashMemo(H);
  return H;
}

namespace {

uint64_t positionHashRec(const Node *N, uint64_t H) {
  struct {
    uint32_t ID, Line, Col;
  } P = {N->getID(), N->getLoc().Line, N->getLoc().Column};
  H = hashBytesFnv(&P, sizeof(P), H);
  switch (N->getKind()) {
  case NodeKind::NumberLiteral:
  case NodeKind::StringLiteral:
  case NodeKind::BooleanLiteral:
  case NodeKind::NullLiteral:
  case NodeKind::UndefinedLiteral:
  case NodeKind::Identifier:
  case NodeKind::This:
  case NodeKind::EmptyStmt:
  case NodeKind::BreakStmt:
  case NodeKind::ContinueStmt:
    break;
  case NodeKind::ArrayLiteral:
    for (const Expr *E : cast<ArrayLiteral>(N)->getElements())
      H = positionChild(E, H);
    break;
  case NodeKind::ObjectLiteral:
    for (const auto &P2 : cast<ObjectLiteral>(N)->getProperties())
      H = positionChild(P2.Value, H);
    break;
  case NodeKind::Function:
    H = positionChild(cast<FunctionExpr>(N)->getBody(), H);
    break;
  case NodeKind::Member: {
    const auto *M = cast<MemberExpr>(N);
    H = positionChild(M->getObject(), H);
    if (M->isComputed())
      H = positionChild(M->getIndex(), H);
    break;
  }
  case NodeKind::Call: {
    const auto *C = cast<CallExpr>(N);
    H = positionChild(C->getCallee(), H);
    for (const Expr *A : C->getArgs())
      H = positionChild(A, H);
    break;
  }
  case NodeKind::New: {
    const auto *C = cast<NewExpr>(N);
    H = positionChild(C->getCallee(), H);
    for (const Expr *A : C->getArgs())
      H = positionChild(A, H);
    break;
  }
  case NodeKind::Unary:
    H = positionChild(cast<UnaryExpr>(N)->getOperand(), H);
    break;
  case NodeKind::Update:
    H = positionChild(cast<UpdateExpr>(N)->getOperand(), H);
    break;
  case NodeKind::Binary: {
    const auto *B = cast<BinaryExpr>(N);
    H = positionChild(B->getLHS(), H);
    H = positionChild(B->getRHS(), H);
    break;
  }
  case NodeKind::Logical: {
    const auto *L = cast<LogicalExpr>(N);
    H = positionChild(L->getLHS(), H);
    H = positionChild(L->getRHS(), H);
    break;
  }
  case NodeKind::Assign: {
    const auto *A = cast<AssignExpr>(N);
    H = positionChild(A->getTarget(), H);
    H = positionChild(A->getValue(), H);
    break;
  }
  case NodeKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(N);
    H = positionChild(C->getCond(), H);
    H = positionChild(C->getThen(), H);
    H = positionChild(C->getElse(), H);
    break;
  }
  case NodeKind::ExpressionStmt:
    H = positionChild(cast<ExpressionStmt>(N)->getExpr(), H);
    break;
  case NodeKind::VarDeclStmt:
    for (const auto &D : cast<VarDeclStmt>(N)->getDeclarators())
      H = positionChild(D.Init, H);
    break;
  case NodeKind::FunctionDeclStmt:
    H = positionChild(cast<FunctionDeclStmt>(N)->getFunction(), H);
    break;
  case NodeKind::BlockStmt:
    for (const Stmt *S : cast<BlockStmt>(N)->getBody())
      H = positionChild(S, H);
    break;
  case NodeKind::IfStmt: {
    const auto *I = cast<IfStmt>(N);
    H = positionChild(I->getCond(), H);
    H = positionChild(I->getThen(), H);
    H = positionChild(I->getElse(), H);
    break;
  }
  case NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(N);
    H = positionChild(W->getCond(), H);
    H = positionChild(W->getBody(), H);
    break;
  }
  case NodeKind::DoWhileStmt: {
    const auto *W = cast<DoWhileStmt>(N);
    H = positionChild(W->getCond(), H);
    H = positionChild(W->getBody(), H);
    break;
  }
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(N);
    H = positionChild(F->getInit(), H);
    H = positionChild(F->getCond(), H);
    H = positionChild(F->getUpdate(), H);
    H = positionChild(F->getBody(), H);
    break;
  }
  case NodeKind::ForInStmt: {
    const auto *F = cast<ForInStmt>(N);
    H = positionChild(F->getObject(), H);
    H = positionChild(F->getBody(), H);
    break;
  }
  case NodeKind::ReturnStmt:
    H = positionChild(cast<ReturnStmt>(N)->getArg(), H);
    break;
  case NodeKind::ThrowStmt:
    H = positionChild(cast<ThrowStmt>(N)->getArg(), H);
    break;
  case NodeKind::TryStmt: {
    const auto *T = cast<TryStmt>(N);
    H = positionChild(T->getBlock(), H);
    H = positionChild(T->getCatchBlock(), H);
    H = positionChild(T->getFinallyBlock(), H);
    break;
  }
  case NodeKind::SwitchStmt: {
    const auto *S = cast<SwitchStmt>(N);
    H = positionChild(S->getDisc(), H);
    for (const auto &C : S->getClauses()) {
      H = positionChild(C.Test, H);
      for (const Stmt *B : C.Body)
        H = positionChild(B, H);
    }
    break;
  }
  }
  return H;
}

} // namespace

uint64_t dda::subtreePositionHash(const Node *N) {
  return positionHashRec(N, 0xcbf29ce484222325ull);
}

std::vector<uint64_t> dda::topLevelHashes(const Program &P) {
  std::vector<uint64_t> Hashes;
  Hashes.reserve(P.Body.size());
  for (const Stmt *S : P.Body)
    Hashes.push_back(subtreeHash(S));
  return Hashes;
}

uint64_t dda::programHash(const Program &P) {
  uint64_t H = 0x2545f4914f6cdd1dull;
  for (const Stmt *S : P.Body)
    H = mixHash(H, subtreeHash(S));
  return H;
}

void dda::warmStructuralHashes(const Program &P) {
  for (const Stmt *S : P.Body)
    (void)subtreeHash(S);
}
