//===- Lexer.cpp ----------------------------------------------------------==//

#include "lexer/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace dda;

const char *dda::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::String:
    return "string";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwFunction:
    return "'function'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwTypeof:
    return "'typeof'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwUndefined:
    return "'undefined'";
  case TokenKind::KwThis:
    return "'this'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwTry:
    return "'try'";
  case TokenKind::KwCatch:
    return "'catch'";
  case TokenKind::KwFinally:
    return "'finally'";
  case TokenKind::KwThrow:
    return "'throw'";
  case TokenKind::KwDelete:
    return "'delete'";
  case TokenKind::KwInstanceof:
    return "'instanceof'";
  case TokenKind::KwSwitch:
    return "'switch'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwDefault:
    return "'default'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::PlusAssign:
    return "'+='";
  case TokenKind::MinusAssign:
    return "'-='";
  case TokenKind::StarAssign:
    return "'*='";
  case TokenKind::SlashAssign:
    return "'/='";
  case TokenKind::PercentAssign:
    return "'%='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::EqEqEq:
    return "'==='";
  case TokenKind::NotEqEq:
    return "'!=='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  }
  return "unknown";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(size_t Ahead) const {
  size_t Index = Pos + Ahead;
  return Index < Source.size() ? Source[Index] : '\0';
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

SourceLoc Lexer::currentLoc() const {
  return SourceLoc(Line, Column, static_cast<uint32_t>(Pos));
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = currentLoc();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
    Token T = makeToken(TokenKind::Number, Loc);
    T.NumberValue = static_cast<double>(
        std::strtoull(Source.substr(Start, Pos - Start).c_str(), nullptr, 16));
    return T;
  }
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    } else {
      // Not an exponent after all (e.g. "3e" followed by an identifier).
      Pos = Save;
    }
  }
  Token T = makeToken(TokenKind::Number, Loc);
  T.NumberValue = std::strtod(Source.substr(Start, Pos - Start).c_str(), nullptr);
  return T;
}

Token Lexer::lexString(SourceLoc Loc, char Quote) {
  std::string Value;
  for (;;) {
    char C = peek();
    if (C == '\0' || C == '\n') {
      Diags.error(Loc, "unterminated string literal");
      Token T = makeToken(TokenKind::Error, Loc);
      return T;
    }
    advance();
    if (C == Quote)
      break;
    if (C == '\\') {
      char Escaped = advance();
      switch (Escaped) {
      case 'n':
        Value += '\n';
        break;
      case 't':
        Value += '\t';
        break;
      case 'r':
        Value += '\r';
        break;
      case '0':
        Value += '\0';
        break;
      case '\\':
        Value += '\\';
        break;
      case '\'':
        Value += '\'';
        break;
      case '"':
        Value += '"';
        break;
      case '\n':
        break; // Line continuation.
      default:
        Value += Escaped;
      }
      continue;
    }
    Value += C;
  }
  Token T = makeToken(TokenKind::String, Loc);
  T.Text = std::move(Value);
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  size_t Start = Pos;
  auto IsPart = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '$';
  };
  while (IsPart(peek()))
    advance();
  std::string Text = Source.substr(Start, Pos - Start);

  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"var", TokenKind::KwVar},
      {"function", TokenKind::KwFunction},
      {"return", TokenKind::KwReturn},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},
      {"for", TokenKind::KwFor},
      {"in", TokenKind::KwIn},
      {"new", TokenKind::KwNew},
      {"typeof", TokenKind::KwTypeof},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"null", TokenKind::KwNull},
      {"undefined", TokenKind::KwUndefined},
      {"this", TokenKind::KwThis},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"try", TokenKind::KwTry},
      {"catch", TokenKind::KwCatch},
      {"finally", TokenKind::KwFinally},
      {"throw", TokenKind::KwThrow},
      {"delete", TokenKind::KwDelete},
      {"instanceof", TokenKind::KwInstanceof},
      {"switch", TokenKind::KwSwitch},
      {"case", TokenKind::KwCase},
      {"default", TokenKind::KwDefault},
  };
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second, Loc);
  Token T = makeToken(TokenKind::Identifier, Loc);
  T.Text = std::move(Text);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc = currentLoc();
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::Eof, Loc);

  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (C == '"' || C == '\'') {
    advance();
    return lexString(Loc, C);
  }
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$')
    return lexIdentifierOrKeyword(Loc);

  advance();
  switch (C) {
  case '{':
    return makeToken(TokenKind::LBrace, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Loc);
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Loc);
  case ';':
    return makeToken(TokenKind::Semi, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case '.':
    return makeToken(TokenKind::Dot, Loc);
  case '?':
    return makeToken(TokenKind::Question, Loc);
  case ':':
    return makeToken(TokenKind::Colon, Loc);
  case '=':
    if (match('=')) {
      if (match('='))
        return makeToken(TokenKind::EqEqEq, Loc);
      return makeToken(TokenKind::EqEq, Loc);
    }
    return makeToken(TokenKind::Assign, Loc);
  case '!':
    if (match('=')) {
      if (match('='))
        return makeToken(TokenKind::NotEqEq, Loc);
      return makeToken(TokenKind::NotEq, Loc);
    }
    return makeToken(TokenKind::Not, Loc);
  case '<':
    return makeToken(match('=') ? TokenKind::LessEq : TokenKind::Less, Loc);
  case '>':
    return makeToken(match('=') ? TokenKind::GreaterEq : TokenKind::Greater,
                     Loc);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Loc);
    if (match('='))
      return makeToken(TokenKind::PlusAssign, Loc);
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Loc);
    if (match('='))
      return makeToken(TokenKind::MinusAssign, Loc);
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    return makeToken(match('=') ? TokenKind::StarAssign : TokenKind::Star, Loc);
  case '/':
    return makeToken(match('=') ? TokenKind::SlashAssign : TokenKind::Slash,
                     Loc);
  case '%':
    return makeToken(match('=') ? TokenKind::PercentAssign : TokenKind::Percent,
                     Loc);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc);
    break;
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc);
    break;
  default:
    break;
  }
  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  return makeToken(TokenKind::Error, Loc);
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = next();
    bool Done = T.is(TokenKind::Eof);
    Tokens.push_back(std::move(T));
    if (Done)
      return Tokens;
  }
}
