//===- Lexer.h - MiniJS tokenizer --------------------------------*- C++ -*-==//
///
/// \file
/// Hand-written tokenizer for the MiniJS subset. Handles decimal and hex
/// numbers, single- and double-quoted strings with escapes, line and block
/// comments, and all operators of the subset. Malformed input produces an
/// Error token and a diagnostic; the lexer always makes progress.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_LEXER_LEXER_H
#define DDA_LEXER_LEXER_H

#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace dda {

/// Tokenizes a MiniJS source buffer.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token.
  Token next();

  /// Lexes the whole buffer (convenience for tests). The final token is Eof.
  std::vector<Token> lexAll();

private:
  char peek(size_t Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();
  SourceLoc currentLoc() const;

  Token makeToken(TokenKind Kind, SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);
  Token lexString(SourceLoc Loc, char Quote);
  Token lexIdentifierOrKeyword(SourceLoc Loc);

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace dda

#endif // DDA_LEXER_LEXER_H
