//===- Token.h - MiniJS token definitions ------------------------*- C++ -*-==//
///
/// \file
/// Token kinds and the Token value type produced by the Lexer.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_LEXER_TOKEN_H
#define DDA_LEXER_TOKEN_H

#include "support/SourceLocation.h"

#include <string>

namespace dda {

/// All token kinds in the MiniJS subset.
enum class TokenKind {
  Eof,
  Error,

  Identifier,
  Number,
  String,

  // Keywords.
  KwVar,
  KwFunction,
  KwReturn,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwIn,
  KwNew,
  KwTypeof,
  KwTrue,
  KwFalse,
  KwNull,
  KwUndefined,
  KwThis,
  KwBreak,
  KwContinue,
  KwTry,
  KwCatch,
  KwFinally,
  KwThrow,
  KwDelete,
  KwInstanceof,
  KwSwitch,
  KwCase,
  KwDefault,

  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Question,
  Colon,

  // Operators.
  Assign,        // =
  PlusAssign,    // +=
  MinusAssign,   // -=
  StarAssign,    // *=
  SlashAssign,   // /=
  PercentAssign, // %=
  EqEq,          // ==
  NotEq,         // !=
  EqEqEq,        // ===
  NotEqEq,       // !==
  Less,          // <
  LessEq,        // <=
  Greater,       // >
  GreaterEq,     // >=
  Plus,          // +
  Minus,         // -
  Star,          // *
  Slash,         // /
  Percent,       // %
  Not,           // !
  AmpAmp,        // &&
  PipePipe,      // ||
  PlusPlus,      // ++
  MinusMinus,    // --
};

/// Returns a human-readable spelling for diagnostics ("'==='", "identifier").
const char *tokenKindName(TokenKind Kind);

/// A single lexed token. String/identifier text and numeric values are
/// materialized eagerly; tokens are small and copied freely.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;        ///< Identifier name or string literal contents.
  double NumberValue = 0;  ///< Value for Number tokens.

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace dda

#endif // DDA_LEXER_TOKEN_H
