//===- Parser.cpp ---------------------------------------------------------==//

#include "parser/Parser.h"

#include "ast/StructuralHash.h"

using namespace dda;

Parser::Parser(const std::string &Source, ASTContext &Context,
               DiagnosticEngine &Diags)
    : Context(Context), Diags(Diags), Lex(Source, Diags) {
  Current = Lex.next();
}

Token Parser::take() {
  Token T = Current;
  PrevEnd = SourceLoc(T.Loc.Line, T.Loc.Column, T.Loc.Offset);
  Current = Lex.next();
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!at(Kind))
    return false;
  take();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Where) {
  if (accept(Kind))
    return true;
  if (!DepthFailed)
    Diags.error(Current.Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Where + ", found " +
                                 tokenKindName(Current.Kind));
  return false;
}

bool Parser::atDepthLimit(SourceLoc Loc) {
  if (Depth < MaxDepth)
    return false;
  if (!DepthFailed) {
    DepthFailed = true;
    Diags.error(Loc, "nesting too deep (exceeds " + std::to_string(MaxDepth) +
                         " levels)");
    // Abandon the rest of the buffer: every pending frame sees EOF and
    // returns without recursing deeper.
    while (!at(TokenKind::Eof))
      take();
  }
  return true;
}

void Parser::expectSemi() {
  // ASI-lite: consume a semicolon when present; otherwise a closing brace or
  // end of input also terminates the statement.
  if (accept(TokenKind::Semi))
    return;
  if (at(TokenKind::RBrace) || at(TokenKind::Eof))
    return;
  // Otherwise assume a newline separated the statements; MiniJS sources in
  // this project always use semicolons, so stay silent and keep parsing.
}

SourceRange Parser::rangeFrom(SourceLoc Begin) const {
  return SourceRange(Begin, PrevEnd);
}

std::vector<Stmt *> Parser::parseTopLevel() {
  std::vector<Stmt *> Body;
  while (!at(TokenKind::Eof)) {
    size_t Before = Context.nodeCount();
    SourceLoc Loc = Current.Loc;
    Stmt *S = parseStatement();
    Body.push_back(S);
    // Recovery: if no progress was made, skip a token to avoid livelock.
    if (Context.nodeCount() == Before && Current.Loc.Offset == Loc.Offset &&
        !at(TokenKind::Eof))
      take();
  }
  return Body;
}

Stmt *Parser::parseStatement() {
  SourceLoc Loc = Current.Loc;
  if (atDepthLimit(Loc))
    return Context.create<EmptyStmt>(SourceRange(Loc, Loc));
  DepthScope Scope(*this);
  switch (Current.Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwVar:
    return parseVarDecl();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDoWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwTry:
    return parseTry();
  case TokenKind::KwThrow:
    return parseThrow();
  case TokenKind::KwSwitch:
    return parseSwitch();
  case TokenKind::KwBreak: {
    take();
    expectSemi();
    return Context.create<BreakStmt>(rangeFrom(Loc));
  }
  case TokenKind::KwContinue: {
    take();
    expectSemi();
    return Context.create<ContinueStmt>(rangeFrom(Loc));
  }
  case TokenKind::Semi: {
    take();
    return Context.create<EmptyStmt>(rangeFrom(Loc));
  }
  case TokenKind::KwFunction: {
    FunctionExpr *F = parseFunction(/*RequireName=*/true);
    return Context.create<FunctionDeclStmt>(rangeFrom(Loc), F);
  }
  default: {
    Expr *E = parseExpression();
    expectSemi();
    return Context.create<ExpressionStmt>(rangeFrom(Loc), E);
  }
  }
}

Stmt *Parser::parseBlock() {
  SourceLoc Loc = Current.Loc;
  expect(TokenKind::LBrace, "to begin block");
  std::vector<Stmt *> Body;
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
    size_t Before = Context.nodeCount();
    SourceLoc StmtLoc = Current.Loc;
    Body.push_back(parseStatement());
    if (Context.nodeCount() == Before && Current.Loc.Offset == StmtLoc.Offset &&
        !at(TokenKind::Eof))
      take();
  }
  expect(TokenKind::RBrace, "to close block");
  return Context.create<BlockStmt>(rangeFrom(Loc), std::move(Body));
}

Stmt *Parser::parseVarDecl() {
  SourceLoc Loc = Current.Loc;
  expect(TokenKind::KwVar, "to begin declaration");
  std::vector<VarDeclStmt::Declarator> Decls;
  do {
    if (!at(TokenKind::Identifier)) {
      Diags.error(Current.Loc, "expected identifier in var declaration");
      break;
    }
    std::string Name = take().Text;
    Expr *Init = nullptr;
    if (accept(TokenKind::Assign))
      Init = parseAssignment();
    Decls.push_back({std::move(Name), Init});
  } while (accept(TokenKind::Comma));
  expectSemi();
  return Context.create<VarDeclStmt>(rangeFrom(Loc), std::move(Decls));
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = Current.Loc;
  expect(TokenKind::KwIf, "");
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpression();
  expect(TokenKind::RParen, "after if condition");
  Stmt *Then = parseStatement();
  Stmt *Else = nullptr;
  if (accept(TokenKind::KwElse))
    Else = parseStatement();
  return Context.create<IfStmt>(rangeFrom(Loc), Cond, Then, Else);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = Current.Loc;
  expect(TokenKind::KwWhile, "");
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpression();
  expect(TokenKind::RParen, "after while condition");
  Stmt *Body = parseStatement();
  return Context.create<WhileStmt>(rangeFrom(Loc), Cond, Body);
}

Stmt *Parser::parseDoWhile() {
  SourceLoc Loc = Current.Loc;
  expect(TokenKind::KwDo, "");
  Stmt *Body = parseStatement();
  expect(TokenKind::KwWhile, "after do body");
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpression();
  expect(TokenKind::RParen, "after do-while condition");
  expectSemi();
  return Context.create<DoWhileStmt>(rangeFrom(Loc), Body, Cond);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = Current.Loc;
  expect(TokenKind::KwFor, "");
  expect(TokenKind::LParen, "after 'for'");

  // for (var x in e) / for (x in e) / for (init; cond; update).
  if (at(TokenKind::KwVar)) {
    SourceLoc VarLoc = Current.Loc;
    take();
    if (!at(TokenKind::Identifier)) {
      Diags.error(Current.Loc, "expected identifier after 'var' in for");
      return Context.create<EmptyStmt>(rangeFrom(Loc));
    }
    std::string Name = take().Text;
    if (accept(TokenKind::KwIn)) {
      Expr *Object = parseExpression();
      expect(TokenKind::RParen, "after for-in header");
      Stmt *Body = parseStatement();
      return Context.create<ForInStmt>(rangeFrom(Loc), std::move(Name),
                                       /*Declares=*/true, Object, Body);
    }
    // Regular for with var-declared init.
    std::vector<VarDeclStmt::Declarator> Decls;
    Expr *Init = nullptr;
    NoIn = true;
    if (accept(TokenKind::Assign))
      Init = parseAssignment();
    Decls.push_back({std::move(Name), Init});
    while (accept(TokenKind::Comma)) {
      if (!at(TokenKind::Identifier)) {
        Diags.error(Current.Loc, "expected identifier in for-init");
        break;
      }
      std::string More = take().Text;
      Expr *MoreInit = nullptr;
      if (accept(TokenKind::Assign))
        MoreInit = parseAssignment();
      Decls.push_back({std::move(More), MoreInit});
    }
    NoIn = false;
    Stmt *InitStmt =
        Context.create<VarDeclStmt>(rangeFrom(VarLoc), std::move(Decls));
    expect(TokenKind::Semi, "after for-init");
    Expr *Cond = at(TokenKind::Semi) ? nullptr : parseExpression();
    expect(TokenKind::Semi, "after for-condition");
    Expr *Update = at(TokenKind::RParen) ? nullptr : parseExpression();
    expect(TokenKind::RParen, "after for header");
    Stmt *Body = parseStatement();
    return Context.create<ForStmt>(rangeFrom(Loc), InitStmt, Cond, Update,
                                   Body);
  }

  if (at(TokenKind::Semi)) {
    take();
    Expr *Cond = at(TokenKind::Semi) ? nullptr : parseExpression();
    expect(TokenKind::Semi, "after for-condition");
    Expr *Update = at(TokenKind::RParen) ? nullptr : parseExpression();
    expect(TokenKind::RParen, "after for header");
    Stmt *Body = parseStatement();
    return Context.create<ForStmt>(rangeFrom(Loc), nullptr, Cond, Update,
                                   Body);
  }

  SourceLoc InitLoc = Current.Loc;
  NoIn = true;
  Expr *InitExpr = parseExpression();
  NoIn = false;
  if (accept(TokenKind::KwIn)) {
    const auto *Id = dyn_cast<Identifier>(InitExpr);
    std::string Name = Id ? Id->getName() : std::string("__bad");
    if (!Id)
      Diags.error(InitLoc, "for-in target must be a plain identifier");
    Expr *Object = parseExpression();
    expect(TokenKind::RParen, "after for-in header");
    Stmt *Body = parseStatement();
    return Context.create<ForInStmt>(rangeFrom(Loc), std::move(Name),
                                     /*Declares=*/false, Object, Body);
  }
  Stmt *InitStmt =
      Context.create<ExpressionStmt>(rangeFrom(InitLoc), InitExpr);
  expect(TokenKind::Semi, "after for-init");
  Expr *Cond = at(TokenKind::Semi) ? nullptr : parseExpression();
  expect(TokenKind::Semi, "after for-condition");
  Expr *Update = at(TokenKind::RParen) ? nullptr : parseExpression();
  expect(TokenKind::RParen, "after for header");
  Stmt *Body = parseStatement();
  return Context.create<ForStmt>(rangeFrom(Loc), InitStmt, Cond, Update, Body);
}

Stmt *Parser::parseReturn() {
  SourceLoc Loc = Current.Loc;
  expect(TokenKind::KwReturn, "");
  Expr *Arg = nullptr;
  if (!at(TokenKind::Semi) && !at(TokenKind::RBrace) && !at(TokenKind::Eof))
    Arg = parseExpression();
  expectSemi();
  return Context.create<ReturnStmt>(rangeFrom(Loc), Arg);
}

Stmt *Parser::parseTry() {
  SourceLoc Loc = Current.Loc;
  expect(TokenKind::KwTry, "");
  Stmt *Block = parseBlock();
  std::string CatchParam;
  Stmt *CatchBlock = nullptr;
  Stmt *FinallyBlock = nullptr;
  if (accept(TokenKind::KwCatch)) {
    expect(TokenKind::LParen, "after 'catch'");
    if (at(TokenKind::Identifier))
      CatchParam = take().Text;
    else
      Diags.error(Current.Loc, "expected identifier in catch clause");
    expect(TokenKind::RParen, "after catch parameter");
    CatchBlock = parseBlock();
  }
  if (accept(TokenKind::KwFinally))
    FinallyBlock = parseBlock();
  if (!CatchBlock && !FinallyBlock)
    Diags.error(Loc, "try statement requires catch or finally");
  return Context.create<TryStmt>(rangeFrom(Loc), Block, std::move(CatchParam),
                                 CatchBlock, FinallyBlock);
}

Stmt *Parser::parseThrow() {
  SourceLoc Loc = Current.Loc;
  expect(TokenKind::KwThrow, "");
  Expr *Arg = parseExpression();
  expectSemi();
  return Context.create<ThrowStmt>(rangeFrom(Loc), Arg);
}

Stmt *Parser::parseSwitch() {
  SourceLoc Loc = Current.Loc;
  expect(TokenKind::KwSwitch, "");
  expect(TokenKind::LParen, "after 'switch'");
  Expr *Disc = parseExpression();
  expect(TokenKind::RParen, "after switch discriminant");
  expect(TokenKind::LBrace, "to begin switch body");
  std::vector<SwitchStmt::Clause> Clauses;
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
    Expr *Test = nullptr;
    if (accept(TokenKind::KwCase)) {
      Test = parseExpression();
    } else if (!accept(TokenKind::KwDefault)) {
      Diags.error(Current.Loc, "expected 'case' or 'default' in switch");
      break;
    }
    expect(TokenKind::Colon, "after switch clause label");
    std::vector<Stmt *> Body;
    while (!at(TokenKind::KwCase) && !at(TokenKind::KwDefault) &&
           !at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
      size_t Before = Context.nodeCount();
      SourceLoc StmtLoc = Current.Loc;
      Body.push_back(parseStatement());
      if (Context.nodeCount() == Before &&
          Current.Loc.Offset == StmtLoc.Offset && !at(TokenKind::Eof))
        take();
    }
    Clauses.push_back({Test, std::move(Body)});
  }
  expect(TokenKind::RBrace, "to close switch body");
  return Context.create<SwitchStmt>(rangeFrom(Loc), Disc, std::move(Clauses));
}

FunctionExpr *Parser::parseFunction(bool RequireName) {
  SourceLoc Loc = Current.Loc;
  expect(TokenKind::KwFunction, "");
  std::string Name;
  if (at(TokenKind::Identifier))
    Name = take().Text;
  else if (RequireName)
    Diags.error(Current.Loc, "expected function name");
  expect(TokenKind::LParen, "after function name");
  std::vector<std::string> Params;
  if (!at(TokenKind::RParen)) {
    do {
      if (!at(TokenKind::Identifier)) {
        Diags.error(Current.Loc, "expected parameter name");
        break;
      }
      Params.push_back(take().Text);
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameter list");
  // The body is parsed outside any for-header context.
  bool SavedNoIn = NoIn;
  NoIn = false;
  Stmt *Body = parseBlock();
  NoIn = SavedNoIn;
  return Context.create<FunctionExpr>(rangeFrom(Loc), std::move(Name),
                                      std::move(Params), Body);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::errorExpr(SourceLoc Loc) {
  return Context.create<UndefinedLiteral>(SourceRange(Loc, Loc));
}

Expr *Parser::parseAssignment() {
  SourceLoc Loc = Current.Loc;
  if (atDepthLimit(Loc))
    return errorExpr(Loc);
  DepthScope Scope(*this);
  Expr *Target = parseConditional();
  AssignOp Op;
  switch (Current.Kind) {
  case TokenKind::Assign:
    Op = AssignOp::Assign;
    break;
  case TokenKind::PlusAssign:
    Op = AssignOp::Add;
    break;
  case TokenKind::MinusAssign:
    Op = AssignOp::Sub;
    break;
  case TokenKind::StarAssign:
    Op = AssignOp::Mul;
    break;
  case TokenKind::SlashAssign:
    Op = AssignOp::Div;
    break;
  case TokenKind::PercentAssign:
    Op = AssignOp::Mod;
    break;
  default:
    return Target;
  }
  if (!isa<Identifier>(Target) && !isa<MemberExpr>(Target))
    Diags.error(Current.Loc, "invalid assignment target");
  take();
  Expr *Value = parseAssignment();
  return Context.create<AssignExpr>(rangeFrom(Loc), Op, Target, Value);
}

Expr *Parser::parseConditional() {
  SourceLoc Loc = Current.Loc;
  Expr *Cond = parseLogicalOr();
  if (!accept(TokenKind::Question))
    return Cond;
  Expr *Then = parseAssignment();
  expect(TokenKind::Colon, "in conditional expression");
  Expr *Else = parseAssignment();
  return Context.create<ConditionalExpr>(rangeFrom(Loc), Cond, Then, Else);
}

Expr *Parser::parseLogicalOr() {
  SourceLoc Loc = Current.Loc;
  Expr *LHS = parseLogicalAnd();
  while (accept(TokenKind::PipePipe)) {
    Expr *RHS = parseLogicalAnd();
    LHS = Context.create<LogicalExpr>(rangeFrom(Loc), /*IsAnd=*/false, LHS,
                                      RHS);
  }
  return LHS;
}

Expr *Parser::parseLogicalAnd() {
  SourceLoc Loc = Current.Loc;
  Expr *LHS = parseEquality();
  while (accept(TokenKind::AmpAmp)) {
    Expr *RHS = parseEquality();
    LHS = Context.create<LogicalExpr>(rangeFrom(Loc), /*IsAnd=*/true, LHS,
                                      RHS);
  }
  return LHS;
}

Expr *Parser::parseEquality() {
  SourceLoc Loc = Current.Loc;
  Expr *LHS = parseRelational();
  for (;;) {
    BinaryOp Op;
    if (at(TokenKind::EqEq))
      Op = BinaryOp::Eq;
    else if (at(TokenKind::NotEq))
      Op = BinaryOp::NotEq;
    else if (at(TokenKind::EqEqEq))
      Op = BinaryOp::StrictEq;
    else if (at(TokenKind::NotEqEq))
      Op = BinaryOp::StrictNotEq;
    else
      return LHS;
    take();
    Expr *RHS = parseRelational();
    LHS = Context.create<BinaryExpr>(rangeFrom(Loc), Op, LHS, RHS);
  }
}

Expr *Parser::parseRelational() {
  SourceLoc Loc = Current.Loc;
  Expr *LHS = parseAdditive();
  for (;;) {
    BinaryOp Op;
    if (at(TokenKind::Less))
      Op = BinaryOp::Less;
    else if (at(TokenKind::LessEq))
      Op = BinaryOp::LessEq;
    else if (at(TokenKind::Greater))
      Op = BinaryOp::Greater;
    else if (at(TokenKind::GreaterEq))
      Op = BinaryOp::GreaterEq;
    else if (at(TokenKind::KwInstanceof))
      Op = BinaryOp::Instanceof;
    else if (at(TokenKind::KwIn) && !NoIn)
      Op = BinaryOp::In;
    else
      return LHS;
    take();
    Expr *RHS = parseAdditive();
    LHS = Context.create<BinaryExpr>(rangeFrom(Loc), Op, LHS, RHS);
  }
}

Expr *Parser::parseAdditive() {
  SourceLoc Loc = Current.Loc;
  Expr *LHS = parseMultiplicative();
  for (;;) {
    BinaryOp Op;
    if (at(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (at(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else
      return LHS;
    take();
    Expr *RHS = parseMultiplicative();
    LHS = Context.create<BinaryExpr>(rangeFrom(Loc), Op, LHS, RHS);
  }
}

Expr *Parser::parseMultiplicative() {
  SourceLoc Loc = Current.Loc;
  Expr *LHS = parseUnary();
  for (;;) {
    BinaryOp Op;
    if (at(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (at(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (at(TokenKind::Percent))
      Op = BinaryOp::Mod;
    else
      return LHS;
    take();
    Expr *RHS = parseUnary();
    LHS = Context.create<BinaryExpr>(rangeFrom(Loc), Op, LHS, RHS);
  }
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = Current.Loc;
  if (atDepthLimit(Loc))
    return errorExpr(Loc);
  DepthScope Scope(*this);
  UnaryOp Op;
  switch (Current.Kind) {
  case TokenKind::Not:
    Op = UnaryOp::Not;
    break;
  case TokenKind::Minus:
    Op = UnaryOp::Minus;
    break;
  case TokenKind::Plus:
    Op = UnaryOp::Plus;
    break;
  case TokenKind::KwTypeof:
    Op = UnaryOp::Typeof;
    break;
  case TokenKind::KwDelete:
    Op = UnaryOp::Delete;
    break;
  case TokenKind::PlusPlus:
  case TokenKind::MinusMinus: {
    bool IsIncrement = at(TokenKind::PlusPlus);
    take();
    Expr *Operand = parseUnary();
    return Context.create<UpdateExpr>(rangeFrom(Loc), IsIncrement,
                                      /*IsPrefix=*/true, Operand);
  }
  default:
    return parsePostfix();
  }
  take();
  Expr *Operand = parseUnary();
  return Context.create<UnaryExpr>(rangeFrom(Loc), Op, Operand);
}

Expr *Parser::parsePostfix() {
  SourceLoc Loc = Current.Loc;
  Expr *Base = at(TokenKind::KwNew) ? parseNew() : parsePrimary();
  Expr *E = parseCallsAndMembers(Base);
  if (at(TokenKind::PlusPlus) || at(TokenKind::MinusMinus)) {
    bool IsIncrement = at(TokenKind::PlusPlus);
    take();
    E = Context.create<UpdateExpr>(rangeFrom(Loc), IsIncrement,
                                   /*IsPrefix=*/false, E);
  }
  return E;
}

Expr *Parser::parseCallsAndMembers(Expr *Base) {
  SourceLoc Loc = Base->getLoc();
  for (;;) {
    if (accept(TokenKind::Dot)) {
      if (!at(TokenKind::Identifier)) {
        // Allow keywords as property names after '.', as JS does.
        if (Current.Kind >= TokenKind::KwVar &&
            Current.Kind <= TokenKind::KwDefault) {
          std::string Name = tokenKindName(Current.Kind);
          // Strip the surrounding quotes from "'keyword'".
          Name = Name.substr(1, Name.size() - 2);
          take();
          Base = Context.create<MemberExpr>(rangeFrom(Loc), Base, Name);
          continue;
        }
        Diags.error(Current.Loc, "expected property name after '.'");
        return Base;
      }
      std::string Name = take().Text;
      Base = Context.create<MemberExpr>(rangeFrom(Loc), Base, std::move(Name));
      continue;
    }
    if (accept(TokenKind::LBracket)) {
      bool SavedNoIn = NoIn;
      NoIn = false;
      Expr *Index = parseExpression();
      NoIn = SavedNoIn;
      expect(TokenKind::RBracket, "after computed property");
      Base = Context.create<MemberExpr>(rangeFrom(Loc), Base, Index);
      continue;
    }
    if (at(TokenKind::LParen)) {
      take();
      std::vector<Expr *> Args;
      if (!at(TokenKind::RParen)) {
        bool SavedNoIn = NoIn;
        NoIn = false;
        do {
          Args.push_back(parseAssignment());
        } while (accept(TokenKind::Comma));
        NoIn = SavedNoIn;
      }
      expect(TokenKind::RParen, "after arguments");
      Base = Context.create<CallExpr>(rangeFrom(Loc), Base, std::move(Args));
      continue;
    }
    return Base;
  }
}

Expr *Parser::parseNew() {
  SourceLoc Loc = Current.Loc;
  if (atDepthLimit(Loc))
    return errorExpr(Loc);
  DepthScope Scope(*this);
  expect(TokenKind::KwNew, "");
  // Parse the constructor expression: a primary followed by member accesses
  // (but not calls; the first argument list belongs to `new`).
  Expr *Callee = at(TokenKind::KwNew) ? parseNew() : parsePrimary();
  for (;;) {
    if (accept(TokenKind::Dot)) {
      if (!at(TokenKind::Identifier)) {
        Diags.error(Current.Loc, "expected property name after '.'");
        break;
      }
      std::string Name = take().Text;
      Callee =
          Context.create<MemberExpr>(rangeFrom(Loc), Callee, std::move(Name));
      continue;
    }
    if (accept(TokenKind::LBracket)) {
      Expr *Index = parseExpression();
      expect(TokenKind::RBracket, "after computed property");
      Callee = Context.create<MemberExpr>(rangeFrom(Loc), Callee, Index);
      continue;
    }
    break;
  }
  std::vector<Expr *> Args;
  if (accept(TokenKind::LParen)) {
    if (!at(TokenKind::RParen)) {
      do {
        Args.push_back(parseAssignment());
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "after constructor arguments");
  }
  return Context.create<NewExpr>(rangeFrom(Loc), Callee, std::move(Args));
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = Current.Loc;
  switch (Current.Kind) {
  case TokenKind::Number: {
    Token T = take();
    return Context.create<NumberLiteral>(rangeFrom(Loc), T.NumberValue);
  }
  case TokenKind::String: {
    Token T = take();
    return Context.create<StringLiteral>(rangeFrom(Loc), std::move(T.Text));
  }
  case TokenKind::KwTrue:
    take();
    return Context.create<BooleanLiteral>(rangeFrom(Loc), true);
  case TokenKind::KwFalse:
    take();
    return Context.create<BooleanLiteral>(rangeFrom(Loc), false);
  case TokenKind::KwNull:
    take();
    return Context.create<NullLiteral>(rangeFrom(Loc));
  case TokenKind::KwUndefined:
    take();
    return Context.create<UndefinedLiteral>(rangeFrom(Loc));
  case TokenKind::KwThis:
    take();
    return Context.create<ThisExpr>(rangeFrom(Loc));
  case TokenKind::Identifier: {
    Token T = take();
    return Context.create<Identifier>(rangeFrom(Loc), std::move(T.Text));
  }
  case TokenKind::KwFunction:
    return parseFunction(/*RequireName=*/false);
  case TokenKind::LParen: {
    take();
    bool SavedNoIn = NoIn;
    NoIn = false;
    Expr *E = parseExpression();
    NoIn = SavedNoIn;
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  case TokenKind::LBracket: {
    take();
    std::vector<Expr *> Elements;
    if (!at(TokenKind::RBracket)) {
      do {
        Elements.push_back(parseAssignment());
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RBracket, "to close array literal");
    return Context.create<ArrayLiteral>(rangeFrom(Loc), std::move(Elements));
  }
  case TokenKind::LBrace: {
    take();
    std::vector<ObjectLiteral::Property> Props;
    if (!at(TokenKind::RBrace)) {
      do {
        if (at(TokenKind::RBrace))
          break; // Trailing comma.
        std::string Key;
        if (at(TokenKind::Identifier) || at(TokenKind::String)) {
          Key = take().Text;
        } else if (at(TokenKind::Number)) {
          Key = std::to_string(static_cast<long long>(take().NumberValue));
        } else {
          Diags.error(Current.Loc, "expected property key in object literal");
          break;
        }
        expect(TokenKind::Colon, "after property key");
        Expr *Value = parseAssignment();
        Props.push_back({std::move(Key), Value});
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RBrace, "to close object literal");
    return Context.create<ObjectLiteral>(rangeFrom(Loc), std::move(Props));
  }
  default:
    if (!DepthFailed)
      Diags.error(Loc, std::string("unexpected ") +
                           tokenKindName(Current.Kind) + " in expression");
    take();
    return errorExpr(Loc);
  }
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

Program dda::parseProgram(const std::string &Source, DiagnosticEngine &Diags) {
  Program P;
  Parser TheParser(Source, *P.Context, Diags);
  P.Body = TheParser.parseTopLevel();
  // Fill every subtree-hash memo now, while the tree is still single-owner:
  // parallel seed tasks and serve worker threads may later read the memos
  // concurrently, and warming here keeps those reads write-free.
  warmStructuralHashes(P);
  return P;
}

std::vector<Stmt *> dda::parseIntoContext(const std::string &Source,
                                          ASTContext &Context,
                                          DiagnosticEngine &Diags) {
  Parser TheParser(Source, Context, Diags);
  return TheParser.parseTopLevel();
}
