//===- Parser.h - Recursive-descent parser for MiniJS ------------*- C++ -*-==//
///
/// \file
/// Parses MiniJS source into an AST. The parser is a conventional
/// recursive-descent parser with precedence climbing for expressions. It is
/// lenient about semicolons (an ASI-like policy: a statement terminator is
/// consumed when present and otherwise inferred), reports all problems
/// through the DiagnosticEngine, and recovers by skipping tokens, so callers
/// always get a (possibly partial) AST plus diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef DDA_PARSER_PARSER_H
#define DDA_PARSER_PARSER_H

#include "ast/ASTContext.h"
#include "lexer/Lexer.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace dda {

/// Parses \p Source into a fresh Program. Errors land in \p Diags.
Program parseProgram(const std::string &Source, DiagnosticEngine &Diags);

/// Parses \p Source into an existing context. Used by the runtime `eval`
/// implementation (evaluated code is instrumented recursively, per paper
/// Section 4) and by the specializer when splicing eval'd code. Returns the
/// parsed top-level statements.
std::vector<Stmt *> parseIntoContext(const std::string &Source,
                                     ASTContext &Context,
                                     DiagnosticEngine &Diags);

/// Implementation class; exposed for white-box tests.
class Parser {
public:
  Parser(const std::string &Source, ASTContext &Context,
         DiagnosticEngine &Diags);

  std::vector<Stmt *> parseTopLevel();

  /// Maximum recursive-descent nesting depth (statements, expressions,
  /// `new` chains). Each source-level nesting level costs a dozen native
  /// frames, so this bound keeps a hostile ~100k-deep input from
  /// overflowing the native stack (it becomes one structured diagnostic
  /// instead). Generous for real programs, conservative for sanitizer
  /// builds with fat frames.
  static constexpr unsigned kMaxNestingDepth = 256;

  /// Overrides the nesting limit (white-box tests).
  void setMaxNestingDepth(unsigned Limit) { MaxDepth = Limit; }

private:
  // Token plumbing.
  const Token &peek() const { return Current; }
  Token take();
  bool at(TokenKind Kind) const { return Current.is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void expectSemi();
  SourceRange rangeFrom(SourceLoc Begin) const;

  // Statements.
  Stmt *parseStatement();
  Stmt *parseBlock();
  Stmt *parseVarDecl();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseDoWhile();
  Stmt *parseFor();
  Stmt *parseReturn();
  Stmt *parseTry();
  Stmt *parseThrow();
  Stmt *parseSwitch();
  FunctionExpr *parseFunction(bool RequireName);

  // Expressions, ordered loosest to tightest.
  Expr *parseExpression() { return parseAssignment(); }
  Expr *parseAssignment();
  Expr *parseConditional();
  Expr *parseLogicalOr();
  Expr *parseLogicalAnd();
  Expr *parseEquality();
  Expr *parseRelational();
  Expr *parseAdditive();
  Expr *parseMultiplicative();
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parseCallsAndMembers(Expr *Base);
  Expr *parseNew();
  Expr *parsePrimary();

  Expr *errorExpr(SourceLoc Loc);

  /// Depth-guard check at every recursion entry point. On the first trip it
  /// reports one structured diagnostic and abandons the rest of the buffer
  /// (skips to EOF) so the unwind terminates promptly; callers return an
  /// error node without recursing further.
  bool atDepthLimit(SourceLoc Loc);
  struct DepthScope {
    Parser &P;
    explicit DepthScope(Parser &P) : P(P) { ++P.Depth; }
    ~DepthScope() { --P.Depth; }
  };

  ASTContext &Context;
  DiagnosticEngine &Diags;
  Lexer Lex;
  Token Current;
  SourceLoc PrevEnd;
  /// True while parsing a `for (...)` header, where a top-level `in` must not
  /// be consumed as a binary operator.
  bool NoIn = false;
  unsigned Depth = 0;
  unsigned MaxDepth = kMaxNestingDepth;
  /// Set once the depth limit has been reported; suppresses the cascade of
  /// secondary "expected X" diagnostics while the recursion unwinds.
  bool DepthFailed = false;
};

} // namespace dda

#endif // DDA_PARSER_PARSER_H
