//===- WorkloadTest.cpp - Table 1 workload behavior tests ------------------==//
///
/// Locks in the Table 1 experiment: for each miniquery version and analysis
/// configuration, the dynamic analysis's flush behavior and the static
/// pointer analysis's completion under the step budget must reproduce the
/// paper's ✓/✗ pattern:
///
///   version  Baseline  Spec        Spec+DetDOM
///   1.0      ✗         ✓ (82)      ✓ (2)
///   1.1      ✗         ✗ (~400)    ✓ (4)
///   1.2      ✓         ✓ (>1000)   ✓ (0)
///   1.3      ✗         ✗ (>1000)   ✗ (>1000)
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "determinacy/Determinacy.h"
#include "interp/Interpreter.h"
#include "parser/Parser.h"
#include "pointsto/PointsTo.h"
#include "specialize/Specializer.h"

#include <gtest/gtest.h>

using namespace dda;

namespace {

/// The step budget standing in for the paper's 10-minute timeout. Chosen
/// between the specialized residuals (~15k steps) and the unspecialized
/// programs (~80k-110k steps) with a wide margin on both sides.
constexpr uint64_t TimeoutBudget = 40'000;

Program parse(const std::string &Source) {
  DiagnosticEngine Diags;
  Program P = parseProgram(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return P;
}

struct VersionResult {
  bool BaselineCompletes;
  bool SpecCompletes;
  bool DetDomCompletes;
  uint64_t SpecFlushes;
  uint64_t DetDomFlushes;
};

VersionResult analyzeVersion(int Minor) {
  std::string Source = workloads::miniquery(Minor);
  VersionResult R{};

  PointsToOptions PTOpts;
  PTOpts.MaxPropagationSteps = TimeoutBudget;

  {
    Program P = parse(Source);
    R.BaselineCompletes = runPointsToAnalysis(P, PTOpts).Completed;
  }
  {
    Program P = parse(Source);
    AnalysisResult A = runDeterminacyAnalysis(P, AnalysisOptions());
    EXPECT_TRUE(A.Ok) << A.Error;
    R.SpecFlushes = A.Stats.HeapFlushes;
    SpecializeResult S = specializeProgram(P, A);
    R.SpecCompletes = runPointsToAnalysis(S.Residual, PTOpts).Completed;
  }
  {
    Program P = parse(Source);
    AnalysisOptions AOpts;
    AOpts.DeterminateDom = true;
    AnalysisResult A = runDeterminacyAnalysis(P, AOpts);
    EXPECT_TRUE(A.Ok) << A.Error;
    R.DetDomFlushes = A.Stats.HeapFlushes;
    SpecializeResult S = specializeProgram(P, A);
    R.DetDomCompletes = runPointsToAnalysis(S.Residual, PTOpts).Completed;
  }
  return R;
}

TEST(Workloads, AllVersionsParseAndRun) {
  for (int Minor = 0; Minor <= 3; ++Minor) {
    Program P = parse(workloads::miniquery(Minor));
    Interpreter I(P);
    EXPECT_TRUE(I.run()) << "miniquery 1." << Minor << ": "
                         << I.errorMessage();
    EXPECT_NE(I.outputText().find("loaded"), std::string::npos);
  }
}

TEST(Workloads, FigureProgramsRun) {
  const char *Sources[] = {workloads::figure1(), workloads::figure2(),
                           workloads::figure3(), workloads::figure4()};
  for (const char *Source : Sources) {
    Program P = parse(Source);
    Interpreter I(P);
    EXPECT_TRUE(I.run()) << I.errorMessage();
  }
}

TEST(Workloads, SpecializationPreservesMiniquerySemantics) {
  // The residual program must behave identically (the whole Table 1 pipeline
  // is meaningless otherwise).
  for (int Minor = 0; Minor <= 3; ++Minor) {
    Program P = parse(workloads::miniquery(Minor));
    AnalysisResult A = runDeterminacyAnalysis(P, AnalysisOptions());
    ASSERT_TRUE(A.Ok) << A.Error;
    SpecializeResult S = specializeProgram(P, A);

    Program P2 = parse(workloads::miniquery(Minor));
    Interpreter Orig(P2);
    ASSERT_TRUE(Orig.run()) << Orig.errorMessage();
    Interpreter Spec(S.Residual);
    ASSERT_TRUE(Spec.run()) << "miniquery 1." << Minor
                            << " residual: " << Spec.errorMessage();
    EXPECT_EQ(Spec.outputText(), Orig.outputText())
        << "miniquery 1." << Minor;
  }
}

TEST(Workloads, Table1_V10_SpecRescuesBaseline) {
  VersionResult R = analyzeVersion(0);
  EXPECT_FALSE(R.BaselineCompletes) << "baseline must exceed the budget";
  EXPECT_TRUE(R.SpecCompletes);
  EXPECT_TRUE(R.DetDomCompletes);
  // The paper's exact flush counts for jQuery 1.0: 82 and 2.
  EXPECT_EQ(R.SpecFlushes, 82u);
  EXPECT_EQ(R.DetDomFlushes, 2u);
}

TEST(Workloads, Table1_V11_NeedsDeterminateDom) {
  VersionResult R = analyzeVersion(1);
  EXPECT_FALSE(R.BaselineCompletes);
  EXPECT_FALSE(R.SpecCompletes)
      << "DOM-derived names leave Spec without facts";
  EXPECT_TRUE(R.DetDomCompletes);
  EXPECT_GT(R.SpecFlushes, 100u);
  EXPECT_EQ(R.DetDomFlushes, 4u); // The paper's 1.1/DetDOM cell.
}

TEST(Workloads, Table1_V12_LazyInitIsEasyForEveryone) {
  VersionResult R = analyzeVersion(2);
  EXPECT_TRUE(R.BaselineCompletes);
  EXPECT_TRUE(R.SpecCompletes);
  EXPECT_TRUE(R.DetDomCompletes);
  EXPECT_GT(R.SpecFlushes, 1000u); // ">1000" in the paper.
  EXPECT_EQ(R.DetDomFlushes, 0u);  // "(0)" in the paper.
}

TEST(Workloads, Table1_V13_EventHandlersDefeatEveryConfiguration) {
  VersionResult R = analyzeVersion(3);
  EXPECT_FALSE(R.BaselineCompletes);
  EXPECT_FALSE(R.SpecCompletes);
  EXPECT_FALSE(R.DetDomCompletes)
      << "handler-entry flushes kill the facts even under DetDOM";
  EXPECT_GT(R.SpecFlushes, 1000u);
  EXPECT_GT(R.DetDomFlushes, 1000u);
}

TEST(Workloads, V10SpecializationShape) {
  // The 21-iteration accessor loop must unroll and the property writes must
  // staticize — the specific specializations the paper calls out.
  Program P = parse(workloads::miniquery(0));
  AnalysisResult A = runDeterminacyAnalysis(P, AnalysisOptions());
  ASSERT_TRUE(A.Ok);
  SpecializeResult S = specializeProgram(P, A);
  EXPECT_GE(S.Report.LoopsUnrolled, 4u);  // accessor + widget + storm loops
  EXPECT_GE(S.Report.FunctionClones, 21u); // ≥ one clone per accessor iter
  EXPECT_GE(S.Report.PropertiesStaticized, 42u); // 21 getters + 21 setters
}

TEST(Workloads, FlushLimitReportedForV12AndV13) {
  for (int Minor : {2, 3}) {
    Program P = parse(workloads::miniquery(Minor));
    AnalysisResult A = runDeterminacyAnalysis(P, AnalysisOptions());
    ASSERT_TRUE(A.Ok);
    EXPECT_TRUE(A.Stats.FlushLimitHit) << "miniquery 1." << Minor;
  }
}

} // namespace
