//===- PointsToTest.cpp - Static pointer analysis unit tests ---------------==//

#include "pointsto/PointsTo.h"

#include "ast/ASTWalk.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace dda;

namespace {

Program parse(const std::string &Source) {
  DiagnosticEngine Diags;
  Program P = parseProgram(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return P;
}

/// Targets of the first call expression on the given line.
std::set<NodeID> targetsOnLine(const Program &P, const PointsToResult &R,
                               uint32_t Line) {
  const Node *Call = findNodeOnLine(P, NodeKind::Call, Line);
  if (!Call)
    Call = findNodeOnLine(P, NodeKind::New, Line);
  EXPECT_TRUE(Call) << "no call on line " << Line;
  if (!Call)
    return {};
  auto It = R.CallTargets.find(Call->getID());
  return It == R.CallTargets.end() ? std::set<NodeID>() : It->second;
}

NodeID functionNamed(const Program &P, const std::string &Name) {
  const Node *N = findNode(P, [&](const Node *N) {
    const auto *F = dyn_cast<FunctionExpr>(N);
    return F && F->getName() == Name;
  });
  EXPECT_TRUE(N) << "no function named " << Name;
  return N ? N->getID() : 0;
}

TEST(PointsTo, DirectCallResolves) {
  Program P = parse("function f() { return 1; }\n"
                    "f();\n");
  PointsToResult R = runPointsToAnalysis(P);
  ASSERT_TRUE(R.Completed);
  auto T = targetsOnLine(P, R, 2);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "f")});
}

TEST(PointsTo, CallThroughVariable) {
  Program P = parse("var g = function inner() { return 1; };\n"
                    "g();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 2);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "inner")});
}

TEST(PointsTo, HigherOrderFlow) {
  Program P = parse("function apply(fn) { return fn(); }\n"
                    "function a() { return 1; }\n"
                    "apply(a);\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 1); // fn() inside apply
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "a")});
}

TEST(PointsTo, MethodCallThroughObject) {
  Program P = parse("var o = {m: function m1() { return 1; }};\n"
                    "o.m();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 2);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "m1")});
}

TEST(PointsTo, PrototypeMethodResolution) {
  Program P = parse("function A() {}\n"
                    "A.prototype.m = function meth() { return 1; };\n"
                    "var a = new A();\n"
                    "a.m();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto New = targetsOnLine(P, R, 3);
  EXPECT_EQ(New, std::set<NodeID>{functionNamed(P, "A")});
  auto T = targetsOnLine(P, R, 4);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "meth")});
}

TEST(PointsTo, ComputedWriteSmearsAcrossProperties) {
  // The precision cliff of Section 2.2: a computed write makes *both*
  // functions possible targets of o.a().
  Program P = parse("var o = {};\n"
                    "o.a = function fa() {};\n"
                    "o[somename] = function fb() {};\n"
                    "o.a();\n"
                    "var somename = \"b\";\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 4);
  EXPECT_EQ(T.size(), 2u);
  EXPECT_TRUE(T.count(functionNamed(P, "fa")));
  EXPECT_TRUE(T.count(functionNamed(P, "fb")));
}

TEST(PointsTo, StringLiteralComputedAccessIsPrecise) {
  Program P = parse("var o = {};\n"
                    "o[\"a\"] = function fa() {};\n"
                    "o[\"b\"] = function fb() {};\n"
                    "o.a();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 4);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "fa")});
}

TEST(PointsTo, UnreachableFunctionNotAnalyzed) {
  // Lazy code (the jQuery 1.2 effect): functions never called contribute no
  // call edges.
  Program P = parse("function lazy() { heavyHelper(); }\n"
                    "function heavyHelper() {}\n"
                    "var x = 1;\n");
  PointsToResult R = runPointsToAnalysis(P);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ReachableFunctions, 0u);
  EXPECT_TRUE(R.CallTargets.empty());
}

TEST(PointsTo, EventHandlerCallbackIsReachable) {
  Program P = parse("document.addEventListener(\"ready\", function h() {\n"
                    "  helper();\n"
                    "});\n"
                    "function helper() {}\n");
  PointsToResult R = runPointsToAnalysis(P);
  EXPECT_EQ(R.ReachableFunctions, 2u); // h and helper.
}

TEST(PointsTo, EventHandlerModelCanBeDisabled) {
  Program P = parse("document.addEventListener(\"ready\", function h() {\n"
                    "  helper();\n"
                    "});\n"
                    "function helper() {}\n");
  PointsToOptions Opts;
  Opts.ModelEventHandlers = false;
  PointsToResult R = runPointsToAnalysis(P, Opts);
  EXPECT_EQ(R.ReachableFunctions, 0u);
}

TEST(PointsTo, EvalCallSitesDetected) {
  Program P = parse("eval(\"1 + 2\");\n"
                    "var e2 = eval;\n"
                    "e2(\"3\");\n"
                    "function notEval() {} notEval();\n");
  PointsToResult R = runPointsToAnalysis(P);
  EXPECT_EQ(R.EvalOnlyCallSites.size(), 2u);
  EXPECT_EQ(R.EvalMaybeCallSites.size(), 2u);
}

TEST(PointsTo, EvalAliasedWithOtherFunctionIsOnlyMaybe) {
  Program P = parse("function other() {}\n"
                    "var f = flag ? eval : other;\n"
                    "f(\"1\");\n"
                    "var flag = true;\n");
  PointsToResult R = runPointsToAnalysis(P);
  EXPECT_EQ(R.EvalOnlyCallSites.size(), 0u);
  EXPECT_EQ(R.EvalMaybeCallSites.size(), 1u);
}

TEST(PointsTo, ClosureCapturedVariables) {
  Program P = parse("function mk() {\n"
                    "  var captured = function inner() {};\n"
                    "  return function get() { return captured; };\n"
                    "}\n"
                    "var g = mk();\n"
                    "var i = g();\n"
                    "i();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 7);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "inner")});
}

TEST(PointsTo, ReturnValueFlow) {
  Program P = parse("function mk() { return function made() {}; }\n"
                    "mk()();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 2);
  // Two calls on line 2: mk() and the result call; targetsOnLine finds the
  // outer one first (pre-order). Check both targets exist somewhere.
  size_t Edges = 0;
  for (const auto &[Site, Targets] : R.CallTargets)
    Edges += Targets.size();
  EXPECT_EQ(Edges, 2u);
  (void)T;
}

TEST(PointsTo, ThrowCatchFlow) {
  Program P = parse("function boom() {}\n"
                    "try { throw boom; } catch (e) { e(); }\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 2);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "boom")});
}

TEST(PointsTo, ArrayElementFlow) {
  Program P = parse("var fns = [function f0() {}, function f1() {}];\n"
                    "fns[0]();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 2);
  // Array elements are merged (★ field): both functions are targets.
  EXPECT_EQ(T.size(), 2u);
}

TEST(PointsTo, BudgetExhaustionReportsIncomplete) {
  Program P = parse("function f() { return 1; } f();");
  PointsToOptions Opts;
  Opts.MaxPropagationSteps = 3;
  PointsToResult R = runPointsToAnalysis(P, Opts);
  EXPECT_FALSE(R.Completed);
}

TEST(PointsTo, StringMethodReceiverResolution) {
  // Monkey-patched String.prototype methods resolve on string receivers
  // (the Figure 3 `prop.cap()` pattern).
  Program P = parse("String.prototype.cap = function cap() { return 1; };\n"
                    "var s = \"x\";\n"
                    "s.cap();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 3);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "cap")});
}

TEST(PointsTo, PolymorphicCallSiteMetric) {
  Program P = parse("function a() {} function b() {}\n"
                    "var f = c ? a : b;\n"
                    "f();\n"
                    "var c = 1;\n");
  PointsToResult R = runPointsToAnalysis(P);
  EXPECT_EQ(R.PolymorphicCallSites, 1u);
  EXPECT_DOUBLE_EQ(R.AvgCallTargets, 2.0);
}

TEST(PointsTo, ArrayPushFlowsToElements) {
  Program P = parse("var fns = [];\n"
                    "fns.push(function pushed() {});\n"
                    "fns[0]();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 3);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "pushed")});
}

TEST(PointsTo, ArrayPopDrawsFromElements) {
  Program P = parse("var fns = [function popped() {}];\n"
                    "var f = fns.pop();\n"
                    "f();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 3);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "popped")});
}

TEST(PointsTo, ArrayConcatAndSliceMergeElements) {
  Program P = parse("var a = [function fa() {}];\n"
                    "var b = a.concat([function fb() {}]);\n"
                    "var c = b.slice(0);\n"
                    "c[0]();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 4);
  EXPECT_EQ(T.size(), 2u);
}

TEST(PointsTo, MultiLevelPrototypeChain) {
  Program P = parse("function A() {}\n"
                    "A.prototype.m = function am() {};\n"
                    "function B() {}\n"
                    "B.prototype = new A();\n"
                    "var b = new B();\n"
                    "b.m();\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 6);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "am")});
}

TEST(PointsTo, LateFieldWiringReachesEarlierUnknownLoads) {
  // The unknown-name load is processed before the field exists; the solver
  // must wire the later-created field back into the load's sink.
  Program P = parse("var o = {};\n"
                    "function use(k) { return o[k](); }\n"
                    "use(\"later\");\n"
                    "o.later = function lateFn() {};\n");
  PointsToResult R = runPointsToAnalysis(P);
  auto T = targetsOnLine(P, R, 2);
  EXPECT_EQ(T, std::set<NodeID>{functionNamed(P, "lateFn")});
}

TEST(PointsTo, ResidualProgramsAnalyzeIndependently) {
  // Clones with fresh node ids must not collide with original sites.
  Program P = parse("function f(x) { return x; }\n"
                    "f(function one() {});\n"
                    "f(function two() {});\n");
  PointsToResult R = runPointsToAnalysis(P);
  // Context-insensitive: both closures flow through f's parameter.
  size_t Total = 0;
  for (const auto &[Site, Targets] : R.CallTargets)
    Total += Targets.size();
  EXPECT_EQ(Total, 2u); // Two call edges to f.
}

} // namespace
