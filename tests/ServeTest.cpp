//===- ServeTest.cpp - Analysis service robustness tests --------------------==//
///
/// End-to-end tests of `ddajs serve` run in-process: a real Server bound to
/// an ephemeral port, real sockets, real concurrency. The contract under
/// test, in order of importance:
///
///  1. Served results are *byte-identical* to single-shot CLI runs — the
///     `result` payload of a serve response equals analysisPayloadJson over
///     a serial runDeterminacyAnalysisParallel of the same (source, seeds,
///     engine), for both engines, across the paper figures and fuzz
///     corpora, from 8 concurrent clients.
///  2. Hostile input gets a *typed* error, never a dead daemon: truncated
///     JSON, wrong types, unknown members, huge payloads, bad seed lists,
///     parse errors, program errors, injected faults.
///  3. Cache hits are byte-identical to the cold response that populated
///     them, and deadline-trapped results are never served from cache.
///  4. Overload sheds with `overloaded` instead of queueing unboundedly;
///     graceful drain finishes in-flight work and answers new requests
///     with `shutting_down`.
///
//===----------------------------------------------------------------------===//

#include "determinacy/ParallelAnalysis.h"
#include "parser/Parser.h"
#include "serve/JSON.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace dda;

namespace {

/// Blocking line-protocol client over a raw socket, with receive timeouts
/// so a server bug fails the test instead of hanging it.
class Client {
public:
  explicit Client(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return;
    sockaddr_in Addr = {};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    Connected =
        ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0;
    timeval Tv = {60, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  }
  ~Client() {
    if (Fd >= 0)
      ::close(Fd);
  }
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  bool connected() const { return Connected; }

  bool sendLine(const std::string &Line) {
    std::string Data = Line + "\n";
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t N =
          ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  bool recvLine(std::string &Out) {
    size_t NL;
    while ((NL = Buf.find('\n')) == std::string::npos) {
      char Tmp[4096];
      ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
      if (N <= 0)
        return false;
      Buf.append(Tmp, static_cast<size_t>(N));
    }
    Out = Buf.substr(0, NL);
    Buf.erase(0, NL + 1);
    return true;
  }

  /// Sends one request line and returns the response line ("" on failure).
  std::string roundTrip(const std::string &Line) {
    std::string Out;
    if (!sendLine(Line) || !recvLine(Out))
      return "";
    return Out;
  }

private:
  int Fd = -1;
  bool Connected = false;
  std::string Buf;
};

/// The `result` payload object of a response line, exactly as serialized.
std::string resultOf(const std::string &Response) {
  size_t Pos = Response.find("\"result\":");
  if (Pos == std::string::npos || Response.empty() || Response.back() != '}')
    return "";
  Pos += 9;
  return Response.substr(Pos, Response.size() - Pos - 1);
}

bool cachedFlag(const std::string &Response) {
  return Response.find("\"cached\":true") != std::string::npos;
}

bool hasErrorKind(const std::string &Response, const char *Kind) {
  return resultOf(Response).find(std::string("\"error\":\"") + Kind + "\"") !=
         std::string::npos;
}

std::string analyzeRequest(const std::string &Source,
                           const std::vector<uint64_t> &Seeds,
                           const std::string &Extra = "") {
  std::string Req = "{\"cmd\":\"analyze\",\"source\":";
  json::appendQuoted(Req, Source);
  if (!Seeds.empty()) {
    Req += ",\"seeds\":[";
    for (size_t I = 0; I < Seeds.size(); ++I) {
      if (I)
        Req += ',';
      Req += std::to_string(Seeds[I]);
    }
    Req += ']';
  }
  Req += Extra;
  Req += '}';
  return Req;
}

/// What the daemon must answer: the payload of a *serial single-shot* run
/// of the same source under the same seeds and engine.
std::string expectedPayload(const std::string &Source,
                            const std::vector<uint64_t> &Seeds,
                            ExecEngine Engine) {
  DiagnosticEngine Diags;
  Program P = parseProgram(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  AnalysisOptions Opts;
  Opts.RandomSeed = Seeds.front();
  Opts.Engine = Engine;
  AnalysisResult R = runDeterminacyAnalysisParallel(P, Opts, Seeds, 1);
  return serve::analysisPayloadJson(R, Engine, Seeds);
}

serve::ServeOptions testOptions() {
  serve::ServeOptions Opts;
  Opts.Port = 0; // Ephemeral.
  Opts.Jobs = 4;
  return Opts;
}

class RunningServer {
public:
  explicit RunningServer(const serve::ServeOptions &Opts) : S(Opts) {
    std::string Error;
    Ok = S.start(&Error);
    EXPECT_TRUE(Ok) << Error;
  }
  ~RunningServer() { S.stop(); }
  serve::Server &server() { return S; }
  uint16_t port() const { return S.port(); }
  bool ok() const { return Ok; }

private:
  serve::Server S;
  bool Ok = false;
};

TEST(Serve, AnalyzeMatchesSingleShotAcrossEngines) {
  RunningServer R(testOptions());
  ASSERT_TRUE(R.ok());
  Client C(R.port());
  ASSERT_TRUE(C.connected());
  std::vector<uint64_t> Seeds = {1, 2, 3};
  for (ExecEngine Engine : {ExecEngine::Bytecode, ExecEngine::TreeWalk}) {
    std::string EngineExtra = std::string(",\"engine\":\"") +
                              execEngineName(Engine) + "\",\"no_cache\":true";
    for (const char *Source :
         {workloads::figure1(), workloads::figure2(), workloads::figure3(),
          workloads::figure4()}) {
      std::string Resp =
          C.roundTrip(analyzeRequest(Source, Seeds, EngineExtra));
      ASSERT_FALSE(Resp.empty());
      EXPECT_FALSE(cachedFlag(Resp));
      EXPECT_EQ(resultOf(Resp), expectedPayload(Source, Seeds, Engine))
          << "engine " << execEngineName(Engine);
    }
  }
}

TEST(Serve, FuzzCorpusMatchesSingleShot) {
  RunningServer R(testOptions());
  ASSERT_TRUE(R.ok());
  Client C(R.port());
  ASSERT_TRUE(C.connected());
  std::vector<uint64_t> Seeds = {1, 2};
  for (uint64_t ProgramSeed : {3u, 17u, 51u, 90u}) {
    std::string Source = workloads::generateProgram(ProgramSeed);
    std::string Resp = C.roundTrip(analyzeRequest(Source, Seeds));
    ASSERT_FALSE(Resp.empty());
    EXPECT_EQ(resultOf(Resp),
              expectedPayload(Source, Seeds, defaultExecEngine()))
        << "program seed " << ProgramSeed;
  }
}

TEST(Serve, CacheHitIsByteIdenticalAndDeadlineTrapsAreNotCached) {
  RunningServer R(testOptions());
  ASSERT_TRUE(R.ok());
  Client C(R.port());
  ASSERT_TRUE(C.connected());

  std::string Req = analyzeRequest(workloads::figure2(), {1, 2, 3, 4});
  std::string Cold = C.roundTrip(Req);
  std::string Warm = C.roundTrip(Req);
  ASSERT_FALSE(Cold.empty());
  ASSERT_FALSE(Warm.empty());
  EXPECT_FALSE(cachedFlag(Cold));
  EXPECT_TRUE(cachedFlag(Warm));
  EXPECT_EQ(resultOf(Cold), resultOf(Warm)); // Byte-identical payloads.
  EXPECT_GE(R.server().cache().resultHits(), 1u);

  // no_cache bypasses the cache in both directions.
  std::string Bypass =
      C.roundTrip(analyzeRequest(workloads::figure2(), {1, 2, 3, 4},
                                 ",\"no_cache\":true"));
  EXPECT_FALSE(cachedFlag(Bypass));
  EXPECT_EQ(resultOf(Bypass), resultOf(Cold));

  // A deadline-trapped result is wall-clock-dependent: never cached.
  std::string Spin =
      analyzeRequest("while (true) { }", {1}, ",\"deadline_ms\":200");
  std::string T1 = C.roundTrip(Spin);
  std::string T2 = C.roundTrip(Spin);
  EXPECT_NE(resultOf(T1).find("\"trap\":\"deadline\""), std::string::npos);
  EXPECT_FALSE(cachedFlag(T1));
  EXPECT_FALSE(cachedFlag(T2));
}

TEST(Serve, MalformedRequestsGetTypedErrorsAndServerSurvives) {
  serve::ServeOptions Opts = testOptions();
  Opts.MaxRequestBytes = 8192;
  RunningServer R(Opts);
  ASSERT_TRUE(R.ok());
  Client C(R.port());
  ASSERT_TRUE(C.connected());

  struct Case {
    const char *Line;
    const char *Kind;
  };
  std::string Deep(200, '[');
  const Case Cases[] = {
      {"{", "bad_request"},                      // Truncated JSON.
      {"not json at all", "bad_request"},        // Not JSON.
      {"[1,2,3]", "bad_request"},                // Not an object.
      {"{\"cmd\":\"analyze\"}", "bad_request"},  // No source or path.
      {"{\"cmd\":\"bogus\"}", "bad_request"},    // Unknown command.
      {"{\"cmd\":\"analyze\",\"source\":\"print(1);\",\"wat\":1}",
       "bad_request"},                           // Unknown member.
      {"{\"cmd\":\"analyze\",\"source\":1}", "bad_request"}, // Wrong type.
      {"{\"cmd\":\"analyze\",\"source\":\"print(1);\",\"seeds\":[]}",
       "bad_request"},                           // Empty seed list.
      {"{\"cmd\":\"analyze\",\"source\":\"print(1);\",\"seeds\":[-1]}",
       "bad_request"},                           // Negative seed.
      {"{\"cmd\":\"analyze\",\"source\":\"print(1);\",\"seeds\":[\"x\"]}",
       "bad_request"},                           // Non-numeric seed.
      {"{\"cmd\":\"analyze\",\"source\":\"print(1);\",\"source\":\"x\","
       "\"path\":\"y\"}", "bad_request"},        // Both source and path.
      {"{\"cmd\":\"analyze\",\"source\":\"print(1);\","
       "\"engine\":\"quantum\"}", "bad_request"}, // Unknown engine.
      {"{\"cmd\":\"analyze\",\"source\":\"print(1);\","
       "\"inject_fault\":\"bogus\"}", "bad_request"}, // Bad injector spec.
      {"{\"id\":{},\"cmd\":\"ping\"}", "bad_request"}, // Non-scalar id.
      {"{\"id\":\"\\ud800\",\"cmd\":\"ping\"}",
       "bad_request"},                           // Lone UTF-16 surrogate.
  };
  for (const Case &TC : Cases) {
    std::string Resp = C.roundTrip(TC.Line);
    ASSERT_FALSE(Resp.empty()) << TC.Line;
    EXPECT_TRUE(hasErrorKind(Resp, TC.Kind))
        << "line: " << TC.Line << "\nresponse: " << Resp;
  }

  // A nesting bomb is depth-limited, not a stack overflow.
  std::string Resp = C.roundTrip(Deep);
  ASSERT_FALSE(Resp.empty());
  EXPECT_TRUE(hasErrorKind(Resp, "bad_request"));

  // Too many seeds.
  std::string ManySeeds = "{\"cmd\":\"analyze\",\"source\":\"print(1);\","
                          "\"seeds\":[";
  for (int I = 0; I < 100; ++I)
    ManySeeds += (I ? "," : "") + std::to_string(I + 1);
  ManySeeds += "]}";
  Resp = C.roundTrip(ManySeeds);
  EXPECT_TRUE(hasErrorKind(Resp, "bad_request"));

  // A payload over the byte budget gets a typed too_large.
  std::string Huge =
      analyzeRequest("print(1);" + std::string(9000, ' '), {1});
  Resp = C.roundTrip(Huge);
  ASSERT_FALSE(Resp.empty());
  EXPECT_TRUE(hasErrorKind(Resp, "too_large"));

  // After the whole hostile corpus, the daemon still serves correctly.
  std::string Good = C.roundTrip(analyzeRequest("print(1);", {1}));
  EXPECT_EQ(resultOf(Good), expectedPayload("print(1);", {1},
                                            defaultExecEngine()));
}

TEST(Serve, ParseAndProgramErrorsAreTyped) {
  RunningServer R(testOptions());
  ASSERT_TRUE(R.ok());
  Client C(R.port());
  ASSERT_TRUE(C.connected());

  std::string Resp = C.roundTrip(analyzeRequest("var x = (((", {1}));
  EXPECT_TRUE(hasErrorKind(Resp, "parse_error")) << Resp;

  Resp = C.roundTrip(analyzeRequest("missingFunction();", {1}));
  EXPECT_TRUE(hasErrorKind(Resp, "program_error")) << Resp;

  // Without --root, every path request is refused outright — even one
  // naming a file that does not exist.
  Resp = C.roundTrip("{\"cmd\":\"analyze\",\"path\":\"/nonexistent.js\"}");
  EXPECT_TRUE(hasErrorKind(Resp, "bad_request")) << Resp;
}

std::string pathRequest(const std::string &Path,
                        const std::string &Extra = "") {
  std::string Req = "{\"cmd\":\"analyze\",\"path\":";
  json::appendQuoted(Req, Path);
  Req += Extra;
  Req += '}';
  return Req;
}

TEST(Serve, PathRequestMatchesInlineSource) {
  std::string Root = ::testing::TempDir() + "serve_path_root";
  ::mkdir(Root.c_str(), 0755);
  serve::ServeOptions Opts = testOptions();
  Opts.Root = Root;
  RunningServer R(Opts);
  ASSERT_TRUE(R.ok());
  Client C(R.port());
  ASSERT_TRUE(C.connected());

  std::string Path = Root + "/serve_path_test.js";
  std::string Source = workloads::figure1();
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << Source;
  }
  std::string ByPath = C.roundTrip(pathRequest(Path, ",\"seeds\":[1,2]"));
  std::string Inline = C.roundTrip(analyzeRequest(Source, {1, 2}));
  ASSERT_FALSE(ByPath.empty());
  EXPECT_EQ(resultOf(ByPath), resultOf(Inline));
  std::remove(Path.c_str());
}

TEST(Serve, PathRequestsAreConfinedToRootAndBounded) {
  std::string Root = ::testing::TempDir() + "serve_confine_root";
  ::mkdir(Root.c_str(), 0755);
  std::string Ok = Root + "/ok.js";
  std::string Big = Root + "/big.js";
  std::string Fifo = Root + "/pipe.js";
  std::string Outside = ::testing::TempDir() + "serve_confine_outside.js";
  {
    std::ofstream(Ok, std::ios::binary) << "print(1);";
    std::ofstream(Big, std::ios::binary) << std::string(5000, ' ');
    std::ofstream(Outside, std::ios::binary) << "print(2);";
  }
  ASSERT_EQ(::mkfifo(Fifo.c_str(), 0600), 0);

  serve::ServeOptions Opts = testOptions();
  Opts.Root = Root;
  Opts.MaxRequestBytes = 4096;
  RunningServer R(Opts);
  ASSERT_TRUE(R.ok());
  Client C(R.port());
  ASSERT_TRUE(C.connected());

  // Inside the root: served normally.
  std::string Good = C.roundTrip(pathRequest(Ok));
  EXPECT_EQ(resultOf(Good),
            expectedPayload("print(1);", {1}, defaultExecEngine()));

  // `..` escapes resolve outside the canonical root and are refused; the
  // file's contents are never reflected back.
  std::string Escape =
      C.roundTrip(pathRequest(Root + "/../serve_confine_outside.js"));
  EXPECT_TRUE(hasErrorKind(Escape, "bad_request")) << Escape;
  EXPECT_EQ(Escape.find("print(2)"), std::string::npos);

  // Absolute paths outside the root (including unbounded device files
  // like /dev/zero, which must never be drained into memory).
  EXPECT_TRUE(hasErrorKind(C.roundTrip(pathRequest("/etc/hostname")),
                           "bad_request"));
  EXPECT_TRUE(hasErrorKind(C.roundTrip(pathRequest("/dev/zero")),
                           "bad_request"));

  // A FIFO inside the root answers promptly (the open must not block the
  // connection thread) with a typed refusal.
  EXPECT_TRUE(hasErrorKind(C.roundTrip(pathRequest(Fifo)), "bad_request"));

  // A regular file over the byte budget is too_large, not an OOM.
  EXPECT_TRUE(hasErrorKind(C.roundTrip(pathRequest(Big)), "too_large"));

  // The daemon survived the whole hostile tour.
  EXPECT_EQ(resultOf(C.roundTrip(pathRequest(Ok))),
            expectedPayload("print(1);", {1}, defaultExecEngine()));

  std::remove(Ok.c_str());
  std::remove(Big.c_str());
  std::remove(Fifo.c_str());
  std::remove(Outside.c_str());
}

TEST(Serve, EightConcurrentClientsGetSingleShotResults) {
  RunningServer R(testOptions());
  ASSERT_TRUE(R.ok());

  // Precompute expected payloads serially, then hammer concurrently.
  struct Job {
    std::string Request;
    std::string Expected;
  };
  std::vector<Job> Jobs;
  std::vector<uint64_t> Seeds = {1, 2};
  for (const char *Source :
       {workloads::figure1(), workloads::figure2(), workloads::figure3(),
        workloads::figure4()})
    Jobs.push_back({analyzeRequest(Source, Seeds),
                    expectedPayload(Source, Seeds, defaultExecEngine())});
  for (uint64_t ProgramSeed : {7u, 23u}) {
    std::string Source = workloads::generateProgram(ProgramSeed);
    Jobs.push_back({analyzeRequest(Source, Seeds),
                    expectedPayload(Source, Seeds, defaultExecEngine())});
  }

  constexpr int NumClients = 8;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumClients; ++T) {
    Threads.emplace_back([&, T] {
      Client C(R.port());
      if (!C.connected()) {
        Failures.fetch_add(1);
        return;
      }
      // Each client walks the job list from its own offset, so at any
      // moment different clients are on different programs.
      for (size_t I = 0; I < Jobs.size(); ++I) {
        const Job &J = Jobs[(I + static_cast<size_t>(T)) % Jobs.size()];
        std::string Resp = C.roundTrip(J.Request);
        if (resultOf(Resp) != J.Expected)
          Failures.fetch_add(1);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  // MaxActiveRequests would show the overlap, but whether sub-millisecond
  // requests ever coincide is up to the scheduler (on a loaded single-CPU
  // host they can fully serialize), so it is not asserted here.
  EXPECT_GE(R.server().stats().RequestsReceived.load(),
            static_cast<uint64_t>(NumClients) * Jobs.size());
}

TEST(Serve, InjectedFaultDegradesWithoutKillingNeighbors) {
  RunningServer R(testOptions());
  ASSERT_TRUE(R.ok());

  std::string CleanReq = analyzeRequest(workloads::figure2(), {1, 2});
  std::string CleanExpected =
      expectedPayload(workloads::figure2(), {1, 2}, defaultExecEngine());
  std::string FaultReq = analyzeRequest(workloads::figure2(), {1, 2},
                                        ",\"inject_fault\":\"steps:3\","
                                        "\"no_cache\":true");

  std::atomic<int> CleanFailures{0}, FaultFailures{0};
  std::thread Faulty([&] {
    Client C(R.port());
    for (int I = 0; I < 6; ++I) {
      std::string Result = resultOf(C.roundTrip(FaultReq));
      // The injected trip degrades this request — visibly — but the
      // response is still a well-formed ok payload with partial facts.
      if (Result.find("\"injected\":true") == std::string::npos ||
          Result.find("\"status\":\"ok\"") == std::string::npos)
        FaultFailures.fetch_add(1);
    }
  });
  std::thread Healthy([&] {
    Client C(R.port());
    for (int I = 0; I < 6; ++I)
      if (resultOf(C.roundTrip(CleanReq)) != CleanExpected)
        CleanFailures.fetch_add(1);
  });
  Faulty.join();
  Healthy.join();
  EXPECT_EQ(FaultFailures.load(), 0);
  EXPECT_EQ(CleanFailures.load(), 0); // Neighbors never saw the faults.
  EXPECT_GE(R.server().stats().InjectedTrips.load(), 6u);
}

TEST(Serve, OverloadShedsWithTypedResponse) {
  serve::ServeOptions Opts = testOptions();
  Opts.Jobs = 1;
  Opts.QueueDepth = 1; // One in-flight request; everything else sheds.
  RunningServer R(Opts);
  ASSERT_TRUE(R.ok());

  Client Slow(R.port());
  Client Fast(R.port());
  ASSERT_TRUE(Slow.connected());
  ASSERT_TRUE(Fast.connected());

  // Occupy the only admission ticket with a deadline-bounded spin...
  ASSERT_TRUE(Slow.sendLine(
      analyzeRequest("while (true) { }", {1}, ",\"deadline_ms\":1500")));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // ...so a concurrent request is shed immediately with a typed response.
  std::string Shed = Fast.roundTrip(analyzeRequest("print(1);", {1}));
  ASSERT_FALSE(Shed.empty());
  EXPECT_TRUE(hasErrorKind(Shed, "overloaded")) << Shed;
  EXPECT_GE(R.server().stats().Shed.load(), 1u);

  // The slow request still completes, degraded by whichever ceiling bites
  // first (the 50M-step budget can fire before a 1.5s deadline).
  std::string SlowResp;
  ASSERT_TRUE(Slow.recvLine(SlowResp));
  EXPECT_NE(resultOf(SlowResp).find("\"exit_code\":3"), std::string::npos)
      << SlowResp;

  // ...and capacity frees up for the shed client to retry.
  std::string Retry = Fast.roundTrip(analyzeRequest("print(1);", {1}));
  EXPECT_EQ(resultOf(Retry),
            expectedPayload("print(1);", {1}, defaultExecEngine()));
}

TEST(Serve, GracefulDrainFinishesInFlightWork) {
  RunningServer R(testOptions());
  ASSERT_TRUE(R.ok());
  Client C(R.port());
  ASSERT_TRUE(C.connected());

  // Put a deadline-bounded request in flight, then ask for shutdown while
  // it runs; pipeline one more request behind it.
  ASSERT_TRUE(C.sendLine(
      analyzeRequest("while (true) { }", {1}, ",\"deadline_ms\":800")));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  R.server().requestShutdown();
  ASSERT_TRUE(C.sendLine(analyzeRequest("print(1);", {1})));

  // The in-flight request finishes with its real (degraded) result; the
  // request that arrived during the drain gets a typed shutting_down.
  std::string First, Second;
  ASSERT_TRUE(C.recvLine(First));
  EXPECT_NE(resultOf(First).find("\"exit_code\":3"), std::string::npos)
      << First;
  ASSERT_TRUE(C.recvLine(Second));
  EXPECT_TRUE(hasErrorKind(Second, "shutting_down")) << Second;

  R.server().wait();

  // The listen socket is gone: new connections are refused.
  Client After(R.port());
  EXPECT_FALSE(After.connected());
}

TEST(Serve, DrainConvergesUnderSustainedTraffic) {
  RunningServer R(testOptions());
  ASSERT_TRUE(R.ok());

  // A client that never goes idle: each response immediately triggers the
  // next request, so the connection's poll always has data waiting. The
  // drain must still close the connection (after answering what was
  // buffered) instead of waiting for an idle timeout that never comes.
  std::thread Busy([&] {
    Client C(R.port());
    if (!C.connected())
      return;
    while (!C.roundTrip("{\"cmd\":\"ping\"}").empty()) {
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto T0 = std::chrono::steady_clock::now();
  R.server().requestShutdown();
  R.server().wait(); // Hangs forever if a busy client can stall the drain.
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  Busy.join();
  EXPECT_LT(ElapsedMs, 5000) << "drain took " << ElapsedMs << "ms";
}

TEST(ServeJson, SurrogatePairsDecodeToUtf8) {
  // \ud83d\ude00 is U+1F600: one 4-byte UTF-8 code point, not two 3-byte
  // CESU-8 halves.
  json::ParseResult R = json::parse("\"\\ud83d\\ude00\"", 8);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.V.Str, "\xF0\x9F\x98\x80");

  // Round-tripping the decoded string (as response echoing does with the
  // id member) emits the same valid UTF-8 bytes.
  std::string Echo;
  json::appendQuoted(Echo, R.V.Str);
  EXPECT_EQ(Echo, "\"\xF0\x9F\x98\x80\"");

  // Basic-plane escapes are unaffected.
  json::ParseResult Bmp = json::parse("\"\\u00e9\"", 8);
  ASSERT_TRUE(Bmp.Ok);
  EXPECT_EQ(Bmp.V.Str, "\xC3\xA9");
}

TEST(ServeJson, LoneSurrogatesAreRejected) {
  EXPECT_FALSE(json::parse("\"\\ud83d\"", 8).Ok);        // Lone high.
  EXPECT_FALSE(json::parse("\"\\ude00\"", 8).Ok);        // Lone low.
  EXPECT_FALSE(json::parse("\"\\ud83dxx\"", 8).Ok);      // High + raw text.
  EXPECT_FALSE(json::parse("\"\\ud83d\\n\"", 8).Ok);     // High + escape.
  EXPECT_FALSE(json::parse("\"\\ud83d\\u0041\"", 8).Ok); // High + non-low.
  EXPECT_FALSE(json::parse("\"\\ud83d\\ud83d\"", 8).Ok); // High + high.
}

TEST(Serve, PingAndStats) {
  RunningServer R(testOptions());
  ASSERT_TRUE(R.ok());
  Client C(R.port());
  ASSERT_TRUE(C.connected());

  std::string Pong = C.roundTrip("{\"id\":42,\"cmd\":\"ping\"}");
  EXPECT_NE(Pong.find("\"id\":42"), std::string::npos);
  EXPECT_NE(Pong.find("\"pong\":true"), std::string::npos);

  C.roundTrip(analyzeRequest("print(1);", {1}));
  std::string Stats = C.roundTrip("{\"cmd\":\"stats\"}");
  EXPECT_NE(Stats.find("\"requests\":"), std::string::npos);
  EXPECT_NE(Stats.find("\"responses_ok\":"), std::string::npos);
  EXPECT_NE(Stats.find("\"cache_misses\":"), std::string::npos);
}

} // namespace
