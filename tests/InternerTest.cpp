//===- InternerTest.cpp - Atom table unit tests ----------------------------==//

#include "support/Interner.h"

#include <gtest/gtest.h>
#include <string>
#include <unordered_set>
#include <vector>

using namespace dda;

namespace {

TEST(Interner, RoundTrip) {
  Interner &I = Interner::global();
  StringId A = I.intern("getWidth");
  EXPECT_TRUE(A.valid());
  EXPECT_EQ(I.view(A), "getWidth");
  EXPECT_EQ(I.str(A), "getWidth");
  // Embedded NULs and non-identifier characters survive.
  std::string Odd("a\0b", 3);
  StringId B = I.intern(Odd);
  EXPECT_EQ(I.view(B), std::string_view(Odd));
}

TEST(Interner, IdEqualityMatchesStringEquality) {
  Interner &I = Interner::global();
  StringId A = I.intern("onclick");
  StringId B = I.intern(std::string("on") + "click");
  StringId C = I.intern("onload");
  EXPECT_EQ(A, B); // Same characters, same atom.
  EXPECT_NE(A, C);
  // The id is the identity: hashes agree for equal atoms too.
  EXPECT_EQ(I.hash(A), I.hash(B));
  EXPECT_EQ(std::hash<StringId>()(A), std::hash<StringId>()(B));
}

TEST(Interner, InvalidAndEmpty) {
  StringId None;
  EXPECT_FALSE(None.valid());
  EXPECT_FALSE(static_cast<bool>(None));
  StringId Empty = intern("");
  EXPECT_TRUE(Empty.valid());
  EXPECT_EQ(atomText(Empty), "");
  EXPECT_EQ(Empty, atoms().Empty);
}

TEST(Interner, WellKnownAtomsAreCanonical) {
  EXPECT_EQ(intern("length"), atoms().Length);
  EXPECT_EQ(intern("prototype"), atoms().Prototype);
  EXPECT_EQ(intern("undefined"), atoms().Undefined);
  EXPECT_EQ(intern("load"), atoms().Load);
}

TEST(Interner, NumericIndexCanonicalization) {
  Interner &I = Interner::global();
  // internIndex yields the same atom as interning the decimal spelling.
  EXPECT_EQ(I.internIndex(0), I.intern("0"));
  EXPECT_EQ(I.internIndex(42), I.intern("42"));
  EXPECT_EQ(I.internIndex(4095), I.intern("4095"));   // Cache boundary.
  EXPECT_EQ(I.internIndex(123456), I.intern("123456")); // Beyond the cache.

  // Canonical indices carry their numeric value.
  EXPECT_EQ(I.arrayIndex(I.intern("0")), 0u);
  EXPECT_EQ(I.arrayIndex(I.intern("7")), 7u);
  EXPECT_EQ(I.arrayIndex(I.intern("4294967294")), 4294967294u);
  EXPECT_TRUE(I.isArrayIndex(I.intern("31")));

  // Non-canonical spellings are not indices: leading zeros, signs, floats,
  // out-of-range, and plain identifiers.
  EXPECT_EQ(I.arrayIndex(I.intern("01")), Interner::NotAnIndex);
  EXPECT_EQ(I.arrayIndex(I.intern("-1")), Interner::NotAnIndex);
  EXPECT_EQ(I.arrayIndex(I.intern("1.5")), Interner::NotAnIndex);
  EXPECT_EQ(I.arrayIndex(I.intern("4294967295")), Interner::NotAnIndex);
  EXPECT_EQ(I.arrayIndex(I.intern("length")), Interner::NotAnIndex);
  EXPECT_EQ(I.arrayIndex(atoms().Empty), Interner::NotAnIndex);
}

TEST(Interner, NumberAndCharInterning) {
  Interner &I = Interner::global();
  EXPECT_EQ(I.internNumber(3.0), I.intern("3"));
  EXPECT_EQ(I.internNumber(-2.0), I.intern("-2"));
  EXPECT_EQ(I.internNumber(0.5), I.intern("0.5"));
  EXPECT_EQ(I.internChar('x'), I.intern("x"));
  EXPECT_EQ(I.internChar('0'), I.intern("0"));
  EXPECT_EQ(I.arrayIndex(I.internChar('3')), 3u);
}

TEST(Interner, StressManyAtoms) {
  // 100k distinct atoms: ids stay unique, views stay stable and correct
  // (deque storage must not invalidate earlier strings as the table grows).
  Interner &I = Interner::global();
  const size_t N = 100000;
  std::vector<StringId> Ids;
  Ids.reserve(N);
  std::vector<std::string_view> Views;
  Views.reserve(N);
  for (size_t K = 0; K < N; ++K) {
    StringId Id = I.intern("stress_atom_" + std::to_string(K));
    Ids.push_back(Id);
    Views.push_back(I.view(Id));
  }
  std::unordered_set<uint32_t> Unique;
  for (StringId Id : Ids)
    Unique.insert(Id.Raw);
  EXPECT_EQ(Unique.size(), N);
  // Re-interning returns the identical id; stored views were not moved.
  for (size_t K = 0; K < N; K += 997) {
    std::string S = "stress_atom_" + std::to_string(K);
    EXPECT_EQ(I.intern(S), Ids[K]);
    EXPECT_EQ(Views[K], S);
    EXPECT_EQ(I.view(Ids[K]).data(), Views[K].data());
  }
}

} // namespace
