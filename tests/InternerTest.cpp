//===- InternerTest.cpp - Atom table unit tests ----------------------------==//

#include "support/Interner.h"

#include <gtest/gtest.h>
#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace dda;

namespace {

TEST(Interner, RoundTrip) {
  Interner &I = Interner::global();
  StringId A = I.intern("getWidth");
  EXPECT_TRUE(A.valid());
  EXPECT_EQ(I.view(A), "getWidth");
  EXPECT_EQ(I.str(A), "getWidth");
  // Embedded NULs and non-identifier characters survive.
  std::string Odd("a\0b", 3);
  StringId B = I.intern(Odd);
  EXPECT_EQ(I.view(B), std::string_view(Odd));
}

TEST(Interner, IdEqualityMatchesStringEquality) {
  Interner &I = Interner::global();
  StringId A = I.intern("onclick");
  StringId B = I.intern(std::string("on") + "click");
  StringId C = I.intern("onload");
  EXPECT_EQ(A, B); // Same characters, same atom.
  EXPECT_NE(A, C);
  // The id is the identity: hashes agree for equal atoms too.
  EXPECT_EQ(I.hash(A), I.hash(B));
  EXPECT_EQ(std::hash<StringId>()(A), std::hash<StringId>()(B));
}

TEST(Interner, InvalidAndEmpty) {
  StringId None;
  EXPECT_FALSE(None.valid());
  EXPECT_FALSE(static_cast<bool>(None));
  StringId Empty = intern("");
  EXPECT_TRUE(Empty.valid());
  EXPECT_EQ(atomText(Empty), "");
  EXPECT_EQ(Empty, atoms().Empty);
}

TEST(Interner, WellKnownAtomsAreCanonical) {
  EXPECT_EQ(intern("length"), atoms().Length);
  EXPECT_EQ(intern("prototype"), atoms().Prototype);
  EXPECT_EQ(intern("undefined"), atoms().Undefined);
  EXPECT_EQ(intern("load"), atoms().Load);
}

TEST(Interner, NumericIndexCanonicalization) {
  Interner &I = Interner::global();
  // internIndex yields the same atom as interning the decimal spelling.
  EXPECT_EQ(I.internIndex(0), I.intern("0"));
  EXPECT_EQ(I.internIndex(42), I.intern("42"));
  EXPECT_EQ(I.internIndex(4095), I.intern("4095"));   // Cache boundary.
  EXPECT_EQ(I.internIndex(123456), I.intern("123456")); // Beyond the cache.

  // Canonical indices carry their numeric value.
  EXPECT_EQ(I.arrayIndex(I.intern("0")), 0u);
  EXPECT_EQ(I.arrayIndex(I.intern("7")), 7u);
  EXPECT_EQ(I.arrayIndex(I.intern("4294967294")), 4294967294u);
  EXPECT_TRUE(I.isArrayIndex(I.intern("31")));

  // Non-canonical spellings are not indices: leading zeros, signs, floats,
  // out-of-range, and plain identifiers.
  EXPECT_EQ(I.arrayIndex(I.intern("01")), Interner::NotAnIndex);
  EXPECT_EQ(I.arrayIndex(I.intern("-1")), Interner::NotAnIndex);
  EXPECT_EQ(I.arrayIndex(I.intern("1.5")), Interner::NotAnIndex);
  EXPECT_EQ(I.arrayIndex(I.intern("4294967295")), Interner::NotAnIndex);
  EXPECT_EQ(I.arrayIndex(I.intern("length")), Interner::NotAnIndex);
  EXPECT_EQ(I.arrayIndex(atoms().Empty), Interner::NotAnIndex);
}

TEST(Interner, NumberAndCharInterning) {
  Interner &I = Interner::global();
  EXPECT_EQ(I.internNumber(3.0), I.intern("3"));
  EXPECT_EQ(I.internNumber(-2.0), I.intern("-2"));
  EXPECT_EQ(I.internNumber(0.5), I.intern("0.5"));
  EXPECT_EQ(I.internChar('x'), I.intern("x"));
  EXPECT_EQ(I.internChar('0'), I.intern("0"));
  EXPECT_EQ(I.arrayIndex(I.internChar('3')), 3u);
}

TEST(Interner, StressManyAtoms) {
  // 100k distinct atoms: ids stay unique, views stay stable and correct
  // (deque storage must not invalidate earlier strings as the table grows).
  Interner &I = Interner::global();
  const size_t N = 100000;
  std::vector<StringId> Ids;
  Ids.reserve(N);
  std::vector<std::string_view> Views;
  Views.reserve(N);
  for (size_t K = 0; K < N; ++K) {
    StringId Id = I.intern("stress_atom_" + std::to_string(K));
    Ids.push_back(Id);
    Views.push_back(I.view(Id));
  }
  std::unordered_set<uint32_t> Unique;
  for (StringId Id : Ids)
    Unique.insert(Id.Raw);
  EXPECT_EQ(Unique.size(), N);
  // Re-interning returns the identical id; stored views were not moved.
  for (size_t K = 0; K < N; K += 997) {
    std::string S = "stress_atom_" + std::to_string(K);
    EXPECT_EQ(I.intern(S), Ids[K]);
    EXPECT_EQ(Views[K], S);
    EXPECT_EQ(I.view(Ids[K]).data(), Views[K].data());
  }
}

TEST(Interner, ConcurrentInternAndView) {
  // 8 threads hammer the global table with overlapping shared strings,
  // thread-disjoint strings, numeric indices, and single chars, reading back
  // every atom as it is created. After the join (the synchronization edge
  // that publishes every id) all threads must agree: one id per distinct
  // string, views that round-trip, and correct numeric-index decoding.
  Interner &I = Interner::global();
  constexpr unsigned NumThreads = 8;
  constexpr size_t SharedAtoms = 2000;
  constexpr size_t PrivateAtoms = 2000;

  struct ThreadLog {
    std::vector<std::pair<std::string, StringId>> Interned;
  };
  std::vector<ThreadLog> Logs(NumThreads);
  std::atomic<unsigned> Ready{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      // Spin until every thread is constructed so the interleaving is real.
      Ready.fetch_add(1);
      while (Ready.load() < NumThreads) {
      }
      ThreadLog &Log = Logs[T];
      for (size_t K = 0; K < SharedAtoms; ++K) {
        // Every thread races to intern the same string...
        std::string Shared = "cc_shared_" + std::to_string(K);
        StringId Id = I.intern(Shared);
        if (I.view(Id) != Shared)
          std::abort(); // EXPECT_* is not thread-safe; abort loudly instead.
        Log.Interned.emplace_back(Shared, Id);
        // ...interleaved with strings only this thread creates.
        if (K < PrivateAtoms) {
          std::string Priv =
              "cc_private_" + std::to_string(T) + "_" + std::to_string(K);
          StringId P = I.intern(Priv);
          if (I.view(P) != Priv)
            std::abort();
          Log.Interned.emplace_back(Priv, P);
        }
        // Numeric-index and char caches race too.
        uint32_t Idx = static_cast<uint32_t>(K % 6000);
        StringId N = I.internIndex(Idx);
        if (I.arrayIndex(N) != Idx)
          std::abort();
        StringId C = I.internChar(static_cast<char>('a' + (K % 26)));
        if (I.view(C).size() != 1)
          std::abort();
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  // Post-join agreement: the same string always produced the same id, and
  // re-interning serially returns it again.
  std::unordered_map<std::string, StringId> Canon;
  for (const ThreadLog &Log : Logs) {
    for (const auto &[Text, Id] : Log.Interned) {
      auto [It, Inserted] = Canon.emplace(Text, Id);
      (void)Inserted;
      EXPECT_EQ(It->second, Id) << "two ids for \"" << Text << "\"";
      EXPECT_EQ(I.intern(Text), Id);
      EXPECT_EQ(I.view(Id), Text);
    }
  }
  EXPECT_EQ(Canon.size(), SharedAtoms + NumThreads * PrivateAtoms);
}

} // namespace
