//===- FactsTest.cpp - Fact database unit tests ------------------------------==//

#include "determinacy/Facts.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace dda;

namespace {

FactValue num(double N) {
  FactValue F;
  F.K = FactValue::Number;
  F.Num = N;
  return F;
}

FactValue str(std::string S) {
  FactValue F;
  F.K = FactValue::String;
  F.Str = intern(S);
  return F;
}

TEST(Facts, FirstObservationIsStored) {
  FactDB DB;
  DB.record({1, 0, FactKind::Condition, 0}, num(5));
  const FactValue *F = DB.query({1, 0, FactKind::Condition, 0});
  ASSERT_TRUE(F);
  EXPECT_DOUBLE_EQ(F->Num, 5);
}

TEST(Facts, AgreeingRevisitsStayDeterminate) {
  FactDB DB;
  DB.record({1, 0, FactKind::Assign, 0}, num(5));
  DB.record({1, 0, FactKind::Assign, 0}, num(5));
  EXPECT_TRUE(DB.query({1, 0, FactKind::Assign, 0})->isDeterminate());
}

TEST(Facts, DisagreeingRevisitsDemoteToIndeterminate) {
  FactDB DB;
  DB.record({1, 0, FactKind::Assign, 0}, num(5));
  DB.record({1, 0, FactKind::Assign, 0}, num(6));
  EXPECT_FALSE(DB.query({1, 0, FactKind::Assign, 0})->isDeterminate());
  // Once indeterminate, always indeterminate.
  DB.record({1, 0, FactKind::Assign, 0}, num(5));
  EXPECT_FALSE(DB.query({1, 0, FactKind::Assign, 0})->isDeterminate());
}

TEST(Facts, KeysAreFullyDiscriminated) {
  FactDB DB;
  DB.record({1, 0, FactKind::Assign, 0}, num(1));
  DB.record({1, 1, FactKind::Assign, 0}, num(2)); // Different context.
  DB.record({1, 0, FactKind::CallArg, 0}, num(3)); // Different kind.
  DB.record({1, 0, FactKind::CallArg, 1}, num(4)); // Different index.
  DB.record({2, 0, FactKind::Assign, 0}, num(5));  // Different node.
  EXPECT_EQ(DB.size(), 5u);
  EXPECT_DOUBLE_EQ(DB.query({1, 1, FactKind::Assign, 0})->Num, 2);
  EXPECT_DOUBLE_EQ(DB.query({1, 0, FactKind::CallArg, 1})->Num, 4);
}

TEST(Facts, QueryMissReturnsNull) {
  FactDB DB;
  EXPECT_EQ(DB.query({9, 9, FactKind::EvalArg, 0}), nullptr);
}

TEST(Facts, NaNFactsCompareEqual) {
  // A point that always yields NaN is determinate (NaN is one value here).
  FactDB DB;
  DB.record({1, 0, FactKind::Assign, 0}, num(std::nan("")));
  DB.record({1, 0, FactKind::Assign, 0}, num(std::nan("")));
  EXPECT_TRUE(DB.query({1, 0, FactKind::Assign, 0})->isDeterminate());
}

TEST(Facts, ObjectFactsCompareByAllocationSite) {
  FactValue A, B, C;
  A.K = B.K = C.K = FactValue::Object;
  A.Node = 10;
  B.Node = 10;
  C.Node = 11;
  EXPECT_TRUE(A.sameAs(B));
  EXPECT_FALSE(A.sameAs(C));
  // Runtime-created objects (site 0) never match, even themselves.
  FactValue R1, R2;
  R1.K = R2.K = FactValue::Object;
  EXPECT_FALSE(R1.sameAs(R2));
}

TEST(Facts, MergeKeepsUnionAndDemotesConflicts) {
  FactDB A, B;
  A.record({1, 0, FactKind::Assign, 0}, num(1));
  A.record({2, 0, FactKind::Assign, 0}, num(2));
  B.record({2, 0, FactKind::Assign, 0}, num(99)); // Conflict.
  B.record({3, 0, FactKind::Assign, 0}, num(3));  // New.
  A.merge(B);
  EXPECT_EQ(A.size(), 3u);
  EXPECT_TRUE(A.query({1, 0, FactKind::Assign, 0})->isDeterminate());
  EXPECT_FALSE(A.query({2, 0, FactKind::Assign, 0})->isDeterminate());
  EXPECT_TRUE(A.query({3, 0, FactKind::Assign, 0})->isDeterminate());
}

TEST(Facts, CountsByKindAndDeterminacy) {
  FactDB DB;
  DB.record({1, 0, FactKind::Condition, 0}, num(1));
  DB.record({2, 0, FactKind::Condition, 0}, FactValue::indet());
  DB.record({3, 0, FactKind::EvalArg, 0}, str("x"));
  EXPECT_EQ(DB.countOfKind(FactKind::Condition), 2u);
  EXPECT_EQ(DB.countOfKind(FactKind::EvalArg), 1u);
  EXPECT_EQ(DB.countDeterminate(), 2u);
}

TEST(Facts, RenderingMatchesPaperNotation) {
  EXPECT_EQ(num(23).str(), "23");
  EXPECT_EQ(str("width").str(), "\"width\"");
  EXPECT_EQ(FactValue::indet().str(), "?");
  FactValue B;
  B.K = FactValue::Boolean;
  B.B = true;
  EXPECT_EQ(B.str(), "true");
  FactValue Fn;
  Fn.K = FactValue::Function;
  Fn.Node = 12;
  EXPECT_EQ(Fn.str(), "function@12");
}

TEST(Facts, DumpIsStableAndComplete) {
  FactDB DB;
  ContextTable Contexts;
  ContextID C = Contexts.intern(ContextTable::Root, 5, 0, 16);
  DB.record({7, C, FactKind::Condition, 0}, num(1));
  DB.record({3, ContextTable::Root, FactKind::EvalArg, 0}, str("a"));
  std::string Dump = DB.dump(Contexts);
  EXPECT_NE(Dump.find("node3"), std::string::npos);
  EXPECT_NE(Dump.find("node7"), std::string::npos);
  EXPECT_NE(Dump.find("16"), std::string::npos);
  // node3 sorts before node7.
  EXPECT_LT(Dump.find("node3"), Dump.find("node7"));
}

TEST(Facts, UniformAgreesAcrossContexts) {
  FactDB DB;
  DB.record({1, 10, FactKind::Condition, 0}, num(1));
  DB.record({1, 11, FactKind::Condition, 0}, num(1));
  const FactValue *U = DB.uniform(FactKind::Condition, 1);
  ASSERT_TRUE(U);
  EXPECT_DOUBLE_EQ(U->Num, 1);
}

TEST(Facts, UniformRejectsDisagreementOrIndeterminacy) {
  FactDB DB;
  DB.record({1, 10, FactKind::Condition, 0}, num(1));
  DB.record({1, 11, FactKind::Condition, 0}, num(2));
  EXPECT_EQ(DB.uniform(FactKind::Condition, 1), nullptr);

  FactDB DB2;
  DB2.record({1, 10, FactKind::Condition, 0}, num(1));
  DB2.record({1, 11, FactKind::Condition, 0}, FactValue::indet());
  EXPECT_EQ(DB2.uniform(FactKind::Condition, 1), nullptr);
  // Unobserved points have no uniform fact.
  EXPECT_EQ(DB2.uniform(FactKind::EvalArg, 99), nullptr);
}

} // namespace
