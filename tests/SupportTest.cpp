//===- SupportTest.cpp - Support library unit tests --------------------------==//

#include "support/Diagnostics.h"
#include "support/RNG.h"
#include "support/Table.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <set>

using namespace dda;

namespace {

TEST(RNG, DeterministicPerSeed) {
  RNG A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(RNG, DoubleInUnitInterval) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNG, NextBelowRespectsBound) {
  RNG R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 200; ++I) {
    uint64_t V = R.nextBelow(5);
    EXPECT_LT(V, 5u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u); // All residues hit.
  EXPECT_EQ(R.nextBelow(0), 0u);
}

TEST(RNG, StateSnapshotRestores) {
  // The counterfactual-execution tape-restore contract.
  RNG R(5);
  R.next();
  uint64_t State = R.getState();
  uint64_t A = R.next();
  uint64_t B = R.next();
  R.setState(State);
  EXPECT_EQ(R.next(), A);
  EXPECT_EQ(R.next(), B);
}

TEST(Diagnostics, CountsAndRendering) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 7, 0), "something bad");
  D.warning(SourceLoc(1, 1, 0), "heads up");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 2u);
  std::string Text = D.str();
  EXPECT_NE(Text.find("3:7: error: something bad"), std::string::npos);
  EXPECT_NE(Text.find("1:1: warning: heads up"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diagnostics().empty());
}

TEST(Table, AlignsColumns) {
  TextTable T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "22"});
  std::string Out = T.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
  // Both value columns start at the same offset.
  size_t Row1 = Out.find("a ");
  size_t Row2 = Out.find("longer-name");
  ASSERT_NE(Row1, std::string::npos);
  ASSERT_NE(Row2, std::string::npos);
  size_t Col1 = Out.find('1', Row1) - Out.rfind('\n', Row1);
  size_t Col2 = Out.find("22", Row2) - Out.rfind('\n', Row2);
  EXPECT_EQ(Col1, Col2);
}

TEST(Table, ShortRowsPadded) {
  TextTable T({"a", "b", "c"});
  T.addRow({"only"});
  EXPECT_NE(T.str().find("only"), std::string::npos);
}

TEST(SourceLoc, Rendering) {
  EXPECT_EQ(SourceLoc(12, 3, 100).str(), "12:3");
  EXPECT_FALSE(SourceLoc().isValid());
  EXPECT_TRUE(SourceLoc(1, 1, 0).isValid());
}

} // namespace
