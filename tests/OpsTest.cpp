//===- OpsTest.cpp - Coercions and primitive operator tests ----------------==//

#include "interp/Ops.h"

#include "support/StringUtils.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace dda;

namespace {

TEST(NumberToString, Integers) {
  EXPECT_EQ(numberToString(0), "0");
  EXPECT_EQ(numberToString(-0.0), "0");
  EXPECT_EQ(numberToString(23), "23");
  EXPECT_EQ(numberToString(-7), "-7");
  EXPECT_EQ(numberToString(1e6), "1000000");
}

TEST(NumberToString, NonIntegers) {
  EXPECT_EQ(numberToString(3.14), "3.14");
  EXPECT_EQ(numberToString(0.5), "0.5");
}

TEST(NumberToString, Specials) {
  EXPECT_EQ(numberToString(std::nan("")), "NaN");
  EXPECT_EQ(numberToString(INFINITY), "Infinity");
  EXPECT_EQ(numberToString(-INFINITY), "-Infinity");
}

TEST(StringToNumber, Basic) {
  EXPECT_DOUBLE_EQ(stringToNumber("42"), 42);
  EXPECT_DOUBLE_EQ(stringToNumber("  3.5 "), 3.5);
  EXPECT_DOUBLE_EQ(stringToNumber(""), 0);
  EXPECT_DOUBLE_EQ(stringToNumber("0x10"), 16);
  EXPECT_TRUE(std::isnan(stringToNumber("4x")));
  EXPECT_TRUE(std::isnan(stringToNumber("abc")));
}

TEST(ToBoolean, AllKinds) {
  Heap H;
  EXPECT_FALSE(toBoolean(Value::undefined()));
  EXPECT_FALSE(toBoolean(Value::null()));
  EXPECT_FALSE(toBoolean(Value::number(0)));
  EXPECT_FALSE(toBoolean(Value::number(std::nan(""))));
  EXPECT_FALSE(toBoolean(Value::string("")));
  EXPECT_TRUE(toBoolean(Value::number(31.4)));
  EXPECT_TRUE(toBoolean(Value::string("0"))); // Non-empty string is true.
  EXPECT_TRUE(toBoolean(Value::object(H.allocate(ObjectClass::Plain))));
}

TEST(ToNumber, Coercions) {
  EXPECT_DOUBLE_EQ(toNumber(Value::null()), 0);
  EXPECT_TRUE(std::isnan(toNumber(Value::undefined())));
  EXPECT_DOUBLE_EQ(toNumber(Value::boolean(true)), 1);
  EXPECT_DOUBLE_EQ(toNumber(Value::string("12")), 12);
}

TEST(ToString, ArrayJoinsElements) {
  Heap H;
  ObjectRef Arr = H.allocate(ObjectClass::Array);
  H.get(Arr).set(intern("0"), Slot{Value::number(1)});
  H.get(Arr).set(intern("1"), Slot{Value::string("x")});
  H.get(Arr).set(atoms().Length, Slot{Value::number(2)});
  EXPECT_EQ(toStringValue(Value::object(Arr), H), "1,x");
}

TEST(StrictEquals, Basics) {
  EXPECT_TRUE(strictEquals(Value::number(1), Value::number(1)));
  EXPECT_FALSE(strictEquals(Value::number(1), Value::string("1")));
  EXPECT_FALSE(strictEquals(Value::number(std::nan("")),
                            Value::number(std::nan(""))));
  EXPECT_TRUE(strictEquals(Value::undefined(), Value::undefined()));
  EXPECT_FALSE(strictEquals(Value::undefined(), Value::null()));
}

TEST(LooseEquals, Coercing) {
  EXPECT_TRUE(looseEquals(Value::null(), Value::undefined()));
  EXPECT_TRUE(looseEquals(Value::number(1), Value::string("1")));
  EXPECT_TRUE(looseEquals(Value::boolean(true), Value::number(1)));
  EXPECT_FALSE(looseEquals(Value::number(2), Value::string("1")));
}

TEST(BinaryOps, AddConcatenatesWithStrings) {
  Heap H;
  Value R = applyBinaryOp(BinaryOp::Add, Value::string("get"),
                          Value::string("Width"), H);
  EXPECT_EQ(R.strView(), "getWidth");
  R = applyBinaryOp(BinaryOp::Add, Value::string("n="), Value::number(3), H);
  EXPECT_EQ(R.strView(), "n=3");
  R = applyBinaryOp(BinaryOp::Add, Value::number(1), Value::number(2), H);
  EXPECT_DOUBLE_EQ(R.Num, 3);
}

TEST(BinaryOps, Arithmetic) {
  Heap H;
  EXPECT_DOUBLE_EQ(
      applyBinaryOp(BinaryOp::Mod, Value::number(7), Value::number(3), H).Num,
      1);
  EXPECT_DOUBLE_EQ(
      applyBinaryOp(BinaryOp::Div, Value::number(1), Value::number(2), H).Num,
      0.5);
}

TEST(BinaryOps, RelationalStringsLexicographic) {
  Heap H;
  EXPECT_TRUE(applyBinaryOp(BinaryOp::Less, Value::string("a"),
                            Value::string("b"), H)
                  .Bool);
  // Lexicographic, not numeric: "10" < "9" because '1' < '9'.
  EXPECT_TRUE(applyBinaryOp(BinaryOp::Less, Value::string("10"),
                            Value::string("9"), H)
                  .Bool);
}

TEST(BinaryOps, RelationalNaNAlwaysFalse) {
  Heap H;
  Value NaN = Value::number(std::nan(""));
  EXPECT_FALSE(applyBinaryOp(BinaryOp::Less, NaN, Value::number(1), H).Bool);
  EXPECT_FALSE(
      applyBinaryOp(BinaryOp::GreaterEq, NaN, Value::number(1), H).Bool);
}

TEST(Identifiers, Classification) {
  EXPECT_TRUE(isIdentifier("getWidth"));
  EXPECT_TRUE(isIdentifier("_f"));
  EXPECT_TRUE(isIdentifier("$x1"));
  EXPECT_FALSE(isIdentifier("get-width"));
  EXPECT_FALSE(isIdentifier("1abc"));
  EXPECT_FALSE(isIdentifier(""));
  EXPECT_FALSE(isIdentifier("function"));
  EXPECT_FALSE(isIdentifier("a b"));
}

} // namespace
