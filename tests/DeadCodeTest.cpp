//===- DeadCodeTest.cpp - Dead-code client tests ----------------------------==//

#include "deadcode/DeadCode.h"

#include "parser/Parser.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace dda;

namespace {

Program parse(const std::string &Source) {
  DiagnosticEngine Diags;
  Program P = parseProgram(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return P;
}

DeadCodeResult analyze(const std::string &Source) {
  Program P = parse(Source);
  AnalysisResult A = runDeterminacyAnalysis(P, AnalysisOptions());
  EXPECT_TRUE(A.Ok) << A.Error;
  return findDeadCode(P, A);
}

TEST(DeadCode, DeterminatelyFalseBranchIsDead) {
  DeadCodeResult R = analyze("if (2 < 1) { print(\"a\"); print(\"b\"); }\n"
                             "print(\"live\");\n");
  ASSERT_EQ(R.Regions.size(), 1u);
  EXPECT_FALSE(R.Regions[0].CondValue);
  EXPECT_EQ(R.Regions[0].StatementCount, 3u); // Block + 2 prints.
  EXPECT_GT(R.TotalStatements, R.DeadStatements);
}

TEST(DeadCode, DeterminatelyTrueConditionKillsElse) {
  DeadCodeResult R = analyze(
      "if (1 < 2) { print(\"then\"); } else { print(\"dead\"); }\n");
  ASSERT_EQ(R.Regions.size(), 1u);
  EXPECT_TRUE(R.Regions[0].CondValue);
}

TEST(DeadCode, IndeterminateConditionIsNotDead) {
  DeadCodeResult R = analyze(
      "if (Math.random() < 0.5) { print(\"a\"); } else { print(\"b\"); }\n");
  EXPECT_TRUE(R.Regions.empty());
}

TEST(DeadCode, ContextVaryingConditionIsNotDead) {
  // The condition is determinate *per context* but differs across contexts:
  // neither side is globally dead.
  DeadCodeResult R = analyze("function f(x) {\n"
                             "  if (x === 1) { print(\"one\"); }\n"
                             "  else { print(\"other\"); }\n"
                             "}\n"
                             "f(1);\n"
                             "f(2);\n");
  EXPECT_TRUE(R.Regions.empty());
}

TEST(DeadCode, NestedDeadRegionsNotDoubleCounted) {
  DeadCodeResult R = analyze("if (2 < 1) {\n"
                             "  if (3 < 1) { print(\"inner\"); }\n"
                             "  print(\"outer\");\n"
                             "}\n");
  ASSERT_EQ(R.Regions.size(), 1u); // Only the outer region.
}

TEST(DeadCode, FunctionsInsideDeadBranchCount) {
  DeadCodeResult R = analyze("if (false) {\n"
                             "  var helper = function() { print(\"x\"); };\n"
                             "  helper();\n"
                             "}\n");
  ASSERT_EQ(R.Regions.size(), 1u);
  EXPECT_GE(R.Regions[0].StatementCount, 4u);
}

TEST(DeadCode, Figure1MonomorphicCallSitesLeaveDispatcherLive) {
  // The $ dispatcher is called with several argument types, so none of its
  // dispatch branches is globally dead.
  Program P = parse(workloads::figure1());
  AnalysisResult A = runDeterminacyAnalysis(P, AnalysisOptions());
  ASSERT_TRUE(A.Ok);
  DeadCodeResult R = findDeadCode(P, A);
  EXPECT_TRUE(R.Regions.empty());
}

TEST(DeadCode, DetDomRevealsDeadLegacyPaths) {
  // The eval-suite #16 pattern: a DOM-guarded legacy path is dead under the
  // determinate-DOM assumption but not under the conservative one.
  const char *Source = R"JS(
var el = document.getElementById("widget");
if (el.getAttribute("legacy") === "on") {
  print("legacy path");
}
print("done");
)JS";
  {
    Program P = parse(Source);
    AnalysisResult A = runDeterminacyAnalysis(P, AnalysisOptions());
    ASSERT_TRUE(A.Ok);
    EXPECT_TRUE(findDeadCode(P, A).Regions.empty());
  }
  {
    Program P = parse(Source);
    AnalysisOptions Opts;
    Opts.DeterminateDom = true;
    AnalysisResult A = runDeterminacyAnalysis(P, Opts);
    ASSERT_TRUE(A.Ok);
    DeadCodeResult R = findDeadCode(P, A);
    ASSERT_EQ(R.Regions.size(), 1u);
    EXPECT_FALSE(R.Regions[0].CondValue);
  }
}

TEST(DeadCode, DeadFractionMetric) {
  DeadCodeResult R = analyze("print(1);\n"
                             "if (2 < 1) { print(2); }\n");
  EXPECT_GT(R.deadFraction(), 0.0);
  EXPECT_LT(R.deadFraction(), 1.0);
}

} // namespace
