//===- SnapshotTest.cpp - COW snapshot vs journal undo differential suite ==//
///
/// The copy-on-write snapshot undo engine replaces the journal's
/// reverse-replay for counterfactual branches; these tests hold the two to
/// *observational identity*: byte-identical fact dumps, outputs, stats
/// (including journal-entry counts — the slim journal still logs every
/// write for vd/pd marking), executed sets, and exit codes, across every
/// workload family (paper figures, miniquery, the eval suite's
/// runtime-compiled overlays, generated fuzz programs), both expression
/// engines, injected faults, seed fan-outs at jobs 1 and 8, and with
/// intra-run branch parallelism on or off.
///
/// The snapshot-only counters (SnapshotForks, CowCopies,
/// ParallelBranchTasks/Commits) are deliberately excluded from the
/// fingerprint: they describe *how* undo was done, not what the analysis
/// concluded, and legitimately differ between engines.
///
//===----------------------------------------------------------------------===//

#include "determinacy/Determinacy.h"
#include "determinacy/InstrumentedInterpreter.h"
#include "determinacy/ParallelAnalysis.h"
#include "parser/Parser.h"
#include "serve/Protocol.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>

using namespace dda;

namespace {

Program parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  Program P = parseProgram(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return P;
}

/// Same sweep as the bytecode differential suite: figures, miniquery,
/// runnable eval-suite overlays, and a band of generated fuzz programs.
std::vector<std::pair<std::string, std::string>> corpus() {
  std::vector<std::pair<std::string, std::string>> Out;
  Out.emplace_back("figure1", workloads::figure1());
  Out.emplace_back("figure2", workloads::figure2());
  Out.emplace_back("figure3", workloads::figure3());
  Out.emplace_back("figure4", workloads::figure4());
  for (int Minor = 0; Minor < 4; ++Minor)
    Out.emplace_back("miniquery1_" + std::to_string(Minor),
                     workloads::miniquery(Minor));
  for (const auto &B : workloads::evalSuite())
    if (B.Runnable) {
      std::string Name = std::string("eval_") + B.Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      Out.emplace_back(Name, B.Source);
    }
  for (uint64_t Seed = 1; Seed <= 12; ++Seed)
    Out.emplace_back("fuzz" + std::to_string(Seed),
                     workloads::generateProgram(Seed));
  return Out;
}

/// Everything the undo engines must agree on, rendered to one string so a
/// divergence shows up as a readable diff. Mirrors the bytecode suite's
/// fingerprint and adds the serve-layer exit code.
std::string undoFingerprint(const AnalysisResult &R) {
  std::ostringstream OS;
  OS << "ok=" << R.Ok << " trap=" << static_cast<int>(R.Trap)
     << " exit=" << serve::analysisExitCode(R)
     << " degraded=" << R.Degradation.degraded()
     << " events=" << R.Degradation.EventsTotal << "\n"
     << "error=" << R.Error << "\n"
     << "steps=" << R.Stats.StepsUsed << " flushes=" << R.Stats.HeapFlushes
     << " cf=" << R.Stats.Counterfactuals
     << " cfAborts=" << R.Stats.CounterfactualAborts
     << " journal=" << R.Stats.JournalEntries
     << " flushlimit=" << R.Stats.FlushLimitHit << "\n"
     << "executedCalls=" << R.ExecutedCalls.size()
     << " executedStmts=" << R.ExecutedStmts.size() << "\n"
     << "--- output ---\n"
     << R.Output << "--- facts ---\n"
     << R.Facts.dump(R.Contexts);
  return OS.str();
}

AnalysisOptions undoOptions(UndoEngine Undo, ExecEngine Engine) {
  AnalysisOptions Opts;
  Opts.Undo = Undo;
  Opts.Engine = Engine;
  Opts.RecordAllExpressions = true; // Max-coverage fact surface.
  return Opts;
}

class SnapshotDifferentialTest
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {};

/// Core contract: for every corpus program and both expression engines,
/// snapshot undo and journal undo produce byte-identical results.
TEST_P(SnapshotDifferentialTest, SnapshotMatchesJournal) {
  const std::string &Source = GetParam().second;
  for (ExecEngine Engine : {ExecEngine::TreeWalk, ExecEngine::Bytecode}) {
    Program PS = parseOk(Source);
    AnalysisResult Snap =
        runDeterminacyAnalysis(PS, undoOptions(UndoEngine::Snapshot, Engine));

    Program PJ = parseOk(Source);
    AnalysisResult Jour =
        runDeterminacyAnalysis(PJ, undoOptions(UndoEngine::Journal, Engine));

    EXPECT_EQ(undoFingerprint(Snap), undoFingerprint(Jour))
        << "engine=" << execEngineName(Engine);
  }
}

/// Injected budget faults must trip at the same checkpoint and degrade to
/// the same partial-but-sound result under either undo engine.
TEST_P(SnapshotDifferentialTest, InjectedFaultAgreement) {
  const std::string &Source = GetParam().second;
  std::string Error;
  for (ExecEngine Engine : {ExecEngine::TreeWalk, ExecEngine::Bytecode}) {
    auto SnapInj = FaultInjector::parse("steps:300", &Error);
    ASSERT_TRUE(SnapInj) << Error;
    AnalysisOptions SnapOpts = undoOptions(UndoEngine::Snapshot, Engine);
    SnapOpts.Injector = &*SnapInj;
    Program PS = parseOk(Source);
    AnalysisResult Snap = runDeterminacyAnalysis(PS, SnapOpts);

    auto JourInj = FaultInjector::parse("steps:300", &Error);
    ASSERT_TRUE(JourInj) << Error;
    AnalysisOptions JourOpts = undoOptions(UndoEngine::Journal, Engine);
    JourOpts.Injector = &*JourInj;
    Program PJ = parseOk(Source);
    AnalysisResult Jour = runDeterminacyAnalysis(PJ, JourOpts);

    EXPECT_EQ(undoFingerprint(Snap), undoFingerprint(Jour))
        << "engine=" << execEngineName(Engine);
  }
}

/// Intra-run branch parallelism must be unobservable: same program, same
/// seeds, pool on vs off — byte-identical merged results, both engines.
TEST_P(SnapshotDifferentialTest, ParallelBranchesMatchSequential) {
  const std::string &Source = GetParam().second;
  ThreadPool Pool(4);
  for (ExecEngine Engine : {ExecEngine::TreeWalk, ExecEngine::Bytecode}) {
    Program PSeq = parseOk(Source);
    AnalysisResult Seq = runDeterminacyAnalysis(
        PSeq, undoOptions(UndoEngine::Snapshot, Engine));

    AnalysisOptions ParOpts = undoOptions(UndoEngine::Snapshot, Engine);
    ParOpts.ParallelBranches = true;
    ParOpts.BranchPool = &Pool;
    Program PPar = parseOk(Source);
    AnalysisResult Par = runDeterminacyAnalysis(PPar, ParOpts);

    EXPECT_EQ(undoFingerprint(Seq), undoFingerprint(Par))
        << "engine=" << execEngineName(Engine);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SnapshotDifferentialTest, ::testing::ValuesIn(corpus()),
    [](const ::testing::TestParamInfo<std::pair<std::string, std::string>>
           &Info) { return Info.param.first; });

/// The seed fan-out must be independent of undo engine, job count, and
/// branch parallelism all at once: journal jobs=1 is the reference, and
/// snapshot jobs=1/8 with and without a branch pool must all match it.
TEST(SnapshotParallel, MergedFactsIndependentOfUndoJobsAndBranchPool) {
  const std::string Source = workloads::miniquery(3);
  std::vector<uint64_t> Seeds = {1, 2, 3, 4, 5, 6};
  ThreadPool BranchPool(4);

  auto Run = [&](UndoEngine Undo, unsigned Jobs, bool Branches) {
    Program P = parseOk(Source);
    AnalysisOptions Opts = undoOptions(Undo, ExecEngine::Bytecode);
    if (Branches) {
      Opts.ParallelBranches = true;
      Opts.BranchPool = &BranchPool;
    }
    AnalysisResult R = runDeterminacyAnalysisParallel(P, Opts, Seeds, Jobs);
    EXPECT_TRUE(R.Ok) << R.Error;
    return undoFingerprint(R);
  };

  std::string Reference = Run(UndoEngine::Journal, 1, false);
  EXPECT_EQ(Reference, Run(UndoEngine::Snapshot, 1, false));
  EXPECT_EQ(Reference, Run(UndoEngine::Snapshot, 8, false));
  EXPECT_EQ(Reference, Run(UndoEngine::Snapshot, 1, true));
  EXPECT_EQ(Reference, Run(UndoEngine::Snapshot, 8, true));
}

/// Multi-class injected faults on a call-heavy program: the dedicated
/// sweep the bytecode suite runs, here across undo engines.
TEST(SnapshotGovernor, InjectedFaultClassesMatchJournal) {
  const std::string Source = workloads::miniquery(1);
  for (const char *Spec :
       {"steps:50", "steps:500", "heap:10", "depth:2", "cf-fuel:1"}) {
    std::string Error;
    auto SnapInj = FaultInjector::parse(Spec, &Error);
    ASSERT_TRUE(SnapInj) << Error;
    AnalysisOptions SnapOpts =
        undoOptions(UndoEngine::Snapshot, ExecEngine::Bytecode);
    SnapOpts.Injector = &*SnapInj;
    Program PS = parseOk(Source);
    AnalysisResult Snap = runDeterminacyAnalysis(PS, SnapOpts);

    auto JourInj = FaultInjector::parse(Spec, &Error);
    ASSERT_TRUE(JourInj) << Error;
    AnalysisOptions JourOpts =
        undoOptions(UndoEngine::Journal, ExecEngine::Bytecode);
    JourOpts.Injector = &*JourInj;
    Program PJ = parseOk(Source);
    AnalysisResult Jour = runDeterminacyAnalysis(PJ, JourOpts);

    EXPECT_EQ(undoFingerprint(Snap), undoFingerprint(Jour))
        << "inject " << Spec;
  }
}

/// A deeply nested tower of indeterminate branches, each level shadowing
/// the writes of the one above: the regression shape for snapshot-frame
/// commit/restore ordering (a child frame's restore must not clobber the
/// parent's older pre-images, and a committed child must hand its saves up
/// so the parent still restores to the *outermost* pre-state).
const char *kNestedBranches =
    "var a = 1; var b = 2; var c = 3; var d = 4;\n"
    "var o = {x: 1, y: {z: 2}};\n"
    "if (Math.random() < 0.5) {\n"
    "  a = 10; o.x = 10;\n"
    "  if (Math.random() < 0.5) {\n"
    "    b = 20; o.y.z = 20; o.x = 11;\n"
    "    if (Math.random() < 0.5) {\n"
    "      c = 30; o.x = 12; o.y.z = 21;\n"
    "      if (Math.random() < 0.5) { d = 40; a = 13; o.x = 13; }\n"
    "      else { d = 41; b = 23; }\n"
    "    } else { c = 31; o.y.z = 22; }\n"
    "  } else { b = 21; o.x = 14; }\n"
    "} else { a = 15; }\n"
    "print(a); print(b); print(c); print(d); print(o.x); print(o.y.z);\n";

TEST(SnapshotUndo, NestedBranchesMatchJournalAcrossSeeds) {
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    AnalysisOptions SnapOpts =
        undoOptions(UndoEngine::Snapshot, ExecEngine::Bytecode);
    SnapOpts.RandomSeed = Seed;
    Program PS = parseOk(kNestedBranches);
    AnalysisResult Snap = runDeterminacyAnalysis(PS, SnapOpts);

    AnalysisOptions JourOpts =
        undoOptions(UndoEngine::Journal, ExecEngine::Bytecode);
    JourOpts.RandomSeed = Seed;
    Program PJ = parseOk(kNestedBranches);
    AnalysisResult Jour = runDeterminacyAnalysis(PJ, JourOpts);

    EXPECT_EQ(undoFingerprint(Snap), undoFingerprint(Jour))
        << "seed=" << Seed;
  }
}

/// Fully unwinding at the end of a snapshot-mode run must restore the
/// pristine global scope, exactly as the journal engine's replay does —
/// including after mid-run injected degradation (the regression FuzzTest
/// runs for the journal, here pinned explicitly to the snapshot engine on
/// the nested-branch shape).
TEST(SnapshotUndo, UnwindRestoresGlobalsAfterDegradedRuns) {
  for (uint64_t At : {50u, 500u}) {
    Program P = parseOk(kNestedBranches);
    AnalysisOptions Opts;
    Opts.Undo = UndoEngine::Snapshot;
    FaultInjector FI(Budget::Steps, At);
    Opts.Injector = &FI;
    InstrumentedInterpreter I(P, Opts);
    ASSERT_TRUE(I.run()) << I.errorMessage();
    I.unwindJournalForTest();
    EXPECT_EQ(I.journalSize(), 0u);
    std::vector<std::string> Leftover = I.userGlobalNames();
    EXPECT_TRUE(Leftover.empty())
        << "steps:" << At << " snapshot undo left global '"
        << Leftover.front() << "'";
  }
}

/// COW pre-image copies charge the same heap-cell budget as ordinary
/// allocations, so a branch-heavy program under a tight budget trips the
/// governor soundly (degraded partial result, not a crash or an overrun).
TEST(SnapshotGovernor, CowCopiesChargeHeapBudget) {
  // Untaken sides keep mutating a broad object graph: every first touch in
  // a counterfactual charges one COW save.
  std::string Source = "var objs = []; var i = 0;\n"
                       "while (i < 40) { objs[i] = {v: i}; i = i + 1; }\n"
                       "var r = 0;\n"
                       "var j = 0;\n"
                       "while (j < 10) {\n"
                       "  if (Math.random() < 0.5) {\n"
                       "    var k = 0;\n"
                       "    while (k < 40) { objs[k].v = j; k = k + 1; }\n"
                       "  } else { r = r + 1; }\n"
                       "  j = j + 1;\n"
                       "}\n";
  // Unlimited budget first: establish that this workload does fork
  // snapshots and save pre-images.
  Program PFree = parseOk(Source);
  AnalysisOptions Free = undoOptions(UndoEngine::Snapshot, ExecEngine::Bytecode);
  AnalysisResult RFree = runDeterminacyAnalysis(PFree, Free);
  ASSERT_TRUE(RFree.Ok) << RFree.Error;
  EXPECT_GT(RFree.Stats.SnapshotForks, 0u);
  EXPECT_GT(RFree.Stats.CowCopies, 0u);

  // Now a ceiling well under the free run's save count: the governor must
  // trip on the COW charges and degrade soundly.
  Program PTight = parseOk(Source);
  AnalysisOptions Tight =
      undoOptions(UndoEngine::Snapshot, ExecEngine::Bytecode);
  Tight.MaxHeapCells = 120;
  AnalysisResult RTight = runDeterminacyAnalysis(PTight, Tight);
  ASSERT_TRUE(RTight.Ok) << RTight.Error;
  EXPECT_EQ(RTight.Trap, TrapKind::HeapLimit);
  EXPECT_TRUE(RTight.Degradation.degraded());
}

/// The parallel path actually engages on an eligible branch shape — and
/// every dispatched task is either committed or invisibly rolled back.
TEST(ParallelBranchStats, EligibleBranchesDispatchAndCommit) {
  std::string Source = "var x = 0; var y = 0; var i = 0;\n"
                       "while (i < 8) {\n"
                       "  if (Math.random() < 0.5) { x = x + 1; }\n"
                       "  else { y = y + 1; }\n"
                       "  i = i + 1;\n"
                       "}\n"
                       "print(x + y);\n";
  ThreadPool Pool(2);
  AnalysisOptions Opts = undoOptions(UndoEngine::Snapshot, ExecEngine::Bytecode);
  Opts.ParallelBranches = true;
  Opts.BranchPool = &Pool;
  Program P = parseOk(Source);
  AnalysisResult R = runDeterminacyAnalysis(P, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Stats.ParallelBranchTasks, 0u);
  EXPECT_GT(R.Stats.ParallelBranchCommits, 0u);
  EXPECT_LE(R.Stats.ParallelBranchCommits, R.Stats.ParallelBranchTasks);
}

/// Sanity on the flag plumbing: parallelism off (or no pool) must never
/// dispatch, and the journal engine must never fork snapshots beyond the
/// run-scoped base frames.
TEST(ParallelBranchStats, DisabledModesNeverDispatch) {
  const std::string Source = workloads::figure2();
  Program PSeq = parseOk(Source);
  AnalysisResult Seq = runDeterminacyAnalysis(
      PSeq, undoOptions(UndoEngine::Snapshot, ExecEngine::Bytecode));
  ASSERT_TRUE(Seq.Ok) << Seq.Error;
  EXPECT_EQ(Seq.Stats.ParallelBranchTasks, 0u);
  EXPECT_EQ(Seq.Stats.ParallelBranchCommits, 0u);

  Program PJour = parseOk(Source);
  AnalysisResult Jour = runDeterminacyAnalysis(
      PJour, undoOptions(UndoEngine::Journal, ExecEngine::Bytecode));
  ASSERT_TRUE(Jour.Ok) << Jour.Error;
  EXPECT_EQ(Jour.Stats.SnapshotForks, 0u);
  EXPECT_EQ(Jour.Stats.CowCopies, 0u);
}

} // namespace
