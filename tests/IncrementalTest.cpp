//===- IncrementalTest.cpp - Incremental replay differential suite ---------==//
///
/// The incremental layer (subtree hashing + chained region fingerprints +
/// the persistent fact store) must be *observationally invisible*: with
/// `--incremental on` every analysis — cold store, warm store, warm store
/// built by a different program, tampered store — produces byte-identical
/// facts, output, stats, and exit codes to a plain run. These tests hold
/// that contract across the full workload corpus (paper figures,
/// miniquery, runnable eval-suite overlays, generated fuzz programs), both
/// expression engines, and seed fan-outs at jobs 1 and 8, then probe the
/// store's failure modes directly:
///
///  * warm reuse — a second identical run replays exactly the summaries
///    the first stored;
///  * crash recovery — truncated and bit-flipped segment files degrade to
///    a cold start (skipped segments / dropped records), never to wrong
///    results or a crash;
///  * key hygiene — repeated identical statements chain to distinct keys,
///    cross-program prefix sharing replays only when the hoisted
///    environment really matches, and a checksum-valid-but-wrong summary
///    (the simulated hash collision) is caught by `--incremental strict`;
///  * the tail-edit scenario — editing the last statement of a program
///    replays the whole untouched prefix (the bench acceptance bar).
///
/// Replay-mechanism counters (IncrementalRegions/Replays, SummariesStored,
/// ReplayedFacts) are deliberately *excluded* from the fingerprint, same
/// as the snapshot suite's COW counters: they describe how the answer was
/// obtained, not what the analysis concluded.
///
//===----------------------------------------------------------------------===//

#include "determinacy/Determinacy.h"
#include "determinacy/ParallelAnalysis.h"
#include "incremental/FactStore.h"
#include "parser/Parser.h"
#include "serve/Protocol.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

using namespace dda;

namespace fs = std::filesystem;

namespace {

Program parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  Program P = parseProgram(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return P;
}

/// Same sweep as the snapshot and bytecode differential suites.
std::vector<std::pair<std::string, std::string>> corpus() {
  std::vector<std::pair<std::string, std::string>> Out;
  Out.emplace_back("figure1", workloads::figure1());
  Out.emplace_back("figure2", workloads::figure2());
  Out.emplace_back("figure3", workloads::figure3());
  Out.emplace_back("figure4", workloads::figure4());
  for (int Minor = 0; Minor < 4; ++Minor)
    Out.emplace_back("miniquery1_" + std::to_string(Minor),
                     workloads::miniquery(Minor));
  for (const auto &B : workloads::evalSuite())
    if (B.Runnable) {
      std::string Name = std::string("eval_") + B.Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      Out.emplace_back(Name, B.Source);
    }
  for (uint64_t Seed = 1; Seed <= 12; ++Seed)
    Out.emplace_back("fuzz" + std::to_string(Seed),
                     workloads::generateProgram(Seed));
  return Out;
}

/// Everything replay must reproduce byte-for-byte, rendered to one string
/// so a divergence shows up as a readable diff. Mirrors the snapshot
/// suite's fingerprint; incremental mechanism counters are excluded.
std::string incFingerprint(const AnalysisResult &R) {
  std::ostringstream OS;
  OS << "ok=" << R.Ok << " trap=" << static_cast<int>(R.Trap)
     << " exit=" << serve::analysisExitCode(R)
     << " degraded=" << R.Degradation.degraded()
     << " events=" << R.Degradation.EventsTotal << "\n"
     << "error=" << R.Error << "\n"
     << "steps=" << R.Stats.StepsUsed << " flushes=" << R.Stats.HeapFlushes
     << " cf=" << R.Stats.Counterfactuals
     << " cfAborts=" << R.Stats.CounterfactualAborts
     << " journal=" << R.Stats.JournalEntries
     << " flushlimit=" << R.Stats.FlushLimitHit << "\n"
     << "executedCalls=" << R.ExecutedCalls.size()
     << " executedStmts=" << R.ExecutedStmts.size() << "\n"
     << "factFp=" << serve::factFingerprint(R) << "\n"
     << "--- output ---\n"
     << R.Output << "--- facts ---\n"
     << R.Facts.dump(R.Contexts);
  return OS.str();
}

AnalysisOptions incOptions(ExecEngine Engine, IncrementalMode Mode,
                           FactStore *Store) {
  AnalysisOptions Opts;
  Opts.Engine = Engine;
  Opts.RecordAllExpressions = true; // Max-coverage fact surface.
  Opts.Incremental = Mode;
  Opts.Store = Store;
  return Opts;
}

/// A fresh on-disk store directory, removed on scope exit.
class TempStoreDir {
public:
  TempStoreDir() {
    static std::atomic<unsigned> Counter{0};
    Dir = fs::path(::testing::TempDir()) /
          ("dda-inc-" + std::to_string(static_cast<long>(::getpid())) + "-" +
           std::to_string(Counter.fetch_add(1)));
    fs::create_directories(Dir);
  }
  ~TempStoreDir() {
    std::error_code EC;
    fs::remove_all(Dir, EC);
  }
  std::string path() const { return Dir.string(); }

private:
  fs::path Dir;
};

std::vector<std::string> segmentFiles(const std::string &Dir) {
  std::vector<std::string> Out;
  std::error_code EC;
  for (const auto &E : fs::directory_iterator(Dir, EC))
    if (E.path().extension() == ".facts")
      Out.push_back(E.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void spew(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out.good()) << Path;
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

uint64_t fnv64(const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

/// Runs \p Source once with \p Mode against \p Store (which may be null
/// for Off) and returns the result.
AnalysisResult runOnce(const std::string &Source, ExecEngine Engine,
                       IncrementalMode Mode, FactStore *Store) {
  Program P = parseOk(Source);
  return runDeterminacyAnalysis(P, incOptions(Engine, Mode, Store));
}

/// A deterministic straight-line program whose every top-level statement
/// is a clean region: no eval, no Math.random, no abrupt control.
std::string cleanProgram() {
  return "var lib = {};\n"
         "lib.inc = function (x) { return x + 1; };\n"
         "lib.dbl = function (x) { return x * 2; };\n"
         "var a = lib.inc(4);\n"
         "var b = lib.dbl(a);\n"
         "print(a + b);\n";
}
constexpr uint64_t CleanProgramRegions = 6;

//===----------------------------------------------------------------------===//
// Corpus-wide differential: off == cold == warm == strict, both engines
//===----------------------------------------------------------------------===//

class IncrementalDifferentialTest
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {};

TEST_P(IncrementalDifferentialTest, OnMatchesOffColdWarmAndStrict) {
  const std::string &Source = GetParam().second;
  for (ExecEngine Engine : {ExecEngine::TreeWalk, ExecEngine::Bytecode}) {
    AnalysisResult Off =
        runOnce(Source, Engine, IncrementalMode::Off, nullptr);
    const std::string OffFp = incFingerprint(Off);

    TempStoreDir Dir;
    FactStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Dir.path(), Err)) << Err;

    AnalysisResult Cold = runOnce(Source, Engine, IncrementalMode::On, &Store);
    EXPECT_EQ(OffFp, incFingerprint(Cold))
        << "cold engine=" << execEngineName(Engine);
    EXPECT_EQ(0u, Cold.Stats.IncrementalReplays);

    AnalysisResult Warm = runOnce(Source, Engine, IncrementalMode::On, &Store);
    EXPECT_EQ(OffFp, incFingerprint(Warm))
        << "warm engine=" << execEngineName(Engine);
    // Warm replay picks up exactly where cold capture stored: every clean
    // region cold persisted replays, and the chain goes cold at the same
    // region both times.
    EXPECT_EQ(Cold.Stats.SummariesStored, Warm.Stats.IncrementalReplays)
        << "engine=" << execEngineName(Engine);
    EXPECT_EQ(Cold.Stats.IncrementalRegions, Warm.Stats.IncrementalRegions);

    // Strict re-executes everything and cross-checks against the store:
    // same observable result, no replays counted, no mismatch aborts.
    AnalysisResult Strict =
        runOnce(Source, Engine, IncrementalMode::Strict, &Store);
    EXPECT_EQ(OffFp, incFingerprint(Strict))
        << "strict engine=" << execEngineName(Engine);
    EXPECT_EQ(0u, Strict.Stats.IncrementalReplays);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, IncrementalDifferentialTest, ::testing::ValuesIn(corpus()),
    [](const ::testing::TestParamInfo<std::pair<std::string, std::string>>
           &Info) { return Info.param.first; });

//===----------------------------------------------------------------------===//
// Seed fan-out: jobs 1 and 8 share one store, still byte-identical to off
//===----------------------------------------------------------------------===//

TEST(IncrementalParallelTest, JobsFanoutMatchesOffAcrossModes) {
  const std::string Source = workloads::miniquery(3);
  const std::vector<uint64_t> Seeds = {1, 2, 3, 4, 5, 6};
  for (ExecEngine Engine : {ExecEngine::TreeWalk, ExecEngine::Bytecode}) {
    Program POff = parseOk(Source);
    AnalysisResult Off = runDeterminacyAnalysisParallel(
        POff, incOptions(Engine, IncrementalMode::Off, nullptr), Seeds, 1);
    const std::string OffFp = incFingerprint(Off);

    TempStoreDir Dir;
    FactStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Dir.path(), Err)) << Err;

    // Cold fan-out at jobs=1 populates the store (per-seed key spaces are
    // disjoint: the option fingerprint folds the seed).
    Program PCold = parseOk(Source);
    AnalysisResult Cold = runDeterminacyAnalysisParallel(
        PCold, incOptions(Engine, IncrementalMode::On, &Store), Seeds, 1);
    EXPECT_EQ(OffFp, incFingerprint(Cold))
        << "cold jobs=1 engine=" << execEngineName(Engine);

    // Warm fan-out at jobs=8: concurrent seed tasks replay from the shared
    // store, merged result still byte-identical.
    Program PWarm = parseOk(Source);
    AnalysisResult Warm = runDeterminacyAnalysisParallel(
        PWarm, incOptions(Engine, IncrementalMode::On, &Store), Seeds, 8);
    EXPECT_EQ(OffFp, incFingerprint(Warm))
        << "warm jobs=8 engine=" << execEngineName(Engine);
    EXPECT_GT(Warm.Stats.IncrementalReplays, 0u);
    EXPECT_EQ(Cold.Stats.SummariesStored, Warm.Stats.IncrementalReplays);
  }
}

//===----------------------------------------------------------------------===//
// Store crash-recovery: truncation and bit flips degrade to a cold start
//===----------------------------------------------------------------------===//

/// Runs cleanProgram() cold into a fresh store and commits a segment.
/// Returns the baseline (off-mode) fingerprint.
std::string seedStore(const TempStoreDir &Dir, ExecEngine Engine) {
  FactStore Store;
  std::string Err;
  EXPECT_TRUE(Store.open(Dir.path(), Err)) << Err;
  AnalysisResult Cold =
      runOnce(cleanProgram(), Engine, IncrementalMode::On, &Store);
  EXPECT_EQ(CleanProgramRegions, Cold.Stats.SummariesStored);
  EXPECT_TRUE(Store.commit(Err)) << Err;
  EXPECT_EQ(1u, segmentFiles(Dir.path()).size());
  return incFingerprint(
      runOnce(cleanProgram(), Engine, IncrementalMode::Off, nullptr));
}

TEST(IncrementalStoreTest, TruncatedSegmentFallsBackToColdStart) {
  const ExecEngine Engine = defaultExecEngine();
  TempStoreDir Dir;
  const std::string OffFp = seedStore(Dir, Engine);
  const std::string Seg = segmentFiles(Dir.path()).front();
  const std::string Full = slurp(Seg);
  ASSERT_GT(Full.size(), 24u);

  // Mid-record truncation: the intact prefix loads, the torn tail drops.
  spew(Seg, Full.substr(0, Full.size() / 2));
  {
    FactStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Dir.path(), Err)) << Err;
    EXPECT_EQ(1u, Store.segmentsLoaded());
    EXPECT_GE(Store.recordsDropped(), 1u);
    EXPECT_LT(Store.size(), CleanProgramRegions);
    AnalysisResult R =
        runOnce(cleanProgram(), Engine, IncrementalMode::On, &Store);
    EXPECT_EQ(OffFp, incFingerprint(R));
    // The missing tail is re-captured, so a later commit re-warms it.
    EXPECT_EQ(CleanProgramRegions,
              R.Stats.IncrementalReplays + R.Stats.SummariesStored);
  }

  // Header truncation: the whole segment is skipped; analysis is a clean
  // cold start that re-stores everything.
  spew(Seg, Full.substr(0, 6));
  {
    FactStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Dir.path(), Err)) << Err;
    EXPECT_EQ(1u, Store.segmentsSkipped());
    EXPECT_EQ(0u, Store.size());
    AnalysisResult R =
        runOnce(cleanProgram(), Engine, IncrementalMode::On, &Store);
    EXPECT_EQ(OffFp, incFingerprint(R));
    EXPECT_EQ(0u, R.Stats.IncrementalReplays);
    EXPECT_EQ(CleanProgramRegions, R.Stats.SummariesStored);
  }
}

TEST(IncrementalStoreTest, BitFlippedRecordIsDroppedNotTrusted) {
  const ExecEngine Engine = defaultExecEngine();
  TempStoreDir Dir;
  const std::string OffFp = seedStore(Dir, Engine);
  const std::string Seg = segmentFiles(Dir.path()).front();
  std::string Bytes = slurp(Seg);
  ASSERT_GT(Bytes.size(), 40u);
  // Flip one payload byte of the first record (header 12 + frame 12 + 3)
  // without fixing the checksum: the record must be dropped, not decoded.
  Bytes[27] = static_cast<char>(Bytes[27] ^ 0x40);
  spew(Seg, Bytes);

  FactStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open(Dir.path(), Err)) << Err;
  EXPECT_GE(Store.recordsDropped(), 1u);
  AnalysisResult R =
      runOnce(cleanProgram(), Engine, IncrementalMode::On, &Store);
  EXPECT_EQ(OffFp, incFingerprint(R));
}

TEST(IncrementalStoreTest, StrictModeCatchesChecksumValidTampering) {
  const ExecEngine Engine = defaultExecEngine();
  TempStoreDir Dir;
  const std::string OffFp = seedStore(Dir, Engine);
  const std::string Seg = segmentFiles(Dir.path()).front();
  std::string Bytes = slurp(Seg);
  // Record layout: [u32 Len][u64 Sum][payload: StmtKey PreFp OptFp PostFp
  // str Delta]. Corrupt the first record's PostFp *and recompute the
  // frame checksum* — the simulated 64-bit hash collision: a summary the
  // store believes is intact but that disagrees with re-execution.
  uint32_t Len;
  ASSERT_GE(Bytes.size(), 24u + 32u);
  std::memcpy(&Len, Bytes.data() + 12, 4);
  ASSERT_GE(Bytes.size(), 24u + Len);
  Bytes[24 + 24] = static_cast<char>(Bytes[24 + 24] ^ 0x01);
  uint64_t Sum = fnv64(Bytes.data() + 24, Len);
  std::memcpy(Bytes.data() + 16, &Sum, 8);
  spew(Seg, Bytes);

  FactStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open(Dir.path(), Err)) << Err;
  EXPECT_EQ(0u, Store.recordsDropped());

  // Mode `on` trusts the record: the delta itself is intact, so region 0
  // replays correctly; only the forward chain breaks, and every later
  // region falls back to plain execution. Observably still identical.
  AnalysisResult On =
      runOnce(cleanProgram(), Engine, IncrementalMode::On, &Store);
  EXPECT_EQ(OffFp, incFingerprint(On));
  EXPECT_GE(On.Stats.IncrementalReplays, 1u);
  EXPECT_LT(On.Stats.IncrementalReplays, CleanProgramRegions);

  // Mode `strict` re-executes and cross-checks: the tampered PostFp is a
  // divergence between store and reality — internal-error abort, exit 4.
  AnalysisResult Strict =
      runOnce(cleanProgram(), Engine, IncrementalMode::Strict, &Store);
  EXPECT_FALSE(Strict.Ok);
  EXPECT_EQ(TrapKind::InternalError, Strict.Trap);
  EXPECT_EQ(4, serve::analysisExitCode(Strict));
  EXPECT_NE(std::string::npos, Strict.Error.find("strict mismatch"))
      << Strict.Error;
}

//===----------------------------------------------------------------------===//
// Key hygiene: chained fingerprints, not just subtree hashes
//===----------------------------------------------------------------------===//

TEST(IncrementalKeysTest, RepeatedIdenticalStatementsChainSeparately) {
  // Four byte-identical statements: the subtree hash is the same for all,
  // but position + chained pre-fingerprint must keep their summaries
  // distinct (the second `x = x + 1` starts from x==1, not x==0).
  const std::string Source = "var x = 0;\n"
                             "x = x + 1;\n"
                             "x = x + 1;\n"
                             "x = x + 1;\n"
                             "print(x);\n";
  const ExecEngine Engine = defaultExecEngine();
  const std::string OffFp =
      incFingerprint(runOnce(Source, Engine, IncrementalMode::Off, nullptr));

  TempStoreDir Dir;
  FactStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open(Dir.path(), Err)) << Err;
  AnalysisResult Cold = runOnce(Source, Engine, IncrementalMode::On, &Store);
  EXPECT_EQ(OffFp, incFingerprint(Cold));
  EXPECT_EQ(5u, Cold.Stats.SummariesStored);
  AnalysisResult Warm = runOnce(Source, Engine, IncrementalMode::On, &Store);
  EXPECT_EQ(OffFp, incFingerprint(Warm));
  EXPECT_EQ(5u, Warm.Stats.IncrementalReplays);
}

TEST(IncrementalKeysTest, SharedPrefixReplaysOnlyWhenHoistedStateMatches) {
  const std::string Prefix = "var n = 3;\n"
                             "var m = n * n;\n"
                             "print(m);\n";
  const ExecEngine Engine = defaultExecEngine();

  TempStoreDir Dir;
  FactStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open(Dir.path(), Err)) << Err;
  AnalysisResult A = runOnce(Prefix, Engine, IncrementalMode::On, &Store);
  EXPECT_EQ(3u, A.Stats.SummariesStored);

  // Program B extends A with a non-hoisting tail: the hoisted environment
  // is unchanged, so B's prefix regions legitimately replay A's summaries
  // — cross-program sharing by construction, and still byte-identical.
  const std::string B = Prefix + "print(m + 1);\n";
  const std::string BOffFp =
      incFingerprint(runOnce(B, Engine, IncrementalMode::Off, nullptr));
  AnalysisResult BWarm = runOnce(B, Engine, IncrementalMode::On, &Store);
  EXPECT_EQ(BOffFp, incFingerprint(BWarm));
  EXPECT_EQ(3u, BWarm.Stats.IncrementalReplays);

  // Program C extends A with a hoisted declaration: the global environment
  // at region 0 now contains `z`, so replaying A's env images would be
  // unsound. The hoist fingerprint in the chain base must force a miss.
  const std::string C = Prefix + "var z = 9;\n";
  const std::string COffFp =
      incFingerprint(runOnce(C, Engine, IncrementalMode::Off, nullptr));
  AnalysisResult CWarm = runOnce(C, Engine, IncrementalMode::On, &Store);
  EXPECT_EQ(COffFp, incFingerprint(CWarm));
  EXPECT_EQ(0u, CWarm.Stats.IncrementalReplays);
}

//===----------------------------------------------------------------------===//
// The tail-edit scenario: the acceptance bar for warm re-analysis
//===----------------------------------------------------------------------===//

TEST(IncrementalEditTest, TailEditReplaysWholePrefix) {
  // A library prefix (function decls + calls) and a one-statement app
  // tail. Editing only the tail keeps every prefix statement's subtree
  // hash, position, and the hoist fingerprint intact.
  std::string Lib = "var acc = 0;\n";
  uint64_t PrefixRegions = 1;
  for (int I = 0; I < 12; ++I) {
    Lib += "function f" + std::to_string(I) + "(x) { return x + " +
           std::to_string(I) + "; }\n";
    Lib += "acc = f" + std::to_string(I) + "(acc);\n";
    PrefixRegions += 2;
  }
  const std::string V1 = Lib + "print(acc + 1);\n";
  const std::string V2 = Lib + "print(acc + 2);\n";

  for (ExecEngine Engine : {ExecEngine::TreeWalk, ExecEngine::Bytecode}) {
    TempStoreDir Dir;
    FactStore Store;
    std::string Err;
    ASSERT_TRUE(Store.open(Dir.path(), Err)) << Err;

    AnalysisResult Cold = runOnce(V1, Engine, IncrementalMode::On, &Store);
    EXPECT_EQ(PrefixRegions + 1, Cold.Stats.SummariesStored);

    const std::string V2OffFp =
        incFingerprint(runOnce(V2, Engine, IncrementalMode::Off, nullptr));
    AnalysisResult Warm = runOnce(V2, Engine, IncrementalMode::On, &Store);
    EXPECT_EQ(V2OffFp, incFingerprint(Warm))
        << "engine=" << execEngineName(Engine);
    EXPECT_EQ(PrefixRegions, Warm.Stats.IncrementalReplays);
    EXPECT_EQ(PrefixRegions + 1, Warm.Stats.IncrementalRegions);
    // The ISSUE acceptance bar: a one-statement edit replays >= 50% of
    // the program's regions.
    EXPECT_GE(2 * Warm.Stats.IncrementalReplays,
              Warm.Stats.IncrementalRegions);

    // The edited tail was captured too: running V2 again is a full replay.
    AnalysisResult Warm2 = runOnce(V2, Engine, IncrementalMode::On, &Store);
    EXPECT_EQ(V2OffFp, incFingerprint(Warm2));
    EXPECT_EQ(PrefixRegions + 1, Warm2.Stats.IncrementalReplays);
  }
}

} // namespace
